package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

func mustGen(t *testing.T, cfg Config, seed uint64) *Catalog {
	t.Helper()
	c, err := Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateDefault(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 1)
	if c.Len() != 1000 {
		t.Fatalf("catalog size %d, want 1000", c.Len())
	}
	cfg := DefaultConfig()
	for _, f := range c.Files() {
		if f.Bitrate <= 0 {
			t.Fatalf("%v: non-positive bitrate", f.ID)
		}
		if f.DurationSec < cfg.MinDurationSec || f.DurationSec > cfg.MaxDurationSec {
			t.Fatalf("%v: duration %v out of [%v, %v]", f.ID, f.DurationSec, cfg.MinDurationSec, cfg.MaxDurationSec)
		}
		wantSize := units.Size(math.Round(float64(f.Bitrate) * f.DurationSec))
		if f.Size != wantSize {
			t.Fatalf("%v: size %d, want bitrate*duration = %d", f.ID, f.Size, wantSize)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGen(t, DefaultConfig(), 42)
	b := mustGen(t, DefaultConfig(), 42)
	for i := range a.Files() {
		fa, fb := a.Files()[i], b.Files()[i]
		if fa != fb {
			t.Fatalf("file %d differs across same-seed runs:\n%+v\n%+v", i, fa, fb)
		}
	}
}

func TestPopularityIsZipf(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 7)
	sum := 0.0
	prev := math.Inf(1)
	for _, f := range c.Files() {
		sum += f.PopProb
		if f.PopProb > prev+1e-15 {
			t.Fatalf("popularity not non-increasing at rank %d", f.PopRank)
		}
		prev = f.PopProb
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("popularity sums to %v", sum)
	}
}

func TestSamplePopularMatchesLaw(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 11)
	src := rng.New(99)
	const draws = 200000
	counts := make([]int, c.Len())
	for i := 0; i < draws; i++ {
		counts[c.SamplePopular(src)]++
	}
	for k := 0; k < 5; k++ {
		want := c.Files()[k].PopProb * draws
		if math.Abs(float64(counts[k])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: %d draws, want ~%.0f", k, counts[k], want)
		}
	}
	// Head must dominate tail.
	if counts[0] <= counts[c.Len()-1] {
		t.Errorf("rank 0 (%d draws) not more popular than last rank (%d)", counts[0], counts[c.Len()-1])
	}
}

func TestFilePanicsOnBadID(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("File(-1) did not panic")
		}
	}()
	c.File(ids.FileID(-1))
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumFiles: 0, ZipfSkew: 1, MeanDurationSec: 1, MinDurationSec: 1, MaxDurationSec: 2},
		{NumFiles: 10, ZipfSkew: 0, MeanDurationSec: 1, MinDurationSec: 1, MaxDurationSec: 2},
		{NumFiles: 10, ZipfSkew: 1, MeanDurationSec: 0, MinDurationSec: 1, MaxDurationSec: 2},
		{NumFiles: 10, ZipfSkew: 1, MeanDurationSec: 1, MinDurationSec: 5, MaxDurationSec: 2},
		{NumFiles: 10, ZipfSkew: 1, MeanDurationSec: 1, MinDurationSec: 1, MaxDurationSec: 2, BitrateJitter: 0.9},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: Generate accepted invalid config", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestGenerateRejectsBadClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Classes = []BitrateClass{{Name: "bad", Bitrate: 0, Weight: 1}}
	if _, err := Generate(cfg, rng.New(1)); err == nil {
		t.Fatal("Generate accepted zero-bitrate class")
	}
}

func TestAggregates(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 3)
	if c.TotalBytes() <= 0 {
		t.Fatal("TotalBytes not positive")
	}
	mb := c.MeanBitrate()
	if mb < units.Kbps(250) || mb > units.Kbps(3850) {
		t.Fatalf("MeanBitrate %v outside the class ladder", mb)
	}
	md := c.MeanDuration()
	if md < 60 || md > 1200 {
		t.Fatalf("MeanDuration %v outside clamp bounds", md)
	}
}

func testRMs(n int) []ids.RMID {
	rms := make([]ids.RMID, n)
	for i := range rms {
		rms[i] = ids.RMID(i + 1)
	}
	return rms
}

func TestStaticRandomPlacement(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 5)
	p, err := StaticRandom(c, testRMs(16), 3, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumFiles() != c.Len() {
		t.Fatalf("placement covers %d files, want %d", p.NumFiles(), c.Len())
	}
	for _, f := range c.Files() {
		if got := p.Degree(f.ID); got != 3 {
			t.Fatalf("%v: degree %d, want 3", f.ID, got)
		}
	}
	// Placement should spread roughly evenly: every RM holds some files.
	for _, rm := range testRMs(16) {
		n := len(p.FilesOn(rm))
		if n < 100 || n > 300 { // expected 3000/16 = 187.5
			t.Errorf("%v holds %d replicas, expected near 187", rm, n)
		}
	}
}

func TestStaticRandomErrors(t *testing.T) {
	c := mustGen(t, DefaultConfig(), 5)
	if _, err := StaticRandom(c, testRMs(2), 3, rng.New(1)); err == nil {
		t.Fatal("degree > RMs accepted")
	}
	if _, err := StaticRandom(c, testRMs(5), 0, rng.New(1)); err == nil {
		t.Fatal("degree 0 accepted")
	}
}

func TestPlacementAddRemove(t *testing.T) {
	p := NewPlacement()
	f := ids.FileID(0)
	if err := p.Add(f, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(f, 1); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := p.Add(f, 2); err != nil {
		t.Fatal(err)
	}
	if !p.Has(f, 1) || !p.Has(f, 2) || p.Has(f, 3) {
		t.Fatal("Has gives wrong answers")
	}
	if err := p.Remove(f, 3); err == nil {
		t.Fatal("Remove of absent replica accepted")
	}
	if err := p.Remove(f, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(f, 2); err == nil {
		t.Fatal("Remove of last replica accepted")
	}
	if p.Degree(f) != 1 {
		t.Fatalf("degree %d, want 1", p.Degree(f))
	}
}

func TestPlacementCloneIsDeep(t *testing.T) {
	p := NewPlacement()
	p.Add(0, 1)
	p.Add(0, 2)
	q := p.Clone()
	q.Add(0, 3)
	if p.Degree(0) != 2 || q.Degree(0) != 3 {
		t.Fatalf("clone not deep: p=%d q=%d", p.Degree(0), q.Degree(0))
	}
}

func TestHoldersReturnsCopy(t *testing.T) {
	p := NewPlacement()
	p.Add(0, 1)
	p.Add(0, 2)
	hs := p.Holders(0)
	hs[0] = 99
	if p.Has(0, 99) {
		t.Fatal("Holders leaked internal slice")
	}
}

// Property: StaticRandom always yields exactly `degree` distinct holders.
func TestPlacementDegreeProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFiles = 50
	c := mustGen(t, cfg, 21)
	f := func(seed uint64, rawDeg uint8) bool {
		deg := int(rawDeg%5) + 1
		p, err := StaticRandom(c, testRMs(8), deg, rng.New(seed))
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		for _, fl := range c.Files() {
			if p.Degree(fl.ID) != deg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
