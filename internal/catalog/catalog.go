// Package catalog models the video-file corpus the paper's evaluation uses:
// "1,000 video files with different bit rates and popularity ratings that
// were extracted from YouTube". The paper only consumes three attributes of
// each video — its size, its encoded bitrate (which equals the bandwidth a
// streaming access must reserve) and its popularity rank — so the synthetic
// catalog regenerates exactly those, drawn from a bitrate-class mix typical
// of 2012-era YouTube and a Zipf popularity law.
package catalog

import (
	"fmt"
	"math"
	"sort"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

// File is one video in the catalog.
type File struct {
	ID ids.FileID
	// Name is a human-readable identifier ("video0042.mp4").
	Name string
	// Bitrate is the encoded video bitrate; a streaming access reserves
	// exactly this bandwidth on the serving RM (the paper's B_req).
	Bitrate units.BytesPerSec
	// DurationSec is the playback duration in seconds; an access occupies
	// the RM for this long (the paper's T_ocp).
	DurationSec float64
	// Size is Bitrate × DurationSec rounded to whole bytes.
	Size units.Size
	// PopRank is the popularity rank (0 = most popular).
	PopRank int
	// PopProb is the probability a given request targets this file.
	PopProb float64
}

// Catalog is an immutable set of files plus the popularity law over them.
type Catalog struct {
	files []File
	// cum is the cumulative popularity distribution over file IDs;
	// cum[len(files)-1] == 1.
	cum []float64
}

// BitrateClass describes one rung of the synthetic bitrate ladder.
type BitrateClass struct {
	Name    string
	Bitrate units.BytesPerSec
	// Weight is the relative share of catalog files in this class.
	Weight float64
}

// DefaultBitrateClasses approximates the 2012 YouTube ladder the paper drew
// from: most content at 360p/480p with tails at 240p and 720p. The absolute
// rates are calibrated so that the paper's standard workload (256 users,
// 300 s mean inter-arrival) drives the 16-RM topology near its aggregate
// capacity, reproducing the load levels behind Tables I-VII.
func DefaultBitrateClasses() []BitrateClass {
	return []BitrateClass{
		{Name: "240p", Bitrate: units.Kbps(450), Weight: 0.15},
		{Name: "360p", Bitrate: units.Kbps(900), Weight: 0.35},
		{Name: "480p", Bitrate: units.Kbps(1800), Weight: 0.35},
		{Name: "720p", Bitrate: units.Kbps(3200), Weight: 0.15},
	}
}

// Config controls catalog synthesis.
type Config struct {
	// NumFiles is the catalog size. The paper uses 1000.
	NumFiles int
	// ZipfSkew is the popularity skew (probability of rank k ∝ 1/(k+1)^s).
	ZipfSkew float64
	// MeanDurationSec / MinDurationSec / MaxDurationSec bound the video
	// lengths; durations are exponential with the given mean, clamped.
	MeanDurationSec float64
	MinDurationSec  float64
	MaxDurationSec  float64
	// Classes is the bitrate ladder; nil means DefaultBitrateClasses.
	Classes []BitrateClass
	// BitrateJitter is the relative stddev applied to each file's class
	// bitrate (0.1 = ±10%), modelling per-title encoding variance.
	BitrateJitter float64
}

// DefaultConfig returns the paper's catalog parameters.
func DefaultConfig() Config {
	return Config{
		NumFiles:        1000,
		ZipfSkew:        0.95,
		MeanDurationSec: 340,
		MinDurationSec:  60,
		MaxDurationSec:  1200,
		BitrateJitter:   0.10,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("catalog: NumFiles must be positive, got %d", c.NumFiles)
	case c.ZipfSkew <= 0:
		return fmt.Errorf("catalog: ZipfSkew must be positive, got %v", c.ZipfSkew)
	case c.MeanDurationSec <= 0:
		return fmt.Errorf("catalog: MeanDurationSec must be positive, got %v", c.MeanDurationSec)
	case c.MinDurationSec <= 0 || c.MaxDurationSec < c.MinDurationSec:
		return fmt.Errorf("catalog: bad duration bounds [%v, %v]", c.MinDurationSec, c.MaxDurationSec)
	case c.BitrateJitter < 0 || c.BitrateJitter > 0.5:
		return fmt.Errorf("catalog: BitrateJitter must be in [0, 0.5], got %v", c.BitrateJitter)
	}
	return nil
}

// Generate synthesizes a catalog from cfg using the given random stream.
func Generate(cfg Config, src *rng.Source) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	classes := cfg.Classes
	if classes == nil {
		classes = DefaultBitrateClasses()
	}
	weights := make([]float64, len(classes))
	for i, cl := range classes {
		if cl.Bitrate <= 0 {
			return nil, fmt.Errorf("catalog: class %q has non-positive bitrate", cl.Name)
		}
		weights[i] = cl.Weight
	}

	classSrc := src.Split("catalog/class")
	durSrc := src.Split("catalog/duration")
	jitterSrc := src.Split("catalog/jitter")
	popSrc := src.Split("catalog/popularity")

	zipf := rng.NewZipf(popSrc, cfg.NumFiles, cfg.ZipfSkew)

	files := make([]File, cfg.NumFiles)
	for i := range files {
		cl := classes[classSrc.WeightedChoice(weights)]
		rate := float64(cl.Bitrate)
		if cfg.BitrateJitter > 0 {
			rate *= 1 + cfg.BitrateJitter*jitterSrc.NormFloat64()
			if min := 0.5 * float64(cl.Bitrate); rate < min {
				rate = min
			}
		}
		dur := durSrc.Exp(cfg.MeanDurationSec)
		dur = math.Min(math.Max(dur, cfg.MinDurationSec), cfg.MaxDurationSec)

		files[i] = File{
			ID:          ids.FileID(i),
			Name:        fmt.Sprintf("video%04d.mp4", i),
			Bitrate:     units.BytesPerSec(rate),
			DurationSec: dur,
			Size:        units.Size(math.Round(rate * dur)),
			PopRank:     i, // rank == index: popularity is assigned by ID
			PopProb:     zipf.P(i),
		}
	}
	cum := make([]float64, cfg.NumFiles)
	acc := 0.0
	for i := range files {
		acc += files[i].PopProb
		cum[i] = acc
	}
	cum[cfg.NumFiles-1] = 1 // guard against rounding
	return &Catalog{files: files, cum: cum}, nil
}

// Len returns the number of files.
func (c *Catalog) Len() int { return len(c.files) }

// File returns the file with the given id. It panics on an invalid id, which
// is always a programming error upstream.
func (c *Catalog) File(id ids.FileID) *File {
	if int(id) < 0 || int(id) >= len(c.files) {
		panic(fmt.Sprintf("catalog: invalid file id %d (catalog size %d)", id, len(c.files)))
	}
	return &c.files[id]
}

// Files returns all files in ID order. The slice is shared; callers must not
// mutate it.
func (c *Catalog) Files() []File { return c.files }

// SamplePopular draws a file ID according to the popularity law, so that
// "files with higher popularity will be accessed more times in a fixed time
// interval" (paper §VI).
func (c *Catalog) SamplePopular(src *rng.Source) ids.FileID {
	// Popularity rank equals file ID, so a Zipf rank draw is a file draw.
	// The sampler uses the caller's stream for reproducibility; the Zipf
	// CDF itself is immutable after Generate.
	u := src.Float64()
	k := sort.SearchFloat64s(c.cum, u)
	if k >= len(c.files) {
		k = len(c.files) - 1
	}
	// SearchFloat64s returns the first index with cum[k] >= u, which is the
	// rank whose CDF bucket contains u.
	return ids.FileID(k)
}

// TotalBytes returns the summed size of all files.
func (c *Catalog) TotalBytes() units.Size {
	var total units.Size
	for i := range c.files {
		total += c.files[i].Size
	}
	return total
}

// MeanBitrate returns the popularity-weighted mean bitrate, i.e. the
// expected bandwidth reservation of a random request.
func (c *Catalog) MeanBitrate() units.BytesPerSec {
	var sum float64
	for i := range c.files {
		sum += float64(c.files[i].Bitrate) * c.files[i].PopProb
	}
	return units.BytesPerSec(sum)
}

// MeanDuration returns the popularity-weighted mean occupation time of a
// random request, in seconds.
func (c *Catalog) MeanDuration() float64 {
	var sum float64
	for i := range c.files {
		sum += c.files[i].DurationSec * c.files[i].PopProb
	}
	return sum
}
