package catalog

import (
	"fmt"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

// Placement maps each file to the set of RMs holding a replica. The paper's
// evaluation "replicate[s] each of them as three replicas and then
// distribute[s] these three replicas randomly into 16 RMs"; Placement is
// the initial (static) state the Metadata Manager is seeded with.
type Placement struct {
	replicas map[ids.FileID][]ids.RMID
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{replicas: make(map[ids.FileID][]ids.RMID)}
}

// StaticRandom places degree replicas of every catalog file uniformly at
// random on distinct RMs drawn from rms. It returns an error if degree
// exceeds the number of RMs.
func StaticRandom(c *Catalog, rms []ids.RMID, degree int, src *rng.Source) (*Placement, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("catalog: replica degree must be positive, got %d", degree)
	}
	if degree > len(rms) {
		return nil, fmt.Errorf("catalog: replica degree %d exceeds %d RMs", degree, len(rms))
	}
	p := NewPlacement()
	scratch := make([]ids.RMID, len(rms))
	for _, f := range c.Files() {
		copy(scratch, rms)
		// Partial Fisher-Yates: the first `degree` entries after shuffling
		// are a uniform sample of distinct RMs.
		for i := 0; i < degree; i++ {
			j := i + src.Intn(len(scratch)-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
		}
		set := make([]ids.RMID, degree)
		copy(set, scratch[:degree])
		p.replicas[f.ID] = set
	}
	return p, nil
}

// Holders returns the RMs holding a replica of file id. The returned slice
// is a copy and safe to retain.
func (p *Placement) Holders(id ids.FileID) []ids.RMID {
	hs := p.replicas[id]
	out := make([]ids.RMID, len(hs))
	copy(out, hs)
	return out
}

// Has reports whether rm holds a replica of file id.
func (p *Placement) Has(id ids.FileID, rm ids.RMID) bool {
	for _, h := range p.replicas[id] {
		if h == rm {
			return true
		}
	}
	return false
}

// Degree returns the current replica count for file id.
func (p *Placement) Degree(id ids.FileID) int { return len(p.replicas[id]) }

// Add records a new replica of file id on rm. Adding an existing replica is
// an error: the replication protocol's destination endpoint must have
// rejected the transfer instead.
func (p *Placement) Add(id ids.FileID, rm ids.RMID) error {
	if p.Has(id, rm) {
		return fmt.Errorf("catalog: %v already holds %v", rm, id)
	}
	p.replicas[id] = append(p.replicas[id], rm)
	return nil
}

// Remove deletes the replica of file id on rm. Removing the last replica is
// refused: it would make the file unreachable.
func (p *Placement) Remove(id ids.FileID, rm ids.RMID) error {
	hs := p.replicas[id]
	if len(hs) <= 1 {
		return fmt.Errorf("catalog: refusing to remove last replica of %v", id)
	}
	for i, h := range hs {
		if h == rm {
			p.replicas[id] = append(hs[:i], hs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("catalog: %v holds no replica of %v", rm, id)
}

// FilesOn returns the IDs of all files with a replica on rm, in ascending
// file-ID order is NOT guaranteed; callers needing determinism must sort.
func (p *Placement) FilesOn(rm ids.RMID) []ids.FileID {
	var out []ids.FileID
	for id, hs := range p.replicas {
		for _, h := range hs {
			if h == rm {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Files returns the IDs of all files with at least one replica. Order is
// NOT guaranteed; callers needing determinism must sort.
func (p *Placement) Files() []ids.FileID {
	out := make([]ids.FileID, 0, len(p.replicas))
	for id := range p.replicas {
		out = append(out, id)
	}
	return out
}

// NumFiles returns the number of files with at least one replica.
func (p *Placement) NumFiles() int { return len(p.replicas) }

// Clone returns a deep copy, used to reset state between experiment runs.
func (p *Placement) Clone() *Placement {
	q := NewPlacement()
	for id, hs := range p.replicas {
		cp := make([]ids.RMID, len(hs))
		copy(cp, hs)
		q.replicas[id] = cp
	}
	return q
}

// Validate checks structural invariants: every file has at least one
// replica and no RM appears twice for the same file.
func (p *Placement) Validate() error {
	for id, hs := range p.replicas {
		if len(hs) == 0 {
			return fmt.Errorf("catalog: %v has zero replicas", id)
		}
		seen := make(map[ids.RMID]bool, len(hs))
		for _, h := range hs {
			if seen[h] {
				return fmt.Errorf("catalog: %v has duplicate replica on %v", id, h)
			}
			seen[h] = true
		}
	}
	return nil
}
