package cluster

import (
	"math"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/workload"
)

// quickConfig returns a small-but-loaded configuration that runs in
// milliseconds.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload = workload.Config{NumUsers: 96, NumDFSC: 4, MeanArrivalSec: 120, HorizonSec: 1200}
	cfg.Catalog.NumFiles = 200
	return cfg
}

func TestPaperTopology(t *testing.T) {
	caps := PaperTopology()
	if len(caps) != 16 {
		t.Fatalf("topology has %d RMs, want 16", len(caps))
	}
	large := map[int]bool{0: true, 8: true}
	medium := map[int]bool{1: true, 2: true, 9: true, 10: true}
	var total units.BytesPerSec
	for i, c := range caps {
		total += c
		switch {
		case large[i]:
			if c != units.Mbps(128) {
				t.Errorf("RM%d capacity %v, want 128 Mbps", i+1, c)
			}
		case medium[i]:
			if c != units.Mbps(19) {
				t.Errorf("RM%d capacity %v, want 19 Mbps", i+1, c)
			}
		default:
			if c != units.Mbps(18) {
				t.Errorf("RM%d capacity %v, want 18 Mbps", i+1, c)
			}
		}
	}
	// 2×128 + 4×19 + 10×18 = 512 Mbps.
	if total != units.Mbps(512) {
		t.Errorf("aggregate capacity %v, want 512 Mbps", total)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := cfg
	bad.ReplicaDegree = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero replica degree accepted")
	}
	bad = cfg
	bad.RMCapacities = []units.BytesPerSec{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = cfg
	bad.RMCapacities = []units.BytesPerSec{}
	if err := bad.Validate(); err == nil {
		t.Error("empty topology accepted")
	}
	bad = cfg
	bad.SampleEverySec = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sampling accepted")
	}
	bad = cfg
	bad.Oversub = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-nominal oversubscription accepted")
	}
	ok := cfg
	ok.Oversub = 1.5
	if err := ok.Validate(); err != nil {
		t.Errorf("oversubscription 1.5 rejected: %v", err)
	}
}

// TestOversubAdmitsPastNominalCapacity pins the oversubscription-aware
// admission end to end in the DES: a firm cluster at Oversub 2 admits
// demand past nominal capacity, its ledgers report the ratio, and the
// assured integral never credits more than real capacity — the excess
// shows up as over-allocation, not phantom throughput.
func TestOversubAdmitsPastNominalCapacity(t *testing.T) {
	base := DefaultConfig()
	base.RMCapacities = []units.BytesPerSec{units.Mbps(4)}
	base.ReplicaDegree = 1
	base.Scenario = qos.Firm
	base.Catalog.NumFiles = 50
	base.Workload = workload.Config{
		NumUsers:       200,
		NumDFSC:        4,
		MeanArrivalSec: 60,
		HorizonSec:     600,
	}

	nominal, err := RunConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Oversub = 2
	relaxed, err := RunConfig(over)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.FailRate >= nominal.FailRate {
		t.Fatalf("oversub fail rate %.3f did not improve on nominal %.3f",
			relaxed.FailRate, nominal.FailRate)
	}
	snap := relaxed.PerRM[0].Snap
	if snap.Oversub != 2 {
		t.Fatalf("ledger reports oversub %g, want 2", snap.Oversub)
	}
	if capSecs := float64(snap.Capacity) * relaxed.HorizonSec; snap.AssuredByteSecs > capSecs+1e-6 {
		t.Fatalf("assured integral %.0f exceeds capacity×horizon %.0f", snap.AssuredByteSecs, capSecs)
	}
	if snap.OverBytes <= 0 {
		t.Fatal("oversubscribed run recorded no over-allocated byte-seconds")
	}
	if got := snap.AssuredByteSecs + snap.OverBytes; got != snap.AllocByteSecs {
		t.Fatalf("assured %.0f + over %.0f != alloc %.0f", snap.AssuredByteSecs, snap.OverBytes, snap.AllocByteSecs)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickConfig()
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRequests != b.TotalRequests || a.FailedRequests != b.FailedRequests {
		t.Fatalf("request counts differ: %d/%d vs %d/%d",
			a.TotalRequests, a.FailedRequests, b.TotalRequests, b.FailedRequests)
	}
	if a.OverAllocate != b.OverAllocate || a.FailRate != b.FailRate {
		t.Fatalf("metrics differ across same-seed runs")
	}
	for i := range a.PerRM {
		if a.PerRM[i].Snap != b.PerRM[i].Snap {
			t.Fatalf("RM%d snapshot differs across same-seed runs", i+1)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickConfig()
	a, _ := RunConfig(cfg)
	cfg.Seed = 2
	b, _ := RunConfig(cfg)
	if a.TotalRequests == b.TotalRequests && a.OverAllocate == b.OverAllocate {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSoftNeverFails(t *testing.T) {
	cfg := quickConfig()
	cfg.Scenario = qos.Soft
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("%d failures in soft scenario", res.FailedRequests)
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests ran")
	}
}

func TestFirmNeverOverAllocates(t *testing.T) {
	cfg := quickConfig()
	cfg.Scenario = qos.Firm
	cfg.Workload.NumUsers = 256 // push hard
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverAllocate != 0 {
		t.Fatalf("over-allocate %v in firm scenario, want 0", res.OverAllocate)
	}
	for _, rmRes := range res.PerRM {
		if rmRes.Snap.OverBytes != 0 {
			t.Fatalf("%v over-allocated in firm scenario", rmRes.ID)
		}
	}
	if res.FailedRequests == 0 {
		t.Fatal("expected some failures under heavy firm load")
	}
}

func TestAssignedBytesConservation(t *testing.T) {
	// Σ assigned bytes across RMs equals Σ size of admitted requests.
	cfg := quickConfig()
	cfg.Scenario = qos.Firm
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var assigned float64
	for _, r := range res.PerRM {
		assigned += r.Snap.AssignedBytes
	}
	var admitted float64
	var admittedCount int64
	// Re-derive: every admitted request contributed bitrate×duration.
	// Count via RM stats (Opens) and compare magnitudes.
	for _, st := range res.RMStats {
		admittedCount += st.Opens
	}
	if admittedCount != res.TotalRequests-res.FailedRequests {
		t.Fatalf("opens %d != admitted %d", admittedCount, res.TotalRequests-res.FailedRequests)
	}
	meanSize := float64(cl.Catalog().TotalBytes()) / float64(cl.Catalog().Len())
	if assigned <= 0 || assigned > 10*meanSize*float64(admittedCount) {
		t.Fatalf("assigned bytes %.0f implausible for %d requests", assigned, admittedCount)
	}
	_ = admitted
}

func TestUtilizationSampling(t *testing.T) {
	cfg := quickConfig()
	cfg.SampleEverySec = 60
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 16 {
		t.Fatalf("%d series, want 16", len(res.Utilization))
	}
	wantSamples := int(cfg.Workload.HorizonSec/cfg.SampleEverySec) + 1
	for id, s := range res.Utilization {
		if s.Len() != wantSamples {
			t.Fatalf("%v series has %d samples, want %d", id, s.Len(), wantSamples)
		}
		for _, p := range s.Points {
			if p.Value < 0 {
				t.Fatalf("%v negative utilization sample", id)
			}
		}
	}
}

func TestNoSamplingByDefault(t *testing.T) {
	res, err := RunConfig(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization != nil {
		t.Fatal("sampling ran without being requested")
	}
}

func TestDynamicReplicationChangesPlacement(t *testing.T) {
	cfg := quickConfig()
	cfg.Workload.NumUsers = 256
	cfg.Replication = replication.DefaultConfig(replication.Rep(1, 8))
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications == 0 {
		t.Fatal("no replications under heavy load with Rep(1,8)")
	}
	// Replica counts stay within the bound.
	for f := 0; f < cl.Catalog().Len(); f++ {
		if n := cl.Mapper().ReplicaCount(ids.FileID(f)); n < 1 || n > 8 {
			t.Fatalf("file%d has %d replicas, want within [1, 8]", f, n)
		}
	}
	if err := cl.Mapper().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRep13KeepsDegreeAtBound(t *testing.T) {
	cfg := quickConfig()
	cfg.Workload.NumUsers = 256
	cfg.Replication = replication.DefaultConfig(replication.Rep(1, 3))
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications == 0 {
		t.Fatal("no replications under heavy load with Rep(1,3)")
	}
	if res.Migrations == 0 {
		t.Fatal("Rep(1,3) at degree 3 must migrate")
	}
	for f := 0; f < cl.Catalog().Len(); f++ {
		if n := cl.Mapper().ReplicaCount(ids.FileID(f)); n < 1 || n > 4 {
			// 4 transiently only during an in-flight migration; at the end
			// of a run a migration may still be pending at the horizon.
			t.Fatalf("file%d has %d replicas under Rep(1,3)", f, n)
		}
	}
}

func TestPolicyOrderingUnderLoad(t *testing.T) {
	// The paper's core claim: (1,0,0) beats (0,0,0) on both criteria.
	base := quickConfig()
	base.Workload.NumUsers = 256

	softRandom, softRem := runPair(t, base, qos.Soft)
	if softRem.OverAllocate >= softRandom.OverAllocate {
		t.Fatalf("(1,0,0) over-allocate %v not better than (0,0,0) %v",
			softRem.OverAllocate, softRandom.OverAllocate)
	}
	firmRandom, firmRem := runPair(t, base, qos.Firm)
	if firmRem.FailRate >= firmRandom.FailRate {
		t.Fatalf("(1,0,0) fail rate %v not better than (0,0,0) %v",
			firmRem.FailRate, firmRandom.FailRate)
	}
}

func runPair(t *testing.T, base Config, scen qos.Scenario) (random, rem *Results) {
	t.Helper()
	cfg := base
	cfg.Scenario = scen
	cfg.Policy = selection.Random
	var err error
	random, err = RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = selection.RemOnly
	rem, err = RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return random, rem
}

func TestBuildSeedsRMsWithPlacement(t *testing.T) {
	cfg := quickConfig()
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every file's holders actually hold the file.
	for f := 0; f < cl.Catalog().Len(); f++ {
		holders := cl.Mapper().Lookup(ids.FileID(f))
		if len(holders) != cfg.ReplicaDegree {
			t.Fatalf("file%d has %d holders, want %d", f, len(holders), cfg.ReplicaDegree)
		}
		for _, h := range holders {
			if !cl.RM(h).HasFile(ids.FileID(f)) {
				t.Fatalf("%v registered for file%d but does not hold it", h, f)
			}
		}
	}
}

func TestCustomTopology(t *testing.T) {
	cfg := quickConfig()
	cfg.RMCapacities = []units.BytesPerSec{units.Mbps(50), units.Mbps(50), units.Mbps(50)}
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRM) != 3 {
		t.Fatalf("%d RMs, want 3", len(res.PerRM))
	}
}

func TestOverAllocateRatioBounds(t *testing.T) {
	cfg := quickConfig()
	cfg.Workload.NumUsers = 300
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverAllocate < 0 || res.OverAllocate > 1 || math.IsNaN(res.OverAllocate) {
		t.Fatalf("aggregate R_OA = %v out of [0,1]", res.OverAllocate)
	}
	for _, r := range res.PerRM {
		if oa := r.OverAllocateRatio(); oa < 0 || math.IsNaN(oa) {
			t.Fatalf("%v R_OA = %v", r.ID, oa)
		}
	}
}
