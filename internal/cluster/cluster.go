// Package cluster assembles the full distributed file system inside the
// discrete-event simulation and runs the paper's experiments on it: one
// Metadata Manager, sixteen Resource Managers with the evaluation's
// heterogeneous bandwidth topology, eight DFS clients, the synthetic video
// catalog with three static replicas per file, and the multi-user NET
// access pattern.
//
// This package is the substitute for the paper's physical testbed (5 hosts,
// 25 Xen VMs under cgroup-blkio): the metrics it reports are functions of
// the bandwidth-allocation trajectory, which the DES reproduces exactly.
package cluster

import (
	"fmt"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/metrics"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/tenant"
	"dfsqos/internal/units"
	"dfsqos/internal/workload"
)

// PaperTopology returns the 16 RM capacities of the evaluation: "two extra
// large RMs with 128Mbps of bandwidth, i.e. RM1 and RM9; four RMs with
// 19Mbps, i.e. RM2, RM3, RM10 and RM11; and the rest of the RMs with
// 18Mbps". Index i holds the capacity of RM(i+1).
func PaperTopology() []units.BytesPerSec {
	caps := make([]units.BytesPerSec, 16)
	for i := range caps {
		caps[i] = units.Mbps(18)
	}
	caps[0] = units.Mbps(128) // RM1
	caps[8] = units.Mbps(128) // RM9
	caps[1] = units.Mbps(19)  // RM2
	caps[2] = units.Mbps(19)  // RM3
	caps[9] = units.Mbps(19)  // RM10
	caps[10] = units.Mbps(19) // RM11
	return caps
}

// ScaledTopology tiles the paper's 16-RM heterogeneous topology n times
// (n ≥ 1): the scenario engine's way of growing aggregate capacity while
// keeping the paper's large/small capacity shape intact. RM IDs remain
// 1-based positions in the tiled slice.
func ScaledTopology(n int) []units.BytesPerSec {
	if n < 1 {
		n = 1
	}
	base := PaperTopology()
	caps := make([]units.BytesPerSec, 0, n*len(base))
	for i := 0; i < n; i++ {
		caps = append(caps, base...)
	}
	return caps
}

// Config describes one experiment run.
type Config struct {
	// RMCapacities lists each RM's disk bandwidth; RM IDs are 1-based
	// indices into this slice. Nil means PaperTopology.
	RMCapacities []units.BytesPerSec
	// RMStorage is each RM's disk size (paper: 16 GB virtual disks).
	RMStorage units.Size
	// Catalog parameterizes the synthetic video corpus.
	Catalog catalog.Config
	// ReplicaDegree is the static replica count per file (paper: 3).
	ReplicaDegree int
	// Workload parameterizes the access pattern.
	Workload workload.Config
	// FlashCrowd optionally injects a sudden popularity shift into the
	// pattern (nil: none). See workload.FlashCrowd.
	FlashCrowd *workload.FlashCrowd
	// Policy is the resource-selection policy (α, β, γ).
	Policy selection.Policy
	// BroadcastCNP replaces the ECNP matchmaker lookup with a plain-CNP
	// CFP broadcast to every RM (see dfsc.Options.BroadcastCNP).
	BroadcastCNP bool
	// Scenario selects soft or firm real-time allocation.
	Scenario qos.Scenario
	// Oversub is every RM's admission oversubscription ratio: firm
	// admission accepts load up to capacity × Oversub while enforcement
	// still guarantees each reservation's assured floor (work-conserving
	// borrowing funds the excess). 0 or 1 is nominal capacity; values
	// below 1 are rejected.
	Oversub float64
	// Replication configures the dynamic replication mechanism.
	Replication replication.Config
	// GC configures cold-replica deletion (zero value: disabled).
	GC replication.GCConfig
	// History configures the RMs' two-queue trend recorders.
	History history.Config
	// MMShards distributes the Metadata Manager over a consistent-hash
	// ring of this many shards (the paper's DHT note); 0 or 1 runs the
	// single MM of the paper's experiments.
	MMShards int
	// TenantQuotas is the per-tenant quota table; when non-empty every
	// RM is built with its own tenant.Ledger seeded from it, so the
	// quotas are enforced per RM (a tenant with a 20 Mbps cap may hold
	// 20 Mbps on each RM, matching the per-device blkio enforcement of
	// the live deployment). Tenants absent from the table are
	// unlimited. Empty or nil disables tenancy entirely: no ledger is
	// installed and RMs behave exactly as before tenancy existed.
	TenantQuotas map[ids.TenantID]tenant.Quota
	// ClientTenants assigns a tenant identity to each DFSC: client i
	// acts for ClientTenants[i % len(ClientTenants)], so a two-entry
	// slice splits the client population in half. Empty leaves every
	// client untenanted (ids.NoneTenant).
	ClientTenants []ids.TenantID
	// Seed is the master seed; every stream in the run derives from it.
	Seed uint64
	// SampleEverySec enables utilization sampling at this period when
	// positive (the time series behind Figs. 4-6).
	SampleEverySec float64
	// AuditEverySec runs the invariant auditor at this period when
	// positive: the QoS contract, replica-map sanity and storage bounds
	// are checked during the run and violations fail it. Tests enable
	// this; experiment sweeps leave it off for speed.
	AuditEverySec float64
}

// DefaultConfig is the paper's standard setup: 16-RM topology, 1000 files
// × 3 replicas, 256 users over 2 h, policy (1,0,0), soft real-time, static
// replication.
func DefaultConfig() Config {
	return Config{
		RMStorage:     16 * units.GB,
		Catalog:       catalog.DefaultConfig(),
		ReplicaDegree: 3,
		Workload:      workload.DefaultConfig(),
		Policy:        selection.RemOnly,
		Scenario:      qos.Soft,
		Replication:   replication.DefaultConfig(replication.Static()),
		History:       history.DefaultConfig(),
		Seed:          1,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	if c.RMCapacities != nil {
		if len(c.RMCapacities) == 0 {
			return fmt.Errorf("cluster: empty RM topology")
		}
		for i, cap := range c.RMCapacities {
			if cap <= 0 {
				return fmt.Errorf("cluster: RM%d has non-positive capacity", i+1)
			}
		}
	}
	if c.ReplicaDegree <= 0 {
		return fmt.Errorf("cluster: ReplicaDegree must be positive, got %d", c.ReplicaDegree)
	}
	if err := c.Catalog.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.FlashCrowd != nil {
		if err := c.FlashCrowd.Validate(); err != nil {
			return err
		}
	}
	if err := c.Replication.Validate(); err != nil {
		return err
	}
	if err := c.GC.Validate(); err != nil {
		return err
	}
	if c.Oversub != 0 && c.Oversub < 1 {
		return fmt.Errorf("cluster: Oversub %g would shrink capacity below nominal", c.Oversub)
	}
	if c.SampleEverySec < 0 {
		return fmt.Errorf("cluster: negative SampleEverySec")
	}
	if c.AuditEverySec < 0 {
		return fmt.Errorf("cluster: negative AuditEverySec")
	}
	if c.MMShards < 0 {
		return fmt.Errorf("cluster: negative MMShards")
	}
	for t := range c.TenantQuotas {
		if !t.Valid() {
			return fmt.Errorf("cluster: quota for invalid tenant %v (real tenants are numbered from 1)", t)
		}
	}
	for i, t := range c.ClientTenants {
		if t < 0 {
			return fmt.Errorf("cluster: ClientTenants[%d] is negative", i)
		}
	}
	return nil
}

// TenantOf returns the tenant identity assigned to the given client by
// ClientTenants, or ids.NoneTenant when tenancy is off.
func (c Config) TenantOf(d ids.DFSCID) ids.TenantID {
	if len(c.ClientTenants) == 0 {
		return ids.NoneTenant
	}
	return c.ClientTenants[int(d)%len(c.ClientTenants)]
}

// Mapper is the metadata-manager surface a cluster exposes: the ECNP
// Mapper operations plus invariant validation. Both the single manager and
// the DHT-sharded manager satisfy it.
type Mapper interface {
	ecnp.Mapper
	Validate() error
	FilesOn(rm ids.RMID) []ids.FileID
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	cfg     Config
	sched   *simtime.Scheduler
	mapper  Mapper
	rms     []*rm.RM // index i is RM(i+1)
	clients []*dfsc.Client
	cat     *catalog.Catalog
	pattern *workload.Pattern
}

// Results aggregates one run's outcome.
type Results struct {
	// PerRM holds one entry per RM in ID order.
	PerRM []metrics.RMResult
	// RMStats holds the RM event counters in the same order.
	RMStats []rm.Stats
	// TotalRequests and FailedRequests aggregate the client counters.
	TotalRequests  int64
	FailedRequests int64
	// FailRate is the firm real-time criterion.
	FailRate float64
	// OverAllocate is the soft real-time criterion Σ S_OA / Σ S_TA.
	OverAllocate float64
	// Utilization maps RM ID to its sampled allocated-bandwidth series
	// (present only when Config.SampleEverySec > 0).
	Utilization map[ids.RMID]*metrics.Series
	// HorizonSec echoes the run length.
	HorizonSec float64
	// Replications is the total number of completed dynamic copies.
	Replications int64
	// Migrations is the number of own-replica deletions after exceeding
	// the replica bound.
	Migrations int64
	// GCEvictions is the number of cold replicas deleted by the storage
	// collector.
	GCEvictions int64
	// Messages is the total control-plane message count across clients
	// (queries, CFPs, bids, opens and their replies).
	Messages int64
	// TenantUsage aggregates each tenant's end-of-run ledger state
	// summed across all RMs (nil when tenancy is off). Bandwidth and
	// Streams should be zero after a clean drain; non-zero Bytes means
	// the tenant's stored files survived the run, which is normal.
	TenantUsage map[ids.TenantID]tenant.Usage
}

// SeededCorpus derives the catalog and static placement every component of
// a deployment agrees on from the master seed alone. The live daemons
// (cmd/rmd, cmd/dfsc) use it so that an RM knows which files to provision
// and a client knows every file's bitrate without any copying step —
// exactly the streams Build uses internally, so simulation and live
// deployments of the same seed serve the same corpus.
func SeededCorpus(seed uint64, catCfg catalog.Config, numRMs, degree int) (*catalog.Catalog, *catalog.Placement, error) {
	master := rng.New(seed)
	cat, err := catalog.Generate(catCfg, master.Split("catalog"))
	if err != nil {
		return nil, nil, err
	}
	rmIDs := make([]ids.RMID, numRMs)
	for i := range rmIDs {
		rmIDs[i] = ids.RMID(i + 1)
	}
	placement, err := catalog.StaticRandom(cat, rmIDs, degree, master.Split("placement"))
	if err != nil {
		return nil, nil, err
	}
	return cat, placement, nil
}

// Build wires a cluster from cfg following the paper's initialization
// order: the MM first, then every RM registers, and the DFSCs come last.
func Build(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	caps := cfg.RMCapacities
	if caps == nil {
		caps = PaperTopology()
	}
	master := rng.New(cfg.Seed)

	cat, err := catalog.Generate(cfg.Catalog, master.Split("catalog"))
	if err != nil {
		return nil, err
	}
	rmIDs := make([]ids.RMID, len(caps))
	for i := range caps {
		rmIDs[i] = ids.RMID(i + 1)
	}
	placement, err := catalog.StaticRandom(cat, rmIDs, cfg.ReplicaDegree, master.Split("placement"))
	if err != nil {
		return nil, err
	}

	sched := simtime.NewScheduler()
	adapter := ecnp.SimScheduler{S: sched}
	// The single MM is seeded with the placement (the paper's setup); a
	// sharded MM starts empty and is populated by the RM registrations,
	// which carry each RM's file list.
	var mapper Mapper
	if cfg.MMShards > 1 {
		mapper = mm.NewSharded(cfg.MMShards)
	} else {
		mapper = mm.NewWithPlacement(placement)
	}

	rms := make([]*rm.RM, len(caps))
	dir := make(ecnp.StaticDirectory, len(caps))
	for i, capBW := range caps {
		id := rmIDs[i]
		files := make(map[ids.FileID]rm.FileMeta)
		for _, f := range placement.FilesOn(id) {
			meta := cat.File(f)
			files[f] = rm.FileMeta{
				Bitrate:     meta.Bitrate,
				Size:        meta.Size,
				DurationSec: meta.DurationSec,
			}
		}
		var ledger *tenant.Ledger
		if len(cfg.TenantQuotas) > 0 {
			ledger = tenant.NewLedger()
			for t, q := range cfg.TenantQuotas {
				ledger.Set(t, q)
			}
		}
		node, err := rm.New(rm.Options{
			Info: ecnp.RMInfo{
				ID:           id,
				Capacity:     capBW,
				StorageBytes: cfg.RMStorage,
			},
			Scheduler:   adapter,
			Mapper:      mapper,
			History:     cfg.History,
			Replication: cfg.Replication,
			GC:          cfg.GC,
			Oversub:     cfg.Oversub,
			Tenants:     ledger,
			Rand:        master.Split(fmt.Sprintf("rm/%d", id)),
			Files:       files,
		})
		if err != nil {
			return nil, err
		}
		if err := node.Register(); err != nil {
			return nil, err
		}
		rms[i] = node
		dir[id] = node
	}
	for _, node := range rms {
		node.SetDirectory(dir)
	}

	clients := make([]*dfsc.Client, cfg.Workload.NumDFSC)
	for i := range clients {
		c, err := dfsc.New(dfsc.Options{
			ID:           ids.DFSCID(i),
			Mapper:       mapper,
			Directory:    dir,
			Scheduler:    adapter,
			Catalog:      cat,
			Policy:       cfg.Policy,
			Scenario:     cfg.Scenario,
			Tenant:       cfg.TenantOf(ids.DFSCID(i)),
			Rand:         master.Split(fmt.Sprintf("dfsc/%d", i)),
			BroadcastCNP: cfg.BroadcastCNP,
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	pattern, err := workload.Generate(cfg.Workload, cat, master.Split("workload"))
	if err != nil {
		return nil, err
	}
	if cfg.FlashCrowd != nil {
		if _, err := workload.ApplyFlashCrowd(pattern, cat, *cfg.FlashCrowd, master); err != nil {
			return nil, err
		}
	}

	return &Cluster{
		cfg:     cfg,
		sched:   sched,
		mapper:  mapper,
		rms:     rms,
		clients: clients,
		cat:     cat,
		pattern: pattern,
	}, nil
}

// Catalog exposes the run's file corpus.
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// Mapper exposes the Metadata Manager (single or sharded).
func (c *Cluster) Mapper() Mapper { return c.mapper }

// Pattern exposes the generated access pattern.
func (c *Cluster) Pattern() *workload.Pattern { return c.pattern }

// UsePattern replaces the generated access pattern with an external trace
// (e.g. one produced by cmd/workloadgen), so the exact same request
// sequence can be replayed across configurations or fed to the live
// deployment via cmd/replay. Must be called before Run.
func (c *Cluster) UsePattern(p *workload.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Config.NumDFSC > c.cfg.Workload.NumDFSC {
		return fmt.Errorf("cluster: trace spans %d DFSCs, cluster has %d",
			p.Config.NumDFSC, c.cfg.Workload.NumDFSC)
	}
	for i, r := range p.Requests {
		if int(r.File) >= c.cat.Len() {
			return fmt.Errorf("cluster: trace request %d targets %v beyond the catalog (%d files)",
				i, r.File, c.cat.Len())
		}
	}
	if p.Config.HorizonSec > c.cfg.Workload.HorizonSec {
		return fmt.Errorf("cluster: trace horizon %.0fs exceeds run horizon %.0fs",
			p.Config.HorizonSec, c.cfg.Workload.HorizonSec)
	}
	c.pattern = p
	return nil
}

// RM returns the resource manager with the given 1-based ID.
func (c *Cluster) RM(id ids.RMID) *rm.RM { return c.rms[int(id)-1] }

// Observer receives every request's outcome as the run executes: the
// request as scheduled, the access outcome, and the wall-clock time the
// dispatch took (virtual time is free in the DES, so wall time is the
// engine's honest service-latency signal — it is what the scenario
// engine's percentile gates measure). Called from inside the event loop;
// keep it cheap.
type Observer func(req workload.Request, out dfsc.Outcome, wall time.Duration)

// Run schedules the access pattern, executes the simulation to the horizon
// and returns the accumulated results.
func (c *Cluster) Run() (*Results, error) { return c.RunWithObserver(nil) }

// dispatch routes one request to its client by operation kind: reads run
// the full three-phase access, writes run the store flow, metadata probes
// run the MM lookup only.
func (c *Cluster) dispatch(req workload.Request) dfsc.Outcome {
	cl := c.clients[int(req.DFSC)]
	switch req.Op {
	case workload.OpWrite:
		return cl.Store(req.File)
	case workload.OpMeta:
		return cl.Probe(req.File)
	default:
		return cl.Access(req.File)
	}
}

// RunWithObserver is Run with a per-request observation hook (nil
// behaves exactly like Run). Requests dispatch by their Op — the mixed
// scenarios interleave reads, bulk writes and metadata probes on one
// timeline — and obs sees every outcome with its wall-clock dispatch
// cost.
func (c *Cluster) RunWithObserver(obs Observer) (*Results, error) {
	horizon := simtime.Time(c.cfg.Workload.HorizonSec)

	// Schedule every request at its arrival timestamp.
	for _, req := range c.pattern.Requests {
		req := req
		c.sched.Schedule(simtime.Time(req.AtSec), func(simtime.Time) {
			if obs == nil {
				c.dispatch(req)
				return
			}
			start := time.Now()
			out := c.dispatch(req)
			obs(req, out, time.Since(start))
		})
	}

	// Utilization sampling for the figure experiments.
	var series map[ids.RMID]*metrics.Series
	if c.cfg.SampleEverySec > 0 {
		series = make(map[ids.RMID]*metrics.Series, len(c.rms))
		for _, node := range c.rms {
			id := node.Info().ID
			series[id] = &metrics.Series{Name: id.String()}
		}
		c.sched.NewTicker(0, simtime.Duration(c.cfg.SampleEverySec), func(now simtime.Time) {
			for _, node := range c.rms {
				series[node.Info().ID].Append(now, float64(node.Allocated()))
			}
		})
	}

	var aud *auditor
	if c.cfg.AuditEverySec > 0 {
		aud = newAuditor(c)
		c.sched.NewTicker(0, simtime.Duration(c.cfg.AuditEverySec), aud.check)
	}

	c.sched.RunUntil(horizon)

	if aud != nil {
		aud.check(horizon)
		if err := aud.Err(); err != nil {
			return nil, err
		}
	}

	res := &Results{
		PerRM:       make([]metrics.RMResult, len(c.rms)),
		RMStats:     make([]rm.Stats, len(c.rms)),
		Utilization: series,
		HorizonSec:  c.cfg.Workload.HorizonSec,
	}
	for i, node := range c.rms {
		info := node.Info()
		res.PerRM[i] = metrics.RMResult{
			ID:       info.ID,
			Capacity: info.Capacity,
			Snap:     node.Snapshot(horizon),
		}
		st := node.Stats()
		res.RMStats[i] = st
		res.Replications += st.RepTransfers
		res.Migrations += st.RepMigrations
		res.GCEvictions += st.GCEvictions
		for _, u := range node.TenantUsage() {
			if res.TenantUsage == nil {
				res.TenantUsage = make(map[ids.TenantID]tenant.Usage)
			}
			agg := res.TenantUsage[u.Tenant]
			agg.Tenant, agg.Quota = u.Tenant, u.Quota
			agg.Bandwidth += u.Bandwidth
			agg.Bytes += u.Bytes
			agg.Streams += u.Streams
			res.TenantUsage[u.Tenant] = agg
		}
	}
	for _, cl := range c.clients {
		st := cl.Stats()
		res.TotalRequests += st.Requests
		res.FailedRequests += st.Failed
		res.Messages += st.Messages
	}
	res.FailRate = metrics.FailRate(res.FailedRequests, res.TotalRequests)
	res.OverAllocate = metrics.AggregateOverAllocate(res.PerRM)

	if err := c.mapper.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: replica map corrupted after run: %w", err)
	}
	return res, nil
}

// RunConfig is the one-call helper used by experiments and examples.
func RunConfig(cfg Config) (*Results, error) {
	cl, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return cl.Run()
}
