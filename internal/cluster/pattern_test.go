package cluster

import (
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/workload"
)

func TestUsePatternReplacesWorkload(t *testing.T) {
	cfg := quickConfig()
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-built trace: three requests for file 0 through DFSC 0.
	p := &workload.Pattern{
		Config: workload.Config{NumUsers: 1, NumDFSC: 1, MeanArrivalSec: 100, HorizonSec: 400},
		Requests: []workload.Request{
			{AtSec: 10, User: 0, DFSC: 0, File: 0},
			{AtSec: 20, User: 0, DFSC: 0, File: 0},
			{AtSec: 30, User: 0, DFSC: 0, File: 1},
		},
	}
	if err := cl.UsePattern(p); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests != 3 {
		t.Fatalf("ran %d requests, want the trace's 3", res.TotalRequests)
	}
}

func TestUsePatternValidation(t *testing.T) {
	cl, err := Build(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Too many DFSCs.
	bad := &workload.Pattern{
		Config:   workload.Config{NumUsers: 1, NumDFSC: 99, MeanArrivalSec: 1, HorizonSec: 10},
		Requests: []workload.Request{{AtSec: 1, DFSC: 98, File: 0}},
	}
	if err := cl.UsePattern(bad); err == nil {
		t.Fatal("over-wide trace accepted")
	}
	// File beyond the catalog.
	bad = &workload.Pattern{
		Config:   workload.Config{NumUsers: 1, NumDFSC: 1, MeanArrivalSec: 1, HorizonSec: 10},
		Requests: []workload.Request{{AtSec: 1, DFSC: 0, File: ids.FileID(10_000)}},
	}
	if err := cl.UsePattern(bad); err == nil {
		t.Fatal("out-of-catalog trace accepted")
	}
	// Horizon beyond the run.
	bad = &workload.Pattern{
		Config:   workload.Config{NumUsers: 1, NumDFSC: 1, MeanArrivalSec: 1, HorizonSec: 1e9},
		Requests: []workload.Request{{AtSec: 1, DFSC: 0, File: 0}},
	}
	if err := cl.UsePattern(bad); err == nil {
		t.Fatal("over-long trace accepted")
	}
	// Invalid pattern (out of order).
	bad = &workload.Pattern{
		Config: workload.Config{NumUsers: 1, NumDFSC: 1, MeanArrivalSec: 1, HorizonSec: 10},
		Requests: []workload.Request{
			{AtSec: 5, DFSC: 0, File: 0},
			{AtSec: 1, DFSC: 0, File: 0},
		},
	}
	if err := cl.UsePattern(bad); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestShardedMMIsMetricNeutral(t *testing.T) {
	base := quickConfig()
	base.Workload.NumUsers = 192
	single, err := RunConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	base.MMShards = 4
	sharded, err := RunConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata partitioning must not change any QoS outcome.
	if single.TotalRequests != sharded.TotalRequests ||
		single.FailedRequests != sharded.FailedRequests ||
		single.OverAllocate != sharded.OverAllocate {
		t.Fatalf("sharded MM changed outcomes: single %+v vs sharded %+v",
			single.OverAllocate, sharded.OverAllocate)
	}
}
