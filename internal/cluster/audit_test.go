package cluster

import (
	"strings"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
	"dfsqos/internal/workload"
)

// TestAuditPassesHealthyRuns runs the auditor over every scenario ×
// strategy combination at heavy load; none may violate an invariant.
func TestAuditPassesHealthyRuns(t *testing.T) {
	for _, scen := range []qos.Scenario{qos.Soft, qos.Firm} {
		for _, strat := range []replication.Strategy{
			replication.Static(), replication.Rep(1, 3), replication.Rep(3, 8),
		} {
			cfg := quickConfig()
			cfg.Workload.NumUsers = 256
			cfg.Scenario = scen
			cfg.Replication = replication.DefaultConfig(strat)
			cfg.AuditEverySec = 30
			if _, err := RunConfig(cfg); err != nil {
				t.Errorf("%v/%v: %v", scen, strat, err)
			}
		}
	}
}

// TestAuditPassesWithGCAndFlashCrowd stresses the auditor against the two
// extensions most likely to corrupt replica or storage accounting.
func TestAuditPassesWithGCAndFlashCrowd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = workload.Config{NumUsers: 192, NumDFSC: 4, MeanArrivalSec: 120, HorizonSec: 1800}
	cfg.Scenario = qos.Firm
	cfg.Replication = replication.DefaultConfig(replication.Rep(1, 8))
	gc := replication.DefaultGCConfig()
	gc.Enabled = true
	cfg.GC = gc
	cfg.FlashCrowd = &workload.FlashCrowd{AtSec: 900, Fraction: 0.4}
	cfg.AuditEverySec = 30
	if _, err := RunConfig(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAuditDetectsFirmOverAllocation plants a violation directly and
// verifies the auditor reports it: an RM is overdriven behind the
// admission control's back.
func TestAuditDetectsFirmOverAllocation(t *testing.T) {
	cfg := quickConfig()
	cfg.Scenario = qos.Firm
	cfg.AuditEverySec = 10
	cl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sneak a soft (non-firm) open past the firm scenario — the kind of
	// bug the auditor exists to catch.
	cl.sched.Schedule(5, func(simtime.Time) {
		cl.RM(2).Open(ecnp.OpenRequest{
			Request:     999_999_999,
			File:        0,
			Bitrate:     units.Mbps(40), // 2× RM2's 19 Mbit/s
			DurationSec: cfg.Workload.HorizonSec,
			Firm:        false,
		})
	})
	if _, err := cl.Run(); err == nil {
		t.Fatal("auditor missed a firm-mode over-allocation")
	} else if !strings.Contains(err.Error(), "above capacity") {
		t.Fatalf("unexpected audit error: %v", err)
	}
}
