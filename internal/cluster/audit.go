package cluster

import (
	"fmt"

	"dfsqos/internal/ids"
	"dfsqos/internal/simtime"
)

// auditor validates system-wide invariants while a run executes: the QoS
// contract (firm allocations never exceed capacity), replica-map sanity
// (every file reachable, counts within the strategy bound), and storage
// accounting (no RM above its disk size). It runs on a sampling ticker so
// violations are caught near the event that caused them, not at the end.
type auditor struct {
	c          *Cluster
	maxDegree  int
	violations []string
}

// newAuditor derives the invariant bounds from the configuration.
func newAuditor(c *Cluster) *auditor {
	maxDegree := c.cfg.ReplicaDegree
	if c.cfg.Replication.Strategy.Enabled && c.cfg.Replication.Strategy.NMaxR > maxDegree {
		maxDegree = c.cfg.Replication.Strategy.NMaxR
	}
	// One transient extra copy is legal while a bound-exceeding migration
	// is in flight (copy lands before the source deletes its own).
	maxDegree++
	return &auditor{c: c, maxDegree: maxDegree}
}

func (a *auditor) violate(now simtime.Time, format string, args ...any) {
	if len(a.violations) >= 32 {
		return // cap the report; the run is already known-broken
	}
	a.violations = append(a.violations, fmt.Sprintf("t=%v: %s", now, fmt.Sprintf(format, args...)))
}

// check runs one audit pass.
func (a *auditor) check(now simtime.Time) {
	firm := a.c.cfg.Scenario.IsFirm()
	for _, node := range a.c.rms {
		info := node.Info()
		alloc := node.Allocated()
		if firm {
			// In firm real-time the admission test must keep every RM at
			// or below capacity (replication traffic rides the reserve).
			limit := float64(info.Capacity) * 1.000001
			if a.c.cfg.Replication.ChargeTransfers {
				// Charged transfers may legally push past capacity.
				limit = float64(info.Capacity) * 10
			}
			if float64(alloc) > limit {
				a.violate(now, "%v allocated %v above capacity %v in firm mode", info.ID, alloc, info.Capacity)
			}
		}
		if info.StorageBytes > 0 && node.StorageUsed() > info.StorageBytes {
			a.violate(now, "%v storage %v exceeds disk %v", info.ID, node.StorageUsed(), info.StorageBytes)
		}
	}
	if err := a.c.mapper.Validate(); err != nil {
		a.violate(now, "replica map: %v", err)
	}
	for f := 0; f < a.c.cat.Len(); f++ {
		n := a.c.mapper.ReplicaCount(ids.FileID(f))
		if n < 1 {
			a.violate(now, "file%d unreachable (0 replicas)", f)
		}
		if n > a.maxDegree {
			a.violate(now, "file%d has %d replicas, bound %d", f, n, a.maxDegree)
		}
	}
}

// Err folds the collected violations into one error, or nil.
func (a *auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("cluster: %d invariant violations, first: %s", len(a.violations), a.violations[0])
}
