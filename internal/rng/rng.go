// Package rng provides deterministic, splittable random-number streams and
// the distributions the paper's workload model needs: the negative
// exponential distribution (NET) for request arrival times and a Zipf-like
// popularity distribution over the video catalog.
//
// Every source of randomness in a simulation run is derived from a single
// master seed through named streams, so an experiment rerun with the same
// seed is bit-identical regardless of how many streams are consumed or in
// which order they are created.
package rng

import (
	"math"
)

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used both to seed streams and to hash stream names.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashName folds a stream name into a 64-bit value with an FNV-1a pass
// followed by a splitmix64 finalizer for avalanche.
func hashName(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return splitmix64(&h)
}

// Source is a deterministic pseudo-random stream (xoshiro256**).
// It is not safe for concurrent use; split one Source per goroutine or per
// simulation actor instead of sharing.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, as recommended by
// the xoshiro authors (avoids correlated low-entropy states).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// An all-zero state would be a fixed point; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent child stream identified by name.
// Children with distinct names are statistically independent of each other
// and of the parent; splitting does not advance the parent stream.
func (s *Source) Split(name string) *Source {
	mix := s.s[0] ^ rotl(s.s[2], 17) ^ hashName(name)
	return New(mix)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in the open interval (0, 1),
// suitable as the U term of the paper's NET equation f(x) = −β·ln U,
// where U = 0 would yield an infinite inter-arrival time.
func (s *Source) OpenFloat64() float64 {
	for {
		v := s.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= -un%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Shuffle pseudo-randomly permutes n elements via the provided swap func
// using the Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Exp draws from the negative exponential distribution with the given mean,
// implementing the paper's NET arrival model f(x) = −β·ln U with U ∈ (0,1).
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(s.OpenFloat64())
}

// NormFloat64 draws a standard normal value via the Marsaglia polar method.
// Used to jitter synthetic video bitrates around their class means.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Zipf draws ranks from a Zipf distribution over {0, 1, ..., n-1} with skew
// parameter s (probability of rank k proportional to 1/(k+1)^s).
// It precomputes the CDF once and samples by binary search, which keeps a
// draw at O(log n) while remaining exact for any skew including s < 1
// (the stdlib's rejection sampler requires s > 1).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with skew skew > 0.
func NewZipf(src *Source, n int, skew float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if skew <= 0 {
		panic("rng: Zipf with non-positive skew")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), skew)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// P returns the probability mass of rank k.
func (z *Zipf) P(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Draw samples a rank.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice samples index i with probability weights[i]/sum(weights).
// It panics if weights is empty or sums to a non-positive value. Used by the
// Weighted destination-selection strategy (probability proportional to an
// RM's initial bandwidth).
func (s *Source) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: WeightedChoice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: WeightedChoice with non-positive total weight")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // rounding guard
}
