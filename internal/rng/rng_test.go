package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("arrivals")
	b := root.Split("placement")
	a2 := New(7).Split("arrivals")
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("same-named splits diverged at %d", i)
		}
	}
	// Different names must give different streams.
	c := New(7).Split("arrivals")
	d := New(7).Split("placement")
	_ = b
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("splits 'arrivals' and 'placement' collide on %d of 100", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d: %d draws, want ~%.0f", k, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const mean, draws = 300.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.02*mean {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(19)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(New(23), 1000, 0.9)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.P(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf pmf sums to %v", sum)
	}
	if z.P(-1) != 0 || z.P(1000) != 0 {
		t.Fatal("out-of-range ranks should have zero mass")
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(New(29), 100, 1.0)
	for k := 1; k < z.N(); k++ {
		if z.P(k) > z.P(k-1)+1e-15 {
			t.Fatalf("Zipf pmf not non-increasing at rank %d", k)
		}
	}
}

func TestZipfEmpiricalMatchesPMF(t *testing.T) {
	src := New(31)
	z := NewZipf(src, 50, 0.8)
	const draws = 200000
	counts := make([]int, 50)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for k := 0; k < 10; k++ { // check the head where mass is significant
		want := z.P(k) * draws
		if math.Abs(float64(counts[k])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: %d draws, want ~%.0f", k, counts[k], want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n    int
		skew float64
	}{{0, 1}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.skew)
				}
			}()
			NewZipf(New(1), c.n, c.skew)
		}()
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(37)
	weights := []float64{1, 2, 7}
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	total := 10.0
	for i, w := range weights {
		want := w / total * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("choice %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedChoice(%v) did not panic", ws)
				}
			}()
			New(1).WeightedChoice(ws)
		}()
	}
}

// Property: Intn is always within bounds for arbitrary n and seeds.
func TestIntnBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OpenFloat64 never returns 0, so Exp never returns +Inf.
func TestOpenFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.OpenFloat64() <= 0 {
				return false
			}
			if math.IsInf(s.Exp(300), 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(New(1), 1000, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
