package fsapi

import (
	"bytes"
	"io"
	"sort"
	"testing"

	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// mountHarness builds a two-RM simulated cluster and mounts it.
type mountHarness struct {
	sched *simtime.Scheduler
	mount *Mount
	cat   *catalog.Catalog
	rms   map[ids.RMID]*rm.RM
}

func newMountHarness(t *testing.T) *mountHarness {
	return newMountHarnessPartial(t, -1)
}

// newMountHarnessPartial places every catalog file on both RMs except the
// given one (-1: place all).
func newMountHarnessPartial(t *testing.T, skip ids.FileID) *mountHarness {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 5
	cat, err := catalog.Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler()
	adapter := ecnp.SimScheduler{S: sched}
	mapper := mm.New()
	dir := make(ecnp.StaticDirectory)
	rms := make(map[ids.RMID]*rm.RM)
	master := rng.New(5)
	for _, id := range []ids.RMID{1, 2} {
		files := make(map[ids.FileID]rm.FileMeta)
		for _, f := range cat.Files() {
			if f.ID == skip {
				continue
			}
			files[f.ID] = rm.FileMeta{Bitrate: f.Bitrate, Size: f.Size, DurationSec: f.DurationSec}
		}
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: units.Mbps(100), StorageBytes: units.GB},
			Scheduler:   adapter,
			Mapper:      mapper,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       files,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Register()
		node.SetDirectory(dir)
		dir[id] = node
		rms[id] = node
	}
	client, err := dfsc.New(dfsc.Options{
		ID: 1, Mapper: mapper, Directory: dir, Scheduler: adapter,
		Catalog: cat, Policy: selection.RemOnly, Scenario: qos.Firm,
		Rand: master.Split("client"),
	})
	if err != nil {
		t.Fatal(err)
	}
	mount, err := NewMount(Options{
		Client:       client,
		Catalog:      cat,
		Data:         Synthetic{},
		ReplicaCount: mapper.ReplicaCount,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &mountHarness{sched: sched, mount: mount, cat: cat, rms: rms}
}

func TestNewMountValidation(t *testing.T) {
	if _, err := NewMount(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestReaddirListsCatalog(t *testing.T) {
	h := newMountHarness(t)
	names, err := h.mount.Readdir()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("readdir lists %d entries", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("readdir not sorted")
	}
}

func TestGetattr(t *testing.T) {
	h := newMountHarness(t)
	f := h.cat.File(0)
	info, err := h.mount.Getattr(f.Name)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != f.Size || info.Bitrate != f.Bitrate || info.DurationSec != f.DurationSec {
		t.Fatalf("Getattr = %+v, want catalog values", info)
	}
	if info.Replicas != 2 {
		t.Fatalf("Replicas = %d, want 2", info.Replicas)
	}
	if _, err := h.mount.Getattr("nope.mp4"); err == nil {
		t.Fatal("Getattr of missing file succeeded")
	}
}

func TestOpenReadReleaseLifecycle(t *testing.T) {
	h := newMountHarness(t)
	f := h.cat.File(0)
	handle, err := h.mount.Open(f.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The reservation is live on exactly one RM.
	total := h.rms[1].Allocated() + h.rms[2].Allocated()
	if total != f.Bitrate {
		t.Fatalf("allocated %v across RMs, want the bitrate %v", total, f.Bitrate)
	}

	// Sequential reads deliver the full file, deterministically.
	var got bytes.Buffer
	buf := make([]byte, 64*1024)
	var off int64
	for {
		n, err := h.mount.Read(handle, buf, off)
		got.Write(buf[:n])
		off += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got.Len() != int(f.Size) {
		t.Fatalf("read %d bytes, want %d", got.Len(), f.Size)
	}
	// Rereading a slice matches.
	part := make([]byte, 100)
	if _, err := h.mount.Read(handle, part, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, got.Bytes()[1000:1100]) {
		t.Fatal("random-offset read mismatches sequential read")
	}

	if err := h.mount.Release(handle); err != nil {
		t.Fatal(err)
	}
	if h.rms[1].Allocated()+h.rms[2].Allocated() != 0 {
		t.Fatal("bandwidth not returned on release")
	}
	if _, err := h.mount.Read(handle, buf, 0); err == nil {
		t.Fatal("read after release succeeded")
	}
	if err := h.mount.Release(handle); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestOpenMissingFile(t *testing.T) {
	h := newMountHarness(t)
	if _, err := h.mount.Open("missing.mp4"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestReadPastEnd(t *testing.T) {
	h := newMountHarness(t)
	f := h.cat.File(1)
	handle, err := h.mount.Open(f.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.mount.Release(handle)
	buf := make([]byte, 10)
	if _, err := h.mount.Read(handle, buf, int64(f.Size)); err != io.EOF {
		t.Fatalf("read at EOF: %v, want io.EOF", err)
	}
	if _, err := h.mount.Read(handle, buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Short tail read.
	n, err := h.mount.Read(handle, buf, int64(f.Size)-3)
	if n != 3 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (3, EOF)", n, err)
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	h := newMountHarness(t)
	for i := 0; i < 3; i++ {
		if _, err := h.mount.Open(h.cat.File(ids.FileID(i)).Name); err != nil {
			t.Fatal(err)
		}
	}
	if h.mount.OpenHandles() != 3 {
		t.Fatalf("%d handles", h.mount.OpenHandles())
	}
	h.mount.Destroy()
	if h.mount.OpenHandles() != 0 {
		t.Fatal("handles leaked through Destroy")
	}
	if h.rms[1].Allocated()+h.rms[2].Allocated() != 0 {
		t.Fatal("bandwidth leaked through Destroy")
	}
	if _, err := h.mount.Open(h.cat.File(0).Name); err == nil {
		t.Fatal("open after destroy succeeded")
	}
	if _, err := h.mount.Readdir(); err == nil {
		t.Fatal("readdir after destroy succeeded")
	}
}

func TestCreateStoresUnplacedFile(t *testing.T) {
	h := newMountHarness(t)
	// The harness places every catalog file on both RMs, so Create of an
	// existing file must refuse...
	if err := h.mount.Create(h.cat.File(0).Name); err == nil {
		t.Fatal("Create of an already-stored file succeeded")
	}
	if err := h.mount.Create("missing.mp4"); err == nil {
		t.Fatal("Create of an unknown name succeeded")
	}
}

func TestCreateThenOpen(t *testing.T) {
	// A harness variant with file 4 unplaced.
	h := newMountHarnessPartial(t, 4)
	name := h.cat.File(4).Name
	if _, err := h.mount.Open(name); err == nil {
		t.Fatal("Open of an unplaced file succeeded")
	}
	if err := h.mount.Create(name); err != nil {
		t.Fatal(err)
	}
	// The ingest reservation drains after the write duration.
	h.sched.Run()
	handle, err := h.mount.Open(name)
	if err != nil {
		t.Fatalf("Open after Create: %v", err)
	}
	if err := h.mount.Release(handle); err != nil {
		t.Fatal(err)
	}
	info, _ := h.mount.Getattr(name)
	if info.Replicas != 1 {
		t.Fatalf("Replicas = %d after Create", info.Replicas)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	var s Synthetic
	a := make([]byte, 100)
	b := make([]byte, 100)
	s.ReadAt(1, 7, a, 50)
	s.ReadAt(2, 7, b, 50) // RM does not matter
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic content depends on the RM")
	}
	s.ReadAt(1, 8, b, 50)
	if bytes.Equal(a, b) {
		t.Fatal("distinct files share content")
	}
}
