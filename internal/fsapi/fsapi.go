// Package fsapi reproduces the paper's FUSE integration surface (§III-A1)
// as a Go interface. The paper mounts the DFSC through FUSE and implements
// every file operation as a callback: "the query operation for a resource
// list from the DFSC to the MM is implemented in the readdir operation and
// the CFP sending and resource selection algorithms are implemented in open
// operation. In addition, read and write operations will launch the data
// access with the RM determined in open operation."
//
// Kernel modules cannot be loaded in this environment, so the callback
// contract is preserved verbatim behind a Go interface and an in-process
// "mount" binds it to a dfsc.Client: Readdir queries the MM, Open runs the
// CFP/bid/selection negotiation and reserves bandwidth, Read pulls data
// from the serving RM through a pluggable data plane, and Release returns
// the reservation. This substitution is documented in DESIGN.md §2.
package fsapi

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// FileInfo is the getattr result.
type FileInfo struct {
	Name    string
	Size    units.Size
	Bitrate units.BytesPerSec
	// DurationSec is the playback duration (occupation time).
	DurationSec float64
	// Replicas is the current replica count known to the MM.
	Replicas int
}

// Handle identifies an open file.
type Handle uint64

// FileSystem is the FUSE-callback surface of the paper's DFSC.
type FileSystem interface {
	// Getattr returns a file's metadata.
	Getattr(name string) (FileInfo, error)
	// Readdir lists the volume and refreshes the MM resource list —
	// the paper wires the MM query into this callback.
	Readdir() ([]string, error)
	// Open negotiates a QoS-assured data access: CFP fan-out, bid
	// scoring, and bandwidth reservation on the winner.
	Open(name string) (Handle, error)
	// Read transfers file data from the serving RM.
	Read(h Handle, p []byte, off int64) (int, error)
	// Release ends the access and returns the reserved bandwidth.
	Release(h Handle) error
	// Destroy tears the mount down, releasing every open handle.
	Destroy()
}

// DataPlane supplies file bytes from a specific RM. The simulation uses
// Synthetic (deterministic content, no transport); live deployments plug
// an adapter that streams from the serving RM over TCP.
type DataPlane interface {
	ReadAt(rm ids.RMID, file ids.FileID, p []byte, off int64) (int, error)
}

// Mount binds the callback surface to a DFSC.
type Mount struct {
	client *dfsc.Client
	cat    *catalog.Catalog
	data   DataPlane
	lookup func(ids.FileID) int // replica count probe (may be nil)

	mu      sync.Mutex
	nextH   Handle
	open    map[Handle]*openFile
	byName  map[string]ids.FileID
	destroy bool
}

type openFile struct {
	file    ids.FileID
	rm      ids.RMID
	size    int64
	release func()
}

// Options configures a mount.
type Options struct {
	Client  *dfsc.Client
	Catalog *catalog.Catalog
	Data    DataPlane
	// ReplicaCount optionally reports the live replica count for
	// Getattr; nil leaves FileInfo.Replicas at zero.
	ReplicaCount func(ids.FileID) int
}

// NewMount builds the mount.
func NewMount(opt Options) (*Mount, error) {
	if opt.Client == nil || opt.Catalog == nil || opt.Data == nil {
		return nil, fmt.Errorf("fsapi: Client, Catalog and Data are required")
	}
	m := &Mount{
		client: opt.Client,
		cat:    opt.Catalog,
		data:   opt.Data,
		lookup: opt.ReplicaCount,
		open:   make(map[Handle]*openFile),
		byName: make(map[string]ids.FileID, opt.Catalog.Len()),
	}
	for _, f := range opt.Catalog.Files() {
		m.byName[f.Name] = f.ID
	}
	return m, nil
}

// Getattr implements FileSystem.
func (m *Mount) Getattr(name string) (FileInfo, error) {
	id, err := m.resolve(name)
	if err != nil {
		return FileInfo{}, err
	}
	f := m.cat.File(id)
	info := FileInfo{
		Name:        f.Name,
		Size:        f.Size,
		Bitrate:     f.Bitrate,
		DurationSec: f.DurationSec,
	}
	if m.lookup != nil {
		info.Replicas = m.lookup(id)
	}
	return info, nil
}

// Readdir implements FileSystem.
func (m *Mount) Readdir() ([]string, error) {
	m.mu.Lock()
	if m.destroy {
		m.mu.Unlock()
		return nil, fmt.Errorf("fsapi: mount destroyed")
	}
	m.mu.Unlock()
	names := make([]string, 0, m.cat.Len())
	for _, f := range m.cat.Files() {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names, nil
}

// Create stores a catalog file that has no replica yet — the write path
// the paper routes through the same CFP/bid negotiation as reads. The
// call fails if the file already has replicas (use Open) or no RM can
// admit the store.
func (m *Mount) Create(name string) error {
	id, err := m.resolve(name)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.destroy {
		m.mu.Unlock()
		return fmt.Errorf("fsapi: mount destroyed")
	}
	m.mu.Unlock()
	if m.lookup != nil && m.lookup(id) > 0 {
		return fmt.Errorf("fsapi: %s already stored", name)
	}
	out := m.client.Store(id)
	if !out.OK {
		return fmt.Errorf("fsapi: create %s: %s", name, out.Reason)
	}
	return nil
}

// Open implements FileSystem.
func (m *Mount) Open(name string) (Handle, error) {
	id, err := m.resolve(name)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.destroy {
		m.mu.Unlock()
		return 0, fmt.Errorf("fsapi: mount destroyed")
	}
	m.mu.Unlock()

	out, release := m.client.AccessHeld(id)
	if !out.OK {
		return 0, fmt.Errorf("fsapi: open %s: %s", name, out.Reason)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextH++
	h := m.nextH
	m.open[h] = &openFile{
		file:    id,
		rm:      out.RM,
		size:    int64(m.cat.File(id).Size),
		release: release,
	}
	return h, nil
}

// Read implements FileSystem.
func (m *Mount) Read(h Handle, p []byte, off int64) (int, error) {
	m.mu.Lock()
	of, ok := m.open[h]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("fsapi: read on closed handle %d", h)
	}
	if off < 0 {
		return 0, fmt.Errorf("fsapi: negative offset")
	}
	if off >= of.size {
		return 0, io.EOF
	}
	if max := of.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := m.data.ReadAt(of.rm, of.file, p, off)
	if err == nil && off+int64(n) == of.size {
		err = io.EOF
	}
	return n, err
}

// Release implements FileSystem.
func (m *Mount) Release(h Handle) error {
	m.mu.Lock()
	of, ok := m.open[h]
	delete(m.open, h)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("fsapi: release of unknown handle %d", h)
	}
	of.release()
	return nil
}

// Destroy implements FileSystem.
func (m *Mount) Destroy() {
	m.mu.Lock()
	files := make([]*openFile, 0, len(m.open))
	for _, of := range m.open {
		files = append(files, of)
	}
	m.open = make(map[Handle]*openFile)
	m.destroy = true
	m.mu.Unlock()
	for _, of := range files {
		of.release()
	}
}

// OpenHandles reports the number of live handles (diagnostics).
func (m *Mount) OpenHandles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.open)
}

func (m *Mount) resolve(name string) (ids.FileID, error) {
	id, ok := m.byName[name]
	if !ok {
		return ids.NoneFile, fmt.Errorf("fsapi: %s: no such file", name)
	}
	return id, nil
}

var _ FileSystem = (*Mount)(nil)

// Synthetic is a DataPlane serving deterministic per-file content without
// any transport — byte k of file f is a pure function of (f, k). It lets
// simulation-backed mounts exercise the full read path.
type Synthetic struct{}

// ReadAt implements DataPlane.
func (Synthetic) ReadAt(_ ids.RMID, file ids.FileID, p []byte, off int64) (int, error) {
	seed := uint64(file)*0x9e3779b97f4a7c15 + 0x85ebca6b
	for i := range p {
		k := uint64(off + int64(i))
		x := (k + seed) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		p[i] = byte(x)
	}
	return len(p), nil
}
