package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteCellsCSV(t *testing.T) {
	res, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCellsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Cells)+1 {
		t.Fatalf("%d CSV rows for %d cells", len(rows), len(res.Cells))
	}
	if rows[0][0] != "key" || rows[0][1] != "value" {
		t.Fatalf("header %v", rows[0])
	}
	// Rows are sorted and values round-trip.
	prev := ""
	for _, row := range rows[1:] {
		if row[0] < prev {
			t.Fatalf("rows unsorted at %q", row[0])
		}
		prev = row[0]
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Cells[row[0]]; got != v {
			t.Fatalf("cell %q: csv %v, want %v", row[0], v, got)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	res, err := Fig4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	want := 1 // header
	for _, s := range res.Series {
		want += s.Len()
	}
	if lines != want {
		t.Fatalf("%d CSV lines, want %d", lines, want)
	}
	if !strings.HasPrefix(buf.String(), "series,t_seconds,value\n") {
		t.Fatalf("bad header: %q", buf.String()[:40])
	}
}

func TestRunManyMatchesSerial(t *testing.T) {
	ids := []string{"table5", "table7"}
	serialA, err := Run("table5", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	serialB, err := Run("table7", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(ids, tinyOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != 2 {
		t.Fatalf("%d results", len(parallel))
	}
	for k, v := range serialA.Cells {
		if parallel[0].Cells[k] != v {
			t.Fatalf("table5 cell %q differs under parallel run", k)
		}
	}
	for k, v := range serialB.Cells {
		if parallel[1].Cells[k] != v {
			t.Fatalf("table7 cell %q differs under parallel run", k)
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	if _, err := RunMany([]string{"table5", "bogus"}, tinyOptions(), 2); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
