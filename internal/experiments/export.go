package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// WriteCellsCSV emits the result's numeric cells as stable, sorted
// `key,value` rows — the form external plotting tools ingest to redraw
// the paper's tables.
func (r *Result) WriteCellsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "value"}); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Cells))
	for k := range r.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := cw.Write([]string{k, strconv.FormatFloat(r.Cells[k], 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV emits the result's time series as
// `series,t_seconds,value` rows (the figures' underlying data).
func (r *Result) WriteSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t_seconds", "value"}); err != nil {
		return err
	}
	names := make([]string, 0, len(r.Series))
	for n := range r.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, p := range r.Series[n].Points {
			err := cw.Write([]string{
				n,
				strconv.FormatFloat(p.At.Seconds(), 'f', 3, 64),
				strconv.FormatFloat(p.Value, 'g', -1, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunMany executes the given experiments concurrently with at most
// `workers` in flight. Every experiment builds its own clusters from the
// shared seed, so parallel execution cannot perturb determinism — the
// results are identical to a serial run, just wall-clock faster (the
// cluster runs themselves are single-threaded DES loops, one per core).
func RunMany(ids []string, o Options, workers int) ([]*Result, error) {
	if workers < 1 {
		workers = 1
	}
	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, len(ids))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range ids {
		i, id := i, id
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := Run(id, o)
			out[i] = slot{res: res, err: err}
		}()
	}
	wg.Wait()
	results := make([]*Result, 0, len(ids))
	for i, s := range out {
		if s.err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], s.err)
		}
		results = append(results, s.res)
	}
	return results, nil
}
