// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each runner builds the paper's standard cluster
// configuration, sweeps the dimension the table varies (policy, user count,
// replication strategy or destination selection), and renders rows in the
// paper's layout so measured numbers can be placed next to the published
// ones. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded results.
package experiments

import (
	"fmt"
	"strings"

	"dfsqos/internal/cluster"
	"dfsqos/internal/ids"
	"dfsqos/internal/metrics"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/selection"
)

// Options scale an experiment run. The zero value is completed by
// Defaults(): the paper's full-size configuration.
type Options struct {
	// Seed is the master seed shared by all runs of the experiment.
	Seed uint64
	// Users are the workload sizes swept by the user-count tables.
	Users []int
	// StandardUsers is the user count of single-load experiments
	// (paper: 256).
	StandardUsers int
	// HorizonSec is the simulated run length (paper: 7200 s).
	HorizonSec float64
	// SampleEverySec is the sampling period of figure experiments.
	SampleEverySec float64
	// Repeats averages each table cell over this many runs with derived
	// seeds (≤1: single run, the default). Figure series always come
	// from the base seed.
	Repeats int
}

// Defaults returns the paper's experiment scale.
func Defaults() Options {
	return Options{
		Seed:           1,
		Users:          []int{64, 128, 192, 256},
		StandardUsers:  256,
		HorizonSec:     7200,
		SampleEverySec: 10,
	}
}

// Quick returns a reduced scale for smoke tests and benchmarks: half the
// horizon and a trimmed user sweep. The qualitative ordering of policies
// and strategies is preserved.
func Quick() Options {
	return Options{
		Seed:           1,
		Users:          []int{64, 256},
		StandardUsers:  256,
		HorizonSec:     1800,
		SampleEverySec: 30,
	}
}

func (o Options) normalize() Options {
	d := Defaults()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if len(o.Users) == 0 {
		o.Users = d.Users
	}
	if o.StandardUsers == 0 {
		o.StandardUsers = d.StandardUsers
	}
	if o.HorizonSec == 0 {
		o.HorizonSec = d.HorizonSec
	}
	if o.SampleEverySec == 0 {
		o.SampleEverySec = d.SampleEverySec
	}
	return o
}

// baseConfig is the shared starting point of all experiments.
func (o Options) baseConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Workload.HorizonSec = o.HorizonSec
	cfg.Workload.NumUsers = o.StandardUsers
	return cfg
}

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("table1" ... "fig7").
	ID string
	// Title describes what the paper reports there.
	Title string
	// Text is the rendered table or series listing.
	Text string
	// Cells holds the numeric results keyed by "row/col" for tests and
	// EXPERIMENTS.md extraction; ratio-valued (0.0977 = 9.77%).
	Cells map[string]float64
	// Series holds figure data keyed by curve name.
	Series map[string]*metrics.Series
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Cells: make(map[string]float64), Series: make(map[string]*metrics.Series)}
}

// strategies returns the four replication strategies of Tables IV-V in
// paper order.
func strategies() []replication.Strategy {
	return []replication.Strategy{
		replication.Static(),
		replication.Baseline(),
		replication.Rep(1, 8),
		replication.Rep(1, 3),
	}
}

// Table1 — over-allocate ratio in soft real-time allocation: the five
// selection policies × {64,128,192,256} users, static replication.
func Table1(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("table1", "Over-allocate ratio in soft real-time allocation (static replication)")
	tab := metrics.NewTable(append([]string{"(a,b,g) \\ users"}, usersHeader(o.Users)...)...)
	for _, pol := range selection.PaperPolicies() {
		row := []string{pol.String()}
		for _, users := range o.Users {
			cfg := o.baseConfig()
			cfg.Policy = pol
			cfg.Scenario = qos.Soft
			cfg.Workload.NumUsers = users
			r, err := avgRun(cfg, o)
			if err != nil {
				return nil, err
			}
			res.Cells[fmt.Sprintf("%s/%d", pol, users)] = r.OverAllocate
			row = append(row, metrics.Pct(r.OverAllocate))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// Table2 — per-RM over-allocate ratio in soft real-time allocation with the
// standard user count, for the five policies.
func Table2(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("table2", fmt.Sprintf("Per-RM over-allocate ratio, soft real-time, %d users", o.StandardUsers))
	header := []string{"(a,b,g) \\ RM"}
	for i := 1; i <= 16; i++ {
		header = append(header, fmt.Sprintf("RM%d", i))
	}
	tab := metrics.NewTable(header...)
	for _, pol := range selection.PaperPolicies() {
		cfg := o.baseConfig()
		cfg.Policy = pol
		cfg.Scenario = qos.Soft
		r, err := avgRun(cfg, o)
		if err != nil {
			return nil, err
		}
		row := []string{pol.String()}
		for _, rmRes := range r.PerRM {
			oa := rmRes.OverAllocateRatio()
			res.Cells[fmt.Sprintf("%s/%s", pol, rmRes.ID)] = oa
			row = append(row, metrics.Pct(oa))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// Table3 — fail rate in firm real-time allocation: five policies × user
// sweep, static replication.
func Table3(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("table3", "Fail rate on average in firm real-time allocation (static replication)")
	tab := metrics.NewTable(append([]string{"(a,b,g) \\ users"}, usersHeader(o.Users)...)...)
	for _, pol := range selection.PaperPolicies() {
		row := []string{pol.String()}
		for _, users := range o.Users {
			cfg := o.baseConfig()
			cfg.Policy = pol
			cfg.Scenario = qos.Firm
			cfg.Workload.NumUsers = users
			r, err := avgRun(cfg, o)
			if err != nil {
				return nil, err
			}
			res.Cells[fmt.Sprintf("%s/%d", pol, users)] = r.FailRate
			row = append(row, metrics.Pct(r.FailRate))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// Table4 — average over-allocate ratio with dynamic replication in soft
// real-time allocation: four strategies × five policies.
func Table4(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("table4", "Average over-allocate ratio with dynamic replication, soft real-time")
	header := []string{"Rep \\ (a,b,g)"}
	for _, pol := range selection.PaperPolicies() {
		header = append(header, pol.String())
	}
	tab := metrics.NewTable(header...)
	for _, strat := range strategies() {
		row := []string{strat.String()}
		for _, pol := range selection.PaperPolicies() {
			cfg := o.baseConfig()
			cfg.Policy = pol
			cfg.Scenario = qos.Soft
			cfg.Replication = replication.DefaultConfig(strat)
			r, err := avgRun(cfg, o)
			if err != nil {
				return nil, err
			}
			res.Cells[fmt.Sprintf("%s/%s", strat, pol)] = r.OverAllocate
			row = append(row, metrics.Pct(r.OverAllocate))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// Table5 — average fail rate with dynamic replication in firm real-time
// allocation: four strategies × policies {(0,0,0), (1,0,0)}.
func Table5(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("table5", "Average fail rate with dynamic replication, firm real-time")
	pols := []selection.Policy{selection.Random, selection.RemOnly}
	tab := metrics.NewTable("Rep \\ (a,b,g)", pols[0].String(), pols[1].String())
	for _, strat := range strategies() {
		row := []string{strat.String()}
		for _, pol := range pols {
			cfg := o.baseConfig()
			cfg.Policy = pol
			cfg.Scenario = qos.Firm
			cfg.Replication = replication.DefaultConfig(strat)
			r, err := avgRun(cfg, o)
			if err != nil {
				return nil, err
			}
			res.Cells[fmt.Sprintf("%s/%s", strat, pol)] = r.FailRate
			row = append(row, metrics.Pct(r.FailRate))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// destStrategies returns the destination selections of Tables VI-VII.
func destStrategies() []replication.DestStrategy {
	return []replication.DestStrategy{
		replication.DestRandom,
		replication.DestLBF,
		replication.DestWeighted,
	}
}

// Table6 — average over-allocate ratio of Rep(1,3) under the three
// destination-selection strategies, soft real-time.
func Table6(o Options) (*Result, error) {
	return destTable(o, "table6",
		"Average over-allocate ratio of Rep(1,3) with destination selection, soft real-time",
		qos.Soft)
}

// Table7 — average fail rate of Rep(1,3) under the three destination
// selection strategies, firm real-time.
func Table7(o Options) (*Result, error) {
	return destTable(o, "table7",
		"Average fail rate of Rep(1,3) with destination selection, firm real-time",
		qos.Firm)
}

func destTable(o Options, id, title string, scen qos.Scenario) (*Result, error) {
	o = o.normalize()
	res := newResult(id, title)
	pols := []selection.Policy{selection.Random, selection.RemOnly}
	tab := metrics.NewTable("Destination \\ (a,b,g)", pols[0].String(), pols[1].String())
	for _, dest := range destStrategies() {
		row := []string{dest.String()}
		for _, pol := range pols {
			cfg := o.baseConfig()
			cfg.Policy = pol
			cfg.Scenario = scen
			cfg.Replication = replication.DefaultConfig(replication.Rep(1, 3))
			cfg.Replication.Dest = dest
			r, err := avgRun(cfg, o)
			if err != nil {
				return nil, err
			}
			val := r.OverAllocate
			if scen.IsFirm() {
				val = r.FailRate
			}
			res.Cells[fmt.Sprintf("%s/%s", dest, pol)] = val
			row = append(row, metrics.Pct(val))
		}
		tab.AddRow(row...)
	}
	res.Text = tab.String()
	return res, nil
}

// Fig4 — the over-allocate situation in the soft real-time scenario: the
// allocated bandwidth of the most over-allocated RM over time against its
// maximum bandwidth (the paper's dashed line), under random selection.
func Fig4(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("fig4", "Over-allocate situation of one RM, soft real-time, random selection")
	cfg := o.baseConfig()
	cfg.Policy = selection.Random
	cfg.Scenario = qos.Soft
	cfg.SampleEverySec = o.SampleEverySec
	r, err := cluster.RunConfig(cfg)
	if err != nil {
		return nil, err
	}
	// Pick the RM with the worst over-allocate ratio, as the paper's
	// illustration does.
	worst := r.PerRM[0]
	for _, rmRes := range r.PerRM[1:] {
		if rmRes.OverAllocateRatio() > worst.OverAllocateRatio() {
			worst = rmRes
		}
	}
	s := r.Utilization[worst.ID]
	res.Series["allocated"] = s
	res.Cells["capacity"] = float64(worst.Capacity)
	res.Cells["overAllocateRatio"] = worst.OverAllocateRatio()
	res.Text = renderSeries(fmt.Sprintf("%v allocated bandwidth (capacity %v, R_OA %s)",
		worst.ID, worst.Capacity, metrics.Pct(worst.OverAllocateRatio())), s, float64(worst.Capacity))
	return res, nil
}

// Fig5 — aggregated bandwidth utilization in firm real-time allocation:
// (a) the two extra-large RMs (RM1+RM9), (b) the fourteen small RMs, for
// policies (0,0,0) and (1,0,0), static replication.
func Fig5(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("fig5", "Aggregated bandwidth utilization, firm real-time (a: RM1+RM9, b: small RMs)")
	var text strings.Builder
	for _, pol := range []selection.Policy{selection.Random, selection.RemOnly} {
		cfg := o.baseConfig()
		cfg.Policy = pol
		cfg.Scenario = qos.Firm
		cfg.SampleEverySec = o.SampleEverySec
		r, err := cluster.RunConfig(cfg)
		if err != nil {
			return nil, err
		}
		var largeSeries, smallSeries []*metrics.Series
		for _, rmRes := range r.PerRM {
			if rmRes.ID == 1 || rmRes.ID == 9 {
				largeSeries = append(largeSeries, r.Utilization[rmRes.ID])
			} else {
				smallSeries = append(smallSeries, r.Utilization[rmRes.ID])
			}
		}
		large := metrics.Sum(fmt.Sprintf("large/%s", pol), largeSeries...)
		small := metrics.Sum(fmt.Sprintf("small/%s", pol), smallSeries...)
		res.Series[large.Name] = large
		res.Series[small.Name] = small
		res.Cells[fmt.Sprintf("largeMean/%s", pol)] = large.Mean()
		res.Cells[fmt.Sprintf("smallMean/%s", pol)] = small.Mean()
		text.WriteString(renderSeries(fmt.Sprintf("(a) RM1+RM9, policy %s", pol), large, 0))
		text.WriteString(renderSeries(fmt.Sprintf("(b) small RMs, policy %s", pol), small, 0))
	}
	res.Text = text.String()
	return res, nil
}

// Fig6 — bandwidth utilization of large-bandwidth RM1 and small-bandwidth
// RM2 over time with the four dynamic replication strategies, policy
// (1,0,0), soft real-time.
func Fig6(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("fig6", "Bandwidth utilization of RM1 and RM2 under four replication strategies, policy (1,0,0)")
	var text strings.Builder
	for _, strat := range strategies() {
		cfg := o.baseConfig()
		cfg.Policy = selection.RemOnly
		cfg.Scenario = qos.Soft
		cfg.Replication = replication.DefaultConfig(strat)
		cfg.SampleEverySec = o.SampleEverySec
		r, err := cluster.RunConfig(cfg)
		if err != nil {
			return nil, err
		}
		for _, id := range []ids.RMID{1, 2} {
			s := r.Utilization[id]
			name := fmt.Sprintf("%v/%s", id, strat)
			res.Series[name] = s
			res.Cells[fmt.Sprintf("mean/%s", name)] = s.Mean()
			var capacity float64
			for _, rmRes := range r.PerRM {
				if rmRes.ID == id {
					capacity = float64(rmRes.Capacity)
				}
			}
			text.WriteString(renderSeries(fmt.Sprintf("%v under %s (max %v)", id, strat, r.PerRM[id-1].Capacity), s, capacity))
		}
	}
	res.Text = text.String()
	return res, nil
}

// Fig7 — per-RM over-allocate ratio: static replication vs Rep(1,3), policy
// (1,0,0), soft real-time.
func Fig7(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("fig7", "Per-RM over-allocate ratio, static vs Rep(1,3), policy (1,0,0)")
	tab := metrics.NewTable("RM", "static", "Rep(1,3)")
	type runOut struct{ per []metrics.RMResult }
	var runs []runOut
	for _, strat := range []replication.Strategy{replication.Static(), replication.Rep(1, 3)} {
		cfg := o.baseConfig()
		cfg.Policy = selection.RemOnly
		cfg.Scenario = qos.Soft
		cfg.Replication = replication.DefaultConfig(strat)
		r, err := cluster.RunConfig(cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, runOut{per: r.PerRM})
	}
	for i := range runs[0].per {
		id := runs[0].per[i].ID
		sta := runs[0].per[i].OverAllocateRatio()
		rep := runs[1].per[i].OverAllocateRatio()
		res.Cells[fmt.Sprintf("static/%v", id)] = sta
		res.Cells[fmt.Sprintf("rep13/%v", id)] = rep
		tab.AddRow(id.String(), metrics.Pct(sta), metrics.Pct(rep))
	}
	res.Text = tab.String()
	return res, nil
}

// All runs every experiment in paper order.
func All(o Options) ([]*Result, error) {
	runners := []func(Options) (*Result, error){
		Table1, Table2, Table3, Table4, Table5, Table6, Table7,
		Fig4, Fig5, Fig6, Fig7,
	}
	out := make([]*Result, 0, len(runners))
	for _, run := range runners {
		r, err := run(o)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Run dispatches one experiment by id ("table1" ... "fig7").
func Run(id string, o Options) (*Result, error) {
	switch strings.ToLower(id) {
	case "table1":
		return Table1(o)
	case "table2":
		return Table2(o)
	case "table3":
		return Table3(o)
	case "table4":
		return Table4(o)
	case "table5":
		return Table5(o)
	case "table6":
		return Table6(o)
	case "table7":
		return Table7(o)
	case "fig4":
		return Fig4(o)
	case "fig5":
		return Fig5(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "ablation-bth":
		return AblationBTH(o)
	case "ablation-cooldown":
		return AblationCooldown(o)
	case "ablation-speed":
		return AblationSpeed(o)
	case "ablation-charge":
		return AblationCharge(o)
	case "ablation-skew":
		return AblationSkew(o)
	case "ablation-gc":
		return AblationGC(o)
	case "ablation-flashcrowd":
		return AblationFlashCrowd(o)
	case "ablation-ecnp":
		return AblationECNP(o)
	case "ablation-weights":
		return AblationWeights(o)
	case "ablation-mmshards":
		return AblationMMShards(o)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the paper's experiment identifiers in paper order.
func IDs() []string {
	return []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig4", "fig5", "fig6", "fig7"}
}

// AblationIDs lists the extension experiments (DESIGN.md §6).
func AblationIDs() []string {
	return []string{
		"ablation-bth", "ablation-cooldown", "ablation-speed",
		"ablation-charge", "ablation-skew", "ablation-gc",
		"ablation-flashcrowd", "ablation-ecnp", "ablation-weights",
		"ablation-mmshards",
	}
}

func usersHeader(users []int) []string {
	out := make([]string, len(users))
	for i, u := range users {
		out[i] = fmt.Sprintf("%d", u)
	}
	return out
}

// renderSeries prints a compact textual sparkline of a series in MB/s with
// an optional capacity line, matching the figures' units.
func renderSeries(title string, s *metrics.Series, capacity float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	pts := s.Downsample(max(1, s.Len()/24))
	for _, p := range pts {
		fmt.Fprintf(&b, "  t=%7.0fs  %8.3f MB/s", p.At.Seconds(), p.Value/1e6)
		if capacity > 0 {
			fmt.Fprintf(&b, "  (max %.3f MB/s)", capacity/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
