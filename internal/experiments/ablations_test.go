package experiments

import (
	"testing"
)

func TestAblationIDsDispatch(t *testing.T) {
	if len(AblationIDs()) != 10 {
		t.Fatalf("AblationIDs = %v", AblationIDs())
	}
	// Every listed id dispatches (run one cheap setting set via tiny opts).
	for _, id := range AblationIDs() {
		if id == "ablation-gc" || id == "ablation-skew" || id == "ablation-flashcrowd" {
			continue // covered by dedicated tests below (slower sweeps)
		}
		if id == "ablation-ecnp" || id == "ablation-weights" {
			continue // covered by dedicated tests below (slower sweeps)
		}
		res, err := Run(id, tinyOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Cells) == 0 || res.Text == "" {
			t.Fatalf("%s produced no data", id)
		}
	}
}

func TestAblationMMShardsNeutral(t *testing.T) {
	res, err := AblationMMShards(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Cells["failRate/shards=1"]
	for _, label := range []string{"shards=2", "shards=4", "shards=8"} {
		if got := res.Cells["failRate/"+label]; got != base {
			t.Fatalf("%s fail rate %v differs from single-MM %v", label, got, base)
		}
	}
}

func TestAblationChargeShowsCost(t *testing.T) {
	res, err := AblationCharge(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	reserve := res.Cells["failRate/B_REV reserve"]
	charged := res.Cells["failRate/charged"]
	// Charging replication traffic against the QoS pool can only hurt.
	if charged < reserve {
		t.Fatalf("charged fail rate %v better than reserve %v", charged, reserve)
	}
}

func TestAblationGC(t *testing.T) {
	res, err := AblationGC(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells["evictions/GC off"] != 0 {
		t.Fatal("GC off evicted replicas")
	}
	if res.Cells["evictions/GC on (85%/70%)"] <= 0 {
		t.Fatal("GC on evicted nothing under tight disks")
	}
}

func TestAblationSkew(t *testing.T) {
	res, err := AblationSkew(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) < 10 {
		t.Fatalf("skew sweep produced %d cells", len(res.Cells))
	}
}

func TestAblationFlashCrowd(t *testing.T) {
	res, err := AblationFlashCrowd(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// All four strategies produce a fail-rate cell.
	for _, strat := range []string{"static", "Rep(3,8)", "Rep(1,8)", "Rep(1,3)"} {
		if _, ok := res.Cells["failRate/"+strat]; !ok {
			t.Fatalf("missing cell for %s", strat)
		}
	}
	// Unbounded replication absorbs a flash crowd better than static
	// replicas (the paper's burst concern, quantified).
	if res.Cells["failRate/Rep(1,8)"] >= res.Cells["failRate/static"] {
		t.Fatalf("Rep(1,8) (%v) did not beat static (%v) under a flash crowd",
			res.Cells["failRate/Rep(1,8)"], res.Cells["failRate/static"])
	}
}

func TestAblationECNP(t *testing.T) {
	res, err := AblationECNP(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ecnpMsgs := res.Cells["perRequest/ECNP (matchmaker)"]
	cnpMsgs := res.Cells["perRequest/CNP (broadcast)"]
	if ecnpMsgs <= 0 || cnpMsgs <= ecnpMsgs {
		t.Fatalf("message accounting wrong: ECNP %.1f vs CNP %.1f per request", ecnpMsgs, cnpMsgs)
	}
	// The broadcast fans every CFP to all 16 RMs, so CNP must cost at
	// least twice the matchmaker path on the paper topology (3 holders).
	if cnpMsgs < 2*ecnpMsgs {
		t.Fatalf("broadcast advantage implausibly small: %.1f vs %.1f", cnpMsgs, ecnpMsgs)
	}
}

func TestAblationWeights(t *testing.T) {
	res, err := AblationWeights(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 3×3 grid × 2 criteria.
	if len(res.Cells) != 18 {
		t.Fatalf("%d cells, want 18", len(res.Cells))
	}
	for k, v := range res.Cells {
		if v < 0 || v > 1 {
			t.Fatalf("cell %q = %v", k, v)
		}
	}
}
