package experiments

import (
	"fmt"
	"math"

	"dfsqos/internal/cluster"
)

// avgRun executes cfg Options.Repeats times under derived seeds and
// returns a Results whose scalar criteria and per-RM accounting are the
// arithmetic means across runs. With Repeats ≤ 1 it is a plain run.
// Utilization series, when sampled, come from the first seed (averaging
// time series across seeds would blur exactly the transients the figures
// exist to show).
func avgRun(cfg cluster.Config, o Options) (*cluster.Results, error) {
	n := o.Repeats
	if n <= 1 {
		return cluster.RunConfig(cfg)
	}
	var agg *cluster.Results
	for i := 0; i < n; i++ {
		run := cfg
		// Derive per-repeat seeds deterministically from the base seed.
		run.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		res, err := cluster.RunConfig(run)
		if err != nil {
			return nil, fmt.Errorf("repeat %d: %w", i, err)
		}
		if agg == nil {
			agg = res
			continue
		}
		if len(res.PerRM) != len(agg.PerRM) {
			return nil, fmt.Errorf("repeat %d: RM count changed", i)
		}
		agg.TotalRequests += res.TotalRequests
		agg.FailedRequests += res.FailedRequests
		agg.FailRate += res.FailRate
		agg.OverAllocate += res.OverAllocate
		agg.Replications += res.Replications
		agg.Migrations += res.Migrations
		agg.GCEvictions += res.GCEvictions
		for j := range agg.PerRM {
			agg.PerRM[j].Snap.OverBytes += res.PerRM[j].Snap.OverBytes
			agg.PerRM[j].Snap.AssignedBytes += res.PerRM[j].Snap.AssignedBytes
			agg.PerRM[j].Snap.AllocByteSecs += res.PerRM[j].Snap.AllocByteSecs
			agg.PerRM[j].Snap.BusySecs += res.PerRM[j].Snap.BusySecs
		}
	}
	f := float64(n)
	agg.FailRate /= f
	agg.OverAllocate /= f
	// Per-RM sums stay as sums: the ratios derived from them (S_OA/S_TA,
	// mean utilization over n×horizon) are then byte-weighted means, the
	// same aggregation rule the paper's run-level ratio uses.
	return agg, nil
}

// MeanStderr returns the mean and the standard error of the mean of the
// values (0 stderr for fewer than two samples). Exposed for callers that
// want per-seed dispersion next to the averaged tables.
func MeanStderr(values []float64) (mean, stderr float64) {
	n := len(values)
	if n == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}
