package experiments

import (
	"strings"
	"testing"
)

// tinyOptions runs experiments at a scale suited to unit tests while still
// exercising every sweep dimension.
func tinyOptions() Options {
	return Options{
		Seed:           1,
		Users:          []int{64, 224},
		StandardUsers:  224,
		HorizonSec:     900,
		SampleEverySec: 60,
	}
}

func TestIDsAndDispatch(t *testing.T) {
	if len(IDs()) != 11 {
		t.Fatalf("IDs() has %d entries, want 11 (7 tables + 4 figures)", len(IDs()))
	}
	if _, err := Run("table99", tinyOptions()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestTable1ShapeAndCells(t *testing.T) {
	res, err := Table1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" {
		t.Fatalf("id %q", res.ID)
	}
	// 5 policies × 2 user counts.
	if len(res.Cells) != 10 {
		t.Fatalf("%d cells, want 10", len(res.Cells))
	}
	// The paper's headline: (0,0,0) worse than (1,0,0) at high load.
	random := res.Cells["(0,0,0)/224"]
	rem := res.Cells["(1,0,0)/224"]
	if rem >= random {
		t.Fatalf("(1,0,0)=%v not better than (0,0,0)=%v", rem, random)
	}
	// Over-allocation grows with load for the random policy.
	if res.Cells["(0,0,0)/64"] > random {
		t.Fatalf("over-allocation decreased with more users")
	}
	if !strings.Contains(res.Text, "(1,0,0)") {
		t.Fatalf("rendered table missing policy row:\n%s", res.Text)
	}
}

func TestTable3FirmOrdering(t *testing.T) {
	res, err := Table3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	random := res.Cells["(0,0,0)/224"]
	rem := res.Cells["(1,0,0)/224"]
	if rem >= random {
		t.Fatalf("firm: (1,0,0)=%v not better than (0,0,0)=%v", rem, random)
	}
}

func TestTable2PerRM(t *testing.T) {
	res, err := Table2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 5 policies × 16 RMs.
	if len(res.Cells) != 80 {
		t.Fatalf("%d cells, want 80", len(res.Cells))
	}
	for key, v := range res.Cells {
		if v < 0 || v > 1 {
			t.Fatalf("cell %s = %v out of [0,1]", key, v)
		}
	}
}

func TestTable4DynamicBeatsStatic(t *testing.T) {
	res, err := Table4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	static := res.Cells["static/(1,0,0)"]
	for _, strat := range []string{"Rep(3,8)", "Rep(1,8)", "Rep(1,3)"} {
		dyn := res.Cells[strat+"/(1,0,0)"]
		if dyn > static+0.02 {
			t.Fatalf("%s (%v) much worse than static (%v) under (1,0,0)", strat, dyn, static)
		}
	}
}

func TestTable5DynamicBeatsStatic(t *testing.T) {
	res, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("%d cells, want 8 (4 strategies × 2 policies)", len(res.Cells))
	}
	static := res.Cells["static/(1,0,0)"]
	best := static
	for _, strat := range []string{"Rep(3,8)", "Rep(1,8)", "Rep(1,3)"} {
		if v := res.Cells[strat+"/(1,0,0)"]; v < best {
			best = v
		}
	}
	if best >= static && static > 0 {
		t.Fatalf("no dynamic strategy improved the fail rate (static %v)", static)
	}
}

func TestTables6And7(t *testing.T) {
	for _, run := range []func(Options) (*Result, error){Table6, Table7} {
		res, err := run(tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 6 {
			t.Fatalf("%s: %d cells, want 6 (3 destinations × 2 policies)", res.ID, len(res.Cells))
		}
		for key, v := range res.Cells {
			if v < 0 || v > 1 {
				t.Fatalf("%s cell %s = %v", res.ID, key, v)
			}
		}
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series["allocated"]
	if s == nil || s.Len() == 0 {
		t.Fatal("fig4 has no series")
	}
	if res.Cells["capacity"] <= 0 {
		t.Fatal("fig4 missing capacity")
	}
	if !strings.Contains(res.Text, "MB/s") {
		t.Fatalf("fig4 text missing units:\n%s", res.Text)
	}
}

func TestFig5(t *testing.T) {
	res, err := Fig5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"large/(0,0,0)", "large/(1,0,0)", "small/(0,0,0)", "small/(1,0,0)"} {
		if res.Series[name] == nil {
			t.Fatalf("fig5 missing series %q", name)
		}
	}
	// The paper's point: (1,0,0) squeezes more bandwidth out of the two
	// extra-large RMs than (0,0,0).
	if res.Cells["largeMean/(1,0,0)"] <= res.Cells["largeMean/(0,0,0)"] {
		t.Fatalf("(1,0,0) does not use the large RMs more: %v vs %v",
			res.Cells["largeMean/(1,0,0)"], res.Cells["largeMean/(0,0,0)"])
	}
}

func TestFig6(t *testing.T) {
	res, err := Fig6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 RMs × 4 strategies.
	if len(res.Series) != 8 {
		t.Fatalf("fig6 has %d series, want 8", len(res.Series))
	}
}

func TestFig7(t *testing.T) {
	res, err := Fig7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 16 RMs × 2 strategies.
	if len(res.Cells) != 32 {
		t.Fatalf("fig7 has %d cells, want 32", len(res.Cells))
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	o := Options{}.normalize()
	d := Defaults()
	if o.Seed != d.Seed || o.StandardUsers != d.StandardUsers || o.HorizonSec != d.HorizonSec {
		t.Fatalf("normalize: %+v", o)
	}
	if len(o.Users) != len(d.Users) {
		t.Fatalf("normalize users: %v", o.Users)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Cells {
		if b.Cells[k] != v {
			t.Fatalf("cell %s differs across identical runs: %v vs %v", k, v, b.Cells[k])
		}
	}
}
