package experiments

import (
	"fmt"

	"dfsqos/internal/cluster"
	"dfsqos/internal/metrics"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/workload"
)

// Ablations sweep the design parameters the paper fixes by fiat (§VI-C)
// and the ones DESIGN.md §6 flags, quantifying how sensitive the headline
// metrics are to each. They all run the Rep(1,3) firm real-time
// configuration — the paper's recommended practical operating point — and
// report the fail rate, replication count and utilization balance per
// setting.

// ablationBase is the shared configuration.
func (o Options) ablationBase() cluster.Config {
	cfg := o.baseConfig()
	cfg.Policy = selection.RemOnly
	cfg.Scenario = qos.Firm
	cfg.Replication = replication.DefaultConfig(replication.Rep(1, 3))
	return cfg
}

// ablationRow runs one setting and records it.
func ablationRow(res *Result, tab *metrics.Table, label string, cfg cluster.Config) error {
	return ablationRowAvg(res, tab, label, cfg, Options{})
}

// ablationRowAvg is ablationRow with multi-seed averaging.
func ablationRowAvg(res *Result, tab *metrics.Table, label string, cfg cluster.Config, o Options) error {
	r, err := avgRun(cfg, o)
	if err != nil {
		return err
	}
	shares := metrics.UtilizationShares(r.PerRM, r.HorizonSec)
	fairness := metrics.JainFairness(shares)
	res.Cells["failRate/"+label] = r.FailRate
	res.Cells["replications/"+label] = float64(r.Replications)
	res.Cells["fairness/"+label] = fairness
	tab.AddRow(label,
		metrics.Pct(r.FailRate),
		fmt.Sprintf("%d", r.Replications),
		fmt.Sprintf("%d", r.Migrations),
		fmt.Sprintf("%.3f", fairness),
	)
	return nil
}

func newAblationTable() *metrics.Table {
	return metrics.NewTable("setting", "fail rate", "replications", "migrations", "Jain fairness")
}

// AblationBTH sweeps the replication trigger threshold B_TH. Too low and
// hotspots linger; too high and the system replicates constantly (the
// paper's §III-B concern).
func AblationBTH(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-bth", "Replication trigger threshold B_TH sweep (Rep(1,3), firm, (1,0,0))")
	tab := newAblationTable()
	for _, bth := range []float64{0.05, 0.10, 0.20, 0.35, 0.50} {
		cfg := o.ablationBase()
		cfg.Replication.TriggerFrac = bth
		if err := ablationRow(res, tab, fmt.Sprintf("B_TH=%.0f%%", bth*100), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationCooldown sweeps the 60 s replication cooldown.
func AblationCooldown(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-cooldown", "Replication cooldown sweep (paper: 60 s)")
	tab := newAblationTable()
	for _, cd := range []float64{5, 30, 60, 180, 600} {
		cfg := o.ablationBase()
		cfg.Replication.CooldownSec = cd
		if err := ablationRow(res, tab, fmt.Sprintf("cooldown=%.0fs", cd), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationSpeed sweeps the replication transfer rate (paper: 1.8 Mbit/s).
func AblationSpeed(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-speed", "Replication transfer speed sweep (paper: 1.8 Mbit/s)")
	tab := newAblationTable()
	for _, mbps := range []float64{0.45, 0.9, 1.8, 3.6, 7.2} {
		cfg := o.ablationBase()
		cfg.Replication.Speed = units.Mbps(mbps)
		if err := ablationRow(res, tab, fmt.Sprintf("speed=%.2fMbps", mbps), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationCharge compares the paper's B_REV reserve semantics (replication
// traffic outside the QoS pool) with charging transfers against the
// ledgers.
func AblationCharge(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-charge", "Replication traffic accounting: B_REV reserve vs charged to the QoS pool")
	tab := newAblationTable()
	for _, charge := range []bool{false, true} {
		cfg := o.ablationBase()
		cfg.Replication.ChargeTransfers = charge
		label := "B_REV reserve"
		if charge {
			label = "charged"
		}
		if err := ablationRow(res, tab, label, cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationSkew sweeps the popularity skew, moving the hotspot pressure the
// replication mechanism has to absorb.
func AblationSkew(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-skew", "Catalog popularity skew sweep")
	tab := newAblationTable()
	for _, skew := range []float64{0.6, 0.8, 0.95, 1.1, 1.3} {
		cfg := o.ablationBase()
		cfg.Catalog.ZipfSkew = skew
		if err := ablationRow(res, tab, fmt.Sprintf("zipf=%.2f", skew), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationGC exercises the replica garbage collector: Rep(1,8) grows the
// replica population against tight disks, with and without deletion.
func AblationGC(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-gc", "Replica deletion (GC) under Rep(1,8) with tight disks")
	tab := metrics.NewTable("setting", "fail rate", "replications", "GC evictions", "offers rejected")
	for _, on := range []bool{false, true} {
		cfg := o.ablationBase()
		cfg.Replication = replication.DefaultConfig(replication.Rep(1, 8))
		// The static load (~190 replicas × mean size ≈ 11-14 GB) sits just
		// under the 16 GB disks, so Rep(1,8) growth presses against the
		// 85% watermark quickly: with GC off, full disks reject offers;
		// with GC on, cold replicas make room.
		gc := replication.DefaultGCConfig()
		gc.Enabled = on
		cfg.GC = gc
		label := "GC off"
		if on {
			label = "GC on (85%/70%)"
		}
		r, err := cluster.RunConfig(cfg)
		if err != nil {
			return nil, err
		}
		var rejected int64
		for _, st := range r.RMStats {
			rejected += st.OffersRejected
		}
		res.Cells["failRate/"+label] = r.FailRate
		res.Cells["evictions/"+label] = float64(r.GCEvictions)
		tab.AddRow(label, metrics.Pct(r.FailRate),
			fmt.Sprintf("%d", r.Replications),
			fmt.Sprintf("%d", r.GCEvictions),
			fmt.Sprintf("%d", rejected))
	}
	res.Text = tab.String()
	return res, nil
}

// AblationFlashCrowd injects the paper's feared "burst of resource
// requirements" — a flash crowd converging on one previously unpopular
// file halfway through the run — and compares how the replication
// strategies absorb it.
func AblationFlashCrowd(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-flashcrowd", "Flash crowd at t=horizon/2 (40% of requests to one cold file)")
	tab := newAblationTable()
	for _, strat := range strategies() {
		cfg := o.ablationBase()
		cfg.Replication = replication.DefaultConfig(strat)
		cfg.FlashCrowd = &workload.FlashCrowd{
			AtSec:    o.HorizonSec / 2,
			Fraction: 0.4,
		}
		if err := ablationRow(res, tab, strat.String(), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationECNP quantifies the reason the paper adopts ECNP over plain CNP
// (§I: the matchmaker "avoid[s] excessive redundant messages"): the same
// workload negotiated through the MM versus broadcast to all 16 RMs. QoS
// outcomes match; the control-plane message volume does not.
func AblationECNP(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-ecnp", "ECNP matchmaking vs plain-CNP broadcast: message traffic")
	tab := metrics.NewTable("model", "fail rate", "messages", "msgs/request")
	for _, broadcast := range []bool{false, true} {
		cfg := o.ablationBase()
		cfg.BroadcastCNP = broadcast
		label := "ECNP (matchmaker)"
		if broadcast {
			label = "CNP (broadcast)"
		}
		r, err := cluster.RunConfig(cfg)
		if err != nil {
			return nil, err
		}
		perReq := float64(r.Messages) / float64(r.TotalRequests)
		res.Cells["failRate/"+label] = r.FailRate
		res.Cells["messages/"+label] = float64(r.Messages)
		res.Cells["perRequest/"+label] = perReq
		tab.AddRow(label, metrics.Pct(r.FailRate),
			fmt.Sprintf("%d", r.Messages), fmt.Sprintf("%.1f", perReq))
	}
	res.Text = tab.String()
	return res, nil
}

// AblationWeights explores "the optimized collocation" of the environment
// parameters (α, β, γ) the paper leaves to practical experiments (§IV):
// a grid over β and γ at α = 1, reporting both criteria under static
// replication where the policy does all the work.
func AblationWeights(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-weights", "Selection weight collocation: α=1, β×γ grid (static replication)")
	tab := metrics.NewTable("(a,b,g)", "over-allocate (soft)", "fail rate (firm)")
	for _, beta := range []float64{0, 0.5, 1} {
		for _, gamma := range []float64{0, 0.5, 1} {
			pol := selection.Policy{Alpha: 1, Beta: beta, Gamma: gamma}
			soft := o.baseConfig()
			soft.Policy = pol
			soft.Scenario = qos.Soft
			rs, err := avgRun(soft, o)
			if err != nil {
				return nil, err
			}
			firm := o.baseConfig()
			firm.Policy = pol
			firm.Scenario = qos.Firm
			rf, err := avgRun(firm, o)
			if err != nil {
				return nil, err
			}
			res.Cells["overAllocate/"+pol.String()] = rs.OverAllocate
			res.Cells["failRate/"+pol.String()] = rf.FailRate
			tab.AddRow(pol.String(), metrics.Pct(rs.OverAllocate), metrics.Pct(rf.FailRate))
		}
	}
	res.Text = tab.String()
	return res, nil
}

// AblationMMShards verifies the DHT-sharded Metadata Manager is
// metric-neutral: partitioning metadata must not change QoS outcomes.
func AblationMMShards(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ablation-mmshards", "Metadata Manager sharding (paper's DHT note): metric neutrality")
	tab := newAblationTable()
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := o.ablationBase()
		cfg.MMShards = shards
		if err := ablationRow(res, tab, fmt.Sprintf("shards=%d", shards), cfg); err != nil {
			return nil, err
		}
	}
	res.Text = tab.String()
	return res, nil
}
