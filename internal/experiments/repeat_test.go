package experiments

import (
	"math"
	"testing"
)

func TestMeanStderr(t *testing.T) {
	mean, se := MeanStderr([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %v", mean)
	}
	// sample stddev = 2, stderr = 2/sqrt(3).
	if math.Abs(se-2/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("stderr = %v", se)
	}
	if m, s := MeanStderr(nil); m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	if m, s := MeanStderr([]float64{7}); m != 7 || s != 0 {
		t.Fatal("single sample")
	}
}

func TestRepeatsAverageTables(t *testing.T) {
	single := tinyOptions()
	res1, err := Table5(single)
	if err != nil {
		t.Fatal(err)
	}
	multi := tinyOptions()
	multi.Repeats = 3
	res3, err := Table5(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Cells) != len(res1.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(res3.Cells), len(res1.Cells))
	}
	// Averaged cells stay in [0,1] and are not bitwise-copied from the
	// single-seed run for every cell (at least one differs).
	differs := false
	for k, v := range res3.Cells {
		if v < 0 || v > 1 {
			t.Fatalf("cell %q = %v", k, v)
		}
		if v != res1.Cells[k] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("3-seed average identical to single seed in every cell")
	}
	// And averaging is deterministic.
	res3b, err := Table5(multi)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res3.Cells {
		if res3b.Cells[k] != v {
			t.Fatalf("cell %q differs across identical averaged runs", k)
		}
	}
}
