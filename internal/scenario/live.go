package scenario

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/cluster"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/trace"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/workload"
)

// LiveResult is the live-TCP slice's report inside a scenario result.
type LiveResult struct {
	// Users is the slice's resolved population; Requests/Failed/FailRate
	// aggregate the replayed operations.
	Users    int     `json:"users"`
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	FailRate float64 `json:"fail_rate"`
	// BytesStreamed totals real file bytes delivered over TCP (only
	// non-zero when the slice streams reads); Failovers counts replica
	// moves inside those reads.
	BytesStreamed int64 `json:"bytes_streamed,omitempty"`
	Failovers     int64 `json:"failovers,omitempty"`
	// TraceSpans is how many spans the attached PR 5 tracer retained.
	TraceSpans int `json:"trace_spans"`
	// ElapsedSec is the slice's wall-clock duration.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Classes breaks latency and failures out per workload class.
	Classes []ClassStats `json:"classes"`
}

// runLive stands up a real loopback-TCP deployment — one MM server, the
// slice's RM servers with throttled virtual disks, a pool of DFSC clients
// — and replays the scenario's shape open-loop against it under wall-time
// compression. Requests are issued at their (scaled) arrival instants
// regardless of completion; beyond MaxInflight they queue for a free
// client slot and the queueing shows up in the recorded latency, exactly
// like an overloaded front end.
func runLive(spec Spec, opts Options) (*LiveResult, error) {
	ls := *spec.Live
	users := ls.Users
	if opts.Short && ls.ShortUsers > 0 {
		users = ls.ShortUsers
	}
	inflight := ls.MaxInflight
	if inflight <= 0 {
		inflight = 8
	}
	timeScale := ls.TimeScale
	if timeScale <= 0 {
		timeScale = 50
	}

	master := rng.New(opts.Seed).Split("scenario/" + spec.Name + "/live")

	// A small catalog with short durations so reservations turn over
	// within the compressed horizon.
	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = ls.Files
	catCfg.MeanDurationSec = 5
	catCfg.MinDurationSec = 1
	catCfg.MaxDurationSec = 10
	cat, err := catalog.Generate(catCfg, master.Split("catalog"))
	if err != nil {
		return nil, err
	}

	caps := cluster.ScaledTopology((ls.RMs + 15) / 16)[:ls.RMs]
	rmIDs := make([]ids.RMID, len(caps))
	for i := range caps {
		rmIDs[i] = ids.RMID(i + 1)
	}
	placement, err := catalog.StaticRandom(cat, rmIDs, 2, master.Split("placement"))
	if err != nil {
		return nil, err
	}

	mmSrv, err := live.NewMMServer(mm.New(), "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sched := live.NewWallScheduler(timeScale)
	tracer := trace.New(trace.Options{Actor: "scenario-live", RingSize: 512, ExemplarK: 4})
	mmSrv.SetTracer(tracer)

	var rmSrvs []*live.RMServer
	var mmClis []*live.MMClient
	cleanup := func() {
		for _, c := range mmClis {
			c.Close()
		}
		for _, s := range rmSrvs {
			s.Close()
		}
		mmSrv.Close()
		sched.Stop()
	}

	fail := func(err error) (*LiveResult, error) {
		cleanup()
		return nil, err
	}

	for i, capBW := range caps {
		id := rmIDs[i]
		ctrl := blkio.NewController()
		disk, err := vdisk.New(units.GB, ctrl, fmt.Sprintf("vm%d", id), capBW, capBW)
		if err != nil {
			return fail(err)
		}
		files := make(map[ids.FileID]rm.FileMeta)
		for _, f := range placement.FilesOn(id) {
			meta := cat.File(f)
			files[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
			if err := disk.Provision(live.FileName(f), meta.Size); err != nil {
				return fail(err)
			}
		}
		mapperCli, err := live.DialMM(mmSrv.Addr())
		if err != nil {
			return fail(err)
		}
		mmClis = append(mmClis, mapperCli)
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: units.GB},
			Scheduler:   sched,
			Mapper:      mapperCli,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       files,
		})
		if err != nil {
			return fail(err)
		}
		srv, err := live.NewRMServer(node, disk, "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		rmSrvs = append(rmSrvs, srv)
		srv.SetTracer(tracer)
		info := node.Info()
		info.Addr = srv.Addr()
		fileIDs := make([]ids.FileID, 0, len(files))
		for f := range files {
			fileIDs = append(fileIDs, f)
		}
		if err := mapperCli.RegisterRM(info, fileIDs); err != nil {
			return fail(err)
		}
		node.SetDirectory(live.NewDirectory(mapperCli))
	}

	mmCli, err := live.DialMM(mmSrv.Addr())
	if err != nil {
		return fail(err)
	}
	mmClis = append(mmClis, mmCli)
	dir := live.NewDirectory(mmCli)
	defer func() {
		dir.Close()
		cleanup()
	}()

	scen := qos.Soft
	if spec.Firm {
		scen = qos.Firm
	}
	// One client per inflight slot, each with its own MM connection, so
	// concurrently executing requests never share a negotiation path.
	clients := make(chan *dfsc.Client, inflight)
	for i := 0; i < inflight; i++ {
		cli, err := live.DialMM(mmSrv.Addr())
		if err != nil {
			return nil, err
		}
		mmClis = append(mmClis, cli)
		c, err := dfsc.New(dfsc.Options{
			ID:        ids.DFSCID(i),
			Mapper:    cli,
			Directory: dir,
			Scheduler: sched,
			Catalog:   cat,
			Policy:    selection.RemOnly,
			Scenario:  scen,
			Rand:      master.Split(fmt.Sprintf("dfsc/%d", i)),
			Fanout:    dfsc.Fanout{Concurrent: true, BidTimeout: 2 * time.Second},
			Tracer:    tracer,
		})
		if err != nil {
			return nil, err
		}
		clients <- c
	}

	wl := workload.Config{
		NumUsers:       users,
		NumDFSC:        inflight,
		MeanArrivalSec: ls.MeanArrivalSec,
		HorizonSec:     ls.HorizonSec,
	}
	pattern, err := workload.Generate(wl, cat, master.Split("workload"))
	if err != nil {
		return nil, err
	}
	if err := applyShape(spec, pattern, cat, master.Split("transforms"), ls.HorizonSec, users); err != nil {
		return nil, err
	}

	opts.logf("scenario %s: live slice: %d users, %d requests over %.0fs at 1/%.0f wall scale (%d RMs)",
		spec.Name, users, pattern.Len(), ls.HorizonSec, timeScale, len(caps))

	rec := NewRecorder()
	var bytesStreamed, failovers int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, req := range pattern.Requests {
		at := time.Duration(req.AtSec / timeScale * float64(time.Second))
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(req workload.Request) {
			defer wg.Done()
			cl := <-clients
			defer func() { clients <- cl }()
			t0 := time.Now()
			ok := true
			switch {
			case req.Op == workload.OpWrite:
				ok = cl.Store(req.File).OK
			case req.Op == workload.OpMeta:
				ok = cl.Probe(req.File).OK
			case ls.StreamReads:
				res, err := cl.ReadWithFailover(dir, req.File, io.Discard, dfsc.FailoverConfig{MaxFailovers: 2})
				atomic.AddInt64(&bytesStreamed, res.Bytes)
				atomic.AddInt64(&failovers, int64(res.Failovers))
				ok = err == nil
			default:
				ok = cl.Access(req.File).OK
			}
			rec.Observe(classOf(req), time.Since(t0), ok)
		}(req)
	}
	wg.Wait()

	count, failed := rec.Totals()
	lr := &LiveResult{
		Users:         users,
		Requests:      count,
		Failed:        failed,
		BytesStreamed: atomic.LoadInt64(&bytesStreamed),
		Failovers:     atomic.LoadInt64(&failovers),
		TraceSpans:    len(tracer.Snapshot()),
		ElapsedSec:    time.Since(start).Seconds(),
		Classes:       rec.Stats(),
	}
	if count > 0 {
		lr.FailRate = float64(failed) / float64(count)
	}
	return lr, nil
}
