package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dfsqos/internal/workload"
)

func TestRecorderStats(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Observe("video", 10*time.Millisecond, true)
	}
	r.Observe("video", 100*time.Millisecond, false)
	r.Observe("bulk-write", time.Second, true)

	count, failed := r.Totals()
	if count != 102 || failed != 1 {
		t.Fatalf("totals = (%d, %d), want (102, 1)", count, failed)
	}
	stats := r.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d classes, want 2", len(stats))
	}
	// Sorted by class name.
	if stats[0].Class != "bulk-write" || stats[1].Class != "video" {
		t.Fatalf("classes out of order: %v, %v", stats[0].Class, stats[1].Class)
	}
	v := stats[1]
	if v.Count != 101 || v.Failed != 1 {
		t.Fatalf("video counts (%d, %d), want (101, 1)", v.Count, v.Failed)
	}
	if fr := v.FailRate(); fr < 0.009 || fr > 0.011 {
		t.Fatalf("video fail rate %v, want ~1/101", fr)
	}
	// p50 of 100 observations at 10ms (plus one at 100ms) lands in the
	// 10ms bucket's neighborhood.
	if v.P50Ms < 5 || v.P50Ms > 20 {
		t.Fatalf("p50 %.3f ms, want ~10ms", v.P50Ms)
	}
	if v.P999Ms < v.P50Ms {
		t.Fatal("p999 below p50")
	}
	if (ClassStats{}).FailRate() != 0 {
		t.Fatal("empty class has non-zero fail rate")
	}
}

func TestSLOCheck(t *testing.T) {
	res := &Result{
		Name:            "t",
		FailRate:        0.5,
		OverAllocate:    0.4,
		Utilization:     0.3,
		WorkUtilization: 0.25,
		Classes: []ClassStats{
			{Class: "video", P50Ms: 100, P99Ms: 400, P999Ms: 900},
		},
		Live: &LiveResult{
			FailRate: 0.2,
			Classes:  []ClassStats{{Class: "video", P99Ms: 5000, P999Ms: 9000}},
		},
	}
	// Zero SLO disables every gate.
	if vs := (SLO{}).Check(res); len(vs) != 0 {
		t.Fatalf("zero SLO produced violations: %v", vs)
	}
	// Each gate trips individually.
	cases := []struct {
		slo    SLO
		metric string
	}{
		{SLO{MaxP50Sec: 0.05}, "p50"},
		{SLO{MaxP99Sec: 0.2}, "p99"},
		{SLO{MaxP999Sec: 0.5}, "p999"},
		{SLO{MaxFailRate: 0.1}, "fail_rate"},
		{SLO{MaxOverAllocate: 0.1}, "over_allocate"},
		{SLO{MinUtilization: 0.9}, "utilization"},
		{SLO{MinWorkUtilization: 0.9}, "work_utilization"},
		{SLO{MaxLiveP99Sec: 1}, "p99"},
		{SLO{MaxLiveP999Sec: 2}, "p999"},
		{SLO{MaxLiveFailRate: 0.1}, "fail_rate"},
	}
	for _, c := range cases {
		vs := c.slo.Check(res)
		if len(vs) != 1 {
			t.Fatalf("%+v produced %d violations, want 1", c.slo, len(vs))
		}
		if vs[0].Metric != c.metric {
			t.Fatalf("%+v tripped %q, want %q", c.slo, vs[0].Metric, c.metric)
		}
		if vs[0].String() == "" {
			t.Fatal("empty violation string")
		}
	}
	// Values at the limit do not trip ceilings.
	if vs := (SLO{MaxFailRate: 0.5}).Check(res); len(vs) != 0 {
		t.Fatalf("at-limit value tripped the gate: %v", vs)
	}
}

func TestSLOCheckPerTenant(t *testing.T) {
	res := &Result{
		Name: "t",
		Tenants: []ClassStats{
			{Class: "tenant1", Count: 100, Failed: 60, P99Ms: 5},
			{Class: "tenant2", Count: 100, Failed: 0, P99Ms: 400},
		},
		Victims: &VictimStats{
			FailRate: 0.05, BaselineFailRate: 0.01,
			P99Ms: 400, BaselineP99Ms: 10,
		},
	}
	cases := []struct {
		slo    SLO
		metric string
	}{
		// The victim tenant's p99 trips its ceiling.
		{SLO{PerTenant: []TenantSLO{{Tenant: 2, MaxP99Sec: 0.250}}}, "p99"},
		// The abuser's fail rate trips its ceiling.
		{SLO{PerTenant: []TenantSLO{{Tenant: 1, MaxFailRate: 0.5}}}, "fail_rate"},
		// An abuser below its fail-rate floor means quotas never bit.
		{SLO{PerTenant: []TenantSLO{{Tenant: 2, MinFailRate: 0.05}}}, "fail_rate_floor"},
		// Victims degraded vs the no-abuser baseline.
		{SLO{MaxVictimFailRateDelta: 0.02}, "fail_rate_delta"},
		{SLO{MaxVictimP99Sec: 0.250}, "p99"},
	}
	for _, c := range cases {
		vs := c.slo.Check(res)
		if len(vs) != 1 {
			t.Fatalf("%+v produced %d violations, want 1: %v", c.slo, len(vs), vs)
		}
		if vs[0].Metric != c.metric {
			t.Fatalf("%+v tripped %q, want %q", c.slo, vs[0].Metric, c.metric)
		}
	}
	// A satisfied tenant SLO produces nothing.
	ok := SLO{
		PerTenant: []TenantSLO{
			{Tenant: 1, MinFailRate: 0.5},
			{Tenant: 2, MaxFailRate: 0.01, MaxP99Sec: 0.5},
		},
		MaxVictimFailRateDelta: 0.1,
		MaxVictimP99Sec:        0.5,
	}
	if vs := ok.Check(res); len(vs) != 0 {
		t.Fatalf("satisfied tenant SLO produced violations: %v", vs)
	}
}

// testSpec is a scaled-down scenario exercising every transform: Zipf
// redraw, tide, burst and mix, over the paper topology.
func testSpec() Spec {
	return Spec{
		Name:            "test-mini",
		Users:           300,
		ShortUsers:      100,
		DFSCs:           8,
		MeanArrivalSec:  60,
		HorizonSec:      240,
		ShortHorizonSec: 120,
		Files:           200,
		MeanDurationSec: 30, MinDurationSec: 10, MaxDurationSec: 60,
		TopologyScale: 1,
		ZipfSkew:      1.1,
		Tide:          &Tide{Cycles: 1, Amplitude: 0.5, PeakFrac: 0.25},
		Bursts:        []BurstSpec{{AtFrac: 0.4, DurFrac: 0.3, Fraction: 0.5, SurgeFactor: 0.5}},
		Mix: &workload.Mix{Shares: []workload.ClassShare{
			{Class: "bulk-write", Op: workload.OpWrite, Fraction: 0.05},
			{Class: "metadata", Op: workload.OpMeta, Fraction: 0.2},
		}},
		SLO: SLO{MaxFailRate: 0.9},
	}
}

// tenantSpec is a scaled-down two-tenant scenario: the abuser holds
// half the clients under a per-RM bandwidth cap tight enough to refuse
// most of its accesses, the victim tenant runs unlimited, and the
// victim gates compare against the no-abuser baseline pass.
func tenantSpec() Spec {
	return Spec{
		Name:            "tenant-mini",
		Users:           300,
		DFSCs:           8,
		MeanArrivalSec:  60,
		HorizonSec:      240,
		Files:           200,
		MeanDurationSec: 30, MinDurationSec: 10, MaxDurationSec: 60,
		TopologyScale: 1,
		Policy:        "(1,0,0,2)",
		Tenants: []TenantSpec{
			{ID: 1, Clients: 4, BandwidthMbps: 0.5, Abuser: true},
			{ID: 2, Clients: 4, Weight: 4},
		},
		SLO: SLO{
			MaxFailRate: 0.95,
			PerTenant: []TenantSLO{
				{Tenant: 1, MinFailRate: 0.05},
				{Tenant: 2, MaxFailRate: 0.01},
			},
			MaxVictimFailRateDelta: 0.005,
			MaxVictimP99Sec:        1.0,
		},
	}
}

func TestRunMultiTenantIsolation(t *testing.T) {
	res, err := Run(tenantSpec(), Options{Seed: 3, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenant rows, want 2: %+v", len(res.Tenants), res.Tenants)
	}
	byLabel := map[string]ClassStats{}
	for _, c := range res.Tenants {
		byLabel[c.Class] = c
	}
	abuser, victim := byLabel["tenant1"], byLabel["tenant2"]
	if abuser.Count == 0 || victim.Count == 0 {
		t.Fatalf("a tenant dispatched nothing: %+v", res.Tenants)
	}
	if abuser.FailRate() < 0.05 {
		t.Fatalf("abuser fail rate %.4f: the quota never bit", abuser.FailRate())
	}
	if victim.FailRate() > 0.01 {
		t.Fatalf("victim fail rate %.4f: isolation leaked", victim.FailRate())
	}
	if res.Victims == nil {
		t.Fatal("no victim baseline comparison on an abuser scenario")
	}
	v := res.Victims
	if v.Requests == 0 || v.Requests != v.BaselineRequests {
		t.Fatalf("victim request counts diverged: %d vs baseline %d", v.Requests, v.BaselineRequests)
	}
	// The DES is deterministic, so with working isolation the victims'
	// fail rate must match the quiet world exactly.
	if v.FailRate != v.BaselineFailRate {
		t.Fatalf("victims fail rate %.4f vs baseline %.4f", v.FailRate, v.BaselineFailRate)
	}
	if !res.Pass {
		t.Fatalf("tenant scenario violated its SLO: %v", res.Violations)
	}
	// The same run with quotas lifted must stop tripping the abuser's
	// refusal floor — proving the fail rate above came from the ledger.
	open := tenantSpec()
	open.Tenants[0].BandwidthMbps = 0
	open.SLO.PerTenant = nil
	openRes, err := Run(open, Options{Seed: 3, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range openRes.Tenants {
		if c.Class == "tenant1" && c.FailRate() > abuser.FailRate()/2 {
			t.Fatalf("uncapped abuser still fails at %.4f (capped: %.4f)", c.FailRate(), abuser.FailRate())
		}
	}
}

func TestRunDESDeterministicUnderSeed(t *testing.T) {
	spec := testSpec()
	opts := Options{Seed: 3, SkipLive: true}
	r1, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Requests == 0 {
		t.Fatal("run dispatched no requests")
	}
	// Wall-clock latency is not deterministic, but every simulation
	// outcome is: counts, failures, utilization, over-allocation.
	if r1.Requests != r2.Requests || r1.Failed != r2.Failed ||
		r1.Utilization != r2.Utilization || r1.OverAllocate != r2.OverAllocate {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	r3, err := Run(spec, Options{Seed: 4, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Requests == r3.Requests && r1.Utilization == r3.Utilization {
		t.Fatal("different seeds produced identical runs")
	}
	// All three classes of the mix must appear.
	classes := map[string]bool{}
	for _, c := range r1.Classes {
		classes[c.Class] = true
	}
	for _, want := range []string{"video", "bulk-write", "metadata"} {
		if !classes[want] {
			t.Fatalf("class %q missing from %v", want, r1.Classes)
		}
	}
	if r1.Utilization <= 0 {
		t.Fatal("zero utilization on a loaded run")
	}
	if !r1.Pass {
		t.Fatalf("mini scenario violated its SLO: %v", r1.Violations)
	}
}

func TestRunShortModeShrinks(t *testing.T) {
	spec := testSpec()
	full, err := Run(spec, Options{Seed: 3, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(spec, Options{Seed: 3, Short: true, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if short.Users != spec.ShortUsers || short.HorizonSec != spec.ShortHorizonSec {
		t.Fatalf("short mode ran at (%d users, %.0fs)", short.Users, short.HorizonSec)
	}
	if short.Requests >= full.Requests {
		t.Fatalf("short mode dispatched %d requests vs full %d", short.Requests, full.Requests)
	}
}

func TestRunSLOViolationFailsScenario(t *testing.T) {
	spec := testSpec()
	spec.SLO = SLO{MinUtilization: 2} // unreachable: >2x capacity floor
	res, err := Run(spec, Options{Seed: 3, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || len(res.Violations) == 0 {
		t.Fatal("unreachable SLO did not fail the scenario")
	}
	if res.Violations[0].Metric != "utilization" {
		t.Fatalf("unexpected violation %v", res.Violations[0])
	}
}

func TestBuiltinSpecsAreRunnable(t *testing.T) {
	specs := Builtin()
	if len(specs) < 4 {
		t.Fatalf("only %d builtin scenarios", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Users < 100_000 {
			t.Fatalf("%s simulates %d clients, want >= 1e5 in full mode", s.Name, s.Users)
		}
		if s.ShortUsers == 0 || s.ShortUsers >= s.Users {
			t.Fatalf("%s lacks a reduced short-mode population", s.Name)
		}
		if s.Live == nil {
			t.Fatalf("%s has no live-TCP slice", s.Name)
		}
	}
	for _, want := range []string{"zipfian-hotset", "flash-crowd", "diurnal-tide", "mixed-storm", "noisy-neighbor"} {
		if _, err := Find(want); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Find("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario resolved")
	}
}

func TestReportAggregatesAndWrites(t *testing.T) {
	results := []*Result{
		{Name: "a", Pass: true},
		{Name: "b", Pass: false, Violations: []Violation{{Scenario: "b", Metric: "p99", Value: 2, Limit: 1}}},
	}
	rep := NewReport(results, true, 7)
	if rep.Pass || rep.Violations != 1 || rep.Mode != "short" || rep.Seed != 7 {
		t.Fatalf("bad report envelope: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != ReportSchema || len(decoded.Scenarios) != 2 {
		t.Fatalf("round-trip lost data: %+v", decoded)
	}
}

func TestRunAllMini(t *testing.T) {
	spec := testSpec()
	rep, err := RunAll([]Spec{spec}, Options{Seed: 3, Short: true, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 || !rep.Pass {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestRunLiveSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP slice")
	}
	spec := testSpec()
	spec.SLO.MaxLiveFailRate = 0.9
	spec.Live = &LiveSpec{
		Users:          8,
		RMs:            2,
		Files:          12,
		HorizonSec:     40,
		MeanArrivalSec: 10,
		TimeScale:      50,
		MaxInflight:    4,
		StreamReads:    true,
	}
	res, err := Run(spec, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil {
		t.Fatal("live slice did not run")
	}
	if res.Live.Requests == 0 {
		t.Fatal("live slice issued no requests")
	}
	if res.Live.BytesStreamed == 0 {
		t.Fatal("streaming slice delivered no bytes")
	}
	if res.Live.TraceSpans == 0 {
		t.Fatal("tracer recorded no spans")
	}
	if len(res.Live.Classes) == 0 {
		t.Fatal("live slice recorded no classes")
	}
}
