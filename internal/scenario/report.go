package scenario

import (
	"encoding/json"
	"io"
)

// Report is the top-level BENCH_7.json document: one run of a set of
// scenarios under one mode and seed, plus the aggregate verdict the CI
// gate keys on.
type Report struct {
	// Schema versions the document layout.
	Schema string `json:"schema"`
	// Mode is "full" or "short" (the CI shape).
	Mode string `json:"mode"`
	// Seed is the master seed every scenario derived its streams from.
	Seed uint64 `json:"seed"`
	// Scenarios holds one result per scenario, in run order.
	Scenarios []*Result `json:"scenarios"`
	// Violations counts SLO breaches across all scenarios; Pass is
	// Violations == 0.
	Violations int  `json:"violations"`
	Pass       bool `json:"pass"`
}

// ReportSchema is the current BENCH_7.json schema identifier.
const ReportSchema = "dfsqos-scenarios/v1"

// NewReport assembles the report envelope from a set of results.
func NewReport(results []*Result, short bool, seed uint64) *Report {
	r := &Report{
		Schema:    ReportSchema,
		Mode:      "full",
		Seed:      seed,
		Scenarios: results,
		Pass:      true,
	}
	if short {
		r.Mode = "short"
	}
	for _, res := range results {
		r.Violations += len(res.Violations)
		if !res.Pass {
			r.Pass = false
		}
	}
	return r
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunAll runs every given scenario in order and assembles the report.
// Scenarios keep running after an SLO violation (the report carries every
// verdict); an engine error aborts the set.
func RunAll(specs []Spec, opts Options) (*Report, error) {
	results := make([]*Result, 0, len(specs))
	for _, spec := range specs {
		res, err := Run(spec, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return NewReport(results, opts.Short, opts.Seed), nil
}
