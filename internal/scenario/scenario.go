// Package scenario is the million-client scenario engine: named, seeded
// workload scenarios — Zipfian hot-file skew, flash-crowd bursts, diurnal
// tides, mixed operation storms — driven open-loop through the
// discrete-event cluster at 10⁵–10⁶ simulated clients and, scaled down,
// through the live TCP stack. Every run emits per-class latency
// percentiles, fail rate and aggregate utilization, and is gated by the
// scenario's declarative SLO: a violated threshold fails the run, which
// is how scripts/scenarios.sh turns BENCH_7.json into a CI gate.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/cluster"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/tenant"
	"dfsqos/internal/units"
	"dfsqos/internal/workload"
)

// Tide parameterizes the diurnal modulation of a scenario relative to its
// horizon, so the same tide shape survives the short-mode horizon cut.
type Tide struct {
	// Cycles is how many full day/night cycles the horizon spans.
	Cycles float64 `json:"cycles"`
	// Amplitude is the swing in [0, 1] (see workload.Diurnal).
	Amplitude float64 `json:"amplitude"`
	// PeakFrac places the first crest as a fraction of one period.
	PeakFrac float64 `json:"peak_frac"`
}

// BurstSpec parameterizes one flash-crowd window relative to the
// scenario's horizon and population, so full and short mode keep the same
// shape at different scales.
type BurstSpec struct {
	// AtFrac and DurFrac place the window: [AtFrac·H, (AtFrac+DurFrac)·H].
	AtFrac  float64 `json:"at_frac"`
	DurFrac float64 `json:"dur_frac"`
	// Fraction of in-window traffic redirected to the crowd's target.
	Fraction float64 `json:"fraction"`
	// SurgeFactor sizes the surge population as a fraction of the base
	// population (1.5 means the crowd outnumbers the residents).
	SurgeFactor float64 `json:"surge_factor"`
}

// LiveSpec sizes the scenario's scaled-down live-TCP slice: the same
// scenario shape replayed open-loop against real MM/RM servers over
// loopback TCP, with real reservations, real disk-backed streams and the
// PR 5 tracer attached.
type LiveSpec struct {
	// Users and ShortUsers size the slice's population (short mode falls
	// back to Users when ShortUsers is 0).
	Users      int `json:"users"`
	ShortUsers int `json:"short_users,omitempty"`
	// RMs is the number of live RM servers (capacities are the first RMs
	// of the paper topology).
	RMs int `json:"rms"`
	// Files is the slice's catalog size.
	Files int `json:"files"`
	// HorizonSec is the slice's virtual horizon; wall duration is
	// HorizonSec/TimeScale.
	HorizonSec float64 `json:"horizon_sec"`
	// MeanArrivalSec is each user's mean inter-arrival time (virtual).
	MeanArrivalSec float64 `json:"mean_arrival_sec"`
	// TimeScale compresses virtual seconds into wall time (50: a 300 s
	// slice runs in 6 s).
	TimeScale float64 `json:"time_scale"`
	// MaxInflight bounds concurrently executing requests; arrivals stay
	// open-loop and queue for a free client slot beyond it.
	MaxInflight int `json:"max_inflight"`
	// StreamReads streams real file bytes via the failover reader
	// instead of reserve-only accesses.
	StreamReads bool `json:"stream_reads"`
}

// TenantSpec declares one tenant of a multi-tenant scenario: which
// slice of the client population acts for it and the per-RM quota
// every RM's ledger enforces against it.
type TenantSpec struct {
	// ID is the tenant identity (real tenants are numbered from 1).
	ID ids.TenantID `json:"id"`
	// Clients is how many of the scenario's DFSCs act for this tenant.
	// Tenants claim client slots in declaration order; DFSCs left over
	// after the last tenant stay untenanted.
	Clients int `json:"clients"`
	// BandwidthMbps caps the tenant's concurrently reserved bandwidth
	// on each RM, in Mbps (0: unlimited).
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	// BytesGB caps the tenant's stored bytes on each RM (0: unlimited).
	BytesGB float64 `json:"bytes_gb,omitempty"`
	// Weight is the fair-share weight consumed by the selection
	// policy's δ term (0: tenant.DefaultWeight).
	Weight float64 `json:"weight,omitempty"`
	// Abuser marks the tenant whose removal defines the scenario's
	// no-abuser baseline pass: the run repeats with this tenant's
	// requests stripped and the victims' experience in both passes is
	// compared by the victim SLO gates.
	Abuser bool `json:"abuser,omitempty"`
}

// Spec is one named scenario: the DES-scale shape, its transforms, the
// optional live slice, and the SLO that gates the run.
type Spec struct {
	// Name and Description identify the scenario in reports.
	Name        string `json:"name"`
	Description string `json:"description"`
	// Users and ShortUsers size the simulated population in full and
	// short (CI) mode.
	Users      int `json:"users"`
	ShortUsers int `json:"short_users"`
	// DFSCs is the client count users are spread over.
	DFSCs int `json:"dfscs"`
	// MeanArrivalSec is the per-user NET mean inter-arrival time.
	MeanArrivalSec float64 `json:"mean_arrival_sec"`
	// HorizonSec / ShortHorizonSec bound the run in the two modes (short
	// falls back to HorizonSec when 0).
	HorizonSec      float64 `json:"horizon_sec"`
	ShortHorizonSec float64 `json:"short_horizon_sec,omitempty"`
	// Files sizes the catalog (0: the paper's 1000).
	Files int `json:"files,omitempty"`
	// CatalogSkew overrides the catalog's generation-time Zipf skew.
	CatalogSkew float64 `json:"catalog_skew,omitempty"`
	// MeanDurationSec/MinDurationSec/MaxDurationSec override the
	// catalog's video durations (0: paper defaults). Population sizing
	// hangs off these: aggregate demand is
	// users/MeanArrivalSec × duration × bitrate, so 10⁵ users at 300 s
	// inter-arrival and 60 s videos need a ~64× paper topology.
	MeanDurationSec float64 `json:"mean_duration_sec,omitempty"`
	MinDurationSec  float64 `json:"min_duration_sec,omitempty"`
	MaxDurationSec  float64 `json:"max_duration_sec,omitempty"`
	// TopologyScale tiles the paper's 16-RM topology this many times;
	// ShortTopologyScale overrides it in short mode (0: same).
	TopologyScale      int `json:"topology_scale"`
	ShortTopologyScale int `json:"short_topology_scale,omitempty"`
	// RMStorage overrides each RM's disk size (0: the paper's 16 GB) —
	// write-heavy storms need room to ingest.
	RMStorage units.Size `json:"rm_storage,omitempty"`
	// Firm selects firm real-time admission; false is soft.
	Firm bool `json:"firm,omitempty"`
	// Oversub sets every RM's admission oversubscription ratio (see
	// cluster.Config.Oversub); 0 is nominal capacity.
	Oversub float64 `json:"oversub,omitempty"`
	// RepNRep/RepNMaxR enable dynamic replication with the paper's
	// (N_rep, N_maxR) thresholds when RepNRep > 0; otherwise static.
	RepNRep  int `json:"rep_n_rep,omitempty"`
	RepNMaxR int `json:"rep_n_max_r,omitempty"`
	// ZipfSkew redraws every file choice from this hot-file skew when
	// positive (workload.ApplyZipf).
	ZipfSkew float64 `json:"zipf_skew,omitempty"`
	// Tide thins arrivals into a diurnal swing when non-nil.
	Tide *Tide `json:"tide,omitempty"`
	// Bursts injects flash-crowd windows (workload.ApplyBursts).
	Bursts []BurstSpec `json:"bursts,omitempty"`
	// Mix partitions requests into operation classes when non-nil.
	Mix *workload.Mix `json:"mix,omitempty"`
	// Policy overrides the resource-selection policy in the "(α,β,γ)"
	// or "(α,β,γ,δ)" flag syntax; empty keeps selection.RemOnly. The
	// four-component form enables the weighted-fairness δ term.
	Policy string `json:"policy,omitempty"`
	// Tenants declares the tenant population; empty runs untenanted.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// SLO gates the run.
	SLO SLO `json:"slo"`
	// Live sizes the live-TCP slice; nil skips it.
	Live *LiveSpec `json:"live,omitempty"`
}

// Options selects how a scenario runs.
type Options struct {
	// Short runs the reduced-scale CI shape (ShortUsers/ShortHorizonSec).
	Short bool
	// Seed is the master seed; every stream derives from it.
	Seed uint64
	// SkipLive skips the live-TCP slice even when the spec has one.
	SkipLive bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Result is one scenario run's report — the unit of the BENCH_7.json
// scenarios block.
type Result struct {
	// Name echoes the spec; Users and HorizonSec the resolved scale.
	Name       string  `json:"name"`
	Users      int     `json:"users"`
	HorizonSec float64 `json:"horizon_sec"`
	// Requests and Failed aggregate the client counters; FailRate is
	// Failed/Requests (the firm real-time criterion).
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	FailRate float64 `json:"fail_rate"`
	// OverAllocate is the soft real-time criterion Σ S_OA / Σ S_TA.
	OverAllocate float64 `json:"over_allocate"`
	// Utilization is mean allocated bandwidth over aggregate capacity
	// across the run (can exceed 1 under soft over-allocation).
	Utilization float64 `json:"utilization"`
	// WorkUtilization is the exact assured-bandwidth utilization
	// Σ assured byte·seconds / (aggregate capacity × horizon) from the
	// RMs' ledger integrals: the capacity-backed fraction of the
	// allocation, never above 1 no matter how far admission
	// oversubscribes (the excess is accounted separately as
	// over-allocation).
	WorkUtilization float64 `json:"work_utilization"`
	// Replications counts completed dynamic copies.
	Replications int64 `json:"replications,omitempty"`
	// ElapsedSec is the engine's wall-clock run time.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Classes breaks latency and failures out per workload class.
	Classes []ClassStats `json:"classes"`
	// Tenants breaks latency and failures out per tenant; the Class
	// field carries the tenant label ("tenant1"), with untenanted
	// clients under "tenant0". Present only for multi-tenant specs.
	Tenants []ClassStats `json:"tenants,omitempty"`
	// Victims compares the non-abuser tenants' experience against the
	// no-abuser baseline pass (present when a tenant is marked Abuser).
	Victims *VictimStats `json:"victims,omitempty"`
	// Live is the live-TCP slice's report, when it ran.
	Live *LiveResult `json:"live,omitempty"`
	// Violations lists every SLO breach; Pass is len(Violations)==0.
	Violations []Violation `json:"violations,omitempty"`
	Pass       bool        `json:"pass"`
}

// VictimStats compares the victims' (every non-abuser tenant's)
// service between the real run and the no-abuser baseline pass, which
// replays the identical pattern minus the abuser's requests on an
// otherwise identical cluster. Quota isolation working means the two
// columns are (near) identical; the victim SLO gates key on that.
type VictimStats struct {
	// FailRate and P99Ms are the victims' experience with the abuser
	// present.
	FailRate float64 `json:"fail_rate"`
	P99Ms    float64 `json:"p99_ms"`
	// BaselineFailRate and BaselineP99Ms are the same victims replayed
	// without the abuser's traffic.
	BaselineFailRate float64 `json:"baseline_fail_rate"`
	BaselineP99Ms    float64 `json:"baseline_p99_ms"`
	// Requests and BaselineRequests count the victims' requests in the
	// two passes (equal by construction — only abuser traffic is
	// stripped).
	Requests         int64 `json:"requests"`
	BaselineRequests int64 `json:"baseline_requests"`
}

// classOf labels a request for the recorder: its explicit class, or the
// default class of its operation.
func classOf(req workload.Request) string {
	if req.Class != "" {
		return req.Class
	}
	switch req.Op {
	case workload.OpWrite:
		return "bulk-write"
	case workload.OpMeta:
		return "metadata"
	default:
		return "video"
	}
}

// applyShape applies the spec's pattern transforms in place, in their
// canonical order — Zipf redraw, diurnal thinning, flash-crowd bursts,
// operation mix — scaled to the given horizon and population. The DES run
// and the live slice share it, so both replay the same scenario shape at
// their own scales.
func applyShape(spec Spec, p *workload.Pattern, cat *catalog.Catalog, src *rng.Source, horizon float64, users int) error {
	if spec.ZipfSkew > 0 {
		if err := workload.ApplyZipf(p, cat, spec.ZipfSkew, src); err != nil {
			return err
		}
	}
	if spec.Tide != nil {
		cycles := spec.Tide.Cycles
		if cycles <= 0 {
			cycles = 1
		}
		period := horizon / cycles
		d := workload.Diurnal{
			PeriodSec: period,
			Amplitude: spec.Tide.Amplitude,
			PeakSec:   spec.Tide.PeakFrac * period,
		}
		if err := workload.ApplyDiurnal(p, d, src); err != nil {
			return err
		}
	}
	if len(spec.Bursts) > 0 {
		bursts := make([]workload.Burst, len(spec.Bursts))
		for i, b := range spec.Bursts {
			bursts[i] = workload.Burst{
				AtSec:       b.AtFrac * horizon,
				DurationSec: b.DurFrac * horizon,
				Fraction:    b.Fraction,
				SurgeUsers:  int(b.SurgeFactor * float64(users)),
			}
		}
		if _, err := workload.ApplyBursts(p, cat, bursts, src); err != nil {
			return err
		}
	}
	if spec.Mix != nil {
		if err := workload.ApplyMix(p, *spec.Mix, src); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one scenario: build the DES cluster at the mode's scale,
// apply the spec's transforms to the pattern, replay it open-loop with a
// per-class recorder attached, optionally drive the live-TCP slice, and
// evaluate the SLO.
func Run(spec Spec, opts Options) (*Result, error) {
	users, horizon, scale := spec.Users, spec.HorizonSec, spec.TopologyScale
	if opts.Short {
		if spec.ShortUsers > 0 {
			users = spec.ShortUsers
		}
		if spec.ShortHorizonSec > 0 {
			horizon = spec.ShortHorizonSec
		}
		if spec.ShortTopologyScale > 0 {
			scale = spec.ShortTopologyScale
		}
	}

	cfg := cluster.DefaultConfig()
	cfg.RMCapacities = cluster.ScaledTopology(scale)
	if spec.RMStorage > 0 {
		cfg.RMStorage = spec.RMStorage
	}
	if spec.Files > 0 {
		cfg.Catalog.NumFiles = spec.Files
	}
	if spec.CatalogSkew > 0 {
		cfg.Catalog.ZipfSkew = spec.CatalogSkew
	}
	if spec.MeanDurationSec > 0 {
		cfg.Catalog.MeanDurationSec = spec.MeanDurationSec
	}
	if spec.MinDurationSec > 0 {
		cfg.Catalog.MinDurationSec = spec.MinDurationSec
	}
	if spec.MaxDurationSec > 0 {
		cfg.Catalog.MaxDurationSec = spec.MaxDurationSec
	}
	cfg.Workload = workload.Config{
		NumUsers:       users,
		NumDFSC:        spec.DFSCs,
		MeanArrivalSec: spec.MeanArrivalSec,
		HorizonSec:     horizon,
	}
	if spec.Firm {
		cfg.Scenario = qos.Firm
	}
	if spec.Oversub > 0 {
		cfg.Oversub = spec.Oversub
	}
	if spec.RepNRep > 0 {
		cfg.Replication = replication.DefaultConfig(replication.Rep(spec.RepNRep, spec.RepNMaxR))
	}
	if spec.Policy != "" {
		pol, err := selection.ParsePolicy(spec.Policy)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		cfg.Policy = pol
	}
	abusers := make(map[ids.TenantID]bool)
	if len(spec.Tenants) > 0 {
		cfg.TenantQuotas = make(map[ids.TenantID]tenant.Quota, len(spec.Tenants))
		assign := make([]ids.TenantID, spec.DFSCs)
		next := 0
		for _, ts := range spec.Tenants {
			q := tenant.Unlimited
			if ts.BandwidthMbps > 0 {
				q.Bandwidth = units.Mbps(ts.BandwidthMbps)
			}
			if ts.BytesGB > 0 {
				q.Bytes = int64(ts.BytesGB * float64(units.GB))
			}
			if ts.Weight > 0 {
				q.Weight = ts.Weight
			}
			cfg.TenantQuotas[ts.ID] = q
			if ts.Abuser {
				abusers[ts.ID] = true
			}
			for i := 0; i < ts.Clients && next < len(assign); i++ {
				assign[next] = ts.ID
				next++
			}
		}
		cfg.ClientTenants = assign
	}
	cfg.Seed = opts.Seed
	// Sample allocated bandwidth at 64 points across the horizon for the
	// aggregate-utilization figure.
	cfg.SampleEverySec = horizon / 64

	cl, err := cluster.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	// Transforms draw from streams derived from the master seed and the
	// scenario name, so two scenarios in one run share no randomness.
	src := rng.New(opts.Seed).Split("scenario/" + spec.Name)
	p := cl.Pattern()
	if err := applyShape(spec, p, cl.Catalog(), src, horizon, users); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	opts.logf("scenario %s: %d users, %d requests over %.0fs (%d RMs)",
		spec.Name, users, p.Len(), horizon, len(cfg.RMCapacities))

	rec := NewRecorder()
	var tenantRec, victimRec *Recorder
	if len(spec.Tenants) > 0 {
		tenantRec = NewRecorder()
		victimRec = NewRecorder()
	}
	start := time.Now()
	res, err := cl.RunWithObserver(func(req workload.Request, out dfsc.Outcome, wall time.Duration) {
		rec.Observe(classOf(req), wall, out.OK)
		if tenantRec != nil {
			tn := cfg.TenantOf(req.DFSC)
			tenantRec.Observe(tn.String(), wall, out.OK)
			if tn.Valid() && !abusers[tn] {
				victimRec.Observe("victims", wall, out.OK)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	// Aggregate utilization: the mean of each RM's sampled allocation
	// over the aggregate capacity of the topology. Summed in RM-ID order
	// — float addition is not associative, and random map order would
	// perturb the last bit between same-seed runs.
	rmIDs := make([]ids.RMID, 0, len(res.Utilization))
	for id := range res.Utilization {
		rmIDs = append(rmIDs, id)
	}
	sort.Slice(rmIDs, func(i, j int) bool { return rmIDs[i] < rmIDs[j] })
	var allocated, capacity float64
	for _, id := range rmIDs {
		allocated += res.Utilization[id].Mean()
	}
	for _, c := range cfg.RMCapacities {
		capacity += float64(c)
	}
	// The work-conserving utilization comes from the ledgers' exact
	// assured integrals, not the sampled series: it is the fraction of
	// real disk capacity the run kept committed.
	var assuredByteSecs float64
	for _, pr := range res.PerRM {
		assuredByteSecs += pr.Snap.AssuredByteSecs
	}

	r := &Result{
		Name:         spec.Name,
		Users:        users,
		HorizonSec:   horizon,
		Requests:     res.TotalRequests,
		Failed:       res.FailedRequests,
		FailRate:     res.FailRate,
		OverAllocate: res.OverAllocate,
		Replications: res.Replications,
		ElapsedSec:   time.Since(start).Seconds(),
		Classes:      rec.Stats(),
	}
	if capacity > 0 {
		r.Utilization = allocated / capacity
		if horizon > 0 {
			r.WorkUtilization = assuredByteSecs / (capacity * horizon)
		}
	}
	if tenantRec != nil {
		r.Tenants = tenantRec.Stats()
	}

	if len(abusers) > 0 {
		vict := victimStatsOf(victimRec)
		base, err := runVictimBaseline(spec, cfg, opts, horizon, users, abusers)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: baseline pass: %w", spec.Name, err)
		}
		vict.BaselineFailRate = base.FailRate
		vict.BaselineP99Ms = base.P99Ms
		vict.BaselineRequests = base.Requests
		r.Victims = &vict
		opts.logf("scenario %s: victims fail rate %.4f (baseline %.4f), p99 %.3fms (baseline %.3fms)",
			spec.Name, vict.FailRate, vict.BaselineFailRate, vict.P99Ms, vict.BaselineP99Ms)
	}

	if spec.Live != nil && !opts.SkipLive {
		lr, err := runLive(spec, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: live slice: %w", spec.Name, err)
		}
		r.Live = lr
	}

	r.Violations = spec.SLO.Check(r)
	r.Pass = len(r.Violations) == 0
	return r, nil
}

// victimStatsOf extracts the victims' fail rate and p99 from the
// single-class "victims" recorder.
func victimStatsOf(rec *Recorder) VictimStats {
	var v VictimStats
	for _, c := range rec.Stats() {
		if c.Class == "victims" {
			v.FailRate = c.FailRate()
			v.P99Ms = c.P99Ms
			v.Requests = c.Count
		}
	}
	return v
}

// runVictimBaseline replays the scenario on an identically built and
// seeded cluster with every abuser-tenant request stripped from the
// pattern, and returns the victims' experience in that quiet world.
// Build and applyShape re-derive the same streams from the master seed,
// so the baseline's victims see byte-identical traffic — the only
// difference is the abuser's absence.
func runVictimBaseline(spec Spec, cfg cluster.Config, opts Options, horizon float64, users int, abusers map[ids.TenantID]bool) (VictimStats, error) {
	cl, err := cluster.Build(cfg)
	if err != nil {
		return VictimStats{}, err
	}
	src := rng.New(opts.Seed).Split("scenario/" + spec.Name)
	p := cl.Pattern()
	if err := applyShape(spec, p, cl.Catalog(), src, horizon, users); err != nil {
		return VictimStats{}, err
	}
	kept := make([]workload.Request, 0, len(p.Requests))
	for _, req := range p.Requests {
		if !abusers[cfg.TenantOf(req.DFSC)] {
			kept = append(kept, req)
		}
	}
	if err := cl.UsePattern(&workload.Pattern{Config: p.Config, Requests: kept}); err != nil {
		return VictimStats{}, err
	}
	rec := NewRecorder()
	if _, err := cl.RunWithObserver(func(req workload.Request, out dfsc.Outcome, wall time.Duration) {
		tn := cfg.TenantOf(req.DFSC)
		if tn.Valid() && !abusers[tn] {
			rec.Observe("victims", wall, out.OK)
		}
	}); err != nil {
		return VictimStats{}, err
	}
	return victimStatsOf(rec), nil
}

// Builtin returns the named scenario catalog: the five canonical load
// shapes the acceptance gates run. Find(name) retrieves one.
func Builtin() []Spec {
	return []Spec{
		{
			Name:        "zipfian-hotset",
			Description: "Zipf-1.1 hot-file skew over a 4000-file corpus: the popularity regime where a handful of files draws most of the traffic and soft over-allocation absorbs the hot-replica contention.",
			Users:       100_000, ShortUsers: 2_000,
			DFSCs:          64,
			MeanArrivalSec: 300,
			HorizonSec:     600, ShortHorizonSec: 300,
			Files:           4_000,
			MeanDurationSec: 60, MinDurationSec: 15, MaxDurationSec: 180,
			TopologyScale: 64, ShortTopologyScale: 2,
			ZipfSkew: 1.1,
			SLO: SLO{
				MaxP50Sec:       0.050,
				MaxP99Sec:       0.250,
				MaxP999Sec:      1.0,
				MaxFailRate:     0.02,
				MinUtilization:  0.05,
				MaxLiveFailRate: 0.60,
				MaxLiveP99Sec:   30,
			},
			Live: &LiveSpec{
				Users: 48, ShortUsers: 24,
				RMs: 4, Files: 24,
				HorizonSec:     240,
				MeanArrivalSec: 40,
				TimeScale:      50,
				MaxInflight:    16,
				StreamReads:    true,
			},
		},
		{
			Name:        "flash-crowd",
			Description: "A crowd half the size of the resident population converges on one unpopular file for 40% of the horizon under firm admission, with dynamic replication (N_rep=1, N_maxR=8) spreading the target.",
			Users:       100_000, ShortUsers: 2_000,
			DFSCs:          64,
			MeanArrivalSec: 1800,
			HorizonSec:     600, ShortHorizonSec: 300,
			Files:           2_000,
			MeanDurationSec: 60, MinDurationSec: 15, MaxDurationSec: 180,
			TopologyScale: 16, ShortTopologyScale: 1,
			Firm:    true,
			RepNRep: 1, RepNMaxR: 8,
			Bursts: []BurstSpec{{AtFrac: 0.3, DurFrac: 0.4, Fraction: 0.35, SurgeFactor: 0.5}},
			SLO: SLO{
				MaxP50Sec:       0.050,
				MaxP99Sec:       0.250,
				MaxP999Sec:      1.0,
				MaxFailRate:     0.60,
				MinUtilization:  0.05,
				MaxLiveFailRate: 0.60,
				MaxLiveP99Sec:   30,
			},
			Live: &LiveSpec{
				Users: 48, ShortUsers: 24,
				RMs: 4, Files: 24,
				HorizonSec:     240,
				MeanArrivalSec: 40,
				TimeScale:      50,
				MaxInflight:    16,
			},
		},
		{
			Name:        "diurnal-tide",
			Description: "Two day/night cycles with an 80% swing: arrivals thin to a trough and crest twice, exercising reservation turnover across load levels.",
			Users:       120_000, ShortUsers: 2_400,
			DFSCs:          64,
			MeanArrivalSec: 300,
			HorizonSec:     600, ShortHorizonSec: 300,
			Files:           2_000,
			MeanDurationSec: 60, MinDurationSec: 15, MaxDurationSec: 180,
			TopologyScale: 64, ShortTopologyScale: 2,
			Tide: &Tide{Cycles: 2, Amplitude: 0.8, PeakFrac: 0.25},
			SLO: SLO{
				MaxP50Sec:       0.050,
				MaxP99Sec:       0.250,
				MaxP999Sec:      1.0,
				MaxFailRate:     0.02,
				MinUtilization:  0.05,
				MaxLiveFailRate: 0.60,
				MaxLiveP99Sec:   30,
			},
			Live: &LiveSpec{
				Users: 48, ShortUsers: 24,
				RMs: 4, Files: 24,
				HorizonSec:     240,
				MeanArrivalSec: 40,
				TimeScale:      50,
				MaxInflight:    16,
				StreamReads:    true,
			},
		},
		{
			Name:        "mixed-storm",
			Description: "Bitrate video (67%) + bulk ingest writes (8%) + a small-file metadata storm (25%) interleaved on one timeline, with 64 GB disks absorbing the ingest and admission oversubscribed 1.25× over nominal capacity.",
			Users:       100_000, ShortUsers: 2_000,
			DFSCs:          64,
			MeanArrivalSec: 1200,
			HorizonSec:     600, ShortHorizonSec: 300,
			Files:           2_000,
			MeanDurationSec: 60, MinDurationSec: 15, MaxDurationSec: 180,
			TopologyScale: 16, ShortTopologyScale: 1,
			RMStorage: 64 * units.GB,
			Oversub:   1.25,
			Mix: &workload.Mix{
				Shares: []workload.ClassShare{
					{Class: "bulk-write", Op: workload.OpWrite, Fraction: 0.08},
					{Class: "metadata", Op: workload.OpMeta, Fraction: 0.25},
				},
			},
			SLO: SLO{
				MaxP50Sec:          0.050,
				MaxP99Sec:          0.250,
				MaxP999Sec:         1.0,
				MaxFailRate:        0.30,
				MinUtilization:     0.05,
				MinWorkUtilization: 0.04,
				MaxLiveFailRate:    0.60,
				MaxLiveP99Sec:      30,
			},
			Live: &LiveSpec{
				Users: 48, ShortUsers: 24,
				RMs: 4, Files: 24,
				HorizonSec:     240,
				MeanArrivalSec: 40,
				TimeScale:      50,
				MaxInflight:    16,
			},
		},
		{
			Name:        "noisy-neighbor",
			Description: "Two tenants split the client population in half; the abuser is bandwidth-capped at 2 Mbps per RM under the weighted-fairness policy (1,0,0,2) while the victim tenant runs unlimited, and a no-abuser baseline pass proves quota isolation: the victims' fail rate may not rise and the abuser's must show the quota biting.",
			Users:       100_000, ShortUsers: 2_000,
			DFSCs:          64,
			MeanArrivalSec: 600,
			HorizonSec:     600, ShortHorizonSec: 300,
			Files:           2_000,
			MeanDurationSec: 60, MinDurationSec: 15, MaxDurationSec: 180,
			TopologyScale: 32, ShortTopologyScale: 1,
			Policy: "(1,0,0,2)",
			Tenants: []TenantSpec{
				{ID: 1, Clients: 32, BandwidthMbps: 2, Weight: 1, Abuser: true},
				{ID: 2, Clients: 32, Weight: 4},
			},
			SLO: SLO{
				MaxP50Sec:      0.050,
				MaxP99Sec:      0.250,
				MaxP999Sec:     1.0,
				MaxFailRate:    0.80,
				MinUtilization: 0.02,
				PerTenant: []TenantSLO{
					// The quota must actually bite the abuser...
					{Tenant: 1, MinFailRate: 0.05},
					// ...while the victim tenant sails through.
					{Tenant: 2, MaxFailRate: 0.01, MaxP99Sec: 0.250},
				},
				MaxVictimFailRateDelta: 0.005,
				MaxVictimP99Sec:        0.250,
				MaxLiveFailRate:        0.60,
				MaxLiveP99Sec:          30,
			},
			Live: &LiveSpec{
				Users: 48, ShortUsers: 24,
				RMs: 4, Files: 24,
				HorizonSec:     240,
				MeanArrivalSec: 40,
				TimeScale:      50,
				MaxInflight:    16,
			},
		},
	}
}

// Find returns the builtin scenario with the given name.
func Find(name string) (Spec, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
