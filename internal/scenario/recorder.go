package scenario

import (
	"sort"
	"sync"
	"time"

	"dfsqos/internal/telemetry"
)

// latencyBounds is the per-class histogram layout: 48 exponential
// buckets from 1µs to ~40s (factor 1.45), fine enough that a p999
// estimate interpolated inside one bucket stays within ±45% — ample for
// SLO ceilings set with order-of-magnitude headroom. Reused from the
// PR 2 telemetry core so a scenario's recorder is the same machinery the
// live daemons expose on /metrics.
var latencyBounds = telemetry.ExponentialBuckets(1e-6, 1.45, 48)

// ClassStats is one workload class's latency and outcome summary, the
// unit the BENCH_7.json scenario block and the SLO gates consume.
type ClassStats struct {
	// Class is the workload class label ("video", "bulk-write", ...).
	Class string `json:"class"`
	// Count is the number of requests observed, Failed how many were
	// refused or errored.
	Count  int64 `json:"count"`
	Failed int64 `json:"failed"`
	// P50Ms, P99Ms and P999Ms are the class's latency percentiles in
	// milliseconds (estimated from the histogram; see
	// telemetry.Histogram.Quantile).
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// MeanMs is the arithmetic mean latency in milliseconds.
	MeanMs float64 `json:"mean_ms"`
}

// FailRate returns Failed/Count, or 0 for an empty class.
func (c ClassStats) FailRate() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.Failed) / float64(c.Count)
}

// Recorder accumulates per-class request latencies into PR 2 histograms
// plus outcome counters. Safe for concurrent use (the live slice records
// from many goroutines; the DES records from its single event loop).
type Recorder struct {
	mu      sync.Mutex
	classes map[string]*classRec
}

type classRec struct {
	hist   *telemetry.Histogram
	count  int64
	failed int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{classes: make(map[string]*classRec)}
}

// Observe records one request of the given class: its wall-clock service
// time and whether it succeeded.
func (r *Recorder) Observe(class string, wall time.Duration, ok bool) {
	r.mu.Lock()
	c := r.classes[class]
	if c == nil {
		// The nil-registry constructor returns a live, unregistered
		// histogram — the PR 2 no-op-registry contract.
		c = &classRec{hist: (*telemetry.Registry)(nil).NewHistogram("dfsqos_scenario_latency_seconds", "per-class scenario latency", latencyBounds)}
		r.classes[class] = c
	}
	c.count++
	if !ok {
		c.failed++
	}
	r.mu.Unlock()
	c.hist.Observe(wall.Seconds())
}

// Totals returns the all-class request and failure counts.
func (r *Recorder) Totals() (count, failed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.classes {
		count += c.count
		failed += c.failed
	}
	return count, failed
}

// Stats summarizes every observed class, sorted by class name.
func (r *Recorder) Stats() []ClassStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ClassStats, 0, len(r.classes))
	for name, c := range r.classes {
		st := ClassStats{
			Class:  name,
			Count:  c.count,
			Failed: c.failed,
			P50Ms:  1e3 * c.hist.Quantile(0.50),
			P99Ms:  1e3 * c.hist.Quantile(0.99),
			P999Ms: 1e3 * c.hist.Quantile(0.999),
		}
		if n := c.hist.Count(); n > 0 {
			st.MeanMs = 1e3 * c.hist.Sum() / float64(n)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
