package scenario

import (
	"fmt"

	"dfsqos/internal/ids"
)

// SLO is one scenario's declarative service-level objective: ceilings on
// tail latency and failure, floors on utilization. A zero field disables
// that check, so a scenario declares only the objectives it owns — the
// same shape as the alloc ceiling and stripe floor gates in
// scripts/bench.sh, but data-driven. Latency ceilings apply to every
// workload class of the run unless a per-class override in Classes
// replaces them.
type SLO struct {
	// MaxP50Sec / MaxP99Sec / MaxP999Sec cap each DES class's latency
	// percentiles, in seconds.
	MaxP50Sec  float64 `json:"max_p50_sec,omitempty"`
	MaxP99Sec  float64 `json:"max_p99_sec,omitempty"`
	MaxP999Sec float64 `json:"max_p999_sec,omitempty"`
	// MaxFailRate caps the run's aggregate fail rate (failed/total).
	MaxFailRate float64 `json:"max_fail_rate,omitempty"`
	// MaxOverAllocate caps the soft-scenario over-allocate ratio
	// Σ S_OA / Σ S_TA — the paper's QoS-degradation criterion.
	MaxOverAllocate float64 `json:"max_over_allocate,omitempty"`
	// MinUtilization floors the run's aggregate utilization (mean
	// allocated bandwidth over aggregate capacity; can exceed 1 under
	// soft over-allocation).
	MinUtilization float64 `json:"min_utilization,omitempty"`
	// MinWorkUtilization floors the exact assured-bandwidth utilization
	// (Σ assured byte·seconds over capacity × horizon) — the
	// work-conserving gate: an oversubscribing scenario must actually
	// keep this much real capacity committed, not merely admit more.
	MinWorkUtilization float64 `json:"min_work_utilization,omitempty"`
	// MaxLiveP99Sec / MaxLiveP999Sec cap the live-TCP slice's class
	// percentiles; MaxLiveFailRate caps its aggregate fail rate. Only
	// checked when the scenario ran its live slice.
	MaxLiveP99Sec   float64 `json:"max_live_p99_sec,omitempty"`
	MaxLiveP999Sec  float64 `json:"max_live_p999_sec,omitempty"`
	MaxLiveFailRate float64 `json:"max_live_fail_rate,omitempty"`
	// PerTenant gates individual tenants of a multi-tenant scenario
	// (checked against Result.Tenants).
	PerTenant []TenantSLO `json:"per_tenant,omitempty"`
	// MaxVictimFailRateDelta caps how much the victims' (non-abuser
	// tenants') fail rate may rise over the no-abuser baseline pass.
	// The DES is deterministic per seed, so this is an exact gate:
	// quota isolation working means the delta is (near) zero. Checked
	// only when a tenant is marked Abuser.
	MaxVictimFailRateDelta float64 `json:"max_victim_fail_rate_delta,omitempty"`
	// MaxVictimP99Sec absolutely caps the victims' p99 latency with
	// the abuser present.
	MaxVictimP99Sec float64 `json:"max_victim_p99_sec,omitempty"`
}

// TenantSLO is one tenant's gate inside a multi-tenant scenario: the
// usual ceilings plus — for the abuser — a fail-rate floor proving
// enforcement actually engaged.
type TenantSLO struct {
	// Tenant selects which tenant the gate applies to.
	Tenant ids.TenantID `json:"tenant"`
	// MaxP99Sec and MaxFailRate cap this tenant's latency and failure.
	MaxP99Sec   float64 `json:"max_p99_sec,omitempty"`
	MaxFailRate float64 `json:"max_fail_rate,omitempty"`
	// MinFailRate asserts throttling bit: an abusive tenant whose fail
	// rate stays below this floor means the quota never refused
	// anything, i.e. the scenario did not actually test enforcement.
	MinFailRate float64 `json:"min_fail_rate,omitempty"`
}

// Violation is one SLO breach: which scenario, which class (empty for
// run-level metrics), which metric, and the measured value against its
// declared limit.
type Violation struct {
	// Scenario and Class locate the breach; Class is empty for
	// run-level metrics like fail rate and utilization.
	Scenario string `json:"scenario"`
	Class    string `json:"class,omitempty"`
	// Metric names the breached objective ("p99", "fail_rate", ...).
	Metric string `json:"metric"`
	// Value is the measurement; Limit the declared threshold.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

// String renders the violation the way the gate prints it.
func (v Violation) String() string {
	where := v.Scenario
	if v.Class != "" {
		where += "/" + v.Class
	}
	return fmt.Sprintf("SLO: %s %s %.6g violates limit %.6g", where, v.Metric, v.Value, v.Limit)
}

// ceil appends a ceiling violation when limit > 0 and value exceeds it.
func ceil(vs []Violation, scen, class, metric string, value, limit float64) []Violation {
	if limit > 0 && value > limit {
		vs = append(vs, Violation{Scenario: scen, Class: class, Metric: metric, Value: value, Limit: limit})
	}
	return vs
}

// Check evaluates the SLO against one scenario result and returns every
// violation (nil when the scenario meets its objectives).
func (s SLO) Check(r *Result) []Violation {
	var vs []Violation
	for _, c := range r.Classes {
		vs = ceil(vs, r.Name, c.Class, "p50", c.P50Ms/1e3, s.MaxP50Sec)
		vs = ceil(vs, r.Name, c.Class, "p99", c.P99Ms/1e3, s.MaxP99Sec)
		vs = ceil(vs, r.Name, c.Class, "p999", c.P999Ms/1e3, s.MaxP999Sec)
	}
	vs = ceil(vs, r.Name, "", "fail_rate", r.FailRate, s.MaxFailRate)
	vs = ceil(vs, r.Name, "", "over_allocate", r.OverAllocate, s.MaxOverAllocate)
	if s.MinUtilization > 0 && r.Utilization < s.MinUtilization {
		vs = append(vs, Violation{Scenario: r.Name, Metric: "utilization", Value: r.Utilization, Limit: s.MinUtilization})
	}
	if s.MinWorkUtilization > 0 && r.WorkUtilization < s.MinWorkUtilization {
		vs = append(vs, Violation{Scenario: r.Name, Metric: "work_utilization", Value: r.WorkUtilization, Limit: s.MinWorkUtilization})
	}
	if r.Live != nil {
		for _, c := range r.Live.Classes {
			vs = ceil(vs, r.Name, "live/"+c.Class, "p99", c.P99Ms/1e3, s.MaxLiveP99Sec)
			vs = ceil(vs, r.Name, "live/"+c.Class, "p999", c.P999Ms/1e3, s.MaxLiveP999Sec)
		}
		vs = ceil(vs, r.Name, "live", "fail_rate", r.Live.FailRate, s.MaxLiveFailRate)
	}
	for _, ts := range s.PerTenant {
		label := ts.Tenant.String()
		for _, c := range r.Tenants {
			if c.Class != label {
				continue
			}
			vs = ceil(vs, r.Name, label, "p99", c.P99Ms/1e3, ts.MaxP99Sec)
			vs = ceil(vs, r.Name, label, "fail_rate", c.FailRate(), ts.MaxFailRate)
			if ts.MinFailRate > 0 && c.FailRate() < ts.MinFailRate {
				vs = append(vs, Violation{Scenario: r.Name, Class: label,
					Metric: "fail_rate_floor", Value: c.FailRate(), Limit: ts.MinFailRate})
			}
		}
	}
	if r.Victims != nil {
		v := r.Victims
		vs = ceil(vs, r.Name, "victims", "fail_rate_delta",
			v.FailRate-v.BaselineFailRate, s.MaxVictimFailRateDelta)
		vs = ceil(vs, r.Name, "victims", "p99", v.P99Ms/1e3, s.MaxVictimP99Sec)
	}
	return vs
}
