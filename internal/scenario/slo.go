package scenario

import "fmt"

// SLO is one scenario's declarative service-level objective: ceilings on
// tail latency and failure, floors on utilization. A zero field disables
// that check, so a scenario declares only the objectives it owns — the
// same shape as the alloc ceiling and stripe floor gates in
// scripts/bench.sh, but data-driven. Latency ceilings apply to every
// workload class of the run unless a per-class override in Classes
// replaces them.
type SLO struct {
	// MaxP50Sec / MaxP99Sec / MaxP999Sec cap each DES class's latency
	// percentiles, in seconds.
	MaxP50Sec  float64 `json:"max_p50_sec,omitempty"`
	MaxP99Sec  float64 `json:"max_p99_sec,omitempty"`
	MaxP999Sec float64 `json:"max_p999_sec,omitempty"`
	// MaxFailRate caps the run's aggregate fail rate (failed/total).
	MaxFailRate float64 `json:"max_fail_rate,omitempty"`
	// MaxOverAllocate caps the soft-scenario over-allocate ratio
	// Σ S_OA / Σ S_TA — the paper's QoS-degradation criterion.
	MaxOverAllocate float64 `json:"max_over_allocate,omitempty"`
	// MinUtilization floors the run's aggregate utilization (mean
	// allocated bandwidth over aggregate capacity; can exceed 1 under
	// soft over-allocation).
	MinUtilization float64 `json:"min_utilization,omitempty"`
	// MinWorkUtilization floors the exact assured-bandwidth utilization
	// (Σ assured byte·seconds over capacity × horizon) — the
	// work-conserving gate: an oversubscribing scenario must actually
	// keep this much real capacity committed, not merely admit more.
	MinWorkUtilization float64 `json:"min_work_utilization,omitempty"`
	// MaxLiveP99Sec / MaxLiveP999Sec cap the live-TCP slice's class
	// percentiles; MaxLiveFailRate caps its aggregate fail rate. Only
	// checked when the scenario ran its live slice.
	MaxLiveP99Sec   float64 `json:"max_live_p99_sec,omitempty"`
	MaxLiveP999Sec  float64 `json:"max_live_p999_sec,omitempty"`
	MaxLiveFailRate float64 `json:"max_live_fail_rate,omitempty"`
}

// Violation is one SLO breach: which scenario, which class (empty for
// run-level metrics), which metric, and the measured value against its
// declared limit.
type Violation struct {
	// Scenario and Class locate the breach; Class is empty for
	// run-level metrics like fail rate and utilization.
	Scenario string `json:"scenario"`
	Class    string `json:"class,omitempty"`
	// Metric names the breached objective ("p99", "fail_rate", ...).
	Metric string `json:"metric"`
	// Value is the measurement; Limit the declared threshold.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

// String renders the violation the way the gate prints it.
func (v Violation) String() string {
	where := v.Scenario
	if v.Class != "" {
		where += "/" + v.Class
	}
	return fmt.Sprintf("SLO: %s %s %.6g violates limit %.6g", where, v.Metric, v.Value, v.Limit)
}

// ceil appends a ceiling violation when limit > 0 and value exceeds it.
func ceil(vs []Violation, scen, class, metric string, value, limit float64) []Violation {
	if limit > 0 && value > limit {
		vs = append(vs, Violation{Scenario: scen, Class: class, Metric: metric, Value: value, Limit: limit})
	}
	return vs
}

// Check evaluates the SLO against one scenario result and returns every
// violation (nil when the scenario meets its objectives).
func (s SLO) Check(r *Result) []Violation {
	var vs []Violation
	for _, c := range r.Classes {
		vs = ceil(vs, r.Name, c.Class, "p50", c.P50Ms/1e3, s.MaxP50Sec)
		vs = ceil(vs, r.Name, c.Class, "p99", c.P99Ms/1e3, s.MaxP99Sec)
		vs = ceil(vs, r.Name, c.Class, "p999", c.P999Ms/1e3, s.MaxP999Sec)
	}
	vs = ceil(vs, r.Name, "", "fail_rate", r.FailRate, s.MaxFailRate)
	vs = ceil(vs, r.Name, "", "over_allocate", r.OverAllocate, s.MaxOverAllocate)
	if s.MinUtilization > 0 && r.Utilization < s.MinUtilization {
		vs = append(vs, Violation{Scenario: r.Name, Metric: "utilization", Value: r.Utilization, Limit: s.MinUtilization})
	}
	if s.MinWorkUtilization > 0 && r.WorkUtilization < s.MinWorkUtilization {
		vs = append(vs, Violation{Scenario: r.Name, Metric: "work_utilization", Value: r.WorkUtilization, Limit: s.MinWorkUtilization})
	}
	if r.Live != nil {
		for _, c := range r.Live.Classes {
			vs = ceil(vs, r.Name, "live/"+c.Class, "p99", c.P99Ms/1e3, s.MaxLiveP99Sec)
			vs = ceil(vs, r.Name, "live/"+c.Class, "p999", c.P999Ms/1e3, s.MaxLiveP999Sec)
		}
		vs = ceil(vs, r.Name, "live", "fail_rate", r.Live.FailRate, s.MaxLiveFailRate)
	}
	return vs
}
