// Package ledger implements per-RM disk-bandwidth accounting: who is
// allocated how much, what remains, and — the paper's soft real-time
// criterion — how many bytes were over-allocated beyond the disk's maximum
// sustainable bandwidth.
//
// The paper defines the over-allocate ratio R_OA = S_OA / S_TA, where S_OA
// is "the total bytes that exceeds the maximum accessible bandwidth" and
// S_TA is "the total bytes assigned to this RM" (Fig. 4). Allocation is
// piecewise constant between allocate/release events, so the ledger
// integrates S_OA exactly at each change instead of sampling.
package ledger

import (
	"fmt"
	"math"

	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// Ledger tracks bandwidth allocation on a single resource manager's disk.
// It is not safe for concurrent use; in the DES all calls happen on the
// event loop, and in live mode the owning RM serializes access.
type Ledger struct {
	capacity units.BytesPerSec
	oversub  float64 // admission oversubscription ratio, ≥ 1 (1 = nominal)

	allocated units.BytesPerSec // sum of active reservations; may exceed capacity in soft RT
	streams   int               // number of active reservations

	lastChange  simtime.Time // time of the last allocation change
	overBytes   float64      // ∫ max(0, allocated − capacity) dt so far
	allocSecs   float64      // ∫ allocated dt (bytes actually assigned over time)
	assuredSecs float64      // ∫ min(allocated, capacity) dt (assured-funded bytes)
	busySecs    float64      // ∫ [streams > 0] dt (duty cycle)

	assignedBytes float64 // S_TA: total bytes of transfers assigned to this RM
}

// New returns a ledger for a disk with the given maximum sustained
// bandwidth, starting its integrals at time start.
func New(capacity units.BytesPerSec, start simtime.Time) *Ledger {
	if capacity <= 0 {
		panic(fmt.Sprintf("ledger: non-positive capacity %v", capacity))
	}
	return &Ledger{capacity: capacity, oversub: 1, lastChange: start}
}

// Capacity returns the disk's maximum sustained bandwidth.
func (l *Ledger) Capacity() units.BytesPerSec { return l.capacity }

// SetOversub sets the admission oversubscription ratio: Fits admits
// reservations up to capacity×ratio even though the disk can only sustain
// capacity, on the bet that streams rarely all draw their reservation at
// once (the blkio tree still guarantees each stream's assured floor).
// Ratios below 1 are rejected.
func (l *Ledger) SetOversub(ratio float64) error {
	if ratio < 1 {
		return fmt.Errorf("ledger: oversubscription ratio %v below 1", ratio)
	}
	l.oversub = ratio
	return nil
}

// Oversub returns the admission oversubscription ratio (≥ 1).
func (l *Ledger) Oversub() float64 { return l.oversub }

// Allocated returns the current total reserved bandwidth.
func (l *Ledger) Allocated() units.BytesPerSec { return l.allocated }

// Remaining returns capacity − allocated. It is negative when the RM is
// over-allocated (possible only in the soft real-time scenario).
func (l *Ledger) Remaining() units.BytesPerSec { return l.capacity - l.allocated }

// Streams returns the number of active reservations.
func (l *Ledger) Streams() int { return l.streams }

// advance integrates the running integrals up to now.
func (l *Ledger) advance(now simtime.Time) {
	dt := now.Sub(l.lastChange).Seconds()
	if dt < 0 {
		panic(fmt.Sprintf("ledger: time went backwards: %v -> %v", l.lastChange, now))
	}
	if dt == 0 {
		l.lastChange = now
		return
	}
	if over := float64(l.allocated - l.capacity); over > 0 {
		l.overBytes += over * dt
		l.assuredSecs += float64(l.capacity) * dt
	} else {
		l.assuredSecs += float64(l.allocated) * dt
	}
	l.allocSecs += float64(l.allocated) * dt
	if l.streams > 0 {
		l.busySecs += dt
	}
	l.lastChange = now
}

// Allocate reserves rate starting at now. The ledger itself never refuses:
// admission control (firm vs soft real-time) is the QoS layer's decision.
func (l *Ledger) Allocate(now simtime.Time, rate units.BytesPerSec) {
	if rate < 0 {
		panic(fmt.Sprintf("ledger: negative allocation %v", rate))
	}
	l.advance(now)
	l.allocated += rate
	l.streams++
}

// Release ends a reservation of rate at now.
func (l *Ledger) Release(now simtime.Time, rate units.BytesPerSec) {
	if rate < 0 {
		panic(fmt.Sprintf("ledger: negative release %v", rate))
	}
	if l.streams <= 0 {
		panic("ledger: release with no active streams")
	}
	l.advance(now)
	l.allocated -= rate
	l.streams--
	// Float accumulation can leave tiny negative dust once all streams end.
	if l.streams == 0 || l.allocated < 0 {
		if float64(l.allocated) < -1e-6*float64(l.capacity)-1e-3 {
			panic(fmt.Sprintf("ledger: allocation underflow to %v", l.allocated))
		}
		if l.streams == 0 {
			l.allocated = 0
		} else if l.allocated < 0 {
			l.allocated = 0
		}
	}
}

// AddAssignedBytes records bytes of payload assigned to this RM (the S_TA
// denominator). Call once per admitted transfer with the transfer's size.
func (l *Ledger) AddAssignedBytes(n units.Size) {
	if n < 0 {
		panic("ledger: negative assigned bytes")
	}
	l.assignedBytes += float64(n)
}

// Snapshot freezes the integrals at now and returns the accumulated
// statistics. The ledger remains usable afterwards.
type Snapshot struct {
	Capacity units.BytesPerSec
	// Oversub is the admission oversubscription ratio the ledger ran with.
	Oversub       float64
	OverBytes     float64 // S_OA: ∫ max(0, allocated − capacity) dt — the borrowed integral
	AssignedBytes float64 // S_TA
	AllocByteSecs float64 // ∫ allocated dt
	// AssuredByteSecs is ∫ min(allocated, capacity) dt: the portion of the
	// allocation integral the disk could genuinely sustain. It splits
	// AllocByteSecs exactly into assured + over (AssuredByteSecs +
	// OverBytes == AllocByteSecs), so work-conserving utilization is an
	// exact integral, not a sample.
	AssuredByteSecs float64
	BusySecs        float64 // seconds with ≥1 active stream
	Allocated       units.BytesPerSec
	Streams         int
}

// Snapshot integrates up to now and reports totals.
func (l *Ledger) Snapshot(now simtime.Time) Snapshot {
	l.advance(now)
	return Snapshot{
		Capacity:        l.capacity,
		Oversub:         l.oversub,
		OverBytes:       l.overBytes,
		AssignedBytes:   l.assignedBytes,
		AllocByteSecs:   l.allocSecs,
		AssuredByteSecs: l.assuredSecs,
		BusySecs:        l.busySecs,
		Allocated:       l.allocated,
		Streams:         l.streams,
	}
}

// OverAllocateRatio returns S_OA / S_TA as defined in the paper, or 0 when
// nothing was assigned.
func (s Snapshot) OverAllocateRatio() float64 {
	if s.AssignedBytes <= 0 {
		return 0
	}
	return s.OverBytes / s.AssignedBytes
}

// MeanUtilization returns the time-averaged fraction of capacity allocated
// over the window ending at the snapshot, given the window length. Under
// oversubscription it can exceed 1; WorkConservingUtilization is the
// physically-deliverable counterpart.
func (s Snapshot) MeanUtilization(windowSecs float64) float64 {
	if windowSecs <= 0 || s.Capacity <= 0 {
		return 0
	}
	return s.AllocByteSecs / (float64(s.Capacity) * windowSecs)
}

// WorkConservingUtilization returns the time-averaged fraction of capacity
// covered by assured (sustainable) allocation over the window: the exact
// ∫ min(allocated, capacity) dt / (capacity × window). It never exceeds 1 —
// bandwidth admitted past nominal capacity counts toward OverBytes, not
// here — so it measures how much of the disk the admitted floors actually
// claim, the quantity work-conserving borrowing then tops up to the ceils.
func (s Snapshot) WorkConservingUtilization(windowSecs float64) float64 {
	if windowSecs <= 0 || s.Capacity <= 0 {
		return 0
	}
	return s.AssuredByteSecs / (float64(s.Capacity) * windowSecs)
}

// AdmitRemaining returns the admission headroom under the oversubscription
// ratio: capacity×oversub − allocated. With the default ratio 1 it equals
// Remaining.
func (l *Ledger) AdmitRemaining() units.BytesPerSec {
	return units.BytesPerSec(float64(l.capacity)*l.oversub) - l.allocated
}

// Fits reports whether an additional reservation of rate would stay within
// the admittable bandwidth — capacity×oversub — the firm real-time
// admission test, oversubscription-aware.
func (l *Ledger) Fits(rate units.BytesPerSec) bool {
	// Tolerate float dust: a reservation equal to AdmitRemaining() must fit.
	return float64(rate) <= float64(l.AdmitRemaining())+1e-9
}

// FracRemaining returns Remaining/Capacity clamped to [-inf, 1]; the dynamic
// replication trigger compares this against B_TH (e.g. 0.20).
func (l *Ledger) FracRemaining() float64 {
	return float64(l.Remaining()) / float64(l.capacity)
}

// String summarizes the ledger state for logs.
func (l *Ledger) String() string {
	pct := 100 * float64(l.allocated) / float64(l.capacity)
	if math.IsNaN(pct) {
		pct = 0
	}
	return fmt.Sprintf("alloc %v / %v (%.1f%%), %d streams", l.allocated, l.capacity, pct, l.streams)
}
