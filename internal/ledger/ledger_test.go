package ledger

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

func TestBasicAllocateRelease(t *testing.T) {
	l := New(units.Mbps(16), 0)
	l.Allocate(0, units.Mbps(4))
	if got := l.Allocated(); got != units.Mbps(4) {
		t.Fatalf("allocated %v, want 4 Mbps", got)
	}
	if got := l.Remaining(); got != units.Mbps(12) {
		t.Fatalf("remaining %v, want 12 Mbps", got)
	}
	l.Allocate(5, units.Mbps(2))
	l.Release(10, units.Mbps(4))
	l.Release(20, units.Mbps(2))
	if l.Streams() != 0 {
		t.Fatalf("streams %d, want 0", l.Streams())
	}
	if l.Allocated() != 0 {
		t.Fatalf("allocated %v, want 0", l.Allocated())
	}
}

func TestNoOverAllocationWithinCapacity(t *testing.T) {
	l := New(units.Mbps(18), 0)
	l.Allocate(0, units.Mbps(10))
	l.Allocate(10, units.Mbps(8)) // exactly at capacity
	l.Release(100, units.Mbps(10))
	l.Release(200, units.Mbps(8))
	snap := l.Snapshot(300)
	if snap.OverBytes != 0 {
		t.Fatalf("over bytes %v, want 0 at/below capacity", snap.OverBytes)
	}
}

func TestOverAllocationIntegral(t *testing.T) {
	// Capacity 10 B/s. Allocate 15 B/s for 20 s: over = 5 B/s * 20 s = 100 B.
	l := New(10, 0)
	l.Allocate(0, 15)
	l.Release(20, 15)
	snap := l.Snapshot(20)
	if math.Abs(snap.OverBytes-100) > 1e-9 {
		t.Fatalf("over bytes %v, want 100", snap.OverBytes)
	}
	if math.Abs(snap.AllocByteSecs-300) > 1e-9 {
		t.Fatalf("alloc byte-secs %v, want 300", snap.AllocByteSecs)
	}
	if math.Abs(snap.BusySecs-20) > 1e-9 {
		t.Fatalf("busy secs %v, want 20", snap.BusySecs)
	}
}

func TestOverAllocateRatio(t *testing.T) {
	l := New(10, 0)
	l.Allocate(0, 15)
	l.AddAssignedBytes(300) // 15 B/s for 20 s
	l.Release(20, 15)
	snap := l.Snapshot(20)
	// S_OA = 100, S_TA = 300 → R_OA = 1/3.
	if got := snap.OverAllocateRatio(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("R_OA = %v, want 1/3", got)
	}
}

func TestOverAllocateRatioZeroAssigned(t *testing.T) {
	l := New(10, 0)
	if got := l.Snapshot(5).OverAllocateRatio(); got != 0 {
		t.Fatalf("R_OA = %v with no assignment, want 0", got)
	}
}

func TestStairstepIntegral(t *testing.T) {
	// Capacity 10. alloc 6 at t=0, +6 at t=10 (over by 2), release 6 at t=20,
	// release 6 at t=30. Over-bytes = 2*10 = 20.
	l := New(10, 0)
	l.Allocate(0, 6)
	l.Allocate(10, 6)
	l.Release(20, 6)
	l.Release(30, 6)
	snap := l.Snapshot(30)
	if math.Abs(snap.OverBytes-20) > 1e-9 {
		t.Fatalf("over bytes %v, want 20", snap.OverBytes)
	}
	// alloc∫ = 6*10 + 12*10 + 6*10 = 240
	if math.Abs(snap.AllocByteSecs-240) > 1e-9 {
		t.Fatalf("alloc byte-secs %v, want 240", snap.AllocByteSecs)
	}
}

func TestFits(t *testing.T) {
	l := New(units.Mbps(18), 0)
	if !l.Fits(units.Mbps(18)) {
		t.Fatal("full-capacity reservation should fit")
	}
	l.Allocate(0, units.Mbps(10))
	if !l.Fits(units.Mbps(8)) {
		t.Fatal("8 of remaining 8 should fit")
	}
	if l.Fits(units.Mbps(8.001)) {
		t.Fatal("8.001 of remaining 8 should not fit")
	}
}

func TestFracRemaining(t *testing.T) {
	l := New(units.Mbps(20), 0)
	l.Allocate(0, units.Mbps(16))
	if got := l.FracRemaining(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("FracRemaining = %v, want 0.2", got)
	}
	l.Allocate(1, units.Mbps(8))
	if got := l.FracRemaining(); got >= 0 {
		t.Fatalf("FracRemaining = %v, want negative when over-allocated", got)
	}
}

func TestMeanUtilization(t *testing.T) {
	l := New(10, 0)
	l.Allocate(0, 5)
	l.Release(50, 5)
	snap := l.Snapshot(100)
	// 5 B/s for 50 s of a 100 s window on a 10 B/s disk → 25%.
	if got := snap.MeanUtilization(100); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MeanUtilization = %v, want 0.25", got)
	}
	if got := snap.MeanUtilization(0); got != 0 {
		t.Fatalf("MeanUtilization(0) = %v, want 0", got)
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { New(0, 0) }},
		{"negative allocate", func() { New(10, 0).Allocate(0, -1) }},
		{"release without stream", func() { New(10, 0).Release(0, 1) }},
		{"negative release", func() {
			l := New(10, 0)
			l.Allocate(0, 1)
			l.Release(1, -1)
		}},
		{"time backwards", func() {
			l := New(10, 0)
			l.Allocate(5, 1)
			l.Allocate(3, 1)
		}},
		{"negative assigned", func() { New(10, 0).AddAssignedBytes(-1) }},
		{"underflow", func() {
			l := New(10, 0)
			l.Allocate(0, 1)
			l.Allocate(0, 1)
			l.Release(1, 5)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestSnapshotIsResumable(t *testing.T) {
	l := New(10, 0)
	l.Allocate(0, 20)
	_ = l.Snapshot(10) // over = 100 so far
	l.Release(20, 20)
	snap := l.Snapshot(20)
	if math.Abs(snap.OverBytes-200) > 1e-9 {
		t.Fatalf("over bytes %v after mid-run snapshot, want 200", snap.OverBytes)
	}
}

func TestSetOversubValidation(t *testing.T) {
	l := New(10, 0)
	if err := l.SetOversub(0.5); err == nil {
		t.Fatal("sub-1 oversubscription accepted")
	}
	if got := l.Oversub(); got != 1 {
		t.Fatalf("default oversub = %v, want 1", got)
	}
	if err := l.SetOversub(1.5); err != nil {
		t.Fatal(err)
	}
	if got := l.Oversub(); got != 1.5 {
		t.Fatalf("oversub = %v, want 1.5", got)
	}
}

func TestFitsOversubscribed(t *testing.T) {
	l := New(units.Mbps(16), 0)
	l.SetOversub(1.25)
	l.Allocate(0, units.Mbps(16)) // nominal capacity fully admitted
	if l.Remaining() != 0 {
		t.Fatalf("remaining %v, want 0", l.Remaining())
	}
	// The oversubscribed headroom is another 4 Mbps.
	if got := l.AdmitRemaining(); got != units.Mbps(4) {
		t.Fatalf("admit remaining %v, want 4 Mbps", got)
	}
	if !l.Fits(units.Mbps(4)) {
		t.Fatal("reservation inside the oversubscribed headroom refused")
	}
	if l.Fits(units.Mbps(4.001)) {
		t.Fatal("reservation past capacity×oversub admitted")
	}
	l.Allocate(1, units.Mbps(4))
	if l.Fits(units.Mbps(0.01)) {
		t.Fatal("oversubscribed headroom exhausted but Fits still true")
	}
}

// TestOversubscribedIntegrals walks an allocate→borrow→reclaim→release
// event sequence on an oversubscribed ledger and checks the assured and
// over-allocated integrals are exact at every step, including the
// zero-duration intervals where two events land on the same instant.
func TestOversubscribedIntegrals(t *testing.T) {
	l := New(10, 0) // capacity 10 B/s
	l.SetOversub(1.5)

	// t=0: two assured streams fill nominal capacity.
	l.Allocate(0, 6)
	l.Allocate(0, 4) // zero-duration interval between the two allocates
	// t=10: a third stream is admitted into the oversubscribed headroom —
	// from here the excess 5 B/s is "borrowed" bandwidth.
	if !l.Fits(5) {
		t.Fatal("oversubscribed admission refused")
	}
	l.Allocate(10, 5)
	// t=20: reclaim — one assured stream ends at the same instant as a
	// snapshot (another zero-duration interval), pulling allocation back
	// under capacity.
	l.Release(20, 6)
	mid := l.Snapshot(20)
	// [0,10): alloc 10 (assured 10, over 0); [10,20): alloc 15 (assured 10,
	// over 5).
	if math.Abs(mid.AssuredByteSecs-200) > 1e-9 {
		t.Fatalf("assured byte-secs %v at t=20, want 200", mid.AssuredByteSecs)
	}
	if math.Abs(mid.OverBytes-50) > 1e-9 {
		t.Fatalf("over bytes %v at t=20, want 50", mid.OverBytes)
	}
	// t=30: release the rest (same-instant pair again).
	l.Release(30, 4)
	l.Release(30, 5)
	snap := l.Snapshot(40)
	// [20,30): alloc 9 → assured 90 more; nothing after t=30.
	if math.Abs(snap.AssuredByteSecs-290) > 1e-9 {
		t.Fatalf("assured byte-secs %v, want 290", snap.AssuredByteSecs)
	}
	if math.Abs(snap.OverBytes-50) > 1e-9 {
		t.Fatalf("over bytes %v, want 50", snap.OverBytes)
	}
	// The split is exact: assured + over == the full allocation integral.
	if math.Abs(snap.AssuredByteSecs+snap.OverBytes-snap.AllocByteSecs) > 1e-9 {
		t.Fatalf("assured %v + over %v != alloc %v",
			snap.AssuredByteSecs, snap.OverBytes, snap.AllocByteSecs)
	}
	if snap.Oversub != 1.5 {
		t.Fatalf("snapshot oversub %v, want 1.5", snap.Oversub)
	}
	// Work-conserving utilization is capped by capacity: 290/(10×40).
	if got := snap.WorkConservingUtilization(40); math.Abs(got-0.725) > 1e-12 {
		t.Fatalf("WorkConservingUtilization = %v, want 0.725", got)
	}
	if got := snap.WorkConservingUtilization(0); got != 0 {
		t.Fatalf("WorkConservingUtilization(0) = %v, want 0", got)
	}
	// The sampled-style mean counts the over-allocation too: 340/400.
	if got := snap.MeanUtilization(40); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("MeanUtilization = %v, want 0.85", got)
	}
}

// Work-conserving utilization never exceeds 1 no matter how hard the
// ledger is oversubscribed.
func TestWorkConservingUtilizationCapped(t *testing.T) {
	l := New(10, 0)
	l.SetOversub(3)
	l.Allocate(0, 30)
	l.Release(100, 30)
	snap := l.Snapshot(100)
	if got := snap.WorkConservingUtilization(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("WorkConservingUtilization = %v, want exactly 1", got)
	}
	if got := snap.MeanUtilization(100); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MeanUtilization = %v, want 3", got)
	}
}

// Property: the exact integrator matches a brute-force fine-grained
// step integration for random allocate/release schedules.
func TestIntegratorMatchesBruteForce(t *testing.T) {
	type op struct {
		at      float64
		rate    float64
		isAlloc bool
	}
	f := func(seed int64) bool {
		// Build a random schedule of paired allocate/release ops.
		r := newTestRand(seed)
		const capacity = 100.0
		var ops []op
		for i := 0; i < 12; i++ {
			start := r.next() * 100
			dur := r.next()*50 + 1
			rate := r.next()*40 + 1
			ops = append(ops, op{at: start, rate: rate, isAlloc: true})
			ops = append(ops, op{at: start + dur, rate: rate, isAlloc: false})
		}
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].at != ops[j].at {
				return ops[i].at < ops[j].at
			}
			// Allocations before releases at the same instant: keeps the
			// stream count non-negative for the ledger.
			return ops[i].isAlloc && !ops[j].isAlloc
		})
		l := New(capacity, 0)
		for _, o := range ops {
			if o.isAlloc {
				l.Allocate(simtime.Time(o.at), units.BytesPerSec(o.rate))
			} else {
				l.Release(simtime.Time(o.at), units.BytesPerSec(o.rate))
			}
		}
		const horizon = 200.0
		got := l.Snapshot(simtime.Time(horizon)).OverBytes

		// Brute force: sample allocation at fine steps.
		const dt = 0.001
		brute := 0.0
		for tm := 0.0; tm < horizon; tm += dt {
			alloc := 0.0
			for _, o := range ops {
				if o.isAlloc && o.at <= tm {
					alloc += o.rate
				}
				if !o.isAlloc && o.at <= tm {
					alloc -= o.rate
				}
			}
			if over := alloc - capacity; over > 0 {
				brute += over * dt
			}
		}
		return math.Abs(got-brute) < 0.01*math.Max(1, brute)+2.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand is a tiny deterministic generator for the property test,
// independent of the packages under test.
type testRand struct{ s uint64 }

func newTestRand(seed int64) *testRand { return &testRand{s: uint64(seed)*2654435761 + 1} }

func (r *testRand) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / (1 << 53)
}
