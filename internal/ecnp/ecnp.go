// Package ecnp defines the Extended Contract Net Protocol layer of the
// distributed file system: the message vocabulary exchanged between the
// three ECNP roles and the Go interfaces each role implements.
//
// The paper maps its components onto ECNP roles one-to-one: the DFS Client
// is the Requester, the Resource Manager is the Storage Provider, and the
// Metadata Manager is the Mapper (matchmaker). Two deviations from the
// original ECNP model are kept deliberately (paper §III-B): every provider
// always returns a bid in response to a CFP (never a refusal), and the
// bid-accept/bid-reject round is eliminated — selection is unilateral at
// the requester, which simply opens the data access on the winner.
//
// The same interfaces are implemented twice: by the in-process simulation
// actors (packages mm, rm, dfsc driven by the DES in internal/cluster) and
// by the TCP stack in internal/live, which transports exactly these message
// structs with the internal/wire codec.
package ecnp

import (
	"context"
	"fmt"

	"dfsqos/internal/ids"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// RMInfo is the registration record a Resource Manager submits to the
// Metadata Manager and that the MM hands back to requesters.
type RMInfo struct {
	ID ids.RMID
	// Capacity is the maximum sustained disk bandwidth of the RM, as
	// enforced by the blkio throttle on its virtual block device.
	Capacity units.BytesPerSec
	// StorageBytes is the RM's disk capacity for replica placement.
	StorageBytes units.Size
	// Addr is the RM's network address ("host:port"); empty in-process.
	Addr string
}

// Validate reports the first problem with the registration, or nil.
func (r RMInfo) Validate() error {
	if !r.ID.Valid() {
		return fmt.Errorf("ecnp: invalid RM id %d", r.ID)
	}
	if r.Capacity <= 0 {
		return fmt.Errorf("ecnp: %v has non-positive capacity", r.ID)
	}
	if r.StorageBytes < 0 {
		return fmt.Errorf("ecnp: %v has negative storage", r.ID)
	}
	return nil
}

// CFP is the Call-For-Proposal a requester fans out to every RM holding a
// replica of the requested file.
type CFP struct {
	Request ids.RequestID
	File    ids.FileID
	// Bitrate is B_req: the bandwidth the access must reserve.
	Bitrate units.BytesPerSec
	// DurationSec is T_ocp: how long the access occupies the provider.
	DurationSec float64
	// Tenant identifies the requesting tenant for quota accounting and
	// weighted-fair bid scoring; NoneTenant requests bypass both.
	Tenant ids.TenantID
}

// OpenRequest asks the selected provider to admit a data access and
// reserve bandwidth for it.
type OpenRequest struct {
	Request     ids.RequestID
	File        ids.FileID
	Bitrate     units.BytesPerSec
	DurationSec float64
	// Firm selects the admission scenario: a firm request is refused when
	// the reservation does not fit in the remaining bandwidth; a soft
	// request is always admitted (possibly over-allocating the disk).
	Firm bool
	// Tenant identifies the requesting tenant. A provider with a tenant
	// ledger charges the reservation against the tenant's bandwidth quota
	// and refuses the open when the quota is exhausted — even in the soft
	// scenario, where untenanted admission is unconditional.
	Tenant ids.TenantID
}

// OpenResult reports the provider's admission decision.
type OpenResult struct {
	OK bool
	// Reason is a short diagnostic when OK is false.
	Reason string
}

// ReplicaOffer is sent by a replication source endpoint to a candidate
// destination endpoint.
type ReplicaOffer struct {
	Replication ids.ReplicationID
	File        ids.FileID
	SizeBytes   units.Size
	// Bitrate of the file; the destination derives B_REV from it.
	Bitrate units.BytesPerSec
	// DurationSec is the file's occupation time, needed by the destination
	// to maintain its occupation-time statistics once it owns the replica.
	DurationSec float64
	// Rate is the replication transfer speed (paper: 1.8 Mbit/s).
	Rate   units.BytesPerSec
	Source ids.RMID
}

// StoreRequest asks a provider to admit a brand-new file — the write half
// of the data communication phase. The provider adds the file to its local
// table and storage accounting; the data bytes travel on the data plane
// (live mode) or are implicit (simulation).
type StoreRequest struct {
	File        ids.FileID
	Bitrate     units.BytesPerSec
	SizeBytes   units.Size
	DurationSec float64
	// Tenant owns the stored bytes: a provider with a tenant ledger
	// charges SizeBytes against the tenant's byte quota and refuses the
	// store when it is exhausted.
	Tenant ids.TenantID
}

// Requester is the DFSC-side identity passed to providers (diagnostics).
type Requester struct {
	DFSC ids.DFSCID
	User ids.UserID
}

// Mapper is the Metadata Manager API: the global resource list and the
// file → replica map ("the union of the resource information provided by
// all of the registered RMs").
type Mapper interface {
	// RegisterRM adds or refreshes an RM in the global resource list.
	RegisterRM(info RMInfo, files []ids.FileID) error
	// Lookup returns the RMs holding a replica of file, the "list of
	// eligible RMs" answered to a requester's query.
	Lookup(file ids.FileID) []ids.RMID
	// RMsWithout returns registered RMs holding no replica of file — the
	// candidate destination list for dynamic replication.
	RMsWithout(file ids.FileID) []ids.RMID
	// AddReplica records that rm now holds file (bulk import or upload).
	AddReplica(file ids.FileID, rm ids.RMID) error
	// RemoveReplica records that rm dropped its replica of file.
	RemoveReplica(file ids.FileID, rm ids.RMID) error
	// BeginReplication reserves a pending replica of file on rm before
	// the transfer starts. The reservation counts toward ReplicaCount and
	// is refused when rm already holds or is already receiving the file,
	// or when maxTotal > 0 and the count (committed + pending) has reached
	// maxTotal — the atomic check that keeps concurrent replication
	// sources within N_MAXR.
	BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error
	// EndReplication resolves a reservation: commit turns it into a real
	// replica, abort drops it.
	EndReplication(file ids.FileID, rm ids.RMID, commit bool) error
	// ReplicaCount returns committed plus pending replicas of file.
	ReplicaCount(file ids.FileID) int
	// RMs returns the full resource list in RM-ID order.
	RMs() []RMInfo
}

// Provider is the Resource Manager API seen by requesters and by peer RMs
// during replication.
type Provider interface {
	// Info returns the provider's registration record.
	Info() RMInfo
	// HandleCFP evaluates a CFP and always returns a bid (paper deviation
	// #1). Side effects: the provider records the request arrival in its
	// access history and may trigger its dynamic-replication agent.
	HandleCFP(cfp CFP) selection.Bid
	// Open admits (or, in the firm scenario, possibly refuses) a data
	// access, reserving cfp.Bitrate until Close is called.
	Open(req OpenRequest) OpenResult
	// Close releases the reservation of a previously admitted request.
	Close(request ids.RequestID)
	// OfferReplica is the destination endpoint of dynamic replication; it
	// applies the paper's three rejection rules and, on acceptance,
	// reserves the transfer bandwidth until the source completes the copy.
	OfferReplica(offer ReplicaOffer) bool
	// FinishReplica finalizes a previously accepted offer on the
	// destination: the transfer bandwidth is released and, when committed,
	// the destination owns the replica. committed=false aborts the copy.
	FinishReplica(rep ids.ReplicationID, committed bool)
	// StoreFile admits a brand-new file (the write path); it fails when
	// the provider already holds the file or its disk is full.
	StoreFile(req StoreRequest) error
}

// CtxBidder is optionally implemented by Providers whose HandleCFP
// crosses a network. HandleCFPContext must honor the context's deadline
// and cancellation, degrading to the zero bid (RM set, Req set, everything
// else zero) on overrun — the paper's always-bid deviation preserved: a
// silent or stalled provider ranks last instead of blocking the
// negotiation. Requesters running a deadline-bounded concurrent CFP
// fan-out type-assert for this interface and fall back to the plain
// HandleCFP for in-process (simulation) providers, so the simulated and
// live Provider implementations stay on one contract.
type CtxBidder interface {
	HandleCFPContext(ctx context.Context, cfp CFP) selection.Bid
}

// ZeroBid is the bid a requester synthesizes for a provider that could not
// answer a CFP in time (transport failure or negotiation-deadline
// overrun). Its score is 0 under every policy, ranking it last among live
// bidders without aborting the negotiation.
func ZeroBid(rm ids.RMID, cfp CFP) selection.Bid {
	return selection.Bid{RM: rm, Req: cfp.Bitrate}
}

// Directory resolves provider IDs to live endpoints. The simulation binds
// it to in-process actors; live mode binds it to TCP client stubs.
type Directory interface {
	Provider(id ids.RMID) (Provider, bool)
}

// Scheduler abstracts time and deferred execution so the same RM/DFSC
// logic runs under the DES (virtual time) and in live mode (wall time).
type Scheduler interface {
	// Now returns the current time.
	Now() simtime.Time
	// After schedules fn to run d seconds from now and returns a cancel
	// function (idempotent; returns false once fired or canceled).
	After(d simtime.Duration, fn func(simtime.Time)) (cancel func() bool)
}

// SimScheduler adapts a *simtime.Scheduler to the Scheduler interface.
type SimScheduler struct {
	S *simtime.Scheduler
}

// Now implements Scheduler.
func (a SimScheduler) Now() simtime.Time { return a.S.Now() }

// After implements Scheduler.
func (a SimScheduler) After(d simtime.Duration, fn func(simtime.Time)) func() bool {
	ev := a.S.After(d, fn)
	return func() bool { return a.S.Cancel(ev) }
}

// StaticDirectory is a fixed RMID → Provider map.
type StaticDirectory map[ids.RMID]Provider

// Provider implements Directory.
func (d StaticDirectory) Provider(id ids.RMID) (Provider, bool) {
	p, ok := d[id]
	return p, ok
}
