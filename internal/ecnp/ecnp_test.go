package ecnp

import (
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

func TestRMInfoValidate(t *testing.T) {
	good := RMInfo{ID: 1, Capacity: units.Mbps(18), StorageBytes: units.GB}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RMInfo{
		{ID: -1, Capacity: units.Mbps(18)},
		{ID: 1, Capacity: 0},
		{ID: 1, Capacity: units.Mbps(18), StorageBytes: -1},
	}
	for i, info := range bad {
		if err := info.Validate(); err == nil {
			t.Errorf("case %d: invalid RMInfo accepted", i)
		}
	}
}

func TestSimSchedulerAdapter(t *testing.T) {
	s := simtime.NewScheduler()
	a := SimScheduler{S: s}
	if a.Now() != 0 {
		t.Fatalf("Now = %v", a.Now())
	}
	fired := false
	cancel := a.After(5, func(now simtime.Time) {
		if now != 5 {
			t.Errorf("fired at %v, want 5", now)
		}
		fired = true
	})
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if cancel() {
		t.Fatal("cancel of fired event returned true")
	}
	// Cancel before firing prevents execution.
	fired2 := false
	cancel2 := a.After(5, func(simtime.Time) { fired2 = true })
	if !cancel2() {
		t.Fatal("cancel returned false for pending event")
	}
	s.Run()
	if fired2 {
		t.Fatal("canceled event fired")
	}
}

// stubProvider implements Provider for directory tests.
type stubProvider struct{ id ids.RMID }

func (s *stubProvider) Info() RMInfo                          { return RMInfo{ID: s.id, Capacity: units.Mbps(1)} }
func (s *stubProvider) HandleCFP(CFP) selection.Bid           { return selection.Bid{RM: s.id} }
func (s *stubProvider) Open(OpenRequest) OpenResult           { return OpenResult{OK: true} }
func (s *stubProvider) Close(ids.RequestID)                   {}
func (s *stubProvider) OfferReplica(ReplicaOffer) bool        { return false }
func (s *stubProvider) FinishReplica(ids.ReplicationID, bool) {}
func (s *stubProvider) StoreFile(StoreRequest) error          { return nil }

func TestStaticDirectory(t *testing.T) {
	dir := StaticDirectory{
		1: &stubProvider{id: 1},
		2: &stubProvider{id: 2},
	}
	p, ok := dir.Provider(1)
	if !ok || p.Info().ID != 1 {
		t.Fatalf("Provider(1) = (%v, %v)", p, ok)
	}
	if _, ok := dir.Provider(9); ok {
		t.Fatal("Provider(9) should be absent")
	}
}
