package replication

import (
	"fmt"
	"sort"

	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// GCConfig tunes replica deletion. The paper (§III-B) argues both sides of
// the threshold: "if the storage system only replicates data without
// deleting the redundant replicas, the resource utilization will
// continuously downgrade", yet a threshold set too high causes "too many
// operations back and forth between data replication and deletion".
// The watermark pair encodes that hysteresis: deletion starts when storage
// utilization crosses HighWatermark and stops once it falls below
// LowWatermark, which keeps replication and deletion from oscillating.
type GCConfig struct {
	// Enabled turns replica deletion on.
	Enabled bool
	// HighWatermark is the storage-utilization fraction that triggers
	// deletion.
	HighWatermark float64
	// LowWatermark is the utilization fraction deletion drives down to.
	LowWatermark float64
	// MinReplicas is the replica count deletion never goes below
	// (normally the static degree, so the original fault tolerance is
	// preserved).
	MinReplicas int
}

// DefaultGCConfig returns a disabled config whose thresholds, once
// enabled, use an 85%/70% hysteresis and preserve the paper's static
// degree of 3.
func DefaultGCConfig() GCConfig {
	return GCConfig{HighWatermark: 0.85, LowWatermark: 0.70, MinReplicas: 3}
}

// Validate reports the first problem with the config, or nil.
func (g GCConfig) Validate() error {
	if !g.Enabled {
		return nil
	}
	switch {
	case g.HighWatermark <= 0 || g.HighWatermark > 1:
		return fmt.Errorf("replication: HighWatermark must be in (0,1], got %v", g.HighWatermark)
	case g.LowWatermark <= 0 || g.LowWatermark >= g.HighWatermark:
		return fmt.Errorf("replication: LowWatermark must be in (0, HighWatermark), got %v", g.LowWatermark)
	case g.MinReplicas < 1:
		return fmt.Errorf("replication: MinReplicas must be ≥ 1, got %d", g.MinReplicas)
	}
	return nil
}

// ShouldCollect reports whether deletion must start at the given usage.
func (g GCConfig) ShouldCollect(used, capacity units.Size) bool {
	if !g.Enabled || capacity <= 0 {
		return false
	}
	return float64(used) > g.HighWatermark*float64(capacity)
}

// TargetBytes returns the usage deletion drives down to.
func (g GCConfig) TargetBytes(capacity units.Size) units.Size {
	return units.Size(g.LowWatermark * float64(capacity))
}

// Victim is a deletion candidate: a locally stored replica with its
// coldness rank inputs.
type Victim struct {
	File ids.FileID
	Size units.Size
	// Count is the local request count (lower = colder).
	Count int64
	// Replicas is the file's current global replica count.
	Replicas int
	// Pinned marks replicas that must not be deleted (in-flight
	// replication source, currently streaming, etc.).
	Pinned bool
}

// SelectVictims returns the files to delete, coldest first, so that usage
// drops to at most target. Files at or below minReplicas or pinned are
// skipped. Ties in coldness break by larger size first (fewer deletions),
// then file ID for determinism.
func SelectVictims(victims []Victim, used, target units.Size, minReplicas int) []ids.FileID {
	if used <= target {
		return nil
	}
	sorted := make([]Victim, 0, len(victims))
	for _, v := range victims {
		if v.Pinned || v.Replicas <= minReplicas || v.Replicas <= 1 {
			continue
		}
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count < sorted[j].Count
		}
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].File < sorted[j].File
	})
	var out []ids.FileID
	for _, v := range sorted {
		if used <= target {
			break
		}
		out = append(out, v.File)
		used -= v.Size
	}
	return out
}
