// Package replication implements the decision logic of the paper's dynamic
// replication mechanism (§V): when to trigger a replication, which file to
// replicate, how many copies Rep(N_REP, N_MAXR) may create, and where the
// copies go under the three destination-selection strategies (Random,
// Largest-Bandwidth-First, Weighted).
//
// This package is pure policy — it owns no clocks, ledgers or transfers.
// The Resource Manager (package rm) consults it and drives the actual
// transfer through the scheduler, so the identical decision code runs in
// the DES and in live mode.
package replication

import (
	"fmt"
	"sort"
	"strings"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

// Strategy is the paper's Rep(N_REP, N_MAXR): replicate NRep copies at a
// time with at most NMaxR total replicas. The zero value (disabled) is the
// static-replication configuration.
type Strategy struct {
	// Enabled is false for static replication (no dynamic copies).
	Enabled bool
	// NRep is how many copies one trigger creates.
	NRep int
	// NMaxR is the upper bound on the number of replicas of one file.
	NMaxR int
}

// Static is the static-replication strategy: the initial replicas are all
// a file ever has.
func Static() Strategy { return Strategy{} }

// Rep constructs the Rep(nRep, nMaxR) strategy.
func Rep(nRep, nMaxR int) Strategy {
	return Strategy{Enabled: true, NRep: nRep, NMaxR: nMaxR}
}

// Baseline is the paper's baseline dynamic strategy: Rep(3, 8).
func Baseline() Strategy { return Rep(3, 8) }

// String renders "static", "Rep(1,3)", etc.
func (s Strategy) String() string {
	if !s.Enabled {
		return "static"
	}
	return fmt.Sprintf("Rep(%d,%d)", s.NRep, s.NMaxR)
}

// ParseStrategy parses "static", "baseline" or "Rep(n,m)" (case
// insensitive, e.g. "rep(1,3)").
func ParseStrategy(s string) (Strategy, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	switch t {
	case "static":
		return Static(), nil
	case "baseline":
		return Baseline(), nil
	}
	var n, m int
	if _, err := fmt.Sscanf(t, "rep(%d,%d)", &n, &m); err != nil {
		return Strategy{}, fmt.Errorf("replication: cannot parse strategy %q", s)
	}
	st := Rep(n, m)
	if err := st.Validate(); err != nil {
		return Strategy{}, err
	}
	return st, nil
}

// Validate reports the first problem with the strategy, or nil.
func (s Strategy) Validate() error {
	if !s.Enabled {
		return nil
	}
	if s.NRep <= 0 {
		return fmt.Errorf("replication: NRep must be positive, got %d", s.NRep)
	}
	if s.NMaxR <= 0 {
		return fmt.Errorf("replication: NMaxR must be positive, got %d", s.NMaxR)
	}
	return nil
}

// Plan applies the paper's copy-count rule for a file that currently has
// nCur replicas. actual is how many copies to create (always ≥ 1:
// "dynamic data replication will at the very least be processed one time"),
// and migrate reports whether the source must delete its own replica after
// the copies complete because the bound would otherwise be exceeded
// (N_REP + N_CUR > N_MAXR ⇒ N_REP = N_MAXR − (N_CUR − 1)).
func (s Strategy) Plan(nCur int) (actual int, migrate bool) {
	if !s.Enabled {
		return 0, false
	}
	if nCur < 1 {
		panic(fmt.Sprintf("replication: Plan with nCur=%d", nCur))
	}
	actual = s.NRep
	if s.NRep+nCur > s.NMaxR {
		actual = s.NMaxR - (nCur - 1)
		if actual < 1 {
			actual = 1
		}
		migrate = true
	}
	return actual, migrate
}

// DestStrategy selects replication destinations among candidate RMs.
type DestStrategy int

const (
	// DestRandom draws destinations uniformly (the paper's default).
	DestRandom DestStrategy = iota
	// DestLBF ("largest bandwidth first") prefers the RMs with the
	// largest initial bandwidth — in the paper's topology, RM1 and RM9.
	DestLBF
	// DestWeighted draws destinations with probability proportional to
	// their initial bandwidth.
	DestWeighted
)

// String implements fmt.Stringer.
func (d DestStrategy) String() string {
	switch d {
	case DestRandom:
		return "Random"
	case DestLBF:
		return "LBF"
	case DestWeighted:
		return "Weighted"
	default:
		return fmt.Sprintf("DestStrategy(%d)", int(d))
	}
}

// ParseDestStrategy parses "random", "lbf" or "weighted".
func ParseDestStrategy(s string) (DestStrategy, error) {
	switch s {
	case "random", "Random":
		return DestRandom, nil
	case "lbf", "LBF":
		return DestLBF, nil
	case "weighted", "Weighted":
		return DestWeighted, nil
	}
	return 0, fmt.Errorf("replication: unknown destination strategy %q", s)
}

// Order returns the order in which candidate destinations should be tried.
// A destination may reject the offer, so the source walks the returned list
// until enough copies are accepted. Sampling is without replacement:
//
//   - DestRandom: a uniform shuffle.
//   - DestLBF: candidates sorted by capacity descending, equal capacities
//     shuffled (the paper's "randomly select one of RM1 and RM9").
//   - DestWeighted: successive draws with probability proportional to
//     capacity.
func (d DestStrategy) Order(candidates []ecnp.RMInfo, src *rng.Source) []ids.RMID {
	n := len(candidates)
	out := make([]ids.RMID, 0, n)
	switch d {
	case DestRandom:
		perm := src.Perm(n)
		for _, i := range perm {
			out = append(out, candidates[i].ID)
		}
	case DestLBF:
		idx := src.Perm(n) // random tie-break baseline
		sort.SliceStable(idx, func(a, b int) bool {
			return candidates[idx[a]].Capacity > candidates[idx[b]].Capacity
		})
		for _, i := range idx {
			out = append(out, candidates[i].ID)
		}
	case DestWeighted:
		remaining := make([]ecnp.RMInfo, n)
		copy(remaining, candidates)
		for len(remaining) > 0 {
			weights := make([]float64, len(remaining))
			total := 0.0
			for i, c := range remaining {
				weights[i] = float64(c.Capacity)
				total += weights[i]
			}
			var pick int
			if total <= 0 {
				pick = src.Intn(len(remaining))
			} else {
				pick = src.WeightedChoice(weights)
			}
			out = append(out, remaining[pick].ID)
			remaining = append(remaining[:pick], remaining[pick+1:]...)
		}
	default:
		panic(fmt.Sprintf("replication: unknown strategy %v", d))
	}
	return out
}

// Config bundles the tunables of the dynamic replication mechanism, with
// the defaults fixed in the paper's evaluation (§VI-C).
type Config struct {
	Strategy Strategy
	// TriggerFrac is B_TH: replication triggers when an access request
	// arrives at an RM whose remaining-bandwidth fraction is below this.
	TriggerFrac float64
	// CooldownSec: an RM "has not processed data replication within 60
	// seconds" before it may act as a source again.
	CooldownSec float64
	// Speed is the replication transfer rate (paper: 1.8 Mbit/s).
	Speed units.BytesPerSec
	// BusyCoverage selects the busiest-file candidate set N_BF: the
	// smallest popularity prefix covering this fraction of the RM's
	// access count (paper: 50%).
	BusyCoverage float64
	// BRevFactor: B_REV = BRevFactor × bitrate(file) is the bandwidth a
	// destination must have free to accept a copy (paper: 2).
	BRevFactor float64
	// ReserveFactor is the paper's K: the source may start a replication
	// only when B_REV ≥ K × bitrate(file). With the paper's defaults
	// (B_REV = 2×bitrate, K = 2) the check is always satisfied; it is a
	// tunable for ablation studies.
	ReserveFactor float64
	// Dest selects the destination-selection strategy.
	Dest DestStrategy
	// ChargeTransfers, when true, charges the replication transfer rate
	// against the source and destination QoS bandwidth ledgers for the
	// duration of the copy. The paper instead sets B_REV aside as "the
	// available bandwidth for transferring the replicated data", i.e. the
	// copy rides a pre-reserved slice outside the allocatable pool, so
	// the default is false. Enable it for the ablation that quantifies
	// the cost of replication traffic.
	ChargeTransfers bool
}

// DefaultConfig returns the evaluation's fixed parameters with the given
// strategy and the Random destination selection ("the default strategy for
// all experiments").
func DefaultConfig(s Strategy) Config {
	return Config{
		Strategy:      s,
		TriggerFrac:   0.20,
		CooldownSec:   60,
		Speed:         units.Mbps(1.8),
		BusyCoverage:  0.50,
		BRevFactor:    2,
		ReserveFactor: 2,
		Dest:          DestRandom,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	if err := c.Strategy.Validate(); err != nil {
		return err
	}
	if !c.Strategy.Enabled {
		return nil
	}
	switch {
	case c.TriggerFrac <= 0 || c.TriggerFrac >= 1:
		return fmt.Errorf("replication: TriggerFrac must be in (0,1), got %v", c.TriggerFrac)
	case c.CooldownSec < 0:
		return fmt.Errorf("replication: negative CooldownSec %v", c.CooldownSec)
	case c.Speed <= 0:
		return fmt.Errorf("replication: Speed must be positive, got %v", c.Speed)
	case c.BusyCoverage <= 0 || c.BusyCoverage > 1:
		return fmt.Errorf("replication: BusyCoverage must be in (0,1], got %v", c.BusyCoverage)
	case c.BRevFactor <= 0:
		return fmt.Errorf("replication: BRevFactor must be positive, got %v", c.BRevFactor)
	case c.ReserveFactor <= 0:
		return fmt.Errorf("replication: ReserveFactor must be positive, got %v", c.ReserveFactor)
	}
	return nil
}

// BRev returns B_REV for a file of the given bitrate.
func (c Config) BRev(bitrate units.BytesPerSec) units.BytesPerSec {
	return units.BytesPerSec(c.BRevFactor * float64(bitrate))
}

// SourceEligible applies the paper's source condition
// B_REV ≥ K × bitrate(file).
func (c Config) SourceEligible(bitrate units.BytesPerSec) bool {
	return float64(c.BRev(bitrate)) >= c.ReserveFactor*float64(bitrate)
}

// FileCount pairs a file with its observed request count on an RM.
type FileCount struct {
	File  ids.FileID
	Count int64
}

// BusiestCovering returns the N_BF candidate set: files sorted by request
// count descending (ties by ascending file ID for determinism), truncated
// to the smallest prefix whose counts sum to at least coverage × total.
// Files with zero count never enter the set.
func BusiestCovering(counts []FileCount, coverage float64) []ids.FileID {
	if coverage <= 0 {
		return nil
	}
	sorted := make([]FileCount, 0, len(counts))
	var total int64
	for _, fc := range counts {
		if fc.Count > 0 {
			sorted = append(sorted, fc)
			total += fc.Count
		}
	}
	if total == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].File < sorted[j].File
	})
	target := coverage * float64(total)
	var acc int64
	out := make([]ids.FileID, 0, len(sorted))
	for _, fc := range sorted {
		out = append(out, fc.File)
		acc += fc.Count
		if float64(acc) >= target {
			break
		}
	}
	return out
}

// DestinationDecision applies the destination endpoint's three rejection
// rules (paper §V, "Where to replicate", destination endpoint). It is a
// pure predicate so both the sim RM and the live RM share it.
//
//	hasReplica:    rule 1 — the destination already has the requested replica.
//	remaining:     the destination's remaining bandwidth.
//	capacity:      the destination's total bandwidth.
//	bRev:          rule 2 — reject if remaining < B_REV (avoids
//	               nested replication).
//	triggerFrac:   rule 3 — reject if remaining < B_TH.
func DestinationDecision(hasReplica bool, remaining, capacity, bRev units.BytesPerSec, triggerFrac float64) bool {
	if hasReplica {
		return false
	}
	if float64(remaining) < float64(bRev) {
		return false
	}
	if float64(remaining) < triggerFrac*float64(capacity) {
		return false
	}
	return true
}
