package replication

import (
	"testing"
	"testing/quick"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

func TestStrategyString(t *testing.T) {
	if Static().String() != "static" {
		t.Errorf("static renders %q", Static().String())
	}
	if Rep(1, 3).String() != "Rep(1,3)" {
		t.Errorf("Rep(1,3) renders %q", Rep(1, 3).String())
	}
	if Baseline().String() != "Rep(3,8)" {
		t.Errorf("baseline renders %q", Baseline().String())
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := Static().Validate(); err != nil {
		t.Error(err)
	}
	if err := Rep(0, 8).Validate(); err == nil {
		t.Error("NRep=0 accepted")
	}
	if err := Rep(1, 0).Validate(); err == nil {
		t.Error("NMaxR=0 accepted")
	}
}

func TestPlanPaperRule(t *testing.T) {
	cases := []struct {
		strat      Strategy
		nCur       int
		wantActual int
		wantMig    bool
	}{
		// Rep(1,3) at the bound: pure migration (copy 1, delete own).
		{Rep(1, 3), 3, 1, true},
		// Rep(1,8) growing below the bound.
		{Rep(1, 8), 3, 1, false},
		{Rep(1, 8), 7, 1, false},
		// Rep(1,8) at the bound migrates.
		{Rep(1, 8), 8, 1, true},
		// Baseline Rep(3,8): grows by 3 until it would exceed the bound.
		{Rep(3, 8), 3, 3, false},
		{Rep(3, 8), 5, 3, false},
		{Rep(3, 8), 6, 3, true}, // 6+3>8 → actual = 8-(6-1) = 3
		{Rep(3, 8), 8, 1, true}, // 8+3>8 → actual = 8-7 = 1
		// "at the very least be processed one time".
		{Rep(1, 1), 1, 1, true},
	}
	for _, c := range cases {
		actual, mig := c.strat.Plan(c.nCur)
		if actual != c.wantActual || mig != c.wantMig {
			t.Errorf("%v.Plan(%d) = (%d, %v), want (%d, %v)",
				c.strat, c.nCur, actual, mig, c.wantActual, c.wantMig)
		}
	}
	if actual, mig := Static().Plan(3); actual != 0 || mig {
		t.Error("static plan should be (0, false)")
	}
}

func TestPlanPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Plan(0) did not panic")
		}
	}()
	Rep(1, 3).Plan(0)
}

func TestDestStrategyParseAndString(t *testing.T) {
	for _, d := range []DestStrategy{DestRandom, DestLBF, DestWeighted} {
		got, err := ParseDestStrategy(d.String())
		if err != nil || got != d {
			t.Errorf("round trip %v failed: (%v, %v)", d, got, err)
		}
	}
	if _, err := ParseDestStrategy("nearest"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func candidates() []ecnp.RMInfo {
	return []ecnp.RMInfo{
		{ID: 1, Capacity: units.Mbps(128)},
		{ID: 2, Capacity: units.Mbps(19)},
		{ID: 3, Capacity: units.Mbps(18)},
		{ID: 4, Capacity: units.Mbps(128)},
		{ID: 5, Capacity: units.Mbps(18)},
	}
}

func TestOrderIsPermutation(t *testing.T) {
	src := rng.New(1)
	for _, d := range []DestStrategy{DestRandom, DestLBF, DestWeighted} {
		order := d.Order(candidates(), src)
		if len(order) != 5 {
			t.Fatalf("%v: order len %d", d, len(order))
		}
		seen := map[ids.RMID]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("%v: duplicate %v in order", d, id)
			}
			seen[id] = true
		}
	}
}

func TestLBFPutsLargestFirst(t *testing.T) {
	src := rng.New(2)
	firsts := map[ids.RMID]int{}
	for i := 0; i < 200; i++ {
		order := DestLBF.Order(candidates(), src)
		// The two 128 Mbps RMs (1 and 4) must occupy the first two slots.
		if !((order[0] == 1 && order[1] == 4) || (order[0] == 4 && order[1] == 1)) {
			t.Fatalf("LBF order starts %v, want the large RMs first", order[:2])
		}
		firsts[order[0]]++
	}
	// "randomly select one of RM1 and RM9": ties must alternate.
	if firsts[1] < 40 || firsts[4] < 40 {
		t.Fatalf("LBF tie-break not random: %v", firsts)
	}
}

func TestWeightedFavorsLargeRMs(t *testing.T) {
	src := rng.New(3)
	firsts := map[ids.RMID]int{}
	const draws = 2000
	for i := 0; i < draws; i++ {
		order := DestWeighted.Order(candidates(), src)
		firsts[order[0]]++
	}
	// Large RMs have 128/311 ≈ 41% of the weight each.
	if firsts[1] < draws/4 || firsts[4] < draws/4 {
		t.Fatalf("weighted first-pick counts %v: large RMs under-selected", firsts)
	}
	if firsts[3] > draws/8 {
		t.Fatalf("weighted first-pick counts %v: small RM over-selected", firsts)
	}
}

func TestRandomOrderUniformFirstPick(t *testing.T) {
	src := rng.New(4)
	firsts := map[ids.RMID]int{}
	const draws = 5000
	for i := 0; i < draws; i++ {
		firsts[DestRandom.Order(candidates(), src)[0]]++
	}
	for id, n := range firsts {
		if n < draws/10 {
			t.Errorf("random order: %v picked first only %d times", id, n)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(Rep(1, 3))
	if cfg.TriggerFrac != 0.20 {
		t.Errorf("B_TH = %v, want 0.20", cfg.TriggerFrac)
	}
	if cfg.CooldownSec != 60 {
		t.Errorf("cooldown = %v, want 60", cfg.CooldownSec)
	}
	if cfg.Speed != units.Mbps(1.8) {
		t.Errorf("speed = %v, want 1.8 Mbit/s", cfg.Speed)
	}
	if cfg.BusyCoverage != 0.50 {
		t.Errorf("busy coverage = %v, want 0.50", cfg.BusyCoverage)
	}
	if cfg.BRevFactor != 2 || cfg.ReserveFactor != 2 {
		t.Errorf("B_REV factors = (%v, %v), want (2, 2)", cfg.BRevFactor, cfg.ReserveFactor)
	}
	if cfg.Dest != DestRandom {
		t.Errorf("default destination = %v, want Random", cfg.Dest)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	if cfg.ChargeTransfers {
		t.Error("transfers charged by default; B_REV is a reserve")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TriggerFrac = 0 },
		func(c *Config) { c.TriggerFrac = 1 },
		func(c *Config) { c.CooldownSec = -1 },
		func(c *Config) { c.Speed = 0 },
		func(c *Config) { c.BusyCoverage = 0 },
		func(c *Config) { c.BusyCoverage = 1.5 },
		func(c *Config) { c.BRevFactor = 0 },
		func(c *Config) { c.ReserveFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(Rep(1, 3))
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Disabled strategy skips the parameter checks.
	cfg := Config{Strategy: Static()}
	if err := cfg.Validate(); err != nil {
		t.Errorf("static config rejected: %v", err)
	}
}

func TestBRevAndSourceEligible(t *testing.T) {
	cfg := DefaultConfig(Rep(1, 3))
	if got := cfg.BRev(units.Mbps(2)); got != units.Mbps(4) {
		t.Fatalf("BRev = %v, want 4 Mbps", got)
	}
	if !cfg.SourceEligible(units.Mbps(2)) {
		t.Fatal("paper defaults must make every source eligible")
	}
	cfg.ReserveFactor = 3 // K > BRevFactor: never eligible
	if cfg.SourceEligible(units.Mbps(2)) {
		t.Fatal("K=3 with B_REV=2×bitrate should be ineligible")
	}
}

func TestBusiestCovering(t *testing.T) {
	counts := []FileCount{
		{File: 1, Count: 50},
		{File: 2, Count: 30},
		{File: 3, Count: 15},
		{File: 4, Count: 5},
		{File: 5, Count: 0},
	}
	// 50% of 100 = 50 → file 1 alone covers it.
	got := BusiestCovering(counts, 0.5)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("BusiestCovering(0.5) = %v, want [1]", got)
	}
	// 80% needs files 1+2.
	got = BusiestCovering(counts, 0.8)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("BusiestCovering(0.8) = %v, want [1 2]", got)
	}
	// Full coverage never includes zero-count files.
	got = BusiestCovering(counts, 1.0)
	if len(got) != 4 {
		t.Fatalf("BusiestCovering(1.0) = %v, want the 4 nonzero files", got)
	}
	if len(BusiestCovering(nil, 0.5)) != 0 {
		t.Fatal("empty counts should give empty set")
	}
	if len(BusiestCovering(counts, 0)) != 0 {
		t.Fatal("zero coverage should give empty set")
	}
}

func TestBusiestCoveringTieBreak(t *testing.T) {
	counts := []FileCount{{File: 9, Count: 10}, {File: 3, Count: 10}}
	got := BusiestCovering(counts, 1.0)
	if got[0] != 3 || got[1] != 9 {
		t.Fatalf("tie-break order = %v, want ascending file ids", got)
	}
}

func TestDestinationDecision(t *testing.T) {
	capacity := units.Mbps(18)
	bRev := units.Mbps(4)
	cases := []struct {
		name       string
		hasReplica bool
		remaining  units.BytesPerSec
		want       bool
	}{
		{"healthy", false, units.Mbps(10), true},
		{"has replica", true, units.Mbps(10), false},
		{"below B_REV", false, units.Mbps(3.9), false},
		{"below B_TH", false, units.Mbps(3.5), false},
		{"exactly at limits", false, units.Mbps(4), true},
	}
	for _, c := range cases {
		got := DestinationDecision(c.hasReplica, c.remaining, capacity, bRev, 0.20)
		if got != c.want {
			t.Errorf("%s: decision = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: Plan never plans past the bound by more than the one-migration
// allowance, and always plans at least one copy for enabled strategies.
func TestPlanBoundsProperty(t *testing.T) {
	f := func(nRepRaw, nMaxRaw, nCurRaw uint8) bool {
		nRep := int(nRepRaw%5) + 1
		nMax := int(nMaxRaw%10) + 1
		nCur := int(nCurRaw%10) + 1
		s := Rep(nRep, nMax)
		actual, migrate := s.Plan(nCur)
		if actual < 1 {
			return false
		}
		after := nCur + actual
		if migrate {
			after-- // source deletes its own replica
		}
		// After the operation the count may exceed the bound only via the
		// "at least once" guarantee when nCur already exceeds it.
		return after <= nMax || nCur > nMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Order returns a permutation of the candidate IDs under every
// strategy, for random candidate sets.
func TestOrderPermutationProperty(t *testing.T) {
	f := func(seed uint64, n uint8, caps []uint16) bool {
		count := int(n%8) + 1
		cands := make([]ecnp.RMInfo, count)
		for i := range cands {
			capMbps := 1.0
			if i < len(caps) {
				capMbps = float64(caps[i]%200) + 1
			}
			cands[i] = ecnp.RMInfo{ID: ids.RMID(i + 1), Capacity: units.Mbps(capMbps)}
		}
		src := rng.New(seed)
		for _, d := range []DestStrategy{DestRandom, DestLBF, DestWeighted} {
			order := d.Order(cands, src)
			if len(order) != count {
				return false
			}
			seen := map[ids.RMID]bool{}
			for _, id := range order {
				if id < 1 || int(id) > count || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
