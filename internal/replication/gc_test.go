package replication

import (
	"testing"
	"testing/quick"

	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

func TestGCConfigValidate(t *testing.T) {
	if err := (GCConfig{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	good := DefaultGCConfig()
	good.Enabled = true
	if err := good.Validate(); err != nil {
		t.Errorf("default enabled config rejected: %v", err)
	}
	bad := []GCConfig{
		{Enabled: true, HighWatermark: 0, LowWatermark: 0.5, MinReplicas: 1},
		{Enabled: true, HighWatermark: 1.5, LowWatermark: 0.5, MinReplicas: 1},
		{Enabled: true, HighWatermark: 0.8, LowWatermark: 0.9, MinReplicas: 1}, // low ≥ high
		{Enabled: true, HighWatermark: 0.8, LowWatermark: 0, MinReplicas: 1},
		{Enabled: true, HighWatermark: 0.8, LowWatermark: 0.5, MinReplicas: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid GC config accepted", i)
		}
	}
}

func TestShouldCollectHysteresis(t *testing.T) {
	cfg := GCConfig{Enabled: true, HighWatermark: 0.8, LowWatermark: 0.6, MinReplicas: 1}
	capacity := units.Size(1000)
	if cfg.ShouldCollect(790, capacity) {
		t.Error("collection triggered below high watermark")
	}
	if !cfg.ShouldCollect(810, capacity) {
		t.Error("collection not triggered above high watermark")
	}
	if got := cfg.TargetBytes(capacity); got != 600 {
		t.Errorf("target = %d, want 600", got)
	}
	disabled := cfg
	disabled.Enabled = false
	if disabled.ShouldCollect(999, capacity) {
		t.Error("disabled config collected")
	}
}

func TestSelectVictimsColdestFirst(t *testing.T) {
	victims := []Victim{
		{File: 1, Size: 100, Count: 50, Replicas: 4},
		{File: 2, Size: 100, Count: 5, Replicas: 4}, // coldest
		{File: 3, Size: 100, Count: 20, Replicas: 4},
	}
	got := SelectVictims(victims, 1000, 850, 3)
	// Need to free 150 bytes → two victims, coldest first.
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("victims = %v, want [2 3]", got)
	}
}

func TestSelectVictimsRespectsMinReplicas(t *testing.T) {
	victims := []Victim{
		{File: 1, Size: 100, Count: 0, Replicas: 3},
		{File: 2, Size: 100, Count: 0, Replicas: 4},
	}
	got := SelectVictims(victims, 1000, 800, 3)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("victims = %v, want only the file above min replicas", got)
	}
}

func TestSelectVictimsSkipsPinnedAndLastReplica(t *testing.T) {
	victims := []Victim{
		{File: 1, Size: 100, Count: 0, Replicas: 5, Pinned: true},
		{File: 2, Size: 100, Count: 0, Replicas: 1},
		{File: 3, Size: 100, Count: 9, Replicas: 5},
	}
	got := SelectVictims(victims, 1000, 900, 1)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("victims = %v, want only file 3", got)
	}
}

func TestSelectVictimsNoWorkBelowTarget(t *testing.T) {
	victims := []Victim{{File: 1, Size: 100, Count: 0, Replicas: 9}}
	if got := SelectVictims(victims, 500, 500, 1); got != nil {
		t.Fatalf("victims = %v at target, want none", got)
	}
}

func TestSelectVictimsTieBreak(t *testing.T) {
	victims := []Victim{
		{File: 5, Size: 50, Count: 3, Replicas: 9},
		{File: 4, Size: 200, Count: 3, Replicas: 9}, // same coldness, bigger first
	}
	got := SelectVictims(victims, 1000, 980, 1)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("victims = %v, want the larger file first", got)
	}
}

// Property: SelectVictims frees enough bytes when enough unpinned,
// above-minimum victims exist, and never selects a protected replica.
func TestSelectVictimsProperty(t *testing.T) {
	f := func(sizes []uint16, counts []uint16) bool {
		victims := make([]Victim, len(sizes))
		var total units.Size
		for i, s := range sizes {
			c := int64(0)
			if i < len(counts) {
				c = int64(counts[i])
			}
			victims[i] = Victim{
				File:     ids.FileID(i),
				Size:     units.Size(s) + 1,
				Count:    c,
				Replicas: 2 + i%4,
				Pinned:   i%7 == 0,
			}
			total += victims[i].Size
		}
		target := total / 2
		selected := SelectVictims(victims, total, target, 2)
		freed := units.Size(0)
		seen := map[ids.FileID]bool{}
		for _, f := range selected {
			if seen[f] {
				return false // duplicates
			}
			seen[f] = true
			v := victims[int(f)]
			if v.Pinned || v.Replicas <= 2 {
				return false // protected replica selected
			}
			freed += v.Size
		}
		// Either the target was reached, or every eligible victim was taken.
		if total-freed > target {
			for _, v := range victims {
				if !v.Pinned && v.Replicas > 2 && !seen[v.File] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
