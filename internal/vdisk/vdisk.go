// Package vdisk implements the virtual storage an RM serves files from in
// live mode: an in-memory block store whose every read and write is routed
// through a blkio throttle group, the way each Xen VM's loopback device is
// bound to a blkio.throttle group in the paper's testbed (§VI-A).
//
// File contents are synthesized deterministically from the file name, so a
// multi-gigabyte corpus costs no setup time while checksums still verify
// end-to-end transfer integrity.
package vdisk

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"dfsqos/internal/blkio"
	"dfsqos/internal/units"
)

// Disk is one RM's virtual block device.
type Disk struct {
	mu       sync.RWMutex
	capacity units.Size
	used     units.Size
	files    map[string]*file
	ctrl     *blkio.Controller
	group    *blkio.Group
}

type file struct {
	size units.Size
	// seed drives the deterministic content generator.
	seed uint64
	// data holds explicit contents when the file was written rather than
	// provisioned; nil means synthesized content.
	data []byte
	// sum memoizes the whole-file checksum (valid when sumOK). File
	// contents are immutable after creation — every write path installs a
	// fresh *file — so the cache never goes stale. It spares each data
	// stream a full re-hash of the file it just served.
	sum   uint64
	sumOK bool
}

// New creates a disk with the given capacity whose I/O is throttled by the
// named group on ctrl (created with the supplied read/write limits, like
// joining a loop-device to a blkio cgroup).
func New(capacity units.Size, ctrl *blkio.Controller, group string, readBps, writeBps units.BytesPerSec) (*Disk, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("vdisk: non-positive capacity %v", capacity)
	}
	g, err := ctrl.SetGroup(group, readBps, writeBps)
	if err != nil {
		return nil, err
	}
	return &Disk{
		capacity: capacity,
		files:    make(map[string]*file),
		ctrl:     ctrl,
		group:    g,
	}, nil
}

// Capacity returns the disk size.
func (d *Disk) Capacity() units.Size { return d.capacity }

// Controller exposes the blkio controller the disk throttles through, so a
// server can attach per-reservation groups (and a root pool) to the same
// tree the disk's default group lives in.
func (d *Disk) Controller() *blkio.Controller { return d.ctrl }

// DefaultGroup returns the group every un-routed I/O charges — the one New
// created. Reads routed to a per-reservation group via ReadAtGroup bypass
// it entirely.
func (d *Disk) DefaultGroup() *blkio.Group { return d.group }

// Used returns the bytes consumed by stored files.
func (d *Disk) Used() units.Size {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.used
}

// Provision creates a file with deterministic synthetic contents of the
// given size without performing throttled writes (the corpus exists before
// the experiment starts). It fails when the disk would overflow.
func (d *Disk) Provision(name string, size units.Size) error {
	if size < 0 {
		return fmt.Errorf("vdisk: negative size for %q", name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.files[name]; ok {
		d.used -= old.size
	}
	if d.used+size > d.capacity {
		return fmt.Errorf("vdisk: provisioning %q (%v) overflows disk (%v of %v used)",
			name, size, d.used, d.capacity)
	}
	d.files[name] = &file{size: size, seed: seedOf(name)}
	d.used += size
	return nil
}

// Write stores explicit contents under name, charging the write throttle.
func (d *Disk) Write(ctx context.Context, name string, data []byte) error {
	if err := d.ctrl.Wait(ctx, d.group, blkio.Write, len(data)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	size := units.Size(len(data))
	if old, ok := d.files[name]; ok {
		d.used -= old.size
	}
	if d.used+size > d.capacity {
		return fmt.Errorf("vdisk: writing %q (%v) overflows disk", name, size)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.files[name] = &file{size: size, data: cp}
	d.used += size
	return nil
}

// Delete removes a file, reclaiming its space.
func (d *Disk) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("vdisk: %q not found", name)
	}
	d.used -= f.size
	delete(d.files, name)
	return nil
}

// Stat returns a file's size.
func (d *Disk) Stat(name string) (units.Size, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("vdisk: %q not found", name)
	}
	return f.size, nil
}

// List returns the stored file names in sorted order.
func (d *Disk) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadAt reads len(p) bytes from the file at offset off through the read
// throttle. It returns io.EOF at or past the end of the file, matching the
// io.ReaderAt contract.
func (d *Disk) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return d.ReadAtGroup(ctx, d.group, name, p, off)
}

// ReadAtGroup is ReadAt charging the given blkio group instead of the
// disk's default: the per-reservation routing a work-conserving server
// uses so each admitted stream is paced by its own assured/ceil pair
// while idle siblings' headroom is borrowable. g must belong to the
// disk's controller.
func (d *Disk) ReadAtGroup(ctx context.Context, g *blkio.Group, name string, p []byte, off int64) (int, error) {
	d.mu.RLock()
	f, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("vdisk: %q not found", name)
	}
	if off < 0 {
		return 0, fmt.Errorf("vdisk: negative offset %d", off)
	}
	if off >= int64(f.size) {
		return 0, io.EOF
	}
	n := len(p)
	if rem := int64(f.size) - off; int64(n) > rem {
		n = int(rem)
	}
	if err := d.ctrl.Wait(ctx, g, blkio.Read, n); err != nil {
		return 0, err
	}
	if f.data != nil {
		copy(p[:n], f.data[off:off+int64(n)])
	} else {
		fillSynthetic(p[:n], f.seed, off)
	}
	var err error
	if off+int64(n) == int64(f.size) {
		err = io.EOF
	}
	return n, err
}

// Reader returns an io.Reader streaming the file through the throttle in
// chunkSize pieces.
func (d *Disk) Reader(ctx context.Context, name string, chunkSize int) (io.Reader, units.Size, error) {
	size, err := d.Stat(name)
	if err != nil {
		return nil, 0, err
	}
	if chunkSize <= 0 {
		chunkSize = 64 * 1024
	}
	return &reader{d: d, ctx: ctx, name: name, chunk: chunkSize, size: int64(size)}, size, nil
}

type reader struct {
	d     *Disk
	ctx   context.Context
	name  string
	chunk int
	off   int64
	size  int64
}

func (r *reader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	if len(p) > r.chunk {
		p = p[:r.chunk]
	}
	n, err := r.d.ReadAt(r.ctx, r.name, p, r.off)
	r.off += int64(n)
	return n, err
}

// ReadAtRaw reads without charging the throttle group. It exists for the
// replication reserve path: the paper sets B_REV aside for replication
// traffic, so replica copies are paced by their own budget (the 1.8 Mbit/s
// transfer rate) rather than the VM's QoS throttle.
func (d *Disk) ReadAtRaw(name string, p []byte, off int64) (int, error) {
	d.mu.RLock()
	f, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("vdisk: %q not found", name)
	}
	if off < 0 {
		return 0, fmt.Errorf("vdisk: negative offset %d", off)
	}
	if off >= int64(f.size) {
		return 0, io.EOF
	}
	n := len(p)
	if rem := int64(f.size) - off; int64(n) > rem {
		n = int(rem)
	}
	if f.data != nil {
		copy(p[:n], f.data[off:off+int64(n)])
	} else {
		fillSynthetic(p[:n], f.seed, off)
	}
	var err error
	if off+int64(n) == int64(f.size) {
		err = io.EOF
	}
	return n, err
}

// WriteRaw stores explicit contents without charging the write throttle,
// for replica ingestion over the B_REV reserve.
func (d *Disk) WriteRaw(name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	size := units.Size(len(data))
	if old, ok := d.files[name]; ok {
		d.used -= old.size
	}
	if d.used+size > d.capacity {
		return fmt.Errorf("vdisk: writing %q (%v) overflows disk", name, size)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.files[name] = &file{size: size, data: cp}
	d.used += size
	return nil
}

// Checksum computes a cheap rolling checksum of the whole file without
// throttling (integrity checks are not disk I/O). The result is memoized
// per file — contents are immutable once created — so repeated streams of
// the same file pay the full hash pass only once.
func (d *Disk) Checksum(name string) (uint64, error) {
	d.mu.RLock()
	f, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("vdisk: %q not found", name)
	}
	if f.sumOK {
		return f.sum, nil
	}
	var sum uint64 = 14695981039346656037
	buf := make([]byte, 64*1024)
	for off := int64(0); off < int64(f.size); off += int64(len(buf)) {
		n := int64(len(buf))
		if rem := int64(f.size) - off; n > rem {
			n = rem
		}
		if f.data != nil {
			copy(buf[:n], f.data[off:off+n])
		} else {
			fillSynthetic(buf[:n], f.seed, off)
		}
		for _, b := range buf[:n] {
			sum ^= uint64(b)
			sum *= 1099511628211
		}
	}
	// Publish the memo. Racing fills compute identical values; the entry
	// may have been replaced meanwhile, in which case the write lands on
	// the orphaned struct and the new contents recompute on demand.
	d.mu.Lock()
	if cur, ok := d.files[name]; ok && cur == f {
		cur.sum, cur.sumOK = sum, true
	}
	d.mu.Unlock()
	return sum, nil
}

// ChecksumBytes computes the same rolling checksum over a byte slice, for
// verifying transferred contents against Checksum.
func ChecksumBytes(data []byte) uint64 {
	var sum uint64 = 14695981039346656037
	for _, b := range data {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	return sum
}

// seedOf hashes a file name into a content seed.
func seedOf(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h | 1
}

// fillSynthetic writes the deterministic content bytes of a file with the
// given seed starting at offset off. Byte k of the file is byte k%8 of a
// cheap 64-bit mix of the seed and block k/8, so any slice can be
// generated independently of how the file is cut into reads — while the
// bulk of the work runs one multiply-xor mix per 8 bytes instead of per
// byte (the generator sits under every streamed chunk; byte-at-a-time it
// was a data-plane bottleneck comparable to the wire codec itself).
func fillSynthetic(p []byte, seed uint64, off int64) {
	k := uint64(off)
	i := 0
	// Ragged head up to an 8-byte block boundary.
	for i < len(p) && k%8 != 0 {
		p[i] = synthByte(k, seed)
		i++
		k++
	}
	// Full blocks: one mix per 8 output bytes.
	for len(p)-i >= 8 {
		binary.LittleEndian.PutUint64(p[i:i+8], synthWord(k/8, seed))
		i += 8
		k += 8
	}
	// Ragged tail.
	for i < len(p) {
		p[i] = synthByte(k, seed)
		i++
		k++
	}
}

// synthWord mixes (block, seed) into the 64-bit content word covering file
// bytes [8*block, 8*block+8).
func synthWord(block, seed uint64) uint64 {
	x := (block + seed) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// synthByte extracts content byte k from its block's word.
func synthByte(k, seed uint64) byte {
	return byte(synthWord(k/8, seed) >> (8 * (k % 8)))
}
