package vdisk

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/units"
)

// fastController returns a controller whose sleeps are instantaneous but
// accounted, so tests measure virtual throttle time.
func fastController() (*blkio.Controller, *time.Duration) {
	var slept time.Duration
	var mu sync.Mutex
	now := time.Unix(0, 0)
	ctrl := blkio.NewController(
		blkio.WithClock(func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}),
		blkio.WithSleep(func(d time.Duration) {
			mu.Lock()
			now = now.Add(d)
			slept += d
			mu.Unlock()
		}),
	)
	return ctrl, &slept
}

func newDisk(t *testing.T) *Disk {
	t.Helper()
	ctrl, _ := fastController()
	d, err := New(100*units.MB, ctrl, "vm1", units.MBps(2), units.MBps(2))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	ctrl, _ := fastController()
	if _, err := New(0, ctrl, "vm1", 0, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(units.MB, ctrl, "", 0, 0); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestProvisionAndStat(t *testing.T) {
	d := newDisk(t)
	if err := d.Provision("a.mp4", 10*units.MB); err != nil {
		t.Fatal(err)
	}
	size, err := d.Stat("a.mp4")
	if err != nil || size != 10*units.MB {
		t.Fatalf("Stat = (%v, %v)", size, err)
	}
	if d.Used() != 10*units.MB {
		t.Fatalf("Used = %v", d.Used())
	}
	if _, err := d.Stat("missing"); err == nil {
		t.Fatal("Stat of missing file succeeded")
	}
	if err := d.Provision("big", 200*units.MB); err == nil {
		t.Fatal("overflow provision accepted")
	}
	if err := d.Provision("neg", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestProvisionReplaceReclaimsSpace(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 60*units.MB)
	if err := d.Provision("a", 90*units.MB); err != nil {
		t.Fatalf("replacing provision failed: %v", err)
	}
	if d.Used() != 90*units.MB {
		t.Fatalf("Used = %v after replace", d.Used())
	}
}

func TestDelete(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 10*units.MB)
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatalf("Used = %v after delete", d.Used())
	}
	if err := d.Delete("a"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestList(t *testing.T) {
	d := newDisk(t)
	d.Provision("b", units.MB)
	d.Provision("a", units.MB)
	got := d.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
}

func TestReadAtDeterministicContent(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 1000)
	full := make([]byte, 1000)
	if _, err := d.ReadAt(context.Background(), "a", full, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// Rereads and arbitrary slices match the full read.
	part := make([]byte, 100)
	if _, err := d.ReadAt(context.Background(), "a", part, 450); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, full[450:550]) {
		t.Fatal("slice read differs from full read")
	}
	// Distinct files have distinct contents.
	d.Provision("b", 1000)
	other := make([]byte, 1000)
	d.ReadAt(context.Background(), "b", other, 0)
	if bytes.Equal(full, other) {
		t.Fatal("distinct files share content")
	}
}

func TestReadAtBoundaries(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 100)
	buf := make([]byte, 60)
	n, err := d.ReadAt(context.Background(), "a", buf, 80)
	if n != 20 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (20, EOF)", n, err)
	}
	if _, err := d.ReadAt(context.Background(), "a", buf, 100); err != io.EOF {
		t.Fatalf("past-end read err = %v, want EOF", err)
	}
	if _, err := d.ReadAt(context.Background(), "a", buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := d.ReadAt(context.Background(), "missing", buf, 0); err == nil {
		t.Fatal("read of missing file succeeded")
	}
}

func TestWriteStoresExplicitData(t *testing.T) {
	d := newDisk(t)
	data := []byte("hello storage qos")
	if err := d.Write(context.Background(), "w", data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(context.Background(), "w", got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
	// The stored copy is isolated from caller mutation.
	data[0] = 'X'
	d.ReadAt(context.Background(), "w", got, 0)
	if got[0] == 'X' {
		t.Fatal("disk shares the caller's buffer")
	}
}

func TestReaderStreamsWholeFile(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 300*1024)
	r, size, err := d.Reader(context.Background(), "a", 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != int64(size) {
		t.Fatalf("streamed %d bytes, want %d", len(data), size)
	}
	want, _ := d.Checksum("a")
	if got := ChecksumBytes(data); got != want {
		t.Fatalf("checksum mismatch: %x vs %x", got, want)
	}
}

func TestThrottledReadAccumulatesDelay(t *testing.T) {
	ctrl, slept := fastController()
	d, err := New(100*units.MB, ctrl, "vm1", units.MBps(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Provision("a", 10*units.MB)
	r, _, _ := d.Reader(context.Background(), "a", 256*1024)
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	// 10 MB at 1 MB/s minus the 1 MB burst ⇒ ~9 s of throttle sleep.
	if slept.Seconds() < 8 || slept.Seconds() > 10 {
		t.Fatalf("throttle slept %v, want ~9s", *slept)
	}
}

func TestChecksumStability(t *testing.T) {
	d := newDisk(t)
	d.Provision("a", 12345)
	c1, err := d.Checksum("a")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := d.Checksum("a")
	if c1 != c2 {
		t.Fatal("checksum not stable")
	}
	if _, err := d.Checksum("missing"); err == nil {
		t.Fatal("checksum of missing file succeeded")
	}
}
