// Package ids defines the identifier types shared across the storage-QoS
// system: files, resource managers (RMs), clients (DFSCs), users and
// requests. Keeping them in one leaf package lets the protocol, metadata,
// workload and metrics layers share vocabulary without import cycles.
package ids

import "fmt"

// FileID identifies a file in the catalog. IDs are dense, starting at 0,
// which lets per-file tables be plain slices.
type FileID int32

// RMID identifies a Resource Manager (storage provider). The paper numbers
// RMs 1..16; RMID follows that convention (1-based) so experiment output
// lines up with the paper's tables.
type RMID int32

// DFSCID identifies a Distributed File System Client. The paper deploys 8.
type DFSCID int32

// UserID identifies a simulated user issuing requests through a DFSC.
type UserID int32

// RequestID identifies a single file-access request, unique per run.
type RequestID int64

// ReplicationID identifies a dynamic replication transfer, unique per run.
type ReplicationID int64

// TenantID identifies the tenant (organisation, project, account) a
// client acts for. Tenant 0 is the sentinel "untenanted" identity —
// legacy clients that never learned about tenancy — which quota
// enforcement treats as uncapped and the wire layer encodes as the
// absent tenant slot. Real tenants are numbered from 1.
type TenantID int32

// None* are sentinel values meaning "absent".
const (
	NoneFile   FileID   = -1
	NoneRM     RMID     = -1
	NoneDFSC   DFSCID   = -1
	NoneTenant TenantID = 0
)

func (f FileID) String() string        { return fmt.Sprintf("file%d", int32(f)) }
func (r RMID) String() string          { return fmt.Sprintf("RM%d", int32(r)) }
func (d DFSCID) String() string        { return fmt.Sprintf("DFSC%d", int32(d)) }
func (u UserID) String() string        { return fmt.Sprintf("user%d", int32(u)) }
func (r RequestID) String() string     { return fmt.Sprintf("req%d", int64(r)) }
func (r ReplicationID) String() string { return fmt.Sprintf("rep%d", int64(r)) }
func (t TenantID) String() string      { return fmt.Sprintf("tenant%d", int32(t)) }

// Valid reports whether the id is a real file (not the sentinel).
func (f FileID) Valid() bool { return f >= 0 }

// Valid reports whether the id is a real RM (not the sentinel).
func (r RMID) Valid() bool { return r >= 0 }

// Valid reports whether the id names a real tenant (not the untenanted
// sentinel).
func (t TenantID) Valid() bool { return t > 0 }
