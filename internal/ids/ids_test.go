package ids

import "testing"

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FileID(7).String(), "file7"},
		{RMID(3).String(), "RM3"},
		{DFSCID(2).String(), "DFSC2"},
		{UserID(5).String(), "user5"},
		{RequestID(9).String(), "req9"},
		{ReplicationID(4).String(), "rep4"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestSentinels(t *testing.T) {
	if NoneFile.Valid() {
		t.Error("NoneFile claims validity")
	}
	if NoneRM.Valid() {
		t.Error("NoneRM claims validity")
	}
	if !FileID(0).Valid() || !RMID(1).Valid() {
		t.Error("real ids invalid")
	}
}
