package tenant

import (
	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/units"
)

// Metrics is the per-tenant telemetry surface, labelled by tenant so one
// scrape shows who is consuming what — the PR 2 label plumbing the
// ROADMAP promised would make per-tenant observability "nearly free".
// Build one with NewMetrics and attach it via Ledger.SetMetrics (the RM
// daemons do); a nil *Metrics is a no-op sink.
type Metrics struct {
	// ReservedBandwidth gauges each tenant's reserved bandwidth in
	// flight (dfsqos_tenant_reserved_bandwidth_bytes_per_second{tenant}).
	ReservedBandwidth *telemetry.GaugeVec
	// Streams gauges each tenant's open reservations
	// (dfsqos_tenant_streams{tenant}).
	Streams *telemetry.GaugeVec
	// StoredBytes gauges each tenant's charged replica bytes
	// (dfsqos_tenant_stored_bytes{tenant}).
	StoredBytes *telemetry.GaugeVec
	// Admissions counts quota-checked reservations granted
	// (dfsqos_tenant_admissions_total{tenant}).
	Admissions *telemetry.CounterVec
	// Rejections counts typed over-quota refusals, both dimensions
	// (dfsqos_tenant_rejections_total{tenant}).
	Rejections *telemetry.CounterVec
	// BidClamps counts CFP bids clamped down to the tenant's remaining
	// bandwidth quota (dfsqos_tenant_bid_clamps_total{tenant}).
	BidClamps *telemetry.CounterVec
	// ChargedBytes counts bytes charged against byte quotas
	// (dfsqos_tenant_charged_bytes_total{tenant}).
	ChargedBytes *telemetry.CounterVec
}

// NewMetrics registers the tenant metric families on reg (nil reg yields
// live no-op instruments, the PR 2 contract).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		ReservedBandwidth: reg.NewGaugeVec("dfsqos_tenant_reserved_bandwidth_bytes_per_second",
			"Reserved bandwidth in flight per tenant.", "tenant"),
		Streams: reg.NewGaugeVec("dfsqos_tenant_streams",
			"Open QoS reservations per tenant.", "tenant"),
		StoredBytes: reg.NewGaugeVec("dfsqos_tenant_stored_bytes",
			"Stored replica bytes charged per tenant.", "tenant"),
		Admissions: reg.NewCounterVec("dfsqos_tenant_admissions_total",
			"Quota-checked reservations granted per tenant.", "tenant"),
		Rejections: reg.NewCounterVec("dfsqos_tenant_rejections_total",
			"Over-quota refusals per tenant (bandwidth or bytes).", "tenant"),
		BidClamps: reg.NewCounterVec("dfsqos_tenant_bid_clamps_total",
			"Bids clamped to the tenant's remaining bandwidth quota.", "tenant"),
		ChargedBytes: reg.NewCounterVec("dfsqos_tenant_charged_bytes_total",
			"Bytes charged against tenant byte quotas.", "tenant"),
	}
}

// Clamped counts one bid clamped to the tenant's remaining quota.
func (m *Metrics) Clamped(t ids.TenantID) {
	if m == nil {
		return
	}
	m.BidClamps.With(t.String()).Inc()
}

func (m *Metrics) admitted(t ids.TenantID, bw units.BytesPerSec, streams int) {
	if m == nil {
		return
	}
	label := t.String()
	m.Admissions.With(label).Inc()
	m.ReservedBandwidth.With(label).Set(float64(bw))
	m.Streams.With(label).Set(float64(streams))
}

func (m *Metrics) released(t ids.TenantID, bw units.BytesPerSec, streams int) {
	if m == nil {
		return
	}
	label := t.String()
	m.ReservedBandwidth.With(label).Set(float64(bw))
	m.Streams.With(label).Set(float64(streams))
}

func (m *Metrics) rejected(t ids.TenantID) {
	if m == nil {
		return
	}
	m.Rejections.With(t.String()).Inc()
}

func (m *Metrics) bytesCharged(t ids.TenantID, n, total int64) {
	if m == nil {
		return
	}
	label := t.String()
	if n > 0 {
		m.ChargedBytes.With(label).Add(uint64(n))
	}
	m.StoredBytes.With(label).Set(float64(total))
}

func (m *Metrics) bytesReleased(t ids.TenantID, total int64) {
	if m == nil {
		return
	}
	m.StoredBytes.With(t.String()).Set(float64(total))
}
