// Package tenant is the multi-tenant quota ledger: per-tenant bandwidth
// and byte caps, fair-share weights, and the usage accounting every RM
// admission decision consults. It closes the gap the ROADMAP names —
// "any client can drain any RM" — by making tenant identity a
// first-class admission input, following dCache's quota model (per-VO
// byte quotas enforced in the storage layer) and the software-defined
// QoS framework's argument that isolation policy belongs in the control
// plane.
//
// A Ledger is RM-local: the ECNP admission decision it feeds is made
// independently by each Resource Manager, with no global coordinator, so
// a Quota expresses what one RM will grant the tenant. Cluster-wide
// ceilings are the per-RM cap × RM count in the worst case; operators
// provisioning an aggregate budget divide it by the RM count (see
// docs/TENANCY.md).
//
// Concurrency: every method is safe for concurrent use. Reservation is
// atomic check-then-commit under the ledger lock, so two admissions
// racing one remaining quota unit serialize — exactly one wins.
package tenant

import (
	"fmt"
	"sort"
	"sync"

	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// NoLimit disables one quota dimension: a Quota field set to NoLimit
// means the tenant is uncapped on that axis. Note the asymmetry with
// zero — a zero cap is a real quota that admits nothing.
const NoLimit = -1

// DefaultWeight is the fair-share weight assumed when a quota declares
// none (Weight <= 0).
const DefaultWeight = 1.0

// Quota is one tenant's entitlement on one RM: a bandwidth cap for
// concurrent QoS reservations, a byte cap for stored replica bytes, and
// a fair-share weight consumed by the bid-scoring fairness term.
type Quota struct {
	// Bandwidth caps the tenant's aggregate reserved bandwidth
	// (bytes/sec) across its concurrently open accesses on this RM.
	// NoLimit (negative) means uncapped; zero admits nothing.
	Bandwidth units.BytesPerSec
	// Bytes caps the tenant's stored bytes on this RM. NoLimit
	// (negative) means uncapped; zero admits nothing.
	Bytes int64
	// Weight is the tenant's fair-share weight: a tenant holding more
	// than Weight/ΣWeight of an RM's allocated bandwidth is penalised by
	// the selection policy's δ term. Non-positive means DefaultWeight.
	Weight float64
}

// Unlimited is the quota unregistered tenants fall back to: uncapped on
// both axes at the default weight, preserving pre-tenancy behaviour.
var Unlimited = Quota{Bandwidth: NoLimit, Bytes: NoLimit, Weight: DefaultWeight}

// weight returns the effective fair-share weight.
func (q Quota) weight() float64 {
	if q.Weight <= 0 {
		return DefaultWeight
	}
	return q.Weight
}

// OverQuotaError is the typed admission refusal: which tenant, which
// dimension, and the arithmetic that failed. RMs map it onto a counted
// rejection; clients can distinguish it from capacity exhaustion.
type OverQuotaError struct {
	// Tenant is the over-quota tenant.
	Tenant ids.TenantID
	// Dim names the exhausted dimension: "bandwidth" or "bytes".
	Dim string
	// Requested is the amount the reservation asked for, Used the
	// tenant's usage at decision time, Limit the quota cap — all in the
	// dimension's unit (bytes/sec or bytes).
	Requested, Used, Limit float64
}

// Error renders the refusal with the full arithmetic.
func (e *OverQuotaError) Error() string {
	return fmt.Sprintf("%v over %s quota: requested %g with %g/%g used",
		e.Tenant, e.Dim, e.Requested, e.Used, e.Limit)
}

// acct is one tenant's ledger row: the declared quota plus live usage.
type acct struct {
	quota     Quota
	bandwidth units.BytesPerSec // reserved bandwidth in flight
	bytes     int64             // stored bytes charged
	streams   int               // open reservations
}

// Ledger tracks per-tenant quota and usage for one RM. The zero value
// is not usable; construct with NewLedger. A nil *Ledger is a valid
// no-op: every reserve succeeds and nothing is recorded, which is how
// untenanted deployments pay nothing.
type Ledger struct {
	mu    sync.Mutex
	accts map[ids.TenantID]*acct
	met   *Metrics
}

// NewLedger returns an empty ledger; tenants not registered with Set
// fall back to Unlimited.
func NewLedger() *Ledger {
	return &Ledger{accts: make(map[ids.TenantID]*acct)}
}

// SetMetrics attaches the per-tenant telemetry sink (nil detaches).
func (l *Ledger) SetMetrics(m *Metrics) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.met = m
	l.mu.Unlock()
}

// Set declares or replaces one tenant's quota. Usage already accrued is
// kept: tightening a quota below current usage blocks new admissions
// without revoking live streams.
func (l *Ledger) Set(t ids.TenantID, q Quota) {
	if l == nil || !t.Valid() {
		return
	}
	l.mu.Lock()
	a := l.acct(t)
	a.quota = q
	l.mu.Unlock()
}

// acct returns (creating if needed) the row for t. Caller holds l.mu.
func (l *Ledger) acct(t ids.TenantID) *acct {
	a := l.accts[t]
	if a == nil {
		a = &acct{quota: Unlimited}
		l.accts[t] = a
	}
	return a
}

// Quota returns the tenant's declared quota (Unlimited when never Set).
func (l *Ledger) Quota(t ids.TenantID) Quota {
	if l == nil || !t.Valid() {
		return Unlimited
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if a := l.accts[t]; a != nil {
		return a.quota
	}
	return Unlimited
}

// ReserveBandwidth atomically charges rate against the tenant's
// bandwidth quota, refusing with *OverQuotaError when the reservation
// would exceed the cap. Untenanted requests (invalid t) and nil ledgers
// always succeed. Exact fits are admitted: a tenant with exactly rate
// remaining gets it.
func (l *Ledger) ReserveBandwidth(t ids.TenantID, rate units.BytesPerSec) error {
	if l == nil || !t.Valid() {
		return nil
	}
	l.mu.Lock()
	a := l.acct(t)
	if lim := a.quota.Bandwidth; lim >= 0 && a.bandwidth+rate > lim {
		err := &OverQuotaError{Tenant: t, Dim: "bandwidth",
			Requested: float64(rate), Used: float64(a.bandwidth), Limit: float64(lim)}
		met := l.met
		l.mu.Unlock()
		met.rejected(t)
		return err
	}
	a.bandwidth += rate
	a.streams++
	bw, streams := a.bandwidth, a.streams
	met := l.met
	l.mu.Unlock()
	met.admitted(t, bw, streams)
	return nil
}

// ReleaseBandwidth returns a reservation's rate to the tenant's budget —
// the Close-path and lease-sweeper counterpart of ReserveBandwidth.
func (l *Ledger) ReleaseBandwidth(t ids.TenantID, rate units.BytesPerSec) {
	if l == nil || !t.Valid() {
		return
	}
	l.mu.Lock()
	a := l.acct(t)
	a.bandwidth -= rate
	if a.bandwidth < 0 {
		a.bandwidth = 0
	}
	if a.streams > 0 {
		a.streams--
	}
	bw, streams := a.bandwidth, a.streams
	met := l.met
	l.mu.Unlock()
	met.released(t, bw, streams)
}

// ChargeBytes atomically charges n stored bytes against the tenant's
// byte quota, refusing with *OverQuotaError when it would exceed the
// cap.
func (l *Ledger) ChargeBytes(t ids.TenantID, n int64) error {
	if l == nil || !t.Valid() {
		return nil
	}
	l.mu.Lock()
	a := l.acct(t)
	if lim := a.quota.Bytes; lim >= 0 && a.bytes+n > lim {
		err := &OverQuotaError{Tenant: t, Dim: "bytes",
			Requested: float64(n), Used: float64(a.bytes), Limit: float64(lim)}
		met := l.met
		l.mu.Unlock()
		met.rejected(t)
		return err
	}
	a.bytes += n
	total := a.bytes
	met := l.met
	l.mu.Unlock()
	met.bytesCharged(t, n, total)
	return nil
}

// ReleaseBytes returns n stored bytes to the tenant's byte budget
// (replica deleted or a refused store rolled back).
func (l *Ledger) ReleaseBytes(t ids.TenantID, n int64) {
	if l == nil || !t.Valid() {
		return
	}
	l.mu.Lock()
	a := l.acct(t)
	a.bytes -= n
	if a.bytes < 0 {
		a.bytes = 0
	}
	total := a.bytes
	met := l.met
	l.mu.Unlock()
	met.bytesReleased(t, total)
}

// RemainingBandwidth reports how much more bandwidth the tenant may
// reserve. The second result is false when the tenant is uncapped (the
// first is then meaningless).
func (l *Ledger) RemainingBandwidth(t ids.TenantID) (units.BytesPerSec, bool) {
	if l == nil || !t.Valid() {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accts[t]
	if a == nil || a.quota.Bandwidth < 0 {
		return 0, false
	}
	rem := a.quota.Bandwidth - a.bandwidth
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// Share returns the tenant's weight-normalised occupation of an RM with
// the given capacity: (reserved bandwidth / capacity) / weight. The
// selection policy's δ term multiplies this by the requested bitrate, so
// a tenant already holding more than its weighted share of the RM bids
// worse against itself than against its neighbours. Zero for unknown
// tenants, nil ledgers, or non-positive capacity.
func (l *Ledger) Share(t ids.TenantID, capacity units.BytesPerSec) float64 {
	if l == nil || !t.Valid() || capacity <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accts[t]
	if a == nil || a.bandwidth <= 0 {
		return 0
	}
	return (float64(a.bandwidth) / float64(capacity)) / a.quota.weight()
}

// Clamped records that a CFP bid was clamped down to the tenant's
// remaining bandwidth quota (telemetry only; no ledger state changes).
func (l *Ledger) Clamped(t ids.TenantID) {
	if l == nil || !t.Valid() {
		return
	}
	l.mu.Lock()
	met := l.met
	l.mu.Unlock()
	met.Clamped(t)
}

// Usage is one tenant's ledger snapshot.
type Usage struct {
	// Tenant identifies the row.
	Tenant ids.TenantID
	// Quota is the declared entitlement.
	Quota Quota
	// Bandwidth is the reserved bandwidth in flight, Bytes the stored
	// bytes charged, Streams the open reservations.
	Bandwidth units.BytesPerSec
	Bytes     int64
	Streams   int
}

// Snapshot returns every known tenant's usage, sorted by tenant ID —
// the monitor page and tests consume this.
func (l *Ledger) Snapshot() []Usage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Usage, 0, len(l.accts))
	for t, a := range l.accts {
		out = append(out, Usage{Tenant: t, Quota: a.quota,
			Bandwidth: a.bandwidth, Bytes: a.bytes, Streams: a.streams})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
