package tenant

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/units"
)

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	if err := l.ReserveBandwidth(1, 100); err != nil {
		t.Fatalf("nil ledger reserve: %v", err)
	}
	l.ReleaseBandwidth(1, 100)
	if err := l.ChargeBytes(1, 100); err != nil {
		t.Fatalf("nil ledger charge: %v", err)
	}
	l.ReleaseBytes(1, 100)
	if got := l.Share(1, 100); got != 0 {
		t.Fatalf("nil ledger share = %v", got)
	}
	if _, capped := l.RemainingBandwidth(1); capped {
		t.Fatal("nil ledger reports a cap")
	}
	if l.Snapshot() != nil {
		t.Fatal("nil ledger snapshot not nil")
	}
	l.Set(1, Quota{})
	l.SetMetrics(nil)
}

func TestUntenantedAlwaysAdmitted(t *testing.T) {
	l := NewLedger()
	// Tenant 0 is the untenanted sentinel: quota machinery ignores it.
	if err := l.ReserveBandwidth(ids.NoneTenant, 1e12); err != nil {
		t.Fatalf("untenanted reserve refused: %v", err)
	}
	if err := l.ChargeBytes(ids.NoneTenant, 1<<50); err != nil {
		t.Fatalf("untenanted charge refused: %v", err)
	}
	if len(l.Snapshot()) != 0 {
		t.Fatal("untenanted traffic grew a ledger row")
	}
}

func TestUnregisteredTenantIsUnlimited(t *testing.T) {
	l := NewLedger()
	if err := l.ReserveBandwidth(7, 1e12); err != nil {
		t.Fatalf("unregistered tenant refused: %v", err)
	}
	if q := l.Quota(7); q != Unlimited {
		t.Fatalf("unregistered quota = %+v, want Unlimited", q)
	}
}

func TestZeroQuotaTenantDeniedEverything(t *testing.T) {
	l := NewLedger()
	l.Set(3, Quota{Bandwidth: 0, Bytes: 0})
	err := l.ReserveBandwidth(3, 1)
	var oq *OverQuotaError
	if !errors.As(err, &oq) || oq.Dim != "bandwidth" || oq.Tenant != 3 {
		t.Fatalf("zero-bandwidth reserve: %v", err)
	}
	err = l.ChargeBytes(3, 1)
	if !errors.As(err, &oq) || oq.Dim != "bytes" {
		t.Fatalf("zero-bytes charge: %v", err)
	}
	// A zero-rate reservation still fits a zero quota: 0+0 <= 0.
	if err := l.ReserveBandwidth(3, 0); err != nil {
		t.Fatalf("zero-rate reserve against zero quota: %v", err)
	}
}

func TestQuotaExactlyMet(t *testing.T) {
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: 100, Bytes: 1000})
	// Exact fit admits.
	if err := l.ReserveBandwidth(1, 100); err != nil {
		t.Fatalf("exact-fit reserve refused: %v", err)
	}
	// One more unit over the now-exhausted quota refuses with the full
	// arithmetic in the typed error.
	err := l.ReserveBandwidth(1, 1)
	var oq *OverQuotaError
	if !errors.As(err, &oq) {
		t.Fatalf("over-quota reserve: %v", err)
	}
	if oq.Requested != 1 || oq.Used != 100 || oq.Limit != 100 {
		t.Fatalf("error arithmetic = %+v", oq)
	}
	if oq.Error() == "" {
		t.Fatal("empty error rendering")
	}
	if err := l.ChargeBytes(1, 1000); err != nil {
		t.Fatalf("exact-fit charge refused: %v", err)
	}
	if err := l.ChargeBytes(1, 1); err == nil {
		t.Fatal("over-quota charge admitted")
	}
	// Release frees the unit again.
	l.ReleaseBandwidth(1, 100)
	if err := l.ReserveBandwidth(1, 100); err != nil {
		t.Fatalf("reserve after release refused: %v", err)
	}
	l.ReleaseBytes(1, 1000)
	if err := l.ChargeBytes(1, 1000); err != nil {
		t.Fatalf("charge after release refused: %v", err)
	}
}

// TestConcurrentReserveLastUnit races many admissions at a quota with
// exactly one remaining unit: the check-then-commit must serialize so
// exactly one wins.
func TestConcurrentReserveLastUnit(t *testing.T) {
	const racers = 64
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: 1, Bytes: NoLimit})
	var won atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if l.ReserveBandwidth(1, 1) == nil {
				won.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := won.Load(); got != 1 {
		t.Fatalf("%d racers won the last quota unit, want exactly 1", got)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: 10, Bytes: 10})
	l.ReleaseBandwidth(1, 100) // double release must not mint budget
	l.ReleaseBytes(1, 100)
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].Bandwidth != 0 || snap[0].Bytes != 0 || snap[0].Streams != 0 {
		t.Fatalf("snapshot after over-release: %+v", snap)
	}
}

func TestShareIsWeightNormalised(t *testing.T) {
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: NoLimit, Bytes: NoLimit, Weight: 2})
	l.Set(2, Unlimited) // weight 1
	if err := l.ReserveBandwidth(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveBandwidth(2, 50); err != nil {
		t.Fatal(err)
	}
	// Both hold 50 of 100, but tenant 1's double weight halves its share.
	if got := l.Share(1, 100); got != 0.25 {
		t.Fatalf("weighted share = %v, want 0.25", got)
	}
	if got := l.Share(2, 100); got != 0.5 {
		t.Fatalf("unit-weight share = %v, want 0.5", got)
	}
	if got := l.Share(3, 100); got != 0 {
		t.Fatalf("unknown-tenant share = %v, want 0", got)
	}
	if got := l.Share(1, 0); got != 0 {
		t.Fatalf("zero-capacity share = %v, want 0", got)
	}
}

func TestRemainingBandwidth(t *testing.T) {
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: 100, Bytes: NoLimit})
	if rem, capped := l.RemainingBandwidth(1); !capped || rem != 100 {
		t.Fatalf("fresh remaining = %v,%v", rem, capped)
	}
	if err := l.ReserveBandwidth(1, 60); err != nil {
		t.Fatal(err)
	}
	if rem, capped := l.RemainingBandwidth(1); !capped || rem != 40 {
		t.Fatalf("partial remaining = %v,%v", rem, capped)
	}
	if _, capped := l.RemainingBandwidth(2); capped {
		t.Fatal("uncapped tenant reports a cap")
	}
}

func TestTighteningBelowUsageKeepsStreams(t *testing.T) {
	l := NewLedger()
	l.Set(1, Quota{Bandwidth: 100, Bytes: NoLimit})
	if err := l.ReserveBandwidth(1, 80); err != nil {
		t.Fatal(err)
	}
	l.Set(1, Quota{Bandwidth: 50, Bytes: NoLimit})
	// Existing usage survives; new admissions refuse.
	if err := l.ReserveBandwidth(1, 1); err == nil {
		t.Fatal("admission above tightened quota")
	}
	snap := l.Snapshot()
	if snap[0].Bandwidth != 80 || snap[0].Streams != 1 {
		t.Fatalf("tightening revoked usage: %+v", snap[0])
	}
	if rem, capped := l.RemainingBandwidth(1); !capped || rem != 0 {
		t.Fatalf("remaining under tightened quota = %v,%v", rem, capped)
	}
}

func TestMetricsFlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	l := NewLedger()
	l.SetMetrics(m)
	l.Set(1, Quota{Bandwidth: 100, Bytes: 100})
	if err := l.ReserveBandwidth(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveBandwidth(1, 1); err == nil {
		t.Fatal("expected over-quota")
	}
	if err := l.ChargeBytes(1, 60); err != nil {
		t.Fatal(err)
	}
	l.ReleaseBytes(1, 10)
	l.ReleaseBandwidth(1, 100)
	m.Clamped(1)
	label := ids.TenantID(1).String()
	if got := m.Admissions.With(label).Value(); got != 1 {
		t.Fatalf("admissions = %d", got)
	}
	if got := m.Rejections.With(label).Value(); got != 1 {
		t.Fatalf("rejections = %d", got)
	}
	if got := m.BidClamps.With(label).Value(); got != 1 {
		t.Fatalf("clamps = %d", got)
	}
	if got := m.ChargedBytes.With(label).Value(); got != 60 {
		t.Fatalf("charged bytes = %d", got)
	}
	if got := m.StoredBytes.With(label).Value(); got != 50 {
		t.Fatalf("stored bytes gauge = %v", got)
	}
	if got := m.ReservedBandwidth.With(label).Value(); got != 0 {
		t.Fatalf("reserved bandwidth gauge = %v", got)
	}
	// Nil metrics receivers are safe no-ops.
	var nilm *Metrics
	nilm.Clamped(1)
	nilm.admitted(1, 0, 0)
	nilm.released(1, 0, 0)
	nilm.rejected(1)
	nilm.bytesCharged(1, 1, 1)
	nilm.bytesReleased(1, 0)
}

func TestParseQuotas(t *testing.T) {
	got, err := ParseQuotas(" 1=4Mbps:1GB:2, 2=2Mbps, 3=::0.5, 4=0:0 ")
	if err != nil {
		t.Fatal(err)
	}
	want := map[ids.TenantID]Quota{
		1: {Bandwidth: units.Mbps(4), Bytes: 1e9, Weight: 2},
		2: {Bandwidth: units.Mbps(2), Bytes: NoLimit, Weight: DefaultWeight},
		3: {Bandwidth: NoLimit, Bytes: NoLimit, Weight: 0.5},
		4: {Bandwidth: 0, Bytes: 0, Weight: DefaultWeight},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(want))
	}
	for id, q := range want {
		if got[id] != q {
			t.Errorf("tenant %v = %+v, want %+v", id, got[id], q)
		}
	}

	if got, err := ParseQuotas("  "); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
	for _, bad := range []string{
		"1",               // no '='
		"x=1Mbps",         // non-numeric tenant
		"0=1Mbps",         // tenant 0 is the sentinel
		"-2=1Mbps",        // negative tenant
		"1=zz",            // bad rate
		"1=1Mbps:zz",      // bad size
		"1=1Mbps:1GB:x",   // bad weight
		"1=1Mbps:1GB:0",   // weight must be positive
		"1=1Mbps,1=2Mbps", // duplicate
	} {
		if _, err := ParseQuotas(bad); err == nil {
			t.Errorf("ParseQuotas(%q) accepted", bad)
		}
	}
}

func TestQuotaWeightDefault(t *testing.T) {
	if (Quota{}).weight() != DefaultWeight {
		t.Fatal("zero quota weight not defaulted")
	}
	if (Quota{Weight: 3}).weight() != 3 {
		t.Fatal("explicit weight not honoured")
	}
}
