package tenant

import (
	"fmt"
	"strconv"
	"strings"

	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// ParseQuotas parses the rmd -tenant-quotas flag grammar: a
// comma-separated list of per-tenant entries
//
//	<tenant>=<bandwidth>:<bytes>:<weight>
//
// where <tenant> is the positive numeric tenant ID, <bandwidth> is a
// units.ParseRate rate ("4Mbps", "500kb/s", bare bytes/sec), <bytes> is
// a units.ParseSize size ("1GB", bare bytes) and <weight> is a float.
// Trailing parts may be omitted and any part may be empty; an absent
// bandwidth or byte cap means NoLimit (uncapped), an absent weight means
// DefaultWeight. A literal "0" is a real zero-allowance cap, not
// "unset". Examples:
//
//	1=4Mbps:1GB:2        tenant 1: 4 Mbps, 1 GB, double weight
//	2=2Mbps              tenant 2: 2 Mbps, unlimited bytes, weight 1
//	3=::0.5              tenant 3: uncapped, half weight
//	4=0                  tenant 4: zero bandwidth allowance (denied)
func ParseQuotas(spec string) (map[ids.TenantID]Quota, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[ids.TenantID]Quota)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("tenant: quota entry %q: want <tenant>=<bw>:<bytes>:<weight>", entry)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 32)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("tenant: quota entry %q: bad tenant id %q", entry, id)
		}
		t := ids.TenantID(n)
		if _, dup := out[t]; dup {
			return nil, fmt.Errorf("tenant: quota entry %q: duplicate tenant %v", entry, t)
		}
		q := Unlimited
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) > 0 && strings.TrimSpace(parts[0]) != "" {
			bw, err := units.ParseRate(parts[0])
			if err != nil {
				return nil, fmt.Errorf("tenant: quota entry %q: %w", entry, err)
			}
			if bw < 0 {
				return nil, fmt.Errorf("tenant: quota entry %q: negative bandwidth", entry)
			}
			q.Bandwidth = bw
		}
		if len(parts) > 1 && strings.TrimSpace(parts[1]) != "" {
			sz, err := units.ParseSize(parts[1])
			if err != nil {
				return nil, fmt.Errorf("tenant: quota entry %q: %w", entry, err)
			}
			if sz < 0 {
				return nil, fmt.Errorf("tenant: quota entry %q: negative byte cap", entry)
			}
			q.Bytes = sz.Bytes()
		}
		if len(parts) > 2 && strings.TrimSpace(parts[2]) != "" {
			w, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("tenant: quota entry %q: bad weight %q", entry, parts[2])
			}
			q.Weight = w
		}
		out[t] = q
	}
	return out, nil
}
