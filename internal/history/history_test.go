package history

import (
	"math"
	"testing"
	"testing/quick"

	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

func mustTQ(t *testing.T, maxSamples int, expirySec float64) *TwoQueue {
	t.Helper()
	tq, err := New(Config{MaxSamples: maxSamples, ExpirySec: expirySec})
	if err != nil {
		t.Fatal(err)
	}
	return tq
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxSamples: 0, ExpirySec: 10}); err == nil {
		t.Error("MaxSamples=0 accepted")
	}
	if _, err := New(Config{MaxSamples: 5, ExpirySec: 0}); err == nil {
		t.Error("ExpirySec=0 accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestNoReferenceNoTrend(t *testing.T) {
	tq := mustTQ(t, 4, 100)
	if tq.HasReference() {
		t.Fatal("fresh recorder claims a reference")
	}
	if got := tq.Trend(10, units.Mbps(5)); got != 0 {
		t.Fatalf("trend without history = %v, want 0", got)
	}
	tq.Record(0, 1000)
	tq.Record(1, 1000)
	if tq.HasReference() {
		t.Fatal("reference appeared before a swap")
	}
}

func TestCountTriggeredSwap(t *testing.T) {
	tq := mustTQ(t, 3, 1e9)
	tq.Record(0, 100)
	tq.Record(10, 200)
	if tq.Swaps() != 0 {
		t.Fatal("premature swap")
	}
	tq.Record(20, 300) // third sample triggers the swap
	if tq.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", tq.Swaps())
	}
	start, end, fs, ok := tq.ReferenceWindow()
	if !ok {
		t.Fatal("no reference after swap")
	}
	if start != 0 || end != 20 || fs != 600 {
		t.Fatalf("reference window = (%v, %v, %v), want (0, 20, 600)", start, end, fs)
	}
	if tq.RecordingCount() != 0 {
		t.Fatalf("recording queue not cleared: %d", tq.RecordingCount())
	}
}

func TestExpiryTriggeredSwap(t *testing.T) {
	tq := mustTQ(t, 100, 50)
	tq.Record(0, 100)
	tq.Record(10, 100)
	// Next arrival is 60 s after the window start > 50 s expiry: the old
	// window swaps out first, then the arrival starts a fresh window.
	tq.Record(60, 999)
	if tq.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", tq.Swaps())
	}
	_, end, fs, _ := tq.ReferenceWindow()
	if end != 10 || fs != 200 {
		t.Fatalf("reference (end=%v, fs=%v), want (10, 200)", end, fs)
	}
	if tq.RecordingCount() != 1 {
		t.Fatalf("recording count %d, want 1 (the new arrival)", tq.RecordingCount())
	}
}

func TestTrendValue(t *testing.T) {
	tq := mustTQ(t, 2, 1e9)
	// Window [0, 100] with 1000 bytes → hist avg 10 B/s.
	tq.Record(0, 400)
	tq.Record(100, 600)
	// Request at t=150: T_dist = 50, T_thr = 100 → scale = min(1, 2) = 1.
	// B_used = 30 → raw = (30-10)/2 = 10.
	got := tq.Trend(150, 30)
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("trend = %v, want 10", got)
	}
	// Request at t=300: T_dist = 200 → scale = 100/200 = 0.5 → 5.
	got = tq.Trend(300, 30)
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("stale trend = %v, want 5", got)
	}
}

func TestTrendNegative(t *testing.T) {
	tq := mustTQ(t, 2, 1e9)
	tq.Record(0, 5000)
	tq.Record(100, 5000) // hist avg = 100 B/s
	// Current usage 20 B/s < 100 → negative trend (usage falling).
	got := tq.Trend(110, 20)
	if got >= 0 {
		t.Fatalf("trend = %v, want negative when usage below history", got)
	}
	if math.Abs(got-(-40)) > 1e-12 {
		t.Fatalf("trend = %v, want -40", got)
	}
}

func TestTrendScaleNeverExceedsOne(t *testing.T) {
	tq := mustTQ(t, 2, 1e9)
	tq.Record(0, 100)
	tq.Record(10, 100)
	// Immediately after the swap (T_distance = 0) the scale clamps to 1.
	raw := tq.Trend(10, 50)
	later := tq.Trend(11, 50)
	if math.Abs(raw) < math.Abs(later)-1e-12 {
		t.Fatalf("scale grew beyond 1: |%v| < |%v|", raw, later)
	}
}

func TestSingleSampleWindowGivesZeroTrend(t *testing.T) {
	tq := mustTQ(t, 1, 1e9)
	tq.Record(5, 100) // swaps immediately with zero-width window
	if tq.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", tq.Swaps())
	}
	if got := tq.Trend(10, 50); got != 0 {
		t.Fatalf("zero-width window trend = %v, want 0", got)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	mustTQ(t, 4, 10).Record(0, -1)
}

func TestMultipleSwapsKeepLatestReference(t *testing.T) {
	tq := mustTQ(t, 2, 1e9)
	tq.Record(0, 100)
	tq.Record(10, 100) // swap 1: window [0,10] fs=200
	tq.Record(20, 500)
	tq.Record(30, 500) // swap 2: window [20,30] fs=1000
	start, end, fs, _ := tq.ReferenceWindow()
	if start != 20 || end != 30 || fs != 1000 {
		t.Fatalf("reference = (%v,%v,%v), want latest window (20,30,1000)", start, end, fs)
	}
	if tq.Swaps() != 2 {
		t.Fatalf("swaps = %d, want 2", tq.Swaps())
	}
}

// Property: the trend magnitude is bounded by |B_used − histAvg| / 2 for any
// recording pattern (the min(1, ·) clamp guarantees it).
func TestTrendBoundProperty(t *testing.T) {
	f := func(sizes []uint16, bUsedRaw uint16) bool {
		tq := MustNew(Config{MaxSamples: 4, ExpirySec: 100})
		now := simtime.Time(0)
		for _, s := range sizes {
			tq.Record(now, units.Size(s))
			now = now.Add(simtime.Duration(1 + float64(s%7)))
		}
		if !tq.HasReference() {
			return tq.Trend(now, units.BytesPerSec(bUsedRaw)) == 0
		}
		start, end, fs, _ := tq.ReferenceWindow()
		tThr := end.Sub(start).Seconds()
		if tThr <= 0 {
			return tq.Trend(now, units.BytesPerSec(bUsedRaw)) == 0
		}
		histAvg := fs / tThr
		bound := math.Abs(float64(bUsedRaw)-histAvg)/2 + 1e-9
		got := tq.Trend(now.Add(simtime.Duration(float64(bUsedRaw%50))), units.BytesPerSec(bUsedRaw))
		return math.Abs(got) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a swap happens no later than MaxSamples records.
func TestSwapCadenceProperty(t *testing.T) {
	f := func(n uint8) bool {
		max := int(n%16) + 1
		tq := MustNew(Config{MaxSamples: max, ExpirySec: 1e9})
		for i := 0; i < max; i++ {
			if tq.Swaps() != 0 {
				return false
			}
			tq.Record(simtime.Time(i), 10)
		}
		return tq.Swaps() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
