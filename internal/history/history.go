// Package history implements the paper's two-queue historical trend
// predictor (§IV). An RM records every request arrival into the current
// recording queue; when the queue reaches a fixed sample count or exceeds an
// expiry age — whichever happens first — the queues swap roles, and the
// previously-recording queue becomes the historical reference used to
// predict the bandwidth-utilization trend:
//
//	Trend = ((B_used − FS_total/T_threshold) / 2) · min(1, T_threshold/T_distance)
//
// where T_threshold = T_end − T_start of the reference queue, FS_total is
// the cumulative size of files accessed during that window, B_used is the
// bandwidth in use when the current request arrives, and
// T_distance = T_current − T_end measures how stale the reference is.
package history

import (
	"fmt"

	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// queue accumulates one recording window.
type queue struct {
	start   simtime.Time
	end     simtime.Time
	count   int
	fsTotal float64 // cumulative bytes of accessed files
	active  bool    // has received at least one sample
}

// TwoQueue is the two-queue trend recorder. Not safe for concurrent use.
type TwoQueue struct {
	maxSamples int
	expiry     simtime.Duration

	recording queue
	reference queue
	hasRef    bool
	swaps     int
}

// Config holds the recorder's swap thresholds.
type Config struct {
	// MaxSamples triggers a swap once the recording queue holds this many
	// request arrivals.
	MaxSamples int
	// ExpirySec triggers a swap once the recording queue is older than
	// this many seconds, even if MaxSamples was not reached.
	ExpirySec float64
}

// DefaultConfig mirrors the granularity used in the evaluation: swap every
// 32 requests or 120 s, whichever comes first.
func DefaultConfig() Config { return Config{MaxSamples: 32, ExpirySec: 120} }

// New returns a recorder. maxSamples and expiry must be positive.
func New(cfg Config) (*TwoQueue, error) {
	if cfg.MaxSamples <= 0 {
		return nil, fmt.Errorf("history: MaxSamples must be positive, got %d", cfg.MaxSamples)
	}
	if cfg.ExpirySec <= 0 {
		return nil, fmt.Errorf("history: ExpirySec must be positive, got %v", cfg.ExpirySec)
	}
	return &TwoQueue{maxSamples: cfg.MaxSamples, expiry: simtime.Duration(cfg.ExpirySec)}, nil
}

// MustNew is New for known-good configs; it panics on error.
func MustNew(cfg Config) *TwoQueue {
	tq, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return tq
}

// Record notes a request arrival at now for a file of the given size.
func (t *TwoQueue) Record(now simtime.Time, size units.Size) {
	if size < 0 {
		panic("history: negative file size")
	}
	// Expiry swap happens before recording so the stale window is not
	// polluted by an arrival far in the future.
	if t.recording.active && now.Sub(t.recording.start) > t.expiry {
		t.swap(t.recording.end)
	}
	if !t.recording.active {
		t.recording.active = true
		t.recording.start = now
	}
	t.recording.count++
	t.recording.fsTotal += float64(size)
	t.recording.end = now
	if t.recording.count >= t.maxSamples {
		t.swap(now)
	}
}

// swap promotes the recording queue to reference and clears the recorder.
func (t *TwoQueue) swap(end simtime.Time) {
	t.recording.end = end
	t.reference = t.recording
	t.hasRef = true
	t.recording = queue{}
	t.swaps++
}

// Swaps returns how many queue exchanges have occurred (diagnostic).
func (t *TwoQueue) Swaps() int { return t.swaps }

// HasReference reports whether a historical window is available.
func (t *TwoQueue) HasReference() bool { return t.hasRef }

// Trend evaluates the paper's prediction term for a request arriving at now
// while bUsed bandwidth is allocated. With no usable reference window the
// trend is 0 (no history ⇒ no bias). A positive value indicates usage
// trending above the historical average.
func (t *TwoQueue) Trend(now simtime.Time, bUsed units.BytesPerSec) float64 {
	if !t.hasRef {
		return 0
	}
	tThreshold := t.reference.end.Sub(t.reference.start).Seconds()
	if tThreshold <= 0 {
		// A single-sample window has zero width; its average bandwidth is
		// undefined, so it offers no trend information.
		return 0
	}
	histAvg := t.reference.fsTotal / tThreshold
	raw := (float64(bUsed) - histAvg) / 2

	tDistance := now.Sub(t.reference.end).Seconds()
	scale := 1.0
	if tDistance > 0 {
		if r := tThreshold / tDistance; r < 1 {
			scale = r
		}
	}
	return raw * scale
}

// ReferenceWindow exposes the current reference window for tests and
// metrics: its start, end and cumulative bytes. ok is false when no
// reference exists yet.
func (t *TwoQueue) ReferenceWindow() (start, end simtime.Time, fsTotal float64, ok bool) {
	if !t.hasRef {
		return 0, 0, 0, false
	}
	return t.reference.start, t.reference.end, t.reference.fsTotal, true
}

// RecordingCount returns how many samples sit in the recording queue.
func (t *TwoQueue) RecordingCount() int { return t.recording.count }
