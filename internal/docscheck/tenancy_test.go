package docscheck

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dfsqos/internal/telemetry"
	"dfsqos/internal/tenant"
)

// TestTenancyDocCoversTenantSurface keeps docs/TENANCY.md — the operator
// tenancy guide — in lock-step with the multi-tenant surface: every
// dfsqos_tenant_* series the ledger can register, both tenancy flags, and
// the noisy-neighbor gate entry points must appear in the guide. Like the
// OPERATIONS.md checks, it fails with the exact missing name.
func TestTenancyDocCoversTenantSurface(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "TENANCY.md"))
	if err != nil {
		t.Fatalf("docs/TENANCY.md: %v", err)
	}
	doc := string(raw)

	reg := telemetry.NewRegistry()
	tenant.NewMetrics(reg)
	names := reg.Names()
	if len(names) < 7 {
		t.Fatalf("tenant metric enumeration looks broken: only %d series", len(names))
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("tenant metric %s is missing from docs/TENANCY.md", name)
		}
	}

	// The guide must name the operator entry points: the client identity
	// flag, the RM quota flag, the fairness policy form, and the scenario
	// gate that proves isolation end to end.
	for _, needle := range []string{
		"`-tenant`",
		"`-tenant-quotas`",
		"noisy-neighbor",
		"make scenarios-tenant",
		"BENCH_10.json",
	} {
		if !strings.Contains(doc, needle) {
			t.Errorf("docs/TENANCY.md does not mention %s", needle)
		}
	}
}
