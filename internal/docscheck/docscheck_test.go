// Package docscheck cross-checks the operator docs against the code: every
// flag registered by the three daemons and every dfsqos_* telemetry series
// registered anywhere in the tree must appear in docs/OPERATIONS.md, and the
// multi-tenant surface (quota flags, per-tenant metrics, the noisy-neighbor
// gate) must appear in docs/TENANCY.md. The tests fail with the exact
// missing name, so adding a flag or a metric without documenting it breaks
// CI.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dfsqos/internal/blkio"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/faults"
	"dfsqos/internal/live"
	"dfsqos/internal/mm"
	"dfsqos/internal/rm"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/tenant"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

func readOperationsDoc(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v", err)
	}
	return string(raw)
}

// TestOperationsDocCoversAllMetrics registers every metric family the tree
// knows how to construct onto one registry and demands each resulting
// dfsqos_* series name appears (backticked) in the runbook's catalog.
func TestOperationsDocCoversAllMetrics(t *testing.T) {
	doc := readOperationsDoc(t)

	reg := telemetry.NewRegistry()
	wire.RegisterCodecMetrics(reg)
	defer wire.RegisterCodecMetrics(nil)
	transport.NewMetrics(reg)
	live.NewServerMetrics(reg, "mm")
	live.NewCopierMetrics(reg)
	live.NewShardMapperMetrics(reg)
	mm.NewMetrics(reg)
	rm.NewMetrics(reg)
	blkio.NewMetrics(reg)
	tenant.NewMetrics(reg)
	dfsc.NewMetrics(reg)
	faults.NewMetrics(reg)
	trace.New(trace.Options{Actor: "docscheck", Registry: reg})

	names := reg.Names()
	if len(names) < 40 {
		t.Fatalf("registry enumeration looks broken: only %d series", len(names))
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %s is registered but missing from docs/OPERATIONS.md", name)
		}
	}
}

// TestOperationsDocCoversAllFlags parses the three daemon mains plus the
// shared transport flag block and demands every registered flag name appears
// (backticked, with its dash) in the runbook's flag tables.
func TestOperationsDocCoversAllFlags(t *testing.T) {
	doc := readOperationsDoc(t)

	files := []string{
		filepath.Join("..", "..", "cmd", "mmd", "main.go"),
		filepath.Join("..", "..", "cmd", "rmd", "main.go"),
		filepath.Join("..", "..", "cmd", "dfsc", "main.go"),
		filepath.Join("..", "..", "cmd", "dfsqos-scenario", "main.go"),
		filepath.Join("..", "..", "internal", "transport", "client.go"),
	}
	flags := map[string][]string{} // flag name -> files registering it
	for _, path := range files {
		for _, name := range flagNames(t, path) {
			flags[name] = append(flags[name], filepath.Base(filepath.Dir(path))+"/"+filepath.Base(path))
		}
	}
	if len(flags) < 20 {
		t.Fatalf("flag extraction looks broken: only %d distinct flags found", len(flags))
	}
	names := make([]string, 0, len(flags))
	for name := range flags {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("flag -%s (registered in %s) is missing from docs/OPERATIONS.md",
				name, strings.Join(flags[name], ", "))
		}
	}
}

// flagNames extracts the names of all flags registered in one Go source
// file. It recognises the value-returning forms (flag.String, fs.Int, ...)
// where the name is argument 0, and the *Var forms (fs.DurationVar, ...)
// where the name is argument 1.
func flagNames(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		var nameArg int
		switch method {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
			nameArg = 0
		case "StringVar", "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var", "Float64Var", "DurationVar":
			nameArg = 1
		default:
			return true
		}
		// Only count calls on a *flag.FlagSet-looking receiver: the flag
		// package itself or an identifier (fs, flagSet, ...). This skips
		// unrelated methods like time.Duration or strconv helpers because
		// those never take a string literal in the name slot.
		if len(call.Args) <= nameArg {
			return true
		}
		lit, ok := call.Args[nameArg].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || name == "" {
			return true
		}
		// Heuristic guard: flag names are lowercase words joined by dashes.
		for _, r := range name {
			if !(r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
				return true
			}
		}
		names = append(names, name)
		return true
	})
	return names
}
