package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// godocPackages are the packages held to the full godoc standard: a
// package-level doc comment plus a doc comment on every exported
// top-level declaration (types, funcs, methods, vars, consts). `make
// docs` runs this check; CI runs `make docs`.
var godocPackages = []string{
	"trace", "qos", "blkio", "history", "selection", "ledger", "catalog", "workload",
	"scenario", "tenant",
}

// TestGodocPresence is the revive/golint-style comment-presence check,
// implemented on go/ast so it needs no external linter. It fails with
// one line per undocumented exported symbol.
func TestGodocPresence(t *testing.T) {
	for _, pkg := range godocPackages {
		dir := filepath.Join("..", pkg)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for name, p := range pkgs {
			hasPkgDoc := false
			for _, f := range p.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					hasPkgDoc = true
				}
				checkFileDocs(t, fset, f)
			}
			if !hasPkgDoc {
				t.Errorf("package %s (internal/%s) has no package doc comment", name, pkg)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are not part of the
			// package's godoc surface (they typically exist to satisfy
			// interfaces like heap.Interface).
			if d.Recv != nil && len(d.Recv.List) > 0 && !ast.IsExported(recvType(d.Recv.List[0].Type)) {
				continue
			}
			t.Errorf("%s: exported %s lacks a doc comment", pos(fset, d.Pos()), funcLabel(d))
		case *ast.GenDecl:
			// A doc comment on the grouped decl covers the whole block
			// (idiomatic for const/var groups).
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported type %s lacks a doc comment", pos(fset, s.Pos()), s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil {
							t.Errorf("%s: exported %s %s lacks a doc comment",
								pos(fset, s.Pos()), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
}

func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + recvType(d.Recv.List[0].Type) + "." + d.Name.Name
}

func recvType(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.StarExpr:
		return recvType(v.X)
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver
		return recvType(v.X)
	}
	return "?"
}

func pos(fset *token.FileSet, p token.Pos) string {
	pp := fset.Position(p)
	return filepath.Base(pp.Filename) + ":" + strconv.Itoa(pp.Line)
}
