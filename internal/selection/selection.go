// Package selection implements the paper's resource-selection policies
// (§IV): every eligible RM answers a Call-For-Proposal with a bid, and the
// DFSC scores each bid as
//
//	Bid = α·B_rem + β·Trend − γ·(OccBias · B_req) − δ·(TenantShare · B_req)
//
// where B_rem is the RM's remaining bandwidth, Trend is the two-queue
// historical prediction term (see package history), OccBias =
// exp(−T_ocp_avg/T_ocp) ∈ (0,1) biases against RMs the requested file would
// occupy for long relative to the RM's average occupation time, and B_req is
// the bandwidth the request needs. Higher scores win. The weights are the
// policy triple (α,β,γ) with α ≥ β ≥ γ in the paper's experiments; (0,0,0)
// denotes uniform-random selection with no policy involved.
//
// The fourth, multi-tenant term extends the paper: TenantShare ∈ [0, ∞) is
// the requesting tenant's weight-normalised share of the bidder's capacity
// ((reserved/capacity)/weight, see tenant.Ledger.Share). With δ > 0 a
// tenant already holding much of an RM scores that RM down for its own next
// stream, steering the noisy tenant's streams onto each other's RMs while
// leaving quiet tenants' scores untouched — weighted fairness emerging from
// bid scoring rather than from a central queue. δ = 0 (the default and
// every canonical paper policy) reproduces the three-term formula exactly.
package selection

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

// Policy is the (α, β, γ) weight triple, optionally extended with the
// multi-tenant fairness weight δ (zero in every canonical paper policy).
type Policy struct {
	Alpha, Beta, Gamma float64
	// Delta weighs the tenant-share penalty: how strongly a tenant's
	// existing footprint on a bidder counts against that bidder for the
	// tenant's next stream. Zero disables the term.
	Delta float64
}

// Canonical policies evaluated in the paper.
var (
	Random   = Policy{Alpha: 0, Beta: 0, Gamma: 0}
	RemOnly  = Policy{Alpha: 1, Beta: 0, Gamma: 0}
	RemOcc   = Policy{Alpha: 1, Beta: 0, Gamma: 1}
	RemTrend = Policy{Alpha: 1, Beta: 1, Gamma: 0}
	Full     = Policy{Alpha: 1, Beta: 1, Gamma: 1}
)

// PaperPolicies returns the five policies of Tables I-IV in paper order.
func PaperPolicies() []Policy {
	return []Policy{Random, RemOnly, RemOcc, RemTrend, Full}
}

// IsRandom reports whether the policy is (0,0,0), i.e. "choosing the RM
// randomly without any selection policy being involved". A pure-fairness
// policy (0,0,0,δ) still scores, so it is not random.
func (p Policy) IsRandom() bool {
	return p.Alpha == 0 && p.Beta == 0 && p.Gamma == 0 && p.Delta == 0
}

// String renders the policy as the paper writes it, e.g. "(1,0,0)". A
// non-zero δ appends the fourth component: "(1,1,1,0.5)".
func (p Policy) String() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	s := "(" + f(p.Alpha) + "," + f(p.Beta) + "," + f(p.Gamma)
	if p.Delta != 0 {
		s += "," + f(p.Delta)
	}
	return s + ")"
}

// ParsePolicy parses "(1,0,0)" or "1,0,0" into a Policy. A fourth
// component, when present, is the tenant-fairness weight δ.
func ParsePolicy(s string) (Policy, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	parts := strings.Split(t, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return Policy{}, fmt.Errorf("selection: policy %q must have three or four components", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Policy{}, fmt.Errorf("selection: bad policy %q: %w", s, err)
		}
		if v < 0 {
			return Policy{}, fmt.Errorf("selection: policy %q has negative weight", s)
		}
		vals[i] = v
	}
	return Policy{Alpha: vals[0], Beta: vals[1], Gamma: vals[2], Delta: vals[3]}, nil
}

// Bid carries the factors an RM reports in response to a CFP, plus the
// request context needed for scoring.
type Bid struct {
	// RM is the bidder.
	RM ids.RMID
	// Rem is B_rem, the RM's remaining (unallocated) bandwidth. It can be
	// negative in the soft real-time scenario.
	Rem units.BytesPerSec
	// Trend is the two-queue historical prediction term (bytes/sec scale).
	Trend float64
	// OccBias is exp(−T_ocp_avg / T_ocp) for the requested file on this RM.
	OccBias float64
	// Req is B_req, the bandwidth the request reserves (the file bitrate).
	Req units.BytesPerSec
	// HasReplica reports whether the bidder actually holds the file.
	// Under ECNP the matchmaker guarantees it; under plain-CNP broadcast
	// (no matchmaker) the requester must filter on it, mirroring the
	// refusal a CNP provider would send.
	HasReplica bool
	// Assured is the bandwidth floor the bidder can still guarantee from
	// nominal capacity: max(0, Rem). A winning stream admitted within
	// Assured gets a sustainable reservation; beyond it the stream rides
	// the oversubscribed headroom.
	Assured units.BytesPerSec
	// Ceil is the bidder's remaining admission headroom under its
	// oversubscription ratio (capacity×oversub − allocated). An
	// oversubscription-aware requester can admit up to Ceil while the
	// enforcement tree still guarantees previously-admitted floors. Zero
	// means the bidder did not advertise a ratio (legacy bid).
	Ceil units.BytesPerSec
	// TenantShare is the requesting tenant's weight-normalised share of
	// the bidder's capacity, (reserved/capacity)/weight, reported by the
	// bidder's tenant ledger. Zero for untenanted requests or bidders
	// without a ledger, so three-term policies score identically.
	TenantShare float64
}

// OccupationBias computes exp(−tOcpAvg/tOcp), the paper's occupation bias
// ratio scaled into (0, 1). tOcp is the occupation time of the requested
// file (its playback duration); tOcpAvg is the mean occupation time across
// files on the bidding RM. By convention a degenerate tOcp ≤ 0 yields 0
// (an instantaneous access cannot bias the RM), and tOcpAvg ≤ 0 (an RM with
// no files) yields 1.
func OccupationBias(tOcp, tOcpAvg float64) float64 {
	if tOcp <= 0 {
		return 0
	}
	if tOcpAvg <= 0 {
		return 1
	}
	return math.Exp(-tOcpAvg / tOcp)
}

// Score evaluates the bid under the policy. Higher is better.
func (p Policy) Score(b Bid) float64 {
	return p.Alpha*float64(b.Rem) + p.Beta*b.Trend -
		p.Gamma*(b.OccBias*float64(b.Req)) -
		p.Delta*(b.TenantShare*float64(b.Req))
}

// Select picks the winning RM among the bids under the policy. For the
// random policy it draws uniformly; otherwise it takes the highest score,
// breaking exact ties uniformly at random so that symmetric configurations
// do not systematically favour low-numbered RMs. ok is false when bids is
// empty.
func Select(p Policy, bids []Bid, src *rng.Source) (winner ids.RMID, ok bool) {
	if len(bids) == 0 {
		return ids.NoneRM, false
	}
	if p.IsRandom() {
		return bids[src.Intn(len(bids))].RM, true
	}
	best := math.Inf(-1)
	var tied []ids.RMID
	for _, b := range bids {
		s := p.Score(b)
		switch {
		case s > best:
			best = s
			tied = tied[:0]
			tied = append(tied, b.RM)
		case s == best:
			tied = append(tied, b.RM)
		}
	}
	if len(tied) == 1 {
		return tied[0], true
	}
	return tied[src.Intn(len(tied))], true
}

// Rank returns the bids' RMs ordered from best to worst score under the
// policy (stable under equal scores: input order preserved). Used by the
// firm real-time scenario to try the next-best RM when the best cannot fit
// the reservation, and by diagnostics.
func Rank(p Policy, bids []Bid) []ids.RMID {
	type scored struct {
		rm    ids.RMID
		score float64
		idx   int
	}
	ss := make([]scored, len(bids))
	for i, b := range bids {
		ss[i] = scored{rm: b.RM, score: p.Score(b), idx: i}
	}
	// Insertion sort: bid lists are tiny (≤ replica degree).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0; j-- {
			if ss[j].score > ss[j-1].score ||
				(ss[j].score == ss[j-1].score && ss[j].idx < ss[j-1].idx) {
				ss[j], ss[j-1] = ss[j-1], ss[j]
			} else {
				break
			}
		}
	}
	out := make([]ids.RMID, len(ss))
	for i, s := range ss {
		out[i] = s.rm
	}
	return out
}

// TopK returns up to k bidders in admission order: the Rank order for a
// scored policy, a uniform shuffle of the full bid list for the random
// policy (so a short list is still an unbiased sample, not a prefix of
// input order). Fewer than k bids returns them all — the striped reader
// admits what exists and degrades its width. k ≤ 0 yields nil. src is
// only consulted for the random policy.
func TopK(p Policy, bids []Bid, k int, src *rng.Source) []ids.RMID {
	if k <= 0 || len(bids) == 0 {
		return nil
	}
	var order []ids.RMID
	if p.IsRandom() {
		order = make([]ids.RMID, len(bids))
		for i, b := range bids {
			order[i] = b.RM
		}
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		order = Rank(p, bids)
	}
	if k < len(order) {
		order = order[:k]
	}
	return order
}
