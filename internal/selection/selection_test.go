package selection

import (
	"math"
	"testing"
	"testing/quick"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
)

func TestPolicyString(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{Random, "(0,0,0)"},
		{RemOnly, "(1,0,0)"},
		{Full, "(1,1,1)"},
		{Policy{Alpha: 0.5, Beta: 0.25}, "(0.5,0.25,0)"},
		{Policy{Alpha: 1, Beta: 1, Gamma: 1, Delta: 0.5}, "(1,1,1,0.5)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"(1,0,0)", RemOnly},
		{"1,1,1", Full},
		{" ( 0 , 0 , 0 ) ", Random},
		{"(0.5,0.2,0.1)", Policy{Alpha: 0.5, Beta: 0.2, Gamma: 0.1}},
		{"(1,0,0,0)", RemOnly},
		{"(1,1,1,2)", Policy{Alpha: 1, Beta: 1, Gamma: 1, Delta: 2}},
		{"1,1,1,0.5", Policy{Alpha: 1, Beta: 1, Gamma: 1, Delta: 0.5}},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", "(1,0)", "(1,0,0,0,0)", "(a,0,0)", "(-1,0,0)", "(1,0,0,-1)", "(1,0,0,x)"} {
		if _, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q): expected error", in)
		}
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range PaperPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v -> %v (%v)", p, got, err)
		}
	}
}

func TestIsRandom(t *testing.T) {
	if !Random.IsRandom() {
		t.Error("(0,0,0) not detected as random")
	}
	if RemOnly.IsRandom() {
		t.Error("(1,0,0) detected as random")
	}
	// A pure-fairness policy still scores bids, so it is not random.
	if (Policy{Delta: 1}).IsRandom() {
		t.Error("(0,0,0,1) detected as random")
	}
}

func TestOccupationBias(t *testing.T) {
	// T_ocp == T_ocp_avg → e^-1.
	if got := OccupationBias(100, 100); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("bias(100,100) = %v, want e^-1", got)
	}
	// Longer-than-average file → bias closer to 1 (larger penalty term).
	long := OccupationBias(1000, 100)
	short := OccupationBias(10, 100)
	if !(long > OccupationBias(100, 100) && OccupationBias(100, 100) > short) {
		t.Fatalf("bias ordering wrong: long=%v mid=%v short=%v", long, OccupationBias(100, 100), short)
	}
	// Range [0,1]: mathematically (0,1) but exp may underflow to 0 for
	// extreme ratios, which is harmless for scoring.
	for _, pair := range [][2]float64{{1, 1}, {5, 500}, {500, 5}, {0.1, 999}} {
		b := OccupationBias(pair[0], pair[1])
		if b < 0 || b > 1 {
			t.Fatalf("bias(%v,%v) = %v outside [0,1]", pair[0], pair[1], b)
		}
	}
	if OccupationBias(0, 100) != 0 {
		t.Error("degenerate tOcp should give 0")
	}
	if OccupationBias(100, 0) != 1 {
		t.Error("empty RM should give bias 1")
	}
}

func TestScoreComposition(t *testing.T) {
	b := Bid{RM: 1, Rem: 100, Trend: 40, OccBias: 0.5, Req: 10}
	if got := RemOnly.Score(b); got != 100 {
		t.Fatalf("(1,0,0) score = %v, want 100", got)
	}
	if got := RemTrend.Score(b); got != 140 {
		t.Fatalf("(1,1,0) score = %v, want 140", got)
	}
	if got := RemOcc.Score(b); got != 95 {
		t.Fatalf("(1,0,1) score = %v, want 95", got)
	}
	if got := Full.Score(b); got != 135 {
		t.Fatalf("(1,1,1) score = %v, want 135", got)
	}
	if got := Random.Score(b); got != 0 {
		t.Fatalf("(0,0,0) score = %v, want 0", got)
	}
}

// TestScoreTenantShare pins the δ term: a tenant's existing share of the
// bidder scales a penalty proportional to the requested bandwidth, and
// δ = 0 policies ignore the share entirely.
func TestScoreTenantShare(t *testing.T) {
	fair := Policy{Alpha: 1, Delta: 2}
	b := Bid{RM: 1, Rem: 100, Req: 10, TenantShare: 0.5}
	if got := fair.Score(b); got != 100-2*0.5*10 {
		t.Fatalf("(1,0,0,2) score = %v, want 90", got)
	}
	if got := RemOnly.Score(b); got != 100 {
		t.Fatalf("δ=0 policy must ignore TenantShare, score = %v", got)
	}
	// With equal Rem, the tenant's next stream must prefer the RM where
	// the tenant holds less.
	heavy := Bid{RM: 1, Rem: 100, Req: 10, TenantShare: 0.8}
	light := Bid{RM: 2, Rem: 100, Req: 10, TenantShare: 0.1}
	if fair.Score(light) <= fair.Score(heavy) {
		t.Fatalf("fairness term did not prefer the lighter RM: %v <= %v",
			fair.Score(light), fair.Score(heavy))
	}
	rm, ok := Select(fair, []Bid{heavy, light}, rng.New(3))
	if !ok || rm != 2 {
		t.Fatalf("Select under δ policy = (%v, %v), want RM2", rm, ok)
	}
}

func TestSelectEmpty(t *testing.T) {
	if rm, ok := Select(RemOnly, nil, rng.New(1)); ok || rm != ids.NoneRM {
		t.Fatalf("Select on empty bids = (%v, %v), want (NoneRM, false)", rm, ok)
	}
}

func TestSelectPicksHighestScore(t *testing.T) {
	bids := []Bid{
		{RM: 1, Rem: units.Mbps(2)},
		{RM: 2, Rem: units.Mbps(10)},
		{RM: 3, Rem: units.Mbps(5)},
	}
	src := rng.New(1)
	for i := 0; i < 50; i++ {
		rm, ok := Select(RemOnly, bids, src)
		if !ok || rm != 2 {
			t.Fatalf("Select = (%v, %v), want RM2", rm, ok)
		}
	}
}

func TestSelectRandomIsUniform(t *testing.T) {
	bids := []Bid{{RM: 1}, {RM: 2}, {RM: 3}, {RM: 4}}
	src := rng.New(5)
	counts := map[ids.RMID]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		rm, _ := Select(Random, bids, src)
		counts[rm]++
	}
	want := float64(draws) / 4
	for rm, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("%v selected %d times, want ~%.0f", rm, c, want)
		}
	}
}

func TestSelectTieBreakIsUniform(t *testing.T) {
	bids := []Bid{
		{RM: 1, Rem: units.Mbps(5)},
		{RM: 2, Rem: units.Mbps(5)},
		{RM: 3, Rem: units.Mbps(1)},
	}
	src := rng.New(9)
	counts := map[ids.RMID]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		rm, _ := Select(RemOnly, bids, src)
		counts[rm]++
	}
	if counts[3] != 0 {
		t.Fatalf("losing RM3 selected %d times", counts[3])
	}
	want := float64(draws) / 2
	for _, rm := range []ids.RMID{1, 2} {
		if math.Abs(float64(counts[rm])-want) > 6*math.Sqrt(want) {
			t.Errorf("%v selected %d times, want ~%.0f", rm, counts[rm], want)
		}
	}
}

func TestRankOrdersByScore(t *testing.T) {
	bids := []Bid{
		{RM: 1, Rem: units.Mbps(2)},
		{RM: 2, Rem: units.Mbps(10)},
		{RM: 3, Rem: units.Mbps(5)},
		{RM: 4, Rem: units.Mbps(5)}, // tie with RM3; input order preserved
	}
	got := Rank(RemOnly, bids)
	want := []ids.RMID{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestRankEmpty(t *testing.T) {
	if got := Rank(RemOnly, nil); len(got) != 0 {
		t.Fatalf("Rank(nil) = %v", got)
	}
}

// Property: under (1,0,0) the winner always has maximal remaining bandwidth.
func TestSelectMaxRemProperty(t *testing.T) {
	f := func(rems []uint16, seed uint64) bool {
		if len(rems) == 0 {
			return true
		}
		bids := make([]Bid, len(rems))
		maxRem := units.BytesPerSec(0)
		for i, r := range rems {
			bids[i] = Bid{RM: ids.RMID(i + 1), Rem: units.BytesPerSec(r)}
			if bids[i].Rem > maxRem {
				maxRem = bids[i].Rem
			}
		}
		rm, ok := Select(RemOnly, bids, rng.New(seed))
		if !ok {
			return false
		}
		return bids[rm-1].Rem == maxRem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank is a permutation of the input RMs with non-increasing
// scores.
func TestRankPermutationProperty(t *testing.T) {
	f := func(rems []uint16, trends []int8) bool {
		n := len(rems)
		bids := make([]Bid, n)
		for i := range bids {
			tr := 0.0
			if i < len(trends) {
				tr = float64(trends[i])
			}
			bids[i] = Bid{RM: ids.RMID(i + 1), Rem: units.BytesPerSec(rems[i]), Trend: tr, OccBias: 0.5, Req: 10}
		}
		order := Rank(Full, bids)
		if len(order) != n {
			return false
		}
		seen := make(map[ids.RMID]bool)
		prev := math.Inf(1)
		for _, rm := range order {
			if seen[rm] {
				return false
			}
			seen[rm] = true
			s := Full.Score(bids[rm-1])
			if s > prev+1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKScoredPrefix(t *testing.T) {
	bids := []Bid{
		{RM: 1, Rem: units.BytesPerSec(10)},
		{RM: 2, Rem: units.BytesPerSec(30)},
		{RM: 3, Rem: units.BytesPerSec(20)},
	}
	got := TopK(RemOnly, bids, 2, rng.New(1))
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("TopK = %v, want [2 3] (Rank prefix)", got)
	}
	// k beyond the bid count returns everything in rank order.
	all := TopK(RemOnly, bids, 10, rng.New(1))
	if len(all) != 3 || all[0] != 2 || all[1] != 3 || all[2] != 1 {
		t.Fatalf("TopK over-wide = %v, want [2 3 1]", all)
	}
	if TopK(RemOnly, bids, 0, rng.New(1)) != nil {
		t.Fatal("TopK with k=0 must be nil")
	}
	if TopK(RemOnly, nil, 3, rng.New(1)) != nil {
		t.Fatal("TopK with no bids must be nil")
	}
}

func TestTopKRandomIsUnbiasedSample(t *testing.T) {
	// Under the random policy the first slot of a k=1 TopK must be
	// uniform over all bidders, not biased toward input order.
	bids := []Bid{{RM: 1}, {RM: 2}, {RM: 3}, {RM: 4}}
	src := rng.New(99)
	counts := map[ids.RMID]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		got := TopK(Random, bids, 1, src)
		if len(got) != 1 {
			t.Fatalf("TopK = %v, want one RM", got)
		}
		counts[got[0]]++
	}
	want := float64(trials) / float64(len(bids))
	for rm, n := range counts {
		if math.Abs(float64(n)-want) > want/2 {
			t.Errorf("RM %v drawn %d times, want ~%.0f", rm, n, want)
		}
	}
}
