package mm

import (
	"testing"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

func info(id ids.RMID) ecnp.RMInfo {
	return ecnp.RMInfo{ID: id, Capacity: units.Mbps(18), StorageBytes: 16 * units.GB}
}

func TestRegisterAndList(t *testing.T) {
	m := New()
	for _, id := range []ids.RMID{3, 1, 2} {
		if err := m.RegisterRM(info(id), nil); err != nil {
			t.Fatal(err)
		}
	}
	rms := m.RMs()
	if len(rms) != 3 {
		t.Fatalf("RMs() len %d, want 3", len(rms))
	}
	for i, want := range []ids.RMID{1, 2, 3} {
		if rms[i].ID != want {
			t.Fatalf("RMs() order %v", rms)
		}
	}
	if _, ok := m.RM(2); !ok {
		t.Fatal("RM(2) not found")
	}
	if _, ok := m.RM(9); ok {
		t.Fatal("RM(9) should not exist")
	}
}

func TestRegisterValidates(t *testing.T) {
	m := New()
	if err := m.RegisterRM(ecnp.RMInfo{ID: 1, Capacity: 0}, nil); err == nil {
		t.Fatal("zero-capacity registration accepted")
	}
	if err := m.RegisterRM(ecnp.RMInfo{ID: -1, Capacity: units.Mbps(1)}, nil); err == nil {
		t.Fatal("invalid-id registration accepted")
	}
}

func TestRegisterMergesFiles(t *testing.T) {
	m := New()
	if err := m.RegisterRM(info(1), []ids.FileID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterRM(info(2), []ids.FileID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(1); len(got) != 2 {
		t.Fatalf("Lookup(1) = %v, want both RMs", got)
	}
	// Re-registration with the same files must be idempotent.
	if err := m.RegisterRM(info(1), []ids.FileID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.ReplicaCount(1); got != 2 {
		t.Fatalf("ReplicaCount(1) = %d after re-register, want 2", got)
	}
}

func TestLookupOrdering(t *testing.T) {
	m := New()
	m.RegisterRM(info(5), []ids.FileID{7})
	m.RegisterRM(info(2), []ids.FileID{7})
	m.RegisterRM(info(9), []ids.FileID{7})
	got := m.Lookup(7)
	want := []ids.RMID{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lookup = %v, want %v", got, want)
		}
	}
}

func TestRMsWithout(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	m.RegisterRM(info(2), nil)
	m.RegisterRM(info(3), nil)
	got := m.RMsWithout(0)
	want := []ids.RMID{2, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("RMsWithout = %v, want %v", got, want)
	}
	if got := m.RMsWithout(99); len(got) != 3 {
		t.Fatalf("RMsWithout(unknown file) = %v, want all RMs", got)
	}
}

func TestAddRemoveReplica(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	m.RegisterRM(info(2), nil)
	if err := m.AddReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddReplica(0, 2); err == nil {
		t.Fatal("duplicate AddReplica accepted")
	}
	if err := m.AddReplica(0, 42); err == nil {
		t.Fatal("AddReplica to unregistered RM accepted")
	}
	if got := m.ReplicaCount(0); got != 2 {
		t.Fatalf("ReplicaCount = %d, want 2", got)
	}
	if err := m.RemoveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveReplica(0, 2); err == nil {
		t.Fatal("removing last replica accepted")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionAdvances(t *testing.T) {
	m := New()
	v0 := m.Version()
	m.RegisterRM(info(1), []ids.FileID{0})
	if m.Version() == v0 {
		t.Fatal("version did not advance on registration")
	}
	v1 := m.Version()
	m.RegisterRM(info(2), nil)
	m.AddReplica(0, 2)
	if m.Version() <= v1 {
		t.Fatal("version did not advance on AddReplica")
	}
}

func TestNewWithPlacementIsDeepCopy(t *testing.T) {
	p := catalog.NewPlacement()
	p.Add(0, 1)
	p.Add(0, 2)
	m := NewWithPlacement(p)
	m.RegisterRM(info(1), nil)
	m.RegisterRM(info(2), nil)
	m.RegisterRM(info(3), nil)
	if err := m.AddReplica(0, 3); err != nil {
		t.Fatal(err)
	}
	if p.Degree(0) != 2 {
		t.Fatal("manager mutated the caller's placement")
	}
	if m.ReplicaCount(0) != 3 {
		t.Fatal("manager did not record the new replica")
	}
}

func TestFilesOn(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{5, 2, 9})
	got := m.FilesOn(1)
	want := []ids.FileID{2, 5, 9}
	if len(got) != 3 {
		t.Fatalf("FilesOn = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilesOn = %v, want sorted %v", got, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New()
	for i := 1; i <= 8; i++ {
		m.RegisterRM(info(ids.RMID(i)), []ids.FileID{ids.FileID(i % 4)})
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				m.Lookup(ids.FileID(i % 4))
				m.RMsWithout(ids.FileID(i % 4))
				m.RMs()
				m.ReplicaCount(ids.FileID(i % 4))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
