// Package mm implements the Metadata Manager — the Mapper (matchmaker) role
// of the ECNP model. It maintains the global resource list as "the union of
// the resource information provided by all of the registered RMs" and the
// file → replica map, and answers two queries: the requester's resource
// lookup and the replication source's inverse lookup (RMs holding no
// replica of a file).
//
// The manager is safe for concurrent use: in live mode many TCP sessions
// query it at once, and even in the DES it is shared by all actors.
package mm

import (
	"fmt"
	"sort"
	"sync"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
)

// Manager is the Metadata Manager.
type Manager struct {
	mu        sync.RWMutex
	rms       map[ids.RMID]ecnp.RMInfo
	placement *catalog.Placement
	// pending tracks in-flight replication destinations per file. A
	// pending entry counts toward ReplicaCount, which is how concurrent
	// replication sources are prevented from overshooting N_MAXR, and it
	// blocks a second source from targeting the same destination.
	pending map[ids.FileID]map[ids.RMID]bool
	// version increments on every mutation, providing the consistency
	// token that resource registration is validated against.
	version uint64
}

// New returns an empty Metadata Manager.
func New() *Manager {
	return &Manager{
		rms:       make(map[ids.RMID]ecnp.RMInfo),
		placement: catalog.NewPlacement(),
		pending:   make(map[ids.FileID]map[ids.RMID]bool),
	}
}

// NewWithPlacement returns a manager pre-seeded with a static placement,
// the evaluation's "distribute these three replicas randomly into 16 RMs".
// The placement is deep-copied; the caller's copy stays untouched.
func NewWithPlacement(p *catalog.Placement) *Manager {
	m := New()
	m.placement = p.Clone()
	return m
}

// RegisterRM implements ecnp.Mapper. Registering an already-known RM
// refreshes its info; the files it reports are merged into the replica map
// (the paper's "maintain the integrity and consistency of the global
// resource list" during registration).
func (m *Manager) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	if err := info.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rms[info.ID] = info
	for _, f := range files {
		if !m.placement.Has(f, info.ID) {
			if err := m.placement.Add(f, info.ID); err != nil {
				return fmt.Errorf("mm: registering %v: %w", info.ID, err)
			}
		}
	}
	m.version++
	return nil
}

// Lookup implements ecnp.Mapper: the RMs holding a replica of file, in
// ascending RM order for determinism.
func (m *Manager) Lookup(file ids.FileID) []ids.RMID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hs := m.placement.Holders(file)
	sortRMs(hs)
	return hs
}

// RMsWithout implements ecnp.Mapper: registered RMs with neither a
// committed nor a pending replica of file, in ascending RM order.
func (m *Manager) RMsWithout(file ids.FileID) []ids.RMID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []ids.RMID
	for id := range m.rms {
		if !m.placement.Has(file, id) && !m.pending[file][id] {
			out = append(out, id)
		}
	}
	sortRMs(out)
	return out
}

// AddReplica implements ecnp.Mapper.
func (m *Manager) AddReplica(file ids.FileID, rm ids.RMID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[rm]; !ok {
		return fmt.Errorf("mm: AddReplica to unregistered %v", rm)
	}
	if err := m.placement.Add(file, rm); err != nil {
		return err
	}
	m.version++
	return nil
}

// RemoveReplica implements ecnp.Mapper. Removing the last replica is
// refused by the placement layer: the file would become unreachable.
func (m *Manager) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.placement.Remove(file, rm); err != nil {
		return err
	}
	m.version++
	return nil
}

// BeginReplication implements ecnp.Mapper.
func (m *Manager) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[rm]; !ok {
		return fmt.Errorf("mm: BeginReplication to unregistered %v", rm)
	}
	if m.placement.Has(file, rm) {
		return fmt.Errorf("mm: %v already holds %v", rm, file)
	}
	if m.pending[file][rm] {
		return fmt.Errorf("mm: %v already receiving %v", rm, file)
	}
	if maxTotal > 0 && m.placement.Degree(file)+len(m.pending[file]) >= maxTotal {
		return fmt.Errorf("mm: %v already at %d replicas (cap %d)",
			file, m.placement.Degree(file)+len(m.pending[file]), maxTotal)
	}
	if m.pending[file] == nil {
		m.pending[file] = make(map[ids.RMID]bool)
	}
	m.pending[file][rm] = true
	m.version++
	return nil
}

// EndReplication implements ecnp.Mapper.
func (m *Manager) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.pending[file][rm] {
		return fmt.Errorf("mm: no pending replication of %v on %v", file, rm)
	}
	delete(m.pending[file], rm)
	if len(m.pending[file]) == 0 {
		delete(m.pending, file)
	}
	m.version++
	if !commit {
		return nil
	}
	return m.placement.Add(file, rm)
}

// ReplicaCount implements ecnp.Mapper: committed plus pending replicas.
func (m *Manager) ReplicaCount(file ids.FileID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.placement.Degree(file) + len(m.pending[file])
}

// PendingCount reports in-flight replications of file (diagnostics).
func (m *Manager) PendingCount(file ids.FileID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pending[file])
}

// RMs implements ecnp.Mapper: the resource list in ascending RM order.
func (m *Manager) RMs() []ecnp.RMInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]ecnp.RMInfo, 0, len(m.rms))
	for _, info := range m.rms {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RM returns the registration record of one RM.
func (m *Manager) RM(id ids.RMID) (ecnp.RMInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	info, ok := m.rms[id]
	return info, ok
}

// Version returns the mutation counter (diagnostics and cache validation).
func (m *Manager) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// FilesOn returns the files with a replica on rm, sorted by file ID.
func (m *Manager) FilesOn(rm ids.RMID) []ids.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fs := m.placement.FilesOn(rm)
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// Validate checks replica-map invariants (delegates to the placement).
func (m *Manager) Validate() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.placement.Validate()
}

func sortRMs(s []ids.RMID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

var _ ecnp.Mapper = (*Manager)(nil)
