// Package mm implements the Metadata Manager — the Mapper (matchmaker) role
// of the ECNP model. It maintains the global resource list as "the union of
// the resource information provided by all of the registered RMs" and the
// file → replica map, and answers two queries: the requester's resource
// lookup and the replication source's inverse lookup (RMs holding no
// replica of a file).
//
// The manager is safe for concurrent use: in live mode many TCP sessions
// query it at once, and even in the DES it is shared by all actors.
package mm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
)

// LivenessConfig arms failure detection on the global resource list: an
// RM that has not heartbeated (or re-registered) within
// MissThreshold × HeartbeatInterval is excluded from every query answer —
// Lookup (the readdir answer), RMsWithout (replication destinations) and
// RMs (the resource list) — until a beat or re-registration heals it.
// The zero value disables liveness entirely, which keeps the DES and all
// pre-liveness behavior byte-identical.
type LivenessConfig struct {
	// HeartbeatInterval is the cadence RMs are expected to beat at.
	HeartbeatInterval time.Duration
	// MissThreshold is how many consecutive missed beats mark an RM dead.
	MissThreshold int
}

// Enabled reports whether the config actually tracks liveness.
func (c LivenessConfig) Enabled() bool {
	return c.HeartbeatInterval > 0 && c.MissThreshold > 0
}

// Deadline is the silence beyond which an RM is considered dead.
func (c LivenessConfig) Deadline() time.Duration {
	return time.Duration(c.MissThreshold) * c.HeartbeatInterval
}

// Manager is the Metadata Manager.
type Manager struct {
	mu        sync.RWMutex
	rms       map[ids.RMID]ecnp.RMInfo
	placement *catalog.Placement
	// pending tracks in-flight replication destinations per file. A
	// pending entry counts toward ReplicaCount, which is how concurrent
	// replication sources are prevented from overshooting N_MAXR, and it
	// blocks a second source from targeting the same destination.
	pending map[ids.FileID]map[ids.RMID]bool
	// version increments on every mutation, providing the consistency
	// token that resource registration is validated against.
	version uint64

	// Liveness state (inert unless liveCfg.Enabled()).
	liveCfg  LivenessConfig
	now      func() time.Time
	lastBeat map[ids.RMID]time.Time
	// epochs counts each RM's dead→live transitions; a heartbeat or
	// registration that revives a dead RM bumps its epoch, so observers
	// can distinguish "still the same incarnation" from "came back".
	epochs map[ids.RMID]uint64
	// deadSeen marks RMs already observed (and counted) as dead, so the
	// death counter fires once per transition, not once per query.
	deadSeen map[ids.RMID]bool

	met *Metrics
}

// New returns an empty Metadata Manager.
func New() *Manager {
	return &Manager{
		rms:       make(map[ids.RMID]ecnp.RMInfo),
		placement: catalog.NewPlacement(),
		pending:   make(map[ids.FileID]map[ids.RMID]bool),
		now:       time.Now,
		lastBeat:  make(map[ids.RMID]time.Time),
		epochs:    make(map[ids.RMID]uint64),
		deadSeen:  make(map[ids.RMID]bool),
		met:       NewMetrics(nil),
	}
}

// NewWithPlacement returns a manager pre-seeded with a static placement,
// the evaluation's "distribute these three replicas randomly into 16 RMs".
// The placement is deep-copied; the caller's copy stays untouched.
func NewWithPlacement(p *catalog.Placement) *Manager {
	m := New()
	m.placement = p.Clone()
	return m
}

// SetLiveness arms failure detection (see LivenessConfig). Call before
// traffic; a zero config disables tracking again.
func (m *Manager) SetLiveness(cfg LivenessConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.liveCfg = cfg
}

// SetClock overrides the wall-clock source (tests drive liveness with a
// fake clock for determinism). nil restores time.Now.
func (m *Manager) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// SetMetrics routes MM telemetry (default: no-op).
func (m *Manager) SetMetrics(met *Metrics) {
	if met == nil {
		met = NewMetrics(nil)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = met
}

// aliveLocked reports whether id is within its liveness deadline; with
// liveness disabled every registered RM is alive. It also latches the
// first observation of a death so the transition counters fire exactly
// once per incident. Caller holds m.mu (write for the latch; callers
// under RLock pass latch=false).
func (m *Manager) aliveLocked(id ids.RMID, now time.Time, latch bool) bool {
	if !m.liveCfg.Enabled() {
		return true
	}
	last, ok := m.lastBeat[id]
	if ok && now.Sub(last) <= m.liveCfg.Deadline() {
		return true
	}
	if latch && !m.deadSeen[id] {
		m.deadSeen[id] = true
		m.met.Deaths.Inc()
	}
	return false
}

// reviveLocked stamps a fresh beat for id and, when the RM had actually
// died (latched by a query, or silently — detected by timestamp), bumps
// its liveness epoch. A first registration or an in-window beat leaves
// the epoch alone: epoch 0 means "never seen dead". Caller holds m.mu
// for writing.
func (m *Manager) reviveLocked(id ids.RMID, now time.Time) {
	if last, known := m.lastBeat[id]; known && m.liveCfg.Enabled() &&
		(m.deadSeen[id] || now.Sub(last) > m.liveCfg.Deadline()) {
		m.epochs[id]++
		delete(m.deadSeen, id)
		m.met.Revivals.Inc()
	}
	m.lastBeat[id] = now
	m.refreshLiveGaugesLocked(now)
}

// refreshLiveGaugesLocked re-derives the registered/live gauges. Caller
// holds m.mu.
func (m *Manager) refreshLiveGaugesLocked(now time.Time) {
	m.met.RegisteredRMs.Set(float64(len(m.rms)))
	m.met.LiveRMs.Set(float64(m.latchLiveLocked(now)))
}

// latchLiveLocked counts live RMs, latching newly-observed deaths in
// ascending RM-ID order — map-order iteration here made the death-latch
// sequence (and with it any fault armed on a transition count)
// irreproducible across runs of the same seed. Caller holds m.mu.
func (m *Manager) latchLiveLocked(now time.Time) int {
	order := make([]ids.RMID, 0, len(m.rms))
	for id := range m.rms {
		order = append(order, id)
	}
	sortRMs(order)
	live := 0
	for _, id := range order {
		if m.aliveLocked(id, now, true) {
			live++
		}
	}
	return live
}

// Heartbeat records a liveness beacon from id. An unknown RM is refused —
// the beat cannot resurrect a registration the MM never saw (or dropped),
// which forces the RM through RegisterRM and the file-list reconcile that
// comes with it.
func (m *Manager) Heartbeat(id ids.RMID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[id]; !ok {
		return fmt.Errorf("mm: heartbeat from unregistered %v", id)
	}
	m.met.Heartbeats.Inc()
	m.reviveLocked(id, m.now())
	return nil
}

// Epoch returns id's liveness epoch: how many times the MM has seen it
// come back from the dead (0 for a continuously-live RM).
func (m *Manager) Epoch(id ids.RMID) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epochs[id]
}

// LiveCount returns the number of currently-live registered RMs.
func (m *Manager) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latchLiveLocked(m.now())
}

// Alive reports whether id is registered and within its liveness window.
func (m *Manager) Alive(id ids.RMID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[id]; !ok {
		return false
	}
	return m.aliveLocked(id, m.now(), true)
}

// RegisterRM implements ecnp.Mapper. Registering an already-known RM
// refreshes its info, resets its liveness state (a crashed RM that comes
// back starts a fresh epoch) and RECONCILES the reported file list: files
// the MM still attributes to this RM but the RM no longer reports are
// pruned from the replica map instead of lingering as stale entries that
// would route requests at a replica that is gone. (The placement layer
// refuses to drop a file's last replica — that entry is kept so the file
// stays reachable for a future re-upload or manual repair.)
func (m *Manager) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	if err := info.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, known := m.rms[info.ID]
	m.rms[info.ID] = info
	for _, f := range files {
		if !m.placement.Has(f, info.ID) {
			if err := m.placement.Add(f, info.ID); err != nil {
				return fmt.Errorf("mm: registering %v: %w", info.ID, err)
			}
		}
	}
	if known {
		// Re-registration: prune replica entries the RM no longer reports.
		reported := make(map[ids.FileID]bool, len(files))
		for _, f := range files {
			reported[f] = true
		}
		for _, f := range m.placement.FilesOn(info.ID) {
			if reported[f] {
				continue
			}
			if err := m.placement.Remove(f, info.ID); err == nil {
				m.met.ReconciledReplicas.Inc()
			}
		}
	}
	m.reviveLocked(info.ID, m.now())
	m.version++
	return nil
}

// Lookup implements ecnp.Mapper: the live RMs holding a replica of file,
// in ascending RM order for determinism. With liveness enabled, dead
// holders are excluded — the readdir answer never routes a requester at a
// crashed RM, so negotiations stop burning their deadline on it.
func (m *Manager) Lookup(file ids.FileID) []ids.RMID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hs := m.placement.Holders(file)
	hs = m.filterLiveLocked(hs)
	sortRMs(hs)
	return hs
}

// filterLiveLocked drops dead RMs from s in place (no-op with liveness
// disabled). Caller holds m.mu (read suffices: no latching here).
func (m *Manager) filterLiveLocked(s []ids.RMID) []ids.RMID {
	if !m.liveCfg.Enabled() {
		return s
	}
	now := m.now()
	out := s[:0]
	for _, id := range s {
		if m.aliveLocked(id, now, false) {
			out = append(out, id)
		}
	}
	return out
}

// RMsWithout implements ecnp.Mapper: live registered RMs with neither a
// committed nor a pending replica of file, in ascending RM order. Dead
// RMs are excluded — offering a replica to a crashed destination would
// only waste the source's transfer budget.
func (m *Manager) RMsWithout(file ids.FileID) []ids.RMID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []ids.RMID
	for id := range m.rms {
		if !m.placement.Has(file, id) && !m.pending[file][id] {
			out = append(out, id)
		}
	}
	out = m.filterLiveLocked(out)
	sortRMs(out)
	return out
}

// AddReplica implements ecnp.Mapper.
func (m *Manager) AddReplica(file ids.FileID, rm ids.RMID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[rm]; !ok {
		return fmt.Errorf("mm: AddReplica to unregistered %v", rm)
	}
	if err := m.placement.Add(file, rm); err != nil {
		return err
	}
	m.version++
	return nil
}

// RemoveReplica implements ecnp.Mapper. Removing the last replica is
// refused by the placement layer: the file would become unreachable.
func (m *Manager) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.placement.Remove(file, rm); err != nil {
		return err
	}
	m.version++
	return nil
}

// BeginReplication implements ecnp.Mapper.
func (m *Manager) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rms[rm]; !ok {
		return fmt.Errorf("mm: BeginReplication to unregistered %v", rm)
	}
	if m.placement.Has(file, rm) {
		return fmt.Errorf("mm: %v already holds %v", rm, file)
	}
	if m.pending[file][rm] {
		return fmt.Errorf("mm: %v already receiving %v", rm, file)
	}
	if maxTotal > 0 && m.placement.Degree(file)+len(m.pending[file]) >= maxTotal {
		return fmt.Errorf("mm: %v already at %d replicas (cap %d)",
			file, m.placement.Degree(file)+len(m.pending[file]), maxTotal)
	}
	if m.pending[file] == nil {
		m.pending[file] = make(map[ids.RMID]bool)
	}
	m.pending[file][rm] = true
	m.version++
	return nil
}

// EndReplication implements ecnp.Mapper.
func (m *Manager) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.pending[file][rm] {
		return fmt.Errorf("mm: no pending replication of %v on %v", file, rm)
	}
	delete(m.pending[file], rm)
	if len(m.pending[file]) == 0 {
		delete(m.pending, file)
	}
	m.version++
	if !commit {
		return nil
	}
	return m.placement.Add(file, rm)
}

// ReplicaCount implements ecnp.Mapper: committed plus pending replicas.
func (m *Manager) ReplicaCount(file ids.FileID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.placement.Degree(file) + len(m.pending[file])
}

// PendingCount reports in-flight replications of file (diagnostics).
func (m *Manager) PendingCount(file ids.FileID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pending[file])
}

// RMs implements ecnp.Mapper: the resource list in ascending RM order.
// With liveness enabled only live RMs appear — a crashed RM falls out of
// the union "of the resource information provided by all of the
// registered RMs" within the miss threshold and returns on re-registration
// or a late heartbeat.
func (m *Manager) RMs() []ecnp.RMInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	live := !m.liveCfg.Enabled()
	var now time.Time
	if !live {
		now = m.now()
	}
	out := make([]ecnp.RMInfo, 0, len(m.rms))
	for id, info := range m.rms {
		if !live && !m.aliveLocked(id, now, false) {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllRMs returns every registered RM regardless of liveness (diagnostics
// and the monitor's resource-list page, which annotates aliveness).
func (m *Manager) AllRMs() []ecnp.RMInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]ecnp.RMInfo, 0, len(m.rms))
	for _, info := range m.rms {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RM returns the registration record of one RM.
func (m *Manager) RM(id ids.RMID) (ecnp.RMInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	info, ok := m.rms[id]
	return info, ok
}

// Version returns the mutation counter (diagnostics and cache validation).
func (m *Manager) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// FilesOn returns the files with a replica on rm, sorted by file ID.
func (m *Manager) FilesOn(rm ids.RMID) []ids.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fs := m.placement.FilesOn(rm)
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// Files returns every file in the replica map, sorted by file ID — the
// keyspace enumeration the shard handoff protocol walks.
func (m *Manager) Files() []ids.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fs := m.placement.Files()
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// Replicas returns file's committed holders in ascending RM order,
// regardless of liveness — the raw mapping a handoff batch carries, as
// opposed to Lookup's live-filtered answer.
func (m *Manager) Replicas(file ids.FileID) []ids.RMID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hs := m.placement.Holders(file)
	sortRMs(hs)
	return hs
}

// AdoptReplicas merges holders into file's replica set, skipping entries
// already present — the idempotent application of one shard-handoff
// entry. Unlike RegisterRM it never prunes, so replaying a batch (or
// receiving overlapping takeover and heal pushes) converges instead of
// erroring. Holders must be registered RMs; it returns how many entries
// were actually new.
func (m *Manager) AdoptReplicas(file ids.FileID, holders []ids.RMID) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	added := 0
	for _, rm := range holders {
		if _, ok := m.rms[rm]; !ok {
			return added, fmt.Errorf("mm: adopting %v: unregistered %v", file, rm)
		}
		if m.placement.Has(file, rm) {
			continue
		}
		if err := m.placement.Add(file, rm); err != nil {
			return added, fmt.Errorf("mm: adopting %v: %w", file, err)
		}
		added++
	}
	if added > 0 {
		m.version++
	}
	return added, nil
}

// Validate checks replica-map invariants (delegates to the placement).
func (m *Manager) Validate() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.placement.Validate()
}

func sortRMs(s []ids.RMID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

var _ ecnp.Mapper = (*Manager)(nil)
