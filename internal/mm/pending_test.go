package mm

import (
	"testing"

	"dfsqos/internal/ids"
)

func TestBeginEndReplicationLifecycle(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	m.RegisterRM(info(2), nil)

	if err := m.BeginReplication(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	// Pending counts toward ReplicaCount but not Lookup.
	if got := m.ReplicaCount(0); got != 2 {
		t.Fatalf("ReplicaCount = %d during transfer, want 2", got)
	}
	if got := m.Lookup(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Lookup = %v during transfer, want committed holder only", got)
	}
	if got := m.PendingCount(0); got != 1 {
		t.Fatalf("PendingCount = %d", got)
	}
	// The pending destination is excluded from further candidates.
	for _, rm := range m.RMsWithout(0) {
		if rm == 2 {
			t.Fatal("pending destination offered as candidate")
		}
	}
	// Commit turns it into a real replica.
	if err := m.EndReplication(0, 2, true); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(0); len(got) != 2 {
		t.Fatalf("Lookup = %v after commit", got)
	}
	if m.PendingCount(0) != 0 {
		t.Fatal("pending entry leaked after commit")
	}
}

func TestBeginReplicationRejections(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	m.RegisterRM(info(2), nil)
	m.RegisterRM(info(3), nil)

	if err := m.BeginReplication(0, 9, 0); err == nil {
		t.Fatal("unregistered destination accepted")
	}
	if err := m.BeginReplication(0, 1, 0); err == nil {
		t.Fatal("existing holder accepted as destination")
	}
	if err := m.BeginReplication(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginReplication(0, 2, 0); err == nil {
		t.Fatal("duplicate pending destination accepted")
	}
}

func TestBeginReplicationEnforcesCap(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	m.RegisterRM(info(2), nil)
	m.RegisterRM(info(3), nil)
	m.RegisterRM(info(4), nil)

	// Cap 2: one committed + one pending fills it.
	if err := m.BeginReplication(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginReplication(0, 3, 2); err == nil {
		t.Fatal("cap overshoot accepted")
	}
	// An uncapped reservation still works.
	if err := m.BeginReplication(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	// Abort frees a slot under the cap.
	m.EndReplication(0, 3, false)
	m.EndReplication(0, 2, false)
	if err := m.BeginReplication(0, 4, 2); err != nil {
		t.Fatalf("reservation after aborts refused: %v", err)
	}
}

func TestEndReplicationWithoutBegin(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	if err := m.EndReplication(0, 1, true); err == nil {
		t.Fatal("EndReplication without reservation accepted")
	}
}

func TestConcurrentReservationsRespectCap(t *testing.T) {
	m := New()
	m.RegisterRM(info(1), []ids.FileID{0})
	for id := ids.RMID(2); id <= 17; id++ {
		m.RegisterRM(info(id), nil)
	}
	const cap = 4
	done := make(chan bool, 16)
	for id := ids.RMID(2); id <= 17; id++ {
		id := id
		go func() {
			done <- m.BeginReplication(0, id, cap) == nil
		}()
	}
	won := 0
	for i := 0; i < 16; i++ {
		if <-done {
			won++
		}
	}
	// Exactly cap−1 reservations may join the single committed replica.
	if won != cap-1 {
		t.Fatalf("%d concurrent reservations succeeded, want %d", won, cap-1)
	}
	if got := m.ReplicaCount(0); got != cap {
		t.Fatalf("ReplicaCount = %d, want the cap %d", got, cap)
	}
}

func TestShardedPendingSemantics(t *testing.T) {
	m := NewSharded(3)
	m.RegisterRM(info(1), []ids.FileID{0, 1, 2})
	m.RegisterRM(info(2), nil)
	for f := ids.FileID(0); f < 3; f++ {
		if err := m.BeginReplication(f, 2, 2); err != nil {
			t.Fatalf("file %v: %v", f, err)
		}
		if got := m.ReplicaCount(f); got != 2 {
			t.Fatalf("file %v count %d", f, got)
		}
		if err := m.EndReplication(f, 2, true); err != nil {
			t.Fatalf("file %v commit: %v", f, err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
