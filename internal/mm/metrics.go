package mm

import (
	"dfsqos/internal/telemetry"
)

// Metrics is the Metadata Manager's telemetry surface: the size and
// health of the global resource list (the liveness layer's live-RM gauge
// is the headline number) plus the reconciliation and heartbeat
// counters. Nil means no-op, so the DES and pre-liveness deployments pay
// a few uncollected atomic ops and nothing else.
type Metrics struct {
	// RegisteredRMs gauges the resource-list size including dead entries
	// (dfsqos_mm_registered_rms).
	RegisteredRMs *telemetry.Gauge
	// LiveRMs gauges the RMs currently within their liveness window
	// (dfsqos_mm_live_rms). With liveness disabled it equals
	// RegisteredRMs.
	LiveRMs *telemetry.Gauge
	// Heartbeats counts accepted liveness beacons
	// (dfsqos_mm_heartbeats_total).
	Heartbeats *telemetry.Counter
	// Deaths counts RMs observed crossing their miss threshold
	// (dfsqos_mm_rm_transitions_total{direction="dead"}).
	Deaths *telemetry.Counter
	// Revivals counts dead RMs healed by a heartbeat or re-registration
	// (dfsqos_mm_rm_transitions_total{direction="live"}).
	Revivals *telemetry.Counter
	// ReconciledReplicas counts stale replica-map entries pruned during
	// RM re-registration (dfsqos_mm_reconciled_replicas_total).
	ReconciledReplicas *telemetry.Counter

	// Shard-group telemetry (inert on a single-MM deployment).

	// LiveShards gauges the metadata shards currently considered live
	// (dfsqos_mm_live_shards). Equals the shard count until a shard dies.
	LiveShards *telemetry.Gauge
	// ShardDeaths counts shards observed crossing their beat deadline or
	// killed outright (dfsqos_mm_shard_transitions_total{direction="dead"}).
	ShardDeaths *telemetry.Counter
	// ShardRevivals counts dead shards healed by a beat or revive
	// (dfsqos_mm_shard_transitions_total{direction="live"}).
	ShardRevivals *telemetry.Counter
	// ShardBeats counts shard-to-shard liveness beacons accepted
	// (dfsqos_mm_shard_beats_total).
	ShardBeats *telemetry.Counter
	// ShardMirrorsOK / ShardMirrorsFailed count replica-map mutations
	// mirrored to successor shards, by outcome
	// (dfsqos_mm_shard_mirrors_total{outcome="ok"|"error"}).
	ShardMirrorsOK     *telemetry.Counter
	ShardMirrorsFailed *telemetry.Counter
	// HandoffTakeover / HandoffHeal count replica-map entries moved by the
	// shard handoff protocol, by direction: "takeover" re-replicates a dead
	// shard's keyspace to its successor, "heal" pushes it back after
	// revival (dfsqos_mm_shard_handoff_entries_total{direction}).
	HandoffTakeover *telemetry.Counter
	HandoffHeal     *telemetry.Counter
}

// NewMetrics registers the MM metric families on reg (nil reg yields a
// live no-op sink).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	transitions := reg.NewCounterVec("dfsqos_mm_rm_transitions_total",
		"RM liveness transitions observed by the MM, by direction.", "direction")
	shardTransitions := reg.NewCounterVec("dfsqos_mm_shard_transitions_total",
		"MM shard liveness transitions observed by the shard group, by direction.", "direction")
	mirrors := reg.NewCounterVec("dfsqos_mm_shard_mirrors_total",
		"Replica-map mutations mirrored to successor shards, by outcome.", "outcome")
	handoff := reg.NewCounterVec("dfsqos_mm_shard_handoff_entries_total",
		"Replica-map entries moved by the shard handoff protocol, by direction.", "direction")
	return &Metrics{
		RegisteredRMs: reg.NewGauge("dfsqos_mm_registered_rms",
			"RMs in the global resource list, live or dead."),
		LiveRMs: reg.NewGauge("dfsqos_mm_live_rms",
			"Registered RMs currently within their liveness window."),
		Heartbeats: reg.NewCounter("dfsqos_mm_heartbeats_total",
			"Liveness beacons accepted from registered RMs."),
		Deaths:   transitions.With("dead"),
		Revivals: transitions.With("live"),
		ReconciledReplicas: reg.NewCounter("dfsqos_mm_reconciled_replicas_total",
			"Stale replica-map entries pruned during RM re-registration."),
		LiveShards: reg.NewGauge("dfsqos_mm_live_shards",
			"Metadata shards currently within their liveness window."),
		ShardDeaths:   shardTransitions.With("dead"),
		ShardRevivals: shardTransitions.With("live"),
		ShardBeats: reg.NewCounter("dfsqos_mm_shard_beats_total",
			"Shard-to-shard liveness beacons accepted."),
		ShardMirrorsOK:     mirrors.With("ok"),
		ShardMirrorsFailed: mirrors.With("error"),
		HandoffTakeover:    handoff.With("takeover"),
		HandoffHeal:        handoff.With("heal"),
	}
}
