package mm

import (
	"fmt"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
)

// ShardedManager is a distributed Metadata Manager: the file → replica map
// is partitioned across shards by consistent hashing, while the (small)
// global resource list is replicated to every shard so any shard can
// answer "which RMs exist" and "which RMs lack a replica of file f"
// locally. This is the DHT design the paper points to for scaling past a
// single MM; with one shard it degenerates to exactly the single manager.
//
// Each shard is a full *Manager, so shard-local invariants (duplicate
// replicas, last-replica protection) are enforced by the same code the
// single-MM deployment runs.
type ShardedManager struct {
	ring   *Ring
	shards []*Manager
}

// NewSharded returns a distributed manager over n shards.
func NewSharded(n int) *ShardedManager {
	ring := NewRing(n)
	shards := make([]*Manager, n)
	for i := range shards {
		shards[i] = New()
	}
	return &ShardedManager{ring: ring, shards: shards}
}

// NumShards returns the shard count.
func (m *ShardedManager) NumShards() int { return len(m.shards) }

// Shard exposes one shard (diagnostics and tests).
func (m *ShardedManager) Shard(i int) *Manager { return m.shards[i] }

// shardFor routes a file to its owning shard.
func (m *ShardedManager) shardFor(file ids.FileID) *Manager {
	return m.shards[m.ring.OwnerOfFile(int64(file))]
}

// RegisterRM implements ecnp.Mapper: the RM info replicates to every
// shard; each reported file lands only on its owner shard.
func (m *ShardedManager) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	perShard := make([][]ids.FileID, len(m.shards))
	for _, f := range files {
		s := m.ring.OwnerOfFile(int64(f))
		perShard[s] = append(perShard[s], f)
	}
	for i, shard := range m.shards {
		if err := shard.RegisterRM(info, perShard[i]); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
	}
	return nil
}

// Lookup implements ecnp.Mapper.
func (m *ShardedManager) Lookup(file ids.FileID) []ids.RMID {
	return m.shardFor(file).Lookup(file)
}

// RMsWithout implements ecnp.Mapper.
func (m *ShardedManager) RMsWithout(file ids.FileID) []ids.RMID {
	return m.shardFor(file).RMsWithout(file)
}

// AddReplica implements ecnp.Mapper.
func (m *ShardedManager) AddReplica(file ids.FileID, rm ids.RMID) error {
	return m.shardFor(file).AddReplica(file, rm)
}

// RemoveReplica implements ecnp.Mapper.
func (m *ShardedManager) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	return m.shardFor(file).RemoveReplica(file, rm)
}

// BeginReplication implements ecnp.Mapper.
func (m *ShardedManager) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	return m.shardFor(file).BeginReplication(file, rm, maxTotal)
}

// EndReplication implements ecnp.Mapper.
func (m *ShardedManager) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	return m.shardFor(file).EndReplication(file, rm, commit)
}

// ReplicaCount implements ecnp.Mapper.
func (m *ShardedManager) ReplicaCount(file ids.FileID) int {
	return m.shardFor(file).ReplicaCount(file)
}

// RMs implements ecnp.Mapper. The resource list is replicated, so any
// shard can answer; shard 0 is canonical.
func (m *ShardedManager) RMs() []ecnp.RMInfo {
	return m.shards[0].RMs()
}

// AllRMs returns every registered RM regardless of liveness (shard 0 is
// canonical).
func (m *ShardedManager) AllRMs() []ecnp.RMInfo {
	return m.shards[0].AllRMs()
}

// SetLiveness arms failure detection on every shard (the resource list,
// and therefore the liveness table, is replicated).
func (m *ShardedManager) SetLiveness(cfg LivenessConfig) {
	for _, shard := range m.shards {
		shard.SetLiveness(cfg)
	}
}

// SetClock overrides the wall-clock source on every shard (tests).
func (m *ShardedManager) SetClock(now func() time.Time) {
	for _, shard := range m.shards {
		shard.SetClock(now)
	}
}

// SetMetrics routes MM telemetry. Shard 0 carries the gauges (the
// resource list is replicated, so any shard's view is canonical); the
// other shards keep no-op sinks so per-incident counters are not
// multiplied by the shard count.
func (m *ShardedManager) SetMetrics(met *Metrics) {
	m.shards[0].SetMetrics(met)
}

// Heartbeat fans an RM's liveness beacon to every shard so each replica
// of the resource list heals and expires in step.
func (m *ShardedManager) Heartbeat(id ids.RMID) error {
	for i, shard := range m.shards {
		if err := shard.Heartbeat(id); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
	}
	return nil
}

// Epoch returns id's liveness epoch (shard 0 is canonical).
func (m *ShardedManager) Epoch(id ids.RMID) uint64 { return m.shards[0].Epoch(id) }

// LiveCount returns the live-RM count (shard 0 is canonical).
func (m *ShardedManager) LiveCount() int { return m.shards[0].LiveCount() }

// Alive reports shard 0's view of id's liveness.
func (m *ShardedManager) Alive(id ids.RMID) bool { return m.shards[0].Alive(id) }

// FilesOn merges the per-shard file lists of one RM.
func (m *ShardedManager) FilesOn(rm ids.RMID) []ids.FileID {
	var out []ids.FileID
	for _, shard := range m.shards {
		out = append(out, shard.FilesOn(rm)...)
	}
	sortFiles(out)
	return out
}

// Validate checks every shard's replica-map invariants plus the
// cross-shard invariant that all shards agree on the resource list.
func (m *ShardedManager) Validate() error {
	canonical := m.shards[0].RMs()
	for i, shard := range m.shards {
		if err := shard.Validate(); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
		rms := shard.RMs()
		if len(rms) != len(canonical) {
			return fmt.Errorf("mm: shard %d has %d RMs, shard 0 has %d", i, len(rms), len(canonical))
		}
		for j := range rms {
			if rms[j] != canonical[j] {
				return fmt.Errorf("mm: shard %d resource list diverges at %v", i, rms[j].ID)
			}
		}
	}
	return nil
}

func sortFiles(s []ids.FileID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

var _ ecnp.Mapper = (*ShardedManager)(nil)
