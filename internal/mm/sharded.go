package mm

import (
	"fmt"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
)

// ShardedManager is a distributed Metadata Manager: the file → replica map
// is partitioned across shards by consistent hashing, while the (small)
// global resource list is replicated to every shard so any shard can
// answer "which RMs exist" and "which RMs lack a replica of file f"
// locally. This is the DHT design the paper points to for scaling past a
// single MM; with one shard it degenerates to exactly the single manager.
//
// With a replication factor R > 1 each file's mapping is owned by its
// primary shard (the ring successor) and mirrored to the next R-1
// distinct shards walking the ring, so the group survives the death of
// any R-1 shards: writes apply to every live owner in ring-successor
// order, reads come from the first live owner. KillShard / ReviveShard
// model a shard crash; a kill triggers the takeover handoff (the dead
// shard's keyspace re-replicates from surviving owners to the next
// successor beyond the owner set) and a revival triggers the heal
// handoff (the keyspace pushes back, bumping the shard's revival epoch).
// The live deployment drives the same protocol over TCP
// (internal/live's shard group); this in-process form backs the DES and
// the single-binary mmd.
//
// Each shard is a full *Manager, so shard-local invariants (duplicate
// replicas, last-replica protection) are enforced by the same code the
// single-MM deployment runs.
type ShardedManager struct {
	ring   *Ring
	shards []*Manager
	rep    int
	health *ShardHealth
	met    *Metrics
}

// NewSharded returns a distributed manager over n shards with no
// metadata replication (R = 1), the pre-replication behavior.
func NewSharded(n int) *ShardedManager {
	return NewShardedReplicated(n, 1)
}

// NewShardedReplicated returns a distributed manager over n shards with
// each file's mapping replicated to r distinct shards (clamped to [1, n]).
func NewShardedReplicated(n, r int) *ShardedManager {
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	ring := NewRing(n)
	shards := make([]*Manager, n)
	for i := range shards {
		shards[i] = New()
	}
	return &ShardedManager{
		ring:   ring,
		shards: shards,
		rep:    r,
		health: NewShardHealth(n, LivenessConfig{}),
		met:    NewMetrics(nil),
	}
}

// NumShards returns the shard count.
func (m *ShardedManager) NumShards() int { return len(m.shards) }

// Replication returns the metadata replication factor R.
func (m *ShardedManager) Replication() int { return m.rep }

// Shard exposes one shard (diagnostics and tests).
func (m *ShardedManager) Shard(i int) *Manager { return m.shards[i] }

// Health exposes the shard liveness table (diagnostics and tests).
func (m *ShardedManager) Health() *ShardHealth { return m.health }

// ownersOf returns the shards owning file's mapping, primary first, in
// ring-successor order.
func (m *ShardedManager) ownersOf(file ids.FileID) []int {
	return m.ring.SuccessorsOfFile(int64(file), m.rep)
}

// readShard routes a read to the first live owner of file; nil when the
// whole owner set is dead (the mapping is unreachable until a revival).
func (m *ShardedManager) readShard(file ids.FileID) *Manager {
	for _, s := range m.ownersOf(file) {
		if m.health.Alive(s) {
			return m.shards[s]
		}
	}
	return nil
}

// write applies op to every live owner of file in ring-successor order —
// the first live owner validates (its error aborts the write), the rest
// mirror it. Mirror application is expected to succeed since every owner
// holds an identical replica; a mirror failure is counted and surfaced.
func (m *ShardedManager) write(file ids.FileID, op func(*Manager) error) error {
	applied := 0
	for _, s := range m.ownersOf(file) {
		if !m.health.Alive(s) {
			continue
		}
		if err := op(m.shards[s]); err != nil {
			if applied > 0 {
				m.met.ShardMirrorsFailed.Inc()
				return fmt.Errorf("mm: shard %d mirror: %w", s, err)
			}
			return err
		}
		if applied > 0 {
			m.met.ShardMirrorsOK.Inc()
		}
		applied++
	}
	if applied == 0 {
		return fmt.Errorf("mm: no live shard owns %v", file)
	}
	return nil
}

// liveShards returns the live shard indices in ascending order.
func (m *ShardedManager) liveShards() []int {
	out := make([]int, 0, len(m.shards))
	for i := range m.shards {
		if m.health.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// canonical returns the lowest-index live shard, the authority for the
// replicated resource list (shard 0 while everything is up).
func (m *ShardedManager) canonical() *Manager {
	for i := range m.shards {
		if m.health.Alive(i) {
			return m.shards[i]
		}
	}
	return m.shards[0]
}

// RegisterRM implements ecnp.Mapper: the RM info replicates to every live
// shard; each reported file lands on every live member of its owner set.
// Dead shards miss the update and reconverge through the heal handoff on
// revival.
func (m *ShardedManager) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	perShard := make([][]ids.FileID, len(m.shards))
	for _, f := range files {
		for _, s := range m.ownersOf(f) {
			perShard[s] = append(perShard[s], f)
		}
	}
	for _, i := range m.liveShards() {
		if err := m.shards[i].RegisterRM(info, perShard[i]); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
	}
	return nil
}

// Lookup implements ecnp.Mapper. A fully-dead owner set answers empty —
// the mapping is unreachable until a shard revives.
func (m *ShardedManager) Lookup(file ids.FileID) []ids.RMID {
	s := m.readShard(file)
	if s == nil {
		return nil
	}
	return s.Lookup(file)
}

// RMsWithout implements ecnp.Mapper.
func (m *ShardedManager) RMsWithout(file ids.FileID) []ids.RMID {
	s := m.readShard(file)
	if s == nil {
		return nil
	}
	return s.RMsWithout(file)
}

// AddReplica implements ecnp.Mapper.
func (m *ShardedManager) AddReplica(file ids.FileID, rm ids.RMID) error {
	return m.write(file, func(s *Manager) error { return s.AddReplica(file, rm) })
}

// RemoveReplica implements ecnp.Mapper.
func (m *ShardedManager) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	return m.write(file, func(s *Manager) error { return s.RemoveReplica(file, rm) })
}

// BeginReplication implements ecnp.Mapper.
func (m *ShardedManager) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	return m.write(file, func(s *Manager) error { return s.BeginReplication(file, rm, maxTotal) })
}

// EndReplication implements ecnp.Mapper.
func (m *ShardedManager) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	return m.write(file, func(s *Manager) error { return s.EndReplication(file, rm, commit) })
}

// ReplicaCount implements ecnp.Mapper.
func (m *ShardedManager) ReplicaCount(file ids.FileID) int {
	s := m.readShard(file)
	if s == nil {
		return 0
	}
	return s.ReplicaCount(file)
}

// RMs implements ecnp.Mapper. The resource list is replicated, so the
// lowest-index live shard is canonical.
func (m *ShardedManager) RMs() []ecnp.RMInfo {
	return m.canonical().RMs()
}

// AllRMs returns every registered RM regardless of liveness (lowest-index
// live shard is canonical).
func (m *ShardedManager) AllRMs() []ecnp.RMInfo {
	return m.canonical().AllRMs()
}

// SetLiveness arms RM failure detection on every shard (the resource
// list, and therefore the liveness table, is replicated).
func (m *ShardedManager) SetLiveness(cfg LivenessConfig) {
	for _, shard := range m.shards {
		shard.SetLiveness(cfg)
	}
}

// SetClock overrides the wall-clock source on every shard and on the
// shard liveness table (tests).
func (m *ShardedManager) SetClock(now func() time.Time) {
	for _, shard := range m.shards {
		shard.SetClock(now)
	}
	m.health.SetClock(now)
}

// SetMetrics routes MM telemetry. Shard 0 carries the RM gauges (the
// resource list is replicated, so any shard's view is canonical); the
// other shards keep no-op sinks so per-incident counters are not
// multiplied by the shard count. Shard-group counters (mirrors, handoffs,
// transitions) live on the group itself.
func (m *ShardedManager) SetMetrics(met *Metrics) {
	if met == nil {
		met = NewMetrics(nil)
	}
	m.met = met
	m.shards[0].SetMetrics(met)
	m.health.SetMetrics(met)
}

// Heartbeat fans an RM's liveness beacon to every live shard so each
// replica of the resource list heals and expires in step. Dead shards
// are skipped — their stale tables rebuild on revival via the heal
// handoff and the RM re-registration machinery.
func (m *ShardedManager) Heartbeat(id ids.RMID) error {
	for _, i := range m.liveShards() {
		if err := m.shards[i].Heartbeat(id); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
	}
	return nil
}

// Epoch returns id's liveness epoch (lowest-index live shard is canonical).
func (m *ShardedManager) Epoch(id ids.RMID) uint64 { return m.canonical().Epoch(id) }

// LiveCount returns the live-RM count (lowest-index live shard is canonical).
func (m *ShardedManager) LiveCount() int { return m.canonical().LiveCount() }

// Alive reports the canonical shard's view of id's liveness.
func (m *ShardedManager) Alive(id ids.RMID) bool { return m.canonical().Alive(id) }

// KillShard marks shard i dead and runs the takeover handoff: every
// mapping i owned re-replicates from a surviving owner to the next live
// successor beyond the owner set, restoring R live replicas (with R = 1
// there is no surviving owner, so the keyspace is unreachable until the
// shard revives — the single-MM failure mode, now confined to 1/N of
// files). It returns the number of replica entries moved. Killing a
// dead shard is a no-op.
func (m *ShardedManager) KillShard(i int) int {
	if !m.health.SetDown(i, true) {
		return 0
	}
	moved := m.handoffDead(i)
	m.met.HandoffTakeover.Add(uint64(moved))
	return moved
}

// ReviveShard brings shard i back and runs the heal handoff: mappings i
// owns flow back from live owners (including any takeover target), so
// the revived shard serves its keyspace again. Reviving a live shard is
// a no-op. It returns the number of replica entries healed.
func (m *ShardedManager) ReviveShard(i int) int {
	if !m.health.SetDown(i, false) {
		return 0
	}
	healed := m.heal(i)
	m.met.HandoffHeal.Add(uint64(healed))
	return healed
}

// ShardAlive reports whether shard i is live.
func (m *ShardedManager) ShardAlive(i int) bool { return m.health.Alive(i) }

// LiveShardCount returns the number of live shards.
func (m *ShardedManager) LiveShardCount() int { return m.health.LiveCount() }

// ShardEpoch returns shard i's revival epoch.
func (m *ShardedManager) ShardEpoch(i int) uint64 { return m.health.Epoch(i) }

// handoffDead re-replicates dead shard i's keyspace: for every file whose
// owner set contains i and that survives on a live owner, the mapping is
// adopted by the first live shard beyond the owner set. Returns replica
// entries copied.
func (m *ShardedManager) handoffDead(dead int) int {
	moved := 0
	for _, src := range m.liveShards() {
		for _, f := range m.shards[src].Files() {
			owners := m.ownersOf(f)
			if !containsShard(owners, dead) || !containsShard(owners, src) {
				continue
			}
			target := m.takeoverTarget(f, owners)
			if target < 0 {
				continue
			}
			added, err := m.adopt(target, src, f)
			if err != nil {
				m.met.ShardMirrorsFailed.Inc()
				continue
			}
			moved += added
		}
	}
	return moved
}

// takeoverTarget returns the first live shard beyond file's owner set in
// ring-successor order, or -1 when every non-owner shard is dead.
func (m *ShardedManager) takeoverTarget(f ids.FileID, owners []int) int {
	for _, s := range m.ring.SuccessorsOfFile(int64(f), len(m.shards)) {
		if containsShard(owners, s) {
			continue
		}
		if m.health.Alive(s) {
			return s
		}
	}
	return -1
}

// heal pushes revived shard i's keyspace back: every mapping whose owner
// set contains i that lives on another live shard is adopted by i. RMs
// the revived shard never saw (registered while it was down) are copied
// from the canonical resource list first — only unknown ones, since
// re-registering a known RM with an empty file list would prune its
// replicas. Returns replica entries copied.
func (m *ShardedManager) heal(revived int) int {
	dst := m.shards[revived]
	for _, info := range m.canonical().AllRMs() {
		if _, known := dst.RM(info.ID); !known {
			if err := dst.RegisterRM(info, nil); err != nil {
				m.met.ShardMirrorsFailed.Inc()
			}
		}
	}
	healed := 0
	for _, src := range m.liveShards() {
		if src == revived {
			continue
		}
		for _, f := range m.shards[src].Files() {
			if !containsShard(m.ownersOf(f), revived) {
				continue
			}
			added, err := m.adopt(revived, src, f)
			if err != nil {
				m.met.ShardMirrorsFailed.Inc()
				continue
			}
			healed += added
		}
	}
	return healed
}

// adopt copies file's mapping from shard src into shard dst,
// idempotently, registering any holder dst does not know yet.
func (m *ShardedManager) adopt(dst, src int, f ids.FileID) (int, error) {
	holders := m.shards[src].Replicas(f)
	for _, rm := range holders {
		if _, known := m.shards[dst].RM(rm); known {
			continue
		}
		if info, ok := m.shards[src].RM(rm); ok {
			if err := m.shards[dst].RegisterRM(info, nil); err != nil {
				return 0, err
			}
		}
	}
	return m.shards[dst].AdoptReplicas(f, holders)
}

func containsShard(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// FilesOn merges the per-shard file lists of one RM (replicated mappings
// appear once).
func (m *ShardedManager) FilesOn(rm ids.RMID) []ids.FileID {
	var out []ids.FileID
	for _, shard := range m.shards {
		out = append(out, shard.FilesOn(rm)...)
	}
	sortFiles(out)
	return dedupFiles(out)
}

// Validate checks every live shard's replica-map invariants plus the
// cross-shard invariants that live shards agree on the resource list and
// that every live member of a file's owner set agrees on its holders.
// Dead shards are exempt: their staleness is what the heal handoff exists
// to fix.
func (m *ShardedManager) Validate() error {
	live := m.liveShards()
	if len(live) == 0 {
		return fmt.Errorf("mm: no live shards")
	}
	canonical := m.shards[live[0]].RMs()
	for _, i := range live {
		shard := m.shards[i]
		if err := shard.Validate(); err != nil {
			return fmt.Errorf("mm: shard %d: %w", i, err)
		}
		rms := shard.RMs()
		if len(rms) != len(canonical) {
			return fmt.Errorf("mm: shard %d has %d RMs, shard %d has %d",
				i, len(rms), live[0], len(canonical))
		}
		for j := range rms {
			if rms[j] != canonical[j] {
				return fmt.Errorf("mm: shard %d resource list diverges at %v", i, rms[j].ID)
			}
		}
		for _, f := range shard.Files() {
			owners := m.ownersOf(f)
			if !containsShard(owners, i) {
				continue // lingering takeover copy; harmless, reads route to owners
			}
			want := shard.Replicas(f)
			for _, o := range owners {
				if o == i || !m.health.Alive(o) {
					continue
				}
				got := m.shards[o].Replicas(f)
				if !equalRMs(want, got) {
					return fmt.Errorf("mm: shards %d and %d disagree on %v holders", i, o, f)
				}
			}
		}
	}
	return nil
}

func equalRMs(a, b []ids.RMID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortFiles(s []ids.FileID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func dedupFiles(s []ids.FileID) []ids.FileID {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, f := range s[1:] {
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

var _ ecnp.Mapper = (*ShardedManager)(nil)
