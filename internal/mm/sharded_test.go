package mm

import (
	"testing"
	"testing/quick"

	"dfsqos/internal/ids"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	a := NewRing(4)
	b := NewRing(4)
	counts := make([]int, 4)
	for f := int64(0); f < 4000; f++ {
		sa, sb := a.OwnerOfFile(f), b.OwnerOfFile(f)
		if sa != sb {
			t.Fatalf("rings disagree on file %d: %d vs %d", f, sa, sb)
		}
		counts[sa]++
	}
	for s, c := range counts {
		// 4000 keys over 4 shards: expect ~1000 each; vnodes keep the
		// imbalance bounded.
		if c < 500 || c > 1700 {
			t.Errorf("shard %d owns %d of 4000 keys; ring unbalanced: %v", s, c, counts)
		}
	}
}

func TestRingSingleShardOwnsAll(t *testing.T) {
	r := NewRing(1)
	for f := int64(0); f < 100; f++ {
		if r.OwnerOfFile(f) != 0 {
			t.Fatal("single-shard ring routed away from shard 0")
		}
	}
}

func TestRingPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestShardedRegisterPartitionsFiles(t *testing.T) {
	m := NewSharded(4)
	files := make([]ids.FileID, 100)
	for i := range files {
		files[i] = ids.FileID(i)
	}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	// Every file is findable through the sharded front.
	for _, f := range files {
		holders := m.Lookup(f)
		if len(holders) != 1 || holders[0] != 1 {
			t.Fatalf("Lookup(%v) = %v", f, holders)
		}
	}
	// Files are spread across shards, not piled on one.
	nonEmpty := 0
	total := 0
	for i := 0; i < m.NumShards(); i++ {
		n := len(m.Shard(i).FilesOn(1))
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != 100 {
		t.Fatalf("shards hold %d files total, want 100", total)
	}
	if nonEmpty < 3 {
		t.Fatalf("only %d shards hold files; partitioning broken", nonEmpty)
	}
	// The resource list is replicated to every shard.
	for i := 0; i < m.NumShards(); i++ {
		if len(m.Shard(i).RMs()) != 1 {
			t.Fatalf("shard %d missing the RM registration", i)
		}
	}
}

func TestShardedMapperSemanticsMatchSingle(t *testing.T) {
	single := New()
	sharded := NewSharded(3)
	setup := func(reg func(id ids.RMID, files []ids.FileID)) {
		reg(1, []ids.FileID{0, 1, 2})
		reg(2, []ids.FileID{1, 2, 3})
		reg(3, []ids.FileID{0, 3})
	}
	setup(func(id ids.RMID, files []ids.FileID) { single.RegisterRM(info(id), files) })
	setup(func(id ids.RMID, files []ids.FileID) { sharded.RegisterRM(info(id), files) })

	for f := ids.FileID(0); f < 5; f++ {
		a, b := single.Lookup(f), sharded.Lookup(f)
		if len(a) != len(b) {
			t.Fatalf("Lookup(%v): single %v, sharded %v", f, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Lookup(%v): single %v, sharded %v", f, a, b)
			}
		}
		if single.ReplicaCount(f) != sharded.ReplicaCount(f) {
			t.Fatalf("ReplicaCount(%v) differs", f)
		}
		wa, wb := single.RMsWithout(f), sharded.RMsWithout(f)
		if len(wa) != len(wb) {
			t.Fatalf("RMsWithout(%v): single %v, sharded %v", f, wa, wb)
		}
	}
	fa, fb := single.FilesOn(2), sharded.FilesOn(2)
	if len(fa) != len(fb) {
		t.Fatalf("FilesOn: single %v, sharded %v", fa, fb)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("FilesOn order: single %v, sharded %v", fa, fb)
		}
	}
}

func TestShardedAddRemoveReplica(t *testing.T) {
	m := NewSharded(2)
	m.RegisterRM(info(1), []ids.FileID{7})
	m.RegisterRM(info(2), nil)
	if err := m.AddReplica(7, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddReplica(7, 2); err == nil {
		t.Fatal("duplicate AddReplica accepted")
	}
	if got := m.ReplicaCount(7); got != 2 {
		t.Fatalf("ReplicaCount = %d", got)
	}
	if err := m.RemoveReplica(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveReplica(7, 2); err == nil {
		t.Fatal("last replica removed")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedValidateCatchesDivergentResourceLists(t *testing.T) {
	m := NewSharded(2)
	m.RegisterRM(info(1), nil)
	// Corrupt one shard directly: register an RM only there.
	m.Shard(1).RegisterRM(info(9), nil)
	if err := m.Validate(); err == nil {
		t.Fatal("divergent resource lists passed validation")
	}
}

// Property: for any file set, the sharded lookup agrees with a single
// manager given identical registrations.
func TestShardedEquivalenceProperty(t *testing.T) {
	f := func(rawFiles []uint16, shardsRaw uint8) bool {
		shards := int(shardsRaw%6) + 1
		single := New()
		sharded := NewSharded(shards)
		files := make([]ids.FileID, 0, len(rawFiles))
		for _, rf := range rawFiles {
			files = append(files, ids.FileID(rf%500))
		}
		// Dedup: RegisterRM would reject duplicates within one call.
		seen := map[ids.FileID]bool{}
		uniq := files[:0]
		for _, f := range files {
			if !seen[f] {
				seen[f] = true
				uniq = append(uniq, f)
			}
		}
		single.RegisterRM(info(1), uniq)
		sharded.RegisterRM(info(1), uniq)
		for _, f := range uniq {
			if single.ReplicaCount(f) != sharded.ReplicaCount(f) {
				return false
			}
		}
		return sharded.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
