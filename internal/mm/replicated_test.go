package mm

import (
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
)

// TestReplicatedWritesMirrorToOwners checks the R-way write path: every
// registered mapping lands on each live member of its owner set, reads
// come from the first live owner, and the mirror counter ticks.
func TestReplicatedWritesMirrorToOwners(t *testing.T) {
	m := NewShardedReplicated(3, 2)
	reg := telemetry.NewRegistry()
	m.SetMetrics(NewMetrics(reg))
	files := make([]ids.FileID, 60)
	for i := range files {
		files[i] = ids.FileID(i)
	}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		owners := m.ownersOf(f)
		if len(owners) != 2 {
			t.Fatalf("owner set of %v = %v, want 2 shards", f, owners)
		}
		for _, o := range owners {
			if hs := m.Shard(o).Lookup(f); len(hs) != 1 || hs[0] != 1 {
				t.Fatalf("shard %d missing mirrored mapping of %v: %v", o, f, hs)
			}
		}
		// Non-owners hold nothing: replication is R-way, not broadcast.
		for s := 0; s < m.NumShards(); s++ {
			if !containsShard(owners, s) && len(m.Shard(s).Lookup(f)) != 0 {
				t.Fatalf("non-owner shard %d holds %v", s, f)
			}
		}
	}
	// A replica-map mutation mirrors too.
	m.RegisterRM(info(2), nil)
	if err := m.AddReplica(files[0], 2); err != nil {
		t.Fatal(err)
	}
	for _, o := range m.ownersOf(files[0]) {
		if got := len(m.Shard(o).Lookup(files[0])); got != 2 {
			t.Fatalf("shard %d sees %d holders after mirrored AddReplica, want 2", o, got)
		}
	}
	if m.met.ShardMirrorsOK.Value() == 0 {
		t.Fatal("no mirror writes counted")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedKillShardFailsOver is the in-process failover drill: with
// R = 2 a dead primary's keyspace stays readable through the surviving
// owner, the takeover handoff restores a second live copy, writes keep
// mirroring, and revival heals the corpse back to full ownership.
func TestReplicatedKillShardFailsOver(t *testing.T) {
	m := NewShardedReplicated(3, 2)
	reg := telemetry.NewRegistry()
	m.SetMetrics(NewMetrics(reg))
	files := make([]ids.FileID, 90)
	for i := range files {
		files[i] = ids.FileID(i)
	}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	m.RegisterRM(info(2), nil)

	victim := m.ownersOf(files[0])[0]
	moved := m.KillShard(victim)
	if moved == 0 {
		t.Fatal("takeover handoff moved nothing")
	}
	if m.ShardAlive(victim) || m.LiveShardCount() != 2 {
		t.Fatalf("victim alive=%v live=%d after kill", m.ShardAlive(victim), m.LiveShardCount())
	}
	if m.KillShard(victim) != 0 {
		t.Fatal("re-killing a dead shard handed off again")
	}
	// Every mapping is still readable, including the victim's keyspace.
	for _, f := range files {
		if hs := m.Lookup(f); len(hs) != 1 || hs[0] != 1 {
			t.Fatalf("Lookup(%v) with shard %d dead = %v", f, victim, hs)
		}
	}
	// The takeover target now holds a live copy of each mapping whose
	// owner set lost the victim, so R live replicas survive.
	for _, f := range files {
		owners := m.ownersOf(f)
		if !containsShard(owners, victim) {
			continue
		}
		liveCopies := 0
		for s := 0; s < m.NumShards(); s++ {
			if m.ShardAlive(s) && len(m.Shard(s).Lookup(f)) > 0 {
				liveCopies++
			}
		}
		if liveCopies < 2 {
			t.Fatalf("file %v has %d live copies after takeover, want >= 2", f, liveCopies)
		}
	}
	// Writes during the outage apply to the surviving owners.
	if err := m.AddReplica(files[0], 2); err != nil {
		t.Fatalf("write during outage: %v", err)
	}
	if got := m.ReplicaCount(files[0]); got != 2 {
		t.Fatalf("ReplicaCount during outage = %d, want 2", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate during outage: %v", err)
	}
	if got := m.met.HandoffTakeover.Value(); got == 0 {
		t.Fatal("takeover entries not counted")
	}

	// Revival heals: the shard re-owns its keyspace — including the write
	// it missed — and bumps its epoch.
	healed := m.ReviveShard(victim)
	if healed == 0 {
		t.Fatal("heal handoff moved nothing")
	}
	if m.ReviveShard(victim) != 0 {
		t.Fatal("re-reviving a live shard healed again")
	}
	if m.ShardEpoch(victim) != 1 {
		t.Fatalf("victim epoch = %d, want 1", m.ShardEpoch(victim))
	}
	if hs := m.Shard(victim).Lookup(files[0]); len(hs) != 2 {
		t.Fatalf("revived shard sees %v for %v, want the missed write too", hs, files[0])
	}
	for _, f := range files {
		if !containsShard(m.ownersOf(f), victim) {
			continue
		}
		if len(m.Shard(victim).Lookup(f)) == 0 {
			t.Fatalf("revived shard still missing %v", f)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate after heal: %v", err)
	}
	if got := m.met.HandoffHeal.Value(); got == 0 {
		t.Fatal("heal entries not counted")
	}
}

// TestReplicatedHealLearnsNewRMs kills a shard, registers a new RM during
// the outage, and checks the heal handoff teaches the revived shard the
// RM it never saw — without pruning the files of RMs it already knew.
func TestReplicatedHealLearnsNewRMs(t *testing.T) {
	m := NewShardedReplicated(3, 2)
	files := []ids.FileID{0, 1, 2, 3, 4, 5, 6, 7}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	m.KillShard(2)
	if err := m.RegisterRM(info(9), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddReplica(files[0], 9); err != nil {
		t.Fatal(err)
	}
	m.ReviveShard(2)
	found := false
	for _, rm := range m.Shard(2).RMs() {
		if rm.ID == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("revived shard never learned RM 9")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestUnreplicatedKillConfinesOutage pins the R = 1 degenerate case: a
// dead shard's keyspace is unreachable (empty lookups, write errors) but
// the other shards' files are untouched — the single-MM failure mode
// confined to 1/N of the keyspace.
func TestUnreplicatedKillConfinesOutage(t *testing.T) {
	m := NewShardedReplicated(3, 1)
	files := make([]ids.FileID, 60)
	for i := range files {
		files[i] = ids.FileID(i)
	}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	if m.KillShard(0) != 0 {
		t.Fatal("R=1 kill found a surviving owner to hand off from")
	}
	for _, f := range files {
		owned := m.ownersOf(f)[0] == 0
		hs := m.Lookup(f)
		if owned && len(hs) != 0 {
			t.Fatalf("dead shard's file %v still resolves: %v", f, hs)
		}
		if !owned && len(hs) != 1 {
			t.Fatalf("survivor's file %v lost: %v", f, hs)
		}
		if owned {
			if err := m.AddReplica(f, 1); err == nil {
				t.Fatalf("write to dead keyspace of %v accepted", f)
			}
		}
	}
	// Revival restores the keyspace from... nothing to restore from at
	// R=1; the shard still holds its pre-kill state in-process.
	m.ReviveShard(0)
	for _, f := range files {
		if len(m.Lookup(f)) != 1 {
			t.Fatalf("file %v unreachable after revival", f)
		}
	}
}

// TestReplicatedFullOwnerSetDead kills both owners of a file (R = 2 of 4)
// and checks reads degrade to empty rather than panicking, then heal on
// revival.
func TestReplicatedFullOwnerSetDead(t *testing.T) {
	m := NewShardedReplicated(4, 2)
	files := make([]ids.FileID, 120)
	for i := range files {
		files[i] = ids.FileID(i)
	}
	if err := m.RegisterRM(info(1), files); err != nil {
		t.Fatal(err)
	}
	target := files[0]
	owners := m.ownersOf(target)
	// Kill the primary first (its takeover re-replicates to a live
	// non-owner), then the successor: the owner set is fully dead but the
	// takeover copy keeps the read path alive for this file.
	m.KillShard(owners[0])
	m.KillShard(owners[1])
	if hs := m.Lookup(target); len(hs) != 0 {
		// The readShard walk only consults owners; a fully-dead owner set
		// answers empty even though a takeover copy exists elsewhere.
		t.Fatalf("Lookup with whole owner set dead = %v, want empty", hs)
	}
	m.ReviveShard(owners[0])
	if hs := m.Lookup(target); len(hs) != 1 {
		t.Fatalf("Lookup after revival = %v, want 1 holder", hs)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
