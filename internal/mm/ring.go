package mm

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping file keys onto metadata shards.
// The paper runs a single MM but notes that "a distributed MM can be
// achieved by a Distributed Hash Table (DHT) as shown in [28]" (ASDF);
// Ring supplies that partitioning for ShardedManager. Each shard owns
// VirtualNodes points on the ring so key ownership stays balanced even
// with few shards, and the mapping depends only on (shard count,
// VirtualNodes) — every component computes identical routing with no
// coordination.
type Ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// VirtualNodes is the number of ring points per shard.
const VirtualNodes = 64

// NewRing builds a ring over n shards. n must be positive.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("mm: ring over %d shards", n))
	}
	points := make([]ringPoint, 0, n*VirtualNodes)
	for s := 0; s < n; s++ {
		for v := 0; v < VirtualNodes; v++ {
			points = append(points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard%d/vnode%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	return &Ring{points: points, shards: n}
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning the given key (successor point on the
// ring, wrapping at the top).
func (r *Ring) Owner(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// OwnerOfFile routes a file ID.
func (r *Ring) OwnerOfFile(file int64) int {
	return r.Owner(mix64(uint64(file)))
}

// Successors returns the n distinct shards owning the given key in ring
// order: the primary (the successor point, as Owner) followed by the next
// distinct shards walking clockwise, wrapping at the top. n is clamped to
// the shard count, so a request for more successors than shards returns
// every shard exactly once. This is the replica set of a key under
// R-way metadata replication: the first entry is the key's primary and
// the rest mirror it.
func (r *Ring) Successors(key uint64, n int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n <= 0 {
		return nil
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// SuccessorsOfFile routes a file ID to its replica set (see Successors).
func (r *Ring) SuccessorsOfFile(file int64, n int) []int {
	return r.Successors(mix64(uint64(file)), n)
}

// Order returns every shard exactly once in ring order — the order of
// each shard's first point walking the ring from zero. Fan-out paths
// iterate shards in this order so fault-injection runs are reproducible
// under a fixed seed (map-order iteration is not).
func (r *Ring) Order() []int {
	out := make([]int, 0, r.shards)
	seen := make(map[int]bool, r.shards)
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// hash64 is FNV-1a with a splitmix finalizer.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer, giving avalanche over raw IDs.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
