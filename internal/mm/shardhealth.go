package mm

import (
	"sync"
	"time"
)

// ShardHealth tracks the liveness of the shards in a metadata shard
// group. It is the shard-plane twin of the Manager's RM liveness table
// (PR 3): a shard that has not beaten within the configured deadline is
// dead, a beat (or an explicit revive) heals it and bumps its revival
// epoch, and every transition is latched so counters fire exactly once
// per incident.
//
// Two drivers feed it. The live deployment beats through Beat from the
// wire (KindShardBeat) and detects silence with Sweep; the in-process
// group (and the DES) toggles shards directly with SetDown, which needs
// no clock at all. Both compose: an explicitly downed shard is dead
// regardless of beats, matching a partitioned-but-running process.
type ShardHealth struct {
	mu  sync.Mutex
	n   int
	cfg LivenessConfig
	now func() time.Time
	// lastBeat stamps each shard's most recent beacon; a shard never
	// beaten is alive until the first Sweep past its deadline (it gets a
	// free stamp at construction, matching the RM registration grace).
	lastBeat []time.Time
	epochs   []uint64
	deadSeen []bool
	down     []bool
	met      *Metrics
}

// NewShardHealth tracks n shards. A zero cfg disables beat-expiry: only
// explicit SetDown marks kill a shard (the in-process mode).
func NewShardHealth(n int, cfg LivenessConfig) *ShardHealth {
	h := &ShardHealth{
		n:        n,
		cfg:      cfg,
		now:      time.Now,
		lastBeat: make([]time.Time, n),
		epochs:   make([]uint64, n),
		deadSeen: make([]bool, n),
		down:     make([]bool, n),
		met:      NewMetrics(nil),
	}
	start := h.now()
	for i := range h.lastBeat {
		h.lastBeat[i] = start
	}
	h.met.LiveShards.Set(float64(n))
	return h
}

// SetClock overrides the wall-clock source (tests). nil restores time.Now.
func (h *ShardHealth) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

// SetMetrics routes shard-transition telemetry (default: no-op).
func (h *ShardHealth) SetMetrics(m *Metrics) {
	if m == nil {
		m = NewMetrics(nil)
	}
	h.mu.Lock()
	h.met = m
	h.refreshGaugeLocked()
	h.mu.Unlock()
}

// Beat records a liveness beacon from shard i and reports whether the
// beat revived a previously-dead shard (the signal the live watcher
// turns into a heal handoff). Beats never clear an explicit SetDown.
func (h *ShardHealth) Beat(i int) (revived bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= h.n {
		return false
	}
	wasDead := h.deadLocked(i, h.now())
	h.lastBeat[i] = h.now()
	if wasDead && !h.down[i] {
		h.epochs[i]++
		h.deadSeen[i] = false
		h.met.ShardRevivals.Inc()
		h.refreshGaugeLocked()
		return true
	}
	return false
}

// Stamp refreshes shard i's beacon without revival semantics: no epoch
// bump, no transition counter. A group member stamps its own slot this
// way each sweep — a running process is definitionally alive, never
// "revived", even when a stalled beat tick let its own deadline lapse.
func (h *ShardHealth) Stamp(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= h.n {
		return
	}
	h.lastBeat[i] = h.now()
	if h.deadSeen[i] && !h.down[i] {
		h.deadSeen[i] = false
		h.refreshGaugeLocked()
	}
}

// SetDown toggles shard i's explicit down mark (the in-process kill and
// revive). Reviving restores the beat stamp so beat-expiry does not
// immediately re-kill it, bumps the epoch and reports true; marking an
// already-down shard (or reviving a live one) reports false.
func (h *ShardHealth) SetDown(i int, down bool) (transitioned bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= h.n || h.down[i] == down {
		return false
	}
	h.down[i] = down
	if down {
		if !h.deadSeen[i] {
			h.deadSeen[i] = true
			h.met.ShardDeaths.Inc()
		}
	} else {
		h.lastBeat[i] = h.now()
		h.epochs[i]++
		h.deadSeen[i] = false
		h.met.ShardRevivals.Inc()
	}
	h.refreshGaugeLocked()
	return true
}

// Alive reports whether shard i is currently live.
func (h *ShardHealth) Alive(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= h.n {
		return false
	}
	return !h.deadLocked(i, h.now())
}

// deadLocked is the raw liveness predicate. Caller holds h.mu.
func (h *ShardHealth) deadLocked(i int, now time.Time) bool {
	if h.down[i] {
		return true
	}
	if !h.cfg.Enabled() {
		return false
	}
	return now.Sub(h.lastBeat[i]) > h.cfg.Deadline()
}

// Sweep latches shards that crossed their beat deadline since the last
// call and returns the newly-dead ones in ascending index order — the
// live watcher's per-tick death detector. With beat-expiry disabled it
// returns nil.
func (h *ShardHealth) Sweep() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.cfg.Enabled() {
		return nil
	}
	now := h.now()
	var newly []int
	for i := 0; i < h.n; i++ {
		if h.deadLocked(i, now) && !h.deadSeen[i] {
			h.deadSeen[i] = true
			h.met.ShardDeaths.Inc()
			newly = append(newly, i)
		}
	}
	if len(newly) > 0 {
		h.refreshGaugeLocked()
	}
	return newly
}

// Epoch returns shard i's revival epoch: how many times it has come back
// from the dead (0 for a continuously-live shard).
func (h *ShardHealth) Epoch(i int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= h.n {
		return 0
	}
	return h.epochs[i]
}

// LiveCount returns the number of currently-live shards.
func (h *ShardHealth) LiveCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.liveCountLocked(h.now())
}

func (h *ShardHealth) liveCountLocked(now time.Time) int {
	live := 0
	for i := 0; i < h.n; i++ {
		if !h.deadLocked(i, now) {
			live++
		}
	}
	return live
}

// refreshGaugeLocked re-derives the live-shards gauge. Caller holds h.mu.
func (h *ShardHealth) refreshGaugeLocked() {
	h.met.LiveShards.Set(float64(h.liveCountLocked(h.now())))
}
