package mm

import "testing"

// TestRingSingleShardSuccessors pins the degenerate ring: one shard owns
// every key, and any successor-set request collapses to [0] no matter how
// many replicas are asked for.
func TestRingSingleShardSuccessors(t *testing.T) {
	r := NewRing(1)
	for f := int64(0); f < 50; f++ {
		for n := 1; n <= 5; n++ {
			succ := r.SuccessorsOfFile(f, n)
			if len(succ) != 1 || succ[0] != 0 {
				t.Fatalf("SuccessorsOfFile(%d, %d) = %v, want [0]", f, n, succ)
			}
		}
	}
	if got := r.SuccessorsOfFile(1, 0); got != nil {
		t.Fatalf("Successors with n=0 = %v, want nil", got)
	}
	if order := r.Order(); len(order) != 1 || order[0] != 0 {
		t.Fatalf("Order() = %v, want [0]", order)
	}
}

// TestRingRedistributionBound is the consistent-hashing contract: growing
// the ring from n to n+1 shards moves only the keys the new shard now
// owns — roughly 1/(n+1) of them — and every moved key moves TO the new
// shard, never between survivors. Shrinking is the mirror image: only the
// departed shard's keys move. Without this bound a membership change
// would re-replicate nearly the whole keyspace instead of one slice.
func TestRingRedistributionBound(t *testing.T) {
	const keys = 8000
	small, big := NewRing(4), NewRing(5)
	moved := 0
	for f := int64(0); f < keys; f++ {
		before, after := small.OwnerOfFile(f), big.OwnerOfFile(f)
		if before == after {
			continue
		}
		moved++
		// Join: a key may only move to the joining shard (index 4).
		if after != 4 {
			t.Fatalf("file %d moved %d -> %d on join; only moves to the new shard are allowed", f, before, after)
		}
	}
	// Expect ~keys/5 moved; allow 2x slack for vnode imbalance, and
	// require at least some movement (the new shard must own keys).
	if moved == 0 || moved > 2*keys/5 {
		t.Fatalf("join moved %d of %d keys, want (0, %d]", moved, keys, 2*keys/5)
	}

	// Leave (5 -> 4): only keys the departed shard 4 owned may move.
	for f := int64(0); f < keys; f++ {
		before, after := big.OwnerOfFile(f), small.OwnerOfFile(f)
		if before != after && before != 4 {
			t.Fatalf("file %d moved %d -> %d on leave; only the departed shard's keys may move", f, before, after)
		}
	}
}

// TestRingSuccessorWraparound pins the top-of-ring wrap: a key above every
// ring point owns the same successor walk as key zero, and the walk always
// yields distinct shards with the primary first.
func TestRingSuccessorWraparound(t *testing.T) {
	r := NewRing(3)
	top := r.Successors(^uint64(0), 3)
	zero := r.Successors(0, 3)
	if len(top) != 3 || len(zero) != 3 {
		t.Fatalf("successor walks truncated: top=%v zero=%v", top, zero)
	}
	for i := range top {
		if top[i] != zero[i] {
			t.Fatalf("wraparound walk %v differs from key-zero walk %v", top, zero)
		}
	}
	if top[0] != r.Owner(^uint64(0)) {
		t.Fatalf("primary %d is not Owner %d", top[0], r.Owner(^uint64(0)))
	}
}

// TestRingSuccessorsDistinctAndClamped checks the replica-set shape over
// many keys: no duplicate shards, the primary leads, and asking for more
// successors than shards returns every shard exactly once.
func TestRingSuccessorsDistinctAndClamped(t *testing.T) {
	r := NewRing(4)
	for f := int64(0); f < 500; f++ {
		succ := r.SuccessorsOfFile(f, 2)
		if len(succ) != 2 || succ[0] == succ[1] {
			t.Fatalf("SuccessorsOfFile(%d, 2) = %v, want 2 distinct shards", f, succ)
		}
		if succ[0] != r.OwnerOfFile(f) {
			t.Fatalf("file %d: primary %d != owner %d", f, succ[0], r.OwnerOfFile(f))
		}
		all := r.SuccessorsOfFile(f, 9)
		if len(all) != 4 {
			t.Fatalf("over-asked successor set %v, want all 4 shards", all)
		}
		seen := map[int]bool{}
		for _, s := range all {
			if seen[s] {
				t.Fatalf("duplicate shard in successor walk %v", all)
			}
			seen[s] = true
		}
	}
}
