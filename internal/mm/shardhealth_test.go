package mm

import (
	"testing"
	"time"

	"dfsqos/internal/telemetry"
)

// TestShardHealthExplicitMode covers the clockless in-process driver:
// SetDown kills and revives, transitions latch exactly once, and revival
// bumps the epoch.
func TestShardHealthExplicitMode(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	h := NewShardHealth(3, LivenessConfig{})
	h.SetMetrics(met)

	if h.LiveCount() != 3 {
		t.Fatalf("LiveCount = %d, want 3", h.LiveCount())
	}
	if !h.SetDown(1, true) {
		t.Fatal("first SetDown(1, true) did not transition")
	}
	if h.SetDown(1, true) {
		t.Fatal("repeated SetDown(1, true) transitioned again")
	}
	if h.Alive(1) || h.LiveCount() != 2 {
		t.Fatalf("shard 1 alive=%v live=%d after kill", h.Alive(1), h.LiveCount())
	}
	// Beats never override an explicit down mark (a partitioned shard is
	// down even if its process still beacons).
	if h.Beat(1) {
		t.Fatal("beat revived an explicitly-downed shard")
	}
	if h.Alive(1) {
		t.Fatal("shard 1 alive after beat while explicitly down")
	}
	if got := met.ShardDeaths.Value(); got != 1 {
		t.Fatalf("ShardDeaths = %d, want 1", got)
	}
	if !h.SetDown(1, false) {
		t.Fatal("revive did not transition")
	}
	if !h.Alive(1) || h.Epoch(1) != 1 {
		t.Fatalf("alive=%v epoch=%d after revival, want true/1", h.Alive(1), h.Epoch(1))
	}
	if got := met.ShardRevivals.Value(); got != 1 {
		t.Fatalf("ShardRevivals = %d, want 1", got)
	}
	if got := met.LiveShards.Value(); got != 3 {
		t.Fatalf("LiveShards gauge = %v, want 3", got)
	}
	// Explicit-only mode never sweeps anything dead.
	if newly := h.Sweep(); newly != nil {
		t.Fatalf("Sweep in explicit mode = %v, want nil", newly)
	}
	// Out-of-range indices are inert.
	if h.Alive(-1) || h.Alive(3) || h.Beat(7) || h.SetDown(9, true) {
		t.Fatal("out-of-range shard index was not inert")
	}
}

// TestShardHealthBeatExpiry covers the wire driver: a shard that stops
// beating crosses its deadline, Sweep latches the death once, and the
// next beat revives it with an epoch bump.
func TestShardHealthBeatExpiry(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	cfg := LivenessConfig{HeartbeatInterval: time.Second, MissThreshold: 3}
	h := NewShardHealth(2, cfg)
	h.SetMetrics(met)
	now := time.Unix(100, 0)
	h.SetClock(func() time.Time { return now })
	// Re-stamp the construction-time grace under the fake clock.
	h.Beat(0)
	h.Beat(1)

	// Within the deadline nothing dies.
	now = now.Add(cfg.Deadline())
	if newly := h.Sweep(); newly != nil {
		t.Fatalf("Sweep before deadline = %v", newly)
	}
	// Shard 1 keeps beating; shard 0 goes silent past the deadline.
	h.Beat(1)
	now = now.Add(time.Millisecond)
	if newly := h.Sweep(); len(newly) != 1 || newly[0] != 0 {
		t.Fatalf("Sweep = %v, want [0]", newly)
	}
	if newly := h.Sweep(); newly != nil {
		t.Fatalf("death re-latched: %v", newly)
	}
	if h.Alive(0) || !h.Alive(1) {
		t.Fatalf("alive = %v/%v, want false/true", h.Alive(0), h.Alive(1))
	}
	// The returning beat revives shard 0 exactly once.
	if !h.Beat(0) {
		t.Fatal("beat did not report revival")
	}
	if h.Beat(0) {
		t.Fatal("second beat reported revival again")
	}
	if h.Epoch(0) != 1 || h.Epoch(1) != 0 {
		t.Fatalf("epochs = %d/%d, want 1/0", h.Epoch(0), h.Epoch(1))
	}
	if met.ShardDeaths.Value() != 1 || met.ShardRevivals.Value() != 1 {
		t.Fatalf("transitions = %d dead / %d revived, want 1/1",
			met.ShardDeaths.Value(), met.ShardRevivals.Value())
	}
}

// TestShardHealthStamp pins the self-slot contract: a Stamp refreshes
// the beacon with no revival semantics — a member whose own deadline
// lapsed during a stalled tick is alive again without an epoch bump or
// a transition count, and a pre-Stamp latch heals silently too.
func TestShardHealthStamp(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	cfg := LivenessConfig{HeartbeatInterval: time.Second, MissThreshold: 3}
	h := NewShardHealth(2, cfg)
	h.SetMetrics(met)
	now := time.Unix(100, 0)
	h.SetClock(func() time.Time { return now })
	h.Beat(0)
	h.Beat(1)

	// Slot 0 lapses; Stamp restores it without a death/revival pair.
	now = now.Add(cfg.Deadline() + time.Millisecond)
	h.Stamp(0)
	if !h.Alive(0) || h.Epoch(0) != 0 {
		t.Fatalf("alive=%v epoch=%d after stamp, want true/0", h.Alive(0), h.Epoch(0))
	}
	if newly := h.Sweep(); len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("Sweep = %v, want only the unstamped shard 1", newly)
	}
	if met.ShardRevivals.Value() != 0 {
		t.Fatalf("stamp counted as revival: %d", met.ShardRevivals.Value())
	}
	// A latched slot heals through Stamp silently: deadSeen clears (so a
	// later real death latches again) but epoch and counters stay put.
	h.Stamp(1)
	if !h.Alive(1) || h.Epoch(1) != 0 || met.ShardRevivals.Value() != 0 {
		t.Fatalf("latched slot did not heal silently: alive=%v epoch=%d revivals=%d",
			h.Alive(1), h.Epoch(1), met.ShardRevivals.Value())
	}
	now = now.Add(cfg.Deadline() + time.Millisecond)
	if newly := h.Sweep(); len(newly) != 2 {
		t.Fatalf("re-lapse after stamp latched %v, want both shards", newly)
	}
	// Stamp never clears an explicit down mark.
	h.SetDown(0, true)
	h.Stamp(0)
	if h.Alive(0) {
		t.Fatal("stamp revived an explicitly-downed shard")
	}
	h.Stamp(-1)
	h.Stamp(9) // out of range: inert
}
