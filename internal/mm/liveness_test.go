package mm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
)

// fakeClock is a hand-advanced wall clock for deterministic liveness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// livenessCfg arms a 100ms beat with 3 allowed misses: dead after 300ms.
func livenessCfg() LivenessConfig {
	return LivenessConfig{HeartbeatInterval: 100 * time.Millisecond, MissThreshold: 3}
}

func TestLivenessDisabledEverythingAlive(t *testing.T) {
	m := New()
	if err := m.RegisterRM(info(1), nil); err != nil {
		t.Fatal(err)
	}
	// No SetLiveness: no beats ever, still alive forever.
	if !m.Alive(1) {
		t.Fatal("RM dead with liveness disabled")
	}
	if got := m.LiveCount(); got != 1 {
		t.Fatalf("LiveCount = %d, want 1", got)
	}
}

func TestHeartbeatKeepsAliveMissedBeatsKill(t *testing.T) {
	clk := newFakeClock()
	m := New()
	m.SetClock(clk.Now)
	m.SetLiveness(livenessCfg())
	for _, id := range []ids.RMID{1, 2} {
		if err := m.RegisterRM(info(id), []ids.FileID{7}); err != nil {
			t.Fatal(err)
		}
	}
	// Both beat once inside the window; then only RM 1 keeps beating.
	for i := 0; i < 5; i++ {
		clk.Advance(100 * time.Millisecond)
		if err := m.Heartbeat(1); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := m.Heartbeat(2); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 400ms since RM 2's last beat > 300ms deadline: dead.
	if !m.Alive(1) || m.Alive(2) {
		t.Fatalf("alive = (%v, %v), want (true, false)", m.Alive(1), m.Alive(2))
	}
	if got := m.LiveCount(); got != 1 {
		t.Fatalf("LiveCount = %d, want 1", got)
	}
	// The routing surfaces exclude the corpse: RMs() and Lookup answer
	// with the live holder only, so negotiations never target RM 2.
	rms := m.RMs()
	if len(rms) != 1 || rms[0].ID != 1 {
		t.Fatalf("RMs() = %v, want [1]", rms)
	}
	if hs := m.Lookup(7); len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("Lookup(7) = %v, want [1]", hs)
	}
	// AllRMs keeps the full registry (monitoring needs to show corpses).
	if all := m.AllRMs(); len(all) != 2 {
		t.Fatalf("AllRMs() = %v, want both", all)
	}
}

func TestEpochBumpsOnlyOnRevival(t *testing.T) {
	clk := newFakeClock()
	m := New()
	m.SetClock(clk.Now)
	m.SetLiveness(livenessCfg())
	if err := m.RegisterRM(info(1), nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(1); got != 0 {
		t.Fatalf("first registration epoch = %d, want 0", got)
	}
	// In-window beats leave the epoch alone.
	clk.Advance(100 * time.Millisecond)
	if err := m.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(1); got != 0 {
		t.Fatalf("in-window beat bumped epoch to %d", got)
	}
	// Silence past the deadline, then a beat: one revival.
	clk.Advance(time.Second)
	if m.Alive(1) {
		t.Fatal("RM alive 1s after last beat")
	}
	if err := m.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(1); got != 1 {
		t.Fatalf("epoch after revival = %d, want 1", got)
	}
	if !m.Alive(1) {
		t.Fatal("RM still dead after reviving beat")
	}
	// A second incident healed by re-registration (the crash-restart
	// path) bumps again.
	clk.Advance(time.Second)
	if err := m.RegisterRM(info(1), nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(1); got != 2 {
		t.Fatalf("epoch after re-registration revival = %d, want 2", got)
	}
}

func TestHeartbeatFromUnregisteredRefused(t *testing.T) {
	m := New()
	m.SetLiveness(livenessCfg())
	if err := m.Heartbeat(9); err == nil {
		t.Fatal("heartbeat from unregistered RM accepted")
	}
}

func TestReRegistrationReconcilesFileList(t *testing.T) {
	m := New()
	// RM 1 holds files 1 and 2; RM 2 also holds file 2.
	if err := m.RegisterRM(info(1), []ids.FileID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterRM(info(2), []ids.FileID{2}); err != nil {
		t.Fatal(err)
	}
	// RM 1 restarts with a wiped disk holding only file 1: its stale
	// claim on file 2 must be pruned so requests stop routing there.
	if err := m.RegisterRM(info(1), []ids.FileID{1}); err != nil {
		t.Fatal(err)
	}
	if hs := m.Lookup(2); len(hs) != 1 || hs[0] != 2 {
		t.Fatalf("Lookup(2) = %v, want [2]", hs)
	}
	if fs := m.FilesOn(1); len(fs) != 1 || fs[0] != 1 {
		t.Fatalf("FilesOn(1) = %v, want [1]", fs)
	}
	// But the last replica of a file is never pruned: RM 1 re-registering
	// empty keeps file 1 attributed (reachable for repair) rather than
	// orphaning it from the namespace.
	if err := m.RegisterRM(info(1), nil); err != nil {
		t.Fatal(err)
	}
	if hs := m.Lookup(1); len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("last replica pruned: Lookup(1) = %v", hs)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessMetrics(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	m := New()
	m.SetClock(clk.Now)
	m.SetLiveness(livenessCfg())
	m.SetMetrics(NewMetrics(reg))
	if err := m.RegisterRM(info(1), nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if m.Alive(1) { // latches the death
		t.Fatal("RM alive after 1s of silence")
	}
	if err := m.Heartbeat(1); err != nil { // revival
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`dfsqos_mm_rm_transitions_total{direction="dead"} 1`,
		`dfsqos_mm_rm_transitions_total{direction="live"} 1`,
		`dfsqos_mm_live_rms 1`,
		`dfsqos_mm_registered_rms 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestShardedLivenessFansOut(t *testing.T) {
	clk := newFakeClock()
	m := NewSharded(4)
	m.SetClock(clk.Now)
	m.SetLiveness(livenessCfg())
	if err := m.RegisterRM(info(1), []ids.FileID{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if m.Alive(1) {
		t.Fatal("sharded RM alive after 1s of silence")
	}
	// Every shard must agree the RM is dead (each shard filters its own
	// lookups), and one fanned-out heartbeat must heal them all in step.
	for _, f := range []ids.FileID{1, 2, 3, 4, 5, 6, 7, 8} {
		if hs := m.Lookup(f); len(hs) != 0 {
			t.Fatalf("dead RM still holds file %v on its shard: %v", f, hs)
		}
	}
	if err := m.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	for _, f := range []ids.FileID{1, 2, 3, 4, 5, 6, 7, 8} {
		if hs := m.Lookup(f); len(hs) != 1 || hs[0] != 1 {
			t.Fatalf("heartbeat did not heal file %v's shard: %v", f, hs)
		}
	}
	if got := m.Epoch(1); got != 1 {
		t.Fatalf("sharded epoch = %d, want 1", got)
	}
	if got := m.LiveCount(); got != 1 {
		t.Fatalf("sharded LiveCount = %d, want 1", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
