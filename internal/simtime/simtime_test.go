package simtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		s.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events out of order: %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %v, want 5", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, func(Time) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, func(Time) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(5, func(Time) {})
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	NewScheduler().Schedule(1, nil)
}

func TestAfter(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.Schedule(10, func(now Time) {
		s.After(5, func(now2 Time) { at = now2 })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	NewScheduler().After(-1, func(Time) {})
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.Schedule(3, func(Time) { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Fatal("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	s := NewScheduler()
	e := s.Schedule(1, func(Time) {})
	s.Run()
	if s.Cancel(e) {
		t.Fatal("Cancel of fired event returned true")
	}
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		s.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by horizon 3, want 3 (inclusive)", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %v, want horizon 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d, want 2", s.Pending())
	}
	s.RunUntil(10)
	if len(fired) != 5 || s.Now() != 10 {
		t.Fatalf("after second RunUntil: fired=%d now=%v", len(fired), s.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Fatalf("clock at %v, want 100", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func(Time) {
			count++
			if count == 4 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("fired %d events, want 4 after Halt", count)
	}
	if s.Pending() != 6 {
		t.Fatalf("pending %d after Halt, want 6", s.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.Schedule(1, func(now Time) {
		fired = append(fired, now)
		s.Schedule(2, func(now Time) { fired = append(fired, now) })
	})
	s.Schedule(3, func(now Time) { fired = append(fired, now) })
	s.Run()
	want := []Time{1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := s.NewTicker(0, 10, func(now Time) { ticks = append(ticks, now) })
	s.RunUntil(35)
	tk.Stop()
	s.RunUntil(100)
	want := []Time{0, 10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = s.NewTicker(0, 1, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
	tk.Stop() // double stop is a no-op
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewScheduler().NewTicker(0, 0, func(Time) {})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0:00:00.000"},
		{7200, "2:00:00.000"},
		{3661.5, "1:01:01.500"},
		{-90, "-0:01:30.000"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	if got := Time(5).Add(2.5); got != 7.5 {
		t.Fatalf("Add = %v", got)
	}
	if got := Time(5).Sub(2); got != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if Time(5).Seconds() != 5 || Duration(3).Seconds() != 3 {
		t.Fatal("Seconds round-trip failed")
	}
}

// Property: for any set of event times, the firing order is the sorted order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			s.Schedule(at, func(now Time) { fired = append(fired, now) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		sorted := make([]Time, len(raw))
		for i, r := range raw {
			sorted[i] = Time(r)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := NewScheduler()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.Now()+Time(i%16), func(Time) {})
		if s.Pending() > 1024 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	s.Run()
}
