// Package simtime implements the discrete-event simulation (DES) engine that
// substitutes for the paper's 25-VM Xen testbed. Virtual time is a float64
// count of seconds since simulation start; events fire in strict (time,
// sequence) order, which makes every run deterministic.
//
// The engine intentionally runs single-threaded: the paper's metrics
// (over-allocate ratio, fail rate, utilization) are functions of the
// bandwidth-allocation trajectory, which is piecewise constant between
// events, so a sequential event loop reproduces it exactly and reproducibly.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats a virtual time as "h:mm:ss.mmm".
func (t Time) String() string {
	s := float64(t)
	neg := ""
	if s < 0 {
		neg, s = "-", -s
	}
	h := int(s) / 3600
	m := (int(s) % 3600) / 60
	rest := s - float64(h*3600+m*60)
	return fmt.Sprintf("%s%d:%02d:%06.3f", neg, h, m, rest)
}

// Event is a scheduled callback. The zero Event is invalid; obtain events
// from Scheduler.Schedule.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func(Time)
	canceled bool
}

// At returns the event's scheduled firing time.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all simulation actors run inside event callbacks.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns how many events have fired so far (diagnostic).
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Schedule registers fn to fire at time at. Scheduling in the past panics:
// it is always a logic error in a DES and silently clamping would corrupt
// metric integration. Ties fire in scheduling order.
func (s *Scheduler) Schedule(at Time, fn func(Time)) *Event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simtime: scheduling nil callback")
	}
	if math.IsNaN(float64(at)) {
		panic("simtime: scheduling event at NaN time")
	}
	e := &Event{at: at, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After registers fn to fire d seconds from now.
func (s *Scheduler) After(d Duration, fn func(Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op returning false.
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
	return true
}

// Step fires the single earliest event and returns true, or returns false if
// the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.fired++
	e.fn(s.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is strictly after the horizon; the clock then advances to the horizon.
// Events scheduled exactly at the horizon do fire.
func (s *Scheduler) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("simtime: horizon %v before now %v", horizon, s.now))
	}
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < horizon {
		s.now = horizon
	}
}

// Run fires all events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		s.Step()
	}
}

// Halt stops Run/RunUntil after the current event callback returns.
// Pending events stay queued.
func (s *Scheduler) Halt() { s.halted = true }

// Ticker invokes fn every period seconds starting at start, until Stop.
// It is the sampling backbone for the utilization time series in Figs 4-6.
type Ticker struct {
	s       *Scheduler
	period  Duration
	fn      func(Time)
	event   *Event
	stopped bool
}

// NewTicker schedules a periodic callback. period must be positive.
func (s *Scheduler) NewTicker(start Time, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.event = s.Schedule(start, t.tick)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.event = t.s.Schedule(now.Add(t.period), t.tick)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.s.Cancel(t.event)
}
