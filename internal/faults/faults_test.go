package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/telemetry"
)

func TestNilInjectorProceeds(t *testing.T) {
	d := Decide(nil, PointMMHandle, "Lookup")
	if d.Action != None {
		t.Fatalf("nil injector decided %v, want None", d.Action)
	}
}

func TestAfterAndCount(t *testing.T) {
	s := NewScript(1).Add(Rule{Point: PointRMChunk, After: 2, Count: 2, Action: Drop})
	var got []Action
	for i := 0; i < 6; i++ {
		got = append(got, s.Decide(PointRMChunk, "0").Action)
	}
	want := []Action{None, None, Drop, Drop, None, None}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: got %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if s.Fired(0) != 2 {
		t.Fatalf("Fired(0) = %d, want 2", s.Fired(0))
	}
}

func TestMatchFiltersDetail(t *testing.T) {
	s := NewScript(1).Add(Rule{Point: PointMMHandle, Match: "Lookup", Action: Error})
	if d := s.Decide(PointMMHandle, "RegisterRM"); d.Action != None {
		t.Fatalf("non-matching detail fired %v", d.Action)
	}
	d := s.Decide(PointMMHandle, "Lookup")
	if d.Action != Error {
		t.Fatalf("matching detail decided %v, want Error", d.Action)
	}
	if !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("default error = %v, want ErrInjected", d.Err)
	}
}

func TestWrongPointIgnored(t *testing.T) {
	s := NewScript(1).Add(Rule{Point: PointRMHandle, Action: Kill})
	if d := s.Decide(PointMMHandle, "Open"); d.Action != None {
		t.Fatalf("wrong point fired %v", d.Action)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []Action {
		s := NewScript(seed).Add(Rule{Point: PointRMChunk, Prob: 0.5, Action: Drop})
		out := make([]Action, 64)
		for i := range out {
			out[i] = s.Decide(PointRMChunk, "x").Action
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw sequences (suspicious)")
	}
	fired := 0
	for _, act := range a {
		if act == Drop {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/64 times", fired)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	s := NewScript(1).
		Add(Rule{Point: PointRMHandle, Match: "Open", Action: Delay, Delay: time.Millisecond}).
		Add(Rule{Point: PointRMHandle, Action: Drop})
	if d := s.Decide(PointRMHandle, "Open"); d.Action != Delay || d.Delay != time.Millisecond {
		t.Fatalf("got %v/%v, want Delay/1ms", d.Action, d.Delay)
	}
	if d := s.Decide(PointRMHandle, "CFP"); d.Action != Drop {
		t.Fatalf("fallthrough got %v, want Drop", d.Action)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("rm.stream.chunk:after=3:action=drop; mm.handle:match=Lookup:prob=0.1:action=error:seed=42; rm.handle:after=10:count=2:action=delay:delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	// Rule 0: fires on the 4th chunk hit.
	for i := 0; i < 3; i++ {
		if d := s.Decide(PointRMChunk, "0"); d.Action != None {
			t.Fatalf("chunk hit %d fired %v", i, d.Action)
		}
	}
	if d := s.Decide(PointRMChunk, "0"); d.Action != Drop {
		t.Fatalf("chunk hit 4 decided %v, want Drop", d.Action)
	}
	// Rule 2: delay parameter carried through.
	for i := 0; i < 10; i++ {
		s.Decide(PointRMHandle, "Open")
	}
	if d := s.Decide(PointRMHandle, "Open"); d.Action != Delay || d.Delay != 250*time.Millisecond {
		t.Fatalf("rule 2 decided %v/%v", d.Action, d.Delay)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if s, err := Parse("   "); err != nil || s != nil {
		t.Fatalf("empty spec: (%v, %v), want (nil, nil)", s, err)
	}
	for _, bad := range []string{
		"rm.handle",                          // no action
		"rm.handle:action=explode",           // unknown action
		"rm.handle:bogus=1:action=drop",      // unknown option
		"rm.handle:after=x:action=drop",      // bad int
		":action=drop",                       // no point
		"rm.handle:afterdrop",                // malformed option
		"rm.handle:delay=later:action=delay", // bad duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseActionRoundTrip(t *testing.T) {
	for _, a := range []Action{None, Drop, Delay, Error, PartialWrite, Kill} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAction("explode"); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestMetricsCountInjected(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewScript(1).Add(Rule{Point: PointRMChunk, Action: Drop})
	s.SetMetrics(NewMetrics(reg))
	s.Decide(PointRMChunk, "0")
	s.Decide(PointRMChunk, "64")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `dfsqos_faults_injected_total{action="drop",point="rm.stream.chunk"} 2`) &&
		!strings.Contains(text, `dfsqos_faults_injected_total{point="rm.stream.chunk",action="drop"} 2`) {
		t.Fatalf("exposition missing injected counter:\n%s", text)
	}
}
