// Package faults is the deterministic fault-injection substrate of the
// live deployment: a small rule engine that decides, at named injection
// points threaded through the TCP servers, whether to drop the connection,
// delay the handler, serve an error, tear a frame mid-write, or kill the
// whole server process ("crash" an RM without a second OS process).
//
// Determinism is the design center. Rules fire on exact hit counts
// (After/Count) or on a probability drawn from a seedable stream, so a
// chaos test that passes once passes every time: the same seed and the
// same call order produce the same injected faults. A nil Injector is the
// universal default — every hook site treats nil as "no faults", so the
// production path pays one nil check and nothing else.
//
// The package is also reachable from the daemons through Parse, which
// turns a compact spec string (hidden -faults flag) into a Script:
//
//	rm.stream.chunk:after=3:action=drop
//	mm.handle:match=Lookup:prob=0.1:action=error:seed=42
//	rm.handle:after=10:count=2:action=delay:delay=250ms
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"dfsqos/internal/rng"
	"dfsqos/internal/telemetry"
)

// Point names an injection site. The live servers define the vocabulary;
// the canonical points are listed here so tests and specs share spelling.
type Point string

// Canonical injection points threaded through internal/live.
const (
	// PointMMHandle fires before the MM server handles a request;
	// detail is the message kind ("Lookup", "RegisterRM", ...).
	PointMMHandle Point = "mm.handle"
	// PointRMHandle fires before an RM server handles a control-plane
	// request; detail is the message kind ("CFP", "Open", ...).
	PointRMHandle Point = "rm.handle"
	// PointRMChunk fires before each data-plane chunk write of a ReadFile
	// stream; detail is the decimal byte offset of the chunk.
	PointRMChunk Point = "rm.stream.chunk"
	// PointShardMirror fires before an MM shard mirrors a replica-map
	// mutation to a successor shard; detail is the mutation name
	// ("AddReplica", ...). Drop (or Kill) suppresses the mirror send —
	// the shape of a shard-to-shard partition; Error aborts it; Delay
	// stalls it.
	PointShardMirror Point = "mm.shard.mirror"
	// PointShardHandoff fires before an MM shard pushes a keyspace
	// handoff batch to a peer; detail is the direction ("takeover" or
	// "heal"). Same action semantics as PointShardMirror.
	PointShardHandoff Point = "mm.shard.handoff"
)

// Action is what an armed fault does at its point.
type Action int

// The injectable failure modes.
const (
	// None lets the operation proceed untouched.
	None Action = iota
	// Drop closes the connection mid-exchange (peer sees EOF/reset).
	Drop
	// Delay stalls the handler for Decision.Delay before proceeding.
	Delay
	// Error serves Decision.Err to the peer as a remote error.
	Error
	// PartialWrite writes a torn frame (header + truncated body) and then
	// drops the connection — the shape of a crash mid-write.
	PartialWrite
	// Kill crashes the whole server: listener and every open connection
	// close, as if the daemon died. Only meaningful at server-owned sites.
	Kill
)

// String implements fmt.Stringer for specs and metrics labels.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case PartialWrite:
		return "partial"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ParseAction inverts String.
func ParseAction(s string) (Action, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return None, nil
	case "drop":
		return Drop, nil
	case "delay":
		return Delay, nil
	case "error":
		return Error, nil
	case "partial", "partialwrite", "partial-write":
		return PartialWrite, nil
	case "kill":
		return Kill, nil
	}
	return None, fmt.Errorf("faults: unknown action %q", s)
}

// Decision is an injector's verdict at one hook site.
type Decision struct {
	Action Action
	// Delay applies when Action == Delay.
	Delay time.Duration
	// Err applies when Action == Error (nil uses ErrInjected).
	Err error
}

// ErrInjected is the default error served by an Error decision.
var ErrInjected = errors.New("faults: injected failure")

// Proceed is the zero decision: no fault.
var Proceed = Decision{}

// Injector decides at each hook site. Implementations must be safe for
// concurrent use: the live servers consult them from many connection
// goroutines at once. A nil Injector means "never inject"; hook sites
// call Decide through the free function below so they need no nil checks.
type Injector interface {
	Decide(point Point, detail string) Decision
}

// Decide consults inj, treating nil as "no faults". This is the form the
// hook sites use, keeping the default path branch-predictable.
func Decide(inj Injector, point Point, detail string) Decision {
	if inj == nil {
		return Proceed
	}
	return inj.Decide(point, detail)
}

// Rule is one armed fault in a Script. The zero value matches nothing
// useful; set at least Point and Action.
type Rule struct {
	// Point selects the hook site this rule applies to.
	Point Point
	// Match, when non-empty, further requires the site detail to contain
	// this substring (e.g. a message kind, or a byte offset).
	Match string
	// After skips the first After matching hits before the rule arms.
	After int
	// Count bounds how many hits the rule fires on once armed; 0 means
	// "every hit from After on".
	Count int
	// Prob, when in (0,1), gates each armed hit on a draw from the
	// script's seeded stream; 0 (or ≥1) fires deterministically.
	Prob float64
	// Action is the injected failure mode.
	Action Action
	// Delay parameterizes Delay actions.
	Delay time.Duration
	// Err parameterizes Error actions (nil: ErrInjected).
	Err error

	hits  int // matching hits seen (guarded by Script.mu)
	fired int // times the rule actually fired
}

// Script is a deterministic Injector: an ordered rule list evaluated
// under one mutex, with an optional seeded random stream for Prob gates.
// First matching armed rule wins. The zero value is unusable; build with
// NewScript.
type Script struct {
	mu    sync.Mutex
	rules []*Rule
	src   *rng.Source
	// injected counts fired decisions by point+action; nil-safe no-op
	// metrics by default.
	met *Metrics
}

// NewScript builds an empty script whose probability gates draw from a
// stream seeded with seed (the draw order is the hit order, so equal
// seeds and equal traffic produce equal fault sequences).
func NewScript(seed uint64) *Script {
	return &Script{src: rng.New(seed), met: NewMetrics(nil)}
}

// SetMetrics routes injection telemetry (default: no-op). Safe to call
// before traffic starts.
func (s *Script) SetMetrics(m *Metrics) {
	if m == nil {
		m = NewMetrics(nil)
	}
	s.mu.Lock()
	s.met = m
	s.mu.Unlock()
}

// Add appends a rule and returns the script for chaining.
func (s *Script) Add(r Rule) *Script {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, &r)
	return s
}

// Fired reports how many times rule i has fired (test assertions).
func (s *Script) Fired(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.rules) {
		return 0
	}
	return s.rules[i].fired
}

// Decide implements Injector.
func (s *Script) Decide(point Point, detail string) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if r.Point != point {
			continue
		}
		if r.Match != "" && !strings.Contains(detail, r.Match) {
			continue
		}
		r.hits++
		if r.hits <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && s.src.Float64() >= r.Prob {
			continue
		}
		r.fired++
		s.met.count(point, r.Action)
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return Decision{Action: r.Action, Delay: r.Delay, Err: err}
	}
	return Proceed
}

// Parse turns a semicolon-separated list of rule specs into a Script.
// Each rule is a colon-separated sequence starting with the point name,
// followed by key=value options: match, after, count, prob, action,
// delay, seed (seed applies to the whole script; last one wins).
//
//	rm.stream.chunk:after=3:action=drop
//	mm.handle:match=Lookup:prob=0.25:action=error:seed=7
//
// An empty spec yields (nil, nil): no injector.
func Parse(spec string) (*Script, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed uint64 = 1
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		r := Rule{Point: Point(strings.TrimSpace(fields[0]))}
		if r.Point == "" {
			return nil, fmt.Errorf("faults: rule %q has no point", part)
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("faults: malformed option %q in %q", f, part)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			var err error
			switch k {
			case "match":
				r.Match = v
			case "after":
				r.After, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "action":
				r.Action, err = ParseAction(v)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "seed":
				seed, err = strconv.ParseUint(v, 10, 64)
			default:
				return nil, fmt.Errorf("faults: unknown option %q in %q", k, part)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: option %q in %q: %w", k, part, err)
			}
		}
		if r.Action == None {
			return nil, fmt.Errorf("faults: rule %q has no action", part)
		}
		rules = append(rules, r)
	}
	s := NewScript(seed)
	for _, r := range rules {
		s.Add(r)
	}
	return s, nil
}

// Metrics counts injected faults by point and action
// (dfsqos_faults_injected_total{point,action}) so a chaos run's injected
// failure mix is visible on the same /metrics page as its effects.
type Metrics struct {
	injected *telemetry.CounterVec
}

// NewMetrics registers the fault metric family on reg (nil reg yields a
// live no-op sink).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		injected: reg.NewCounterVec("dfsqos_faults_injected_total",
			"Faults injected by the chaos substrate, by point and action.",
			"point", "action"),
	}
}

// count records one fired decision.
func (m *Metrics) count(point Point, action Action) {
	m.injected.With(string(point), action.String()).Inc()
}
