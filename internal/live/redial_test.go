package live

import (
	"testing"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
)

// TestDirectoryRedialsAfterRestart crashes an RM, restarts it on a fresh
// port with re-registration, and verifies the directory transparently
// reaches the new instance (broken clients are invalidated and redialed
// at the address the MM currently advertises).
func TestDirectoryRedialsAfterRestart(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := client.Access(0); !out.OK {
		t.Fatalf("pre-crash access failed: %s", out.Reason)
	}

	// Crash RM1 and fail one access against the dead cached connection.
	lc.rmSrvs[0].Close()
	if out := client.Access(0); out.OK {
		t.Fatal("access succeeded against a dead RM")
	}

	// Restart RM1 on a new ephemeral port, same identity, fresh state.
	meta := lc.cat.File(0)
	mapperCli, err := DialMM(lc.mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	node, err := rm.New(rm.Options{
		Info:        ecnp.RMInfo{ID: 1, Capacity: units.Mbps(50), StorageBytes: units.GB},
		Scheduler:   lc.sched,
		Mapper:      mapperCli,
		History:     history.DefaultConfig(),
		Replication: replication.DefaultConfig(replication.Static()),
		Rand:        rng.New(99),
		Files: map[ids.FileID]rm.FileMeta{
			0: {Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewRMServer(node, nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	info := node.Info()
	info.Addr = srv.Addr()
	if err := mapperCli.RegisterRM(info, []ids.FileID{0}); err != nil {
		t.Fatal(err)
	}
	node.SetDirectory(NewDirectory(mapperCli))

	// The same client and directory now reach the restarted RM.
	out := client.Access(0)
	if !out.OK {
		t.Fatalf("post-restart access failed: %s", out.Reason)
	}
	if out.RM != 1 {
		t.Fatalf("served by %v", out.RM)
	}
	if node.Stats().Opens != 1 {
		t.Fatalf("restarted RM saw %d opens, want 1", node.Stats().Opens)
	}
}
