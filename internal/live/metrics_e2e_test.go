package live

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/monitor"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// TestMetricsEndToEnd spins up a real TCP mini-cluster — MM server, two RM
// servers with throttled virtual disks, a DFSC over pooled transport — with
// every layer instrumented onto ONE shared registry, runs accesses through
// the full three-phase flow, and scrapes a monitor /metrics page. The
// exposition must carry the transport call-latency histogram, the pool
// gauge, the RM remaining-bandwidth gauge, the CFP/bid/admission counters,
// and the dfsc negotiation-latency histogram — the acceptance shape of the
// telemetry plane.
func TestMetricsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	tcfg := transport.Config{Metrics: transport.NewMetrics(reg)}
	wire.RegisterCodecMetrics(reg)
	defer wire.RegisterCodecMetrics(nil) // detach the process-wide sink from this test's registry

	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 4
	cfg.MeanDurationSec = 5
	cfg.MinDurationSec = 1
	cfg.MaxDurationSec = 10
	cat, err := catalog.Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}

	mmSrv, err := NewMMServer(mm.New(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mmSrv.Close()
	mmSrv.SetMetrics(NewServerMetrics(reg, "mm"))

	sched := NewWallScheduler(100)
	defer sched.Stop()
	master := rng.New(13)
	holders := map[ids.FileID][]ids.RMID{0: {1, 2}, 1: {1}, 2: {2}}

	var rmSrvs []*RMServer
	var firstNode *rm.RM
	var firstDisk *vdisk.Disk
	for i, capBW := range []units.BytesPerSec{units.Mbps(50), units.Mbps(50)} {
		id := ids.RMID(i + 1)
		ctrl := blkio.NewController()
		disk, err := vdisk.New(units.GB, ctrl, fmt.Sprintf("vm-metrics-%d", id), capBW, capBW)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[ids.FileID]rm.FileMeta)
		for f, hs := range holders {
			for _, h := range hs {
				if h != id {
					continue
				}
				meta := cat.File(f)
				files[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
				if err := disk.Provision(FileName(f), meta.Size); err != nil {
					t.Fatal(err)
				}
			}
		}
		mapperCli, err := DialMMConfig(mmSrv.Addr(), tcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer mapperCli.Close()
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: units.GB},
			Scheduler:   sched,
			Mapper:      mapperCli,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       files,
			Metrics:     rm.NewMetrics(reg),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewRMServer(node, disk, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.SetMetrics(NewServerMetrics(reg, "rm"))
		info := node.Info()
		info.Addr = srv.Addr()
		fileIDs := make([]ids.FileID, 0, len(files))
		for f := range files {
			fileIDs = append(fileIDs, f)
		}
		if err := mapperCli.RegisterRM(info, fileIDs); err != nil {
			t.Fatal(err)
		}
		node.SetDirectory(NewDirectoryConfig(mapperCli, tcfg))
		rmSrvs = append(rmSrvs, srv)
		if firstNode == nil {
			firstNode, firstDisk = node, disk
		}
	}

	mmCli, err := DialMMConfig(mmSrv.Addr(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mmCli.Close()
	dir := NewDirectoryConfig(mmCli, tcfg)
	defer dir.Close()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    mmCli,
		Directory: dir,
		Scheduler: sched,
		Catalog:   cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(7),
		Metrics:   dfsc.NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []ids.FileID{0, 1, 2} {
		if out := client.Access(f); !out.OK {
			t.Fatalf("access %v failed: %s", f, out.Reason)
		}
	}

	// Scrape the shared registry through a real monitor endpoint, as a
	// Prometheus server would scrape an rmd.
	mon := httptest.NewServer(monitor.NewRMHandler(firstNode, firstDisk, sched, reg, nil))
	defer mon.Close()
	resp, err := http.Get(mon.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentType {
		t.Fatalf("content type %q", got)
	}
	body := string(raw)

	for _, want := range []string{
		// Transport: per-call latency histogram and pool gauge.
		"dfsqos_transport_call_latency_seconds_bucket",
		"dfsqos_transport_call_latency_seconds_count",
		"dfsqos_transport_pool_idle_connections",
		`dfsqos_transport_dials_total{result="ok"}`,
		// Wire servers: request counters by kind.
		`server="mm"`,
		`server="rm"`,
		// Wire codec split: control traffic moves as gob frames, data
		// chunks on the binary fast path.
		`dfsqos_wire_frames_total{dir="tx",codec="gob"}`,
		`dfsqos_wire_frames_total{dir="rx",codec="gob"}`,
		`dfsqos_wire_frames_total{dir="tx",codec="binary"}`,
		`dfsqos_wire_frames_total{dir="rx",codec="binary"}`,
		// RM core: the paper's remained-bandwidth runtime info plus the
		// negotiation counters.
		"dfsqos_rm_remaining_bandwidth_bytes_per_second",
		"dfsqos_rm_cfps_total",
		"dfsqos_rm_bids_total",
		"dfsqos_rm_admissions_total",
		// DFSC: three-phase negotiation latency histogram.
		"dfsqos_dfsc_negotiation_latency_seconds_bucket",
		`dfsqos_dfsc_requests_total{outcome="admitted"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics exposition", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}

	// The counters must reflect the three admitted accesses: 3 CFP+bid
	// pairs per fan-out are spread over the two RMs, and each open landed.
	if !strings.Contains(body, "dfsqos_rm_admissions_total 3") {
		t.Errorf("admissions != 3:\n%s", grepLines(body, "dfsqos_rm_admissions_total"))
	}
	if !strings.Contains(body, "dfsqos_dfsc_negotiation_latency_seconds_count 3") {
		t.Errorf("negotiation count != 3:\n%s", grepLines(body, "negotiation_latency_seconds_count"))
	}

	// Debug-surface smoke: every daemon monitor handler also answers
	// /traces (valid JSON even without a tracer) and the pprof index.
	for _, path := range []string{"/traces", "/traces?format=text", "/debug/pprof/"} {
		r, err := http.Get(mon.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, r.StatusCode)
		}
	}
}

func grepLines(body, needle string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
