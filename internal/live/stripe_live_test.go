package live

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// TestLiveRangedReadOverTCP drives the ranged ReadFile frame end to end:
// a bounded range must deliver exactly the requested window with a
// verified range checksum, and a range reaching past EOF must clamp.
func TestLiveRangedReadOverTCP(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(800)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	rmCli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM 1 unreachable")
	}
	var whole bytes.Buffer
	size, err := rmCli.ReadFile(0, &whole)
	if err != nil {
		t.Fatal(err)
	}
	if size < 4096 {
		t.Fatalf("file 0 is only %d bytes; range test needs a real window", size)
	}

	// A mid-file window: exact bytes, server-verified range checksum.
	offset, length := size/4, size/2
	var part bytes.Buffer
	sum := wire.ChecksumBasis
	n, err := rmCli.ReadRange(context.Background(), 0, 0, offset, length, &part, &sum)
	if err != nil {
		t.Fatal(err)
	}
	if n != length {
		t.Fatalf("range delivered %d bytes, want %d", n, length)
	}
	want := whole.Bytes()[offset : offset+length]
	if !bytes.Equal(part.Bytes(), want) {
		t.Fatal("range bytes differ from the same window of the whole file")
	}
	if sum != wire.ChecksumUpdate(wire.ChecksumBasis, want) {
		t.Fatalf("range checksum %x does not match the window", sum)
	}

	// A range reaching past EOF clamps to the file end.
	var tail bytes.Buffer
	n, err = lc.dir.StreamRange(context.Background(), 1, 0, 0, size-1024, 1<<20, &tail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1024 || !bytes.Equal(tail.Bytes(), whole.Bytes()[size-1024:]) {
		t.Fatalf("clamped range delivered %d bytes, want the 1024-byte tail", n)
	}
}

// TestLiveStripedReadOverTCP runs the K-wide scheduler against three real
// RM servers: three lanes admitted by one negotiation, byte ranges striped
// across all replicas, and the committed stream bit-identical to the disk
// copy under the whole-file checksum.
func TestLiveStripedReadOverTCP(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(400), units.Mbps(400), units.Mbps(400)},
		map[ids.FileID][]ids.RMID{0: {1, 2, 3}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Soft,
		Rand:      rng.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	size := int64(lc.cat.File(0).Size)
	var got bytes.Buffer
	res, err := client.ReadStriped(lc.dir, 0, &got, dfsc.StripeConfig{
		Width:        3,
		SegmentBytes: size / 6,
	})
	if err != nil {
		t.Fatalf("striped read: %v", err)
	}
	if res.Bytes != size || int64(got.Len()) != size {
		t.Fatalf("delivered %d/%d bytes (result %d)", got.Len(), size, res.Bytes)
	}
	if len(res.RMs) != 3 {
		t.Fatalf("admitted lanes on %v, want all three RMs", res.RMs)
	}
	want, err := diskOf(t, lc, 0).Checksum(FileName(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != want {
		t.Fatalf("striped checksum %x, disk copy %x", res.Checksum, want)
	}
	// Segments tile the file contiguously and more than one replica served.
	var pos int64
	served := map[ids.RMID]bool{}
	for i, seg := range res.Segments {
		if seg.Offset != pos {
			t.Fatalf("segment %d at offset %d, want %d", i, seg.Offset, pos)
		}
		pos += seg.Length
		served[seg.RM] = true
	}
	if pos != size {
		t.Fatalf("segments cover %d bytes, want %d", pos, size)
	}
	if len(served) < 2 {
		t.Fatalf("all segments served by %v; the stripe never spread", res.Segments)
	}
	// Every lane's reservation was released on the normal close path.
	for i, srv := range lc.rmSrvs {
		if got := srv.Node().Allocated(); got != 0 {
			t.Fatalf("RM %d still has %v allocated", i+1, got)
		}
	}
}

// TestChaosKillMidStripeLaneDegrades is the striped crash drill: a
// scripted fault kills the first-ranked lane's RM after its first streamed
// chunk. With no failover budget the stripe must degrade to K-1 lanes,
// re-assign the dead lane's range, and still deliver every byte — zero
// dirty bytes under the whole-file checksum — while the corpse's orphaned
// reservation is reclaimed by one lease sweep.
func TestChaosKillMidStripeLaneDegrades(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		// RemOnly ranks by remaining bandwidth, so the doomed big RM is
		// deterministically the first lane of the stripe.
		caps:        []units.BytesPerSec{units.Mbps(300), units.Mbps(200), units.Mbps(100)},
		holders:     map[ids.FileID][]ids.RMID{0: {1, 2, 3}},
		rmFaults:    map[ids.RMID]string{1: "rm.stream.chunk:after=1:action=kill"},
		leaseTTLSec: 5,
	})
	defer lc.shutdown()
	client := lc.client(t, qos.Firm)

	var got bytes.Buffer
	res, err := client.ReadStriped(lc.dir, 0, &got, dfsc.StripeConfig{
		Width:        3,
		SegmentBytes: 256 << 10,
		MaxFailovers: 0,
		Backoff:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("striped read with lane kill: %v", err)
	}
	size := int64(lc.cat.File(0).Size)
	if res.Bytes != size || int64(got.Len()) != size {
		t.Fatalf("delivered %d/%d bytes (result %d)", got.Len(), size, res.Bytes)
	}
	if len(res.RMs) != 3 || res.RMs[0] != 1 {
		t.Fatalf("lanes admitted on %v, want RM1 first of three", res.RMs)
	}
	if res.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 (no budget: pure K-1 degradation)", res.Failovers)
	}
	// Zero dirty bytes: the delivered stream is bit-identical to a
	// surviving replica's copy.
	want, err := lc.disks[2].Checksum(FileName(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != want {
		t.Fatalf("striped checksum %x, replica copy %x", res.Checksum, want)
	}
	if sum := wire.ChecksumUpdate(wire.ChecksumBasis, got.Bytes()); sum != want {
		t.Fatalf("delivered bytes checksum %x, replica %x", sum, want)
	}
	// The dead lane's partial range was discarded, not committed: every
	// committed segment came from a survivor.
	for _, seg := range res.Segments {
		if seg.RM == 1 {
			t.Fatalf("segment %+v committed from the killed RM", seg)
		}
	}

	// The kill arrived between Open and Close: RM 1's lane reservation is
	// orphaned with its bandwidth allocated until the lease sweep.
	if n := lc.nodes[1].ActiveReservations(); n != 1 {
		t.Fatalf("orphaned reservations on RM1 = %d, want 1", n)
	}
	if n := lc.nodes[1].SweepLeases(lc.sched.Now().Add(6)); n != 1 {
		t.Fatalf("sweep reclaimed %d, want 1", n)
	}
	// The survivors' reservations were released by the normal close path.
	for _, id := range []ids.RMID{2, 3} {
		if got := lc.nodes[id].Allocated(); got != 0 {
			t.Fatalf("RM%d still has %v allocated", id, got)
		}
	}

	// The shared registry saw the incident end to end.
	text := lc.exposition(t)
	for _, want := range []string{
		`action="kill"`,
		`dfsqos_dfsc_stripe_reads_total 1`,
		`dfsqos_dfsc_stripe_lanes_total 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
