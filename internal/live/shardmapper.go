package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/rng"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

// ShardMapper is the client side of a replicated MM shard group: an
// ecnp.Mapper over N shard addresses that routes each file operation to
// the file's owner shards in ring order. A transport failure (dead or
// silent shard) retries the next successor in the owner set after a
// jittered backoff — bounded by the owner-set size, so a request never
// walks the whole ring — while a remote error returns immediately: the
// shard answered, failing over would just repeat the refusal. Group-wide
// operations (RM registration, heartbeats) fan to every shard and
// tolerate unreachable members as long as one accepts, so a dead shard
// cannot wedge the RM heartbeat loop.
type ShardMapper struct {
	ring    *mm.Ring
	rep     int
	clients []*MMClient

	mu      sync.Mutex
	backoff time.Duration
	src     *rng.Source
	met     *ShardMapperMetrics
	logf    func(string, ...any)
}

// DialShardMapper connects a mapper to the shard group at addrs
// (ring-index aligned) with replication factor rep.
func DialShardMapper(addrs []string, rep int, cfg transport.Config) (*ShardMapper, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("live: shard mapper needs at least one address")
	}
	clients := make([]*MMClient, len(addrs))
	for i, addr := range addrs {
		// Lazy stubs: a mapper must come up even while a shard is dead —
		// lookups walk the successor set, so one live member suffices.
		clients[i] = NewMMClient(addr, cfg)
	}
	if rep < 1 {
		rep = 1
	}
	if rep > len(addrs) {
		rep = len(addrs)
	}
	return &ShardMapper{
		ring:    mm.NewRing(len(addrs)),
		rep:     rep,
		clients: clients,
		backoff: 25 * time.Millisecond,
		src:     rng.New(1),
		met:     NewShardMapperMetrics(nil),
		logf:    func(string, ...any) {},
	}, nil
}

// SetRetryPolicy tunes the successor-retry backoff base and the jitter
// seed (defaults: 25ms, seed 1). The k-th retry of one call sleeps
// between k·base/2 and k·base.
func (m *ShardMapper) SetRetryPolicy(backoff time.Duration, seed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if backoff > 0 {
		m.backoff = backoff
	}
	m.src = rng.New(seed)
}

// SetMetrics routes successor-retry telemetry (default: no-op).
func (m *ShardMapper) SetMetrics(met *ShardMapperMetrics) {
	if met == nil {
		met = NewShardMapperMetrics(nil)
	}
	m.mu.Lock()
	m.met = met
	m.mu.Unlock()
}

// SetLogger routes diagnostics (default: discard).
func (m *ShardMapper) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m.mu.Lock()
	m.logf = logf
	m.mu.Unlock()
}

// Close releases every shard stub's pooled connections.
func (m *ShardMapper) Close() error {
	var first error
	for _, c := range m.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the group size.
func (m *ShardMapper) NumShards() int { return len(m.clients) }

func (m *ShardMapper) metrics() *ShardMapperMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.met
}

func (m *ShardMapper) log() func(string, ...any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logf
}

// retrySleep blocks for the k-th retry's jittered backoff (k ≥ 1).
func (m *ShardMapper) retrySleep(k int) {
	m.mu.Lock()
	d := time.Duration(k) * m.backoff
	d = d/2 + time.Duration(m.src.Float64()*float64(d/2))
	m.mu.Unlock()
	time.Sleep(d)
}

// callFile routes one file-keyed call across the owner set: the primary
// first, then each successor after a jittered backoff when the previous
// owner failed in transport. Remote errors break out immediately — the
// shard is healthy and said no.
func (m *ShardMapper) callFile(ctx context.Context, file ids.FileID, kind wire.Kind, payload any) (wire.Msg, error) {
	owners := m.ring.SuccessorsOfFile(int64(file), m.rep)
	var lastErr error
	for attempt, o := range owners {
		if attempt > 0 {
			m.metrics().Retries.Inc()
			m.retrySleep(attempt)
		}
		reply, err := m.clients[o].t.Call(ctx, kind, payload)
		if err == nil {
			return reply, nil
		}
		if transport.IsRemote(err) {
			return reply, err
		}
		m.log()("live: shard %d %v: %v", o, kind, err)
		lastErr = err
	}
	m.metrics().Exhausted.Inc()
	return wire.Msg{}, fmt.Errorf("live: all %d owner shard(s) failed: %w", len(owners), lastErr)
}

// fanAll sends one call to every shard and succeeds if at least one
// member accepted. Transport failures are tolerated (a dead shard
// reconverges through the heal handoff) but remembered; a remote error
// surfaces immediately — it is an answer (e.g. "unknown RM, re-register"),
// not an outage.
func (m *ShardMapper) fanAll(kind wire.Kind, payload any) error {
	accepted := 0
	var lastErr error
	for i, c := range m.clients {
		_, err := c.t.Call(context.Background(), kind, payload)
		switch {
		case err == nil:
			accepted++
		case transport.IsRemote(err):
			return err
		default:
			m.log()("live: shard %d %v: %v", i, kind, err)
			lastErr = err
		}
	}
	if accepted == 0 {
		return fmt.Errorf("live: no shard accepted %v: %w", kind, lastErr)
	}
	return nil
}

// RegisterRM implements ecnp.Mapper: fan to every shard with the full
// file list (each member keeps the slice it owns).
func (m *ShardMapper) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	return m.fanAll(wire.KindRegisterRM, wire.RegisterRM{Info: info, Files: files})
}

// Heartbeat beacons an RM's liveness to every reachable shard. A remote
// error (unknown RM somewhere) surfaces so the heartbeat loop
// re-registers, which also repopulates a freshly-restarted shard.
func (m *ShardMapper) Heartbeat(id ids.RMID) error {
	return m.fanAll(wire.KindHeartbeat, wire.Heartbeat{RM: id})
}

// Lookup implements ecnp.Mapper.
func (m *ShardMapper) Lookup(file ids.FileID) []ids.RMID {
	return m.LookupContext(context.Background(), file)
}

// LookupContext is Lookup under a caller context (trace spans ride the
// frame to whichever owner shard answers).
func (m *ShardMapper) LookupContext(ctx context.Context, file ids.FileID) []ids.RMID {
	holders, err := m.LookupErrContext(ctx, file)
	if err != nil {
		m.log()("live: shard lookup: %v", err)
	}
	return holders
}

// LookupErrContext surfaces the transport failure to dfsc's typed lookup
// error path after the successor walk is exhausted.
func (m *ShardMapper) LookupErrContext(ctx context.Context, file ids.FileID) ([]ids.RMID, error) {
	reply, err := m.callFile(ctx, file, wire.KindLookup, wire.FileRef{File: file})
	if err != nil {
		return nil, err
	}
	if l, ok := reply.Payload.(wire.RMList); ok {
		return l.RMs, nil
	}
	return nil, fmt.Errorf("live: shard lookup: unexpected reply %v", reply.Kind)
}

// RMsWithout implements ecnp.Mapper.
func (m *ShardMapper) RMsWithout(file ids.FileID) []ids.RMID {
	reply, err := m.callFile(context.Background(), file, wire.KindRMsWithout, wire.FileRef{File: file})
	if err != nil {
		m.log()("live: shard rms-without: %v", err)
		return nil
	}
	if l, ok := reply.Payload.(wire.RMList); ok {
		return l.RMs
	}
	return nil
}

// AddReplica implements ecnp.Mapper (the serving owner mirrors onward).
func (m *ShardMapper) AddReplica(file ids.FileID, rm ids.RMID) error {
	_, err := m.callFile(context.Background(), file, wire.KindAddReplica, wire.ReplicaRef{File: file, RM: rm})
	return err
}

// RemoveReplica implements ecnp.Mapper.
func (m *ShardMapper) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	_, err := m.callFile(context.Background(), file, wire.KindRemoveReplica, wire.ReplicaRef{File: file, RM: rm})
	return err
}

// BeginReplication implements ecnp.Mapper.
func (m *ShardMapper) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	_, err := m.callFile(context.Background(), file, wire.KindBeginReplication,
		wire.BeginReplication{File: file, RM: rm, MaxTotal: maxTotal})
	return err
}

// EndReplication implements ecnp.Mapper.
func (m *ShardMapper) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	_, err := m.callFile(context.Background(), file, wire.KindEndReplication,
		wire.EndReplication{File: file, RM: rm, Commit: commit})
	return err
}

// ReplicaCount implements ecnp.Mapper.
func (m *ShardMapper) ReplicaCount(file ids.FileID) int {
	reply, err := m.callFile(context.Background(), file, wire.KindReplicaCount, wire.FileRef{File: file})
	if err != nil {
		m.log()("live: shard replica-count: %v", err)
		return 0
	}
	if n, ok := reply.Payload.(wire.Count); ok {
		return n.N
	}
	return 0
}

// RMs implements ecnp.Mapper: the resource list replicates everywhere,
// so the first shard that answers is canonical (index order, skipping
// unreachable members).
func (m *ShardMapper) RMs() []ecnp.RMInfo {
	for i, c := range m.clients {
		reply, err := c.t.Call(context.Background(), wire.KindRMs, nil)
		if err != nil {
			m.log()("live: shard %d rms: %v", i, err)
			continue
		}
		if l, ok := reply.Payload.(wire.RMInfoList); ok {
			return l.Infos
		}
	}
	return nil
}

// ShardMapperMetrics instruments the client's successor failover:
// retries that moved a call to the next owner shard, and calls that
// failed on the whole owner set.
type ShardMapperMetrics struct {
	// Retries counts file-keyed calls re-sent to a successor owner shard
	// after a transport failure (dfsqos_shardmap_successor_retries_total).
	Retries *telemetry.Counter
	// Exhausted counts calls that failed in transport on every owner
	// shard (dfsqos_shardmap_exhausted_total).
	Exhausted *telemetry.Counter
}

// NewShardMapperMetrics registers the shard-mapper metric families on
// reg (nil reg yields a live no-op sink).
func NewShardMapperMetrics(reg *telemetry.Registry) *ShardMapperMetrics {
	return &ShardMapperMetrics{
		Retries: reg.NewCounter("dfsqos_shardmap_successor_retries_total",
			"File-keyed metadata calls retried on a successor owner shard after a transport failure."),
		Exhausted: reg.NewCounter("dfsqos_shardmap_exhausted_total",
			"Metadata calls that failed in transport on every owner shard."),
	}
}

var _ ecnp.Mapper = (*ShardMapper)(nil)
