package live

import (
	"context"
	"io"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/replication"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// BenchmarkLiveStreamThroughput measures end-to-end data-plane throughput
// over real TCP on localhost: a live RM server streaming a provisioned
// file through the full stack (vdisk read, blkio throttle, wire framing,
// kernel sockets, client-side checksum verify). The disk throttle is set
// absurdly high so the codec and framing—not the QoS limiter—dominate.
// The gob sub-benchmark pins every connection to the seed codec; fast is
// the default build. Their ratio is the data-plane speedup BENCH_4.json
// records.
func BenchmarkLiveStreamThroughput(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			// Codec defaults apply to connections created afterwards, on
			// both ends (server accepts live in-process).
			prev := wire.SetDefaultFastPath(mode.fast)
			defer wire.SetDefaultFastPath(prev)

			lc := startLiveCluster(b,
				[]units.BytesPerSec{units.Mbps(1e6)}, // throttle out of the way
				map[ids.FileID][]ids.RMID{0: {1}},
				replication.DefaultConfig(replication.Static()), 100)
			defer lc.shutdown()

			served, ok := lc.dir.RMClient(1)
			if !ok {
				b.Fatal("RM 1 not reachable")
			}
			size := int64(lc.cat.File(0).Size)
			// Warm the stream path once WITH integrity verification: the
			// codec under measurement must produce checksum-clean bytes.
			if _, err := served.ReadFile(0, io.Discard); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			// The measured loop passes a nil checksum state: this benchmark
			// isolates transport throughput (codec, framing, syscalls); the
			// FNV verify cost is identical in both modes and benchmarked
			// separately (wire.BenchmarkChecksum).
			for i := 0; i < b.N; i++ {
				n, err := served.ReadFileAt(context.Background(), 0, 0, 0, io.Discard, nil)
				if err != nil {
					b.Fatal(err)
				}
				if n != size {
					b.Fatalf("streamed %d bytes, want %d", n, size)
				}
			}
		})
	}
}
