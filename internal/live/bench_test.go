package live

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// BenchmarkLiveStreamThroughput measures end-to-end data-plane throughput
// over real TCP on localhost: a live RM server streaming a provisioned
// file through the full stack (vdisk read, blkio throttle, wire framing,
// kernel sockets, client-side checksum verify). The disk throttle is set
// absurdly high so the codec and framing—not the QoS limiter—dominate.
// The gob sub-benchmark pins every connection to the seed codec; fast is
// the default build. Their ratio is the data-plane speedup BENCH_4.json
// records.
func BenchmarkLiveStreamThroughput(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			// Codec defaults apply to connections created afterwards, on
			// both ends (server accepts live in-process).
			prev := wire.SetDefaultFastPath(mode.fast)
			defer wire.SetDefaultFastPath(prev)

			lc := startLiveCluster(b,
				[]units.BytesPerSec{units.Mbps(1e6)}, // throttle out of the way
				map[ids.FileID][]ids.RMID{0: {1}},
				replication.DefaultConfig(replication.Static()), 100)
			defer lc.shutdown()

			served, ok := lc.dir.RMClient(1)
			if !ok {
				b.Fatal("RM 1 not reachable")
			}
			size := int64(lc.cat.File(0).Size)
			// Warm the stream path once WITH integrity verification: the
			// codec under measurement must produce checksum-clean bytes.
			if _, err := served.ReadFile(0, io.Discard); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			// The measured loop passes a nil checksum state: this benchmark
			// isolates transport throughput (codec, framing, syscalls); the
			// FNV verify cost is identical in both modes and benchmarked
			// separately (wire.BenchmarkChecksum).
			for i := 0; i < b.N; i++ {
				n, err := served.ReadFileAt(context.Background(), 0, 0, 0, io.Discard, nil)
				if err != nil {
					b.Fatal(err)
				}
				if n != size {
					b.Fatalf("streamed %d bytes, want %d", n, size)
				}
			}
		})
	}
}

// BenchmarkLiveWorkConservingThroughput is the work-conserving QoS
// headline: one RM capped at 32 MB/s hosts two reservations, each with a
// 16 MB/s assured floor. The measured loop streams reservation A while B
// idles — under the flat tree (ceilFrac 0, ceiling == floor) A is pinned
// to its 16 MB/s floor even though half the disk sits idle; under the
// work-conserving tree (ceilFrac 1) A borrows B's unused tokens and runs
// at the full 32 MB/s disk rate. The conserving/flat ratio is the
// utilization win BENCH_9.json gates on. After the timed loop, a fixed
// contention window streams both reservations greedily and asserts B's
// floor held (its rate stayed at least ~72% of assured); the result is
// reported as the "violations" metric, which the bench gate requires to
// be zero in both modes — work conservation must never be bought with a
// busy neighbor's guarantee.
func BenchmarkLiveWorkConservingThroughput(b *testing.B) {
	perRM := units.Mbps(256) // 32 MB/s disk; two 16 MB/s floors
	floor := perRM / 2
	for _, mode := range []struct {
		name     string
		ceilFrac float64
		steady   units.BytesPerSec // expected A-alone rate, for burst drain
	}{
		{"flat", 0, floor},
		{"conserving", 1, perRM},
	} {
		b.Run(mode.name, func(b *testing.B) {
			lc := startLiveCluster(b,
				[]units.BytesPerSec{perRM},
				map[ids.FileID][]ids.RMID{0: {1}},
				replication.DefaultConfig(replication.Static()), 100)
			defer lc.shutdown()
			if err := lc.rmSrvs[0].EnableStreamQoS(mode.ceilFrac); err != nil {
				b.Fatal(err)
			}
			cli, ok := lc.dir.RMClient(1)
			if !ok {
				b.Fatal("RM 1 not reachable")
			}
			const reqA, reqB = ids.RequestID(9001), ids.RequestID(9002)
			for _, req := range []ids.RequestID{reqA, reqB} {
				res := cli.Open(ecnp.OpenRequest{Request: req, File: 0, Bitrate: floor, DurationSec: 300})
				if !res.OK {
					b.Fatalf("open %v refused: %s", req, res.Reason)
				}
			}
			size := int64(lc.cat.File(0).Size)

			// Drain A's one-second token burst (and the root pool's) so the
			// measured loop sees the steady borrow-or-floor rate, not free
			// startup tokens: whole-file reads are repeated until one takes
			// ~the sustained-rate duration for this mode.
			throttled := time.Duration(float64(size) / float64(mode.steady) * float64(time.Second))
			for {
				start := time.Now()
				if _, err := cli.ReadFileAt(context.Background(), 0, reqA, 0, io.Discard, nil); err != nil {
					b.Fatal(err)
				}
				if time.Since(start) > throttled*3/4 {
					break
				}
			}

			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := cli.ReadFileAt(context.Background(), 0, reqA, 0, io.Discard, nil)
				if err != nil {
					b.Fatal(err)
				}
				if n != size {
					b.Fatalf("streamed %d bytes, want %d", n, size)
				}
			}
			b.StopTimer()

			// Contention window: both reservations stream greedily for a
			// fixed wall slice; B's floor must hold even while A has been
			// borrowing its headroom all benchmark long.
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := cli.ReadFileAt(context.Background(), 0, reqA, 0, io.Discard, nil); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			const window = 1500 * time.Millisecond
			var bBytes int64
			start := time.Now()
			for time.Since(start) < window {
				n, err := cli.ReadFileAt(context.Background(), 0, reqB, 0, io.Discard, nil)
				if err != nil {
					b.Fatal(err)
				}
				bBytes += n
			}
			elapsed := time.Since(start)
			close(stop)
			<-done
			if b.Failed() {
				b.FailNow()
			}
			bRate := units.BytesPerSec(float64(bBytes) / elapsed.Seconds())
			violations := 0.0
			if bRate < floor*72/100 {
				violations = 1
				b.Logf("floor violation: B ran at %v, assured %v", bRate, floor)
			}
			b.ReportMetric(violations, "violations")
		})
	}
}

// BenchmarkLiveStripedReadThroughput measures the K-wide striped read
// against per-replica blkio throttles: K RMs each capped at 32 MB/s, all
// holding the file, one dfsc client striping ranges across them. Unlike
// the raw streaming benchmark above, the throttle is deliberately IN the
// way — per-replica bandwidth is the bottleneck the stripe exists to
// aggregate, so throughput should scale ~linearly with K (the paper's
// single-RM QoS ceiling, multiplied by parallel replicas). K1 runs the
// sequential ReadWithFailover path and is the baseline BENCH_6.json's
// stripe-scaling gate compares K4 against.
func BenchmarkLiveStripedReadThroughput(b *testing.B) {
	perRM := units.Mbps(256) // 32 MB/s sustained per replica
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			caps := make([]units.BytesPerSec, k)
			holders := make([]ids.RMID, k)
			for i := range caps {
				caps[i] = perRM
				holders[i] = ids.RMID(i + 1)
			}
			lc := startLiveCluster(b, caps,
				map[ids.FileID][]ids.RMID{0: holders},
				replication.DefaultConfig(replication.Static()), 100)
			defer lc.shutdown()

			client, err := dfsc.New(dfsc.Options{
				ID:        1,
				Mapper:    lc.mmCli,
				Directory: lc.dir,
				Scheduler: lc.sched,
				Catalog:   lc.cat,
				Policy:    selection.RemOnly,
				Scenario:  qos.Soft,
				Rand:      rng.New(9),
			})
			if err != nil {
				b.Fatal(err)
			}
			size := int64(lc.cat.File(0).Size)
			segBytes := size / int64(3*k)

			// Drain every replica's one-second token burst (concurrently, so
			// no bucket refills while a sibling drains): once whole-file reads
			// take ~the sustained-rate duration, the bucket is pinned near
			// empty and the measured loop sees the steady throttle rate.
			throttled := time.Duration(float64(size) / float64(perRM) * float64(time.Second))
			var wg sync.WaitGroup
			for _, id := range holders {
				cli, ok := lc.dir.RMClient(id)
				if !ok {
					b.Fatalf("RM %v unreachable", id)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						start := time.Now()
						if _, err := cli.ReadFileAt(context.Background(), 0, 0, 0, io.Discard, nil); err != nil {
							b.Error(err)
							return
						}
						if time.Since(start) > throttled*3/4 {
							return
						}
					}
				}()
			}
			wg.Wait()
			if b.Failed() {
				b.FailNow()
			}

			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := client.ReadStriped(lc.dir, 0, io.Discard, dfsc.StripeConfig{
					Width:        k,
					SegmentBytes: segBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Bytes != size {
					b.Fatalf("striped %d bytes, want %d", res.Bytes, size)
				}
			}
		})
	}
}
