package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

// MMServer serves a Metadata Manager over TCP. One goroutine per
// connection; the mapper implementations are internally synchronized.
// Both the single mm.Manager and the DHT-sharded mm.ShardedManager fit.
type MMServer struct {
	mgr ecnp.Mapper
	ln  net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	logf    func(string, ...any)
	replyTO time.Duration
	metrics *ServerMetrics
	inj     faults.Injector
	tracer  *trace.Tracer
}

// NewMMServer starts listening on addr ("127.0.0.1:0" for an ephemeral
// port) and serves mgr until Close.
func NewMMServer(mgr ecnp.Mapper, addr string) (*MMServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: mm listen: %w", err)
	}
	s := &MMServer{
		mgr:     mgr,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		logf:    func(string, ...any) {},
		metrics: nopServerMetrics("mm"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger routes diagnostics (default: discard).
func (s *MMServer) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetReplyTimeout arms a per-frame write deadline on every connection
// accepted after the call, so a client that stops reading cannot wedge a
// handler goroutine mid-reply. Zero (default) disables the bound.
func (s *MMServer) SetReplyTimeout(d time.Duration) {
	s.mu.Lock()
	s.replyTO = d
	s.mu.Unlock()
}

// SetMetrics routes request/error/deadline telemetry (default: no-op).
// It applies to requests handled after the call.
func (s *MMServer) SetMetrics(m *ServerMetrics) {
	if m == nil {
		m = nopServerMetrics("mm")
	}
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// SetFaults arms a fault injector at faults.PointMMHandle (before each
// request handler; detail is the message kind). Nil disables injection.
func (s *MMServer) SetFaults(inj faults.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// SetTracer joins request traces arriving on the wire: every handled
// message whose frame carries a span context opens a server-side child
// span ("mm.<Kind>") recorded in tr's ring. Nil (the default) disables
// server-side spans; untraced frames never open spans either way.
func (s *MMServer) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

func (s *MMServer) injector() faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

func (s *MMServer) tr() *trace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// Addr returns the listening address.
func (s *MMServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all active connections.
func (s *MMServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *MMServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *MMServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	s.mu.Lock()
	wc.SetWriteTimeout(s.replyTO)
	m := s.metrics
	s.mu.Unlock()
	for {
		msg, err := wc.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("mm: read: %v", err)
			}
			return
		}
		m.request(msg.Kind)
		if err := s.handle(wc, msg); err != nil {
			m.failure(msg.Kind, err)
			s.logf("mm: handle %v: %v", msg.Kind, err)
			return
		}
	}
}

// beater is the optional liveness surface of a mapper. mm.Manager and
// mm.ShardedManager implement it; a mapper that does not (or a deployment
// with liveness disabled) simply accepts and ignores beacons, keeping
// ecnp.Mapper untouched.
type beater interface {
	Heartbeat(id ids.RMID) error
}

// shardPeer is the optional shard-group surface of a mapper: the local
// member of a replicated MM shard group (MMShard). The shard-plane
// messages — peer beats, mirrored mutations, keyspace handoffs — are
// refused by mappers that are not group members, so a misconfigured peer
// address fails loudly instead of silently corrupting a single MM.
type shardPeer interface {
	PeerBeat(shard int) error
	ApplyMirror(m wire.ShardMirror) error
	ApplyHandoff(h wire.ShardHandoff) (adopted int, err error)
}

func (s *MMServer) handle(wc *wire.Conn, msg wire.Msg) error {
	d := faults.Decide(s.injector(), faults.PointMMHandle, msg.Kind.String())
	if handled, err := applyFault(wc, d, wire.KindAck, wire.Ack{}, func() { s.Close() }); handled || err != nil {
		return err
	}
	var sp *trace.Span
	if msg.Trace.Valid() {
		// The guard keeps the name concat off the untraced path.
		sp = s.tr().StartChild(msg.Trace, "mm."+msg.Kind.String())
	}
	err := s.dispatch(wc, msg)
	if sp != nil {
		if err != nil {
			sp.SetOutcome("error")
		} else {
			sp.SetOutcome("ok")
		}
		sp.End()
	}
	return err
}

func (s *MMServer) dispatch(wc *wire.Conn, msg wire.Msg) error {
	switch msg.Kind {
	case wire.KindRegisterRM:
		req, ok := msg.Payload.(wire.RegisterRM)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad RegisterRM payload"))
		}
		if err := s.mgr.RegisterRM(req.Info, req.Files); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindLookup:
		req, ok := msg.Payload.(wire.FileRef)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Lookup payload"))
		}
		return wc.Write(wire.KindRMList, wire.RMList{RMs: s.mgr.Lookup(req.File)})
	case wire.KindRMsWithout:
		req, ok := msg.Payload.(wire.FileRef)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad RMsWithout payload"))
		}
		return wc.Write(wire.KindRMList, wire.RMList{RMs: s.mgr.RMsWithout(req.File)})
	case wire.KindAddReplica:
		req, ok := msg.Payload.(wire.ReplicaRef)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad AddReplica payload"))
		}
		if err := s.mgr.AddReplica(req.File, req.RM); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindRemoveReplica:
		req, ok := msg.Payload.(wire.ReplicaRef)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad RemoveReplica payload"))
		}
		if err := s.mgr.RemoveReplica(req.File, req.RM); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindBeginReplication:
		req, ok := msg.Payload.(wire.BeginReplication)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad BeginReplication payload"))
		}
		if err := s.mgr.BeginReplication(req.File, req.RM, req.MaxTotal); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindEndReplication:
		req, ok := msg.Payload.(wire.EndReplication)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad EndReplication payload"))
		}
		if err := s.mgr.EndReplication(req.File, req.RM, req.Commit); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindReplicaCount:
		req, ok := msg.Payload.(wire.FileRef)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ReplicaCount payload"))
		}
		return wc.Write(wire.KindCount, wire.Count{N: s.mgr.ReplicaCount(req.File)})
	case wire.KindRMs:
		return wc.Write(wire.KindRMInfoList, wire.RMInfoList{Infos: s.mgr.RMs()})
	case wire.KindHeartbeat:
		hb, ok := msg.Payload.(wire.Heartbeat)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Heartbeat payload"))
		}
		if b, ok := s.mgr.(beater); ok {
			if err := b.Heartbeat(hb.RM); err != nil {
				return wc.WriteError(err)
			}
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindShardBeat:
		b, ok := msg.Payload.(wire.ShardBeat)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ShardBeat payload"))
		}
		peer, ok := s.mgr.(shardPeer)
		if !ok {
			return wc.WriteError(fmt.Errorf("mm: not a shard-group member"))
		}
		if err := peer.PeerBeat(int(b.Shard)); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindShardMirror:
		mir, ok := msg.Payload.(wire.ShardMirror)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ShardMirror payload"))
		}
		peer, ok := s.mgr.(shardPeer)
		if !ok {
			return wc.WriteError(fmt.Errorf("mm: not a shard-group member"))
		}
		if err := peer.ApplyMirror(mir); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindShardHandoff:
		ho, ok := msg.Payload.(wire.ShardHandoff)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ShardHandoff payload"))
		}
		peer, ok := s.mgr.(shardPeer)
		if !ok {
			return wc.WriteError(fmt.Errorf("mm: not a shard-group member"))
		}
		n, err := peer.ApplyHandoff(ho)
		if err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindCount, wire.Count{N: n})
	default:
		return wc.WriteError(fmt.Errorf("mm: unexpected message %v", msg.Kind))
	}
}

// MMClient is an ecnp.Mapper stub over a pooled transport: concurrent
// calls proceed on independent connections with dial and call deadlines
// instead of serializing behind one mutex-guarded socket.
type MMClient struct {
	t    *transport.Client
	logf func(string, ...any)
}

// DialMM connects to an MM server with the default transport tuning,
// verifying connectivity eagerly.
func DialMM(addr string) (*MMClient, error) {
	return DialMMConfig(addr, transport.DefaultConfig())
}

// DialMMConfig is DialMM with explicit transport tuning.
func DialMMConfig(addr string, cfg transport.Config) (*MMClient, error) {
	t, err := transport.Dial(addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("live: dial mm %s: %w", addr, err)
	}
	return &MMClient{t: t, logf: func(string, ...any) {}}, nil
}

// NewMMClient attaches a client stub without probing connectivity: the
// transport dials lazily on first call. Shard-group members and the
// shard mapper use this so a listed-but-down member never blocks
// startup — the whole point of the group is surviving a dead member.
func NewMMClient(addr string, cfg transport.Config) *MMClient {
	return &MMClient{t: transport.NewClient(addr, cfg), logf: func(string, ...any) {}}
}

// SetLogger routes client-side diagnostics (lookup failures and the like)
// through logf; the default discards them, matching the servers.
func (c *MMClient) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c.logf = logf
}

// Close releases all pooled connections.
func (c *MMClient) Close() error { return c.t.Close() }

func (c *MMClient) call(kind wire.Kind, payload any) (wire.Msg, error) {
	return c.t.Call(context.Background(), kind, payload)
}

// RegisterRM implements ecnp.Mapper.
func (c *MMClient) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	_, err := c.call(wire.KindRegisterRM, wire.RegisterRM{Info: info, Files: files})
	return err
}

// Lookup implements ecnp.Mapper.
func (c *MMClient) Lookup(file ids.FileID) []ids.RMID {
	return c.LookupContext(context.Background(), file)
}

// LookupContext is Lookup carrying ctx to the MM: its deadline bounds the
// round trip and a span context attached via trace.NewContext rides the
// request frame, so the MM's readdir handling appears in the caller's
// trace.
func (c *MMClient) LookupContext(ctx context.Context, file ids.FileID) []ids.RMID {
	holders, err := c.LookupErrContext(ctx, file)
	if err != nil {
		c.logf("live: mm lookup: %v", err)
	}
	return holders
}

// LookupErrContext is LookupContext surfacing the failure with the
// transport taxonomy intact (dfsc's error-reporting mapper interface), so
// the client can tell a dead MM from a file with no replicas.
func (c *MMClient) LookupErrContext(ctx context.Context, file ids.FileID) ([]ids.RMID, error) {
	reply, err := c.t.Call(ctx, wire.KindLookup, wire.FileRef{File: file})
	if err != nil {
		return nil, err
	}
	if l, ok := reply.Payload.(wire.RMList); ok {
		return l.RMs, nil
	}
	return nil, fmt.Errorf("live: mm lookup: unexpected reply %v", reply.Kind)
}

// RMsWithout implements ecnp.Mapper.
func (c *MMClient) RMsWithout(file ids.FileID) []ids.RMID {
	reply, err := c.call(wire.KindRMsWithout, wire.FileRef{File: file})
	if err != nil {
		c.logf("live: mm rms-without: %v", err)
		return nil
	}
	if l, ok := reply.Payload.(wire.RMList); ok {
		return l.RMs
	}
	return nil
}

// AddReplica implements ecnp.Mapper.
func (c *MMClient) AddReplica(file ids.FileID, rm ids.RMID) error {
	_, err := c.call(wire.KindAddReplica, wire.ReplicaRef{File: file, RM: rm})
	return err
}

// RemoveReplica implements ecnp.Mapper.
func (c *MMClient) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	_, err := c.call(wire.KindRemoveReplica, wire.ReplicaRef{File: file, RM: rm})
	return err
}

// BeginReplication implements ecnp.Mapper.
func (c *MMClient) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	_, err := c.call(wire.KindBeginReplication, wire.BeginReplication{File: file, RM: rm, MaxTotal: maxTotal})
	return err
}

// EndReplication implements ecnp.Mapper.
func (c *MMClient) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	_, err := c.call(wire.KindEndReplication, wire.EndReplication{File: file, RM: rm, Commit: commit})
	return err
}

// ReplicaCount implements ecnp.Mapper.
func (c *MMClient) ReplicaCount(file ids.FileID) int {
	reply, err := c.call(wire.KindReplicaCount, wire.FileRef{File: file})
	if err != nil {
		c.logf("live: mm replica-count: %v", err)
		return 0
	}
	if n, ok := reply.Payload.(wire.Count); ok {
		return n.N
	}
	return 0
}

// Heartbeat sends one liveness beacon for id. A remote error means the MM
// does not know the RM (e.g. the MM restarted and lost the resource
// list): the caller must re-register, which also reconciles its file
// list.
func (c *MMClient) Heartbeat(id ids.RMID) error {
	_, err := c.call(wire.KindHeartbeat, wire.Heartbeat{RM: id})
	return err
}

// RMs implements ecnp.Mapper.
func (c *MMClient) RMs() []ecnp.RMInfo {
	reply, err := c.call(wire.KindRMs, nil)
	if err != nil {
		c.logf("live: mm rms: %v", err)
		return nil
	}
	if l, ok := reply.Payload.(wire.RMInfoList); ok {
		return l.Infos
	}
	return nil
}

var _ ecnp.Mapper = (*MMClient)(nil)
