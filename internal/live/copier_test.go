package live

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
)

// TestLiveReplicationMovesRealBytes wires the DataCopier so a dynamic
// replication physically streams the file to the destination's disk, then
// verifies byte-for-byte integrity and that reads from the new replica
// serve the copied content.
func TestLiveReplicationMovesRealBytes(t *testing.T) {
	mmSrv, err := NewMMServer(mm.New(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mmSrv.Close()
	sched := NewWallScheduler(100)
	defer sched.Stop()

	repCfg := replication.DefaultConfig(replication.Rep(1, 8))
	repCfg.CooldownSec = 0.01
	repCfg.Speed = units.Mbps(400) // fast copy in wall time

	hot := ids.FileID(3)
	const hotSize = 2 * units.MB
	master := rng.New(17)

	type nodeSet struct {
		srv  *RMServer
		disk *vdisk.Disk
	}
	var nodes []nodeSet
	for i, capBW := range []units.BytesPerSec{units.Mbps(8), units.Mbps(100)} {
		id := ids.RMID(i + 1)
		ctrl := blkio.NewController()
		disk, err := vdisk.New(64*units.MB, ctrl, fmt.Sprintf("vm%d", id), capBW, capBW)
		if err != nil {
			t.Fatal(err)
		}
		files := map[ids.FileID]rm.FileMeta{}
		if id == 1 {
			files[hot] = rm.FileMeta{Bitrate: units.Mbps(2), Size: hotSize, DurationSec: 8}
			if err := disk.Provision(FileName(hot), hotSize); err != nil {
				t.Fatal(err)
			}
		}
		mapperCli, err := DialMM(mmSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		dir := NewDirectory(mapperCli)
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: 64 * units.MB},
			Scheduler:   sched,
			Mapper:      mapperCli,
			History:     history.DefaultConfig(),
			Replication: repCfg,
			Rand:        master.Split(id.String()),
			Files:       files,
			Copier:      NewCopier(disk, dir, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewRMServer(node, disk, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		info := node.Info()
		info.Addr = srv.Addr()
		fileIDs := make([]ids.FileID, 0, len(files))
		for f := range files {
			fileIDs = append(fileIDs, f)
		}
		if err := mapperCli.RegisterRM(info, fileIDs); err != nil {
			t.Fatal(err)
		}
		node.SetDirectory(dir)
		nodes = append(nodes, nodeSet{srv: srv, disk: disk})
	}

	// Overload RM1 and fire the trigger.
	src := nodes[0].srv.Node()
	src.Open(ecnp.OpenRequest{Request: 1, File: hot, Bitrate: units.Mbps(7.5), DurationSec: 3600})
	src.HandleCFP(ecnp.CFP{Request: 2, File: hot, Bitrate: units.Mbps(2), DurationSec: 8})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[1].srv.Node().HasFile(hot) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !nodes[1].srv.Node().HasFile(hot) {
		t.Fatal("replica never landed on RM2")
	}

	// The destination disk holds the exact source bytes.
	srcSum, err := nodes[0].disk.Checksum(FileName(hot))
	if err != nil {
		t.Fatal(err)
	}
	dstSum, err := nodes[1].disk.Checksum(FileName(hot))
	if err != nil {
		t.Fatal(err)
	}
	if srcSum != dstSum {
		t.Fatalf("replica checksum %x differs from source %x", dstSum, srcSum)
	}

	// A read from the new replica over TCP serves the copied content.
	mapperCli, err := DialMM(mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mapperCli.Close()
	dir := NewDirectory(mapperCli)
	defer dir.Close()
	cli, ok := dir.RMClient(2)
	if !ok {
		t.Fatal("RM2 unreachable")
	}
	var buf bytes.Buffer
	n, err := cli.ReadFile(hot, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(hotSize) {
		t.Fatalf("read %d bytes from replica, want %d", n, hotSize)
	}
	if vdisk.ChecksumBytes(buf.Bytes()) != srcSum {
		t.Fatal("replica content differs from source content")
	}
}

// TestLiveStoreFile exercises the write path over TCP: remote admission
// via StoreFile, then the data bytes via WriteFile, then a checksummed
// read back.
func TestLiveStoreFile(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50)},
		nil,
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	cli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM1 unreachable")
	}
	meta := lc.cat.File(2)
	err := cli.StoreFile(ecnp.StoreRequest{
		File: 2, Bitrate: meta.Bitrate, SizeBytes: meta.Size, DurationSec: meta.DurationSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate store is refused remotely.
	if err := cli.StoreFile(ecnp.StoreRequest{File: 2, Bitrate: meta.Bitrate, SizeBytes: meta.Size, DurationSec: meta.DurationSec}); err == nil {
		t.Fatal("duplicate remote store accepted")
	}
	// Upload explicit bytes and read them back verified.
	payload := bytes.Repeat([]byte("storage-qos!"), 4096)
	if err := cli.WriteFile(context.Background(), 2, 0, int64(len(payload)), bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := cli.ReadFile(2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) || !bytes.Equal(buf.Bytes(), payload) {
		t.Fatalf("read back %d bytes, mismatch", n)
	}
	if !lc.rmSrvs[0].Node().HasFile(2) {
		t.Fatal("RM does not own the stored file")
	}
}
