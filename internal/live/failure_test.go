package live

import (
	"testing"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
)

// TestRMCrashFallback kills one replica holder mid-deployment and verifies
// a client access still succeeds through the surviving holder: the dead
// RM's CFP degrades to a zero bid instead of aborting the negotiation.
func TestRMCrashFallback(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50), units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1, 2}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the directory so a cached (now dead) connection is exercised.
	if _, ok := lc.dir.RMClient(2); !ok {
		t.Fatal("RM2 unreachable before crash")
	}
	// Crash RM2.
	lc.rmSrvs[1].Close()

	out := client.Access(0)
	if !out.OK {
		t.Fatalf("access failed after single-RM crash: %s", out.Reason)
	}
	if out.RM != 1 {
		t.Fatalf("served by %v, want surviving RM1", out.RM)
	}
}

// TestAllHoldersDownFailsCleanly verifies the client reports failure (not
// a hang or panic) when every replica holder is gone.
func TestAllHoldersDownFailsCleanly(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	lc.dir.RMClient(1) // cache the connection
	lc.rmSrvs[0].Close()

	out := client.Access(0)
	if out.OK {
		t.Fatal("access succeeded with every holder down")
	}
	st := client.Stats()
	if st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOfferToDeadDestinationSkipped verifies the replication source
// tolerates a dead destination: the offer fails and replication proceeds
// to the next candidate (or quietly does nothing) without wedging the RM.
func TestOfferToDeadDestinationSkipped(t *testing.T) {
	cfg := replication.DefaultConfig(replication.Rep(1, 8))
	cfg.CooldownSec = 0.01
	cfg.Speed = units.Mbps(1000)
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(5), units.Mbps(100), units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1}},
		cfg, 1000)
	defer lc.shutdown()

	// Kill RM2 so the source's offer to it fails over TCP.
	lc.dir.RMClient(2)
	lc.rmSrvs[1].Close()

	src := lc.rmSrvs[0].Node()
	src.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(4.5), DurationSec: 3600})
	meta := lc.cat.File(0)
	src.HandleCFP(ecnp.CFP{Request: 2, File: 0, Bitrate: meta.Bitrate, DurationSec: meta.DurationSec})

	// The trigger must not wedge: either RM3 received the copy or no
	// transfer started; in both cases the source is in a clean state.
	st := src.Stats()
	if st.RepTriggers > 1 {
		t.Fatalf("source triggered %d times", st.RepTriggers)
	}
	// A second CFP after the cooldown must not panic or deadlock.
	src.HandleCFP(ecnp.CFP{Request: 3, File: 0, Bitrate: meta.Bitrate, DurationSec: meta.DurationSec})
}
