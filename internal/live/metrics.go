package live

import (
	"dfsqos/internal/telemetry"
	"dfsqos/internal/wire"
)

// ServerMetrics instruments one wire server's request loop: requests and
// errors by message kind, plus reply-write deadline hits (a client that
// stopped reading mid-reply). Families are shared across servers through
// the registry's get-or-create semantics, partitioned by the server
// label ("mm" or "rm").
type ServerMetrics struct {
	server       string
	requests     *telemetry.CounterVec
	errors       *telemetry.CounterVec
	deadlineHits *telemetry.Counter
}

// NewServerMetrics builds the wire-server instrumentation for one server
// role. reg may be nil (no-op metrics).
func NewServerMetrics(reg *telemetry.Registry, server string) *ServerMetrics {
	hits := reg.NewCounterVec("dfsqos_wire_reply_deadline_hits_total",
		"Reply writes that hit the per-frame write deadline (stalled reader).", "server")
	return &ServerMetrics{
		server: server,
		requests: reg.NewCounterVec("dfsqos_wire_requests_total",
			"Requests handled by the wire servers, by message kind.", "server", "kind"),
		errors: reg.NewCounterVec("dfsqos_wire_errors_total",
			"Requests whose handling failed, by message kind.", "server", "kind"),
		deadlineHits: hits.With(server),
	}
}

// nopServerMetrics builds an unregistered sink for servers without
// telemetry.
func nopServerMetrics(server string) *ServerMetrics {
	return NewServerMetrics(nil, server)
}

// request counts one handled request of the given kind.
func (m *ServerMetrics) request(kind wire.Kind) {
	m.requests.With(m.server, kind.String()).Inc()
}

// failure counts one failed handling, splitting out reply-write deadline
// overruns.
func (m *ServerMetrics) failure(kind wire.Kind, err error) {
	m.errors.With(m.server, kind.String()).Inc()
	if wire.IsWriteDeadline(err) {
		m.deadlineHits.Inc()
	}
}

// DeadlineHits exposes the deadline-hit counter (tests).
func (m *ServerMetrics) DeadlineHits() uint64 { return m.deadlineHits.Value() }

// CopierMetrics instruments the replication data plane: bytes moved and
// transfers in flight. Scraping rate(dfsqos_replication_bytes_total)
// yields the replication throughput in bytes/sec.
type CopierMetrics struct {
	// Bytes counts replica payload bytes read from the source disk and
	// sent to destinations (dfsqos_replication_bytes_total).
	Bytes *telemetry.Counter
	// ActiveTransfers gauges in-flight outbound copies
	// (dfsqos_replication_active_transfers).
	ActiveTransfers *telemetry.Gauge
	// TransfersOK / TransfersFailed count completed outbound copies by
	// outcome (dfsqos_replication_transfers_total{result}).
	TransfersOK     *telemetry.Counter
	TransfersFailed *telemetry.Counter
}

// NewCopierMetrics registers the replication metric families on reg (nil
// reg yields a no-op sink).
func NewCopierMetrics(reg *telemetry.Registry) *CopierMetrics {
	results := reg.NewCounterVec("dfsqos_replication_transfers_total",
		"Completed outbound replica copies by result.", "result")
	return &CopierMetrics{
		Bytes: reg.NewCounter("dfsqos_replication_bytes_total",
			"Replica payload bytes streamed to destination RMs."),
		ActiveTransfers: reg.NewGauge("dfsqos_replication_active_transfers",
			"Outbound replica copies currently in flight."),
		TransfersOK:     results.With("ok"),
		TransfersFailed: results.With("error"),
	}
}
