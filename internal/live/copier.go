package live

import (
	"context"
	"fmt"
	"io"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/ids"
	"dfsqos/internal/rm"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/trace"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
)

// Copier implements rm.DataCopier over TCP: it streams the replica's bytes
// from the local virtual disk to the destination RM, paced at the
// replication transfer rate (the paper's 1.8 Mbit/s riding the B_REV
// reserve — the source reads and destination writes bypass the QoS
// throttle groups, matching the reserve semantics).
type Copier struct {
	disk *vdisk.Disk
	dir  *Directory
	// scale multiplies the pacing rate, so a deployment running its
	// WallScheduler at N virtual seconds per wall second replicates
	// N× faster in wall time and the virtual-time dynamics match the DES.
	scale   float64
	metrics *CopierMetrics
	tracer  *trace.Tracer
}

// NewCopier builds a copier for one RM. scale must match the deployment's
// WallScheduler scale (1 for real time).
func NewCopier(disk *vdisk.Disk, dir *Directory, scale float64) *Copier {
	if scale <= 0 {
		panic("live: non-positive copier scale")
	}
	return &Copier{disk: disk, dir: dir, scale: scale, metrics: NewCopierMetrics(nil)}
}

// SetMetrics routes replication data-plane telemetry (default: no-op).
func (c *Copier) SetMetrics(m *CopierMetrics) {
	if m == nil {
		m = NewCopierMetrics(nil)
	}
	c.metrics = m
}

// SetTracer enables replication tracing: each CopyReplica opens a root
// span ("rm.replicate") whose trace ID is the replication ID, so a
// replica copy shows up in /traces like any client request (nil: no-op).
func (c *Copier) SetTracer(t *trace.Tracer) { c.tracer = t }

// CopyReplica implements rm.DataCopier.
func (c *Copier) CopyReplica(dst ids.RMID, rep ids.ReplicationID, file ids.FileID, meta rm.FileMeta, rate units.BytesPerSec) error {
	sp := c.tracer.StartRoot(ids.RequestID(rep), "rm.replicate").
		SetRM(dst).SetFile(file).SetBytes(int64(meta.Size))
	defer sp.End()
	cli, ok := c.dir.RMClient(dst)
	if !ok {
		c.metrics.TransfersFailed.Inc()
		sp.SetOutcome("error")
		return fmt.Errorf("live: copier: %v unreachable", dst)
	}
	src := &pacedFileReader{
		disk:  c.disk,
		name:  FileName(file),
		size:  int64(meta.Size),
		pace:  newPacer(units.BytesPerSec(float64(rate) * c.scale)),
		bytes: c.metrics.Bytes,
	}
	ctx := trace.NewContext(context.Background(), sp.Context())
	c.metrics.ActiveTransfers.Inc()
	err := cli.WriteFile(ctx, file, rep, int64(meta.Size), src)
	c.metrics.ActiveTransfers.Dec()
	if err != nil {
		c.metrics.TransfersFailed.Inc()
		sp.SetOutcome("error")
	} else {
		c.metrics.TransfersOK.Inc()
		sp.SetOutcome("ok")
	}
	return err
}

var _ rm.DataCopier = (*Copier)(nil)

// pacedFileReader streams a vdisk file through a private token bucket
// (raw reads: the replication reserve, not the VM's QoS throttle).
type pacedFileReader struct {
	disk  *vdisk.Disk
	name  string
	size  int64
	off   int64
	pace  *pacer
	bytes *telemetry.Counter
}

func (r *pacedFileReader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	if len(p) > 64*1024 {
		p = p[:64*1024]
	}
	n, err := r.disk.ReadAtRaw(r.name, p, r.off)
	if n > 0 {
		r.pace.wait(n)
		r.off += int64(n)
		r.bytes.Add(uint64(n))
	}
	return n, err
}

// pacer is a minimal token bucket over wall time.
type pacer struct {
	ctrl  *blkio.Controller
	group *blkio.Group
}

func newPacer(rate units.BytesPerSec) *pacer {
	ctrl := blkio.NewController()
	g, err := ctrl.SetGroup("pace", rate, 0)
	if err != nil {
		panic(err) // rate > 0 by construction
	}
	return &pacer{ctrl: ctrl, group: g}
}

func (p *pacer) wait(n int) {
	if d := p.ctrl.Reserve(p.group, blkio.Read, n); d > 0 {
		time.Sleep(d)
	}
}
