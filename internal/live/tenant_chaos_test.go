package live

import (
	"context"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/tenant"
	"dfsqos/internal/units"
)

// TestChaosAbusiveTenantKilledQuotaReclaimed is the multi-tenant crash
// drill over real TCP: an abusive tenant storms an RM until its
// bandwidth quota refuses further admissions, a victim tenant keeps
// streaming through the storm within its latency SLO, and when the
// abuser is killed mid-storm (its connections vanish without Close) the
// lease sweeper must hand the orphaned reservations' bandwidth back to
// the tenant ledger — after which the same tenant admits again. The
// refusals and the reclaim are both asserted through the exported
// dfsqos_tenant_* telemetry, the way an operator would see the incident.
func TestChaosAbusiveTenantKilledQuotaReclaimed(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:        []units.BytesPerSec{units.Mbps(100)},
		holders:     map[ids.FileID][]ids.RMID{0: {1}, 1: {1}},
		leaseTTLSec: 5, // virtual seconds; 50ms of wall time at scale 100
		tenancy:     true,
	})
	defer lc.shutdown()

	const abuser, victim = ids.TenantID(1), ids.TenantID(2)
	storm := lc.cat.File(0)
	// The abuser's per-RM quota fits exactly two concurrent streams of
	// the storm file; the victim tenant stays unlimited.
	lc.ledgers[1].Set(abuser, tenant.Quota{Bandwidth: 2 * storm.Bitrate, Bytes: tenant.NoLimit})

	cli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM1 unreachable")
	}
	open := func(req ids.RequestID, f ids.FileID, tn ids.TenantID) ecnp.OpenResult {
		meta := lc.cat.File(f)
		return cli.Open(ecnp.OpenRequest{
			Request: req, File: f, Tenant: tn,
			Bitrate: meta.Bitrate, DurationSec: meta.DurationSec,
		})
	}

	// The storm: the abuser opens until the ledger refuses. Exactly two
	// reservations fit its quota; the third must be refused with the
	// tenant named in the reason even though the RM itself has ~100 Mbps
	// of headroom left.
	for req := ids.RequestID(1); req <= 2; req++ {
		if res := open(req, 0, abuser); !res.OK {
			t.Fatalf("abuser open %v refused under quota: %s", req, res.Reason)
		}
	}
	refused := open(3, 0, abuser)
	if refused.OK {
		t.Fatal("third abuser stream admitted past a two-stream quota")
	}
	if !strings.Contains(refused.Reason, abuser.String()) {
		t.Fatalf("quota refusal does not name the tenant: %q", refused.Reason)
	}

	// The victim streams through the storm: open, read, close, eight
	// times, recording wall latency. Every read must complete and the
	// victims' p99 stays within the (generous) live SLO.
	var lat []time.Duration
	for i := 0; i < 8; i++ {
		req := ids.RequestID(100 + i)
		if res := open(req, 1, victim); !res.OK {
			t.Fatalf("victim open %v refused during the storm: %s", req, res.Reason)
		}
		t0 := time.Now()
		n, err := cli.ReadFileAt(context.Background(), 1, req, 0, io.Discard, nil)
		if err != nil {
			t.Fatalf("victim read %v: %v", req, err)
		}
		if n != int64(lc.cat.File(1).Size) {
			t.Fatalf("victim read %v streamed %d bytes, want %d", req, n, int64(lc.cat.File(1).Size))
		}
		lat = append(lat, time.Since(t0))
		cli.Close(req)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if p99 := lat[len(lat)-1]; p99 > 5*time.Second {
		t.Fatalf("victim p99 %v during the storm violates the 5s SLO", p99)
	}

	// Kill the abuser mid-storm: its reservations are simply abandoned —
	// no Close, no keepalives — so both leases go stale (~10 virtual
	// seconds) and one sweep must reclaim exactly the two orphans.
	time.Sleep(100 * time.Millisecond)
	if n := lc.nodes[1].SweepLeases(lc.sched.Now()); n != 2 {
		t.Fatalf("sweep reclaimed %d reservations, want the abuser's 2", n)
	}

	// The sweep returned the bandwidth to the ledger: the same tenant
	// admits again immediately, and the ledger shows no residue.
	if res := open(4, 0, abuser); !res.OK {
		t.Fatalf("abuser open after sweep refused — quota not released: %s", res.Reason)
	}
	for _, u := range lc.nodes[1].TenantUsage() {
		if u.Tenant != abuser {
			continue
		}
		if u.Streams != 1 || u.Bandwidth != storm.Bitrate {
			t.Fatalf("abuser ledger after sweep + one open: %d streams at %v, want 1 at %v",
				u.Streams, u.Bandwidth, storm.Bitrate)
		}
	}

	// The incident is visible on /metrics: at least one counted refusal
	// for tenant1 and live per-tenant gauges.
	exp := lc.exposition(t)
	if !strings.Contains(exp, `dfsqos_tenant_rejections_total{tenant="tenant1"}`) {
		t.Fatalf("tenant rejection counter missing from exposition:\n%s", exp)
	}
	if !strings.Contains(exp, `dfsqos_tenant_reserved_bandwidth_bytes_per_second{tenant="tenant1"}`) {
		t.Fatalf("tenant bandwidth gauge missing from exposition:\n%s", exp)
	}
}
