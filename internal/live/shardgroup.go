package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

// MMShard is one member of a replicated MM shard group: the mapper an
// mmd process serves when the metadata plane runs as N cooperating
// processes instead of one. Each member holds a full *mm.Manager
// confined to its slice of the keyspace — every file whose ring owner
// set (primary + R-1 successors) includes this member — plus client
// stubs to its peer shards.
//
// Write path: the client routes a mutation to the key's first live
// owner; that member applies it locally and mirrors it synchronously to
// the other live owners (KindShardMirror). Mirror application is
// terminal — a receiver applies locally and never re-mirrors, so
// mirrors cannot loop. Read path: the client reads from the first live
// owner's local manager; no cross-shard traffic at all.
//
// Failure path: members beat each other (KindShardBeat, the PR 3
// liveness machinery turned sideways); a member that detects a peer's
// silence runs the takeover handoff — every mapping it shares with the
// dead shard, and for which it is the first live owner, is pushed to
// the next live successor beyond the owner set (KindShardHandoff), so
// the group returns to R live replicas of that slice. When the dead
// shard beats again (restarted, probably empty), the same rule pushes
// the keyspace back as a heal handoff, and the shard's revival epoch
// bumps. Handoff application is idempotent, so overlapping pushes from
// multiple members converge instead of erroring.
type MMShard struct {
	index  int
	ring   *mm.Ring
	rep    int
	local  *mm.Manager
	health *mm.ShardHealth
	met    *mm.Metrics

	mu    sync.Mutex
	peers []*MMClient // ring-index aligned; nil at own index / unset
	inj   faults.Injector
	logf  func(string, ...any)
}

// NewMMShard builds group member index of a shards-wide group with
// replication factor rep (clamped to [1, shards]). beat arms shard
// liveness: a peer silent for MissThreshold × HeartbeatInterval is dead.
// A zero beat config disables expiry (single-process tests drive health
// directly). Peers are attached afterwards with SetPeer or DialPeers.
func NewMMShard(index, shards, rep int, beat mm.LivenessConfig) (*MMShard, error) {
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("live: shard index %d outside [0,%d)", index, shards)
	}
	if rep < 1 {
		rep = 1
	}
	if rep > shards {
		rep = shards
	}
	return &MMShard{
		index:  index,
		ring:   mm.NewRing(shards),
		rep:    rep,
		local:  mm.New(),
		health: mm.NewShardHealth(shards, beat),
		met:    mm.NewMetrics(nil),
		peers:  make([]*MMClient, shards),
		logf:   func(string, ...any) {},
	}, nil
}

// Index returns this member's ring index.
func (s *MMShard) Index() int { return s.index }

// Local exposes the member's local manager (tests and the monitor).
func (s *MMShard) Local() *mm.Manager { return s.local }

// Health exposes the member's shard liveness table.
func (s *MMShard) Health() *mm.ShardHealth { return s.health }

// SetPeer attaches the client stub for peer shard i (ignored for the
// member's own index).
func (s *MMShard) SetPeer(i int, c *MMClient) {
	if i == s.index {
		return
	}
	s.mu.Lock()
	s.peers[i] = c
	s.mu.Unlock()
}

// DialPeers attaches client stubs for every non-empty address in addrs
// (ring-index aligned; the member's own slot is skipped). Dialing is
// lazy at the transport layer, so listed-but-down peers do not block
// startup.
func (s *MMShard) DialPeers(addrs []string, cfg transport.Config) error {
	for i, addr := range addrs {
		if i == s.index || addr == "" {
			continue
		}
		s.SetPeer(i, NewMMClient(addr, cfg))
	}
	return nil
}

// ClosePeers releases every peer stub's pooled connections.
func (s *MMShard) ClosePeers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.peers {
		if c != nil {
			c.Close()
			s.peers[i] = nil
		}
	}
}

// SetLogger routes diagnostics (default: discard).
func (s *MMShard) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.mu.Lock()
	s.logf = logf
	s.mu.Unlock()
}

// SetFaults arms a fault injector at faults.PointShardMirror (before
// each mirror send; detail is the mutation name) and
// faults.PointShardHandoff (before each handoff push; detail is the
// direction). Nil disables injection.
func (s *MMShard) SetFaults(inj faults.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// SetMetrics routes this member's MM telemetry — both the local
// manager's RM series and the shard-group series (beats, mirrors,
// handoffs, transitions).
func (s *MMShard) SetMetrics(met *mm.Metrics) {
	if met == nil {
		met = mm.NewMetrics(nil)
	}
	s.mu.Lock()
	s.met = met
	s.mu.Unlock()
	s.local.SetMetrics(met)
	s.health.SetMetrics(met)
}

// SetLiveness arms RM failure detection on the local manager.
func (s *MMShard) SetLiveness(cfg mm.LivenessConfig) { s.local.SetLiveness(cfg) }

func (s *MMShard) injector() faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

func (s *MMShard) log() func(string, ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logf
}

func (s *MMShard) peer(i int) *MMClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers[i]
}

// ownersOf returns file's owner set, primary first, in ring order.
func (s *MMShard) ownersOf(file ids.FileID) []int {
	return s.ring.SuccessorsOfFile(int64(file), s.rep)
}

// owns reports whether this member is in file's owner set.
func (s *MMShard) owns(file ids.FileID) bool {
	return containsShardIndex(s.ownersOf(file), s.index)
}

// RegisterRM implements ecnp.Mapper. The client fans registrations to
// every live shard with the RM's full file list; each member keeps the
// files it owns (so the per-shard reconcile prunes exactly its slice).
func (s *MMShard) RegisterRM(info ecnp.RMInfo, files []ids.FileID) error {
	owned := make([]ids.FileID, 0, len(files))
	for _, f := range files {
		if s.owns(f) {
			owned = append(owned, f)
		}
	}
	return s.local.RegisterRM(info, owned)
}

// Lookup implements ecnp.Mapper (local replica of the mapping).
func (s *MMShard) Lookup(file ids.FileID) []ids.RMID { return s.local.Lookup(file) }

// RMsWithout implements ecnp.Mapper.
func (s *MMShard) RMsWithout(file ids.FileID) []ids.RMID { return s.local.RMsWithout(file) }

// AddReplica implements ecnp.Mapper: local apply + mirror to co-owners.
func (s *MMShard) AddReplica(file ids.FileID, rm ids.RMID) error {
	if err := s.local.AddReplica(file, rm); err != nil {
		return err
	}
	s.mirror(file, wire.ShardMirror{Op: "AddReplica", File: file, RM: rm})
	return nil
}

// RemoveReplica implements ecnp.Mapper.
func (s *MMShard) RemoveReplica(file ids.FileID, rm ids.RMID) error {
	if err := s.local.RemoveReplica(file, rm); err != nil {
		return err
	}
	s.mirror(file, wire.ShardMirror{Op: "RemoveReplica", File: file, RM: rm})
	return nil
}

// BeginReplication implements ecnp.Mapper.
func (s *MMShard) BeginReplication(file ids.FileID, rm ids.RMID, maxTotal int) error {
	if err := s.local.BeginReplication(file, rm, maxTotal); err != nil {
		return err
	}
	s.mirror(file, wire.ShardMirror{Op: "BeginReplication", File: file, RM: rm, MaxTotal: maxTotal})
	return nil
}

// EndReplication implements ecnp.Mapper.
func (s *MMShard) EndReplication(file ids.FileID, rm ids.RMID, commit bool) error {
	if err := s.local.EndReplication(file, rm, commit); err != nil {
		return err
	}
	s.mirror(file, wire.ShardMirror{Op: "EndReplication", File: file, RM: rm, Commit: commit})
	return nil
}

// ReplicaCount implements ecnp.Mapper.
func (s *MMShard) ReplicaCount(file ids.FileID) int { return s.local.ReplicaCount(file) }

// RMs implements ecnp.Mapper (the resource list replicates to every
// member through the client's registration fan-out).
func (s *MMShard) RMs() []ecnp.RMInfo { return s.local.RMs() }

// Heartbeat accepts an RM liveness beacon (the client fans it to every
// live shard; each member tracks its own copy of the liveness table).
func (s *MMShard) Heartbeat(id ids.RMID) error { return s.local.Heartbeat(id) }

// mirror replays a just-applied mutation to the other live owners of
// file. A mirror failure is counted and logged, not returned: the write
// already committed on the serving owner, and the handoff/heal protocol
// reconverges a diverged mirror, so availability wins over blocking the
// client. The faults point models a shard-to-shard partition: a Drop or
// Kill decision suppresses the send entirely.
func (s *MMShard) mirror(file ids.FileID, m wire.ShardMirror) {
	inj, logf := s.injector(), s.log()
	for _, o := range s.ownersOf(file) {
		if o == s.index || !s.health.Alive(o) {
			continue
		}
		p := s.peer(o)
		if p == nil {
			continue
		}
		switch d := faults.Decide(inj, faults.PointShardMirror, m.Op); d.Action {
		case faults.Drop, faults.Kill:
			s.met.ShardMirrorsFailed.Inc()
			continue // partitioned: the send never happens
		case faults.Error:
			s.met.ShardMirrorsFailed.Inc()
			logf("live: shard %d mirror %s to %d: %v", s.index, m.Op, o, d.Err)
			continue
		case faults.Delay:
			time.Sleep(d.Delay)
		}
		if _, err := p.t.Call(context.Background(), wire.KindShardMirror, m); err != nil {
			s.met.ShardMirrorsFailed.Inc()
			logf("live: shard %d mirror %s to %d: %v", s.index, m.Op, o, err)
			continue
		}
		s.met.ShardMirrorsOK.Inc()
	}
}

// PeerBeat implements the shard-peer surface: a liveness beacon from
// peer shard i. A beat that revives a dead peer triggers the heal
// handoff asynchronously — the revived shard (typically a restarted,
// empty process) gets its keyspace pushed back.
func (s *MMShard) PeerBeat(i int) error {
	if i < 0 || i >= s.ring.Shards() || i == s.index {
		return fmt.Errorf("live: shard %d: bad peer beat from %d", s.index, i)
	}
	s.met.ShardBeats.Inc()
	if s.health.Beat(i) {
		go s.Heal(i)
	}
	return nil
}

// ApplyMirror implements the shard-peer surface: apply a mutation
// mirrored by the serving owner, terminally (never re-mirrored).
// Replica add/remove apply idempotently — a mirror can race a handoff
// batch carrying the same mapping, and converging beats erroring.
func (s *MMShard) ApplyMirror(m wire.ShardMirror) error {
	switch m.Op {
	case "AddReplica":
		_, err := s.local.AdoptReplicas(m.File, []ids.RMID{m.RM})
		return err
	case "RemoveReplica":
		if !containsRMID(s.local.Replicas(m.File), m.RM) {
			return nil // already gone
		}
		return s.local.RemoveReplica(m.File, m.RM)
	case "BeginReplication":
		return s.local.BeginReplication(m.File, m.RM, m.MaxTotal)
	case "EndReplication":
		return s.local.EndReplication(m.File, m.RM, m.Commit)
	}
	return fmt.Errorf("live: shard %d: unknown mirror op %q", s.index, m.Op)
}

// ApplyHandoff implements the shard-peer surface: adopt a keyspace batch
// pushed by a peer. Unknown RMs register first (a restarted shard is
// empty), then each entry merges idempotently. The handoff-entry counter
// advances by what was actually new, labeled with the push direction.
func (s *MMShard) ApplyHandoff(h wire.ShardHandoff) (int, error) {
	for _, info := range h.Infos {
		if _, known := s.local.RM(info.ID); known {
			continue
		}
		if err := s.local.RegisterRM(info, nil); err != nil {
			return 0, err
		}
	}
	adopted := 0
	for _, e := range h.Entries {
		n, err := s.local.AdoptReplicas(e.File, e.RMs)
		if err != nil {
			return adopted, err
		}
		adopted += n
	}
	switch h.Direction {
	case "heal":
		s.met.HandoffHeal.Add(uint64(adopted))
	default:
		s.met.HandoffTakeover.Add(uint64(adopted))
	}
	return adopted, nil
}

// Sweep latches peers that crossed their beat deadline and runs the
// takeover handoff for each newly-dead one. The beat loop calls it every
// tick; tests call it directly.
func (s *MMShard) Sweep() {
	// A running member is its own proof of life: nothing beats self over
	// the wire, so refresh the member's own slot (Stamp, not Beat — a
	// stalled tick must not read as a death plus revival) before latching.
	s.health.Stamp(s.index)
	for _, dead := range s.health.Sweep() {
		if dead == s.index {
			continue
		}
		s.log()("live: shard %d sweep: peer %d latched dead", s.index, dead)
		s.Takeover(dead)
	}
}

// Takeover pushes the slice of the keyspace this member shares with dead
// shard `dead` to the next live successor beyond each file's owner set —
// but only for files where this member is the first live owner, so N
// surviving co-owners produce one push, not N. Returns entries pushed.
func (s *MMShard) Takeover(dead int) int {
	batches := make(map[int][]wire.ShardEntry) // target shard → entries
	for _, f := range s.local.Files() {
		owners := s.ownersOf(f)
		if !containsShardIndex(owners, dead) || s.firstLiveOwner(owners) != s.index {
			continue
		}
		target := s.nextLiveBeyond(f, owners)
		if target < 0 {
			continue // no live non-owner shard left to take the slice
		}
		batches[target] = append(batches[target], wire.ShardEntry{File: f, RMs: s.local.Replicas(f)})
	}
	return s.push(batches, "takeover")
}

// Heal pushes revived shard i's slice of the keyspace back to it — every
// file this member holds whose owner set includes i, again de-duplicated
// by the first-live-owner rule (i itself excluded from the rule: it just
// came back empty). Returns entries pushed.
func (s *MMShard) Heal(revived int) int {
	var entries []wire.ShardEntry
	for _, f := range s.local.Files() {
		owners := s.ownersOf(f)
		if !containsShardIndex(owners, revived) || revived == s.index {
			continue
		}
		if s.firstLiveOwnerExcluding(owners, revived) != s.index {
			continue
		}
		entries = append(entries, wire.ShardEntry{File: f, RMs: s.local.Replicas(f)})
	}
	if len(entries) == 0 {
		return 0
	}
	return s.push(map[int][]wire.ShardEntry{revived: entries}, "heal")
}

// push sends the handoff batches, one frame per target, consulting the
// handoff fault point per send. Returns entries delivered.
func (s *MMShard) push(batches map[int][]wire.ShardEntry, direction string) int {
	inj, logf := s.injector(), s.log()
	infos := s.local.AllRMs()
	sent := 0
	for target := 0; target < s.ring.Shards(); target++ { // index order: deterministic
		entries := batches[target]
		if len(entries) == 0 {
			continue
		}
		p := s.peer(target)
		if p == nil {
			continue
		}
		switch d := faults.Decide(inj, faults.PointShardHandoff, direction); d.Action {
		case faults.Drop, faults.Kill:
			continue // partitioned: the push never happens
		case faults.Error:
			logf("live: shard %d handoff %s to %d: %v", s.index, direction, target, d.Err)
			continue
		case faults.Delay:
			time.Sleep(d.Delay)
		}
		h := wire.ShardHandoff{
			From:      int32(s.index),
			Direction: direction,
			Infos:     infos,
			Entries:   entries,
		}
		if _, err := p.t.Call(context.Background(), wire.KindShardHandoff, h); err != nil {
			logf("live: shard %d handoff %s to %d: %v", s.index, direction, target, err)
			continue
		}
		sent += len(entries)
		logf("live: shard %d handoff %s: %d entr(ies) to shard %d", s.index, direction, len(entries), target)
	}
	return sent
}

// aliveShard is the member's view of shard i's liveness. The member
// itself is definitionally alive: liveness decisions made between beat
// ticks (heal pushed from a PeerBeat goroutine, a takeover after a
// stalled tick) must never disqualify the running process because its
// own slot went stale — that silences every first-live-owner rule at
// once.
func (s *MMShard) aliveShard(i int) bool {
	return i == s.index || s.health.Alive(i)
}

// firstLiveOwner returns the first live shard in owners, or -1.
func (s *MMShard) firstLiveOwner(owners []int) int {
	for _, o := range owners {
		if s.aliveShard(o) {
			return o
		}
	}
	return -1
}

// firstLiveOwnerExcluding is firstLiveOwner skipping shard x.
func (s *MMShard) firstLiveOwnerExcluding(owners []int, x int) int {
	for _, o := range owners {
		if o != x && s.aliveShard(o) {
			return o
		}
	}
	return -1
}

// nextLiveBeyond returns the first live shard beyond file's owner set in
// ring-successor order, or -1.
func (s *MMShard) nextLiveBeyond(f ids.FileID, owners []int) int {
	for _, o := range s.ring.SuccessorsOfFile(int64(f), s.ring.Shards()) {
		if containsShardIndex(owners, o) {
			continue
		}
		if s.aliveShard(o) {
			return o
		}
	}
	return -1
}

// StartShardBeats runs the member's beat loop until stopped: every
// interval it beats each configured peer (a successful round trip also
// counts as proof the peer is alive, so one working direction keeps both
// tables warm) and sweeps for newly-dead peers, running their takeover
// handoffs.
//
// Beats are concurrent, one goroutine per peer with an in-flight guard:
// a dead peer's call stalls in the transport's redial-backoff gate, and
// with a serial loop that stall pushed the whole tick past the beat
// deadline — healthy peers (and the member's own slot) went stale purely
// because a different peer was down. Concurrency keeps the tick cadence
// fixed no matter how many peers are dark.
func (s *MMShard) StartShardBeats(interval time.Duration) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	inflight := make([]atomic.Bool, s.ring.Shards())
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var wg sync.WaitGroup
		defer wg.Wait()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
			}
			beat := wire.ShardBeat{Shard: int32(s.index)}
			for i := 0; i < s.ring.Shards(); i++ {
				if i == s.index {
					continue
				}
				p := s.peer(i)
				if p == nil || !inflight[i].CompareAndSwap(false, true) {
					continue // unset, or the previous beat is still in flight
				}
				wg.Add(1)
				go func(i int, p *MMClient) {
					defer wg.Done()
					defer inflight[i].Store(false)
					if _, err := p.t.Call(context.Background(), wire.KindShardBeat, beat); err == nil {
						if s.health.Beat(i) {
							s.Heal(i)
						}
					}
				}(i, p)
			}
			s.Sweep()
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

func containsShardIndex(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func containsRMID(s []ids.RMID, x ids.RMID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

var _ ecnp.Mapper = (*MMShard)(nil)
var _ shardPeer = (*MMShard)(nil)
var _ beater = (*MMShard)(nil)
