package live

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/monitor"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/trace"
	"dfsqos/internal/units"
)

// TestChaosFailoverTraceSpansTwoRMs is the tracing acceptance drill: a
// scripted fault kills the serving RM after the first streamed chunk and
// the resulting trace — retrieved from the live monitor's /traces
// endpoint — must show ONE trace ID whose stream segments landed on two
// distinct RMs at contiguous byte offsets, with the server-side spans
// joined to the same trace across real TCP.
func TestChaosFailoverTraceSpansTwoRMs(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:        []units.BytesPerSec{units.Mbps(200), units.Mbps(100)},
		holders:     map[ids.FileID][]ids.RMID{0: {1, 2}},
		rmFaults:    map[ids.RMID]string{1: "rm.stream.chunk:after=1:action=kill"},
		leaseTTLSec: 5,
	})
	defer lc.shutdown()
	client := lc.client(t, qos.Firm)

	var got bytes.Buffer
	res, err := client.ReadWithFailover(lc.dir, 0, &got, dfsc.FailoverConfig{
		MaxFailovers: 2,
		Backoff:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if res.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.Failovers)
	}
	size := int64(lc.cat.File(0).Size)

	// Retrieve the spans the way an operator would: over the monitor's
	// /traces endpoint, not by poking the tracer directly.
	mon := httptest.NewServer(monitor.TraceHandler(lc.tracer))
	defer mon.Close()
	resp, err := http.Get(mon.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var dump monitor.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Locate the one multi-segment read trace via its root span.
	var root *trace.Record
	for i := range dump.Spans {
		if dump.Spans[i].Name == "dfsc.read" {
			if root != nil {
				t.Fatalf("multiple dfsc.read roots: %+v and %+v", *root, dump.Spans[i])
			}
			root = &dump.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no dfsc.read root span among %d spans", len(dump.Spans))
	}
	if root.Outcome != "ok" || root.Bytes != size {
		t.Errorf("root outcome=%q bytes=%d, want ok/%d", root.Outcome, root.Bytes, size)
	}

	var segs []trace.Record
	var streams []trace.Record
	var mmSpans, accessSpans int
	for _, rec := range dump.Spans {
		if rec.Trace != root.Trace {
			continue
		}
		switch {
		case rec.Name == "dfsc.segment":
			segs = append(segs, rec)
		case rec.Name == "rm.stream":
			streams = append(streams, rec)
		case strings.HasPrefix(rec.Name, "mm."):
			mmSpans++
		case rec.Name == "dfsc.access":
			accessSpans++
		}
	}

	// >= 2 segments, on distinct RMs, at contiguous byte offsets,
	// summing to the whole file.
	if len(segs) < 2 {
		t.Fatalf("trace %d has %d stream segment(s), want >= 2", root.Trace, len(segs))
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Offset < segs[j].Offset })
	if segs[0].Offset != 0 {
		t.Errorf("first segment starts at %d, want 0", segs[0].Offset)
	}
	var total int64
	rms := map[ids.RMID]bool{}
	for i, s := range segs {
		if s.Parent != root.Span {
			t.Errorf("segment %d has parent %d, want root span %d", i, s.Parent, root.Span)
		}
		if i > 0 {
			prev := segs[i-1]
			if s.Offset != prev.Offset+prev.Bytes {
				t.Errorf("segment %d resumes at %d, want %d (prev offset %d + %d bytes)",
					i, s.Offset, prev.Offset+prev.Bytes, prev.Offset, prev.Bytes)
			}
		}
		total += s.Bytes
		rms[s.RM] = true
	}
	if total != size {
		t.Errorf("segments deliver %d bytes, want %d", total, size)
	}
	if len(rms) < 2 {
		t.Errorf("segments span %d distinct RM(s) (%v), want >= 2", len(rms), rms)
	}

	// Cross-process joins: the RM-side stream spans and the MM lookup
	// carried the trace over real TCP; each segment negotiated through a
	// child dfsc.access span of the same trace.
	if len(streams) < 2 {
		t.Errorf("trace has %d rm.stream server span(s), want >= 2", len(streams))
	}
	if mmSpans == 0 {
		t.Error("no mm.* server span joined the trace")
	}
	if accessSpans < 2 {
		t.Errorf("trace has %d dfsc.access negotiation span(s), want >= 2 (one per segment)", accessSpans)
	}

	// The human timeline renders the same trace (the e2e smoke for
	// ?format=text).
	resp, err = http.Get(mon.URL + "/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"dfsc.read", "dfsc.segment", "rm.stream", "failover"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("text timeline missing %q", want)
		}
	}
}

// TestTraceUnsampledRequestOpensNoServerSpans pins the implicit sampling
// propagation end-to-end: a client whose sampler declines writes untraced
// frames, so neither the MM nor the RMs open spans for that request.
func TestTraceUnsampledRequestOpensNoServerSpans(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:    []units.BytesPerSec{units.Mbps(100)},
		holders: map[ids.FileID][]ids.RMID{0: {1}},
	})
	defer lc.shutdown()

	// Replace the cluster tracer's view on the client side with one that
	// never samples; the servers keep the shared ring.
	never := trace.New(trace.Options{Actor: "dfsc-unsampled", Sampler: func(ids.RequestID) bool { return false }})
	c, err := dfsc.New(dfsc.Options{
		ID:        2,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Scenario:  qos.Soft,
		Rand:      rng.New(7),
		Tracer:    never,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, release := c.AccessHeld(0)
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
	release()
	if got := len(lc.tracer.Snapshot()); got != 0 {
		t.Fatalf("unsampled request opened %d server span(s), want 0", got)
	}
	if got := len(never.Snapshot()); got != 0 {
		t.Fatalf("declining sampler recorded %d client span(s), want 0", got)
	}
}
