package live

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
)

// liveCluster spins up a real TCP deployment on localhost: one MM server,
// n RM servers with throttled virtual disks, and returns everything a
// client needs.
type liveCluster struct {
	mmSrv  *MMServer
	rmSrvs []*RMServer
	mmCli  *MMClient
	dir    *Directory
	sched  *WallScheduler
	cat    *catalog.Catalog
}

func (lc *liveCluster) shutdown() {
	lc.dir.Close()
	lc.mmCli.Close()
	for _, s := range lc.rmSrvs {
		s.Close()
	}
	lc.mmSrv.Close()
	lc.sched.Stop()
}

// startLiveCluster provisions files on the RMs per the given holders map.
// It takes testing.TB so benchmarks can stand up the same real-TCP cluster.
func startLiveCluster(t testing.TB, caps []units.BytesPerSec, holders map[ids.FileID][]ids.RMID, repCfg replication.Config, timeScale float64) *liveCluster {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 8
	cfg.MeanDurationSec = 5
	cfg.MinDurationSec = 1
	cfg.MaxDurationSec = 10
	cat, err := catalog.Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}

	mmSrv, err := NewMMServer(mm.New(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewWallScheduler(timeScale)
	master := rng.New(31)

	var rmSrvs []*RMServer
	for i, capBW := range caps {
		id := ids.RMID(i + 1)
		ctrl := blkio.NewController()
		disk, err := vdisk.New(units.GB, ctrl, fmt.Sprintf("vm%d", id), capBW, capBW)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[ids.FileID]rm.FileMeta)
		for f, hs := range holders {
			for _, h := range hs {
				if h == id {
					meta := cat.File(f)
					files[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
					if err := disk.Provision(FileName(f), meta.Size); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		mapperCli, err := DialMM(mmSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: units.GB},
			Scheduler:   sched,
			Mapper:      mapperCli,
			History:     history.DefaultConfig(),
			Replication: repCfg,
			Rand:        master.Split(id.String()),
			Files:       files,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewRMServer(node, disk, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// Register with the real address so the directory can dial back.
		info := node.Info()
		info.Addr = srv.Addr()
		fileIDs := make([]ids.FileID, 0, len(files))
		for f := range files {
			fileIDs = append(fileIDs, f)
		}
		if err := mapperCli.RegisterRM(info, fileIDs); err != nil {
			t.Fatal(err)
		}
		node.SetDirectory(NewDirectory(mapperCli))
		rmSrvs = append(rmSrvs, srv)
	}

	mmCli, err := DialMM(mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return &liveCluster{
		mmSrv:  mmSrv,
		rmSrvs: rmSrvs,
		mmCli:  mmCli,
		dir:    NewDirectory(mmCli),
		sched:  sched,
		cat:    cat,
	}
}

func TestLiveControlPlaneEndToEnd(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50), units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1, 2}, 1: {1}, 2: {2}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	// The resource list reflects both registrations with dialable addrs.
	infos := lc.mmCli.RMs()
	if len(infos) != 2 {
		t.Fatalf("resource list has %d RMs", len(infos))
	}
	for _, info := range infos {
		if info.Addr == "" {
			t.Fatalf("%v registered without address", info.ID)
		}
	}

	// A DFSC over TCP: query, CFP fan-out, selection, open, close.
	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(77),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Access(0)
	if !out.OK {
		t.Fatalf("live access failed: %s", out.Reason)
	}
	served, ok := lc.dir.RMClient(out.RM)
	if !ok {
		t.Fatal("winner not reachable")
	}

	// Data plane: stream the file and verify size + checksum.
	var buf bytes.Buffer
	n, err := served.ReadFile(0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(lc.cat.File(0).Size) {
		t.Fatalf("streamed %d bytes, want %d", n, lc.cat.File(0).Size)
	}

	// Release the reservation explicitly (playback end would also do it).
	served.Close(out.Request)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if lc.rmSrvs[out.RM-1].Node().Allocated() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := lc.rmSrvs[out.RM-1].Node().Allocated(); got != 0 {
		t.Fatalf("allocated %v after close", got)
	}
}

func TestLiveFirmRefusalOverTCP(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(5)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	rmCli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM1 unreachable")
	}
	// Saturate RM1, then a firm open must be refused remotely.
	res := rmCli.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(5), DurationSec: 60, Firm: true})
	if !res.OK {
		t.Fatalf("first open refused: %s", res.Reason)
	}
	res = rmCli.Open(ecnp.OpenRequest{Request: 2, File: 0, Bitrate: units.Mbps(1), DurationSec: 60, Firm: true})
	if res.OK {
		t.Fatal("over-capacity firm open admitted")
	}
}

func TestLiveReplicationOverTCP(t *testing.T) {
	cfg := replication.DefaultConfig(replication.Rep(1, 8))
	cfg.CooldownSec = 0.01
	// Use a high replication speed so the copy completes quickly in
	// wall time (the virtual disk is throttled at the RM capacity).
	cfg.Speed = units.Mbps(1000)
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(5), units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1}},
		cfg, 1000)
	defer lc.shutdown()

	rm1, _ := lc.dir.RMClient(1)
	// Saturate RM1 beyond 80%, then a CFP triggers the replication agent,
	// which offers the file to RM2 over TCP.
	rm1.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(4.5), DurationSec: 3600})
	meta := lc.cat.File(0)
	rm1.HandleCFP(ecnp.CFP{Request: 2, File: 0, Bitrate: meta.Bitrate, DurationSec: meta.DurationSec})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if lc.mmCli.ReplicaCount(0) == 2 && lc.rmSrvs[1].Node().HasFile(0) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lc.mmCli.ReplicaCount(0) != 2 {
		t.Fatalf("replica count = %d, want 2 after live replication", lc.mmCli.ReplicaCount(0))
	}
	if !lc.rmSrvs[1].Node().HasFile(0) {
		t.Fatal("RM2 does not hold the replica")
	}
}

func TestLiveThrottledDataPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// 2 MB file over a 4 Mbit/s (0.5 MB/s) disk: the burst covers 0.5 MB,
	// the remaining 1.5 MB takes ~3 s.
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(4)},
		nil,
		replication.DefaultConfig(replication.Static()), 1)
	defer lc.shutdown()

	disk := diskOf(t, lc, 0)
	if err := disk.Provision(FileName(99), 2*units.MB); err != nil {
		t.Fatal(err)
	}
	rmCli, _ := lc.dir.RMClient(1)
	start := time.Now()
	var buf bytes.Buffer
	n, err := rmCli.ReadFile(99, &buf)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != int64(2*units.MB) {
		t.Fatalf("streamed %d bytes", n)
	}
	if elapsed < 2*time.Second {
		t.Fatalf("2 MB crossed a 0.5 MB/s disk in %v; throttle not applied", elapsed)
	}
	if elapsed > 8*time.Second {
		t.Fatalf("transfer took %v; throttle too aggressive", elapsed)
	}
}

// diskOf digs the vdisk out of an RMServer for test provisioning.
func diskOf(t *testing.T, lc *liveCluster, idx int) *vdisk.Disk {
	t.Helper()
	return lc.rmSrvs[idx].disk
}

func TestWallScheduler(t *testing.T) {
	s := NewWallScheduler(1000) // 1000 virtual seconds per wall second
	defer s.Stop()
	fired := make(chan simtime.Time, 1)
	s.After(5, func(now simtime.Time) { fired <- now })
	select {
	case now := <-fired:
		if now < 5 {
			t.Fatalf("fired at virtual %v, want ≥ 5", now)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
	// Cancellation.
	cancel := s.After(1e6, func(simtime.Time) { t.Error("canceled timer fired") })
	if !cancel() {
		t.Fatal("cancel returned false")
	}
	if cancel() {
		t.Fatal("double cancel returned true")
	}
}

func TestWallSchedulerPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero scale did not panic")
		}
	}()
	NewWallScheduler(0)
}
