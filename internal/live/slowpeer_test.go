package live

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// stallRM is a wire-speaking fake RM server whose CFP handler sleeps past
// any reasonable negotiation deadline before answering with the best bid
// in the cluster. It registers with the MM like a real RM, so the client
// discovers and dials it through the normal directory path.
type stallRM struct {
	ln    net.Listener
	delay time.Duration
	opens atomic.Int32
}

func startStallRM(t *testing.T, delay time.Duration) *stallRM {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stallRM{ln: ln, delay: delay}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				wc := wire.NewConn(conn)
				for {
					msg, err := wc.Read()
					if err != nil {
						return
					}
					switch msg.Kind {
					case wire.KindCFP:
						time.Sleep(s.delay)
						cfp := msg.Payload.(ecnp.CFP)
						// The best B_rem in the cluster — if this bid made
						// the deadline it would win the negotiation.
						bid := selection.Bid{RM: 3, Rem: units.Mbps(90), Req: cfp.Bitrate, HasReplica: true}
						if err := wc.Write(wire.KindBid, bid); err != nil {
							return
						}
					case wire.KindOpen:
						s.opens.Add(1)
						if err := wc.Write(wire.KindOpenResult, ecnp.OpenResult{OK: true}); err != nil {
							return
						}
					default:
						if err := wc.Write(wire.KindAck, wire.Ack{}); err != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return s
}

func (s *stallRM) close() { s.ln.Close() }

// TestLiveSlowPeerDoesNotDelayOpen is the end-to-end slow-peer scenario
// over real TCP: three registered holders, one of which stalls its CFP
// reply for 2s. With concurrent fan-out and a 300ms negotiation deadline
// the open must complete in about one deadline, served by the best live
// bidder, with the stalled RM degraded to a last-ranked zero bid that
// never receives an Open.
func TestLiveSlowPeerDoesNotDelayOpen(t *testing.T) {
	const (
		deadline = 300 * time.Millisecond
		stall    = 2 * time.Second
	)
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50), units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1, 2}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	slow := startStallRM(t, stall)
	defer slow.close()
	if err := lc.mmCli.RegisterRM(ecnp.RMInfo{
		ID:           3,
		Capacity:     units.Mbps(100),
		StorageBytes: units.GB,
		Addr:         slow.ln.Addr().String(),
	}, []ids.FileID{0}); err != nil {
		t.Fatal(err)
	}

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(7),
		Fanout:    dfsc.Fanout{Concurrent: true, BidTimeout: deadline},
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	out := client.Access(0)
	elapsed := time.Since(start)
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
	if out.RM != 1 && out.RM != 2 {
		t.Fatalf("served by %v, want a live RM", out.RM)
	}
	if elapsed >= stall {
		t.Fatalf("open took %v: negotiation waited for the stalled RM", elapsed)
	}
	if elapsed > deadline+time.Second {
		t.Fatalf("open took %v, want ~%v", elapsed, deadline)
	}
	if slow.opens.Load() != 0 {
		t.Fatal("stalled RM received an Open despite its zero bid")
	}
}

// TestDirectoryBackoffRecoverySameAddr crashes an RM and hammers it with
// failing accesses (each one re-resolving through the MM, clearing the
// broken flag, and redialing under the pool's exponential backoff), then
// restarts the RM on the SAME address without re-registration. The cached
// client must recover through the backoff gate alone — no directory
// invalidation, no new dial path.
func TestDirectoryBackoffRecoverySameAddr(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(50)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	// Short timeouts so the failure phase is fast and the backoff gate is
	// the dominant delay on recovery.
	tcfg := transport.Config{
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 500 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
	}
	dir := NewDirectoryConfig(lc.mmCli, tcfg)
	defer dir.Close()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := client.Access(0); !out.OK {
		t.Fatalf("pre-crash access failed: %s", out.Reason)
	}

	addr := lc.rmSrvs[0].Addr()
	lc.rmSrvs[0].Close()

	// Several failing accesses: the health check discards the dead pooled
	// connection, redials fail, and the backoff ramps. Each attempt must
	// stay bounded by the short dial budget — no multi-second hangs.
	failStart := time.Now()
	for i := 0; i < 3; i++ {
		if out := client.Access(0); out.OK {
			t.Fatalf("access %d succeeded against a dead RM", i)
		}
	}
	if elapsed := time.Since(failStart); elapsed > 3*time.Second {
		t.Fatalf("3 failing accesses took %v; dials not deadline-bounded", elapsed)
	}

	// Restart the RM on the same address. The MM record never changed, so
	// recovery exercises ClearBroken + pool redial, not a fresh dial.
	meta := lc.cat.File(0)
	mapperCli, err := DialMM(lc.mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	node, err := rm.New(rm.Options{
		Info:        ecnp.RMInfo{ID: 1, Capacity: units.Mbps(50), StorageBytes: units.GB},
		Scheduler:   lc.sched,
		Mapper:      mapperCli,
		History:     history.DefaultConfig(),
		Replication: replication.DefaultConfig(replication.Static()),
		Rand:        rng.New(99),
		Files: map[ids.FileID]rm.FileMeta{
			0: {Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewRMServer(node, nil, addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv.Close()

	start := time.Now()
	out := client.Access(0)
	if !out.OK {
		t.Fatalf("post-restart access failed: %s", out.Reason)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("recovery took %v, backoff budget is ~100ms", elapsed)
	}
	if out.RM != 1 {
		t.Fatalf("served by %v", out.RM)
	}
	if node.Stats().Opens != 1 {
		t.Fatalf("restarted RM saw %d opens, want 1", node.Stats().Opens)
	}
}
