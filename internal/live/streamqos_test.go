package live

import (
	"context"
	"io"
	"testing"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// TestChaosLeaseReclaimRemovesStreamQoSGroup proves the work-conserving
// tree heals after a mid-stream lane death: with stream QoS on, a client
// whose connection is torn mid-stream (scripted drop after one chunk)
// leaves an orphaned reservation AND an orphaned blkio group holding its
// assured floor. The lease sweeper must reclaim both — bandwidth back to
// the ledger, group out of the tree — while a surviving sibling keeps its
// lease, its group, and afterwards borrows the freed headroom.
func TestChaosLeaseReclaimRemovesStreamQoSGroup(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:    []units.BytesPerSec{units.Mbps(100)},
		holders: map[ids.FileID][]ids.RMID{0: {1}},
		// Second streamed chunk overall: drop the connection, once.
		rmFaults:    map[ids.RMID]string{1: "rm.stream.chunk:after=1:count=1:action=drop"},
		leaseTTLSec: 5, // virtual seconds; 50ms of wall time at scale 100
	})
	defer lc.shutdown()
	srv := lc.rmSrvs[1]
	if err := srv.EnableStreamQoS(1); err != nil {
		t.Fatal(err)
	}
	ctrl := lc.disks[1].Controller()

	cli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM1 unreachable")
	}
	meta := lc.cat.File(0)
	for req := ids.RequestID(1); req <= 2; req++ {
		res := cli.Open(ecnp.OpenRequest{Request: req, File: 0, Bitrate: meta.Bitrate, DurationSec: meta.DurationSec})
		if !res.OK {
			t.Fatalf("open %v refused: %s", req, res.Reason)
		}
		if srv.qosGroup(req) == nil {
			t.Fatalf("admission of %v installed no stream QoS group", req)
		}
	}

	// Request 2's stream dies mid-flight: the scripted drop tears the
	// connection after the first chunk, so the client sees a transport
	// error and never sends Close.
	if _, err := cli.ReadFileAt(context.Background(), 0, 2, 0, io.Discard, nil); err == nil {
		t.Fatal("dropped stream completed cleanly")
	}
	if n := lc.nodes[1].ActiveReservations(); n != 2 {
		t.Fatalf("reservations after lane death = %d, want 2 (orphan + survivor)", n)
	}

	// Let the orphan's lease go stale (~10 virtual seconds) while the
	// survivor renews, then sweep: exactly the orphan must fall.
	time.Sleep(100 * time.Millisecond)
	if err := cli.Keepalive(1); err != nil {
		t.Fatalf("survivor keepalive: %v", err)
	}
	if n := lc.nodes[1].SweepLeases(lc.sched.Now()); n != 1 {
		t.Fatalf("sweep reclaimed %d, want 1", n)
	}
	if g := srv.qosGroup(2); g != nil {
		t.Fatal("orphan's blkio group survived the lease sweep")
	}
	if srv.qosGroup(1) == nil {
		t.Fatal("survivor's blkio group was reclaimed with the orphan's")
	}
	if ctrl.RemoveGroup("req2") {
		t.Fatal("orphan's group still present in the controller tree")
	}
	if got := lc.nodes[1].Allocated(); got != meta.Bitrate {
		t.Fatalf("allocated %v after sweep, want one bitrate %v", got, meta.Bitrate)
	}

	// The survivor streams clean — and now borrows the reclaimed headroom:
	// its assured rate is one catalog bitrate, far under the 100 Mbit/s
	// root, so a full-speed read must ride borrowed tokens.
	sum := wire.ChecksumBasis
	n, err := cli.ReadFileAt(context.Background(), 0, 1, 0, io.Discard, &sum)
	if err != nil {
		t.Fatalf("survivor stream after sweep: %v", err)
	}
	if n != int64(meta.Size) {
		t.Fatalf("survivor streamed %d bytes, want %d", n, int64(meta.Size))
	}
	if st := ctrl.Stats(); st.Borrows == 0 || st.BorrowedBytes == 0 {
		t.Fatalf("survivor never borrowed freed headroom: %+v", st)
	}
}
