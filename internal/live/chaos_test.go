package live

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/tenant"
	"dfsqos/internal/trace"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// chaosOpts configures one chaos deployment: per-RM fault scripts armed on
// real TCP servers, reservation lease TTLs, and MM liveness tracking.
type chaosOpts struct {
	caps    []units.BytesPerSec
	holders map[ids.FileID][]ids.RMID
	// rmFaults maps 1-based RM id to a fault-injection spec.
	rmFaults map[ids.RMID]string
	// leaseTTLSec arms reservation leases on every RM (virtual seconds).
	leaseTTLSec float64
	// liveness arms heartbeat-based failure detection at the MM.
	liveness mm.LivenessConfig
	// timeScale is virtual seconds per wall second (default 100).
	timeScale float64
	// faultSeed seeds every RM's fault script (default 1).
	faultSeed uint64
	// tenancy installs a tenant ledger (with telemetry) on every RM.
	// Quotas start unlimited; tests tighten them per tenant via
	// chaosCluster.ledgers once catalog bitrates are known.
	tenancy bool
}

// chaosCluster is a live deployment with handles deep enough for crash
// surgery: the in-process MM manager, the RM nodes and their disks (so a
// killed RM can be restarted on a fresh socket).
type chaosCluster struct {
	mgr     *mm.Manager
	mmSrv   *MMServer
	mmCli   *MMClient
	dir     *Directory
	sched   *WallScheduler
	cat     *catalog.Catalog
	reg     *telemetry.Registry
	tracer  *trace.Tracer
	rmSrvs  map[ids.RMID]*RMServer
	nodes   map[ids.RMID]*rm.RM
	disks   map[ids.RMID]*vdisk.Disk
	ledgers map[ids.RMID]*tenant.Ledger
	stops   []func()
}

func (lc *chaosCluster) shutdown() {
	for _, stop := range lc.stops {
		stop()
	}
	lc.dir.Close()
	lc.mmCli.Close()
	for _, s := range lc.rmSrvs {
		s.Close()
	}
	lc.mmSrv.Close()
	lc.sched.Stop()
}

func startChaosCluster(t *testing.T, opts chaosOpts) *chaosCluster {
	t.Helper()
	if opts.timeScale == 0 {
		opts.timeScale = 100
	}
	if opts.faultSeed == 0 {
		opts.faultSeed = 1
	}
	// Fixed 10-second durations keep every file past two stream chunks
	// (>=256 KiB) so a mid-stream kill always leaves a resumable tail.
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 4
	cfg.MeanDurationSec = 10
	cfg.MinDurationSec = 10
	cfg.MaxDurationSec = 10
	cat, err := catalog.Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	// One tracer shared by every in-process role: all spans of a request
	// land in a single ring, so tests can assert whole-cluster span trees
	// the way an operator would by merging per-daemon /traces dumps.
	tracer := trace.New(trace.Options{Actor: "cluster", Registry: reg})
	mgr := mm.New()
	mgr.SetLiveness(opts.liveness)
	mgr.SetMetrics(mm.NewMetrics(reg))
	mmSrv, err := NewMMServer(mgr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mmSrv.SetTracer(tracer)
	sched := NewWallScheduler(opts.timeScale)
	master := rng.New(31)

	lc := &chaosCluster{
		mgr:     mgr,
		mmSrv:   mmSrv,
		sched:   sched,
		cat:     cat,
		reg:     reg,
		tracer:  tracer,
		rmSrvs:  make(map[ids.RMID]*RMServer),
		nodes:   make(map[ids.RMID]*rm.RM),
		disks:   make(map[ids.RMID]*vdisk.Disk),
		ledgers: make(map[ids.RMID]*tenant.Ledger),
	}
	for i, capBW := range opts.caps {
		id := ids.RMID(i + 1)
		disk, err := vdisk.New(units.GB, blkio.NewController(), fmt.Sprintf("vm%d", id), capBW, capBW)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[ids.FileID]rm.FileMeta)
		for f, hs := range opts.holders {
			for _, h := range hs {
				if h == id {
					meta := cat.File(f)
					files[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
					if err := disk.Provision(FileName(f), meta.Size); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		mapperCli, err := DialMM(mmSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var ledger *tenant.Ledger
		if opts.tenancy {
			ledger = tenant.NewLedger()
			ledger.SetMetrics(tenant.NewMetrics(reg))
			lc.ledgers[id] = ledger
		}
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: units.GB},
			Scheduler:   sched,
			Mapper:      mapperCli,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Tenants:     ledger,
			Rand:        master.Split(id.String()),
			Files:       files,
			LeaseTTLSec: opts.leaseTTLSec,
			Metrics:     rm.NewMetrics(reg),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := lc.serveRM(t, node, disk, opts.rmFaults[id], opts.faultSeed)
		node.SetDirectory(NewDirectory(mapperCli))
		lc.rmSrvs[id] = srv
		lc.nodes[id] = node
		lc.disks[id] = disk
	}

	mmCli, err := DialMM(mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	lc.mmCli = mmCli
	lc.dir = NewDirectory(mmCli)
	return lc
}

// serveRM binds node to a fresh socket (arming spec when non-empty),
// stamps the address onto the node and registers it — the same path a
// restarted rmd takes, so crash-restart tests exercise it verbatim.
func (lc *chaosCluster) serveRM(t *testing.T, node *rm.RM, disk *vdisk.Disk, spec string, seed uint64) *RMServer {
	t.Helper()
	srv, err := NewRMServer(node, disk, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTracer(lc.tracer)
	if spec != "" {
		script, err := faults.Parse(spec + fmt.Sprintf(":seed=%d", seed))
		if err != nil {
			t.Fatal(err)
		}
		script.SetMetrics(faults.NewMetrics(lc.reg))
		srv.SetFaults(script)
	}
	node.SetAddr(srv.Addr())
	if err := node.Register(); err != nil {
		t.Fatal(err)
	}
	return srv
}

func (lc *chaosCluster) client(t *testing.T, scen qos.Scenario) *dfsc.Client {
	t.Helper()
	c, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  scen,
		Rand:      rng.New(3),
		Metrics:   dfsc.NewMetrics(lc.reg),
		Tracer:    lc.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (lc *chaosCluster) exposition(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	if err := lc.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// waitFor polls cond up to 5s; chaos tests assert on converging state
// (liveness deadlines, sweeper periods) that needs real wall time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosKillMidStreamFailoverResumes is the headline crash drill over
// real TCP: a scripted fault kills the serving RM after the first streamed
// chunk; the client must fail over to the surviving replica, resume at the
// exact byte offset, and still pass the whole-file checksum carried across
// segments. The orphaned reservation on the corpse is then reclaimed by
// one lease sweep, returning its bandwidth to the ledger.
func TestChaosKillMidStreamFailoverResumes(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		// RemOnly ranks by remaining bandwidth, so the doomed big RM
		// deterministically wins the first negotiation.
		caps:        []units.BytesPerSec{units.Mbps(200), units.Mbps(100)},
		holders:     map[ids.FileID][]ids.RMID{0: {1, 2}},
		rmFaults:    map[ids.RMID]string{1: "rm.stream.chunk:after=1:action=kill"},
		leaseTTLSec: 5,
	})
	defer lc.shutdown()
	client := lc.client(t, qos.Firm)

	var got bytes.Buffer
	res, err := client.ReadWithFailover(lc.dir, 0, &got, dfsc.FailoverConfig{
		MaxFailovers: 2,
		Backoff:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	size := int64(lc.cat.File(0).Size)
	if res.Bytes != size || int64(got.Len()) != size {
		t.Fatalf("delivered %d/%d bytes (result %d)", got.Len(), size, res.Bytes)
	}
	if res.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.Failovers)
	}
	if len(res.RMs) != 2 || res.RMs[0] != 1 || res.RMs[1] != 2 {
		t.Fatalf("serving RMs = %v, want [1 2]", res.RMs)
	}
	want, err := lc.disks[2].Checksum(FileName(0))
	if err != nil {
		t.Fatal(err)
	}
	if sum := wire.ChecksumUpdate(wire.ChecksumBasis, got.Bytes()); sum != want {
		t.Fatalf("delivered bytes checksum %x, replica %x", sum, want)
	}

	// The kill arrived between Open and Close: RM 1's reservation is
	// orphaned with its bandwidth still allocated. One sweep past the TTL
	// reclaims it.
	if n := lc.nodes[1].ActiveReservations(); n != 1 {
		t.Fatalf("orphaned reservations on RM1 = %d, want 1", n)
	}
	if lc.nodes[1].Allocated() == 0 {
		t.Fatal("orphan left no allocation to reclaim")
	}
	if n := lc.nodes[1].SweepLeases(lc.sched.Now().Add(6)); n != 1 {
		t.Fatalf("sweep reclaimed %d, want 1", n)
	}
	if got := lc.nodes[1].Allocated(); got != 0 {
		t.Fatalf("RM1 still has %v allocated after sweep", got)
	}
	// The survivor's reservation was released by the normal close path.
	if got := lc.nodes[2].Allocated(); got != 0 {
		t.Fatalf("RM2 still has %v allocated", got)
	}

	// The shared registry saw the whole incident: the injected kill, the
	// failover, and the expired lease.
	text := lc.exposition(t)
	for _, want := range []string{
		`action="kill"`,
		`dfsqos_dfsc_failovers_total 1`,
		`dfsqos_rm_leases_expired_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if st := lc.nodes[1].Stats(); st.LeaseExpiries != 1 {
		t.Fatalf("RM1 LeaseExpiries = %d, want 1", st.LeaseExpiries)
	}
}

// TestChaosCrashRestartLiveness drives the full death-and-rebirth cycle
// through heartbeats over real TCP: a killed RM drops out of the MM's
// routing surfaces within the miss threshold, and a restart on a fresh
// socket re-registers, revives, and bumps the liveness epoch.
func TestChaosCrashRestartLiveness(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:    []units.BytesPerSec{units.Mbps(100), units.Mbps(100)},
		holders: map[ids.FileID][]ids.RMID{0: {1, 2}},
		liveness: mm.LivenessConfig{
			HeartbeatInterval: 20 * time.Millisecond,
			MissThreshold:     3,
		},
	})
	defer lc.shutdown()

	beatCli, err := DialMM(lc.mmSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer beatCli.Close()
	stop1 := StartHeartbeats(lc.nodes[1], beatCli, 10*time.Millisecond, t.Logf)
	lc.stops = append(lc.stops, stop1)
	stop2 := StartHeartbeats(lc.nodes[2], beatCli, 10*time.Millisecond, t.Logf)
	waitFor(t, "both RMs live", func() bool { return lc.mgr.LiveCount() == 2 })

	// Crash RM 2: heartbeats stop, server socket closes.
	stop2()
	lc.rmSrvs[2].Close()
	waitFor(t, "RM2 declared dead", func() bool { return !lc.mgr.Alive(2) })

	// The corpse is gone from every routing answer — over the wire too.
	if rms := lc.mmCli.RMs(); len(rms) != 1 || rms[0].ID != 1 {
		t.Fatalf("RMs() over TCP = %v, want [1]", rms)
	}
	if hs := lc.mmCli.Lookup(0); len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("Lookup(0) = %v, want [1]", hs)
	}
	// A negotiated access routes around the corpse without burning its
	// deadline on a dead CFP.
	out := lc.client(t, qos.Firm).Access(0)
	if !out.OK || out.RM != 1 {
		t.Fatalf("access during outage: ok=%v rm=%v", out.OK, out.RM)
	}

	// Restart RM 2 on a fresh socket (new port: the same shape as a
	// daemon restart) and resume its heartbeats.
	srv := lc.serveRM(t, lc.nodes[2], lc.disks[2], "", 1)
	lc.rmSrvs[2] = srv
	stop2 = StartHeartbeats(lc.nodes[2], beatCli, 10*time.Millisecond, t.Logf)
	lc.stops = append(lc.stops, stop2)
	waitFor(t, "RM2 revived", func() bool { return lc.mgr.Alive(2) })
	if got := lc.mgr.Epoch(2); got != 1 {
		t.Fatalf("epoch after crash-restart = %d, want 1", got)
	}
	if got := lc.mgr.Epoch(1); got != 0 {
		t.Fatalf("survivor's epoch = %d, want 0", got)
	}
	waitFor(t, "Lookup heals", func() bool { return len(lc.mmCli.Lookup(0)) == 2 })
}

// TestChaosScriptedOpenErrorFallsBack asserts deterministic scripted
// degradation: one injected Open error makes the ranked winner refuse, the
// client falls back to the runner-up, and the very next access — the
// script's budget exhausted — lands on the healed winner again. Same seed,
// same script, same outcome on every run.
func TestChaosScriptedOpenErrorFallsBack(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:     []units.BytesPerSec{units.Mbps(200), units.Mbps(100)},
		holders:  map[ids.FileID][]ids.RMID{0: {1, 2}},
		rmFaults: map[ids.RMID]string{1: "rm.handle:match=Open:count=1:action=error"},
	})
	defer lc.shutdown()
	// Firm: a refused open falls through to the next-ranked bidder.
	client := lc.client(t, qos.Firm)

	out := client.Access(0)
	if !out.OK || out.RM != 2 {
		t.Fatalf("faulted access: ok=%v rm=%v, want fallback to RM2", out.OK, out.RM)
	}
	out = client.Access(0)
	if !out.OK || out.RM != 1 {
		t.Fatalf("post-fault access: ok=%v rm=%v, want healed RM1", out.OK, out.RM)
	}
	if !strings.Contains(lc.exposition(t), `dfsqos_faults_injected_total{action="error",point="rm.handle"} 1`) &&
		!strings.Contains(lc.exposition(t), `dfsqos_faults_injected_total{point="rm.handle",action="error"} 1`) {
		t.Fatalf("exposition missing injected-error counter:\n%s", lc.exposition(t))
	}
}

// TestChaosKeepaliveBeatsLeaseSweeper holds a reservation open with no
// stream activity and renews it over the wire: the sweeper must spare the
// renewed lease and reclaim an unrenewed sibling.
func TestChaosKeepaliveBeatsLeaseSweeper(t *testing.T) {
	lc := startChaosCluster(t, chaosOpts{
		caps:        []units.BytesPerSec{units.Mbps(100)},
		holders:     map[ids.FileID][]ids.RMID{0: {1}},
		leaseTTLSec: 5, // virtual seconds; 50ms of wall time at scale 100
	})
	defer lc.shutdown()
	node := lc.nodes[1]
	stopSweep := StartLeaseSweeper(node, lc.sched, 10*time.Millisecond, t.Logf)
	lc.stops = append(lc.stops, stopSweep)

	cli, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM1 unreachable")
	}
	meta := lc.cat.File(0)
	for req := ids.RequestID(1); req <= 2; req++ {
		res := cli.Open(ecnp.OpenRequest{Request: req, File: 0, Bitrate: meta.Bitrate, DurationSec: meta.DurationSec})
		if !res.OK {
			t.Fatalf("open %v refused: %s", req, res.Reason)
		}
	}
	// Renew only request 1 for ~4 TTLs of wall time; request 2 idles.
	renewUntil := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(renewUntil) {
		if err := cli.Keepalive(1); err != nil {
			t.Fatalf("keepalive: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, "idle lease reclaimed", func() bool { return node.ActiveReservations() == 1 })
	if err := cli.Keepalive(1); err != nil {
		t.Fatalf("renewed lease was reclaimed: %v", err)
	}
	// The reaped sibling's keepalive reports the expiry so the client
	// knows to re-negotiate.
	if err := cli.Keepalive(2); err == nil {
		t.Fatal("keepalive on reclaimed lease succeeded")
	}
	if got := node.Allocated(); got != meta.Bitrate {
		t.Fatalf("allocated %v, want exactly one bitrate %v", got, meta.Bitrate)
	}
}
