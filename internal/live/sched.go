// Package live deploys the ECNP components as real TCP daemons: a Metadata
// Manager server, Resource Manager servers fronting throttled virtual disks,
// and client stubs that implement the same ecnp interfaces the simulation
// actors implement — so the policy code in packages rm, dfsc, selection and
// replication runs unchanged over the network.
//
// This is the repo's counterpart of the paper's real-system deployment
// (§III): the wire protocol carries exactly the ECNP message sequence
// (register / query / CFP / bid / open / close / replicate), and disk
// bandwidth is enforced by the blkio token buckets of each RM's vdisk.
package live

import (
	"sync"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/simtime"
)

// WallScheduler implements ecnp.Scheduler over the wall clock. Scale maps
// virtual seconds to wall seconds: Scale=1 runs in real time, Scale=100
// runs a 2-hour experiment in 72 wall seconds (used by tests and demos).
type WallScheduler struct {
	start time.Time
	scale float64

	mu     sync.Mutex
	timers map[*time.Timer]struct{}
}

// NewWallScheduler returns a scheduler anchored at the current instant.
// scale must be positive; 1 means real time.
func NewWallScheduler(scale float64) *WallScheduler {
	if scale <= 0 {
		panic("live: non-positive time scale")
	}
	return &WallScheduler{
		start:  time.Now(),
		scale:  scale,
		timers: make(map[*time.Timer]struct{}),
	}
}

// Now implements ecnp.Scheduler: virtual seconds since construction.
func (w *WallScheduler) Now() simtime.Time {
	return simtime.Time(time.Since(w.start).Seconds() * w.scale)
}

// After implements ecnp.Scheduler.
func (w *WallScheduler) After(d simtime.Duration, fn func(simtime.Time)) func() bool {
	if d < 0 {
		d = 0
	}
	wall := time.Duration(float64(d) / w.scale * float64(time.Second))
	var t *time.Timer
	t = time.AfterFunc(wall, func() {
		w.mu.Lock()
		delete(w.timers, t)
		w.mu.Unlock()
		fn(w.Now())
	})
	w.mu.Lock()
	w.timers[t] = struct{}{}
	w.mu.Unlock()
	return func() bool {
		stopped := t.Stop()
		if stopped {
			w.mu.Lock()
			delete(w.timers, t)
			w.mu.Unlock()
		}
		return stopped
	}
}

// Stop cancels all outstanding timers (shutdown hygiene).
func (w *WallScheduler) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for t := range w.timers {
		t.Stop()
	}
	w.timers = make(map[*time.Timer]struct{})
}

var _ ecnp.Scheduler = (*WallScheduler)(nil)
