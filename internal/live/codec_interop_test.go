package live

import (
	"bytes"
	"errors"
	"testing"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// TestLiveMixedCodecStreams runs the full negotiation + data-plane flow
// over real TCP and asserts the codec split end to end: control frames
// (CFP, Open, lookups) travel as gob, data chunks as binary fast path —
// on the same pooled connections — and the transferred bytes verify. Then
// the whole cluster is re-exercised with connections pinned to gob (the
// legacy-peer interop mode): the identical stream must still verify, with
// the gob frame counters advancing instead.
func TestLiveMixedCodecStreams(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(80), units.Mbps(80)},
		map[ids.FileID][]ids.RMID{0: {1, 2}, 1: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    lc.mmCli,
		Directory: lc.dir,
		Scheduler: lc.sched,
		Catalog:   lc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}

	stream := func(tag string) {
		t.Helper()
		out := client.Access(0)
		if !out.OK {
			t.Fatalf("%s: access failed: %s", tag, out.Reason)
		}
		served, ok := lc.dir.RMClient(out.RM)
		if !ok {
			t.Fatalf("%s: winner not reachable", tag)
		}
		var buf bytes.Buffer
		n, err := served.ReadFile(0, &buf) // verifies size + checksum internally
		if err != nil {
			t.Fatalf("%s: stream: %v", tag, err)
		}
		if n != int64(lc.cat.File(0).Size) {
			t.Fatalf("%s: streamed %d bytes, want %d", tag, n, lc.cat.File(0).Size)
		}
		served.Close(out.Request)
	}

	// Round 1: default build — mixed codecs on the same connections.
	txB0, txG0, rxB0, rxG0 := wire.CodecStats()
	stream("fastpath")
	txB1, txG1, rxB1, rxG1 := wire.CodecStats()
	if rxB1 <= rxB0 || txB1 <= txB0 {
		t.Errorf("fast path moved no binary frames: tx %d→%d rx %d→%d", txB0, txB1, rxB0, rxB1)
	}
	if rxG1 <= rxG0 || txG1 <= txG0 {
		t.Errorf("control plane moved no gob frames: tx %d→%d rx %d→%d", txG0, txG1, rxG0, rxG1)
	}

	// Round 2: pin every NEW connection to gob, the shape of a legacy peer
	// on both ends. A fresh client to the same cluster must still stream
	// and verify — no fast-path dependence anywhere in the data plane.
	prev := wire.SetDefaultFastPath(false)
	defer wire.SetDefaultFastPath(prev)
	served, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM 1 not reachable")
	}
	gobCli, err := DialRM(served.Info()) // fresh pool, created under the gob default
	if err != nil {
		t.Fatal(err)
	}
	defer gobCli.Disconnect()
	_, txG2, _, rxG2 := wire.CodecStats()
	var buf bytes.Buffer
	n, err := gobCli.ReadFile(1, &buf)
	if err != nil {
		t.Fatalf("gob-pinned stream: %v", err)
	}
	if n != int64(lc.cat.File(1).Size) {
		t.Fatalf("gob-pinned stream: %d bytes, want %d", n, lc.cat.File(1).Size)
	}
	_, txG3, _, rxG3 := wire.CodecStats()
	if txG3 <= txG2 || rxG3 <= rxG2 {
		t.Errorf("gob-pinned stream moved no gob frames: tx %d→%d rx %d→%d", txG2, txG3, rxG2, rxG3)
	}
}

// TestLiveBinaryRejectionSurfacesTypedError pins the failure mode of a
// version skew: a server whose connections refuse binary frames answers a
// fast-path chunk with a typed *CodecError-derived stream failure, not a
// hang or a misparse. Exercised at the wire level against a live RM
// server connection.
func TestLiveBinaryRejectionSurfacesTypedError(t *testing.T) {
	lc := startLiveCluster(t,
		[]units.BytesPerSec{units.Mbps(80)},
		map[ids.FileID][]ids.RMID{0: {1}},
		replication.DefaultConfig(replication.Static()), 100)
	defer lc.shutdown()

	served, ok := lc.dir.RMClient(1)
	if !ok {
		t.Fatal("RM 1 not reachable")
	}
	// A client that refuses incoming binary frames sees the server's
	// fast-path chunks as a typed codec error and the stream fails loudly.
	cli, err := DialRM(served.Info())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Disconnect()
	err = cli.stream(func(wc *wire.Conn) error {
		wc.SetAcceptBinary(false)
		if werr := wc.Write(wire.KindReadFile, wire.ReadFile{File: 0, ChunkSize: 64 * 1024}); werr != nil {
			return werr
		}
		_, rerr := wc.Read()
		return rerr
	})
	if err == nil {
		t.Fatal("binary-refusing reader accepted a fast-path stream")
	}
	var ce *wire.CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("stream failure not a CodecError: %v", err)
	}
	if ce.Codec != wire.CodecBinary {
		t.Fatalf("rejected codec %v, want binary", ce.Codec)
	}
}
