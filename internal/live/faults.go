package live

import (
	"errors"
	"time"

	"dfsqos/internal/faults"
	"dfsqos/internal/wire"
)

// Sentinel errors surfaced by injected faults; the serve loops treat any
// non-nil handler error as "drop this connection", which is exactly the
// blast radius these actions want.
var (
	errFaultDrop = errors.New("live: injected connection drop")
	errFaultTorn = errors.New("live: injected torn frame")
	errFaultKill = errors.New("live: injected server kill")
)

// applyFault enacts one fault decision on a connection. It returns
// (handled, err): handled true means the real handler must not run; a
// non-nil err additionally tells the serve loop to drop the connection.
//
//   - None proceeds (false, nil); Delay stalls, then proceeds.
//   - Drop returns an error so the peer sees EOF/reset mid-exchange.
//   - Error serves d.Err as a remote error; the connection stays healthy.
//   - PartialWrite sends a torn (kind, payload) frame — header promising
//     more bytes than follow — then drops the connection: the shape of a
//     crash mid-write.
//   - Kill invokes kill in its own goroutine (it closes the whole server,
//     which waits for this very handler to unwind) and drops the
//     connection.
func applyFault(wc *wire.Conn, d faults.Decision, kind wire.Kind, payload any, kill func()) (bool, error) {
	switch d.Action {
	case faults.None:
		return false, nil
	case faults.Delay:
		time.Sleep(d.Delay)
		return false, nil
	case faults.Drop:
		return true, errFaultDrop
	case faults.Error:
		return true, wc.WriteError(d.Err)
	case faults.PartialWrite:
		wc.WriteTorn(kind, payload) // best effort: the conn drops either way
		return true, errFaultTorn
	case faults.Kill:
		if kill != nil {
			go kill()
		}
		return true, errFaultKill
	}
	return false, nil
}
