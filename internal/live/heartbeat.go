package live

import (
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/rm"
	"dfsqos/internal/transport"
)

// Beater is the client surface the heartbeat loop beacons through; both
// MMClient (single MM) and ShardMapper (replicated shard group, fanning
// the beacon to every reachable shard) implement it.
type Beater interface {
	Heartbeat(id ids.RMID) error
}

// StartHeartbeats beacons node's liveness to the MM every interval until
// the returned stop function is called. A beacon the MM refuses as a
// remote error means the MM does not know this RM — typically because the
// MM restarted and lost its resource list — so the loop re-registers,
// which also reconciles the RM's file list against the replica map. The
// first beacon fires after one interval (registration precedes the loop).
func StartHeartbeats(node *rm.RM, mm Beater, interval time.Duration, logf func(string, ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
			}
			err := mm.Heartbeat(node.Info().ID)
			switch {
			case err == nil:
			case transport.IsRemote(err):
				// The MM forgot us: re-register (idempotent; reconciles
				// the file list) and let the next beacon confirm.
				if rerr := node.Register(); rerr != nil {
					logf("live: heartbeat re-register %v: %v", node.Info().ID, rerr)
				}
			default:
				logf("live: heartbeat %v: %v", node.Info().ID, err)
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// StartLeaseSweeper expires orphaned reservations on node every period
// until the returned stop function is called, reading the clock from the
// scheduler the RM itself runs on (wall time in live deployments). It is
// a no-op loop when the RM has no lease TTL configured.
func StartLeaseSweeper(node *rm.RM, sched ecnp.Scheduler, period time.Duration, logf func(string, ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
			}
			if n := node.SweepLeases(sched.Now()); n > 0 {
				logf("live: %v: lease sweeper reclaimed %d reservation(s)", node.Info().ID, n)
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}
