package live_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/scenario"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// waitFor polls cond up to 5s — the external-package twin of the helper
// in chaos_test.go; shard liveness converges on real wall time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// shardChaosBeat is the shard-to-shard liveness config the chaos drills
// run: a member silent for 60ms of wall time is dead.
var shardChaosBeat = mm.LivenessConfig{HeartbeatInterval: 20 * time.Millisecond, MissThreshold: 3}

// shardCluster is a live metadata shard group plus a small data plane:
// n mmd-shaped members on real sockets, RM daemons registered through
// the successor-failover ShardMapper, and handles deep enough to crash
// and resurrect individual shards.
type shardCluster struct {
	n, rep    int
	shards    []*live.MMShard
	srvs      []*live.MMServer
	addrs     []string
	beatStops []func()

	ring   *mm.Ring
	mapper *live.ShardMapper
	dir    *live.Directory
	sched  *live.WallScheduler
	cat    *catalog.Catalog
	reg    *telemetry.Registry
	tracer *trace.Tracer
	rmSrvs map[ids.RMID]*live.RMServer
	nodes  map[ids.RMID]*rm.RM
	disks  map[ids.RMID]*vdisk.Disk
	mmMet  *mm.Metrics
	smMet  *live.ShardMapperMetrics
}

func (sc *shardCluster) shutdown() {
	for _, stop := range sc.beatStops {
		if stop != nil {
			stop()
		}
	}
	for _, s := range sc.shards {
		if s != nil {
			s.ClosePeers()
		}
	}
	sc.dir.Close()
	sc.mapper.Close()
	for _, s := range sc.rmSrvs {
		s.Close()
	}
	for _, s := range sc.srvs {
		if s != nil {
			s.Close()
		}
	}
	sc.sched.Stop()
}

// startShardCluster boots an n-member shard group with replication rep
// and one RM per entry of caps; every file in holders is provisioned on
// its listed RMs.
func startShardCluster(t *testing.T, n, rep int, caps []units.BytesPerSec, holders map[ids.FileID][]ids.RMID) *shardCluster {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 8
	cfg.MeanDurationSec = 10
	cfg.MinDurationSec = 10
	cfg.MaxDurationSec = 10
	cat, err := catalog.Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Options{Actor: "cluster", Registry: reg})
	sc := &shardCluster{
		n: n, rep: rep,
		shards:    make([]*live.MMShard, n),
		srvs:      make([]*live.MMServer, n),
		addrs:     make([]string, n),
		beatStops: make([]func(), n),
		ring:      mm.NewRing(n),
		sched:     live.NewWallScheduler(100),
		cat:       cat,
		reg:       reg,
		tracer:    tracer,
		rmSrvs:    make(map[ids.RMID]*live.RMServer),
		nodes:     make(map[ids.RMID]*rm.RM),
		disks:     make(map[ids.RMID]*vdisk.Disk),
		mmMet:     mm.NewMetrics(reg),
		smMet:     live.NewShardMapperMetrics(reg),
	}
	for i := 0; i < n; i++ {
		sc.bootShard(t, i, "")
	}
	for i := 0; i < n; i++ {
		sc.connectShard(t, i)
	}

	mapper, err := live.DialShardMapper(sc.addrs, rep, transport.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mapper.SetRetryPolicy(2*time.Millisecond, 1)
	mapper.SetMetrics(sc.smMet)
	sc.mapper = mapper
	sc.dir = live.NewDirectory(mapper)

	master := rng.New(31)
	for i, capBW := range caps {
		id := ids.RMID(i + 1)
		disk, err := vdisk.New(units.GB, blkio.NewController(), fmt.Sprintf("vm%d", id), capBW, capBW)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[ids.FileID]rm.FileMeta)
		for f, hs := range holders {
			for _, h := range hs {
				if h == id {
					meta := cat.File(f)
					files[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
					if err := disk.Provision(live.FileName(f), meta.Size); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: units.GB},
			Scheduler:   sc.sched,
			Mapper:      mapper,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       files,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := live.NewRMServer(node, disk, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.SetTracer(tracer)
		node.SetAddr(srv.Addr())
		if err := node.Register(); err != nil {
			t.Fatal(err)
		}
		node.SetDirectory(sc.dir)
		sc.rmSrvs[id] = srv
		sc.nodes[id] = node
		sc.disks[id] = disk
	}
	return sc
}

// bootShard builds member i and binds its server. addr "" binds a fresh
// socket; a concrete addr rebinds a resurrected member to its old
// address so peers reconverge through their pooled stubs.
func (sc *shardCluster) bootShard(t *testing.T, i int, addr string) {
	t.Helper()
	shard, err := live.NewMMShard(i, sc.n, sc.rep, shardChaosBeat)
	if err != nil {
		t.Fatal(err)
	}
	shard.SetMetrics(mm.NewMetrics(sc.reg))
	shard.SetLogger(t.Logf)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := live.NewMMServer(shard, addr)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTracer(sc.tracer)
	sc.shards[i] = shard
	sc.srvs[i] = srv
	sc.addrs[i] = srv.Addr()
}

// connectShard dials member i's peers and starts its beat loop.
func (sc *shardCluster) connectShard(t *testing.T, i int) {
	t.Helper()
	if err := sc.shards[i].DialPeers(sc.addrs, transport.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	sc.beatStops[i] = sc.shards[i].StartShardBeats(shardChaosBeat.HeartbeatInterval)
}

// killShard stops member i's beat loop and closes its socket — the
// process-death shape: peers see silence, clients see refused dials.
func (sc *shardCluster) killShard(i int) {
	sc.beatStops[i]()
	sc.beatStops[i] = nil
	sc.shards[i].ClosePeers()
	sc.srvs[i].Close()
}

// reviveShard resurrects member i as a fresh, empty process on its old
// address — the restarted-mmd shape; the heal handoff must repopulate it.
func (sc *shardCluster) reviveShard(t *testing.T, i int) {
	t.Helper()
	sc.bootShard(t, i, sc.addrs[i])
	sc.connectShard(t, i)
}

func (sc *shardCluster) client(t *testing.T, metaTTL time.Duration) *dfsc.Client {
	t.Helper()
	c, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    sc.mapper,
		Directory: sc.dir,
		Scheduler: sc.sched,
		Catalog:   sc.cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(3),
		MetaTTL:   metaTTL,
		Metrics:   dfsc.NewMetrics(sc.reg),
		Tracer:    sc.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// primaryOf returns the ring primary of file under the cluster's layout.
func (sc *shardCluster) primaryOf(f ids.FileID) int {
	return sc.ring.SuccessorsOfFile(int64(f), sc.rep)[0]
}

// TestShardChaosKillShardMidWorkload is the metadata-plane death drill
// over real TCP: one of three shard members dies under a running
// workload. Every open must keep succeeding — hot files ride the
// client's metadata lease, cold lookups fail over to the successor owner
// — a streamed read mid-outage must checksum clean, the survivors must
// run the takeover handoff, and the scenario SLO gate must pass on the
// outage window. Resurrecting the member as an empty process must heal
// it back to a serving replica with a bumped epoch.
func TestShardChaosKillShardMidWorkload(t *testing.T) {
	sc := startShardCluster(t, 3, 2,
		[]units.BytesPerSec{units.Mbps(200), units.Mbps(200)},
		map[ids.FileID][]ids.RMID{0: {1, 2}, 1: {1, 2}, 2: {1, 2}, 3: {1, 2}, 4: {1, 2}, 5: {1, 2}})
	defer sc.shutdown()

	victim := sc.primaryOf(0)
	// coldFile is primaried on the victim and never accessed before the
	// kill, so its first lookup happens mid-outage and must walk to the
	// successor. The other files warm the lease cache.
	coldFile := ids.FileID(-1)
	var warm []ids.FileID
	for f := ids.FileID(0); f < 6; f++ {
		if coldFile < 0 && sc.primaryOf(f) == victim {
			coldFile = f
			continue
		}
		warm = append(warm, f)
	}
	if coldFile < 0 {
		t.Fatalf("no file primaried on shard %d among the catalog", victim)
	}

	client := sc.client(t, 10*time.Second)
	for _, f := range warm {
		if out := client.Access(f); !out.OK {
			t.Fatalf("warm-up access %v failed: %s", f, out.Reason)
		}
	}

	sc.killShard(victim)

	// The workload keeps running through the outage: warm files (lease
	// hits) and the cold victim-owned file (successor failover) — every
	// open must succeed, measured for the SLO gate below.
	rec := scenario.NewRecorder()
	workload := append(append([]ids.FileID{}, warm...), coldFile)
	for round := 0; round < 4; round++ {
		for _, f := range workload {
			start := time.Now()
			out := client.Access(f)
			rec.Observe("video", time.Since(start), out.OK)
			if !out.OK {
				t.Fatalf("access %v with shard %d down failed: %s", f, victim, out.Reason)
			}
		}
	}
	// A streamed read mid-outage delivers checksum-clean bytes.
	var got bytes.Buffer
	res, err := client.ReadWithFailover(sc.dir, coldFile, &got, dfsc.FailoverConfig{MaxFailovers: 1})
	if err != nil {
		t.Fatalf("read with shard %d down: %v", victim, err)
	}
	wantSum, err := sc.disks[res.RMs[len(res.RMs)-1]].Checksum(live.FileName(coldFile))
	if err != nil {
		t.Fatal(err)
	}
	if sum := wire.ChecksumUpdate(wire.ChecksumBasis, got.Bytes()); sum != wantSum {
		t.Fatalf("mid-outage read checksum %x, replica %x", sum, wantSum)
	}

	// Survivors latch the death and run the takeover handoff.
	for i, s := range sc.shards {
		if i == victim {
			continue
		}
		sh := s
		waitFor(t, fmt.Sprintf("shard %d latches %d dead", i, victim), func() bool {
			return !sh.Health().Alive(victim)
		})
	}
	waitFor(t, "takeover handoff entries", func() bool {
		return sc.mmMet.HandoffTakeover.Value() > 0
	})

	// The lease cache and the successor walk both fired, and the lookup
	// that failed over is joined to its access in one trace.
	met := dfsc.NewMetrics(sc.reg)
	if met.MetaHits.Value() == 0 {
		t.Fatal("no lease hits during the outage")
	}
	if sc.smMet.Retries.Value() == 0 {
		t.Fatal("no successor retries during the outage")
	}
	if sc.smMet.Exhausted.Value() != 0 {
		t.Fatalf("%d lookups exhausted the owner set", sc.smMet.Exhausted.Value())
	}
	assertFailoverTrace(t, sc, coldFile)

	// The outage window passes the scenario SLO gate.
	count, failed := rec.Totals()
	result := &scenario.Result{
		Name:     "chaos-mm",
		Requests: count,
		Failed:   failed,
		FailRate: float64(failed) / float64(count),
		Classes:  rec.Stats(),
	}
	slo := scenario.SLO{MaxFailRate: 0.01, MaxP99Sec: 5}
	if vs := slo.Check(result); len(vs) != 0 {
		t.Fatalf("SLO gate failed with shard down: %v", vs)
	}

	// Resurrect the member as an empty process on its old address: peers
	// see its beats, bump its epoch, and push its keyspace back.
	sc.reviveShard(t, victim)
	for i, s := range sc.shards {
		if i == victim {
			continue
		}
		sh := s
		waitFor(t, fmt.Sprintf("shard %d revives %d", i, victim), func() bool {
			return sh.Health().Alive(victim) && sh.Health().Epoch(victim) == 1
		})
	}
	waitFor(t, "heal handoff repopulates the revived shard", func() bool {
		return len(sc.shards[victim].Local().Lookup(coldFile)) == 2
	})
	if sc.mmMet.HandoffHeal.Value() == 0 {
		t.Fatal("heal handoff entries not counted")
	}
	// The revived shard serves its keyspace again, end to end.
	if hs := sc.mapper.Lookup(coldFile); len(hs) != 2 {
		t.Fatalf("post-heal Lookup(%v) = %v, want both holders", coldFile, hs)
	}
	if out := client.Access(coldFile); !out.OK {
		t.Fatalf("post-heal access failed: %s", out.Reason)
	}
}

// assertFailoverTrace checks one trace joins the failed-over lookup to
// its access: a dfsc.access root over file whose dfsc.lookup child ended
// "ok" (the MM answered — via the successor, since the primary is dead)
// with an mm-actor server span in the same trace.
func assertFailoverTrace(t *testing.T, sc *shardCluster, file ids.FileID) {
	t.Helper()
	recs := sc.tracer.Snapshot()
	byTrace := make(map[ids.RequestID][]trace.Record)
	for _, r := range recs {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for _, spans := range byTrace {
		var access, lookup, mmSide bool
		for _, r := range spans {
			switch {
			case r.Name == "dfsc.access" && r.File == file:
				access = true
			case r.Name == "dfsc.lookup" && r.File == file && r.Outcome == "ok":
				lookup = true
			case r.Actor == "cluster" && r.Name == "mm.Lookup":
				mmSide = true
			}
		}
		if access && lookup && mmSide {
			return
		}
	}
	t.Fatalf("no trace joins a %v access to its failed-over lookup (%d spans)", file, len(recs))
}

// TestShardChaosLeaseExpiryDuringHandoff is the stale-lease drill: a
// client holds a metadata lease naming two replicas, one replica is
// decommissioned and its RM dies while a shard death has the handoff
// protocol running. Every open during the lease window must land on the
// surviving replica — never the decommissioned one — and within one TTL
// the lease must re-resolve to the post-handoff replica set.
func TestShardChaosLeaseExpiryDuringHandoff(t *testing.T) {
	const ttl = 300 * time.Millisecond
	sc := startShardCluster(t, 3, 2,
		[]units.BytesPerSec{units.Mbps(200), units.Mbps(200)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	defer sc.shutdown()
	client := sc.client(t, ttl)

	if out := client.Access(0); !out.OK {
		t.Fatalf("warm-up access failed: %s", out.Reason)
	}
	if hs, ok := client.MetaCache().Get(0); !ok || len(hs) != 2 {
		t.Fatalf("lease = %v/%v, want both replicas cached", hs, ok)
	}

	// Decommission RM 1's replica, kill its daemon, and kill a shard so
	// the lease expires while the takeover handoff is in flight.
	if err := sc.mapper.RemoveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	sc.rmSrvs[1].Close()
	leaseStart := time.Now()
	sc.killShard(sc.primaryOf(0))

	// Every access through lease expiry and beyond succeeds on RM 2; the
	// decommissioned-and-dead RM 1 never serves.
	for time.Since(leaseStart) < 2*ttl {
		out := client.Access(0)
		if !out.OK {
			t.Fatalf("access at +%v failed: %s", time.Since(leaseStart), out.Reason)
		}
		if out.RM == 1 {
			t.Fatalf("access at +%v served by the decommissioned replica", time.Since(leaseStart))
		}
		time.Sleep(25 * time.Millisecond)
	}
	// One TTL past the decommission the lease has re-resolved: an access
	// here renews or rides the post-handoff lease, and the cache names
	// only the surviving replica set.
	if out := client.Access(0); !out.OK {
		t.Fatalf("post-window access failed: %s", out.Reason)
	}
	if hs, ok := client.MetaCache().Get(0); !ok || len(hs) != 1 || hs[0] != 2 {
		t.Fatalf("post-TTL lease = %v/%v, want re-resolved [2]", hs, ok)
	}
	if sc.mmMet.HandoffTakeover.Value() == 0 {
		t.Fatal("no takeover handoff ran during the lease window")
	}
}
