package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/rm"
	"dfsqos/internal/selection"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// FileName maps a catalog file ID to its name on an RM's virtual disk.
func FileName(f ids.FileID) string { return fmt.Sprintf("%d.video", int32(f)) }

// RMServer fronts one Resource Manager over TCP: the control plane
// delegates to the embedded rm.RM (the same actor the simulation runs) and
// the data plane streams file contents from a blkio-throttled virtual disk.
type RMServer struct {
	node *rm.RM
	disk *vdisk.Disk
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	logf   func(string, ...any)
}

// NewRMServer starts serving node and disk on addr.
func NewRMServer(node *rm.RM, disk *vdisk.Disk, addr string) (*RMServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: rm listen: %w", err)
	}
	s := &RMServer{
		node:  node,
		disk:  disk,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		logf:  func(string, ...any) {},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger routes diagnostics (default: discard).
func (s *RMServer) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Addr returns the listening address.
func (s *RMServer) Addr() string { return s.ln.Addr().String() }

// Node exposes the embedded RM actor (stats, snapshots).
func (s *RMServer) Node() *rm.RM { return s.node }

// Close stops the server.
func (s *RMServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RMServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RMServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	for {
		msg, err := wc.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("rm%d: read: %v", s.node.Info().ID, err)
			}
			return
		}
		if err := s.handle(wc, msg); err != nil {
			s.logf("rm%d: handle %v: %v", s.node.Info().ID, msg.Kind, err)
			return
		}
	}
}

func (s *RMServer) handle(wc *wire.Conn, msg wire.Msg) error {
	switch msg.Kind {
	case wire.KindCFP:
		cfp, ok := msg.Payload.(ecnp.CFP)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad CFP payload"))
		}
		return wc.Write(wire.KindBid, s.node.HandleCFP(cfp))
	case wire.KindOpen:
		req, ok := msg.Payload.(ecnp.OpenRequest)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Open payload"))
		}
		return wc.Write(wire.KindOpenResult, s.node.Open(req))
	case wire.KindClose:
		req, ok := msg.Payload.(wire.CloseReq)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Close payload"))
		}
		s.node.Close(req.Request)
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindOfferReplica:
		offer, ok := msg.Payload.(ecnp.ReplicaOffer)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad OfferReplica payload"))
		}
		accepted := s.node.OfferReplica(offer)
		if accepted && s.disk != nil {
			// Provision space for the incoming replica up front; a full
			// disk retroactively rejects the offer.
			if err := s.disk.Provision(FileName(offer.File), offer.SizeBytes); err != nil {
				s.node.FinishReplica(offer.Replication, false)
				accepted = false
			}
		}
		return wc.Write(wire.KindOfferReply, wire.OfferReply{Accepted: accepted})
	case wire.KindFinishReplica:
		fin, ok := msg.Payload.(wire.FinishReplica)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad FinishReplica payload"))
		}
		s.node.FinishReplica(fin.Replication, fin.Committed)
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindStoreFile:
		req, ok := msg.Payload.(ecnp.StoreRequest)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad StoreFile payload"))
		}
		if err := s.node.StoreFile(req); err != nil {
			return wc.WriteError(err)
		}
		if s.disk != nil {
			if err := s.disk.Provision(FileName(req.File), req.SizeBytes); err != nil {
				return wc.WriteError(err)
			}
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindReadFile:
		req, ok := msg.Payload.(wire.ReadFile)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ReadFile payload"))
		}
		return s.streamFile(wc, req)
	case wire.KindWriteFile:
		req, ok := msg.Payload.(wire.WriteFile)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad WriteFile payload"))
		}
		return s.ingestFile(wc, req)
	default:
		return wc.WriteError(fmt.Errorf("rm: unexpected message %v", msg.Kind))
	}
}

// streamFile sends the file as FileChunk frames followed by FileEnd.
func (s *RMServer) streamFile(wc *wire.Conn, req wire.ReadFile) error {
	if s.disk == nil {
		return wc.WriteError(fmt.Errorf("rm: no data plane configured"))
	}
	name := FileName(req.File)
	chunk := req.ChunkSize
	if chunk <= 0 || chunk > 256*1024 {
		chunk = 64 * 1024
	}
	r, size, err := s.disk.Reader(context.Background(), name, chunk)
	if err != nil {
		return wc.WriteError(err)
	}
	buf := make([]byte, chunk)
	var off int64
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if werr := wc.Write(wire.KindFileChunk, wire.FileChunk{Offset: off, Data: buf[:n]}); werr != nil {
				return werr
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return wc.WriteError(err)
		}
	}
	sum, err := s.disk.Checksum(name)
	if err != nil {
		return wc.WriteError(err)
	}
	return wc.Write(wire.KindFileEnd, wire.FileEnd{Size: int64(size), Checksum: sum})
}

// ingestFile receives an inbound data stream (replica copy or upload) and
// stores it on the virtual disk. Replica ingestion writes through the raw
// path: it rides the B_REV reserve, not the VM's QoS throttle.
func (s *RMServer) ingestFile(wc *wire.Conn, req wire.WriteFile) error {
	if s.disk == nil {
		return wc.WriteError(fmt.Errorf("rm: no data plane configured"))
	}
	if req.SizeBytes < 0 || req.SizeBytes > 1<<40 {
		return wc.WriteError(fmt.Errorf("rm: implausible inbound size %d", req.SizeBytes))
	}
	data := make([]byte, 0, req.SizeBytes)
	var sum uint64 = 14695981039346656037
	for {
		msg, err := wc.Read()
		if err != nil {
			return err
		}
		switch msg.Kind {
		case wire.KindFileChunk:
			chunk, ok := msg.Payload.(wire.FileChunk)
			if !ok {
				return wc.WriteError(fmt.Errorf("rm: malformed FileChunk"))
			}
			if chunk.Offset != int64(len(data)) {
				return wc.WriteError(fmt.Errorf("rm: out-of-order chunk at %d, want %d", chunk.Offset, len(data)))
			}
			data = append(data, chunk.Data...)
			for _, b := range chunk.Data {
				sum ^= uint64(b)
				sum *= 1099511628211
			}
			if int64(len(data)) > req.SizeBytes {
				return wc.WriteError(fmt.Errorf("rm: stream exceeds declared size %d", req.SizeBytes))
			}
		case wire.KindFileEnd:
			end, ok := msg.Payload.(wire.FileEnd)
			if !ok {
				return wc.WriteError(fmt.Errorf("rm: malformed FileEnd"))
			}
			if end.Size != int64(len(data)) || end.Size != req.SizeBytes {
				return wc.WriteError(fmt.Errorf("rm: stream ended at %d bytes, declared %d", len(data), req.SizeBytes))
			}
			if end.Checksum != sum {
				return wc.WriteError(fmt.Errorf("rm: inbound checksum mismatch"))
			}
			if err := s.disk.WriteRaw(FileName(req.File), data); err != nil {
				return wc.WriteError(err)
			}
			return wc.Write(wire.KindAck, wire.Ack{})
		default:
			return wc.WriteError(fmt.Errorf("rm: unexpected %v during inbound stream", msg.Kind))
		}
	}
}

// RMClient is an ecnp.Provider stub over TCP.
type RMClient struct {
	info   ecnp.RMInfo
	mu     sync.Mutex
	conn   net.Conn
	wc     *wire.Conn
	broken bool
}

// DialRM connects to an RM server whose registration record is info.
func DialRM(info ecnp.RMInfo) (*RMClient, error) {
	if info.Addr == "" {
		return nil, fmt.Errorf("live: %v has no address", info.ID)
	}
	conn, err := net.Dial("tcp", info.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: dial %v at %s: %w", info.ID, info.Addr, err)
	}
	return &RMClient{info: info, conn: conn, wc: wire.NewConn(conn)}, nil
}

// Disconnect releases the connection. (Close is taken by the
// ecnp.Provider method that releases a bandwidth reservation.)
func (c *RMClient) Disconnect() error { return c.conn.Close() }

func (c *RMClient) call(kind wire.Kind, payload any) (wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg, err := c.wc.Call(kind, payload)
	if err != nil && !isRemoteError(err) {
		// A transport failure (not a served error reply) marks the client
		// broken so the directory redials — the RM may have restarted on
		// a new address and re-registered with the MM.
		c.broken = true
	}
	return msg, err
}

// isRemoteError distinguishes an error the peer *served* (the connection
// is fine) from a transport failure.
func isRemoteError(err error) bool {
	return strings.Contains(err.Error(), "remote error")
}

// Broken reports whether the client has seen a transport failure.
func (c *RMClient) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Info implements ecnp.Provider.
func (c *RMClient) Info() ecnp.RMInfo { return c.info }

// HandleCFP implements ecnp.Provider. A transport failure yields a zero
// bid for this RM, which ranks it last without aborting the negotiation.
func (c *RMClient) HandleCFP(cfp ecnp.CFP) selection.Bid {
	reply, err := c.call(wire.KindCFP, cfp)
	if err != nil {
		log.Printf("live: cfp to %v: %v", c.info.ID, err)
		return selection.Bid{RM: c.info.ID, Req: cfp.Bitrate}
	}
	if bid, ok := reply.Payload.(selection.Bid); ok {
		return bid
	}
	return selection.Bid{RM: c.info.ID, Req: cfp.Bitrate}
}

// Open implements ecnp.Provider.
func (c *RMClient) Open(req ecnp.OpenRequest) ecnp.OpenResult {
	reply, err := c.call(wire.KindOpen, req)
	if err != nil {
		return ecnp.OpenResult{OK: false, Reason: err.Error()}
	}
	if res, ok := reply.Payload.(ecnp.OpenResult); ok {
		return res
	}
	return ecnp.OpenResult{OK: false, Reason: "malformed OpenResult"}
}

// Close implements ecnp.Provider.
func (c *RMClient) Close(request ids.RequestID) {
	if _, err := c.call(wire.KindClose, wire.CloseReq{Request: request}); err != nil {
		log.Printf("live: close on %v: %v", c.info.ID, err)
	}
}

// OfferReplica implements ecnp.Provider.
func (c *RMClient) OfferReplica(offer ecnp.ReplicaOffer) bool {
	reply, err := c.call(wire.KindOfferReplica, offer)
	if err != nil {
		log.Printf("live: offer to %v: %v", c.info.ID, err)
		return false
	}
	if r, ok := reply.Payload.(wire.OfferReply); ok {
		return r.Accepted
	}
	return false
}

// FinishReplica implements ecnp.Provider.
func (c *RMClient) FinishReplica(rep ids.ReplicationID, committed bool) {
	if _, err := c.call(wire.KindFinishReplica, wire.FinishReplica{Replication: rep, Committed: committed}); err != nil {
		log.Printf("live: finish on %v: %v", c.info.ID, err)
	}
}

// ReadFile streams the whole file into w, verifying size and checksum.
// It holds the connection for the duration of the stream.
func (c *RMClient) ReadFile(file ids.FileID, w io.Writer) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.wc.Write(wire.KindReadFile, wire.ReadFile{File: file, ChunkSize: 128 * 1024}); err != nil {
		return 0, err
	}
	var total int64
	var sum uint64 = 14695981039346656037
	for {
		msg, err := c.wc.Read()
		if err != nil {
			return total, err
		}
		switch msg.Kind {
		case wire.KindFileChunk:
			chunk, ok := msg.Payload.(wire.FileChunk)
			if !ok {
				return total, fmt.Errorf("live: malformed FileChunk")
			}
			if chunk.Offset != total {
				return total, fmt.Errorf("live: out-of-order chunk at %d, want %d", chunk.Offset, total)
			}
			if _, err := w.Write(chunk.Data); err != nil {
				return total, err
			}
			for _, b := range chunk.Data {
				sum ^= uint64(b)
				sum *= 1099511628211
			}
			total += int64(len(chunk.Data))
		case wire.KindFileEnd:
			end, ok := msg.Payload.(wire.FileEnd)
			if !ok {
				return total, fmt.Errorf("live: malformed FileEnd")
			}
			if end.Size != total {
				return total, fmt.Errorf("live: stream ended at %d bytes, server reports %d", total, end.Size)
			}
			if end.Checksum != sum {
				return total, fmt.Errorf("live: checksum mismatch")
			}
			return total, nil
		case wire.KindError:
			if e, ok := msg.Payload.(wire.Error); ok {
				return total, fmt.Errorf("live: remote: %s", e.Text)
			}
			return total, fmt.Errorf("live: remote error")
		default:
			return total, fmt.Errorf("live: unexpected %v during stream", msg.Kind)
		}
	}
}

// StoreFile implements ecnp.Provider: remote admission of a new file.
// The data bytes follow separately via WriteFile.
func (c *RMClient) StoreFile(req ecnp.StoreRequest) error {
	_, err := c.call(wire.KindStoreFile, req)
	return err
}

// WriteFile streams size bytes from r to the remote RM's disk under the
// given file id (rep identifies the replication transfer, 0 for uploads).
// It holds the connection for the duration of the stream and fails unless
// the server acknowledges a checksum-verified store.
func (c *RMClient) WriteFile(file ids.FileID, rep ids.ReplicationID, size int64, r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.wc.Write(wire.KindWriteFile, wire.WriteFile{File: file, SizeBytes: size, Replication: rep}); err != nil {
		return err
	}
	buf := make([]byte, 64*1024)
	var off int64
	var sum uint64 = 14695981039346656037
	for off < size {
		n, err := r.Read(buf)
		if n > 0 {
			if werr := c.wc.Write(wire.KindFileChunk, wire.FileChunk{Offset: off, Data: buf[:n]}); werr != nil {
				return werr
			}
			for _, b := range buf[:n] {
				sum ^= uint64(b)
				sum *= 1099511628211
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	if off != size {
		return fmt.Errorf("live: source delivered %d of %d bytes", off, size)
	}
	if err := c.wc.Write(wire.KindFileEnd, wire.FileEnd{Size: size, Checksum: sum}); err != nil {
		return err
	}
	reply, err := c.wc.Read()
	if err != nil {
		return err
	}
	if reply.Kind == wire.KindError {
		if e, ok := reply.Payload.(wire.Error); ok {
			return fmt.Errorf("live: remote: %s", e.Text)
		}
		return fmt.Errorf("live: remote error")
	}
	if reply.Kind != wire.KindAck {
		return fmt.Errorf("live: unexpected %v after upload", reply.Kind)
	}
	return nil
}

var _ ecnp.Provider = (*RMClient)(nil)

// Directory resolves providers by dialing the addresses the MM's resource
// list advertises, caching one client per RM.
type Directory struct {
	mapper ecnp.Mapper
	mu     sync.Mutex
	cache  map[ids.RMID]*RMClient
}

// NewDirectory builds a directory backed by the given mapper.
func NewDirectory(mapper ecnp.Mapper) *Directory {
	return &Directory{mapper: mapper, cache: make(map[ids.RMID]*RMClient)}
}

// Provider implements ecnp.Directory. A cached client that has suffered a
// transport failure is discarded and redialed at the address the MM
// currently advertises, so an RM that crashed and re-registered (possibly
// on a new port) becomes reachable again without manual intervention.
func (d *Directory) Provider(id ids.RMID) (ecnp.Provider, bool) {
	d.mu.Lock()
	if c, ok := d.cache[id]; ok {
		if !c.Broken() {
			d.mu.Unlock()
			return c, true
		}
		delete(d.cache, id)
		d.mu.Unlock()
		c.Disconnect()
	} else {
		d.mu.Unlock()
	}

	var info ecnp.RMInfo
	found := false
	for _, i := range d.mapper.RMs() {
		if i.ID == id {
			info, found = i, true
			break
		}
	}
	if !found {
		return nil, false
	}
	c, err := DialRM(info)
	if err != nil {
		log.Printf("live: directory: %v", err)
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if existing, ok := d.cache[id]; ok {
		c.Disconnect()
		return existing, true
	}
	d.cache[id] = c
	return c, true
}

// RMClient returns the cached typed client (for the data plane), dialing
// if needed.
func (d *Directory) RMClient(id ids.RMID) (*RMClient, bool) {
	p, ok := d.Provider(id)
	if !ok {
		return nil, false
	}
	c, ok := p.(*RMClient)
	return c, ok
}

// Close releases all cached connections.
func (d *Directory) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.cache {
		c.Disconnect()
	}
	d.cache = make(map[ids.RMID]*RMClient)
}

var _ ecnp.Directory = (*Directory)(nil)
