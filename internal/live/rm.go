package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/ids"
	"dfsqos/internal/rm"
	"dfsqos/internal/selection"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// FileName maps a catalog file ID to its name on an RM's virtual disk.
func FileName(f ids.FileID) string { return fmt.Sprintf("%d.video", int32(f)) }

// RMServer fronts one Resource Manager over TCP: the control plane
// delegates to the embedded rm.RM (the same actor the simulation runs) and
// the data plane streams file contents from a blkio-throttled virtual disk.
type RMServer struct {
	node *rm.RM
	disk *vdisk.Disk
	ln   net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	logf    func(string, ...any)
	replyTO time.Duration
	metrics *ServerMetrics
	inj     faults.Injector
	tracer  *trace.Tracer

	// Stream QoS state (EnableStreamQoS): one blkio group per admitted
	// untenanted reservation (keyed by request ID) or one shared group per
	// tenant (all of a tenant's streams contend inside it). Guarded by
	// qosMu, not mu — group lookups sit on the per-chunk data path.
	qosMu      sync.Mutex
	qosGroups  map[ids.RequestID]*blkio.Group
	qosTenants map[ids.TenantID]*tenantQoS
}

// tenantQoS aggregates one tenant's live reservations into a single
// throttle group: rate is the Σ of member reservation bitrates (the
// group's assured floor), streams the member count.
type tenantQoS struct {
	rate    units.BytesPerSec
	streams int
}

// NewRMServer starts serving node and disk on addr.
func NewRMServer(node *rm.RM, disk *vdisk.Disk, addr string) (*RMServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: rm listen: %w", err)
	}
	s := &RMServer{
		node:    node,
		disk:    disk,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		logf:    func(string, ...any) {},
		metrics: nopServerMetrics("rm"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger routes diagnostics (default: discard).
func (s *RMServer) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetReplyTimeout arms a per-frame write deadline on connections accepted
// after the call (see MMServer.SetReplyTimeout). Zero disables.
func (s *RMServer) SetReplyTimeout(d time.Duration) {
	s.mu.Lock()
	s.replyTO = d
	s.mu.Unlock()
}

// SetMetrics routes request/error/deadline telemetry (default: no-op).
// It applies to requests handled after the call.
func (s *RMServer) SetMetrics(m *ServerMetrics) {
	if m == nil {
		m = nopServerMetrics("rm")
	}
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// SetFaults arms a fault injector on the server's hook sites
// (faults.PointRMHandle before each control-plane handler,
// faults.PointRMChunk before each data-plane chunk write). Nil (the
// default) disables injection entirely.
func (s *RMServer) SetFaults(inj faults.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// SetTracer joins request traces arriving on the wire: a handled message
// whose frame carries a span context opens a server-side child span
// ("rm.bid", "rm.open", "rm.stream", "rm.ingest", ...) recorded in tr's
// ring, and a traced stream's chunks go back out carrying the stream
// span's context. Nil (the default) disables server-side spans.
func (s *RMServer) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

func (s *RMServer) injector() faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

func (s *RMServer) tr() *trace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// rmSpanName maps a wire kind to its RM-side span name. The hot and
// QoS-relevant kinds get interned ECNP-flavored names; the long tail
// falls back to a (rare, traced-only) concat.
func rmSpanName(k wire.Kind) string {
	switch k {
	case wire.KindCFP:
		return "rm.bid"
	case wire.KindOpen:
		return "rm.open"
	case wire.KindClose:
		return "rm.close"
	case wire.KindReadFile:
		return "rm.stream"
	case wire.KindWriteFile:
		return "rm.ingest"
	case wire.KindKeepalive:
		return "rm.keepalive"
	case wire.KindOfferReplica:
		return "rm.offer"
	case wire.KindStoreFile:
		return "rm.store"
	}
	return "rm." + k.String()
}

// EnableStreamQoS routes each admitted reservation's data stream through
// a blkio group instead of the disk's shared default group — the paper's
// per-VM blkio.throttle binding, upgraded to the work-conserving tree.
// The disk controller's root pool is set to the RM's nominal capacity,
// and every admission installs a group whose assured rate is the
// reservation's bitrate and whose ceiling is max(bitrate, ceilFrac ×
// capacity): with ceilFrac 0 the ceiling equals the floor (flat,
// non-work-conserving pacing); with ceilFrac 1 an idle-neighbor stream may
// borrow the whole disk. Groups are torn down on Close and on lease
// expiry (the sweeper fires the release hook), so a client that dies
// mid-stream returns its floor to the pool after one lease TTL.
//
// Tenanted reservations share one group per tenant ("tenant<N>") whose
// assured floor is the Σ of the tenant's admitted bitrates: the tenant's
// streams contend with each other inside that bucket, so a tenant
// fanning out a storm of streams throttles itself — not its neighbours —
// once the shared ceiling is hit. Untenanted reservations keep their
// per-request groups ("req<N>"), the pre-tenancy behaviour.
//
// Call before traffic starts; it replaces any previously installed
// admission hooks.
func (s *RMServer) EnableStreamQoS(ceilFrac float64) error {
	if s.disk == nil {
		return fmt.Errorf("live: stream QoS needs a data plane")
	}
	ctrl := s.disk.Controller()
	capacity := s.node.Info().Capacity
	if err := ctrl.SetRoot(capacity, capacity); err != nil {
		return err
	}
	s.qosMu.Lock()
	s.qosGroups = make(map[ids.RequestID]*blkio.Group)
	s.qosTenants = make(map[ids.TenantID]*tenantQoS)
	s.qosMu.Unlock()
	ceilFor := func(assured units.BytesPerSec) units.BytesPerSec {
		if c := units.BytesPerSec(ceilFrac * float64(capacity)); c > assured {
			return c
		}
		return assured
	}
	s.node.SetAdmissionHooks(
		func(req ids.RequestID, tn ids.TenantID, rate units.BytesPerSec) {
			if rate <= 0 {
				return // unlimited reservations keep the default group
			}
			name := fmt.Sprintf("req%d", req)
			assured := rate
			if tn.Valid() {
				name = tn.String()
				s.qosMu.Lock()
				tq := s.qosTenants[tn]
				if tq == nil {
					tq = &tenantQoS{}
					s.qosTenants[tn] = tq
				}
				tq.rate += rate
				tq.streams++
				assured = tq.rate
				s.qosMu.Unlock()
			}
			g, err := ctrl.SetGroupQoS(name, blkio.GroupConfig{
				ReadAssured: assured, ReadCeil: ceilFor(assured),
				WriteAssured: assured, WriteCeil: ceilFor(assured),
			})
			if err != nil {
				s.logf("rm%d: stream qos group for %v: %v", s.node.Info().ID, req, err)
				return
			}
			s.qosMu.Lock()
			s.qosGroups[req] = g
			s.qosMu.Unlock()
		},
		func(req ids.RequestID, tn ids.TenantID, rate units.BytesPerSec) {
			s.qosMu.Lock()
			_, ok := s.qosGroups[req]
			delete(s.qosGroups, req)
			if !ok {
				s.qosMu.Unlock()
				return
			}
			if !tn.Valid() {
				s.qosMu.Unlock()
				ctrl.RemoveGroup(fmt.Sprintf("req%d", req))
				return
			}
			tq := s.qosTenants[tn]
			var remaining units.BytesPerSec
			last := true
			if tq != nil {
				tq.rate -= rate
				if tq.rate < 0 {
					tq.rate = 0
				}
				tq.streams--
				last = tq.streams <= 0
				remaining = tq.rate
				if last {
					delete(s.qosTenants, tn)
				}
			}
			s.qosMu.Unlock()
			if last {
				ctrl.RemoveGroup(tn.String())
				return
			}
			// Shrink the shared floor to the surviving members' Σ rate.
			if _, err := ctrl.SetGroupQoS(tn.String(), blkio.GroupConfig{
				ReadAssured: remaining, ReadCeil: ceilFor(remaining),
				WriteAssured: remaining, WriteCeil: ceilFor(remaining),
			}); err != nil {
				s.logf("rm%d: shrink tenant qos group %v: %v", s.node.Info().ID, tn, err)
			}
		},
	)
	return nil
}

// qosGroup resolves the reservation's stream group; nil means the default
// group paces the stream (QoS disabled, zero request, or an unthrottled
// reservation).
func (s *RMServer) qosGroup(req ids.RequestID) *blkio.Group {
	if req == 0 {
		return nil
	}
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	return s.qosGroups[req]
}

// Addr returns the listening address.
func (s *RMServer) Addr() string { return s.ln.Addr().String() }

// Node exposes the embedded RM actor (stats, snapshots).
func (s *RMServer) Node() *rm.RM { return s.node }

// Close stops the server.
func (s *RMServer) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RMServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RMServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	s.mu.Lock()
	wc.SetWriteTimeout(s.replyTO)
	m := s.metrics
	s.mu.Unlock()
	for {
		msg, err := wc.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("rm%d: read: %v", s.node.Info().ID, err)
			}
			return
		}
		m.request(msg.Kind)
		if err := s.handle(wc, msg); err != nil {
			m.failure(msg.Kind, err)
			s.logf("rm%d: handle %v: %v", s.node.Info().ID, msg.Kind, err)
			return
		}
	}
}

func (s *RMServer) handle(wc *wire.Conn, msg wire.Msg) error {
	d := faults.Decide(s.injector(), faults.PointRMHandle, msg.Kind.String())
	if handled, err := applyFault(wc, d, wire.KindAck, wire.Ack{}, func() { s.Close() }); handled || err != nil {
		return err
	}
	var sp *trace.Span
	if msg.Trace.Valid() {
		sp = s.tr().StartChild(msg.Trace, rmSpanName(msg.Kind))
		sp.SetRM(s.node.Info().ID)
	}
	err := s.dispatch(wc, msg, sp)
	if sp != nil {
		if err != nil {
			sp.SetOutcome("error")
		} else if sp.Outcome() == "" {
			sp.SetOutcome("ok")
		}
		sp.End()
	}
	return err
}

func (s *RMServer) dispatch(wc *wire.Conn, msg wire.Msg, sp *trace.Span) error {
	switch msg.Kind {
	case wire.KindCFP:
		cfp, ok := msg.Payload.(ecnp.CFP)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad CFP payload"))
		}
		sp.SetFile(cfp.File).SetRequest(cfp.Request)
		return wc.Write(wire.KindBid, s.node.HandleCFP(cfp))
	case wire.KindOpen:
		req, ok := msg.Payload.(ecnp.OpenRequest)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Open payload"))
		}
		res := s.node.Open(req)
		sp.SetFile(req.File).SetRequest(req.Request)
		if res.OK {
			sp.SetOutcome("admitted")
		} else {
			sp.SetOutcome("rejected")
		}
		return wc.Write(wire.KindOpenResult, res)
	case wire.KindClose:
		req, ok := msg.Payload.(wire.CloseReq)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Close payload"))
		}
		s.node.Close(req.Request)
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindOfferReplica:
		offer, ok := msg.Payload.(ecnp.ReplicaOffer)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad OfferReplica payload"))
		}
		accepted := s.node.OfferReplica(offer)
		if accepted && s.disk != nil {
			// Provision space for the incoming replica up front; a full
			// disk retroactively rejects the offer.
			if err := s.disk.Provision(FileName(offer.File), offer.SizeBytes); err != nil {
				s.node.FinishReplica(offer.Replication, false)
				accepted = false
			}
		}
		return wc.Write(wire.KindOfferReply, wire.OfferReply{Accepted: accepted})
	case wire.KindFinishReplica:
		fin, ok := msg.Payload.(wire.FinishReplica)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad FinishReplica payload"))
		}
		s.node.FinishReplica(fin.Replication, fin.Committed)
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindStoreFile:
		req, ok := msg.Payload.(ecnp.StoreRequest)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad StoreFile payload"))
		}
		if err := s.node.StoreFile(req); err != nil {
			return wc.WriteError(err)
		}
		if s.disk != nil {
			if err := s.disk.Provision(FileName(req.File), req.SizeBytes); err != nil {
				return wc.WriteError(err)
			}
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	case wire.KindReadFile:
		// ReadReq copies out of the (possibly pooled) payload, so the
		// frame resources go back before the stream starts.
		req, ok := msg.ReadReq()
		if !ok {
			return wc.WriteError(fmt.Errorf("bad ReadFile payload"))
		}
		msg.Release()
		return s.streamFile(wc, req, sp)
	case wire.KindWriteFile:
		req, ok := msg.Payload.(wire.WriteFile)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad WriteFile payload"))
		}
		return s.ingestFile(wc, req, sp)
	case wire.KindKeepalive:
		ka, ok := msg.Payload.(wire.Keepalive)
		if !ok {
			return wc.WriteError(fmt.Errorf("bad Keepalive payload"))
		}
		// Renew (not Touch): a client whose lease already expired must
		// learn that and re-negotiate rather than stream into a closed
		// reservation.
		if err := s.node.Renew(ka.Request); err != nil {
			return wc.WriteError(err)
		}
		return wc.Write(wire.KindAck, wire.Ack{})
	default:
		return wc.WriteError(fmt.Errorf("rm: unexpected message %v", msg.Kind))
	}
}

// streamFile sends the file from req.Offset as FileChunk frames followed
// by FileEnd. A positive req.Length bounds the stream to the byte range
// [Offset, Offset+Length) clamped at EOF; the FileEnd then reports the
// absolute end position of the range and an FNV-1a checksum over only
// the range bytes (folded per chunk as they leave — the whole-file path
// keeps using the disk's memoized checksum and pays no per-chunk hash).
// A non-zero req.Request names the QoS reservation the stream serves:
// every chunk write touches its lease, so an active stream never expires
// under the sweeper. Each chunk also passes the rm.stream.chunk fault
// point (detail: decimal absolute offset), which is where chaos tests
// tear connections mid-read. When the request arrived traced, sp is the
// server's "rm.stream" span: chunks and the FileEnd go back out carrying
// its context (still zero allocations per chunk — the trace slot rides
// the pooled frame prefix), and the span records the segment's offset
// and byte count.
func (s *RMServer) streamFile(wc *wire.Conn, req wire.ReadFile, sp *trace.Span) error {
	if s.disk == nil {
		return wc.WriteError(fmt.Errorf("rm: no data plane configured"))
	}
	sp.SetFile(req.File).SetRequest(req.Request).SetOffset(req.Offset)
	name := FileName(req.File)
	chunk := req.ChunkSize
	if chunk <= 0 || chunk > 256*1024 {
		chunk = 64 * 1024
	}
	size, err := s.disk.Stat(name)
	if err != nil {
		return wc.WriteError(err)
	}
	if req.Offset < 0 || req.Offset > int64(size) {
		return wc.WriteError(fmt.Errorf("rm: offset %d outside %q (%d bytes)", req.Offset, name, int64(size)))
	}
	end := int64(size)
	ranged := req.Length > 0
	if ranged && req.Offset+req.Length < end {
		end = req.Offset + req.Length
	}
	rangeSum := wire.ChecksumBasis
	inj := s.injector()
	tc := sp.Context() // zero when untraced: chunks degrade to tag-1 frames
	ctx := context.Background()
	// Stream QoS: a reservation with its own blkio group is paced by its
	// assured/ceil pair instead of the disk's shared default group.
	group := s.qosGroup(req.Request)
	if group == nil {
		group = s.disk.DefaultGroup()
	}
	buf := make([]byte, chunk)
	off := req.Offset
	for off < end {
		want := buf
		if remain := end - off; remain < int64(len(want)) {
			want = want[:remain]
		}
		n, rerr := s.disk.ReadAtGroup(ctx, group, name, want, off)
		if n > 0 {
			// The fault decision (and its detail string) is only built when
			// an injector is armed: the production hot loop stays
			// allocation-free per chunk.
			if inj != nil {
				fc := wire.FileChunk{Offset: off, Data: buf[:n]}
				d := faults.Decide(inj, faults.PointRMChunk, strconv.FormatInt(off, 10))
				if handled, ferr := applyFault(wc, d, wire.KindFileChunk, fc, func() { s.Close() }); handled || ferr != nil {
					sp.SetBytes(off - req.Offset)
					return ferr
				}
			}
			// WriteChunkTraced is the zero-copy fast path: one writev per
			// chunk, and buf is reusable as soon as it returns.
			if werr := wc.WriteChunkTraced(tc, off, buf[:n]); werr != nil {
				sp.SetBytes(off - req.Offset)
				return werr
			}
			if ranged {
				rangeSum = wire.ChecksumUpdate(rangeSum, buf[:n])
			}
			off += int64(n)
			if req.Request != 0 {
				s.node.Touch(req.Request)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return wc.WriteError(rerr)
		}
	}
	sp.SetBytes(off - req.Offset)
	if ranged {
		// Ranged FileEnd: Size is the absolute end position of the range
		// and Checksum covers exactly the range bytes, so each stripe
		// segment verifies independently of its siblings.
		return wc.WriteTraced(tc, wire.KindFileEnd, wire.FileEnd{Size: end, Checksum: rangeSum})
	}
	sum, err := s.disk.Checksum(name)
	if err != nil {
		return wc.WriteError(err)
	}
	return wc.WriteTraced(tc, wire.KindFileEnd, wire.FileEnd{Size: int64(size), Checksum: sum})
}

// ingestFile receives an inbound data stream (replica copy or upload) and
// stores it on the virtual disk. Replica ingestion writes through the raw
// path: it rides the B_REV reserve, not the VM's QoS throttle. sp, when
// the WriteFile arrived traced, is the server's "rm.ingest" span and
// records the byte count stored.
func (s *RMServer) ingestFile(wc *wire.Conn, req wire.WriteFile, sp *trace.Span) error {
	if s.disk == nil {
		return wc.WriteError(fmt.Errorf("rm: no data plane configured"))
	}
	if req.SizeBytes < 0 || req.SizeBytes > 1<<40 {
		return wc.WriteError(fmt.Errorf("rm: implausible inbound size %d", req.SizeBytes))
	}
	sp.SetFile(req.File).SetBytes(req.SizeBytes)
	data := make([]byte, 0, req.SizeBytes)
	sum := wire.ChecksumBasis
	for {
		msg, err := wc.Read()
		if err != nil {
			return err
		}
		switch msg.Kind {
		case wire.KindFileChunk:
			chunk, ok := msg.Chunk()
			if !ok {
				return wc.WriteError(fmt.Errorf("rm: malformed FileChunk"))
			}
			if chunk.Offset != int64(len(data)) {
				off := chunk.Offset
				msg.Release()
				return wc.WriteError(fmt.Errorf("rm: out-of-order chunk at %d, want %d", off, len(data)))
			}
			// Copy out of the borrowed frame buffer, then hand it back so
			// the next chunk reuses it instead of allocating.
			data = append(data, chunk.Data...)
			sum = wire.ChecksumUpdate(sum, chunk.Data)
			msg.Release()
			if int64(len(data)) > req.SizeBytes {
				return wc.WriteError(fmt.Errorf("rm: stream exceeds declared size %d", req.SizeBytes))
			}
		case wire.KindFileEnd:
			end, ok := msg.Payload.(wire.FileEnd)
			if !ok {
				return wc.WriteError(fmt.Errorf("rm: malformed FileEnd"))
			}
			if end.Size != int64(len(data)) || end.Size != req.SizeBytes {
				return wc.WriteError(fmt.Errorf("rm: stream ended at %d bytes, declared %d", len(data), req.SizeBytes))
			}
			if end.Checksum != sum {
				return wc.WriteError(fmt.Errorf("rm: inbound checksum mismatch"))
			}
			if err := s.disk.WriteRaw(FileName(req.File), data); err != nil {
				return wc.WriteError(err)
			}
			return wc.Write(wire.KindAck, wire.Ack{})
		default:
			return wc.WriteError(fmt.Errorf("rm: unexpected %v during inbound stream", msg.Kind))
		}
	}
}

// RMClient is an ecnp.Provider stub over a pooled transport. Control-plane
// calls are deadline-bounded and run concurrently on independent pooled
// connections; data-plane streams check a dedicated connection out for
// their full duration.
type RMClient struct {
	info   ecnp.RMInfo
	t      *transport.Client
	logf   func(string, ...any)
	broken atomic.Bool
}

// DialRM connects to an RM server whose registration record is info, with
// the default transport tuning.
func DialRM(info ecnp.RMInfo) (*RMClient, error) {
	return DialRMConfig(info, transport.DefaultConfig())
}

// DialRMConfig is DialRM with explicit transport tuning. Connectivity is
// verified eagerly so an unreachable RM fails at construction.
func DialRMConfig(info ecnp.RMInfo, cfg transport.Config) (*RMClient, error) {
	if info.Addr == "" {
		return nil, fmt.Errorf("live: %v has no address", info.ID)
	}
	t, err := transport.Dial(info.Addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("live: dial %v at %s: %w", info.ID, info.Addr, err)
	}
	return &RMClient{info: info, t: t, logf: func(string, ...any) {}}, nil
}

// SetLogger routes client-side diagnostics (default: discard).
func (c *RMClient) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c.logf = logf
}

// Disconnect releases all pooled connections. (Close is taken by the
// ecnp.Provider method that releases a bandwidth reservation.)
func (c *RMClient) Disconnect() error { return c.t.Close() }

// call performs one deadline-bounded RPC, recording transport failures —
// but not errors the peer served — in the broken flag so the directory
// re-resolves the RM's address: the RM may have restarted on a new port
// and re-registered with the MM.
func (c *RMClient) call(ctx context.Context, kind wire.Kind, payload any) (wire.Msg, error) {
	msg, err := c.t.Call(ctx, kind, payload)
	if err != nil && !transport.IsRemote(err) {
		c.broken.Store(true)
	}
	return msg, err
}

// Broken reports whether the client has seen a transport failure since
// the last ClearBroken.
func (c *RMClient) Broken() bool { return c.broken.Load() }

// ClearBroken re-arms the client after the directory confirms the MM
// still advertises this address: the pool redials lazily under its
// exponential backoff, which survives across clears.
func (c *RMClient) ClearBroken() { c.broken.Store(false) }

// Info implements ecnp.Provider.
func (c *RMClient) Info() ecnp.RMInfo { return c.info }

// HandleCFPContext implements ecnp.CtxBidder: the CFP round trip is
// bounded by ctx (and the transport's call deadline). Any failure —
// transport, timeout, or served error — degrades to the zero bid, which
// ranks this RM last without aborting the negotiation.
func (c *RMClient) HandleCFPContext(ctx context.Context, cfp ecnp.CFP) selection.Bid {
	reply, err := c.call(ctx, wire.KindCFP, cfp)
	if err != nil {
		c.logf("live: cfp to %v: %v", c.info.ID, err)
		return ecnp.ZeroBid(c.info.ID, cfp)
	}
	if bid, ok := reply.Payload.(selection.Bid); ok {
		return bid
	}
	return ecnp.ZeroBid(c.info.ID, cfp)
}

// HandleCFP implements ecnp.Provider.
func (c *RMClient) HandleCFP(cfp ecnp.CFP) selection.Bid {
	return c.HandleCFPContext(context.Background(), cfp)
}

// Open implements ecnp.Provider.
func (c *RMClient) Open(req ecnp.OpenRequest) ecnp.OpenResult {
	return c.OpenContext(context.Background(), req)
}

// OpenContext is Open bounded by ctx; a span context attached via
// trace.NewContext rides the request frame so the RM's admission decision
// appears in the caller's trace.
func (c *RMClient) OpenContext(ctx context.Context, req ecnp.OpenRequest) ecnp.OpenResult {
	reply, err := c.call(ctx, wire.KindOpen, req)
	if err != nil {
		return ecnp.OpenResult{OK: false, Reason: err.Error()}
	}
	if res, ok := reply.Payload.(ecnp.OpenResult); ok {
		return res
	}
	return ecnp.OpenResult{OK: false, Reason: "malformed OpenResult"}
}

// Close implements ecnp.Provider.
func (c *RMClient) Close(request ids.RequestID) {
	if _, err := c.call(context.Background(), wire.KindClose, wire.CloseReq{Request: request}); err != nil {
		c.logf("live: close on %v: %v", c.info.ID, err)
	}
}

// OfferReplica implements ecnp.Provider.
func (c *RMClient) OfferReplica(offer ecnp.ReplicaOffer) bool {
	reply, err := c.call(context.Background(), wire.KindOfferReplica, offer)
	if err != nil {
		c.logf("live: offer to %v: %v", c.info.ID, err)
		return false
	}
	if r, ok := reply.Payload.(wire.OfferReply); ok {
		return r.Accepted
	}
	return false
}

// FinishReplica implements ecnp.Provider.
func (c *RMClient) FinishReplica(rep ids.ReplicationID, committed bool) {
	if _, err := c.call(context.Background(), wire.KindFinishReplica, wire.FinishReplica{Replication: rep, Committed: committed}); err != nil {
		c.logf("live: finish on %v: %v", c.info.ID, err)
	}
}

// stream checks a dedicated connection out of the pool for a data-plane
// exchange, runs fn on it, and returns it (discarding on transport
// failure). Streams are exempt from the call deadline — the disk throttle
// paces them — but still inherit the dial deadline and backoff gate.
func (c *RMClient) stream(fn func(wc *wire.Conn) error) error {
	conn, err := c.t.Get(context.Background())
	if err != nil {
		c.broken.Store(true)
		return err
	}
	err = transport.Classify("stream", c.t.Addr(), fn(conn.W))
	c.t.Put(conn, err)
	if err != nil && !transport.IsRemote(err) {
		c.broken.Store(true)
	}
	return err
}

// ReadFile streams the whole file into w, verifying size and checksum.
// It holds a dedicated pooled connection for the duration of the stream.
func (c *RMClient) ReadFile(file ids.FileID, w io.Writer) (int64, error) {
	sum := wire.ChecksumBasis
	return c.ReadFileAt(context.Background(), file, 0, 0, w, &sum)
}

// ReadFileAt streams the file from offset into w, returning the bytes
// delivered by this segment. A span context attached to ctx
// (trace.NewContext) rides the opening ReadFile frame, so the serving
// RM's "rm.stream" span becomes a child of the caller's segment span. A
// non-zero req names the QoS reservation the stream rides (the server
// renews its lease per chunk). sum is the running FNV-1a state carried
// across failover segments: the caller seeds it with wire.ChecksumBasis
// before the first segment, and because resumed segments are
// byte-contiguous with their predecessors, the whole-file checksum in the
// final FileEnd still verifies. A nil sum skips verification (an offset
// read with no prior state cannot verify). It holds a dedicated pooled
// connection for the duration of the stream.
func (c *RMClient) ReadFileAt(ctx context.Context, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error) {
	pos := offset
	err := c.stream(func(wc *wire.Conn) error {
		if err := wc.WriteReadReq(trace.FromContext(ctx), wire.ReadFile{
			File: file, ChunkSize: 128 * 1024, Offset: offset, Request: req,
		}); err != nil {
			return err
		}
		for {
			msg, err := wc.Read()
			if err != nil {
				return err
			}
			switch msg.Kind {
			case wire.KindFileChunk:
				chunk, ok := msg.Chunk()
				if !ok {
					return fmt.Errorf("live: malformed FileChunk")
				}
				if chunk.Offset != pos {
					off := chunk.Offset
					msg.Release()
					return fmt.Errorf("live: out-of-order chunk at %d, want %d", off, pos)
				}
				// chunk.Data borrows the pooled frame buffer: consume it
				// (sink write + running checksum), then Release so the
				// stream loop recycles instead of allocating per chunk.
				n := len(chunk.Data)
				if _, err := w.Write(chunk.Data); err != nil {
					msg.Release()
					return err
				}
				if sum != nil {
					*sum = wire.ChecksumUpdate(*sum, chunk.Data)
				}
				msg.Release()
				pos += int64(n)
			case wire.KindFileEnd:
				end, ok := msg.Payload.(wire.FileEnd)
				if !ok {
					return fmt.Errorf("live: malformed FileEnd")
				}
				if end.Size != pos {
					return fmt.Errorf("live: stream ended at %d bytes, server reports %d", pos, end.Size)
				}
				if sum != nil && end.Checksum != *sum {
					return fmt.Errorf("live: checksum mismatch")
				}
				return nil
			case wire.KindError:
				if e, ok := msg.Payload.(wire.Error); ok {
					return wire.RemoteError{Text: e.Text}
				}
				return wire.RemoteError{Text: "malformed error payload"}
			default:
				return fmt.Errorf("live: unexpected %v during stream", msg.Kind)
			}
		}
	})
	return pos - offset, err
}

// ReadRange streams exactly the byte range [offset, offset+length) of
// the file into w (clamped at EOF by the server), returning the bytes
// delivered. It is the stripe-lane data plane: the request goes out as a
// ranged ReadFile (trailing length field on the binary fast path), and
// the serving RM answers with a FileEnd whose Size is the absolute end
// position of the range and whose Checksum covers only the range bytes.
// sum, when non-nil, must be seeded with wire.ChecksumBasis: the range
// checksum is verified against the server's and the folded state is left
// in *sum so the caller can cross-check segments. A nil sum skips
// verification. length must be positive. Like ReadFileAt, it holds a
// dedicated pooled connection for the stream's duration and a span
// context on ctx rides the opening frame.
func (c *RMClient) ReadRange(ctx context.Context, file ids.FileID, req ids.RequestID, offset, length int64, w io.Writer, sum *uint64) (int64, error) {
	if length <= 0 {
		return 0, fmt.Errorf("live: ReadRange length %d must be positive", length)
	}
	pos := offset
	err := c.stream(func(wc *wire.Conn) error {
		if err := wc.WriteReadReq(trace.FromContext(ctx), wire.ReadFile{
			File: file, ChunkSize: 128 * 1024, Offset: offset, Request: req, Length: length,
		}); err != nil {
			return err
		}
		for {
			msg, err := wc.Read()
			if err != nil {
				return err
			}
			switch msg.Kind {
			case wire.KindFileChunk:
				chunk, ok := msg.Chunk()
				if !ok {
					return fmt.Errorf("live: malformed FileChunk")
				}
				if chunk.Offset != pos {
					off := chunk.Offset
					msg.Release()
					return fmt.Errorf("live: out-of-order chunk at %d, want %d", off, pos)
				}
				n := len(chunk.Data)
				if pos+int64(n) > offset+length {
					msg.Release()
					return fmt.Errorf("live: range overrun: chunk ends at %d, range ends at %d", pos+int64(n), offset+length)
				}
				if _, err := w.Write(chunk.Data); err != nil {
					msg.Release()
					return err
				}
				if sum != nil {
					*sum = wire.ChecksumUpdate(*sum, chunk.Data)
				}
				msg.Release()
				pos += int64(n)
			case wire.KindFileEnd:
				end, ok := msg.Payload.(wire.FileEnd)
				if !ok {
					return fmt.Errorf("live: malformed FileEnd")
				}
				if end.Size != pos {
					return fmt.Errorf("live: range ended at %d bytes, server reports %d", pos, end.Size)
				}
				if sum != nil && end.Checksum != *sum {
					return fmt.Errorf("live: range checksum mismatch")
				}
				return nil
			case wire.KindError:
				if e, ok := msg.Payload.(wire.Error); ok {
					return wire.RemoteError{Text: e.Text}
				}
				return wire.RemoteError{Text: "malformed error payload"}
			default:
				return fmt.Errorf("live: unexpected %v during range stream", msg.Kind)
			}
		}
	})
	return pos - offset, err
}

// Keepalive explicitly renews a reservation lease at the RM. It fails
// with a remote error when the lease already expired, telling the caller
// to re-negotiate.
func (c *RMClient) Keepalive(req ids.RequestID) error {
	_, err := c.call(context.Background(), wire.KindKeepalive, wire.Keepalive{Request: req})
	return err
}

// StoreFile implements ecnp.Provider: remote admission of a new file.
// The data bytes follow separately via WriteFile.
func (c *RMClient) StoreFile(req ecnp.StoreRequest) error {
	_, err := c.call(context.Background(), wire.KindStoreFile, req)
	return err
}

// WriteFile streams size bytes from r to the remote RM's disk under the
// given file id (rep identifies the replication transfer, 0 for uploads).
// A span context attached to ctx rides the WriteFile header and every
// chunk, so the destination's "rm.ingest" span joins the copier's trace.
// It holds a dedicated pooled connection for the duration of the stream
// and fails unless the server acknowledges a checksum-verified store.
func (c *RMClient) WriteFile(ctx context.Context, file ids.FileID, rep ids.ReplicationID, size int64, r io.Reader) error {
	tc := trace.FromContext(ctx)
	return c.stream(func(wc *wire.Conn) error {
		if err := wc.WriteTraced(tc, wire.KindWriteFile, wire.WriteFile{File: file, SizeBytes: size, Replication: rep}); err != nil {
			return err
		}
		buf := make([]byte, 64*1024)
		var off int64
		sum := wire.ChecksumBasis
		for off < size {
			n, err := r.Read(buf)
			if n > 0 {
				if werr := wc.WriteChunkTraced(tc, off, buf[:n]); werr != nil {
					return werr
				}
				sum = wire.ChecksumUpdate(sum, buf[:n])
				off += int64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		if off != size {
			return fmt.Errorf("live: source delivered %d of %d bytes", off, size)
		}
		if err := wc.WriteTraced(tc, wire.KindFileEnd, wire.FileEnd{Size: size, Checksum: sum}); err != nil {
			return err
		}
		reply, err := wc.Read()
		if err != nil {
			return err
		}
		if reply.Kind == wire.KindError {
			if e, ok := reply.Payload.(wire.Error); ok {
				return wire.RemoteError{Text: e.Text}
			}
			return wire.RemoteError{Text: "malformed error payload"}
		}
		if reply.Kind != wire.KindAck {
			return fmt.Errorf("live: unexpected %v after upload", reply.Kind)
		}
		return nil
	})
}

var _ ecnp.Provider = (*RMClient)(nil)
var _ ecnp.CtxBidder = (*RMClient)(nil)

// Directory resolves providers by dialing the addresses the MM's resource
// list advertises, caching one pooled client per RM.
type Directory struct {
	mapper ecnp.Mapper
	cfg    transport.Config
	mu     sync.Mutex
	cache  map[ids.RMID]*RMClient
	logf   func(string, ...any)
}

// NewDirectory builds a directory backed by the given mapper with default
// transport tuning.
func NewDirectory(mapper ecnp.Mapper) *Directory {
	return NewDirectoryConfig(mapper, transport.DefaultConfig())
}

// NewDirectoryConfig is NewDirectory with explicit transport tuning,
// applied to every RM client it dials.
func NewDirectoryConfig(mapper ecnp.Mapper, cfg transport.Config) *Directory {
	return &Directory{
		mapper: mapper,
		cfg:    cfg,
		cache:  make(map[ids.RMID]*RMClient),
		logf:   func(string, ...any) {},
	}
}

// SetLogger routes directory and client diagnostics (default: discard).
// It applies to clients dialed after the call.
func (d *Directory) SetLogger(logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	d.mu.Lock()
	d.logf = logf
	d.mu.Unlock()
}

// Provider implements ecnp.Directory. A cached client that has suffered a
// transport failure is re-resolved against the address the MM currently
// advertises: if the address is unchanged the same client (and its pool,
// with its backoff state) is re-armed and redials lazily; if the RM
// re-registered on a new address the old client is discarded and the new
// address dialed — so an RM that crashed and came back (possibly on a new
// port) becomes reachable again without manual intervention.
func (d *Directory) Provider(id ids.RMID) (ecnp.Provider, bool) {
	d.mu.Lock()
	cached, ok := d.cache[id]
	logf := d.logf
	d.mu.Unlock()
	if ok && !cached.Broken() {
		return cached, true
	}

	var info ecnp.RMInfo
	found := false
	for _, i := range d.mapper.RMs() {
		if i.ID == id {
			info, found = i, true
			break
		}
	}
	if !found {
		return nil, false
	}
	if ok && cached.Info().Addr == info.Addr {
		// Same advertised address: keep the client, let its pool redial
		// under backoff.
		cached.ClearBroken()
		return cached, true
	}
	if ok {
		d.mu.Lock()
		delete(d.cache, id)
		d.mu.Unlock()
		cached.Disconnect()
	}

	c, err := DialRMConfig(info, d.cfg)
	if err != nil {
		logf("live: directory: %v", err)
		return nil, false
	}
	c.SetLogger(logf)
	d.mu.Lock()
	defer d.mu.Unlock()
	if existing, ok := d.cache[id]; ok {
		c.Disconnect()
		return existing, true
	}
	d.cache[id] = c
	return c, true
}

// RMClient returns the cached typed client (for the data plane), dialing
// if needed.
func (d *Directory) RMClient(id ids.RMID) (*RMClient, bool) {
	p, ok := d.Provider(id)
	if !ok {
		return nil, false
	}
	c, ok := p.(*RMClient)
	return c, ok
}

// StreamAt implements the dfsc failover reader's data plane: it resolves
// rmID and streams file from offset into w under reservation req,
// threading the caller's running checksum state across segments (see
// RMClient.ReadFileAt) and any span context carried by ctx onto the
// stream's opening frame. It reports the bytes this segment delivered
// even on error — that is the resume point.
func (d *Directory) StreamAt(ctx context.Context, rmID ids.RMID, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error) {
	c, ok := d.RMClient(rmID)
	if !ok {
		return 0, fmt.Errorf("live: directory cannot resolve %v", rmID)
	}
	return c.ReadFileAt(ctx, file, req, offset, w, sum)
}

// StreamRange implements the dfsc stripe scheduler's data plane
// (dfsc.RangeStreamer): it resolves rmID and streams exactly the byte
// range [offset, offset+length) of file into w under reservation req,
// verifying the per-range checksum when sum is seeded with
// wire.ChecksumBasis (see RMClient.ReadRange).
func (d *Directory) StreamRange(ctx context.Context, rmID ids.RMID, file ids.FileID, req ids.RequestID, offset, length int64, w io.Writer, sum *uint64) (int64, error) {
	c, ok := d.RMClient(rmID)
	if !ok {
		return 0, fmt.Errorf("live: directory cannot resolve %v", rmID)
	}
	return c.ReadRange(ctx, file, req, offset, length, w, sum)
}

// Close releases all cached connections.
func (d *Directory) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.cache {
		c.Disconnect()
	}
	d.cache = make(map[ids.RMID]*RMClient)
}

var _ ecnp.Directory = (*Directory)(nil)
