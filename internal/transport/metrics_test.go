package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/telemetry"
	"dfsqos/internal/wire"
)

// echoServer answers every request with an Ack until the listener closes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				wc := wire.NewConn(conn)
				for {
					if _, err := wc.Read(); err != nil {
						return
					}
					if err := wc.Write(wire.KindAck, wire.Ack{}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

func TestMetricsCountCallsAndPoolChurn(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()

	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	cfg := DefaultConfig()
	cfg.Metrics = m
	c := NewClient(ln.Addr().String(), cfg)
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Call(context.Background(), wire.KindRMs, nil); err != nil {
			t.Fatal(err)
		}
	}

	if got := m.DialsOK.Value(); got != 1 {
		t.Fatalf("dials ok = %d, want 1 (pool reuse)", got)
	}
	if got := m.CheckoutsDial.Value(); got != 1 {
		t.Fatalf("dial checkouts = %d, want 1", got)
	}
	if got := m.CheckoutsPool.Value(); got != 2 {
		t.Fatalf("pool checkouts = %d, want 2", got)
	}
	if got := m.CallLatency.Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if got := m.PoolIdle.Value(); got != 1 {
		t.Fatalf("idle gauge = %v, want 1", got)
	}
	c.Close()
	if got := m.PoolIdle.Value(); got != 0 {
		t.Fatalf("idle gauge after close = %v, want 0", got)
	}
	if m.ErrRemote.Value()+m.ErrTimeout.Value()+m.ErrConn.Value() != 0 {
		t.Fatal("error counters moved on a clean run")
	}

	// The exposition includes the call-latency histogram and pool gauge.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dfsqos_transport_call_latency_seconds_bucket",
		"dfsqos_transport_call_latency_seconds_count 3",
		"dfsqos_transport_pool_idle_connections",
		`dfsqos_transport_dials_total{result="ok"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestMetricsClassifyErrorsAndBackoff(t *testing.T) {
	// A peer that is not listening: dials fail, error class = conn (or
	// timeout under pathological schedulers — accept either bucket but
	// require the total).
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	cfg := DefaultConfig()
	cfg.Metrics = m
	cfg.DialTimeout = 200 * time.Millisecond
	cfg.BackoffBase = time.Millisecond
	c := NewClient("127.0.0.1:1", cfg)
	defer c.Close()

	for i := 0; i < 2; i++ {
		if _, err := c.Call(context.Background(), wire.KindRMs, nil); err == nil {
			t.Fatal("call to dead peer succeeded")
		}
	}
	if got := m.DialsFailed.Value(); got != 2 {
		t.Fatalf("failed dials = %d, want 2", got)
	}
	if got := m.ErrConn.Value() + m.ErrTimeout.Value(); got != 2 {
		t.Fatalf("classified errors = %d, want 2", got)
	}
	if got := m.RedialWaits.Value(); got < 1 {
		t.Fatalf("redial waits = %d, want >= 1 (second dial was backoff-gated)", got)
	}
	if got := m.CallLatency.Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2 (failures observed too)", got)
	}
}

func TestNoMetricsConfigUsesSharedNop(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Metrics != nopMetrics {
		t.Fatal("zero Config did not pick the shared no-op metrics")
	}
	// The no-op sink is recordable without a registry.
	cfg.Metrics.DialsOK.Inc()
}
