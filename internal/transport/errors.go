// Package transport is the context-aware RPC substrate under the live ECNP
// stack. It owns the three concerns the higher layers kept re-implementing
// ad hoc:
//
//   - dialing with budgets: DialContext plus configurable dial and per-call
//     deadlines, so one unreachable peer costs a bounded slice of wall time
//     instead of a kernel-default TCP timeout;
//   - connection pooling: a bounded, lazily grown per-peer pool,
//     health-checked on checkout, replacing the one-mutex-one-connection
//     client pattern (calls to the same peer no longer serialize behind a
//     single in-flight RPC);
//   - failure classification: a typed error taxonomy — RemoteError (the
//     peer answered with an error; the connection is fine), TimeoutError
//     (deadline exceeded), ConnError (the connection is unusable) — matched
//     with errors.As instead of substring checks on error text.
//
// Redialing a down peer backs off exponentially with jitter, so a crashed
// Resource Manager is probed politely rather than hammered, and recovers
// promptly once it re-registers.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"

	"dfsqos/internal/wire"
)

// RemoteError is an error the peer served over a healthy connection (a
// KindError reply frame). It is an alias of wire.RemoteError so the codec
// and the transport surface the same type; match it with errors.As or
// IsRemote. A RemoteError never invalidates the connection.
type RemoteError = wire.RemoteError

// TimeoutError reports an operation that exceeded its deadline: a dial
// that ran past DialTimeout, or a call that ran past CallTimeout or its
// context deadline. The underlying connection, if any, is discarded.
type TimeoutError struct {
	Op   string // "dial", "call CFP", ...
	Peer string // remote address
	Err  error  // the raw net/context error
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("transport: %s %s timed out: %v", e.Op, e.Peer, e.Err)
}

// Unwrap exposes the raw cause to errors.Is (context.DeadlineExceeded,
// os.ErrDeadlineExceeded).
func (e *TimeoutError) Unwrap() error { return e.Err }

// Timeout implements net.Error's timeout surface.
func (e *TimeoutError) Timeout() bool { return true }

// ConnError reports a transport-level failure — connection refused, reset,
// EOF mid-call, framing violation. The connection is unusable and has been
// (or must be) discarded; the peer may have crashed or restarted.
type ConnError struct {
	Op   string
	Peer string
	Err  error
}

// Error implements error.
func (e *ConnError) Error() string {
	return fmt.Sprintf("transport: %s %s: %v", e.Op, e.Peer, e.Err)
}

// Unwrap exposes the raw cause.
func (e *ConnError) Unwrap() error { return e.Err }

// ErrClosed is wrapped into the ConnError returned by operations on a
// closed client.
var ErrClosed = errors.New("transport: client closed")

// IsRemote reports whether err (anywhere in its chain) is an error the
// peer served rather than a transport failure — the typed replacement for
// strings.Contains(err.Error(), "remote error").
func IsRemote(err error) bool {
	var re RemoteError
	return errors.As(err, &re)
}

// IsTimeout reports whether err is a deadline overrun at any layer.
func IsTimeout(err error) bool {
	var te *TimeoutError
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded)
}

// Classify wraps a raw wire/net error into the taxonomy. nil and
// already-classified errors pass through unchanged; deadline overruns
// become *TimeoutError and everything else becomes *ConnError.
func Classify(op, peer string, err error) error {
	if err == nil || IsRemote(err) {
		return err
	}
	var te *TimeoutError
	var ce *ConnError
	if errors.As(err, &te) || errors.As(err, &ce) {
		return err
	}
	var ne net.Error
	if (errors.As(err, &ne) && ne.Timeout()) || IsTimeout(err) {
		return &TimeoutError{Op: op, Peer: peer, Err: err}
	}
	return &ConnError{Op: op, Peer: peer, Err: err}
}
