package transport

import (
	"dfsqos/internal/telemetry"
)

// Metrics is the transport layer's instrumentation surface. One Metrics
// value is shared by every Client built from a Config that carries it, so
// the counters aggregate across peers (per-peer cardinality stays out of
// the hot path). All fields are pre-resolved vector children: recording
// is a single atomic operation with no label lookup.
//
// Build one with NewMetrics; a Config without Metrics uses a process-wide
// no-op instance (live unregistered atomics), so the hot path never
// branches on nil.
type Metrics struct {
	// DialsOK / DialsFailed count TCP connection attempts by outcome
	// (dfsqos_transport_dials_total{result}).
	DialsOK     *telemetry.Counter
	DialsFailed *telemetry.Counter
	// RedialWaits counts dials that sat out a backoff gate before
	// attempting (dfsqos_transport_redial_backoff_waits_total).
	RedialWaits *telemetry.Counter
	// CheckoutsPool / CheckoutsDial count pool checkouts by source:
	// a healthy pooled connection vs a fresh dial
	// (dfsqos_transport_pool_checkouts_total{source}).
	CheckoutsPool *telemetry.Counter
	CheckoutsDial *telemetry.Counter
	// Discard* count connections dropped instead of pooled, by reason
	// (dfsqos_transport_pool_discards_total{reason}).
	DiscardUnhealthy *telemetry.Counter
	DiscardError     *telemetry.Counter
	DiscardOverflow  *telemetry.Counter
	DiscardClosed    *telemetry.Counter
	// PoolIdle tracks the idle pooled connections across all clients
	// sharing this Metrics (dfsqos_transport_pool_idle_connections).
	PoolIdle *telemetry.Gauge
	// CallLatency observes one full RPC round trip — checkout (possibly
	// a dial) + write + reply read — in seconds
	// (dfsqos_transport_call_latency_seconds).
	CallLatency *telemetry.Histogram
	// Err* count failed calls by error class
	// (dfsqos_transport_errors_total{class}).
	ErrRemote  *telemetry.Counter
	ErrTimeout *telemetry.Counter
	ErrConn    *telemetry.Counter
}

// NewMetrics registers the transport metric families on reg (nil reg
// yields live but unexported metrics) and pre-resolves every labeled
// child.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	dials := reg.NewCounterVec("dfsqos_transport_dials_total",
		"TCP connection attempts by result.", "result")
	checkouts := reg.NewCounterVec("dfsqos_transport_pool_checkouts_total",
		"Pool checkouts by source (pooled connection vs fresh dial).", "source")
	discards := reg.NewCounterVec("dfsqos_transport_pool_discards_total",
		"Connections dropped instead of pooled, by reason.", "reason")
	errs := reg.NewCounterVec("dfsqos_transport_errors_total",
		"Failed calls by error class (remote, timeout, conn).", "class")
	return &Metrics{
		DialsOK:     dials.With("ok"),
		DialsFailed: dials.With("error"),
		RedialWaits: reg.NewCounter("dfsqos_transport_redial_backoff_waits_total",
			"Dials that waited out an exponential-backoff gate first."),
		CheckoutsPool:    checkouts.With("pool"),
		CheckoutsDial:    checkouts.With("dial"),
		DiscardUnhealthy: discards.With("unhealthy"),
		DiscardError:     discards.With("error"),
		DiscardOverflow:  discards.With("overflow"),
		DiscardClosed:    discards.With("closed"),
		PoolIdle: reg.NewGauge("dfsqos_transport_pool_idle_connections",
			"Idle pooled connections across all clients sharing this registry."),
		CallLatency: reg.NewHistogram("dfsqos_transport_call_latency_seconds",
			"Control-plane RPC round-trip latency (checkout + write + reply).",
			telemetry.DefBuckets),
		ErrRemote:  errs.With("remote"),
		ErrTimeout: errs.With("timeout"),
		ErrConn:    errs.With("conn"),
	}
}

// nopMetrics is the shared no-op sink for Configs without Metrics: real
// atomics (so instrumentation sites need no nil checks) that no registry
// ever exports.
var nopMetrics = NewMetrics(nil)

// countError classifies err into the error-class counters. nil is a
// no-op.
func (m *Metrics) countError(err error) {
	switch {
	case err == nil:
	case IsRemote(err):
		m.ErrRemote.Inc()
	case IsTimeout(err):
		m.ErrTimeout.Inc()
	default:
		m.ErrConn.Inc()
	}
}
