package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfsqos/internal/wire"
)

// testServer is a minimal wire-speaking peer: one goroutine per accepted
// connection, every frame answered by handle. It counts accepts so pool
// reuse is observable.
type testServer struct {
	ln      net.Listener
	accepts atomic.Int32
	handle  func(wc *wire.Conn, msg wire.Msg) error

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

func newTestServer(t *testing.T, addr string, handle func(wc *wire.Conn, msg wire.Msg) error) *testServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &testServer{ln: ln, handle: handle, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.accepts.Add(1)
			s.mu.Lock()
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go func() {
				defer conn.Close()
				wc := wire.NewConn(conn)
				for {
					msg, err := wc.Read()
					if err != nil {
						return
					}
					if err := s.handle(wc, msg); err != nil {
						return
					}
				}
			}()
		}
	}()
	return s
}

func (s *testServer) addr() string { return s.ln.Addr().String() }

func (s *testServer) close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-s.done
}

// ackHandler answers every frame with an Ack.
func ackHandler(wc *wire.Conn, _ wire.Msg) error {
	return wc.Write(wire.KindAck, wire.Ack{})
}

func TestPoolReusesOneConnection(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", ackHandler)
	defer s.close()
	c := NewClient(s.addr(), Config{PoolSize: 2})
	defer c.Close()

	for i := 0; i < 5; i++ {
		if _, err := c.Call(context.Background(), wire.KindRMs, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("5 sequential calls dialed %d connections, want 1", got)
	}
	if c.IdleConns() != 1 {
		t.Fatalf("idle pool has %d conns, want 1", c.IdleConns())
	}
}

func TestConcurrentCallsFanAcrossConnections(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", func(wc *wire.Conn, _ wire.Msg) error {
		time.Sleep(100 * time.Millisecond)
		return wc.Write(wire.KindAck, wire.Ack{})
	})
	defer s.close()
	c := NewClient(s.addr(), Config{PoolSize: 4})
	defer c.Close()

	const calls = 4
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Call(context.Background(), wire.KindRMs, nil)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Serial on one mutex-guarded conn this would take ≥ 400ms.
	if elapsed > 300*time.Millisecond {
		t.Fatalf("4 concurrent 100ms calls took %v; pool did not parallelize", elapsed)
	}
	if got := s.accepts.Load(); got < 2 {
		t.Fatalf("concurrent calls used %d connections, want ≥ 2", got)
	}
	// Returned conns respect the pool bound.
	if c.IdleConns() > 4 {
		t.Fatalf("idle pool has %d conns, cap is 4", c.IdleConns())
	}
}

func TestRemoteErrorIsTypedAndKeepsConnection(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", func(wc *wire.Conn, _ wire.Msg) error {
		return wc.Write(wire.KindError, wire.Error{Text: "boom"})
	})
	defer s.close()
	c := NewClient(s.addr(), Config{})
	defer c.Close()

	_, err := c.Call(context.Background(), wire.KindRMs, nil)
	var re RemoteError
	if !errors.As(err, &re) || re.Text != "boom" {
		t.Fatalf("err = %v, want RemoteError{boom}", err)
	}
	if !IsRemote(err) {
		t.Fatalf("IsRemote(%v) = false", err)
	}
	if IsTimeout(err) {
		t.Fatalf("remote error classified as timeout")
	}
	// The connection served the error and stays pooled.
	if _, err := c.Call(context.Background(), wire.KindRMs, nil); !IsRemote(err) {
		t.Fatalf("second call: %v", err)
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("remote errors burned %d connections, want 1", got)
	}
}

func TestCallTimeoutIsTyped(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", func(wc *wire.Conn, _ wire.Msg) error {
		time.Sleep(2 * time.Second) // stall past the call deadline
		return wc.Write(wire.KindAck, wire.Ack{})
	})
	defer s.close()
	c := NewClient(s.addr(), Config{CallTimeout: 100 * time.Millisecond})
	defer c.Close()

	start := time.Now()
	_, err := c.Call(context.Background(), wire.KindRMs, nil)
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *TimeoutError", err, err)
	}
	if !IsTimeout(err) || IsRemote(err) {
		t.Fatalf("taxonomy: IsTimeout=%v IsRemote=%v for %v", IsTimeout(err), IsRemote(err), err)
	}
	if elapsed > time.Second {
		t.Fatalf("timed-out call returned after %v, deadline was 100ms", elapsed)
	}
	// The desynchronized connection must not be reused: the next call
	// dials fresh.
	s2 := s.accepts.Load()
	if c.IdleConns() != 0 {
		t.Fatalf("timed-out conn returned to pool (%d idle)", c.IdleConns())
	}
	if _, err := c.Call(context.Background(), wire.KindRMs, nil); err == nil {
		t.Fatal("second call against stalling server succeeded unexpectedly")
	}
	if s.accepts.Load() == s2 {
		t.Fatal("second call reused the timed-out connection")
	}
}

func TestDialFailureTypedBackoffAndRecovery(t *testing.T) {
	// Reserve an address, then close the listener so dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr, Config{
		DialTimeout: 200 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
	})
	defer c.Close()

	for i := 1; i <= 3; i++ {
		_, err := c.Call(context.Background(), wire.KindRMs, nil)
		var ce *ConnError
		if !errors.As(err, &ce) {
			t.Fatalf("dial failure %d: err = %v (%T), want *ConnError", i, err, err)
		}
		if IsRemote(err) {
			t.Fatalf("dial failure classified remote: %v", err)
		}
		if got := c.FailureCount(); got != i {
			t.Fatalf("after %d failures FailureCount = %d", i, got)
		}
	}

	// Peer comes back on the same address: the next call waits out the
	// backoff gate and succeeds within the budget (≤ BackoffMax + slack).
	s := newTestServer(t, addr, ackHandler)
	defer s.close()
	start := time.Now()
	if _, err := c.Call(context.Background(), wire.KindRMs, nil); err != nil {
		t.Fatalf("recovery call failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("recovery took %v, backoff budget is ~120ms", elapsed)
	}
	if c.FailureCount() != 0 {
		t.Fatalf("successful dial did not reset FailureCount (%d)", c.FailureCount())
	}
}

func TestHealthCheckDiscardsDeadPooledConn(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", ackHandler)
	addr := s.addr()
	c := NewClient(addr, Config{})
	defer c.Close()
	if _, err := c.Call(context.Background(), wire.KindRMs, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the server (and the pooled conn's far end), restart in place.
	s.close()
	s2 := newTestServer(t, addr, ackHandler)
	defer s2.close()

	// The checkout health check must discard the dead conn and redial.
	if _, err := c.Call(context.Background(), wire.KindRMs, nil); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if got := s2.accepts.Load(); got != 1 {
		t.Fatalf("restarted server saw %d accepts, want 1", got)
	}
}

func TestClosedClientRejectsCalls(t *testing.T) {
	s := newTestServer(t, "127.0.0.1:0", ackHandler)
	defer s.close()
	c, err := Dial(s.addr(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	_, err = c.Call(context.Background(), wire.KindRMs, nil)
	var ce *ConnError
	if !errors.As(err, &ce) || !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed client: %v", err)
	}
}

func TestDialFailsFastOnUnreachablePeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Config{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("Dial to dead address succeeded")
	}
}

func TestClassifyPassthrough(t *testing.T) {
	if Classify("op", "peer", nil) != nil {
		t.Fatal("nil reclassified")
	}
	re := RemoteError{Text: "x"}
	if got := Classify("op", "peer", re); got != error(re) {
		t.Fatalf("remote error rewrapped: %v", got)
	}
	te := &TimeoutError{Op: "call", Peer: "p", Err: context.DeadlineExceeded}
	if got := Classify("op", "peer", te); got != error(te) {
		t.Fatalf("timeout rewrapped: %v", got)
	}
	if !IsTimeout(Classify("op", "peer", context.DeadlineExceeded)) {
		t.Fatal("DeadlineExceeded not a timeout")
	}
	var ce *ConnError
	if !errors.As(Classify("op", "peer", errors.New("conn reset")), &ce) {
		t.Fatal("generic error not a ConnError")
	}
}
