package transport

import (
	"context"
	"flag"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/wire"
)

// Config tunes a transport client. The zero value means "all defaults";
// see DefaultConfig for the values.
type Config struct {
	// DialTimeout bounds one TCP connection attempt.
	DialTimeout time.Duration
	// CallTimeout bounds one RPC round trip (write + reply read),
	// including any dial it triggers. Zero disables the bound. Streams
	// opened through Get are NOT subject to it — the data plane is paced
	// by the disk throttle, not the control-plane deadline.
	CallTimeout time.Duration
	// PoolSize bounds the idle connections kept per peer. Checkouts
	// beyond the pool dial extra connections lazily; returning them past
	// the bound closes them.
	PoolSize int
	// BackoffBase is the redial delay after the first consecutive dial
	// failure; it doubles per failure up to BackoffMax, with ±50% jitter.
	BackoffBase time.Duration
	// BackoffMax caps the redial delay.
	BackoffMax time.Duration
	// Metrics receives the transport's telemetry (dials, pool churn,
	// call latency, error classes). Nil uses a process-wide no-op sink,
	// so instrumentation costs a few uncollected atomic ops.
	Metrics *Metrics
	// Tenant stamps every connection this client dials with a tenant
	// identity: frames written on them carry the tenant slot (wire codec
	// tag 3), so servers can attribute control calls and data streams to
	// the tenant without any per-message field. Zero (the default) leaves
	// connections untenanted.
	Tenant ids.TenantID
}

// DefaultConfig returns the stock tuning: 2s dials, 5s calls, 4 pooled
// connections, 25ms→2s backoff.
func DefaultConfig() Config {
	return Config{
		DialTimeout: 2 * time.Second,
		CallTimeout: 5 * time.Second,
		PoolSize:    4,
		BackoffBase: 25 * time.Millisecond,
		BackoffMax:  2 * time.Second,
	}
}

// withDefaults fills unset fields from DefaultConfig. A negative
// CallTimeout explicitly disables the call bound.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DialTimeout == 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = d.CallTimeout
	}
	if c.CallTimeout < 0 {
		c.CallTimeout = 0
	}
	if c.PoolSize <= 0 {
		c.PoolSize = d.PoolSize
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = d.BackoffMax
	}
	if c.Metrics == nil {
		c.Metrics = nopMetrics
	}
	return c
}

// RegisterFlags binds the standard transport tuning flags on fs
// (-dial-timeout, -call-timeout, -pool-size) and returns the Config they
// populate, pre-filled with defaults. Call flag.Parse before using it.
func RegisterFlags(fs *flag.FlagSet) *Config {
	cfg := DefaultConfig()
	fs.DurationVar(&cfg.DialTimeout, "dial-timeout", cfg.DialTimeout, "budget for one TCP connection attempt")
	fs.DurationVar(&cfg.CallTimeout, "call-timeout", cfg.CallTimeout, "deadline for one control-plane RPC round trip (0 disables)")
	fs.IntVar(&cfg.PoolSize, "pool-size", cfg.PoolSize, "max pooled connections kept per peer")
	return &cfg
}

// Conn is one checked-out pooled connection: the raw socket plus its wire
// codec. Holders use W for framed I/O and must hand the Conn back with
// Client.Put when done.
type Conn struct {
	nc net.Conn
	W  *wire.Conn
}

// healthy probes a pooled connection at checkout with a non-blocking
// MSG_PEEK: a closed or reset peer yields EOF/error (unhealthy), a live
// idle one yields EAGAIN (healthy). Readable bytes on an idle
// request/response connection mean protocol desync, which also counts as
// unhealthy. No byte is consumed and no deadline is armed, so the check
// costs one syscall and zero latency.
func (pc *Conn) healthy() bool {
	sc, ok := pc.nc.(syscall.Conn)
	if !ok {
		return true // no raw access (tests with pipes): assume alive
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := false
	rerr := raw.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, _, serr := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case n > 0:
			alive = false // unsolicited bytes: protocol desync
		case serr == syscall.EAGAIN || serr == syscall.EWOULDBLOCK:
			alive = true // nothing to read: idle and open
		default:
			alive = false // EOF (n==0, serr==nil) or a real error
		}
		return true // never block waiting for readability
	})
	return rerr == nil && alive
}

// Client is a pooled, deadline-aware RPC client to one peer address. It is
// safe for concurrent use: independent calls proceed on independent
// connections instead of serializing behind one mutex.
type Client struct {
	addr string
	cfg  Config

	mu      sync.Mutex
	idle    []*Conn
	closed  bool
	fails   int       // consecutive dial failures
	nextTry time.Time // backoff gate for the next dial
}

// NewClient builds a client without touching the network; the first call
// dials lazily. cfg zero-fields take defaults.
func NewClient(addr string, cfg Config) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// Dial builds a client and eagerly verifies connectivity by dialing (and
// pooling) one connection, so an unreachable peer fails fast at
// construction like a plain net.Dial would.
func Dial(addr string, cfg Config) (*Client, error) {
	c := NewClient(addr, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.DialTimeout)
	defer cancel()
	conn, err := c.Get(ctx)
	if err != nil {
		return nil, err
	}
	c.Put(conn, nil)
	return c, nil
}

// Addr returns the peer address.
func (c *Client) Addr() string { return c.addr }

// Config returns the effective (default-filled) configuration.
func (c *Client) Config() Config { return c.cfg }

// FailureCount returns the consecutive dial-failure count (diagnostics
// and backoff tests).
func (c *Client) FailureCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails
}

// Get checks a connection out of the pool, health-checking pooled ones
// and dialing a fresh one (backoff-gated) when none survive. The caller
// must return it with Put. Get respects ctx for both the backoff wait and
// the dial itself.
func (c *Client) Get(ctx context.Context) (*Conn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, &ConnError{Op: "checkout", Peer: c.addr, Err: ErrClosed}
		}
		var pc *Conn
		if n := len(c.idle); n > 0 {
			pc = c.idle[n-1]
			c.idle = c.idle[:n-1]
		}
		c.mu.Unlock()
		if pc == nil {
			return c.dial(ctx)
		}
		c.cfg.Metrics.PoolIdle.Dec()
		if pc.healthy() {
			c.cfg.Metrics.CheckoutsPool.Inc()
			return pc, nil
		}
		c.cfg.Metrics.DiscardUnhealthy.Inc()
		pc.nc.Close() // stale pooled conn: discard and try the next
	}
}

// Put returns a checked-out connection. err is the outcome of whatever
// the holder did with it: nil or a RemoteError keeps the connection
// pooled; any transport-level failure (or pool overflow) closes it.
func (c *Client) Put(conn *Conn, err error) {
	if conn == nil {
		return
	}
	if err != nil && !IsRemote(err) {
		c.cfg.Metrics.DiscardError.Inc()
		conn.nc.Close()
		return
	}
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.cfg.PoolSize {
		closed := c.closed
		c.mu.Unlock()
		if closed {
			c.cfg.Metrics.DiscardClosed.Inc()
		} else {
			c.cfg.Metrics.DiscardOverflow.Inc()
		}
		conn.nc.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
	c.cfg.Metrics.PoolIdle.Inc()
}

// dial opens a fresh connection, honoring the exponential-backoff gate
// left by previous failures: if a redial is not due yet, it waits out the
// remainder (or the context, whichever ends first) instead of hammering a
// down peer.
func (c *Client) dial(ctx context.Context) (*Conn, error) {
	c.mu.Lock()
	wait := time.Until(c.nextTry)
	c.mu.Unlock()
	if wait > 0 {
		c.cfg.Metrics.RedialWaits.Inc()
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, Classify("dial", c.addr, ctx.Err())
		case <-t.C:
		}
	}
	dctx := ctx
	if c.cfg.DialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.cfg.DialTimeout)
		defer cancel()
	}
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		c.cfg.Metrics.DialsFailed.Inc()
		c.mu.Lock()
		c.fails++
		c.nextTry = time.Now().Add(c.backoffLocked())
		c.mu.Unlock()
		return nil, Classify("dial", c.addr, err)
	}
	c.cfg.Metrics.DialsOK.Inc()
	c.mu.Lock()
	c.fails = 0
	c.nextTry = time.Time{}
	closed := c.closed
	c.mu.Unlock()
	if closed {
		nc.Close()
		return nil, &ConnError{Op: "dial", Peer: c.addr, Err: ErrClosed}
	}
	c.cfg.Metrics.CheckoutsDial.Inc()
	w := wire.NewConn(nc)
	w.SetTenant(c.cfg.Tenant)
	return &Conn{nc: nc, W: w}, nil
}

// backoffLocked computes the next redial delay: BackoffBase doubled per
// consecutive failure, capped at BackoffMax, jittered ±50% so a fleet of
// clients does not probe a recovering peer in lockstep. Caller holds c.mu.
func (c *Client) backoffLocked() time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < c.fails && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	jitter := 0.5 + rand.Float64() // in [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// Call performs one RPC round trip on a pooled connection, bounded by
// CallTimeout (and any tighter ctx deadline). Errors come back classified:
// RemoteError, *TimeoutError or *ConnError. The connection returns to the
// pool unless the call failed at the transport level.
func (c *Client) Call(ctx context.Context, kind wire.Kind, payload any) (wire.Msg, error) {
	if c.cfg.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
	}
	start := time.Now()
	conn, err := c.Get(ctx)
	if err != nil {
		c.cfg.Metrics.CallLatency.Observe(time.Since(start).Seconds())
		c.cfg.Metrics.countError(err)
		return wire.Msg{}, err
	}
	msg, err := conn.W.CallContext(ctx, kind, payload)
	err = Classify("call "+kind.String(), c.addr, err)
	c.Put(conn, err)
	c.cfg.Metrics.CallLatency.Observe(time.Since(start).Seconds())
	c.cfg.Metrics.countError(err)
	return msg, err
}

// IdleConns returns the current pooled-connection count (tests).
func (c *Client) IdleConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle)
}

// Close closes every pooled connection and rejects future checkouts.
// Connections currently checked out are closed by their holders' Put.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	if n := len(idle); n > 0 {
		c.cfg.Metrics.PoolIdle.Add(-float64(n))
		c.cfg.Metrics.DiscardClosed.Add(uint64(n))
	}
	for _, pc := range idle {
		pc.nc.Close()
	}
	return nil
}
