// Package host models the physical layer of the paper's testbed: "25
// Xen-based VMs, i.e. 16 RMs, 1 MM and 8 DFSC, distributed on 5 physical
// machines, each of which has ... a 1TB local disk, which can yield a total
// of 128Mbps, i.e. 16MB/s, of sustained disk bandwidth to be dispatched to
// VMs located on the local disk" (§VI-A).
//
// A Host owns one physical disk's sustained bandwidth and dispatches
// slices of it to the VMs it carries — the role cgroups-blkio plays on the
// real machines. The package validates the dispatch (no host may promise
// more than its disk sustains), produces the blkio throttle plan for live
// deployments, and reconstructs the paper's exact 5-host layout.
package host

import (
	"fmt"
	"sort"

	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// VMKind labels what runs inside a VM.
type VMKind int

const (
	// VMResourceManager carries one RM and a bandwidth slice.
	VMResourceManager VMKind = iota
	// VMMetadataManager carries the MM (no disk-bandwidth slice: the MM
	// serves metadata from memory).
	VMMetadataManager
	// VMClient carries one DFSC.
	VMClient
)

// String implements fmt.Stringer.
func (k VMKind) String() string {
	switch k {
	case VMResourceManager:
		return "RM"
	case VMMetadataManager:
		return "MM"
	case VMClient:
		return "DFSC"
	default:
		return fmt.Sprintf("VMKind(%d)", int(k))
	}
}

// VM is one virtual machine placed on a host.
type VM struct {
	Kind VMKind
	// RM is set for VMResourceManager; DFSC for VMClient.
	RM   ids.RMID
	DFSC ids.DFSCID
	// DiskShare is the sustained disk bandwidth dispatched to this VM
	// (zero for MM/DFSC VMs, which do no local disk I/O).
	DiskShare units.BytesPerSec
}

// Name renders a stable identifier ("host2/RM9").
func (v VM) Name() string {
	switch v.Kind {
	case VMResourceManager:
		return v.RM.String()
	case VMClient:
		return v.DFSC.String()
	default:
		return "MM"
	}
}

// Host is one physical machine.
type Host struct {
	// ID numbers hosts from 1, like the paper's five machines.
	ID int
	// DiskBandwidth is the disk's total sustained bandwidth
	// (paper: 128 Mbit/s = 16 MB/s per machine).
	DiskBandwidth units.BytesPerSec
	// VMs are the guests placed on this host.
	VMs []VM
}

// Dispatched returns the summed disk shares of the host's VMs.
func (h *Host) Dispatched() units.BytesPerSec {
	var total units.BytesPerSec
	for _, vm := range h.VMs {
		total += vm.DiskShare
	}
	return total
}

// Validate checks the host's dispatch: every share positive where
// required, and the total within the physical disk's bandwidth.
func (h *Host) Validate() error {
	if h.DiskBandwidth <= 0 {
		return fmt.Errorf("host%d: non-positive disk bandwidth", h.ID)
	}
	for _, vm := range h.VMs {
		switch vm.Kind {
		case VMResourceManager:
			if vm.DiskShare <= 0 {
				return fmt.Errorf("host%d: %s has no disk share", h.ID, vm.Name())
			}
			if !vm.RM.Valid() {
				return fmt.Errorf("host%d: RM VM with invalid id", h.ID)
			}
		case VMMetadataManager, VMClient:
			if vm.DiskShare != 0 {
				return fmt.Errorf("host%d: %s VMs take no disk share", h.ID, vm.Kind)
			}
		default:
			return fmt.Errorf("host%d: unknown VM kind %d", h.ID, vm.Kind)
		}
	}
	if d := h.Dispatched(); float64(d) > float64(h.DiskBandwidth)+1e-9 {
		return fmt.Errorf("host%d: dispatched %v exceeds disk bandwidth %v", h.ID, d, h.DiskBandwidth)
	}
	return nil
}

// Layout is a full physical deployment.
type Layout struct {
	Hosts []Host
}

// Validate checks every host plus cross-host invariants: each RM and DFSC
// placed exactly once, exactly one MM.
func (l *Layout) Validate() error {
	seenRM := make(map[ids.RMID]int)
	seenDFSC := make(map[ids.DFSCID]int)
	mmCount := 0
	for i := range l.Hosts {
		h := &l.Hosts[i]
		if err := h.Validate(); err != nil {
			return err
		}
		for _, vm := range h.VMs {
			switch vm.Kind {
			case VMResourceManager:
				if prev, dup := seenRM[vm.RM]; dup {
					return fmt.Errorf("%v placed on host%d and host%d", vm.RM, prev, h.ID)
				}
				seenRM[vm.RM] = h.ID
			case VMClient:
				if prev, dup := seenDFSC[vm.DFSC]; dup {
					return fmt.Errorf("%v placed on host%d and host%d", vm.DFSC, prev, h.ID)
				}
				seenDFSC[vm.DFSC] = h.ID
			case VMMetadataManager:
				mmCount++
			}
		}
	}
	if mmCount != 1 {
		return fmt.Errorf("host: layout has %d MMs, want exactly 1", mmCount)
	}
	return nil
}

// RMCapacities extracts the per-RM bandwidth vector (index i → RM(i+1)),
// the form cluster.Config consumes. Missing RM ids are an error.
func (l *Layout) RMCapacities() ([]units.BytesPerSec, error) {
	shares := make(map[ids.RMID]units.BytesPerSec)
	var maxID ids.RMID
	for _, h := range l.Hosts {
		for _, vm := range h.VMs {
			if vm.Kind == VMResourceManager {
				shares[vm.RM] = vm.DiskShare
				if vm.RM > maxID {
					maxID = vm.RM
				}
			}
		}
	}
	out := make([]units.BytesPerSec, maxID)
	for i := ids.RMID(1); i <= maxID; i++ {
		s, ok := shares[i]
		if !ok {
			return nil, fmt.Errorf("host: no VM carries %v", i)
		}
		out[i-1] = s
	}
	return out, nil
}

// HostOf returns the host carrying the given RM, or 0.
func (l *Layout) HostOf(rm ids.RMID) int {
	for _, h := range l.Hosts {
		for _, vm := range h.VMs {
			if vm.Kind == VMResourceManager && vm.RM == rm {
				return h.ID
			}
		}
	}
	return 0
}

// ThrottlePlan is one blkio group binding for a live deployment: the
// group name and the byte-rate limits to program, exactly what the paper
// writes into blkio.throttle.read_bps_device for each VM's loop device.
type ThrottlePlan struct {
	Host     int
	Group    string
	ReadBps  units.BytesPerSec
	WriteBps units.BytesPerSec
}

// ThrottlePlans renders the blkio configuration for every RM VM, sorted by
// host then group name.
func (l *Layout) ThrottlePlans() []ThrottlePlan {
	var out []ThrottlePlan
	for _, h := range l.Hosts {
		for _, vm := range h.VMs {
			if vm.Kind != VMResourceManager {
				continue
			}
			out = append(out, ThrottlePlan{
				Host:     h.ID,
				Group:    fmt.Sprintf("vm-%s", vm.Name()),
				ReadBps:  vm.DiskShare,
				WriteBps: vm.DiskShare,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// PaperLayout reconstructs the evaluation's deployment: five machines with
// 128 Mbit/s disks carrying 16 RMs (two extra-large at a full 128 Mbit/s,
// four at 19, ten at 18), one MM and eight DFSCs.
//
// The extra-large RMs RM1 and RM9 each monopolize a host's disk, so they
// get their own machines; the remaining 14 RMs split across the other
// three hosts within each host's 128 Mbit/s budget. The MM and the eight
// clients ride along without disk shares.
func PaperLayout() *Layout {
	mk := func(id int, rms []ids.RMID, shares []float64, extra ...VM) Host {
		h := Host{ID: id, DiskBandwidth: units.Mbps(128)}
		for i, rm := range rms {
			h.VMs = append(h.VMs, VM{Kind: VMResourceManager, RM: rm, DiskShare: units.Mbps(shares[i])})
		}
		h.VMs = append(h.VMs, extra...)
		return h
	}
	dfsc := func(id ids.DFSCID) VM { return VM{Kind: VMClient, DFSC: id} }
	return &Layout{Hosts: []Host{
		// Host 1: RM1 takes the whole disk; the MM and two clients ride along.
		mk(1, []ids.RMID{1}, []float64{128},
			VM{Kind: VMMetadataManager}, dfsc(0), dfsc(1)),
		// Host 2: RM9 takes the whole disk; two clients ride along.
		mk(2, []ids.RMID{9}, []float64{128}, dfsc(2), dfsc(3)),
		// Host 3: RM2, RM3 (19 each) + RM4-6 (18 each) = 92 of 128.
		mk(3, []ids.RMID{2, 3, 4, 5, 6}, []float64{19, 19, 18, 18, 18}, dfsc(4)),
		// Host 4: RM10, RM11 (19 each) + RM7, RM8, RM12 (18 each) = 92.
		mk(4, []ids.RMID{10, 11, 7, 8, 12}, []float64{19, 19, 18, 18, 18}, dfsc(5)),
		// Host 5: RM13-16 (18 each) = 72 of 128.
		mk(5, []ids.RMID{13, 14, 15, 16}, []float64{18, 18, 18, 18}, dfsc(6), dfsc(7)),
	}}
}
