package host

import (
	"testing"

	"dfsqos/internal/cluster"
	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

func TestPaperLayoutValid(t *testing.T) {
	l := PaperLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Hosts) != 5 {
		t.Fatalf("%d hosts, want the paper's 5", len(l.Hosts))
	}
	// Count VMs: 16 RMs + 1 MM + 8 DFSCs = 25.
	total := 0
	for _, h := range l.Hosts {
		total += len(h.VMs)
	}
	if total != 25 {
		t.Fatalf("%d VMs, want 25", total)
	}
}

func TestPaperLayoutMatchesClusterTopology(t *testing.T) {
	caps, err := PaperLayout().RMCapacities()
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.PaperTopology()
	if len(caps) != len(want) {
		t.Fatalf("%d RM capacities, want %d", len(caps), len(want))
	}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("RM%d capacity %v, want %v", i+1, caps[i], want[i])
		}
	}
}

func TestHostDispatchBound(t *testing.T) {
	h := Host{
		ID:            1,
		DiskBandwidth: units.Mbps(128),
		VMs: []VM{
			{Kind: VMResourceManager, RM: 1, DiskShare: units.Mbps(100)},
			{Kind: VMResourceManager, RM: 2, DiskShare: units.Mbps(29)},
		},
	}
	if err := h.Validate(); err == nil {
		t.Fatal("over-dispatched host accepted")
	}
	h.VMs[1].DiskShare = units.Mbps(28)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.Dispatched(); got != units.Mbps(128) {
		t.Fatalf("Dispatched = %v", got)
	}
}

func TestHostValidation(t *testing.T) {
	bad := []Host{
		{ID: 1, DiskBandwidth: 0},
		{ID: 1, DiskBandwidth: units.Mbps(10), VMs: []VM{{Kind: VMResourceManager, RM: 1, DiskShare: 0}}},
		{ID: 1, DiskBandwidth: units.Mbps(10), VMs: []VM{{Kind: VMResourceManager, RM: -1, DiskShare: units.Mbps(1)}}},
		{ID: 1, DiskBandwidth: units.Mbps(10), VMs: []VM{{Kind: VMClient, DFSC: 0, DiskShare: units.Mbps(1)}}},
		{ID: 1, DiskBandwidth: units.Mbps(10), VMs: []VM{{Kind: VMKind(9)}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: invalid host accepted", i)
		}
	}
}

func TestLayoutCrossHostInvariants(t *testing.T) {
	// Duplicate RM placement.
	l := &Layout{Hosts: []Host{
		{ID: 1, DiskBandwidth: units.Mbps(50), VMs: []VM{
			{Kind: VMResourceManager, RM: 1, DiskShare: units.Mbps(10)},
			{Kind: VMMetadataManager},
		}},
		{ID: 2, DiskBandwidth: units.Mbps(50), VMs: []VM{
			{Kind: VMResourceManager, RM: 1, DiskShare: units.Mbps(10)},
		}},
	}}
	if err := l.Validate(); err == nil {
		t.Fatal("duplicate RM placement accepted")
	}
	// No MM.
	l = &Layout{Hosts: []Host{
		{ID: 1, DiskBandwidth: units.Mbps(50), VMs: []VM{
			{Kind: VMResourceManager, RM: 1, DiskShare: units.Mbps(10)},
		}},
	}}
	if err := l.Validate(); err == nil {
		t.Fatal("MM-less layout accepted")
	}
	// Two MMs.
	l = &Layout{Hosts: []Host{
		{ID: 1, DiskBandwidth: units.Mbps(50), VMs: []VM{
			{Kind: VMMetadataManager}, {Kind: VMMetadataManager},
		}},
	}}
	if err := l.Validate(); err == nil {
		t.Fatal("double-MM layout accepted")
	}
}

func TestRMCapacitiesDetectsGaps(t *testing.T) {
	l := &Layout{Hosts: []Host{
		{ID: 1, DiskBandwidth: units.Mbps(50), VMs: []VM{
			{Kind: VMResourceManager, RM: 1, DiskShare: units.Mbps(10)},
			{Kind: VMResourceManager, RM: 3, DiskShare: units.Mbps(10)}, // RM2 missing
			{Kind: VMMetadataManager},
		}},
	}}
	if _, err := l.RMCapacities(); err == nil {
		t.Fatal("gap in RM ids accepted")
	}
}

func TestHostOf(t *testing.T) {
	l := PaperLayout()
	if got := l.HostOf(1); got != 1 {
		t.Fatalf("HostOf(RM1) = %d", got)
	}
	if got := l.HostOf(9); got != 2 {
		t.Fatalf("HostOf(RM9) = %d", got)
	}
	if got := l.HostOf(14); got != 5 {
		t.Fatalf("HostOf(RM14) = %d", got)
	}
	if got := l.HostOf(ids.RMID(99)); got != 0 {
		t.Fatalf("HostOf(unplaced) = %d", got)
	}
}

func TestThrottlePlans(t *testing.T) {
	plans := PaperLayout().ThrottlePlans()
	if len(plans) != 16 {
		t.Fatalf("%d throttle plans, want 16 RM VMs", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Host < plans[i-1].Host {
			t.Fatal("plans not sorted by host")
		}
	}
	for _, p := range plans {
		if p.ReadBps <= 0 || p.ReadBps != p.WriteBps {
			t.Fatalf("plan %+v has bad limits", p)
		}
		if p.Group == "" {
			t.Fatal("plan without group name")
		}
	}
}

func TestVMKindStrings(t *testing.T) {
	if VMResourceManager.String() != "RM" || VMMetadataManager.String() != "MM" || VMClient.String() != "DFSC" {
		t.Fatal("kind strings wrong")
	}
	vm := VM{Kind: VMResourceManager, RM: 4}
	if vm.Name() != "RM4" {
		t.Fatal("VM name wrong")
	}
}

// TestLayoutDrivesCluster runs a simulation directly from the physical
// layout, confirming the host model composes with the cluster harness.
func TestLayoutDrivesCluster(t *testing.T) {
	caps, err := PaperLayout().RMCapacities()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.RMCapacities = caps
	cfg.Workload.NumUsers = 64
	cfg.Workload.HorizonSec = 600
	cfg.Catalog.NumFiles = 100
	res, err := cluster.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRM) != 16 {
		t.Fatalf("%d RMs", len(res.PerRM))
	}
}
