// K-wide striped reads: one segment scheduler generalizing the failover
// reader. The file is split into addressable byte-range segments, the
// negotiation admits the top-K bidders simultaneously (one reservation
// per lane, reusing the existing CFP fan-out), and lanes pull contiguous
// ranges concurrently — each verified by a per-range checksum from the
// serving RM — while the committer folds the completed buffers into the
// writer in offset order, maintaining one whole-file FNV-1a sum (FNV is
// a serial recurrence, so segment sums cannot be combined out of order:
// the committer re-folds the bytes as it writes them).
//
// Failover is the degenerate behavior the old reader already had: a lane
// dying requeues its unfinished range for the surviving lanes and
// re-negotiates a replacement under the shared MaxFailovers budget.
// Slow-replica hedging falls out of the same machinery: a lane with no
// unassigned work re-issues the oldest lagging in-flight range to its
// own replica, first-writer-wins, so one slow RM bounds tail latency
// instead of the whole read.
package dfsc

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
	"dfsqos/internal/wire"
)

// RangeStreamer is the data plane a striped read drives: StreamAt for
// the sequential fallback plus bounded byte-range streams. The live
// Directory implements it (RMClient.ReadRange); tests substitute fakes.
// StreamRange must deliver exactly [offset, offset+length) into w
// (clamped at EOF by the server), verifying the range checksum when sum
// is seeded with wire.ChecksumBasis, and report the bytes delivered even
// on error.
type RangeStreamer interface {
	Streamer
	StreamRange(ctx context.Context, rm ids.RMID, file ids.FileID, req ids.RequestID, offset, length int64, w io.Writer, sum *uint64) (int64, error)
}

// StripeConfig tunes ReadStriped.
type StripeConfig struct {
	// Width is the number of replica lanes to admit (the K in a K-wide
	// stripe). Values ≤ 1 — or a Streamer without ranged reads — degrade
	// to the sequential ReadWithFailover path, which is behaviorally
	// identical to the pre-stripe reader. Fewer eligible replicas than
	// Width degrades the stripe to the width that exists.
	Width int
	// SegmentBytes is the stripe granularity (default 1 MiB): lanes pull
	// ranges of this size, so smaller segments rebalance faster around a
	// slow replica at the cost of more range requests.
	SegmentBytes int64
	// HedgeAfter, when positive, arms slow-replica hedging: an idle lane
	// re-issues an in-flight range that has been running longer than this
	// against its own replica, first-writer-wins. Zero disables hedging.
	HedgeAfter time.Duration
	// MaxFailovers bounds lane re-admissions across the whole read, the
	// same budget ReadWithFailover spends on sequential failovers (0: a
	// dead lane is not replaced; negative is treated as 0). Surviving
	// lanes keep the read alive either way — the read fails only when no
	// lane remains and segments are still missing.
	MaxFailovers int
	// Backoff is the base delay before a lane re-negotiation, jittered
	// like ReadWithFailover's. Zero defaults to 50ms.
	Backoff time.Duration
}

// stripeSeg tracks one in-flight segment.
type stripeSeg struct {
	rm     ids.RMID  // lane the segment is assigned to
	start  time.Time // assignment time, the hedge-eligibility clock
	hedged bool      // a hedge copy is (or was) racing the original
}

// stripeDone is a completed segment buffer awaiting commit.
type stripeDone struct {
	data   []byte
	rm     ids.RMID
	hedged bool // the committed copy came from the hedge
}

// stripeRun is the shared scheduler state: one mutex/cond pair guards
// the segment board (unassigned cursor, requeue list, in-flight and
// completed maps) plus the result accumulators lanes update.
type stripeRun struct {
	mu   sync.Mutex
	cond *sync.Cond

	size     int64
	segBytes int64
	numSegs  int
	window   int // commit-window width in segments, bounds buffering

	next     int   // lowest never-assigned segment index
	requeue  []int // segments returned by dead lanes, kept sorted
	inflight map[int]*stripeSeg
	done     map[int]*stripeDone
	commit   int // next segment index the committer needs

	lanes     int // live lane goroutines
	failovers int // shared MaxFailovers budget spent
	exclude   map[ids.RMID]bool
	err       error // terminal: no lane can finish the read

	res ReadResult // RMs/Hedges accumulate here under mu
}

// segRange returns the byte range of segment idx.
func (st *stripeRun) segRange(idx int) (off, length int64) {
	off = int64(idx) * st.segBytes
	length = st.segBytes
	if off+length > st.size {
		length = st.size - off
	}
	return off, length
}

// ReadStriped reads file through s as a K-wide stripe (see StripeConfig),
// writing the bytes to w in offset order and returning the per-segment
// attribution, failover/hedge counts, and the whole-file checksum. With
// Width ≤ 1, or when s cannot serve ranged reads, it is exactly
// ReadWithFailover — the sequential reader is the 1-wide stripe.
func (c *Client) ReadStriped(s Streamer, file ids.FileID, w io.Writer, cfg StripeConfig) (ReadResult, error) {
	rs, ranged := s.(RangeStreamer)
	if cfg.Width <= 1 || !ranged {
		return c.ReadWithFailover(s, file, w, FailoverConfig{MaxFailovers: cfg.MaxFailovers, Backoff: cfg.Backoff})
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 1 << 20
	}
	if cfg.MaxFailovers < 0 {
		cfg.MaxFailovers = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	c.met.StripeReads.Inc()

	size := int64(c.cat.File(file).Size)
	if size == 0 {
		// Nothing to stream, nothing to reserve: an empty file is a
		// successful read of zero segments with the basis checksum.
		return ReadResult{Checksum: wire.ChecksumBasis}, nil
	}

	st := &stripeRun{
		size:     size,
		segBytes: cfg.SegmentBytes,
		numSegs:  int((size + cfg.SegmentBytes - 1) / cfg.SegmentBytes),
		inflight: make(map[int]*stripeSeg),
		done:     make(map[int]*stripeDone),
		exclude:  make(map[ids.RMID]bool),
	}
	st.cond = sync.NewCond(&st.mu)
	st.window = 2*cfg.Width + 2

	// One root span covers the whole stripe; every lane's "dfsc.segment"
	// children hang off it, so /traces shows all lanes of one read as one
	// tree — the same shape a failover read already has, wider.
	root := c.tracer.StartRoot(c.nextRequestID(), "dfsc.stripe").SetFile(file)
	defer root.End()
	ctx := trace.NewContext(context.Background(), root.Context())

	lanes, fail := c.accessLanesCtx(ctx, file, st.exclude, cfg.Width)
	if len(lanes) == 0 {
		root.SetOutcome("error")
		return st.res, fmt.Errorf("dfsc: read %v: %s", file, fail.Reason)
	}
	c.met.StripeLanes.Add(uint64(len(lanes)))
	for _, ln := range lanes {
		st.res.RMs = append(st.res.RMs, ln.out.RM)
	}

	var wg sync.WaitGroup
	st.lanes = len(lanes)
	for _, ln := range lanes {
		wg.Add(1)
		go func(ln heldLane) {
			defer wg.Done()
			c.stripeLane(ctx, st, rs, file, ln, cfg, root)
		}(ln)
	}

	// The caller's goroutine is the committer: it folds completed
	// segments into w in offset order, maintaining the whole-file FNV
	// state (serial recurrence — offset order is mandatory).
	sum := wire.ChecksumBasis
	st.mu.Lock()
	for st.commit < st.numSegs {
		if d, ok := st.done[st.commit]; ok {
			idx := st.commit
			delete(st.done, idx)
			st.commit++
			off, _ := st.segRange(idx)
			st.res.Segments = append(st.res.Segments, SegmentInfo{
				Offset: off, Length: int64(len(d.data)), RM: d.rm, Hedged: d.hedged,
			})
			st.res.Bytes += int64(len(d.data))
			st.cond.Broadcast() // the commit window advanced
			st.mu.Unlock()
			c.met.Segments.Inc()
			c.mu.Lock()
			c.stats.Segments++
			c.mu.Unlock()
			_, werr := w.Write(d.data)
			st.mu.Lock()
			if werr != nil && st.err == nil {
				st.err = fmt.Errorf("dfsc: writing segment %d: %w", idx, werr)
				st.cond.Broadcast()
			}
			if st.err != nil {
				break
			}
			sum = wire.ChecksumUpdate(sum, d.data)
			continue
		}
		if st.err != nil {
			break
		}
		st.cond.Wait()
	}
	err := st.err
	res := st.res
	st.mu.Unlock()
	wg.Wait()

	if err != nil {
		root.SetBytes(res.Bytes).SetOutcome("error")
		return res, err
	}
	res.Checksum = sum
	root.SetBytes(res.Bytes).SetOutcome("ok")
	return res, nil
}

// hedgePoll bounds how long an idle lane sleeps between hedge-eligibility
// scans (eligibility is time-based, so nothing broadcasts it).
const hedgePoll = 5 * time.Millisecond

// stripeLane is one lane goroutine: it claims segments off the shared
// board and streams them from its replica until the read completes, the
// run aborts, or its replica dies with the failover budget spent. ln
// mutates as the lane fails over to replacement replicas.
func (c *Client) stripeLane(ctx context.Context, st *stripeRun, rs RangeStreamer, file ids.FileID, ln heldLane, cfg StripeConfig, root *trace.Span) {
	defer func() {
		ln.release()
		st.mu.Lock()
		st.lanes--
		if st.lanes == 0 {
			st.cond.Broadcast() // committer may be waiting on a dead board
		}
		st.mu.Unlock()
	}()
	for {
		st.mu.Lock()
		idx, hedge, ok := st.claimLocked(ln.out.RM, cfg.HedgeAfter)
		if !ok {
			if st.err != nil || st.commit == st.numSegs {
				st.mu.Unlock()
				return
			}
			// No claimable work right now. Hedge eligibility is a clock,
			// not an event, so poll while anything is in flight; block on
			// the cond otherwise.
			if cfg.HedgeAfter > 0 && len(st.inflight) > 0 {
				st.mu.Unlock()
				time.Sleep(hedgePoll)
			} else {
				st.cond.Wait()
				st.mu.Unlock()
			}
			continue
		}
		if hedge {
			st.res.Hedges++
			c.met.HedgesFired.Inc()
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
		}
		st.mu.Unlock()

		off, length := st.segRange(idx)
		seg := c.tracer.StartChild(root.Context(), "dfsc.segment").
			SetRM(ln.out.RM).SetFile(file).SetRequest(ln.out.Request).SetOffset(off)
		var buf bytes.Buffer
		buf.Grow(int(length))
		segSum := wire.ChecksumBasis
		n, err := rs.StreamRange(ctx, ln.out.RM, file, ln.out.Request, off, length, &buf, &segSum)
		seg.SetBytes(n)

		if err == nil {
			st.mu.Lock()
			if _, raced := st.done[idx]; raced || idx < st.commit {
				// The other copy of a hedged segment won the race; this
				// one is discarded (first-writer-wins).
				seg.SetOutcome("hedge-lost")
			} else {
				st.done[idx] = &stripeDone{data: buf.Bytes(), rm: ln.out.RM, hedged: hedge}
				delete(st.inflight, idx)
				if hedge {
					st.res.HedgesWon++
					c.met.HedgesWon.Inc()
					c.mu.Lock()
					c.stats.HedgesWon++
					c.mu.Unlock()
				}
				seg.SetOutcome("ok")
			}
			st.cond.Broadcast()
			st.mu.Unlock()
			seg.End()
			continue
		}
		seg.SetOutcome("failover").End()

		// The lane's replica failed mid-range. Return the segment to the
		// board (unless a hedge already finished it, or this WAS the
		// hedge copy — the original owner still holds it), then try to
		// re-admit the lane on another replica under the shared budget.
		st.mu.Lock()
		if !hedge {
			if _, finished := st.done[idx]; !finished && idx >= st.commit {
				st.requeueLocked(idx)
			}
		}
		st.exclude[ln.out.RM] = true
		if st.failovers >= cfg.MaxFailovers {
			st.laneDeadLocked(file, err)
			st.mu.Unlock()
			return
		}
		st.failovers++
		exclude := make(map[ids.RMID]bool, len(st.exclude))
		for rm := range st.exclude {
			exclude[rm] = true
		}
		st.mu.Unlock()

		ln.release()
		c.sleepJittered(cfg.Backoff)
		start := time.Now()
		repl, _ := c.accessLanesCtx(ctx, file, exclude, 1)
		if len(repl) == 0 {
			st.mu.Lock()
			st.laneDeadLocked(file, err)
			st.mu.Unlock()
			return
		}
		c.met.Failovers.Inc()
		c.met.LaneFailovers.Inc()
		c.met.FailoverLatency.Observe(time.Since(start).Seconds())
		c.mu.Lock()
		c.stats.Failovers++
		c.mu.Unlock()
		st.mu.Lock()
		st.res.Failovers++
		st.res.RMs = append(st.res.RMs, repl[0].out.RM)
		st.mu.Unlock()
		ln = repl[0]
	}
}

// claimLocked hands the lane its next segment: a requeued range first,
// then the next unassigned one inside the commit window, then — when the
// board is drained and hedging is armed — the oldest lagging in-flight
// range owned by a DIFFERENT replica, as a first-writer-wins hedge copy.
// Caller holds st.mu.
func (st *stripeRun) claimLocked(rm ids.RMID, hedgeAfter time.Duration) (idx int, hedge, ok bool) {
	if st.err != nil || st.commit == st.numSegs {
		return 0, false, false
	}
	if len(st.requeue) > 0 {
		idx = st.requeue[0]
		st.requeue = st.requeue[1:]
		st.inflight[idx] = &stripeSeg{rm: rm, start: time.Now()}
		return idx, false, true
	}
	if st.next < st.numSegs && st.next < st.commit+st.window {
		idx = st.next
		st.next++
		st.inflight[idx] = &stripeSeg{rm: rm, start: time.Now()}
		return idx, false, true
	}
	if hedgeAfter > 0 {
		best := -1
		var bestStart time.Time
		for i, s := range st.inflight {
			if s.hedged || s.rm == rm {
				continue
			}
			if time.Since(s.start) < hedgeAfter {
				continue
			}
			if best == -1 || s.start.Before(bestStart) {
				best, bestStart = i, s.start
			}
		}
		if best >= 0 {
			st.inflight[best].hedged = true
			return best, true, true
		}
	}
	return 0, false, false
}

// requeueLocked returns a failed lane's segment to the board, keeping
// the requeue list sorted so low offsets (the ones gating the committer)
// are reassigned first. Caller holds st.mu.
func (st *stripeRun) requeueLocked(idx int) {
	delete(st.inflight, idx)
	at := sort.SearchInts(st.requeue, idx)
	st.requeue = append(st.requeue, 0)
	copy(st.requeue[at+1:], st.requeue[at:])
	st.requeue[at] = idx
	st.cond.Broadcast()
}

// laneDeadLocked records a lane's permanent exit. When it was the last
// lane and segments are still missing, the read cannot finish: the
// terminal error carries the lane's underlying failure. Caller holds
// st.mu (st.lanes itself is decremented by the lane's deferred exit).
func (st *stripeRun) laneDeadLocked(file ids.FileID, cause error) {
	if st.lanes == 1 && st.commit < st.numSegs && st.err == nil {
		st.err = fmt.Errorf("dfsc: read %v: %d failover(s) exhausted, no lane left: %w",
			file, st.failovers, cause)
		st.cond.Broadcast()
	}
}
