package dfsc

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// rangedStreamer is the stripe-scheduler unit fake: it serves byte
// ranges of a fixed body with per-RM artificial latency and scripted
// mid-range deaths, recording every range call.
type rangedStreamer struct {
	mu    sync.Mutex
	body  []byte
	delay map[ids.RMID]time.Duration // per-RM latency before the range is served
	dead  map[ids.RMID]bool          // RMs that die mid-range on every call
	calls []rangeCall
}

type rangeCall struct {
	rm          ids.RMID
	off, length int64
}

func (s *rangedStreamer) StreamAt(ctx context.Context, rm ids.RMID, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error) {
	return s.StreamRange(ctx, rm, file, req, offset, int64(len(s.body))-offset, w, sum)
}

func (s *rangedStreamer) StreamRange(_ context.Context, rm ids.RMID, _ ids.FileID, _ ids.RequestID, offset, length int64, w io.Writer, sum *uint64) (int64, error) {
	s.mu.Lock()
	s.calls = append(s.calls, rangeCall{rm: rm, off: offset, length: length})
	d := s.delay[rm]
	dead := s.dead[rm]
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	end := offset + length
	if end > int64(len(s.body)) {
		end = int64(len(s.body))
	}
	seg := s.body[offset:end]
	if dead {
		// Die halfway through the range, bytes already delivered.
		seg = seg[:len(seg)/2]
	}
	n, err := w.Write(seg)
	if err != nil {
		return int64(n), err
	}
	if sum != nil {
		*sum = wire.ChecksumUpdate(*sum, seg)
	}
	if dead {
		return int64(n), io.ErrUnexpectedEOF
	}
	return int64(n), nil
}

// stripeBody pins file 0 to a small deterministic body so segment plans
// are test-sized (the catalog generates streaming-scale files).
func stripeBody(h *harness, n int) []byte {
	h.catalog.File(0).Size = units.Size(n)
	body := make([]byte, n)
	for i := range body {
		body[i] = byte(i * 7)
	}
	return body
}

func TestReadStripedOutOfOrderSegmentsChecksum(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(200), 2: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	body := stripeBody(h, 1000)
	// Both lanes pay a per-range delay and one is slower, so segments
	// interleave and complete out of claim order: the committer must
	// still fold the whole-file sum in offset order. (The faster lane's
	// delay also guarantees the slower lane claims work before the file
	// is drained, keeping the two-RM assertion below deterministic.)
	s := &rangedStreamer{body: body, delay: map[ids.RMID]time.Duration{
		1: 10 * time.Millisecond,
		2: 15 * time.Millisecond,
	}}
	var got bytes.Buffer
	res, err := c.ReadStriped(s, 0, &got, StripeConfig{Width: 2, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), body) {
		t.Fatalf("delivered %d bytes, mismatch with body", got.Len())
	}
	if want := wire.ChecksumUpdate(wire.ChecksumBasis, body); res.Checksum != want {
		t.Fatalf("res.Checksum = %x, want whole-file %x", res.Checksum, want)
	}
	if res.Bytes != 1000 || res.Failovers != 0 {
		t.Fatalf("res = %+v, want 1000 bytes / 0 failovers", res)
	}
	if len(res.RMs) != 2 {
		t.Fatalf("res.RMs = %v, want both lanes", res.RMs)
	}
	// Segments must tile the file contiguously in offset order.
	var pos int64
	for i, seg := range res.Segments {
		if seg.Offset != pos {
			t.Fatalf("segment %d at offset %d, want %d (contiguous)", i, seg.Offset, pos)
		}
		pos += seg.Length
	}
	if pos != 1000 || len(res.Segments) != 8 {
		t.Fatalf("segments cover %d bytes in %d segments, want 1000 in 8", pos, len(res.Segments))
	}
	// Both replicas actually served ranges (it was a real stripe).
	served := map[ids.RMID]bool{}
	for _, seg := range res.Segments {
		served[seg.RM] = true
	}
	if len(served) != 2 {
		t.Fatalf("all segments served by %v, want both RMs", res.Segments)
	}
	if st := c.Stats(); st.Segments != 8 || st.Hedges != 0 {
		t.Fatalf("stats = %+v, want 8 segments / 0 hedges", st)
	}
}

func TestReadStripedZeroLengthFile(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	stripeBody(h, 0)
	s := &rangedStreamer{}
	var got bytes.Buffer
	res, err := c.ReadStriped(s, 0, &got, StripeConfig{Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 0 || got.Len() != 0 || len(s.calls) != 0 {
		t.Fatalf("zero-length read touched the data plane: res=%+v calls=%v", res, s.calls)
	}
	if res.Checksum != wire.ChecksumBasis {
		t.Fatalf("res.Checksum = %x, want the FNV basis (empty fold)", res.Checksum)
	}
	// No reservation was negotiated for zero bytes.
	if st := c.Stats(); st.Requests != 0 {
		t.Fatalf("stats.Requests = %d, want 0", st.Requests)
	}
}

func TestReadStripedWidthBeyondReplicaCount(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(200), 2: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	body := stripeBody(h, 600)
	s := &rangedStreamer{body: body}
	var got bytes.Buffer
	res, err := c.ReadStriped(s, 0, &got, StripeConfig{Width: 5, SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	// The stripe degraded to the two lanes that exist.
	if len(res.RMs) != 2 {
		t.Fatalf("res.RMs = %v, want width degraded to 2", res.RMs)
	}
	if !bytes.Equal(got.Bytes(), body) || res.Bytes != 600 {
		t.Fatalf("delivered %d bytes (res %d), want the whole 600", got.Len(), res.Bytes)
	}
	if want := wire.ChecksumUpdate(wire.ChecksumBasis, body); res.Checksum != want {
		t.Fatalf("res.Checksum = %x, want %x", res.Checksum, want)
	}
}

func TestReadStripedAllLanesDieBudgetExhausted(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(300), 2: units.Mbps(200), 3: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2, 3}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	body := stripeBody(h, 1000)
	// Every replica dies mid-range, so lanes burn the shared failover
	// budget and the read must fail once no lane is left.
	s := &rangedStreamer{body: body, dead: map[ids.RMID]bool{1: true, 2: true, 3: true}}
	res, err := c.ReadStriped(s, 0, io.Discard, StripeConfig{
		Width: 2, SegmentBytes: 250, MaxFailovers: 1, Backoff: time.Microsecond,
	})
	if err == nil {
		t.Fatal("read with every replica dying succeeded")
	}
	if !strings.Contains(err.Error(), "no lane left") {
		t.Fatalf("error does not report lane exhaustion: %v", err)
	}
	if res.Failovers > 1 {
		t.Fatalf("res.Failovers = %d, exceeds MaxFailovers 1", res.Failovers)
	}
	if res.Bytes >= 1000 {
		t.Fatalf("res.Bytes = %d on a failed read, want partial", res.Bytes)
	}
	// Every lane's reservation was released on the way out.
	for id, node := range h.rms {
		if node.Allocated() != 0 {
			t.Fatalf("RM %v still has %v allocated", id, node.Allocated())
		}
	}
}

func TestReadStripedHedgeBeatsSlowLane(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(200), 2: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	body := stripeBody(h, 800)
	// Two segments, two lanes. The slow replica sits on its range long
	// past HedgeAfter; the fast lane goes idle, hedges the lagging range,
	// and its copy must win the first-writer-wins race.
	s := &rangedStreamer{body: body, delay: map[ids.RMID]time.Duration{
		1: 20 * time.Millisecond,
		2: 900 * time.Millisecond,
	}}
	var got bytes.Buffer
	res, err := c.ReadStriped(s, 0, &got, StripeConfig{
		Width: 2, SegmentBytes: 400, HedgeAfter: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), body) {
		t.Fatalf("delivered %d bytes, mismatch with body", got.Len())
	}
	if want := wire.ChecksumUpdate(wire.ChecksumBasis, body); res.Checksum != want {
		t.Fatalf("res.Checksum = %x, want %x", res.Checksum, want)
	}
	if res.Hedges != 1 || res.HedgesWon != 1 {
		t.Fatalf("res = %+v, want exactly one hedge fired and won", res)
	}
	var hedged int
	for _, seg := range res.Segments {
		if seg.Hedged {
			hedged++
			if seg.RM != 1 {
				t.Fatalf("hedged segment committed by %v, want the fast RM 1", seg.RM)
			}
		}
	}
	if hedged != 1 {
		t.Fatalf("segments = %+v, want one hedged", res.Segments)
	}
	if st := c.Stats(); st.Hedges != 1 || st.HedgesWon != 1 {
		t.Fatalf("stats = %+v, want hedge counters 1/1", st)
	}
}

func TestReadStripedWidthOneIsSequential(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(200), 2: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	// Width 1 must take the exact ReadWithFailover path (the 1-wide
	// stripe), including its failover-and-resume semantics.
	body := failoverBody()
	s := &scriptedStreamer{body: body, cutAt: 40, deaths: 1}
	var got bytes.Buffer
	res, err := c.ReadStriped(s, 0, &got, StripeConfig{Width: 1, MaxFailovers: 2, Backoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 || res.Bytes != 100 || !bytes.Equal(got.Bytes(), body) {
		t.Fatalf("res = %+v (%d bytes), want the sequential failover result", res, got.Len())
	}
	if want := wire.ChecksumUpdate(wire.ChecksumBasis, body); res.Checksum != want {
		t.Fatalf("res.Checksum = %x, want %x", res.Checksum, want)
	}
	if len(res.Segments) != 2 || res.Segments[0].Length != 40 || res.Segments[1].Offset != 40 {
		t.Fatalf("res.Segments = %+v, want the two failover segments", res.Segments)
	}
}

// TestReadStripedSegmentsObservable pins the Stats()/registry blind-spot
// fix: data-plane segment counts must be visible from the client API and
// the exposition, not only inside ReadResult.
func TestReadStripedSegmentsObservable(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(200), 2: units.Mbps(100)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		ID:        1,
		Mapper:    h.mapper,
		Directory: h.dir,
		Scheduler: ecnp.SimScheduler{S: h.sched},
		Catalog:   h.catalog,
		Policy:    selection.RemOnly,
		Scenario:  qos.Soft,
		Rand:      rng.New(5),
		Metrics:   NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	body := stripeBody(h, 512)
	s := &rangedStreamer{body: body}
	if _, err := c.ReadStriped(s, 0, io.Discard, StripeConfig{Width: 2, SegmentBytes: 128}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Segments != 4 {
		t.Fatalf("stats.Segments = %d, want 4", st.Segments)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dfsqos_dfsc_segments_total 4",
		"dfsqos_dfsc_stripe_reads_total 1",
		"dfsqos_dfsc_stripe_lanes_total 2",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}
