package dfsc

import (
	"dfsqos/internal/telemetry"
)

// Metrics instruments the client side of the three-phase flow:
// negotiation latency (exploration + CFP fan-out + open), fan-out stalls
// (providers that missed the bid deadline and degraded to zero bids),
// and selection outcomes. Nil in Options means no-op, so the
// discrete-event simulation pays nothing observable.
type Metrics struct {
	// NegotiationLatency observes the wall-clock seconds from request
	// start to open outcome
	// (dfsqos_dfsc_negotiation_latency_seconds).
	NegotiationLatency *telemetry.Histogram
	// FanoutStalls counts providers whose bid missed the negotiation
	// deadline and were synthesized as last-ranked zero bids
	// (dfsqos_dfsc_fanout_stalls_total).
	FanoutStalls *telemetry.Counter
	// Admitted / Failed / NoReplica count request outcomes
	// (dfsqos_dfsc_requests_total{outcome}).
	Admitted  *telemetry.Counter
	Failed    *telemetry.Counter
	NoReplica *telemetry.Counter
	// Fallbacks counts firm-scenario opens refused by a ranked RM
	// before a lower-ranked one (or none) admitted the access
	// (dfsqos_dfsc_open_fallbacks_total).
	Fallbacks *telemetry.Counter
	// Failovers counts mid-stream reads successfully re-admitted on
	// another replica after their serving RM died
	// (dfsqos_dfsc_failovers_total).
	Failovers *telemetry.Counter
	// FailoverLatency observes the seconds from the failover decision to
	// the replacement reservation being admitted
	// (dfsqos_dfsc_failover_latency_seconds).
	FailoverLatency *telemetry.Histogram
	// StripeReads counts striped reads started
	// (dfsqos_dfsc_stripe_reads_total); StripeLanes counts the lanes they
	// admitted (dfsqos_dfsc_stripe_lanes_total), so lanes/reads is the
	// effective stripe width.
	StripeReads *telemetry.Counter
	StripeLanes *telemetry.Counter
	// Segments counts data-plane segments committed to readers
	// (dfsqos_dfsc_segments_total).
	Segments *telemetry.Counter
	// HedgesFired / HedgesWon count slow-lane hedges by outcome
	// (dfsqos_dfsc_hedges_total{outcome}): fired when a lagging lane's
	// range was re-issued to another replica, won when the hedge beat the
	// original copy (first-writer-wins).
	HedgesFired *telemetry.Counter
	HedgesWon   *telemetry.Counter
	// LaneFailovers counts stripe lanes re-admitted on another replica
	// after their RM died mid-range (dfsqos_dfsc_lane_failovers_total).
	LaneFailovers *telemetry.Counter
	// LookupErrors counts metadata lookups that failed in transport, by
	// error class (dfsqos_dfsc_lookup_errors_total{class}): "remote" means
	// the MM answered with an error over a healthy connection, "timeout" a
	// deadline overrun (slow MM), "conn" an unusable connection (dead MM),
	// "other" anything unclassified — so dashboards distinguish a slow MM
	// from a dead one.
	LookupErrors *telemetry.CounterVec
	// OversubAdmits counts admitted lanes funded past the winning RM's
	// assured headroom, i.e. admissions riding the RM's advertised
	// oversubscription ratio (dfsqos_dfsc_oversub_admits_total).
	OversubAdmits *telemetry.Counter
	// MetaHits / MetaMisses / MetaInvalidated count metadata lease-cache
	// outcomes (dfsqos_dfsc_metacache_total{outcome}): "hit" opens that
	// skipped the MM on a live lease, "miss" opens that paid the lookup,
	// "invalidated" leases dropped because the cached replica set failed
	// the client (failover re-resolution).
	MetaHits        *telemetry.Counter
	MetaMisses      *telemetry.Counter
	MetaInvalidated *telemetry.Counter
}

// NewMetrics registers the DFSC metric families on reg (nil reg yields a
// live no-op sink).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	outcomes := reg.NewCounterVec("dfsqos_dfsc_requests_total",
		"Access attempts by outcome.", "outcome")
	hedges := reg.NewCounterVec("dfsqos_dfsc_hedges_total",
		"Slow-lane hedges by outcome (fired/won).", "outcome")
	metacache := reg.NewCounterVec("dfsqos_dfsc_metacache_total",
		"Metadata lease-cache outcomes (hit/miss/invalidated).", "outcome")
	return &Metrics{
		NegotiationLatency: reg.NewHistogram("dfsqos_dfsc_negotiation_latency_seconds",
			"Three-phase negotiation latency (MM query, CFP fan-out, open).",
			telemetry.DefBuckets),
		FanoutStalls: reg.NewCounter("dfsqos_dfsc_fanout_stalls_total",
			"Providers that missed the bid deadline (degraded to zero bids)."),
		Admitted:  outcomes.With("admitted"),
		Failed:    outcomes.With("failed"),
		NoReplica: outcomes.With("no_replica"),
		Fallbacks: reg.NewCounter("dfsqos_dfsc_open_fallbacks_total",
			"Firm opens refused by a ranked RM, falling through to the next."),
		Failovers: reg.NewCounter("dfsqos_dfsc_failovers_total",
			"Mid-stream reads re-admitted on another replica after RM failure."),
		FailoverLatency: reg.NewHistogram("dfsqos_dfsc_failover_latency_seconds",
			"Seconds from failover decision to replacement admission.",
			telemetry.DefBuckets),
		StripeReads: reg.NewCounter("dfsqos_dfsc_stripe_reads_total",
			"Striped (K-wide) reads started."),
		StripeLanes: reg.NewCounter("dfsqos_dfsc_stripe_lanes_total",
			"Stripe lanes admitted across striped reads."),
		Segments: reg.NewCounter("dfsqos_dfsc_segments_total",
			"Data-plane segments committed to readers."),
		OversubAdmits: reg.NewCounter("dfsqos_dfsc_oversub_admits_total",
			"Lanes admitted past the winning RM's assured headroom (oversubscription-funded)."),
		HedgesFired: hedges.With("fired"),
		HedgesWon:   hedges.With("won"),
		LaneFailovers: reg.NewCounter("dfsqos_dfsc_lane_failovers_total",
			"Stripe lanes re-admitted on another replica after RM failure."),
		LookupErrors: reg.NewCounterVec("dfsqos_dfsc_lookup_errors_total",
			"Metadata lookups failed in transport, by error class.", "class"),
		MetaHits:        metacache.With("hit"),
		MetaMisses:      metacache.With("miss"),
		MetaInvalidated: metacache.With("invalidated"),
	}
}
