package dfsc

import (
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
)

func TestStoreNewFile(t *testing.T) {
	// File 3 has no replicas; Store must place it on some RM and register
	// it with the MM.
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Firm)
	out := c.Store(3)
	if !out.OK {
		t.Fatalf("store failed: %s", out.Reason)
	}
	if !out.RM.Valid() {
		t.Fatal("no serving RM")
	}
	if !h.rms[out.RM].HasFile(3) {
		t.Fatalf("%v does not hold the stored file", out.RM)
	}
	holders := h.mapper.Lookup(3)
	if len(holders) != 1 || holders[0] != out.RM {
		t.Fatalf("MM holders = %v, want [%v]", holders, out.RM)
	}
	// The ingest reserves bandwidth until the write completes.
	if h.rms[out.RM].Allocated() != h.catalog.File(3).Bitrate {
		t.Fatalf("allocated %v during ingest", h.rms[out.RM].Allocated())
	}
	h.sched.Run()
	if h.rms[out.RM].Allocated() != 0 {
		t.Fatal("ingest reservation not released")
	}
	// The stored file is now readable through the normal path.
	read := c.Access(3)
	if !read.OK || read.RM != out.RM {
		t.Fatalf("read-after-store = %+v", read)
	}
}

func TestStorePrefersIdleRM(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		nil)
	h.rms[1].Open(ecnp.OpenRequest{Request: 900, Bitrate: units.Mbps(12), DurationSec: 10000})
	c := h.client(t, selection.RemOnly, qos.Soft)
	out := c.Store(5)
	if !out.OK || out.RM != 2 {
		t.Fatalf("store went to %v, want the idle RM2", out.RM)
	}
}

func TestStoreFailsWhenAllFullFirm(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)},
		nil)
	h.rms[1].Open(ecnp.OpenRequest{Request: 900, Bitrate: units.Mbps(17.9), DurationSec: 10000})
	c := h.client(t, selection.RemOnly, qos.Firm)
	out := c.Store(5)
	if out.OK {
		t.Fatal("firm store admitted with no bandwidth anywhere")
	}
	// The unregistered store must not leak into the MM.
	if n := h.mapper.ReplicaCount(5); n != 0 {
		t.Fatalf("MM shows %d replicas of a failed store", n)
	}
}

func TestStoreSkipsExistingHolder(t *testing.T) {
	// RM1 already holds file 0; a store of the same file must land on RM2
	// (StoreFile on a holder fails and the client falls through).
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(180), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	out := c.Store(0)
	if !out.OK || out.RM != 2 {
		t.Fatalf("store of a held file went to %v, want RM2", out.RM)
	}
	if h.mapper.ReplicaCount(0) != 2 {
		t.Fatalf("replica count %d after store", h.mapper.ReplicaCount(0))
	}
}

func TestBroadcastCNPSameOutcomeMoreMessages(t *testing.T) {
	build := func(broadcast bool) (*Client, *harness) {
		h := newHarness(t,
			map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18), 3: units.Mbps(18)},
			map[ids.FileID][]ids.RMID{0: {1, 2}})
		c, err := New(Options{
			ID: 1, Mapper: h.mapper, Directory: h.dir,
			Scheduler: ecnp.SimScheduler{S: h.sched}, Catalog: h.catalog,
			Policy: selection.RemOnly, Scenario: qos.Firm,
			Rand: rng.New(5), BroadcastCNP: broadcast,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, h
	}
	ecnpClient, _ := build(false)
	cnpClient, _ := build(true)

	outE := ecnpClient.Access(0)
	outC := cnpClient.Access(0)
	if !outE.OK || !outC.OK {
		t.Fatalf("accesses failed: %v %v", outE, outC)
	}
	// Same winner: CNP broadcast filters non-holders, so selection sees
	// the identical bid set.
	if outE.RM != outC.RM {
		t.Fatalf("winners differ: ECNP %v vs CNP %v", outE.RM, outC.RM)
	}
	// But broadcast pays CFPs to all 3 RMs instead of the 2 holders.
	msgsE := ecnpClient.Stats().Messages
	msgsC := cnpClient.Stats().Messages
	if msgsC <= msgsE {
		t.Fatalf("broadcast sent %d messages, matchmaker %d; broadcast should cost more", msgsC, msgsE)
	}
	// ECNP: 2 (query) + 2×2 (CFP/bid) + 2 (open) = 8.
	if msgsE != 8 {
		t.Fatalf("ECNP messages = %d, want 8", msgsE)
	}
	// CNP: 2 (list) + 3×2 (CFP/bid) + 2 (open) = 10.
	if msgsC != 10 {
		t.Fatalf("CNP messages = %d, want 10", msgsC)
	}
}
