// Package dfsc implements the Distributed File System Client — the
// Requester role of the ECNP model. On each user request the client runs
// the paper's three-phase resource-management flow: it queries the Metadata
// Manager for the eligible RMs (resource exploration), fans a
// Call-For-Proposal out to all of them and scores the returned bids with
// the configured resource-selection policy (resource negotiation), and then
// opens the data access on the winner (data communication), holding the
// bandwidth reservation for the file's playback duration.
//
// In the paper the client sits behind FUSE: the MM query is issued from the
// readdir callback, CFP fan-out and selection from open, and the transfer
// from read/write. Package fsapi binds those callbacks to this client.
package dfsc

import (
	"fmt"
	"sync"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
)

// Stats counts request outcomes and protocol traffic at one client.
type Stats struct {
	// Requests is the number of accesses attempted.
	Requests int64
	// Failed is the number of firm-scenario requests refused by every
	// eligible RM ("fail rate" numerator).
	Failed int64
	// NoReplica counts requests for files with no registered replica.
	NoReplica int64
	// Completed counts accesses whose reservation has been released.
	Completed int64
	// Messages counts control-plane messages this client exchanged:
	// matchmaker queries and replies, CFPs and bids, opens and their
	// results. It is the quantity behind the paper\'s claim that the ECNP
	// matchmaker "avoid[s] excessive redundant messages" versus plain CNP
	// broadcast (compare with Options.BroadcastCNP).
	Messages int64
}

// Outcome describes one access attempt.
type Outcome struct {
	Request ids.RequestID
	File    ids.FileID
	// RM is the serving RM, or ids.NoneRM on failure.
	RM ids.RMID
	// OK reports whether the access was admitted.
	OK bool
	// Reason is a short diagnostic when OK is false.
	Reason string
}

// Client is one DFSC.
type Client struct {
	mu sync.Mutex

	id        ids.DFSCID
	mapper    ecnp.Mapper
	dir       ecnp.Directory
	sched     ecnp.Scheduler
	cat       *catalog.Catalog
	policy    selection.Policy
	scen      qos.Scenario
	src       *rng.Source
	broadcast bool

	reqSeq int64
	stats  Stats
}

// Options configures a new client.
type Options struct {
	ID        ids.DFSCID
	Mapper    ecnp.Mapper
	Directory ecnp.Directory
	Scheduler ecnp.Scheduler
	Catalog   *catalog.Catalog
	Policy    selection.Policy
	Scenario  qos.Scenario
	Rand      *rng.Source
	// BroadcastCNP disables the ECNP matchmaker shortcut: instead of
	// querying the MM for the replica holders, the client broadcasts the
	// CFP to every registered RM (the original CNP model) and filters the
	// bids by HasReplica. QoS outcomes are identical; the message count
	// is not — which is the point of the comparison.
	BroadcastCNP bool
}

// New constructs a client.
func New(opt Options) (*Client, error) {
	if opt.Mapper == nil || opt.Directory == nil || opt.Scheduler == nil || opt.Catalog == nil || opt.Rand == nil {
		return nil, fmt.Errorf("dfsc: DFSC%d: Mapper, Directory, Scheduler, Catalog and Rand are required", opt.ID)
	}
	return &Client{
		id:        opt.ID,
		mapper:    opt.Mapper,
		dir:       opt.Directory,
		sched:     opt.Scheduler,
		cat:       opt.Catalog,
		policy:    opt.Policy,
		scen:      opt.Scenario,
		src:       opt.Rand,
		broadcast: opt.BroadcastCNP,
	}, nil
}

// ID returns the client's identifier.
func (c *Client) ID() ids.DFSCID { return c.id }

// Stats returns a copy of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Access runs the full three-phase flow for one file request and, when
// admitted, schedules the release of the reservation after the file's
// playback duration. It returns the outcome of the open.
func (c *Client) Access(file ids.FileID) Outcome {
	out, p := c.negotiate(file)
	if out.OK {
		c.scheduleClose(p, out.Request, c.cat.File(file).DurationSec)
	}
	return out
}

// AccessHeld runs the same negotiation but leaves the reservation open
// until the returned release function is called — the shape the FUSE
// open/release callback pair needs (package fsapi). release is idempotent
// and non-nil even on failure.
func (c *Client) AccessHeld(file ids.FileID) (Outcome, func()) {
	out, p := c.negotiate(file)
	if !out.OK {
		return out, func() {}
	}
	released := false
	var mu sync.Mutex
	return out, func() {
		mu.Lock()
		defer mu.Unlock()
		if released {
			return
		}
		released = true
		p.Close(out.Request)
		c.mu.Lock()
		c.stats.Completed++
		c.mu.Unlock()
	}
}

// Store runs the write half of the data communication phase: "data can be
// stored into the selected storage resource". Every registered RM (not
// just replica holders — a new file has none) answers the CFP; the
// best-scoring RM that admits the reservation and the store receives the
// file, and the MM records the new replica. The write occupies the RM's
// bandwidth for the file's duration, like a streaming ingest.
func (c *Client) Store(file ids.FileID) Outcome {
	req := c.nextRequestID()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	f := c.cat.File(file)
	cfp := ecnp.CFP{Request: req, File: file, Bitrate: f.Bitrate, DurationSec: f.DurationSec}

	var bids []selection.Bid
	providers := make(map[ids.RMID]ecnp.Provider)
	for _, info := range c.mapper.RMs() {
		p, ok := c.dir.Provider(info.ID)
		if !ok {
			continue
		}
		providers[info.ID] = p
		bids = append(bids, p.HandleCFP(cfp))
	}
	if len(bids) == 0 {
		c.mu.Lock()
		c.stats.Failed++
		c.mu.Unlock()
		return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no reachable RM"}
	}

	var order []ids.RMID
	c.mu.Lock()
	if c.policy.IsRandom() {
		order = make([]ids.RMID, len(bids))
		for i, b := range bids {
			order[i] = b.RM
		}
		c.src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		order = selection.Rank(c.policy, bids)
	}
	firm := c.scen.IsFirm()
	c.mu.Unlock()

	store := ecnp.StoreRequest{File: file, Bitrate: f.Bitrate, SizeBytes: f.Size, DurationSec: f.DurationSec}
	open := ecnp.OpenRequest{Request: req, File: file, Bitrate: f.Bitrate, DurationSec: f.DurationSec, Firm: firm}
	for _, rmID := range order {
		p := providers[rmID]
		// An RM already holding the file cannot store it again.
		if err := p.StoreFile(store); err != nil {
			continue
		}
		res := p.Open(open)
		if !res.OK {
			// Keep the stored replica only if the MM accepts it even
			// without an ingest reservation? No: an un-ingested store is
			// dead weight — undo by leaving it unregistered and move on.
			continue
		}
		if err := c.mapper.AddReplica(file, rmID); err != nil {
			p.Close(req)
			continue
		}
		c.scheduleClose(p, req, f.DurationSec)
		return Outcome{Request: req, File: file, RM: rmID, OK: true}
	}

	c.mu.Lock()
	c.stats.Failed++
	c.mu.Unlock()
	return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no RM could store the file"}
}

// negotiate performs phases 1-3 and returns the outcome plus the serving
// provider (nil on failure).
func (c *Client) negotiate(file ids.FileID) (Outcome, ecnp.Provider) {
	req := c.nextRequestID()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	f := c.cat.File(file)

	// Phase 1 — resource exploration. Under ECNP the MM answers the list
	// of eligible RMs (those holding a replica; issued from readdir in
	// the paper): 1 query + 1 reply. Under plain-CNP broadcast there is
	// no matchmaker: the CFP goes to every registered RM.
	var holders []ids.RMID
	if c.broadcast {
		for _, info := range c.mapper.RMs() {
			holders = append(holders, info.ID)
		}
		c.addMessages(2) // resource-list fetch + reply
	} else {
		holders = c.mapper.Lookup(file)
		c.addMessages(2) // query + reply
	}
	if len(holders) == 0 {
		c.mu.Lock()
		c.stats.NoReplica++
		c.stats.Failed++
		c.mu.Unlock()
		return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no replica registered"}, nil
	}

	// Phase 2 — resource negotiation: CFP fan-out and bid collection.
	cfp := ecnp.CFP{
		Request:     req,
		File:        file,
		Bitrate:     f.Bitrate,
		DurationSec: f.DurationSec,
	}
	bids := make([]selection.Bid, 0, len(holders))
	providers := make(map[ids.RMID]ecnp.Provider, len(holders))
	for _, h := range holders {
		p, ok := c.dir.Provider(h)
		if !ok {
			continue
		}
		providers[h] = p
		bid := p.HandleCFP(cfp)
		c.addMessages(2) // CFP + bid
		if c.broadcast && !bid.HasReplica {
			// A CNP provider without the file refuses; its CFP and
			// refusal are the redundant traffic ECNP eliminates.
			continue
		}
		bids = append(bids, bid)
	}
	if len(bids) == 0 {
		c.mu.Lock()
		c.stats.Failed++
		c.mu.Unlock()
		return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no reachable RM"}, nil
	}

	// Rank the bidders: policy order, or a uniform shuffle for (0,0,0).
	var order []ids.RMID
	c.mu.Lock()
	if c.policy.IsRandom() {
		order = make([]ids.RMID, len(bids))
		for i, b := range bids {
			order[i] = b.RM
		}
		c.src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		order = selection.Rank(c.policy, bids)
	}
	firm := c.scen.IsFirm()
	c.mu.Unlock()

	// Phase 3 — data communication: open on the winner. In the firm
	// scenario a refused open falls through to the next-ranked bidder;
	// the request fails only "when none of the RMs can provide sufficient
	// bandwidth" (paper §VI-A1). Soft requests are always admitted by the
	// first-ranked RM.
	open := ecnp.OpenRequest{
		Request:     req,
		File:        file,
		Bitrate:     f.Bitrate,
		DurationSec: f.DurationSec,
		Firm:        firm,
	}
	for _, rmID := range order {
		p := providers[rmID]
		res := p.Open(open)
		c.addMessages(2) // open + result
		if !res.OK {
			if firm {
				continue
			}
			// A soft open can only fail on a duplicate request id, which
			// indicates a bug upstream.
			c.mu.Lock()
			c.stats.Failed++
			c.mu.Unlock()
			return Outcome{Request: req, File: file, RM: rmID, OK: false, Reason: res.Reason}, nil
		}
		return Outcome{Request: req, File: file, RM: rmID, OK: true}, p
	}

	c.mu.Lock()
	c.stats.Failed++
	c.mu.Unlock()
	return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "insufficient bandwidth on all replicas"}, nil
}

// scheduleClose releases the reservation when the playback ends.
func (c *Client) scheduleClose(p ecnp.Provider, req ids.RequestID, durationSec float64) {
	c.sched.After(simtime.Duration(durationSec), func(simtime.Time) {
		p.Close(req)
		c.mu.Lock()
		c.stats.Completed++
		c.mu.Unlock()
	})
}

func (c *Client) addMessages(n int64) {
	c.mu.Lock()
	c.stats.Messages += n
	c.mu.Unlock()
}

func (c *Client) nextRequestID() ids.RequestID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqSeq++
	return ids.RequestID(int64(c.id)<<40 | c.reqSeq)
}
