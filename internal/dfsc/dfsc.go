// Package dfsc implements the Distributed File System Client — the
// Requester role of the ECNP model. On each user request the client runs
// the paper's three-phase resource-management flow: it queries the Metadata
// Manager for the eligible RMs (resource exploration), fans a
// Call-For-Proposal out to all of them and scores the returned bids with
// the configured resource-selection policy (resource negotiation), and then
// opens the data access on the winner (data communication), holding the
// bandwidth reservation for the file's playback duration.
//
// In the paper the client sits behind FUSE: the MM query is issued from the
// readdir callback, CFP fan-out and selection from open, and the transfer
// from read/write. Package fsapi binds those callbacks to this client.
package dfsc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
)

// Stats counts request outcomes and protocol traffic at one client,
// including the data-plane segment counters the stripe scheduler
// produces — the client API view of the read path, mirroring the
// registry's dfsqos_dfsc_* series.
type Stats struct {
	// Requests is the number of accesses attempted (striped reads count
	// one per admitted lane — each lane holds its own reservation).
	Requests int64
	// Failed is the number of firm-scenario requests refused by every
	// eligible RM ("fail rate" numerator).
	Failed int64
	// NoReplica counts requests for files with no registered replica.
	NoReplica int64
	// Completed counts accesses whose reservation has been released.
	Completed int64
	// Failovers counts mid-stream reads re-admitted on another replica
	// after their serving RM died (striped reads: one per lane
	// re-admission).
	Failovers int64
	// Segments counts data-plane segments delivered to readers: one per
	// serving RM on the sequential path, one per committed byte range on
	// the striped path.
	Segments int64
	// Hedges counts speculative re-issues of a lagging lane's segment to
	// another replica; HedgesWon counts those where the hedge beat the
	// original (first-writer-wins).
	Hedges    int64
	HedgesWon int64
	// Messages counts control-plane messages this client exchanged:
	// matchmaker queries and replies, CFPs and bids, opens and their
	// results. It is the quantity behind the paper\'s claim that the ECNP
	// matchmaker "avoid[s] excessive redundant messages" versus plain CNP
	// broadcast (compare with Options.BroadcastCNP).
	Messages int64
	// Oversubscribed counts admitted lanes whose winning bid could no
	// longer cover the request from its assured (nominal-capacity)
	// headroom — the stream was admitted into the RM's advertised
	// oversubscription ceiling instead.
	Oversubscribed int64
}

// Outcome describes one access attempt.
type Outcome struct {
	Request ids.RequestID
	File    ids.FileID
	// RM is the serving RM, or ids.NoneRM on failure.
	RM ids.RMID
	// OK reports whether the access was admitted.
	OK bool
	// Reason is a short diagnostic when OK is false.
	Reason string
}

// Fanout configures how the client collects bids during resource
// negotiation (phase 2).
type Fanout struct {
	// Concurrent issues the CFPs in parallel, one goroutine per eligible
	// provider — the shape the paper's Fig. 3 broadcast implies. The
	// default (false) keeps the serial fan-out the deterministic
	// discrete-event simulation requires; live deployments should enable
	// it so one stalled RM does not serialize the negotiation.
	Concurrent bool
	// BidTimeout bounds the wall-clock wait for bids when Concurrent is
	// set. Providers that have not answered by the deadline degrade to
	// the paper's "always bid" deviation: the client synthesizes a
	// last-ranked zero bid for them instead of blocking the open. Zero
	// waits for every provider (each still bounded by the transport's
	// own call deadline).
	BidTimeout time.Duration
}

// Client is one DFSC.
type Client struct {
	mu sync.Mutex

	id        ids.DFSCID
	mapper    ecnp.Mapper
	dir       ecnp.Directory
	sched     ecnp.Scheduler
	cat       *catalog.Catalog
	policy    selection.Policy
	scen      qos.Scenario
	src       *rng.Source
	broadcast bool
	fanout    Fanout
	meta      *MetaCache
	met       *Metrics
	tracer    *trace.Tracer
	tenant    ids.TenantID

	reqSeq int64
	stats  Stats
}

// Options configures a new client.
type Options struct {
	ID        ids.DFSCID
	Mapper    ecnp.Mapper
	Directory ecnp.Directory
	Scheduler ecnp.Scheduler
	Catalog   *catalog.Catalog
	Policy    selection.Policy
	Scenario  qos.Scenario
	Rand      *rng.Source
	// BroadcastCNP disables the ECNP matchmaker shortcut: instead of
	// querying the MM for the replica holders, the client broadcasts the
	// CFP to every registered RM (the original CNP model) and filters the
	// bids by HasReplica. QoS outcomes are identical; the message count
	// is not — which is the point of the comparison.
	BroadcastCNP bool
	// Fanout selects serial (simulation) or concurrent deadline-bounded
	// (live) CFP bid collection.
	Fanout Fanout
	// MetaTTL, when positive, arms the metadata lease cache: lookup
	// answers are cached for this long, and opens within the lease skip
	// the MM round trip entirely (see MetaCache). Zero disables caching,
	// the pre-lease behavior. A failed open invalidates the file's lease
	// before the failover re-negotiation re-resolves it.
	MetaTTL time.Duration
	// Metrics routes client telemetry to a registry (nil means no-op; the
	// discrete-event simulation pays a few uncollected atomic ops).
	Metrics *Metrics
	// Tracer enables request-scoped span tracing: each access opens a
	// "dfsc.access" root span (trace ID = the request ID) with child spans
	// for the MM lookup, the CFP fan-out, and each open attempt, and the
	// span contexts ride the wire to the MM and RM servers. Nil disables
	// tracing at zero cost (all span operations no-op).
	Tracer *trace.Tracer
	// Tenant is the identity every request from this client runs under:
	// stamped on CFPs and opens (where tenanted RMs enforce quotas and
	// weigh fairness), on StoreFile byte charges, and on the access root
	// span. Zero (NoneTenant) preserves untenanted behaviour everywhere.
	Tenant ids.TenantID
}

// New constructs a client.
func New(opt Options) (*Client, error) {
	if opt.Mapper == nil || opt.Directory == nil || opt.Scheduler == nil || opt.Catalog == nil || opt.Rand == nil {
		return nil, fmt.Errorf("dfsc: DFSC%d: Mapper, Directory, Scheduler, Catalog and Rand are required", opt.ID)
	}
	met := opt.Metrics
	if met == nil {
		met = NewMetrics(nil)
	}
	var meta *MetaCache
	if opt.MetaTTL > 0 {
		meta = NewMetaCache(opt.MetaTTL)
	}
	return &Client{
		id:        opt.ID,
		mapper:    opt.Mapper,
		dir:       opt.Directory,
		sched:     opt.Scheduler,
		cat:       opt.Catalog,
		policy:    opt.Policy,
		scen:      opt.Scenario,
		src:       opt.Rand,
		broadcast: opt.BroadcastCNP,
		fanout:    opt.Fanout,
		meta:      meta,
		met:       met,
		tracer:    opt.Tracer,
		tenant:    opt.Tenant,
	}, nil
}

// ID returns the client's identifier.
func (c *Client) ID() ids.DFSCID { return c.id }

// Tenant returns the identity this client's requests run under
// (NoneTenant when untenanted).
func (c *Client) Tenant() ids.TenantID { return c.tenant }

// MetaCache exposes the metadata lease cache (nil when MetaTTL was zero);
// tests drive its clock through it.
func (c *Client) MetaCache() *MetaCache { return c.meta }

// Stats returns a copy of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Access runs the full three-phase flow for one file request and, when
// admitted, schedules the release of the reservation after the file's
// playback duration. It returns the outcome of the open.
func (c *Client) Access(file ids.FileID) Outcome {
	out, p := c.negotiate(file)
	if out.OK {
		c.scheduleClose(p, out.Request, c.cat.File(file).DurationSec)
	}
	return out
}

// Probe runs only phase 1 of the flow — the Metadata Manager lookup — and
// returns without reserving bandwidth: the metadata-only request shape of
// small-file storms, where the MM round trip IS the request. It counts
// toward Requests/Messages like any access; a file with no registered
// replica counts as NoReplica+Failed, mirroring the read path's outcome
// for the same condition.
func (c *Client) Probe(file ids.FileID) Outcome {
	req := c.nextRequestID()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	holders := c.mapper.Lookup(file)
	c.addMessages(2) // query + reply
	if len(holders) == 0 {
		c.mu.Lock()
		c.stats.NoReplica++
		c.stats.Failed++
		c.mu.Unlock()
		c.met.NoReplica.Inc()
		return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no replica registered"}
	}
	c.mu.Lock()
	c.stats.Completed++
	c.mu.Unlock()
	return Outcome{Request: req, File: file, RM: holders[0], OK: true}
}

// AccessHeld runs the same negotiation but leaves the reservation open
// until the returned release function is called — the shape the FUSE
// open/release callback pair needs (package fsapi). release is idempotent
// and non-nil even on failure.
func (c *Client) AccessHeld(file ids.FileID) (Outcome, func()) {
	return c.AccessHeldExcluding(file, nil)
}

// AccessHeldExcluding is AccessHeld with an exclusion set: RMs in exclude
// are dropped from the eligible holders before the CFP fan-out. The
// failover reader uses it to re-negotiate around a replica that died
// mid-stream without waiting for the MM's liveness window to catch up.
func (c *Client) AccessHeldExcluding(file ids.FileID, exclude map[ids.RMID]bool) (Outcome, func()) {
	return c.accessHeldCtx(context.Background(), file, exclude)
}

// accessHeldCtx is AccessHeldExcluding with a caller-supplied context: a
// span context attached via trace.NewContext makes the negotiation spans
// children of the caller's trace (the failover reader threads its
// "dfsc.read" root through here so every re-negotiation shares one trace).
func (c *Client) accessHeldCtx(ctx context.Context, file ids.FileID, exclude map[ids.RMID]bool) (Outcome, func()) {
	out, p := c.negotiateCtx(ctx, file, exclude)
	if !out.OK {
		return out, func() {}
	}
	released := false
	var mu sync.Mutex
	return out, func() {
		mu.Lock()
		defer mu.Unlock()
		if released {
			return
		}
		released = true
		p.Close(out.Request)
		c.mu.Lock()
		c.stats.Completed++
		c.mu.Unlock()
	}
}

// heldLane is one admitted stripe lane: the admission outcome plus the
// idempotent release of its reservation.
type heldLane struct {
	out     Outcome
	release func()
}

// accessLanesCtx negotiates up to k concurrent lanes for file (see
// negotiateLanes) and wraps each grant with an idempotent release, the
// K-wide sibling of accessHeldCtx. Fewer than k lanes is a degraded
// width, not an error; zero lanes reports the failure Outcome.
func (c *Client) accessLanesCtx(ctx context.Context, file ids.FileID, exclude map[ids.RMID]bool, k int) ([]heldLane, Outcome) {
	grants, fail := c.negotiateLanes(ctx, file, exclude, k)
	if len(grants) == 0 {
		return nil, fail
	}
	lanes := make([]heldLane, len(grants))
	for i, g := range grants {
		g := g
		released := false
		var mu sync.Mutex
		lanes[i] = heldLane{out: g.out, release: func() {
			mu.Lock()
			defer mu.Unlock()
			if released {
				return
			}
			released = true
			g.p.Close(g.out.Request)
			c.mu.Lock()
			c.stats.Completed++
			c.mu.Unlock()
		}}
	}
	return lanes, Outcome{}
}

// Store runs the write half of the data communication phase: "data can be
// stored into the selected storage resource". Every registered RM (not
// just replica holders — a new file has none) answers the CFP; the
// best-scoring RM that admits the reservation and the store receives the
// file, and the MM records the new replica. The write occupies the RM's
// bandwidth for the file's duration, like a streaming ingest.
func (c *Client) Store(file ids.FileID) Outcome {
	req := c.nextRequestID()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	f := c.cat.File(file)
	cfp := ecnp.CFP{Request: req, File: file, Bitrate: f.Bitrate, DurationSec: f.DurationSec, Tenant: c.tenant}

	var candidates []ids.RMID
	for _, info := range c.mapper.RMs() {
		candidates = append(candidates, info.ID)
	}
	bids, providers := c.collectBids(context.Background(), candidates, cfp, false)
	if len(bids) == 0 {
		c.mu.Lock()
		c.stats.Failed++
		c.mu.Unlock()
		return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no reachable RM"}
	}

	var order []ids.RMID
	c.mu.Lock()
	if c.policy.IsRandom() {
		order = make([]ids.RMID, len(bids))
		for i, b := range bids {
			order[i] = b.RM
		}
		c.src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	} else {
		order = selection.Rank(c.policy, bids)
	}
	firm := c.scen.IsFirm()
	c.mu.Unlock()

	store := ecnp.StoreRequest{File: file, Bitrate: f.Bitrate, SizeBytes: f.Size, DurationSec: f.DurationSec, Tenant: c.tenant}
	open := ecnp.OpenRequest{Request: req, File: file, Bitrate: f.Bitrate, DurationSec: f.DurationSec, Firm: firm, Tenant: c.tenant}
	for _, rmID := range order {
		p := providers[rmID]
		// An RM already holding the file cannot store it again.
		if err := p.StoreFile(store); err != nil {
			continue
		}
		res := p.Open(open)
		if !res.OK {
			// Keep the stored replica only if the MM accepts it even
			// without an ingest reservation? No: an un-ingested store is
			// dead weight — undo by leaving it unregistered and move on.
			continue
		}
		if err := c.mapper.AddReplica(file, rmID); err != nil {
			p.Close(req)
			continue
		}
		c.scheduleClose(p, req, f.DurationSec)
		return Outcome{Request: req, File: file, RM: rmID, OK: true}
	}

	c.mu.Lock()
	c.stats.Failed++
	c.mu.Unlock()
	return Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no RM could store the file"}
}

// negotiate performs phases 1-3 and returns the outcome plus the serving
// provider (nil on failure).
func (c *Client) negotiate(file ids.FileID) (Outcome, ecnp.Provider) {
	return c.negotiateCtx(context.Background(), file, nil)
}

// ctxMapper is optionally implemented by Mappers whose Lookup round trip
// can carry a context (the live MMClient): the lookup span rides the wire
// to the MM, which opens a matching server span.
type ctxMapper interface {
	LookupContext(ctx context.Context, file ids.FileID) []ids.RMID
}

// errMapper is optionally implemented by Mappers whose lookup can report
// a transport failure (the live MM clients). ecnp.Mapper's Lookup
// signature swallows errors, which made a dead MM indistinguishable from
// a file with no replicas; through this interface the failure surfaces
// with the transport taxonomy intact and is counted by class.
type errMapper interface {
	LookupErrContext(ctx context.Context, file ids.FileID) ([]ids.RMID, error)
}

// classifyLookupErr maps a lookup failure onto the
// dfsqos_dfsc_lookup_errors_total class labels.
func classifyLookupErr(err error) string {
	var ce *transport.ConnError
	switch {
	case transport.IsRemote(err):
		return "remote"
	case transport.IsTimeout(err):
		return "timeout"
	case errors.As(err, &ce):
		return "conn"
	}
	return "other"
}

// ctxOpener is optionally implemented by Providers whose Open round trip
// can carry a context (the live RMClient), so the admission decision joins
// the request's trace on the RM side.
type ctxOpener interface {
	OpenContext(ctx context.Context, req ecnp.OpenRequest) ecnp.OpenResult
}

// grant is one admitted lane of a (possibly K-wide) negotiation: the
// admission outcome plus the provider holding its reservation.
type grant struct {
	out Outcome
	p   ecnp.Provider
}

// negotiateCtx is negotiate minus the RMs in exclude (nil excludes
// nothing), under a caller context. It is the 1-wide special case of
// negotiateLanes, preserved as the admission path of Access/AccessHeld.
func (c *Client) negotiateCtx(ctx context.Context, file ids.FileID, exclude map[ids.RMID]bool) (Outcome, ecnp.Provider) {
	grants, fail := c.negotiateLanes(ctx, file, exclude, 1)
	if len(grants) == 0 {
		return fail, nil
	}
	return grants[0].out, grants[0].p
}

// negotiateLanes runs one three-phase negotiation admitting up to k
// concurrent lanes: phases 1 (MM lookup) and 2 (CFP fan-out + scoring)
// run exactly once, then phase 3 walks the ranked bidders admitting each
// under its own reservation until k lanes hold or the ranking is
// exhausted. Fewer than k grants is not an error — the striped reader
// degrades its width to what the replica set supports. With zero grants
// the failure Outcome describes why (the same outcomes the 1-wide path
// has always produced). When tracing is enabled the whole negotiation is
// spanned: a "dfsc.access" span (root, or a child of any span already in
// ctx) covering phases 1-3, with children "dfsc.lookup" (resource
// exploration), "dfsc.bid" (CFP fan-out), and one "dfsc.open" per
// admission attempt — each propagated to the serving daemon over the
// wire so the trace stitches client and server halves together.
func (c *Client) negotiateLanes(ctx context.Context, file ids.FileID, exclude map[ids.RMID]bool, k int) ([]grant, Outcome) {
	start := time.Now()
	defer func() { c.met.NegotiationLatency.Observe(time.Since(start).Seconds()) }()

	req := c.nextRequestID()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	var sp *trace.Span
	if parent := trace.FromContext(ctx); parent.Valid() {
		sp = c.tracer.StartChild(parent, "dfsc.access")
	} else {
		sp = c.tracer.StartRoot(req, "dfsc.access")
	}
	sp.SetFile(file).SetRequest(req).SetTenant(c.tenant)
	defer sp.End()

	f := c.cat.File(file)

	// Phase 1 — resource exploration. Under ECNP the MM answers the list
	// of eligible RMs (those holding a replica; issued from readdir in
	// the paper): 1 query + 1 reply — unless a metadata lease covers the
	// file, in which case the open skips the MM entirely. Under plain-CNP
	// broadcast there is no matchmaker: the CFP goes to every registered RM.
	var holders []ids.RMID
	fromLease := false
	lookupSp := c.tracer.StartChild(sp.Context(), "dfsc.lookup").SetFile(file)
	if c.broadcast {
		for _, info := range c.mapper.RMs() {
			holders = append(holders, info.ID)
		}
		c.addMessages(2) // resource-list fetch + reply
		lookupSp.SetOutcome("ok").End()
	} else {
		var lookupErr error
		holders, fromLease, lookupErr = c.lookupHolders(
			trace.NewContext(ctx, lookupSp.Context()), file, len(exclude) > 0)
		if lookupErr != nil {
			lookupSp.SetOutcome("error").End()
			c.mu.Lock()
			c.stats.Failed++
			c.mu.Unlock()
			c.met.Failed.Inc()
			sp.SetOutcome("lookup-error")
			return nil, Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false,
				Reason: fmt.Sprintf("metadata lookup failed: %v", lookupErr)}
		}
		if fromLease {
			lookupSp.SetOutcome("lease-hit").End()
		} else {
			lookupSp.SetOutcome("ok").End()
		}
	}
	if len(exclude) > 0 {
		kept := make([]ids.RMID, 0, len(holders))
		for _, id := range holders {
			if !exclude[id] {
				kept = append(kept, id)
			}
		}
		holders = kept
	}
	if len(holders) == 0 {
		c.mu.Lock()
		c.stats.NoReplica++
		c.stats.Failed++
		c.mu.Unlock()
		c.met.NoReplica.Inc()
		sp.SetOutcome("no-replica")
		return nil, Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no replica registered"}
	}

	// Phase 2 — resource negotiation: CFP fan-out and bid collection
	// (serial for the DES, concurrent and deadline-bounded in live mode;
	// see Fanout).
	cfp := ecnp.CFP{
		Request:     req,
		File:        file,
		Bitrate:     f.Bitrate,
		DurationSec: f.DurationSec,
		Tenant:      c.tenant,
	}
	bidSp := c.tracer.StartChild(sp.Context(), "dfsc.bid").SetFile(file).SetRequest(req)
	collected, providers := c.collectBids(trace.NewContext(ctx, bidSp.Context()), holders, cfp, true)
	bidSp.SetOutcome("ok").End()
	bids := collected
	if c.broadcast {
		// A CNP provider without the file refuses; its CFP and refusal
		// are the redundant traffic ECNP eliminates.
		bids = make([]selection.Bid, 0, len(collected))
		for _, bid := range collected {
			if bid.HasReplica {
				bids = append(bids, bid)
			}
		}
	}
	if len(bids) == 0 {
		c.mu.Lock()
		c.stats.Failed++
		c.mu.Unlock()
		c.met.Failed.Inc()
		c.dropLease(file, fromLease)
		sp.SetOutcome("no-rm")
		return nil, Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "no reachable RM"}
	}

	// Rank the bidders: policy order, or a uniform shuffle for (0,0,0).
	// The full order is kept (selection.TopK with k = all) — phase 3 cuts
	// it off once k lanes are admitted, so firm refusals can still fall
	// through to lower-ranked bidders.
	c.mu.Lock()
	order := selection.TopK(c.policy, bids, len(bids), c.src)
	firm := c.scen.IsFirm()
	c.mu.Unlock()
	bidByRM := make(map[ids.RMID]selection.Bid, len(bids))
	for _, b := range bids {
		bidByRM[b.RM] = b
	}

	// Phase 3 — data communication: open on the ranked winners until k
	// lanes hold reservations. In the firm scenario a refused open falls
	// through to the next-ranked bidder; the request fails only "when
	// none of the RMs can provide sufficient bandwidth" (paper §VI-A1).
	// Soft requests are always admitted by the first-ranked RM. Each lane
	// opens under its own request ID (the first reuses the negotiation's,
	// so 1-wide callers see today's exact request identity).
	var grants []grant
	for _, rmID := range order {
		if len(grants) == k {
			break
		}
		laneReq := req
		if len(grants) > 0 {
			laneReq = c.nextRequestID()
			c.mu.Lock()
			c.stats.Requests++ // each extra lane holds its own reservation
			c.mu.Unlock()
		}
		open := ecnp.OpenRequest{
			Request:     laneReq,
			File:        file,
			Bitrate:     f.Bitrate,
			DurationSec: f.DurationSec,
			Firm:        firm,
			Tenant:      c.tenant,
		}
		p := providers[rmID]
		openSp := c.tracer.StartChild(sp.Context(), "dfsc.open").
			SetRM(rmID).SetFile(file).SetRequest(laneReq)
		var res ecnp.OpenResult
		if co, ok := p.(ctxOpener); ok {
			res = co.OpenContext(trace.NewContext(ctx, openSp.Context()), open)
		} else {
			res = p.Open(open)
		}
		c.addMessages(2) // open + result
		if !res.OK {
			openSp.SetOutcome("rejected").End()
			if firm {
				c.met.Fallbacks.Inc()
				continue
			}
			if len(grants) > 0 {
				// Later soft lanes are best-effort width: a refusal stops
				// the widening but the admitted lanes stand.
				break
			}
			// A soft open can only fail on a duplicate request id, which
			// indicates a bug upstream.
			c.mu.Lock()
			c.stats.Failed++
			c.mu.Unlock()
			c.met.Failed.Inc()
			c.dropLease(file, fromLease)
			sp.SetOutcome("error")
			return nil, Outcome{Request: req, File: file, RM: rmID, OK: false, Reason: res.Reason}
		}
		openSp.SetOutcome("admitted").End()
		c.met.Admitted.Inc()
		if b, won := bidByRM[rmID]; won && b.Ceil > 0 && b.Req > b.Assured {
			// The RM advertised a ceiling and the request outran its
			// assured headroom: an oversubscription-funded admission.
			c.mu.Lock()
			c.stats.Oversubscribed++
			c.mu.Unlock()
			c.met.OversubAdmits.Inc()
		}
		grants = append(grants, grant{
			out: Outcome{Request: laneReq, File: file, RM: rmID, OK: true},
			p:   p,
		})
	}
	if len(grants) > 0 {
		sp.SetRM(grants[0].out.RM).SetOutcome("admitted")
		return grants, Outcome{}
	}

	c.mu.Lock()
	c.stats.Failed++
	c.mu.Unlock()
	c.met.Failed.Inc()
	c.dropLease(file, fromLease)
	sp.SetOutcome("firm-exhausted")
	return nil, Outcome{Request: req, File: file, RM: ids.NoneRM, OK: false, Reason: "insufficient bandwidth on all replicas"}
}

// lookupHolders runs the non-broadcast half of phase 1: the metadata
// lease cache when armed and live (zero messages, fromLease true),
// otherwise the MM query — through the error-reporting mapper interface
// when offered, so transport failures surface typed and counted by class
// instead of masquerading as "no replica". A failover re-negotiation
// (failover true) invalidates the file's lease first: the cached replica
// set just failed the client, so replaying it would be wrong.
func (c *Client) lookupHolders(ctx context.Context, file ids.FileID, failover bool) (holders []ids.RMID, fromLease bool, err error) {
	if c.meta != nil {
		if failover {
			if c.meta.Invalidate(file) {
				c.met.MetaInvalidated.Inc()
			}
		} else if hs, ok := c.meta.Get(file); ok {
			c.met.MetaHits.Inc()
			return hs, true, nil
		}
		c.met.MetaMisses.Inc()
	}
	switch m := c.mapper.(type) {
	case errMapper:
		holders, err = m.LookupErrContext(ctx, file)
	case ctxMapper:
		holders = m.LookupContext(ctx, file)
	default:
		holders = c.mapper.Lookup(file)
	}
	c.addMessages(2) // query + reply
	if err != nil {
		c.met.LookupErrors.With(classifyLookupErr(err)).Inc()
		return nil, false, err
	}
	if c.meta != nil {
		c.meta.Put(file, holders)
	}
	return holders, false, nil
}

// dropLease invalidates file's lease after a failed open that consumed
// it — the cached set routed the client at replicas that refused or
// died, so the next attempt must re-resolve from the MM.
func (c *Client) dropLease(file ids.FileID, fromLease bool) {
	if fromLease && c.meta != nil && c.meta.Invalidate(file) {
		c.met.MetaInvalidated.Inc()
	}
}

// collectBids runs the CFP fan-out over the candidate RMs and returns the
// bids in candidate order plus the resolved providers (unresolvable RMs
// are skipped). count toggles message accounting: the read path counts a
// CFP+bid pair per contacted provider; Store historically does not count.
//
// Serial mode (the default) calls each provider in turn — the
// deterministic shape the discrete-event simulation requires; providers
// implementing ecnp.CtxBidder still receive ctx so a trace span attached
// to it rides the CFP to the RM. Concurrent mode launches one goroutine
// per provider and waits at most BidTimeout: providers implementing
// ecnp.CtxBidder receive the shared negotiation
// context, so their network round trip is cut off at the deadline too;
// laggards are abandoned (their goroutines drain into a buffered channel,
// bounded by the transport's own call deadline) and contribute a
// synthesized zero bid that ranks last — the paper's always-bid deviation
// preserved by degradation instead of blocking the open.
func (c *Client) collectBids(ctx context.Context, candidates []ids.RMID, cfp ecnp.CFP, count bool) ([]selection.Bid, map[ids.RMID]ecnp.Provider) {
	providers := make(map[ids.RMID]ecnp.Provider, len(candidates))
	resolved := make([]ecnp.Provider, len(candidates)) // index-aligned; nil = skipped
	n := 0
	for i, id := range candidates {
		if _, dup := providers[id]; dup {
			continue
		}
		if p, ok := c.dir.Provider(id); ok {
			providers[id] = p
			resolved[i] = p
			n++
		}
	}
	if count {
		c.addMessages(int64(2 * n)) // CFP + bid per contacted provider
	}
	if n == 0 {
		return nil, providers
	}

	bids := make([]selection.Bid, len(candidates))
	have := make([]bool, len(candidates))
	if !c.fanout.Concurrent {
		for i, p := range resolved {
			if p == nil {
				continue
			}
			if cb, ok := p.(ecnp.CtxBidder); ok {
				bids[i] = cb.HandleCFPContext(ctx, cfp)
			} else {
				bids[i] = p.HandleCFP(cfp)
			}
			have[i] = true
		}
	} else {
		if c.fanout.BidTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.fanout.BidTimeout)
			defer cancel()
		}
		type slot struct {
			i   int
			bid selection.Bid
		}
		ch := make(chan slot, n) // buffered: abandoned bidders never leak
		for i, p := range resolved {
			if p == nil {
				continue
			}
			go func(i int, p ecnp.Provider) {
				var b selection.Bid
				if cb, ok := p.(ecnp.CtxBidder); ok {
					b = cb.HandleCFPContext(ctx, cfp)
				} else {
					b = p.HandleCFP(cfp)
				}
				ch <- slot{i: i, bid: b}
			}(i, p)
		}
		for got := 0; got < n; {
			select {
			case s := <-ch:
				bids[s.i] = s.bid
				have[s.i] = true
				got++
			case <-ctx.Done():
				got = n // deadline: synthesize zero bids for the rest
			}
		}
	}

	out := make([]selection.Bid, 0, n)
	for i, p := range resolved {
		if p == nil {
			continue
		}
		if !have[i] {
			// The negotiation deadline passed without this provider's
			// bid: a zero bid ranks it last and the negotiation proceeds
			// with the live bidders (paper's "always bid" preserved).
			bids[i] = ecnp.ZeroBid(candidates[i], cfp)
			c.met.FanoutStalls.Inc()
		}
		out = append(out, bids[i])
	}
	return out, providers
}

// scheduleClose releases the reservation when the playback ends.
func (c *Client) scheduleClose(p ecnp.Provider, req ids.RequestID, durationSec float64) {
	c.sched.After(simtime.Duration(durationSec), func(simtime.Time) {
		p.Close(req)
		c.mu.Lock()
		c.stats.Completed++
		c.mu.Unlock()
	})
}

func (c *Client) addMessages(n int64) {
	c.mu.Lock()
	c.stats.Messages += n
	c.mu.Unlock()
}

func (c *Client) nextRequestID() ids.RequestID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqSeq++
	return ids.RequestID(int64(c.id)<<40 | c.reqSeq)
}
