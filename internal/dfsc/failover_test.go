package dfsc

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/units"
	"dfsqos/internal/wire"
)

// scriptedStreamer serves a fixed body, cutting the stream after a
// configured number of bytes for the first deaths RMs it sees — the unit
// shape of a replica crashing mid-stream. It records every (rm, offset)
// call so tests can assert exact resume points.
type scriptedStreamer struct {
	body   []byte
	cutAt  int64 // bytes delivered before the simulated crash
	deaths int   // how many distinct serving RMs die before one survives
	calls  []streamCall
	failed map[ids.RMID]bool
}

type streamCall struct {
	rm     ids.RMID
	offset int64
}

func (s *scriptedStreamer) StreamAt(_ context.Context, rm ids.RMID, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error) {
	s.calls = append(s.calls, streamCall{rm: rm, offset: offset})
	if s.failed == nil {
		s.failed = make(map[ids.RMID]bool)
	}
	end := int64(len(s.body))
	die := len(s.failed) < s.deaths && !s.failed[rm]
	if die {
		s.failed[rm] = true
		if cut := offset + s.cutAt; cut < end {
			end = cut
		}
	}
	seg := s.body[offset:end]
	n, err := w.Write(seg)
	if err != nil {
		return int64(n), err
	}
	if sum != nil {
		*sum = wire.ChecksumUpdate(*sum, seg)
	}
	if die {
		return int64(n), io.ErrUnexpectedEOF
	}
	return int64(n), nil
}

func failoverBody() []byte {
	body := make([]byte, 100)
	for i := range body {
		body[i] = byte(i)
	}
	return body
}

func TestReadWithFailoverResumesAtOffset(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18), 3: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2, 3}})
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		ID:        1,
		Mapper:    h.mapper,
		Directory: h.dir,
		Scheduler: ecnp.SimScheduler{S: h.sched},
		Catalog:   h.catalog,
		Policy:    selection.RemOnly,
		Scenario:  qos.Soft,
		Rand:      rng.New(5),
		Metrics:   NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}

	body := failoverBody()
	s := &scriptedStreamer{body: body, cutAt: 40, deaths: 1}
	var got bytes.Buffer
	res, err := c.ReadWithFailover(s, 0, &got, FailoverConfig{MaxFailovers: 2, Backoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 || res.Bytes != 100 {
		t.Fatalf("result = %+v, want 1 failover / 100 bytes", res)
	}
	if len(res.RMs) != 2 || res.RMs[0] == res.RMs[1] {
		t.Fatalf("serving RMs = %v, want two distinct", res.RMs)
	}
	if !bytes.Equal(got.Bytes(), body) {
		t.Fatalf("delivered %d bytes, mismatch with body", got.Len())
	}
	// The second segment resumed at the exact byte the first reached,
	// on a different RM (the corpse was excluded from re-negotiation).
	if len(s.calls) != 2 || s.calls[0].offset != 0 || s.calls[1].offset != 40 {
		t.Fatalf("stream calls = %+v, want offsets 0 then 40", s.calls)
	}
	if s.calls[1].rm == s.calls[0].rm {
		t.Fatalf("failover re-used the dead RM %v", s.calls[0].rm)
	}
	// Every segment's reservation was released: nothing left allocated.
	for id, node := range h.rms {
		if node.Allocated() != 0 {
			t.Fatalf("RM %v still has %v allocated", id, node.Allocated())
		}
	}
	if st := c.Stats(); st.Failovers != 1 {
		t.Fatalf("stats.Failovers = %d, want 1", st.Failovers)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dfsqos_dfsc_failovers_total 1") {
		t.Fatalf("exposition missing failover counter:\n%s", sb.String())
	}
}

func TestReadWithFailoverChecksumSpansSegments(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	body := failoverBody()
	s := &scriptedStreamer{body: body, cutAt: 33, deaths: 1}
	if _, err := c.ReadWithFailover(s, 0, io.Discard, FailoverConfig{MaxFailovers: 1, Backoff: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	// The running checksum the streamer accumulated across both segments
	// must equal the whole-body checksum — the property the final
	// FileEnd verification depends on.
	// (Recompute what the two segments produced by construction.)
	whole := wire.ChecksumUpdate(wire.ChecksumBasis, body)
	split := wire.ChecksumUpdate(wire.ChecksumUpdate(wire.ChecksumBasis, body[:33]), body[33:])
	if whole != split {
		t.Fatalf("segment checksum %x != whole-body %x", split, whole)
	}
}

func TestReadWithFailoverBudgetExhausted(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	// Zero budget: the first mid-stream death is fatal, but the bytes
	// delivered so far are still reported.
	s := &scriptedStreamer{body: failoverBody(), cutAt: 25, deaths: 2}
	var got bytes.Buffer
	res, err := c.ReadWithFailover(s, 0, &got, FailoverConfig{MaxFailovers: 0, Backoff: time.Microsecond})
	if err == nil {
		t.Fatal("exhausted read succeeded")
	}
	if res.Failovers != 0 || res.Bytes != 25 || got.Len() != 25 {
		t.Fatalf("result = %+v (%d bytes written), want 0 failovers / 25 bytes", res, got.Len())
	}
}

func TestReadWithFailoverNoReplicaLeft(t *testing.T) {
	// One replica only: after it dies the re-negotiation excludes it and
	// finds nothing, however generous the failover budget.
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	s := &scriptedStreamer{body: failoverBody(), cutAt: 10, deaths: 1}
	res, err := c.ReadWithFailover(s, 0, io.Discard, FailoverConfig{MaxFailovers: 5, Backoff: time.Microsecond})
	if err == nil {
		t.Fatal("read with no surviving replica succeeded")
	}
	if res.Bytes != 10 {
		t.Fatalf("res.Bytes = %d, want 10", res.Bytes)
	}
	if !strings.Contains(err.Error(), "no replica") {
		t.Fatalf("error does not name the empty replica set: %v", err)
	}
}
