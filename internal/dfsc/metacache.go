package dfsc

import (
	"sync"
	"time"

	"dfsqos/internal/ids"
)

// MetaCache is the client-side metadata lease cache: file → replica-holder
// entries the MM answered recently, each valid for one TTL. While a lease
// is live the client opens the file without the MM round trip at all —
// hot-file opens stop paying the lookup RTT, and more importantly keep
// succeeding while the file's metadata shard is dead. The TTL is the
// invalidation lease: the client never trusts an entry longer than that,
// so a replica-set change (failover re-placement, shard handoff) is
// picked up within one TTL without any server-pushed invalidation
// channel. A failed open invalidates the entry immediately — the cached
// set routed the client at a replica that refused or died, so it
// re-resolves instead of retrying a stale answer.
type MetaCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	entries map[ids.FileID]metaEntry
}

type metaEntry struct {
	holders []ids.RMID
	expires time.Time
}

// NewMetaCache builds a cache whose leases last ttl (must be positive).
func NewMetaCache(ttl time.Duration) *MetaCache {
	return &MetaCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[ids.FileID]metaEntry),
	}
}

// SetClock overrides the wall-clock source (tests). nil restores time.Now.
func (c *MetaCache) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// TTL returns the lease duration.
func (c *MetaCache) TTL() time.Duration { return c.ttl }

// Get returns the live lease for file, if any. Expired entries are
// dropped on the way out. The returned slice is a copy.
func (c *MetaCache) Get(file ids.FileID) ([]ids.RMID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[file]
	if !ok {
		return nil, false
	}
	if c.now().After(e.expires) {
		delete(c.entries, file)
		return nil, false
	}
	out := make([]ids.RMID, len(e.holders))
	copy(out, e.holders)
	return out, true
}

// Put leases file's holder set for one TTL. Empty sets are not cached —
// a "no replica" answer must stay re-checkable, not negatively cached.
func (c *MetaCache) Put(file ids.FileID, holders []ids.RMID) {
	if len(holders) == 0 {
		return
	}
	cp := make([]ids.RMID, len(holders))
	copy(cp, holders)
	c.mu.Lock()
	c.entries[file] = metaEntry{holders: cp, expires: c.now().Add(c.ttl)}
	c.mu.Unlock()
}

// Invalidate drops file's lease, reporting whether one existed.
func (c *MetaCache) Invalidate(file ids.FileID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[file]
	delete(c.entries, file)
	return ok
}

// Len returns the number of cached entries, counting expired ones not
// yet swept (diagnostics).
func (c *MetaCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
