package dfsc

import (
	"testing"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// harness wires a small cluster with an explicit catalog for client tests.
type harness struct {
	sched   *simtime.Scheduler
	mapper  *mm.Manager
	dir     ecnp.StaticDirectory
	rms     map[ids.RMID]*rm.RM
	catalog *catalog.Catalog
}

func newHarness(t *testing.T, caps map[ids.RMID]units.BytesPerSec, holders map[ids.FileID][]ids.RMID) *harness {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 8
	cat, err := catalog.Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		sched:   simtime.NewScheduler(),
		mapper:  mm.New(),
		dir:     make(ecnp.StaticDirectory),
		rms:     make(map[ids.RMID]*rm.RM),
		catalog: cat,
	}
	adapter := ecnp.SimScheduler{S: h.sched}
	master := rng.New(11)
	fileSets := make(map[ids.RMID]map[ids.FileID]rm.FileMeta)
	for f, hs := range holders {
		meta := cat.File(f)
		for _, id := range hs {
			if fileSets[id] == nil {
				fileSets[id] = make(map[ids.FileID]rm.FileMeta)
			}
			fileSets[id][f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
		}
	}
	for id, capBW := range caps {
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: 16 * units.GB},
			Scheduler:   adapter,
			Mapper:      h.mapper,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       fileSets[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Register(); err != nil {
			t.Fatal(err)
		}
		h.rms[id] = node
		h.dir[id] = node
	}
	for _, node := range h.rms {
		node.SetDirectory(h.dir)
	}
	return h
}

func (h *harness) client(t *testing.T, pol selection.Policy, scen qos.Scenario) *Client {
	t.Helper()
	c, err := New(Options{
		ID:        1,
		Mapper:    h.mapper,
		Directory: h.dir,
		Scheduler: ecnp.SimScheduler{S: h.sched},
		Catalog:   h.catalog,
		Policy:    pol,
		Scenario:  scen,
		Rand:      rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestAccessHappyPath(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	out := c.Access(0)
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
	if out.RM != 1 && out.RM != 2 {
		t.Fatalf("served by %v", out.RM)
	}
	served := h.rms[out.RM]
	if served.Allocated() != h.catalog.File(0).Bitrate {
		t.Fatalf("allocated %v, want the file bitrate", served.Allocated())
	}
	// The reservation is released after the playback duration.
	h.sched.Run()
	if served.Allocated() != 0 {
		t.Fatalf("allocated %v after playback, want 0", served.Allocated())
	}
	st := c.Stats()
	if st.Requests != 1 || st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAccessNoReplica(t *testing.T) {
	h := newHarness(t, map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)}, nil)
	c := h.client(t, selection.RemOnly, qos.Soft)
	out := c.Access(0)
	if out.OK {
		t.Fatal("access to unplaced file succeeded")
	}
	st := c.Stats()
	if st.NoReplica != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemOnlyPrefersIdleRM(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	// Pre-load RM1 so RM2 has more remaining bandwidth.
	h.rms[1].Open(ecnp.OpenRequest{Request: 999, Bitrate: units.Mbps(10), DurationSec: 10000})
	c := h.client(t, selection.RemOnly, qos.Soft)
	for i := 0; i < 3; i++ {
		out := c.Access(0)
		if !out.OK || out.RM != 2 {
			t.Fatalf("access %d served by %v, want idle RM2", i, out.RM)
		}
		h.rms[2].Close(out.Request)
	}
}

func TestFirmFallbackToNextRanked(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	bitrate := h.catalog.File(0).Bitrate
	// Fill RM2 (the would-be winner) to the brim, leaving room on RM1.
	h.rms[2].Open(ecnp.OpenRequest{Request: 999, Bitrate: units.Mbps(18), DurationSec: 10000})
	h.rms[1].Open(ecnp.OpenRequest{Request: 998, Bitrate: units.Mbps(18) - bitrate, DurationSec: 10000})
	c := h.client(t, selection.RemOnly, qos.Firm)
	out := c.Access(0)
	if !out.OK {
		t.Fatalf("firm access failed despite capacity on RM1: %s", out.Reason)
	}
	if out.RM != 1 {
		t.Fatalf("served by %v, want fallback RM1", out.RM)
	}
}

func TestFirmFailsWhenAllFull(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	h.rms[1].Open(ecnp.OpenRequest{Request: 998, Bitrate: units.Mbps(17.9), DurationSec: 10000})
	h.rms[2].Open(ecnp.OpenRequest{Request: 999, Bitrate: units.Mbps(17.9), DurationSec: 10000})
	c := h.client(t, selection.RemOnly, qos.Firm)
	out := c.Access(0)
	if out.OK {
		t.Fatal("firm access admitted with no capacity anywhere")
	}
	st := c.Stats()
	if st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Soft access in the same state succeeds by over-allocating.
	c2 := h.client(t, selection.RemOnly, qos.Soft)
	if out := c2.Access(0); !out.OK {
		t.Fatalf("soft access failed: %s", out.Reason)
	}
}

func TestRandomPolicySpreads(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(180), 2: units.Mbps(180), 3: units.Mbps(180)},
		map[ids.FileID][]ids.RMID{0: {1, 2, 3}})
	c := h.client(t, selection.Random, qos.Soft)
	counts := map[ids.RMID]int{}
	for i := 0; i < 300; i++ {
		out := c.Access(0)
		if !out.OK {
			t.Fatal("access failed")
		}
		counts[out.RM]++
		h.rms[out.RM].Close(out.Request)
	}
	for id, n := range counts {
		if n < 50 {
			t.Errorf("%v served only %d of 300 under random policy", id, n)
		}
	}
}

func TestRequestIDsUnique(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(1800)},
		map[ids.FileID][]ids.RMID{0: {1}})
	c := h.client(t, selection.RemOnly, qos.Soft)
	seen := make(map[ids.RequestID]bool)
	for i := 0; i < 100; i++ {
		out := c.Access(0)
		if !out.OK {
			t.Fatal("access failed")
		}
		if seen[out.Request] {
			t.Fatalf("duplicate request id %v", out.Request)
		}
		seen[out.Request] = true
	}
}
