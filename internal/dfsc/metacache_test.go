package dfsc

import (
	"context"
	"errors"
	"testing"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
)

func TestMetaCacheTTLAndInvalidate(t *testing.T) {
	mc := NewMetaCache(time.Second)
	now := time.Unix(0, 0)
	mc.SetClock(func() time.Time { return now })

	if _, ok := mc.Get(1); ok {
		t.Fatal("empty cache answered")
	}
	mc.Put(1, []ids.RMID{3, 4})
	hs, ok := mc.Get(1)
	if !ok || len(hs) != 2 || hs[0] != 3 {
		t.Fatalf("Get = %v/%v", hs, ok)
	}
	// The returned slice is a copy: mutating it must not poison the lease.
	hs[0] = 99
	if again, _ := mc.Get(1); again[0] != 3 {
		t.Fatal("cached holders aliased to caller slice")
	}
	// Expiry is strict: at TTL the lease still holds, past it it is gone.
	now = now.Add(time.Second)
	if _, ok := mc.Get(1); !ok {
		t.Fatal("lease expired at exactly TTL")
	}
	now = now.Add(time.Nanosecond)
	if _, ok := mc.Get(1); ok {
		t.Fatal("lease survived past TTL")
	}
	if mc.Len() != 0 {
		t.Fatalf("expired entry lingers: Len = %d", mc.Len())
	}

	// No negative caching: an empty replica set is never leased.
	mc.Put(2, nil)
	if _, ok := mc.Get(2); ok || mc.Len() != 0 {
		t.Fatal("empty holder set was cached")
	}

	mc.Put(3, []ids.RMID{1})
	if !mc.Invalidate(3) {
		t.Fatal("Invalidate missed a live lease")
	}
	if mc.Invalidate(3) {
		t.Fatal("Invalidate hit twice")
	}
}

// countingMapper wraps the harness mapper and counts MM lookups, so lease
// tests can assert which accesses actually queried the metadata plane.
type countingMapper struct {
	ecnp.Mapper
	lookups int
}

func (m *countingMapper) Lookup(file ids.FileID) []ids.RMID {
	m.lookups++
	return m.Mapper.Lookup(file)
}

// TestLeaseHitSkipsMM arms the metadata cache and checks the hot-file
// path: the first open queries the MM, repeats ride the lease (no MM
// round trip, no message accounting), expiry re-resolves, and a failover
// re-negotiation refuses to replay the cached set.
func TestLeaseHitSkipsMM(t *testing.T) {
	h := newHarness(t,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)},
		map[ids.FileID][]ids.RMID{0: {1, 2}})
	counting := &countingMapper{Mapper: h.mapper}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	c, err := New(Options{
		ID:        1,
		Mapper:    counting,
		Directory: h.dir,
		Scheduler: ecnp.SimScheduler{S: h.sched},
		Catalog:   h.catalog,
		Policy:    selection.RemOnly,
		Scenario:  qos.Soft,
		Rand:      rng.New(5),
		MetaTTL:   time.Minute,
		Metrics:   met,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c.MetaCache().SetClock(func() time.Time { return now })

	if out := c.Access(0); !out.OK {
		t.Fatalf("first access failed: %s", out.Reason)
	}
	if counting.lookups != 1 {
		t.Fatalf("first access made %d lookups, want 1", counting.lookups)
	}
	msgsAfterFirst := c.Stats().Messages

	if out := c.Access(0); !out.OK {
		t.Fatalf("leased access failed: %s", out.Reason)
	}
	if counting.lookups != 1 {
		t.Fatalf("leased access queried the MM (%d lookups)", counting.lookups)
	}
	// The lease hit saves the query+reply message pair of phase 1.
	if got := c.Stats().Messages - msgsAfterFirst; got >= msgsAfterFirst {
		t.Fatalf("leased access spent %d messages, want fewer than the cold %d", got, msgsAfterFirst)
	}
	if met.MetaHits.Value() != 1 || met.MetaMisses.Value() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", met.MetaHits.Value(), met.MetaMisses.Value())
	}

	// Past the TTL the next access re-resolves.
	now = now.Add(2 * time.Minute)
	if out := c.Access(0); !out.OK {
		t.Fatalf("post-expiry access failed: %s", out.Reason)
	}
	if counting.lookups != 2 {
		t.Fatalf("post-expiry access made %d total lookups, want 2", counting.lookups)
	}

	// A failover re-negotiation invalidates the fresh lease and queries.
	hs, fromLease, err := c.lookupHolders(context.Background(), 0, true)
	if err != nil || fromLease || len(hs) != 2 {
		t.Fatalf("failover lookup = %v/%v/%v, want fresh holders", hs, fromLease, err)
	}
	if counting.lookups != 3 {
		t.Fatalf("failover lookup did not query the MM (%d lookups)", counting.lookups)
	}
	if met.MetaInvalidated.Value() != 1 {
		t.Fatalf("MetaInvalidated = %d, want 1", met.MetaInvalidated.Value())
	}
}

// failingMapper serves a scripted error through the errMapper interface
// and refuses everything else.
type failingMapper struct {
	ecnp.Mapper
	err error
}

func (m *failingMapper) LookupErrContext(ctx context.Context, file ids.FileID) ([]ids.RMID, error) {
	return nil, m.err
}

// TestLookupErrorTaxonomy drives one access per transport failure class
// through the typed lookup path and checks each lands in its own
// dfsqos_dfsc_lookup_errors_total bucket with a lookup-failure outcome —
// not a misleading "no replica".
func TestLookupErrorTaxonomy(t *testing.T) {
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 4
	cat, err := catalog.Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		class string
		err   error
	}{
		{"remote", transport.RemoteError{Text: "mm: not a shard-group member"}},
		{"timeout", &transport.TimeoutError{Op: "call Lookup", Peer: "x", Err: context.DeadlineExceeded}},
		{"conn", &transport.ConnError{Op: "call Lookup", Peer: "x", Err: errors.New("reset")}},
		{"other", errors.New("unclassified")},
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	for _, tc := range cases {
		c, err := New(Options{
			ID:        1,
			Mapper:    &failingMapper{err: tc.err},
			Directory: make(ecnp.StaticDirectory),
			Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
			Catalog:   cat,
			Policy:    selection.RemOnly,
			Scenario:  qos.Soft,
			Rand:      rng.New(5),
			Metrics:   met,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := c.Access(0)
		if out.OK {
			t.Fatalf("%s: access succeeded through a failing mapper", tc.class)
		}
		if got := met.LookupErrors.With(tc.class).Value(); got != 1 {
			t.Fatalf("%s bucket = %d, want 1", tc.class, got)
		}
		if got := classifyLookupErr(tc.err); got != tc.class {
			t.Fatalf("classifyLookupErr(%v) = %q, want %q", tc.err, got, tc.class)
		}
	}
}
