package dfsc

import (
	"sync/atomic"
	"testing"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// stallProvider is an ecnp.Provider whose CFP handler blocks for a fixed
// wall-clock delay — the shape of a wedged or partitioned RM. It
// deliberately does NOT implement ecnp.CtxBidder, so the only defense the
// requester has is the negotiation deadline.
type stallProvider struct {
	id    ids.RMID
	rem   units.BytesPerSec
	delay time.Duration
	opens atomic.Int32
}

func (p *stallProvider) Info() ecnp.RMInfo {
	return ecnp.RMInfo{ID: p.id, Capacity: units.Mbps(100), StorageBytes: units.GB}
}

func (p *stallProvider) HandleCFP(cfp ecnp.CFP) selection.Bid {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return selection.Bid{RM: p.id, Rem: p.rem, Req: cfp.Bitrate, HasReplica: true}
}

func (p *stallProvider) Open(req ecnp.OpenRequest) ecnp.OpenResult {
	p.opens.Add(1)
	return ecnp.OpenResult{OK: true}
}

func (p *stallProvider) Close(ids.RequestID)                   {}
func (p *stallProvider) OfferReplica(ecnp.ReplicaOffer) bool   { return false }
func (p *stallProvider) FinishReplica(ids.ReplicationID, bool) {}
func (p *stallProvider) StoreFile(ecnp.StoreRequest) error     { return nil }

var _ ecnp.Provider = (*stallProvider)(nil)

// fanoutHarness wires N fake providers behind a real mm.Manager.
func fanoutHarness(t *testing.T, providers []*stallProvider) (*mm.Manager, ecnp.StaticDirectory, *catalog.Catalog) {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 4
	cat, err := catalog.Generate(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	mgr := mm.New()
	dir := make(ecnp.StaticDirectory)
	for _, p := range providers {
		if err := mgr.RegisterRM(p.Info(), []ids.FileID{0}); err != nil {
			t.Fatal(err)
		}
		dir[p.id] = p
	}
	return mgr, dir, cat
}

// TestConcurrentFanoutBoundedByDeadline is the acceptance scenario: N
// providers, one of which stalls far past the negotiation deadline. The
// open must complete in about one deadline — not N stalls, not even one
// stall — selecting among the live bids, with the stalled RM degraded to
// a last-ranked zero bid.
func TestConcurrentFanoutBoundedByDeadline(t *testing.T) {
	const (
		deadline = 150 * time.Millisecond
		stall    = 2 * time.Second
	)
	stalled := &stallProvider{id: 4, rem: units.Mbps(90), delay: stall}
	providers := []*stallProvider{
		{id: 1, rem: units.Mbps(10)},
		{id: 2, rem: units.Mbps(30)},
		{id: 3, rem: units.Mbps(20)},
		stalled,
	}
	mgr, dir, cat := fanoutHarness(t, providers)
	c, err := New(Options{
		ID:        1,
		Mapper:    mgr,
		Directory: dir,
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Catalog:   cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(5),
		Fanout:    Fanout{Concurrent: true, BidTimeout: deadline},
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	out := c.Access(0)
	elapsed := time.Since(start)
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
	// The stalled provider advertises the best B_rem; had the client
	// waited for its bid it would have won. The deadline turns it into a
	// zero bid, so the best *live* bidder wins instead.
	if out.RM != 2 {
		t.Fatalf("served by %v, want RM2 (best live bid)", out.RM)
	}
	if elapsed >= stall {
		t.Fatalf("open took %v: fan-out waited for the stalled RM", elapsed)
	}
	if elapsed > deadline+500*time.Millisecond {
		t.Fatalf("open took %v, want ~%v", elapsed, deadline)
	}
	if stalled.opens.Load() != 0 {
		t.Fatal("stalled RM received an Open despite its zero bid")
	}
}

// TestConcurrentFanoutCompletesEarly verifies the collector does not
// burn the whole deadline when every bid arrives promptly.
func TestConcurrentFanoutCompletesEarly(t *testing.T) {
	providers := []*stallProvider{
		{id: 1, rem: units.Mbps(10)},
		{id: 2, rem: units.Mbps(30)},
	}
	mgr, dir, cat := fanoutHarness(t, providers)
	c, err := New(Options{
		ID:        1,
		Mapper:    mgr,
		Directory: dir,
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Catalog:   cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(5),
		Fanout:    Fanout{Concurrent: true, BidTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out := c.Access(0)
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("prompt bids still took %v", elapsed)
	}
	if out.RM != 2 {
		t.Fatalf("served by %v, want RM2", out.RM)
	}
}

// TestConcurrentFanoutAllStalledFailsAtDeadline verifies the degenerate
// case: every holder stalls, every bid degrades to zero, and the firm
// open walks the zero bids (which all still answer Open here) — the
// negotiation itself must still complete in ~deadline.
func TestConcurrentFanoutZeroBidsStillNegotiate(t *testing.T) {
	const deadline = 100 * time.Millisecond
	providers := []*stallProvider{
		{id: 1, rem: units.Mbps(10), delay: time.Second},
		{id: 2, rem: units.Mbps(30), delay: time.Second},
	}
	mgr, dir, cat := fanoutHarness(t, providers)
	c, err := New(Options{
		ID:        1,
		Mapper:    mgr,
		Directory: dir,
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Catalog:   cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(5),
		Fanout:    Fanout{Concurrent: true, BidTimeout: deadline},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out := c.Access(0)
	if elapsed := time.Since(start); elapsed > 900*time.Millisecond {
		t.Fatalf("negotiation took %v, want ~%v", elapsed, deadline)
	}
	// Zero-bid providers are still asked to open, in some order — the
	// paper's always-bid deviation means a silent bidder is ranked, not
	// excluded. Both accept, so the access succeeds.
	if !out.OK {
		t.Fatalf("access failed: %s", out.Reason)
	}
}

// TestSerialFanoutUnchanged pins the default: without Fanout.Concurrent
// the client calls providers in holder order on the calling goroutine —
// the deterministic shape the DES requires.
func TestSerialFanoutUnchanged(t *testing.T) {
	providers := []*stallProvider{
		{id: 1, rem: units.Mbps(10)},
		{id: 2, rem: units.Mbps(30)},
	}
	mgr, dir, cat := fanoutHarness(t, providers)
	c, err := New(Options{
		ID:        1,
		Mapper:    mgr,
		Directory: dir,
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Catalog:   cat,
		Policy:    selection.RemOnly,
		Scenario:  qos.Firm,
		Rand:      rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Access(0)
	if !out.OK || out.RM != 2 {
		t.Fatalf("serial access: %+v", out)
	}
	st := c.Stats()
	if st.Messages != 2+2*2+2 {
		t.Fatalf("messages = %d, want 8 (query+reply, 2×(CFP+bid), open+result)", st.Messages)
	}
}
