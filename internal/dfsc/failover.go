// Mid-stream read failover: when the replica serving a read dies, the
// client re-resolves the replica set through the MM, excludes the failed
// RM, re-runs admission on the next-best bidder, and resumes the stream
// from the exact byte where the previous segment ended — bounded retries
// with jittered backoff between attempts. The running FNV-1a checksum is
// carried across segments, so the whole-file integrity check in the final
// FileEnd frame still holds even though the bytes arrived from several
// replicas.
package dfsc

import (
	"context"
	"fmt"
	"io"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
	"dfsqos/internal/wire"
)

// Streamer is the data plane the failover reader drives. The live
// deployment's Directory implements it (resolving rm to a pooled TCP
// client and streaming from offset); tests substitute fakes. ctx may
// carry a trace span context (trace.NewContext) that the implementation
// propagates onto the stream's wire frames. sum is the running checksum
// state threaded across segments; implementations must report the bytes
// delivered even when they return an error — that is the next segment's
// resume point.
type Streamer interface {
	StreamAt(ctx context.Context, rm ids.RMID, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error)
}

// FailoverConfig tunes ReadWithFailover.
type FailoverConfig struct {
	// MaxFailovers bounds how many times the read may move to another
	// replica after the first RM fails (0: the read fails on the first
	// stream error; negative is treated as 0).
	MaxFailovers int
	// Backoff is the base delay before each re-negotiation, jittered
	// uniformly over [0.5×, 1.5×] so synchronized clients do not stampede
	// the survivors. Zero defaults to 50ms.
	Backoff time.Duration
}

// SegmentInfo attributes one delivered byte range to the replica that
// served it, so a multi-RM read is auditable segment by segment.
type SegmentInfo struct {
	// Offset/Length locate the segment in the file.
	Offset int64
	Length int64
	// RM is the replica whose copy of the range was committed.
	RM ids.RMID
	// Hedged reports that the committed copy came from a hedge — a
	// speculative re-issue that beat the original lane to completion.
	Hedged bool
}

// ReadResult describes one (possibly multi-segment, possibly striped)
// read.
type ReadResult struct {
	// Bytes is the total delivered to the writer across all segments.
	Bytes int64
	// Failovers is how many times a stream (or stripe lane) moved to
	// another replica.
	Failovers int
	// RMs lists the serving RMs in admission order. On the sequential
	// (1-wide) path that is segment order: the first entry is the
	// original winner and each further entry is one failover. On a
	// striped read it is lane-admission order — segment attribution lives
	// in Segments, because lanes interleave and "segment order" is no
	// longer well defined for a flat RM list.
	RMs []ids.RMID
	// Segments attributes every committed byte range to its serving RM,
	// in file-offset order (which is also commit order).
	Segments []SegmentInfo
	// Checksum is the whole-file FNV-1a sum folded over the delivered
	// bytes in offset order, verified against the server side: the final
	// FileEnd checksum on the sequential path, per-range checksums on the
	// striped path. Valid only when the read succeeded.
	Checksum uint64
	// Hedges counts slow-lane ranges speculatively re-issued to another
	// replica; HedgesWon counts those where the hedge's copy was the one
	// committed.
	Hedges    int
	HedgesWon int
}

// ReadWithFailover reads file through s, failing over to another replica
// when a segment dies mid-stream. Each segment rides a fresh QoS
// reservation negotiated with the failed RMs excluded, resumes at the
// exact byte offset the previous segment reached, and threads one running
// checksum so the final segment's whole-file verification covers every
// byte delivered. The reservation is released when its segment ends
// (successfully or not); releasing on a dead RM is a best-effort no-op.
func (c *Client) ReadWithFailover(s Streamer, file ids.FileID, w io.Writer, cfg FailoverConfig) (ReadResult, error) {
	if cfg.MaxFailovers < 0 {
		cfg.MaxFailovers = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	var res ReadResult
	exclude := make(map[ids.RMID]bool)
	sum := wire.ChecksumBasis

	// One root span covers the whole multi-segment read: its trace ID is
	// a fresh request ID (each segment negotiates under its own request,
	// recorded per-segment via SetRequest), so a failover read shows up
	// in /traces as ONE trace whose "dfsc.segment" children land on
	// different RMs at contiguous byte offsets.
	root := c.tracer.StartRoot(c.nextRequestID(), "dfsc.read").SetFile(file)
	defer root.End()
	ctx := trace.NewContext(context.Background(), root.Context())

	out, release := c.accessHeldCtx(ctx, file, exclude)
	if !out.OK {
		root.SetOutcome("error")
		return res, fmt.Errorf("dfsc: read %v: %s", file, out.Reason)
	}
	var offset int64
	for {
		res.RMs = append(res.RMs, out.RM)
		seg := c.tracer.StartChild(root.Context(), "dfsc.segment").
			SetRM(out.RM).SetFile(file).SetRequest(out.Request).SetOffset(offset)
		n, err := s.StreamAt(trace.NewContext(ctx, seg.Context()), out.RM, file, out.Request, offset, w, &sum)
		seg.SetBytes(n)
		if n > 0 || err == nil {
			res.Segments = append(res.Segments, SegmentInfo{Offset: offset, Length: n, RM: out.RM})
			c.met.Segments.Inc()
			c.mu.Lock()
			c.stats.Segments++
			c.mu.Unlock()
		}
		offset += n
		res.Bytes = offset
		release() // best effort on a dead RM; idempotent
		if err == nil {
			res.Checksum = sum
			seg.SetOutcome("ok").End()
			root.SetRM(out.RM).SetBytes(offset).SetOutcome("ok")
			return res, nil
		}
		seg.SetOutcome("failover").End()
		exclude[out.RM] = true
		if res.Failovers >= cfg.MaxFailovers {
			root.SetBytes(offset).SetOutcome("error")
			return res, fmt.Errorf("dfsc: read %v: %d byte(s), %d failover(s) exhausted: %w",
				file, offset, res.Failovers, err)
		}
		res.Failovers++
		c.sleepJittered(cfg.Backoff)

		start := time.Now()
		out, release = c.accessHeldCtx(ctx, file, exclude)
		if !out.OK {
			root.SetBytes(offset).SetOutcome("error")
			return res, fmt.Errorf("dfsc: read %v: failover %d found no replica: %s (after: %w)",
				file, res.Failovers, out.Reason, err)
		}
		c.met.Failovers.Inc()
		c.met.FailoverLatency.Observe(time.Since(start).Seconds())
		c.mu.Lock()
		c.stats.Failovers++
		c.mu.Unlock()
	}
}

// sleepJittered sleeps for base scaled uniformly into [0.5, 1.5), drawn
// from the client's seeded stream so chaos runs stay reproducible.
func (c *Client) sleepJittered(base time.Duration) {
	c.mu.Lock()
	f := c.src.Float64()
	c.mu.Unlock()
	time.Sleep(time.Duration(float64(base) * (0.5 + f)))
}
