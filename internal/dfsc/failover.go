// Mid-stream read failover: when the replica serving a read dies, the
// client re-resolves the replica set through the MM, excludes the failed
// RM, re-runs admission on the next-best bidder, and resumes the stream
// from the exact byte where the previous segment ended — bounded retries
// with jittered backoff between attempts. The running FNV-1a checksum is
// carried across segments, so the whole-file integrity check in the final
// FileEnd frame still holds even though the bytes arrived from several
// replicas.
package dfsc

import (
	"fmt"
	"io"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/wire"
)

// Streamer is the data plane the failover reader drives. The live
// deployment's Directory implements it (resolving rm to a pooled TCP
// client and streaming from offset); tests substitute fakes. sum is the
// running checksum state threaded across segments; implementations must
// report the bytes delivered even when they return an error — that is
// the next segment's resume point.
type Streamer interface {
	StreamAt(rm ids.RMID, file ids.FileID, req ids.RequestID, offset int64, w io.Writer, sum *uint64) (int64, error)
}

// FailoverConfig tunes ReadWithFailover.
type FailoverConfig struct {
	// MaxFailovers bounds how many times the read may move to another
	// replica after the first RM fails (0: the read fails on the first
	// stream error; negative is treated as 0).
	MaxFailovers int
	// Backoff is the base delay before each re-negotiation, jittered
	// uniformly over [0.5×, 1.5×] so synchronized clients do not stampede
	// the survivors. Zero defaults to 50ms.
	Backoff time.Duration
}

// ReadResult describes one (possibly multi-segment) failover read.
type ReadResult struct {
	// Bytes is the total delivered to the writer across all segments.
	Bytes int64
	// Failovers is how many times the stream moved to another replica.
	Failovers int
	// RMs lists the serving RMs in segment order (the first entry is the
	// original winner; each further entry is one failover).
	RMs []ids.RMID
}

// ReadWithFailover reads file through s, failing over to another replica
// when a segment dies mid-stream. Each segment rides a fresh QoS
// reservation negotiated with the failed RMs excluded, resumes at the
// exact byte offset the previous segment reached, and threads one running
// checksum so the final segment's whole-file verification covers every
// byte delivered. The reservation is released when its segment ends
// (successfully or not); releasing on a dead RM is a best-effort no-op.
func (c *Client) ReadWithFailover(s Streamer, file ids.FileID, w io.Writer, cfg FailoverConfig) (ReadResult, error) {
	if cfg.MaxFailovers < 0 {
		cfg.MaxFailovers = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	var res ReadResult
	exclude := make(map[ids.RMID]bool)
	sum := wire.ChecksumBasis

	out, release := c.AccessHeldExcluding(file, exclude)
	if !out.OK {
		return res, fmt.Errorf("dfsc: read %v: %s", file, out.Reason)
	}
	var offset int64
	for {
		res.RMs = append(res.RMs, out.RM)
		n, err := s.StreamAt(out.RM, file, out.Request, offset, w, &sum)
		offset += n
		res.Bytes = offset
		release() // best effort on a dead RM; idempotent
		if err == nil {
			return res, nil
		}
		exclude[out.RM] = true
		if res.Failovers >= cfg.MaxFailovers {
			return res, fmt.Errorf("dfsc: read %v: %d byte(s), %d failover(s) exhausted: %w",
				file, offset, res.Failovers, err)
		}
		res.Failovers++
		c.sleepJittered(cfg.Backoff)

		start := time.Now()
		out, release = c.AccessHeldExcluding(file, exclude)
		if !out.OK {
			return res, fmt.Errorf("dfsc: read %v: failover %d found no replica: %s (after: %w)",
				file, res.Failovers, out.Reason, err)
		}
		c.met.Failovers.Inc()
		c.met.FailoverLatency.Observe(time.Since(start).Seconds())
		c.mu.Lock()
		c.stats.Failovers++
		c.mu.Unlock()
	}
}

// sleepJittered sleeps for base scaled uniformly into [0.5, 1.5), drawn
// from the client's seeded stream so chaos runs stay reproducible.
func (c *Client) sleepJittered(base time.Duration) {
	c.mu.Lock()
	f := c.src.Float64()
	c.mu.Unlock()
	time.Sleep(time.Duration(float64(base) * (0.5 + f)))
}
