package metrics

import (
	"math"
	"sort"
)

// The dynamic replication mechanism exists "to solve the imbalance of
// bandwidth utilization" (paper §V); these helpers quantify that balance
// so experiments can report it alongside the paper's two headline
// criteria.

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// linear interpolation between closest ranks. It returns 0 for an empty
// input and does not modify the caller's slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CoefficientOfVariation returns stddev/mean of the values — the
// imbalance measure used for per-RM utilizations (0 = perfectly
// balanced). A zero mean yields 0.
func CoefficientOfVariation(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	if mean == 0 {
		return 0
	}
	variance := 0.0
	for _, v := range values {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(values))
	return math.Sqrt(variance) / mean
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) ∈ (0, 1]: 1
// when every RM carries an identical share, 1/n when one RM carries
// everything. An all-zero input returns 1 (vacuously fair).
func JainFairness(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// UtilizationShares converts per-RM results into the fraction of each RM's
// capacity that was allocated on average over the run — the input the
// balance measures above expect.
func UtilizationShares(rms []RMResult, horizonSecs float64) []float64 {
	out := make([]float64, len(rms))
	for i, r := range rms {
		out[i] = r.Snap.MeanUtilization(horizonSecs)
	}
	return out
}
