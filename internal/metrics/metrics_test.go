package metrics

import (
	"math"
	"strings"
	"testing"

	"dfsqos/internal/ledger"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

func TestSeriesAppendAndStats(t *testing.T) {
	s := &Series{Name: "rm1"}
	for i := 0; i < 10; i++ {
		s.Append(simT(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len %d", s.Len())
	}
	if s.Max() != 9 {
		t.Fatalf("max %v", s.Max())
	}
	if s.Mean() != 4.5 {
		t.Fatalf("mean %v", s.Mean())
	}
	empty := &Series{}
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestSeriesAppendOutOfOrderPanics(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(4, 1)
}

func TestDownsample(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Append(simT(i), float64(i))
	}
	pts := s.Downsample(10)
	if len(pts) != 11 { // 0,10,...,90 plus the final point 99
		t.Fatalf("downsampled to %d points", len(pts))
	}
	if pts[0].At != 0 || pts[len(pts)-1].At != 99 {
		t.Fatalf("endpoints not kept: %v .. %v", pts[0].At, pts[len(pts)-1].At)
	}
	if got := s.Downsample(1); len(got) != 100 {
		t.Fatalf("k=1 should copy all points, got %d", len(got))
	}
}

func TestSum(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 0; i < 5; i++ {
		a.Append(simT(i), 1)
		b.Append(simT(i), 2)
	}
	total := Sum("total", a, b)
	if total.Len() != 5 {
		t.Fatalf("sum len %d", total.Len())
	}
	for _, p := range total.Points {
		if p.Value != 3 {
			t.Fatalf("sum value %v, want 3", p.Value)
		}
	}
	if Sum("empty").Len() != 0 {
		t.Fatal("empty sum not empty")
	}
}

func TestSumMisalignedPanics(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Append(0, 1)
	a.Append(1, 1)
	b.Append(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned Sum did not panic")
		}
	}()
	Sum("bad", a, b)
}

func TestAggregateOverAllocate(t *testing.T) {
	rms := []RMResult{
		{ID: 1, Capacity: units.Mbps(18), Snap: ledger.Snapshot{OverBytes: 100, AssignedBytes: 1000}},
		{ID: 2, Capacity: units.Mbps(18), Snap: ledger.Snapshot{OverBytes: 0, AssignedBytes: 1000}},
	}
	// Aggregate = (100+0)/(1000+1000) = 5%.
	if got := AggregateOverAllocate(rms); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("aggregate R_OA = %v, want 0.05", got)
	}
	if got := AggregateOverAllocate(nil); got != 0 {
		t.Fatalf("empty aggregate = %v", got)
	}
	// Per-RM ratio comes straight from the snapshot.
	if got := rms[0].OverAllocateRatio(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("per-RM R_OA = %v, want 0.1", got)
	}
}

func TestFailRate(t *testing.T) {
	if got := FailRate(15, 100); got != 0.15 {
		t.Fatalf("FailRate = %v", got)
	}
	if got := FailRate(0, 0); got != 0 {
		t.Fatalf("FailRate(0,0) = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.09771); got != "9.771%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(0); got != "0.000%" {
		t.Fatalf("Pct(0) = %q", got)
	}
	if got := Pct(math.NaN()); got != "NaN" {
		t.Fatalf("Pct(NaN) = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("policy", "64", "128")
	tab.AddRow("(0,0,0)", "1.447%", "6.539%")
	tab.AddRow("(1,0,0)", "0.000%")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "(0,0,0)") || !strings.Contains(lines[2], "6.539%") {
		t.Fatalf("row line %q", lines[2])
	}
	// Columns align: the "64" header starts where "1.447%" starts.
	if strings.Index(lines[0], "64") != strings.Index(lines[2], "1.447%") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

// simT converts an int sample index to a virtual time.
func simT(i int) simtime.Time { return simtime.Time(i) }
