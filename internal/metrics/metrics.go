// Package metrics computes and renders the paper's evaluation criteria:
// the over-allocate ratio R_OA = S_OA/S_TA of the soft real-time scenario,
// the fail rate of the firm real-time scenario, and the bandwidth
// utilization time series behind Figs. 4-6.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"dfsqos/internal/ids"
	"dfsqos/internal/ledger"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// Point is one sample of a time series.
type Point struct {
	At    simtime.Time
	Value float64
}

// Series is an append-only time series (e.g. allocated bandwidth of one RM
// sampled every few seconds).
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample. Samples must arrive in non-decreasing time order.
func (s *Series) Append(at simtime.Time, v float64) {
	if n := len(s.Points); n > 0 && at < s.Points[n-1].At {
		panic(fmt.Sprintf("metrics: series %q sample at %v before %v", s.Name, at, s.Points[n-1].At))
	}
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Downsample returns every k-th point (k ≥ 1), always keeping the first
// and last, for compact figure output.
func (s *Series) Downsample(k int) []Point {
	if k <= 1 || len(s.Points) <= 2 {
		out := make([]Point, len(s.Points))
		copy(out, s.Points)
		return out
	}
	var out []Point
	for i := 0; i < len(s.Points); i += k {
		out = append(out, s.Points[i])
	}
	if last := s.Points[len(s.Points)-1]; out[len(out)-1].At != last.At {
		out = append(out, last)
	}
	return out
}

// Sum pointwise-adds series with identical sampling instants (used for the
// aggregated utilization of Fig. 5). It panics on mismatched shapes.
func Sum(name string, series ...*Series) *Series {
	if len(series) == 0 {
		return &Series{Name: name}
	}
	n := series[0].Len()
	out := &Series{Name: name, Points: make([]Point, n)}
	for i := 0; i < n; i++ {
		at := series[0].Points[i].At
		total := 0.0
		for _, s := range series {
			if s.Len() != n || s.Points[i].At != at {
				panic(fmt.Sprintf("metrics: Sum over misaligned series %q", s.Name))
			}
			total += s.Points[i].Value
		}
		out.Points[i] = Point{At: at, Value: total}
	}
	return out
}

// RMResult couples one RM's identity with its end-of-run accounting.
type RMResult struct {
	ID       ids.RMID
	Capacity units.BytesPerSec
	Snap     ledger.Snapshot
}

// OverAllocateRatio returns this RM's R_OA.
func (r RMResult) OverAllocateRatio() float64 { return r.Snap.OverAllocateRatio() }

// AggregateOverAllocate computes the run-level over-allocate ratio
// Σ S_OA / Σ S_TA across RMs, the "average over-allocate ratio" of
// Tables I and IV.
func AggregateOverAllocate(rms []RMResult) float64 {
	var oa, ta float64
	for _, r := range rms {
		oa += r.Snap.OverBytes
		ta += r.Snap.AssignedBytes
	}
	if ta <= 0 {
		return 0
	}
	return oa / ta
}

// FailRate returns failed/total, the firm real-time criterion.
func FailRate(failed, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return float64(failed) / float64(total)
}

// Pct formats a ratio as the paper prints it, e.g. "9.771%".
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%.3f%%", 100*v)
}

// Table renders aligned experiment tables in plain text.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment and a separator line.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
