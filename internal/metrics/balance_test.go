package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"dfsqos/internal/ledger"
	"dfsqos/internal/units"
)

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
		{-5, 1},  // clamped
		{150, 5}, // clamped
		{62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Original slice untouched.
	if vals[0] != 4 {
		t.Fatal("Percentile sorted the caller's slice")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("single-element percentile")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("uniform CV = %v, want 0", got)
	}
	// {0, 10}: mean 5, stddev 5 → CV 1.
	if got := CoefficientOfVariation([]float64{0, 10}); math.Abs(got-1) > 1e-12 {
		t.Errorf("CV = %v, want 1", got)
	}
	if CoefficientOfVariation(nil) != 0 || CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Error("degenerate CV not 0")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{3, 3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform fairness = %v, want 1", got)
	}
	// One RM carries everything over n=4 → 1/4.
	if got := JainFairness([]float64{8, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("concentrated fairness = %v, want 0.25", got)
	}
	if JainFairness(nil) != 1 || JainFairness([]float64{0, 0}) != 1 {
		t.Error("degenerate fairness not 1")
	}
}

func TestUtilizationShares(t *testing.T) {
	rms := []RMResult{
		{ID: 1, Capacity: units.BytesPerSec(10), Snap: ledger.Snapshot{Capacity: 10, AllocByteSecs: 500}},
		{ID: 2, Capacity: units.BytesPerSec(10), Snap: ledger.Snapshot{Capacity: 10, AllocByteSecs: 250}},
	}
	got := UtilizationShares(rms, 100)
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.25) > 1e-12 {
		t.Fatalf("shares = %v, want [0.5 0.25]", got)
	}
}

// Property: Jain's index is always in (0, 1] and is 1 only for (near-)
// uniform inputs; CV is non-negative.
func TestBalanceMeasureBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		j := JainFairness(vals)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		return CoefficientOfVariation(vals) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r)
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(vals, a), Percentile(vals, b)
		return pa <= pb+1e-9 && pa >= lo-1e-9 && pb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
