// Package qos names the two bandwidth-allocation scenarios of the paper's
// evaluation and their success criteria.
//
// Firm real-time allocation refuses to open a file when no RM can provide
// the required bandwidth — the criterion is the fail rate of opened files.
// Soft real-time allocation always allocates the requested bandwidth even
// past the disk's maximum — the criterion is the over-allocate ratio
// R_OA = S_OA / S_TA.
package qos

import "fmt"

// Scenario selects the allocation discipline.
type Scenario int

const (
	// Soft real-time: bandwidth is always allocated if requested, even
	// when the maximum accessible bandwidth is exceeded.
	Soft Scenario = iota
	// Firm real-time: the open fails when none of the RMs can provide
	// sufficient bandwidth; failed opens receive no allocation.
	Firm
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Soft:
		return "soft"
	case Firm:
		return "firm"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Parse parses "soft" or "firm".
func Parse(s string) (Scenario, error) {
	switch s {
	case "soft", "Soft":
		return Soft, nil
	case "firm", "Firm":
		return Firm, nil
	}
	return 0, fmt.Errorf("qos: unknown scenario %q", s)
}

// Criterion names the metric the paper reports for the scenario.
func (s Scenario) Criterion() string {
	if s == Firm {
		return "fail rate"
	}
	return "over-allocate ratio"
}

// IsFirm is a convenience predicate for admission-control call sites.
func (s Scenario) IsFirm() bool { return s == Firm }
