package qos

import "testing"

func TestString(t *testing.T) {
	if Soft.String() != "soft" || Firm.String() != "firm" {
		t.Fatalf("String: %v %v", Soft, Firm)
	}
	if got := Scenario(9).String(); got != "Scenario(9)" {
		t.Fatalf("unknown scenario renders %q", got)
	}
}

func TestParse(t *testing.T) {
	for in, want := range map[string]Scenario{"soft": Soft, "Soft": Soft, "firm": Firm, "Firm": Firm} {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := Parse("hard"); err == nil {
		t.Error("Parse accepted unknown scenario")
	}
}

func TestCriterion(t *testing.T) {
	if Soft.Criterion() != "over-allocate ratio" {
		t.Errorf("soft criterion = %q", Soft.Criterion())
	}
	if Firm.Criterion() != "fail rate" {
		t.Errorf("firm criterion = %q", Firm.Criterion())
	}
}

func TestIsFirm(t *testing.T) {
	if Soft.IsFirm() || !Firm.IsFirm() {
		t.Fatal("IsFirm wrong")
	}
}
