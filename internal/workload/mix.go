package workload

import (
	"fmt"

	"dfsqos/internal/rng"
)

// ClassShare is one component of a workload mix: a named class, the
// operation it performs, and its share of the request stream.
type ClassShare struct {
	// Class labels the component in reports ("video", "bulk-write",
	// "metadata", ...).
	Class string
	// Op is the operation every request in this class performs.
	Op Op
	// Fraction is the component's share of all requests, in (0, 1].
	Fraction float64
}

// Mix partitions a pattern's requests into labeled operation classes —
// the "bitrate video + bulk write + small-file metadata storm" blend the
// scenario engine drives. Shares must sum to at most 1; the remainder
// keeps the default class (OpRead, class "video").
type Mix struct {
	// Shares lists the non-default components.
	Shares []ClassShare
	// DefaultClass labels the unassigned remainder; empty means "video".
	DefaultClass string
}

// Validate reports the first problem with the mix, or nil.
func (m Mix) Validate() error {
	total := 0.0
	for i, s := range m.Shares {
		if s.Class == "" {
			return fmt.Errorf("workload: mix share %d has empty class", i)
		}
		if !s.Op.Valid() {
			return fmt.Errorf("workload: mix share %q has invalid op %d", s.Class, s.Op)
		}
		if s.Fraction <= 0 || s.Fraction > 1 {
			return fmt.Errorf("workload: mix share %q fraction %v outside (0,1]", s.Class, s.Fraction)
		}
		total += s.Fraction
	}
	if total > 1+1e-9 {
		return fmt.Errorf("workload: mix fractions sum to %v > 1", total)
	}
	return nil
}

// ApplyMix assigns each request a class and operation in place, drawing
// from one named stream ("workload/mix") walked in arrival order so the
// partition is deterministic for a given source. Requests not claimed by
// any share keep OpRead and get the default class label.
func ApplyMix(p *Pattern, m Mix, src *rng.Source) error {
	if err := m.Validate(); err != nil {
		return err
	}
	def := m.DefaultClass
	if def == "" {
		def = "video"
	}
	coin := src.Split("workload/mix")
	for i := range p.Requests {
		u := coin.Float64()
		acc := 0.0
		p.Requests[i].Op = OpRead
		p.Requests[i].Class = def
		for _, s := range m.Shares {
			acc += s.Fraction
			if u < acc {
				p.Requests[i].Op = s.Op
				p.Requests[i].Class = s.Class
				break
			}
		}
	}
	return nil
}
