package workload

import (
	"fmt"
	"sort"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

// Burst generalizes FlashCrowd into a windowed event: between AtSec and
// AtSec+DurationSec a fraction of the base traffic converges on one
// target file, and optionally a surge of extra short-lived users joins
// the system for the window's duration (the flash crowd that is new
// arrivals, not just redirected regulars). A zero-duration window is a
// valid no-op: it covers no requests and admits no surge arrivals.
type Burst struct {
	// AtSec is the window's start.
	AtSec float64
	// DurationSec is the window's length; requests in [AtSec,
	// AtSec+DurationSec) are affected. Zero makes the burst a no-op.
	DurationSec float64
	// Fraction of in-window base requests redirected to Target, in [0, 1]
	// (0: no redirection, surge only).
	Fraction float64
	// Target is the file the crowd converges on. NoneFile picks the file
	// at popularity rank ~N/2 (unpopular before the crowd), as FlashCrowd
	// does.
	Target ids.FileID
	// SurgeUsers is the number of extra temporary users active only
	// during the window. It may exceed the base population — a crowd
	// larger than the resident user base is exactly the case worth
	// simulating.
	SurgeUsers int
	// SurgeMeanArrivalSec is each surge user's mean inter-arrival time;
	// 0 inherits the base pattern's MeanArrivalSec.
	SurgeMeanArrivalSec float64
}

// Validate reports the first problem with the parameters, or nil.
func (b Burst) Validate() error {
	switch {
	case b.AtSec < 0:
		return fmt.Errorf("workload: burst at negative time %v", b.AtSec)
	case b.DurationSec < 0:
		return fmt.Errorf("workload: burst with negative duration %v", b.DurationSec)
	case b.Fraction < 0 || b.Fraction > 1:
		return fmt.Errorf("workload: burst fraction %v outside [0,1]", b.Fraction)
	case b.SurgeUsers < 0:
		return fmt.Errorf("workload: burst with %d surge users", b.SurgeUsers)
	case b.SurgeMeanArrivalSec < 0:
		return fmt.Errorf("workload: burst surge mean arrival %v negative", b.SurgeMeanArrivalSec)
	}
	return nil
}

// ApplyBursts rewrites the pattern in place, applying each burst in
// order: in-window base requests are redirected to the burst's target
// with probability Fraction, and each surge user contributes NET
// arrivals confined to the window, targeting the burst's target with
// probability Fraction and the popularity law otherwise. Surge users get
// user IDs above the base population (stacked across bursts) and are
// spread round-robin over the DFSCs like resident users. Requests are
// re-sorted by arrival time before returning.
//
// Each burst draws from its own named streams ("workload/burst<i>/..."),
// so two patterns differing only in one burst's parameters share all
// other randomness. It returns the resolved target files, one per burst.
func ApplyBursts(p *Pattern, cat *catalog.Catalog, bursts []Burst, src *rng.Source) ([]ids.FileID, error) {
	targets := make([]ids.FileID, len(bursts))
	nextUser := ids.UserID(p.Config.NumUsers)
	for i, b := range bursts {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		target := b.Target
		if !target.Valid() {
			target = ids.FileID(cat.Len() / 2)
		}
		if int(target) >= cat.Len() {
			return nil, fmt.Errorf("workload: burst %d target %v beyond catalog", i, target)
		}
		targets[i] = target
		end := b.AtSec + b.DurationSec

		if b.Fraction > 0 && b.DurationSec > 0 {
			redirect := src.Split(fmt.Sprintf("workload/burst%d/redirect", i))
			// Requests are time-sorted on entry; locate the window once.
			start := sort.Search(len(p.Requests), func(j int) bool {
				return p.Requests[j].AtSec >= b.AtSec
			})
			for j := start; j < len(p.Requests) && p.Requests[j].AtSec < end; j++ {
				if redirect.Float64() < b.Fraction {
					p.Requests[j].File = target
				}
			}
		}

		mean := b.SurgeMeanArrivalSec
		if mean == 0 {
			mean = p.Config.MeanArrivalSec
		}
		for u := 0; u < b.SurgeUsers; u++ {
			user := nextUser
			nextUser++
			arr := src.Split(fmt.Sprintf("workload/burst%d/surge%d/arrivals", i, u))
			files := src.Split(fmt.Sprintf("workload/burst%d/surge%d/files", i, u))
			t := b.AtSec + arr.Exp(mean)
			for t < end && t <= p.Config.HorizonSec {
				file := target
				if files.Float64() >= b.Fraction {
					file = cat.SamplePopular(files)
				}
				p.Requests = append(p.Requests, Request{
					AtSec: t,
					User:  user,
					DFSC:  ids.DFSCID(int(user) % p.Config.NumDFSC),
					File:  file,
				})
				t += arr.Exp(mean)
			}
		}
	}
	sort.SliceStable(p.Requests, func(i, j int) bool { return p.Requests[i].AtSec < p.Requests[j].AtSec })
	return targets, nil
}
