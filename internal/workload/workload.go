// Package workload generates the evaluation's multi-user access pattern:
// each simulated user issues requests whose inter-arrival times follow the
// negative exponential distribution (NET) f(x) = −β·ln U with U ∈ (0,1) and
// cumulative mean arrival time β (paper: 300 s), each request targeting a
// file drawn from the catalog's popularity law so "files with higher
// popularity will be accessed more times in a fixed time interval". Users
// are spread round-robin across the DFSCs, mirroring the request scheduler
// of the paper's testbed, and the merged request stream is sorted by
// arrival timestamp.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

// Op is the operation class of one request. The zero value is OpRead, so
// patterns written before operations existed load unchanged.
type Op int8

// The operation kinds a scenario mix can assign. OpRead is a streaming
// read (the paper's only operation); OpWrite is a bulk ingest (dfsc
// Store); OpMeta is a metadata-only probe that exercises the MM lookup
// path without reserving bandwidth — the "small-file metadata storm"
// component of the mixed scenarios.
const (
	OpRead Op = iota
	OpWrite
	OpMeta
	numOps // sentinel for validation
)

// String names the operation for reports and JSON-adjacent output.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMeta:
		return "meta"
	}
	return fmt.Sprintf("op(%d)", int8(o))
}

// Valid reports whether o is a known operation.
func (o Op) Valid() bool { return o >= OpRead && o < numOps }

// Request is one file access in the pattern.
type Request struct {
	// AtSec is the arrival timestamp in seconds from simulation start.
	AtSec float64 `json:"at"`
	// User is the issuing user.
	User ids.UserID `json:"user"`
	// DFSC is the client the user is attached to.
	DFSC ids.DFSCID `json:"dfsc"`
	// File is the requested file.
	File ids.FileID `json:"file"`
	// Op is the operation kind (absent in JSON = OpRead, the paper's
	// streaming access).
	Op Op `json:"op,omitempty"`
	// Class optionally labels the request's workload class ("video",
	// "bulk-write", ...) so scenario reports can break latency out per
	// class. Empty means the default class of the request's Op.
	Class string `json:"class,omitempty"`
}

// Config parameterizes pattern generation.
type Config struct {
	// NumUsers is the number of concurrent users (paper: 64-256).
	NumUsers int
	// NumDFSC is the number of clients users are spread over (paper: 8).
	NumDFSC int
	// MeanArrivalSec is β, the per-user mean inter-arrival time
	// (paper: 300 s).
	MeanArrivalSec float64
	// HorizonSec is the pattern length (paper: 2 h = 7200 s).
	HorizonSec float64
}

// DefaultConfig returns the paper's workload parameters at 256 users.
func DefaultConfig() Config {
	return Config{NumUsers: 256, NumDFSC: 8, MeanArrivalSec: 300, HorizonSec: 7200}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("workload: NumUsers must be positive, got %d", c.NumUsers)
	case c.NumDFSC <= 0:
		return fmt.Errorf("workload: NumDFSC must be positive, got %d", c.NumDFSC)
	case c.MeanArrivalSec <= 0:
		return fmt.Errorf("workload: MeanArrivalSec must be positive, got %v", c.MeanArrivalSec)
	case c.HorizonSec <= 0:
		return fmt.Errorf("workload: HorizonSec must be positive, got %v", c.HorizonSec)
	}
	return nil
}

// Pattern is a complete access pattern, sorted by arrival time.
type Pattern struct {
	Config   Config    `json:"config"`
	Requests []Request `json:"requests"`
}

// Generate builds the access pattern for cfg over the given catalog.
// Each user gets independent sub-streams for arrivals and file choice, so
// adding users never perturbs existing users' request sequences.
func Generate(cfg Config, cat *catalog.Catalog, src *rng.Source) (*Pattern, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var reqs []Request
	for u := 0; u < cfg.NumUsers; u++ {
		user := ids.UserID(u)
		dfsc := ids.DFSCID(u % cfg.NumDFSC)
		arr := src.Split(fmt.Sprintf("workload/user%d/arrivals", u))
		files := src.Split(fmt.Sprintf("workload/user%d/files", u))
		t := arr.Exp(cfg.MeanArrivalSec)
		for t <= cfg.HorizonSec {
			reqs = append(reqs, Request{
				AtSec: t,
				User:  user,
				DFSC:  dfsc,
				File:  cat.SamplePopular(files),
			})
			t += arr.Exp(cfg.MeanArrivalSec)
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].AtSec < reqs[j].AtSec })
	return &Pattern{Config: cfg, Requests: reqs}, nil
}

// Len returns the number of requests.
func (p *Pattern) Len() int { return len(p.Requests) }

// Save writes the pattern as JSON.
func (p *Pattern) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// Load reads a pattern previously written by Save and validates it.
func Load(r io.Reader) (*Pattern, error) {
	var p Pattern
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("workload: decoding pattern: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks pattern invariants: config validity, sortedness and
// timestamps within the horizon.
func (p *Pattern) Validate() error {
	if err := p.Config.Validate(); err != nil {
		return err
	}
	prev := 0.0
	for i, r := range p.Requests {
		if r.AtSec < prev {
			return fmt.Errorf("workload: request %d out of order (%.3f after %.3f)", i, r.AtSec, prev)
		}
		if r.AtSec > p.Config.HorizonSec {
			return fmt.Errorf("workload: request %d beyond horizon (%.3f > %.3f)", i, r.AtSec, p.Config.HorizonSec)
		}
		if int(r.DFSC) < 0 || int(r.DFSC) >= p.Config.NumDFSC {
			return fmt.Errorf("workload: request %d has invalid DFSC %d", i, r.DFSC)
		}
		if !r.File.Valid() {
			return fmt.Errorf("workload: request %d has invalid file", i)
		}
		if !r.Op.Valid() {
			return fmt.Errorf("workload: request %d has invalid op %d", i, r.Op)
		}
		prev = r.AtSec
	}
	return nil
}

// FileCounts returns how many requests target each file (popularity audit).
func (p *Pattern) FileCounts() map[ids.FileID]int {
	out := make(map[ids.FileID]int)
	for _, r := range p.Requests {
		out[r.File]++
	}
	return out
}
