package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 100
	cat, err := catalog.Generate(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumUsers: 0, NumDFSC: 8, MeanArrivalSec: 300, HorizonSec: 7200},
		{NumUsers: 64, NumDFSC: 0, MeanArrivalSec: 300, HorizonSec: 7200},
		{NumUsers: 64, NumDFSC: 8, MeanArrivalSec: 0, HorizonSec: 7200},
		{NumUsers: 64, NumDFSC: 8, MeanArrivalSec: 300, HorizonSec: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestGenerateSortedWithinHorizon(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 32, NumDFSC: 4, MeanArrivalSec: 100, HorizonSec: 3600}
	p, err := Generate(cfg, cat, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 {
		t.Fatal("empty pattern")
	}
	// Expected requests ≈ users × horizon / mean = 32 × 36 = 1152.
	if p.Len() < 900 || p.Len() > 1400 {
		t.Fatalf("pattern has %d requests, expected ~1152", p.Len())
	}
}

func TestGenerateDeterministicAndUserStable(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 16, NumDFSC: 4, MeanArrivalSec: 100, HorizonSec: 1000}
	a, _ := Generate(cfg, cat, rng.New(5))
	b, _ := Generate(cfg, cat, rng.New(5))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	// Adding users must not change existing users' requests.
	cfg2 := cfg
	cfg2.NumUsers = 32
	c, _ := Generate(cfg2, cat, rng.New(5))
	extract := func(p *Pattern, u ids.UserID) []Request {
		var out []Request
		for _, r := range p.Requests {
			if r.User == u {
				out = append(out, r)
			}
		}
		return out
	}
	for u := ids.UserID(0); u < 16; u++ {
		ra, rc := extract(a, u), extract(c, u)
		if len(ra) != len(rc) {
			t.Fatalf("user %v request count changed with more users", u)
		}
		for i := range ra {
			if ra[i] != rc[i] {
				t.Fatalf("user %v request %d changed with more users", u, i)
			}
		}
	}
}

func TestUsersRoundRobinOverDFSCs(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 16, NumDFSC: 4, MeanArrivalSec: 50, HorizonSec: 1000}
	p, _ := Generate(cfg, cat, rng.New(2))
	for _, r := range p.Requests {
		if want := ids.DFSCID(int(r.User) % 4); r.DFSC != want {
			t.Fatalf("user %v mapped to %v, want %v", r.User, r.DFSC, want)
		}
	}
}

func TestInterArrivalMean(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 200, NumDFSC: 8, MeanArrivalSec: 300, HorizonSec: 72000}
	p, _ := Generate(cfg, cat, rng.New(3))
	// Per-user arrival count over the horizon: horizon/mean = 240.
	perUser := map[ids.UserID]int{}
	for _, r := range p.Requests {
		perUser[r.User]++
	}
	total := 0
	for _, n := range perUser {
		total += n
	}
	mean := float64(total) / 200
	if math.Abs(mean-240) > 15 {
		t.Fatalf("mean requests per user = %v, want ~240", mean)
	}
}

func TestPopularFilesDominate(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 200, NumDFSC: 8, MeanArrivalSec: 10, HorizonSec: 3600}
	p, _ := Generate(cfg, cat, rng.New(4))
	counts := p.FileCounts()
	top, tail := 0, 0
	for f, n := range counts {
		if f < 10 {
			top += n
		} else if f >= 90 {
			tail += n
		}
	}
	if top <= 3*tail {
		t.Fatalf("top-10 files got %d requests vs tail-10 %d; popularity law broken", top, tail)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	cfg := Config{NumUsers: 8, NumDFSC: 2, MeanArrivalSec: 100, HorizonSec: 500}
	p, _ := Generate(cfg, cat, rng.New(6))
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() || q.Config != p.Config {
		t.Fatalf("round trip mismatch: %d vs %d requests", q.Len(), p.Len())
	}
	for i := range p.Requests {
		if p.Requests[i] != q.Requests[i] {
			t.Fatalf("request %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON but out-of-order requests must fail validation.
	bad := `{"config":{"NumUsers":1,"NumDFSC":1,"MeanArrivalSec":1,"HorizonSec":100},
	 "requests":[{"at":50,"user":0,"dfsc":0,"file":1},{"at":10,"user":0,"dfsc":0,"file":2}]}`
	if _, err := Load(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("out-of-order pattern accepted")
	}
}

func TestValidateCatchesBadRequests(t *testing.T) {
	cfg := Config{NumUsers: 1, NumDFSC: 1, MeanArrivalSec: 1, HorizonSec: 100}
	cases := []Pattern{
		{Config: cfg, Requests: []Request{{AtSec: 200, File: 1}}},           // beyond horizon
		{Config: cfg, Requests: []Request{{AtSec: 10, DFSC: 5, File: 1}}},   // bad DFSC
		{Config: cfg, Requests: []Request{{AtSec: 10, File: ids.NoneFile}}}, // bad file
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid pattern accepted", i)
		}
	}
}

// Property: generated patterns always validate, for arbitrary seeds and
// small configs.
func TestGeneratedPatternsValidProperty(t *testing.T) {
	cat := testCatalog(t)
	f := func(seed uint64, usersRaw, dfscRaw uint8) bool {
		cfg := Config{
			NumUsers:       int(usersRaw%32) + 1,
			NumDFSC:        int(dfscRaw%8) + 1,
			MeanArrivalSec: 50,
			HorizonSec:     500,
		}
		p, err := Generate(cfg, cat, rng.New(seed))
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
