package workload

import (
	"fmt"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

// ApplyZipf rewrites every request's file choice in place, re-drawing the
// targets from a Zipf law with the given skew over the catalog's
// popularity ranks (rank == file ID). It models a hotter (or flatter)
// popularity regime than the catalog was generated with — the "Zipfian
// hot-file skew" scenario — without regenerating arrivals, so two
// patterns differing only in skew share every timestamp.
//
// The redraw consumes a single named stream ("workload/zipf") walked in
// arrival order, so the result is deterministic for a given source and
// independent of the per-user streams the base pattern used.
func ApplyZipf(p *Pattern, cat *catalog.Catalog, skew float64, src *rng.Source) error {
	if skew <= 0 {
		return fmt.Errorf("workload: ApplyZipf skew %v must be positive", skew)
	}
	if cat.Len() == 0 {
		return fmt.Errorf("workload: ApplyZipf over empty catalog")
	}
	z := rng.NewZipf(src.Split("workload/zipf"), cat.Len(), skew)
	for i := range p.Requests {
		p.Requests[i].File = ids.FileID(z.Draw())
	}
	return nil
}
