package workload

import (
	"fmt"
	"math"

	"dfsqos/internal/rng"
)

// Diurnal modulates a pattern's request rate with a sinusoidal tide, the
// day/night load swing a planet-scale service sees. The base pattern's
// homogeneous NET arrivals are thinned (Lewis–Shedler): a request at time
// t survives with probability
//
//	(1 + Amplitude·cos(2π·(t−PeakSec)/PeriodSec)) / (1 + Amplitude)
//
// which yields a non-homogeneous Poisson process whose rate peaks at
// PeakSec (+ k·PeriodSec) and bottoms out half a period later. The
// surviving request count shrinks by roughly 1/(1+Amplitude); size the
// base population accordingly.
type Diurnal struct {
	// PeriodSec is the tide's full cycle length (a scenario horizon
	// usually spans one or two cycles).
	PeriodSec float64
	// Amplitude in [0, 1] is the swing: 0 keeps the homogeneous stream,
	// 1 silences the trough entirely.
	Amplitude float64
	// PeakSec places the crest of the first cycle.
	PeakSec float64
}

// Validate reports the first problem with the parameters, or nil.
func (d Diurnal) Validate() error {
	if d.PeriodSec <= 0 {
		return fmt.Errorf("workload: diurnal period %v must be positive", d.PeriodSec)
	}
	if d.Amplitude < 0 || d.Amplitude > 1 {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0,1]", d.Amplitude)
	}
	if math.IsNaN(d.PeakSec) {
		return fmt.Errorf("workload: diurnal peak is NaN")
	}
	return nil
}

// ApplyDiurnal thins the pattern in place per d, drawing the survival
// coin-flips from a single named stream ("workload/diurnal") walked in
// arrival order — deterministic for a given source, independent of the
// base pattern's per-user streams.
func ApplyDiurnal(p *Pattern, d Diurnal, src *rng.Source) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Amplitude == 0 {
		return nil
	}
	coin := src.Split("workload/diurnal")
	kept := p.Requests[:0]
	for _, r := range p.Requests {
		phase := 2 * math.Pi * (r.AtSec - d.PeakSec) / d.PeriodSec
		keep := (1 + d.Amplitude*math.Cos(phase)) / (1 + d.Amplitude)
		if coin.Float64() < keep {
			kept = append(kept, r)
		}
	}
	p.Requests = kept
	return nil
}
