package workload

import (
	"math"
	"reflect"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

func basePattern(t *testing.T, seed uint64) *Pattern {
	t.Helper()
	cfg := Config{NumUsers: 64, NumDFSC: 8, MeanArrivalSec: 60, HorizonSec: 1200}
	p, err := Generate(cfg, testCatalog(t), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyZipfDeterministicUnderSeed(t *testing.T) {
	cat := testCatalog(t)
	p1 := basePattern(t, 5)
	p2 := basePattern(t, 5)
	if err := ApplyZipf(p1, cat, 1.2, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	if err := ApplyZipf(p2, cat, 1.2, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Requests, p2.Requests) {
		t.Fatal("same seed produced different Zipf redraws")
	}
	p3 := basePattern(t, 5)
	if err := ApplyZipf(p3, cat, 1.2, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Requests, p3.Requests) {
		t.Fatal("different seeds produced identical Zipf redraws")
	}
	// Arrivals must be untouched: only file choices are redrawn.
	for i := range p1.Requests {
		if p1.Requests[i].AtSec != p3.Requests[i].AtSec {
			t.Fatal("Zipf redraw perturbed arrival timestamps")
		}
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyZipfSkewConcentratesOnLowRanks(t *testing.T) {
	cat := testCatalog(t)
	p := basePattern(t, 5)
	if err := ApplyZipf(p, cat, 2.0, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	top := 0
	for _, r := range p.Requests {
		if int(r.File) < 10 {
			top++
		}
	}
	// At skew 2 over 100 files, the top-10 ranks hold >90% of the mass.
	if frac := float64(top) / float64(len(p.Requests)); frac < 0.7 {
		t.Fatalf("top-10 files drew only %.2f of requests under skew 2", frac)
	}
	if err := ApplyZipf(p, cat, 0, rng.New(1)); err == nil {
		t.Fatal("non-positive skew accepted")
	}
}

func TestApplyDiurnalDeterministicUnderSeed(t *testing.T) {
	d := Diurnal{PeriodSec: 600, Amplitude: 0.8, PeakSec: 150}
	p1 := basePattern(t, 7)
	p2 := basePattern(t, 7)
	if err := ApplyDiurnal(p1, d, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDiurnal(p2, d, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Requests, p2.Requests) {
		t.Fatal("same seed produced different diurnal thinning")
	}
	p3 := basePattern(t, 7)
	if err := ApplyDiurnal(p3, d, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Requests, p3.Requests) {
		t.Fatal("different seeds produced identical diurnal thinning")
	}
}

func TestApplyDiurnalShapesRate(t *testing.T) {
	p := basePattern(t, 9)
	before := p.Len()
	d := Diurnal{PeriodSec: 1200, Amplitude: 1, PeakSec: 300}
	if err := ApplyDiurnal(p, d, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Thinning keeps ~1/(1+A) = half of the requests.
	kept := float64(p.Len()) / float64(before)
	if math.Abs(kept-0.5) > 0.1 {
		t.Fatalf("amplitude-1 tide kept %.2f of requests, want ~0.5", kept)
	}
	// The crest quarter-period must be denser than the trough: count
	// requests near the peak (300±150) vs the trough (900±150).
	peak, trough := 0, 0
	for _, r := range p.Requests {
		switch {
		case r.AtSec >= 150 && r.AtSec < 450:
			peak++
		case r.AtSec >= 750 && r.AtSec < 1050:
			trough++
		}
	}
	if peak <= 2*trough {
		t.Fatalf("peak window has %d requests vs trough %d, want >2x", peak, trough)
	}
	// Amplitude 0 is a no-op.
	p2 := basePattern(t, 9)
	n := p2.Len()
	if err := ApplyDiurnal(p2, Diurnal{PeriodSec: 600}, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if p2.Len() != n {
		t.Fatal("amplitude-0 tide modified the pattern")
	}
}

func TestBurstZeroDurationIsNoOp(t *testing.T) {
	cat := testCatalog(t)
	p := basePattern(t, 13)
	orig := append([]Request(nil), p.Requests...)
	b := Burst{AtSec: 600, DurationSec: 0, Fraction: 1, SurgeUsers: 50}
	if err := b.Validate(); err != nil {
		t.Fatalf("zero-duration burst rejected: %v", err)
	}
	if _, err := ApplyBursts(p, cat, []Burst{b}, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, p.Requests) {
		t.Fatal("zero-duration burst modified the pattern")
	}
}

func TestBurstSurgeLargerThanPopulation(t *testing.T) {
	cat := testCatalog(t)
	p := basePattern(t, 13)
	base := p.Len()
	// A surge 4x the resident population, confined to a half-horizon
	// window, with fresh user IDs stacked above the base range.
	b := Burst{AtSec: 300, DurationSec: 600, Fraction: 0.5, SurgeUsers: 4 * p.Config.NumUsers, SurgeMeanArrivalSec: 60}
	targets, err := ApplyBursts(p, cat, []Burst{b}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() <= base {
		t.Fatal("surge added no requests")
	}
	surge := 0
	for _, r := range p.Requests {
		if int(r.User) >= p.Config.NumUsers {
			surge++
			if r.AtSec < b.AtSec || r.AtSec >= b.AtSec+b.DurationSec {
				t.Fatalf("surge request at %.1f outside window [%v, %v)", r.AtSec, b.AtSec, b.AtSec+b.DurationSec)
			}
			if int(r.User) >= p.Config.NumUsers+b.SurgeUsers {
				t.Fatalf("surge user %d beyond the declared surge range", r.User)
			}
		}
	}
	// ~4x population at the base arrival rate over half the horizon
	// should contribute on the order of the base request count.
	if surge == 0 {
		t.Fatal("no surge users issued requests")
	}
	if len(targets) != 1 || !targets[0].Valid() {
		t.Fatalf("unresolved burst target %v", targets)
	}
	// Negative surge population must be rejected.
	if err := (Burst{AtSec: 0, DurationSec: 1, SurgeUsers: -1}).Validate(); err == nil {
		t.Fatal("negative surge population accepted")
	}
}

func TestBurstRedirectsWindowTraffic(t *testing.T) {
	cat := testCatalog(t)
	p := basePattern(t, 17)
	target := ids.FileID(42)
	b := Burst{AtSec: 0, DurationSec: 1200, Fraction: 1, Target: target}
	if _, err := ApplyBursts(p, cat, []Burst{b}, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Requests {
		if r.File != target {
			t.Fatalf("fraction-1 burst left request on file %v", r.File)
		}
	}
}

func TestApplyMixPartitionsAndLabels(t *testing.T) {
	m := Mix{Shares: []ClassShare{
		{Class: "bulk-write", Op: OpWrite, Fraction: 0.2},
		{Class: "metadata", Op: OpMeta, Fraction: 0.3},
	}}
	p1 := basePattern(t, 19)
	p2 := basePattern(t, 19)
	if err := ApplyMix(p1, m, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	if err := ApplyMix(p2, m, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Requests, p2.Requests) {
		t.Fatal("same seed produced different mixes")
	}
	counts := map[string]int{}
	for _, r := range p1.Requests {
		counts[r.Class]++
		switch r.Class {
		case "bulk-write":
			if r.Op != OpWrite {
				t.Fatal("bulk-write labeled request is not a write")
			}
		case "metadata":
			if r.Op != OpMeta {
				t.Fatal("metadata labeled request is not a probe")
			}
		case "video":
			if r.Op != OpRead {
				t.Fatal("default class is not a read")
			}
		default:
			t.Fatalf("unexpected class %q", r.Class)
		}
	}
	n := float64(p1.Len())
	if w := float64(counts["bulk-write"]) / n; math.Abs(w-0.2) > 0.05 {
		t.Fatalf("bulk-write share %.3f, want ~0.2", w)
	}
	if m := float64(counts["metadata"]) / n; math.Abs(m-0.3) > 0.05 {
		t.Fatalf("metadata share %.3f, want ~0.3", m)
	}
	// Over-committed shares must be rejected.
	bad := Mix{Shares: []ClassShare{{Class: "a", Op: OpRead, Fraction: 0.7}, {Class: "b", Op: OpRead, Fraction: 0.5}}}
	if err := ApplyMix(p1, bad, rng.New(6)); err == nil {
		t.Fatal("mix with fractions summing to 1.2 accepted")
	}
}
