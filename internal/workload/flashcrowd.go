package workload

import (
	"fmt"
	"sort"

	"dfsqos/internal/catalog"
	"dfsqos/internal/ids"
	"dfsqos/internal/rng"
)

// FlashCrowd models the paper's burst concern — "a burst of resource
// requirements may lose their QoS assurance" (§III-B) — as a sudden
// popularity shift: from AtSec onward, a fraction of all requests is
// redirected to a single (previously unpopular) target file, the way a
// newly viral video behaves. Static replication has exactly 3 replicas of
// the target to absorb the surge; dynamic replication can spread it.
type FlashCrowd struct {
	// AtSec is when the crowd arrives.
	AtSec float64
	// Target is the file the crowd converges on. NoneFile picks the file
	// at popularity rank ~N/2 (unpopular before the crowd) automatically.
	Target ids.FileID
	// Fraction of post-AtSec requests redirected to Target (0, 1].
	Fraction float64
}

// Validate reports the first problem with the parameters, or nil.
func (f FlashCrowd) Validate() error {
	if f.AtSec < 0 {
		return fmt.Errorf("workload: flash crowd at negative time %v", f.AtSec)
	}
	if f.Fraction <= 0 || f.Fraction > 1 {
		return fmt.Errorf("workload: flash crowd fraction %v outside (0,1]", f.Fraction)
	}
	return nil
}

// ApplyFlashCrowd rewrites a generated pattern in place: each request at
// or after fc.AtSec is redirected to the target with probability
// fc.Fraction. It returns the chosen target. The redirection draws from
// its own named stream, so two patterns differing only in fc share all
// other randomness.
func ApplyFlashCrowd(p *Pattern, cat *catalog.Catalog, fc FlashCrowd, src *rng.Source) (ids.FileID, error) {
	if err := fc.Validate(); err != nil {
		return ids.NoneFile, err
	}
	target := fc.Target
	if !target.Valid() {
		target = ids.FileID(cat.Len() / 2)
	}
	if int(target) >= cat.Len() {
		return ids.NoneFile, fmt.Errorf("workload: flash crowd target %v beyond catalog", target)
	}
	redirect := src.Split("workload/flashcrowd")
	// Requests are time-sorted; find the crowd's onset once.
	start := sort.Search(len(p.Requests), func(i int) bool {
		return p.Requests[i].AtSec >= fc.AtSec
	})
	for i := start; i < len(p.Requests); i++ {
		if redirect.Float64() < fc.Fraction {
			p.Requests[i].File = target
		}
	}
	return target, nil
}
