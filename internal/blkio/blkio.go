// Package blkio is the stand-in for the cgroups-blkio throttling mechanism
// the paper uses to split one physical disk's bandwidth among Xen VMs
// (§III-A2): blkio.throttle.read_bps_device / write_bps_device "constrain
// the upper bound of the disk read/write bandwidth acquired by the
// designated process".
//
// Each named group owns two token buckets (read and write) refilled at the
// configured bytes-per-second rate, exactly the upper-bound semantics of
// blkio.throttle. Live-mode virtual disks (package vdisk) route every I/O
// through their group, which is how an RM's sustained bandwidth is enforced
// in the TCP deployment.
package blkio

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dfsqos/internal/units"
)

// Op selects the read or write limit of a group.
type Op int

const (
	// Read is throttled by the group's read_bps limit.
	Read Op = iota
	// Write is throttled by the group's write_bps limit.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// bucket is a token bucket refilled continuously at rate tokens/second,
// holding at most burst tokens.
type bucket struct {
	rate   float64 // tokens (bytes) per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate units.BytesPerSec, now time.Time) *bucket {
	b := &bucket{rate: float64(rate), last: now}
	// One second of burst keeps small I/Os smooth without letting the
	// long-run rate exceed the configured bps, like blkio's slice logic.
	b.burst = b.rate
	b.tokens = b.burst
	return b
}

// reserve takes n tokens and returns how long the caller must wait until
// the reservation is honoured. It never refuses: blkio.throttle delays
// I/O, it does not fail it.
func (b *bucket) reserve(n float64, now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0 // unlimited
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// Group is one throttled entity (one VM's block device in the paper).
type Group struct {
	name string
	mu   sync.Mutex
	r, w *bucket
}

// Controller manages the throttle groups of one physical disk.
type Controller struct {
	mu     sync.Mutex
	groups map[string]*Group
	clock  func() time.Time
	sleep  func(time.Duration)
}

// Option customizes a Controller (used by tests to fake time).
type Option func(*Controller)

// WithClock substitutes the wall clock.
func WithClock(clock func() time.Time) Option {
	return func(c *Controller) { c.clock = clock }
}

// WithSleep substitutes the sleeping function.
func WithSleep(sleep func(time.Duration)) Option {
	return func(c *Controller) { c.sleep = sleep }
}

// NewController returns an empty controller.
func NewController(opts ...Option) *Controller {
	c := &Controller{
		groups: make(map[string]*Group),
		clock:  time.Now,
		sleep:  time.Sleep,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SetGroup creates or reconfigures a group with the given read/write
// byte-rate limits (0 = unlimited), mirroring writes to
// blkio.throttle.{read,write}_bps_device.
func (c *Controller) SetGroup(name string, readBps, writeBps units.BytesPerSec) (*Group, error) {
	if name == "" {
		return nil, fmt.Errorf("blkio: empty group name")
	}
	if readBps < 0 || writeBps < 0 {
		return nil, fmt.Errorf("blkio: negative limit for group %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	g, ok := c.groups[name]
	if !ok {
		g = &Group{name: name}
		c.groups[name] = g
	}
	g.mu.Lock()
	g.r = newBucket(readBps, now)
	g.w = newBucket(writeBps, now)
	g.mu.Unlock()
	return g, nil
}

// Group looks up a group by name.
func (c *Controller) Group(name string) (*Group, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[name]
	return g, ok
}

// Groups returns the group names (diagnostics).
func (c *Controller) Groups() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.groups))
	for name := range c.groups {
		out = append(out, name)
	}
	return out
}

// Reserve accounts n bytes of the given op against the group and returns
// the delay the caller must observe. It is the non-blocking primitive
// behind Wait; tests drive it with a fake clock.
func (c *Controller) Reserve(g *Group, op Op, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	now := c.clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.r
	if op == Write {
		b = g.w
	}
	return b.reserve(float64(n), now)
}

// Wait blocks until n bytes of the given op are admitted, or until the
// context is canceled (the reservation is still consumed, as a real
// blkio-throttled syscall would already be queued).
func (c *Controller) Wait(ctx context.Context, g *Group, op Op, n int) error {
	d := c.Reserve(g, op, n)
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		// A nil or non-cancellable context (e.g. context.Background())
		// cannot interrupt the wait, so use the controller's sleeper —
		// which tests may have replaced with virtual time.
		c.sleep(d)
		return nil
	}
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
		return fmt.Errorf("blkio: group %q %s of %d bytes needs %v: %w", g.name, op, n, d, context.DeadlineExceeded)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }
