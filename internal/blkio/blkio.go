// Package blkio is the stand-in for the cgroups-blkio throttling mechanism
// the paper uses to split one physical disk's bandwidth among Xen VMs
// (§III-A2): blkio.throttle.read_bps_device / write_bps_device "constrain
// the upper bound of the disk read/write bandwidth acquired by the
// designated process".
//
// The controller is a two-level, work-conserving bucket tree in the HTB
// style. Each named group owns, per direction, an *assured* token bucket
// (its admitted reservation — the guaranteed floor) and an optional *ceil*
// bucket (the borrow ceiling). A per-disk root bucket models the disk's
// spare capacity: every assured byte a group issues charges the root, so
// whatever refill the root accumulates beyond the aggregate assured demand
// is genuinely idle bandwidth. A group that has exhausted its assured
// allocation and has ceil headroom borrows that spare to keep running —
// up to its ceil — and the loan dries up by itself as soon as a sibling
// with assured headroom starts issuing again (AdapTBF-style pressure
// return): the sibling's assured charges drain the root, the borrower
// finds no spare, and its pacing falls back to its own assured refill.
// Assured traffic never waits on the root, so a group's floor cannot be
// dented by a neighbor's borrowing.
//
// Groups configured without a ceil (SetGroup, or Ceil == Assured) behave
// exactly like the original flat per-group bucket, and a controller whose
// root was never configured (SetRoot) lends nothing.
package blkio

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dfsqos/internal/units"
)

// Op selects the read or write limit of a group.
type Op int

const (
	// Read is throttled by the group's read_bps limit.
	Read Op = iota
	// Write is throttled by the group's write_bps limit.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// bucket is a token bucket refilled continuously at rate tokens/second,
// holding at most burst tokens.
type bucket struct {
	rate   float64 // tokens (bytes) per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate units.BytesPerSec, now time.Time) *bucket {
	return newBucketFrac(rate, now, 1)
}

// newBucketFrac builds a bucket holding frac of its burst, so a live
// reconfiguration carries the previous fill level over instead of granting
// a free burst window.
func newBucketFrac(rate units.BytesPerSec, now time.Time, frac float64) *bucket {
	b := &bucket{rate: float64(rate), last: now}
	// One second of burst keeps small I/Os smooth without letting the
	// long-run rate exceed the configured bps, like blkio's slice logic.
	b.burst = b.rate
	b.tokens = b.burst * frac
	return b
}

// refill credits the tokens accrued since the last touch, capped at burst.
func (b *bucket) refill(now time.Time) {
	if b.rate <= 0 {
		return
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// reserve takes n tokens and returns how long the caller must wait until
// the reservation is honoured. It never refuses: blkio.throttle delays
// I/O, it does not fail it.
func (b *bucket) reserve(n float64, now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0 // unlimited
	}
	b.refill(now)
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// charge drains n tokens without ever queueing a delay: the root pool does
// not pace traffic (floors are the groups' business), it only bounds how
// much spare is left to lend. The debt floor of one burst keeps a long
// oversubscribed phase from suppressing borrowing long after load drops.
func (b *bucket) charge(n float64, now time.Time) {
	if b == nil || b.rate <= 0 {
		return
	}
	b.refill(now)
	b.tokens -= n
	if b.tokens < -b.burst {
		b.tokens = -b.burst
	}
}

// limit is one direction (read or write) of a group's QoS: assured meters
// the guaranteed floor, ceil (nil when there is no borrowing headroom)
// caps the group's total rate including borrowed tokens.
type limit struct {
	assured *bucket
	ceil    *bucket
}

// fillFrac reports how full the assured bucket is (0..1) so a
// reconfiguration can carry the level over. Unlimited limits count as full.
func (l *limit) fillFrac(now time.Time) float64 {
	if l == nil || l.assured == nil || l.assured.rate <= 0 || l.assured.burst <= 0 {
		return 1
	}
	l.assured.refill(now)
	frac := l.assured.tokens / l.assured.burst
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

func newLimit(assured, ceil units.BytesPerSec, now time.Time, old *limit) *limit {
	frac := 1.0
	if old != nil {
		frac = old.fillFrac(now)
	}
	l := &limit{assured: newBucketFrac(assured, now, frac)}
	if assured > 0 && ceil > assured {
		l.ceil = newBucketFrac(ceil, now, frac)
	}
	return l
}

// Group is one throttled entity: a VM's block device in the paper, or one
// admitted reservation in live stream-QoS mode.
type Group struct {
	name string
	mu   sync.Mutex
	r, w *limit
}

// GroupConfig is the full per-direction QoS of one group.
type GroupConfig struct {
	// ReadAssured and WriteAssured are the guaranteed floor rates
	// (0 = unlimited, which also disables borrowing for that direction).
	ReadAssured, WriteAssured units.BytesPerSec
	// ReadCeil and WriteCeil cap the direction's total rate including
	// borrowed root tokens. Zero, or a value equal to the assured rate,
	// makes the direction a flat (non-borrowing) bucket.
	ReadCeil, WriteCeil units.BytesPerSec
}

// Stats is a point-in-time snapshot of the controller's work-conserving
// accounting, aggregated across groups and directions.
type Stats struct {
	// AssuredBytes counts bytes admitted against groups' own assured
	// refill (immediately or after an assured-paced delay).
	AssuredBytes uint64
	// BorrowedBytes counts bytes covered by root-pool tokens lent past a
	// group's assured floor.
	BorrowedBytes uint64
	// Borrows counts reservations that obtained at least one borrowed
	// token.
	Borrows uint64
	// Reclaims counts reservations whose borrow demand was cut short
	// because sibling assured traffic had drained the pool — the moment
	// borrowed bandwidth is handed back under pressure.
	Reclaims uint64
	// ThrottleWaitSec accumulates the delays handed to callers.
	ThrottleWaitSec float64
}

// Controller manages the throttle groups of one physical disk.
type Controller struct {
	mu     sync.Mutex
	groups map[string]*Group
	clock  func() time.Time
	sleep  func(time.Duration)

	// rootMu is ordered after Group.mu and guards the lending pool, the
	// stats accumulators, and the metrics sink.
	rootMu        sync.Mutex
	rootR, rootW  *bucket // nil = no lending pool for that direction
	assuredBytes  float64
	borrowedBytes float64
	borrows       uint64
	reclaims      uint64
	waitSec       float64
	met           *Metrics
}

// Option customizes a Controller (used by tests to fake time).
type Option func(*Controller)

// WithClock substitutes the wall clock.
func WithClock(clock func() time.Time) Option {
	return func(c *Controller) { c.clock = clock }
}

// WithSleep substitutes the sleeping function.
func WithSleep(sleep func(time.Duration)) Option {
	return func(c *Controller) { c.sleep = sleep }
}

// NewController returns an empty controller with no lending pool.
func NewController(opts ...Option) *Controller {
	c := &Controller{
		groups: make(map[string]*Group),
		clock:  time.Now,
		sleep:  time.Sleep,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SetMetrics attaches a telemetry sink (nil detaches). Call before traffic
// flows; counters are cumulative from that point.
func (c *Controller) SetMetrics(m *Metrics) {
	c.rootMu.Lock()
	c.met = m
	c.rootMu.Unlock()
}

// SetRoot configures the per-disk lending pool: the root bucket refills at
// the disk's capacity and whatever it accrues beyond the aggregate assured
// demand is lendable spare. A zero rate removes the pool for that
// direction, disabling borrowing.
func (c *Controller) SetRoot(readBps, writeBps units.BytesPerSec) error {
	if readBps < 0 || writeBps < 0 {
		return fmt.Errorf("blkio: negative root rate")
	}
	now := c.clock()
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	c.rootR, c.rootW = nil, nil
	if readBps > 0 {
		c.rootR = newBucket(readBps, now)
	}
	if writeBps > 0 {
		c.rootW = newBucket(writeBps, now)
	}
	return nil
}

// SetGroup creates or reconfigures a flat group with the given read/write
// byte-rate limits (0 = unlimited), mirroring writes to
// blkio.throttle.{read,write}_bps_device. The group gets no borrowing
// headroom; use SetGroupQoS for an assured/ceil pair.
func (c *Controller) SetGroup(name string, readBps, writeBps units.BytesPerSec) (*Group, error) {
	return c.SetGroupQoS(name, GroupConfig{ReadAssured: readBps, WriteAssured: writeBps})
}

// SetGroupQoS creates or reconfigures a group with an assured floor and a
// borrow ceil per direction. Reconfiguration carries the current bucket
// fill fraction over, so a live rate change neither grants a free burst
// nor strands earned tokens.
func (c *Controller) SetGroupQoS(name string, cfg GroupConfig) (*Group, error) {
	if name == "" {
		return nil, fmt.Errorf("blkio: empty group name")
	}
	if cfg.ReadAssured < 0 || cfg.WriteAssured < 0 || cfg.ReadCeil < 0 || cfg.WriteCeil < 0 {
		return nil, fmt.Errorf("blkio: negative limit for group %q", name)
	}
	if cfg.ReadCeil > 0 && cfg.ReadCeil < cfg.ReadAssured {
		return nil, fmt.Errorf("blkio: group %q read ceil %v below assured %v", name, cfg.ReadCeil, cfg.ReadAssured)
	}
	if cfg.WriteCeil > 0 && cfg.WriteCeil < cfg.WriteAssured {
		return nil, fmt.Errorf("blkio: group %q write ceil %v below assured %v", name, cfg.WriteCeil, cfg.WriteAssured)
	}
	if cfg.ReadAssured == 0 && cfg.ReadCeil > 0 {
		return nil, fmt.Errorf("blkio: group %q read ceil without an assured rate", name)
	}
	if cfg.WriteAssured == 0 && cfg.WriteCeil > 0 {
		return nil, fmt.Errorf("blkio: group %q write ceil without an assured rate", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	g, ok := c.groups[name]
	if !ok {
		g = &Group{name: name}
		c.groups[name] = g
	}
	g.mu.Lock()
	g.r = newLimit(cfg.ReadAssured, cfg.ReadCeil, now, g.r)
	g.w = newLimit(cfg.WriteAssured, cfg.WriteCeil, now, g.w)
	g.mu.Unlock()
	c.setGroupsGauge(len(c.groups))
	return g, nil
}

// RemoveGroup deletes a group, releasing its assured claim on the disk:
// once its charges stop, the root refill the group was consuming becomes
// spare that siblings can borrow. It reports whether the group existed.
func (c *Controller) RemoveGroup(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[name]; !ok {
		return false
	}
	delete(c.groups, name)
	c.setGroupsGauge(len(c.groups))
	return true
}

func (c *Controller) setGroupsGauge(n int) {
	c.rootMu.Lock()
	if c.met != nil {
		c.met.Groups.Set(float64(n))
	}
	c.rootMu.Unlock()
}

// Group looks up a group by name.
func (c *Controller) Group(name string) (*Group, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[name]
	return g, ok
}

// Groups returns the group names (diagnostics).
func (c *Controller) Groups() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.groups))
	for name := range c.groups {
		out = append(out, name)
	}
	return out
}

// Stats snapshots the cumulative borrow/reclaim accounting.
func (c *Controller) Stats() Stats {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	return Stats{
		AssuredBytes:    uint64(c.assuredBytes),
		BorrowedBytes:   uint64(c.borrowedBytes),
		Borrows:         c.borrows,
		Reclaims:        c.reclaims,
		ThrottleWaitSec: c.waitSec,
	}
}

// Reserve accounts n bytes of the given op against the group and returns
// the delay the caller must observe. It is the non-blocking primitive
// behind Wait; tests drive it with a fake clock.
//
// The assured bucket paces the group's floor; if the reservation leaves it
// in debt and the group has ceil headroom, the debt is repaid from the
// root pool's spare tokens (a borrow). The final delay is the maximum of
// the post-borrow assured delay and the ceil bucket's delay, so a borrower
// runs at its ceil — never past it — while the root never delays anyone.
func (c *Controller) Reserve(g *Group, op Op, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	now := c.clock()
	nf := float64(n)
	g.mu.Lock()
	defer g.mu.Unlock()
	l := g.r
	if op == Write {
		l = g.w
	}

	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	root := c.rootR
	if op == Write {
		root = c.rootW
	}

	var d time.Duration
	var borrowed float64
	if l.assured.rate <= 0 {
		// Unlimited direction: nothing to pace, but the root still sees
		// the traffic so siblings' borrowing reflects real disk load.
		root.charge(nf, now)
		c.assuredBytes += nf
		if c.met != nil {
			c.met.AssuredBytes.Add(uint64(n))
		}
		return 0
	}

	d = l.assured.reserve(nf, now)
	if d > 0 && l.ceil != nil && root != nil {
		debt := -l.assured.tokens
		root.refill(now)
		if spare := root.tokens; spare > 0 {
			borrowed = debt
			if borrowed > spare {
				borrowed = spare
			}
			l.assured.tokens += borrowed
			root.tokens -= borrowed
			if l.assured.tokens >= 0 {
				d = 0
			} else {
				d = time.Duration(-l.assured.tokens / l.assured.rate * float64(time.Second))
			}
		}
		if borrowed > 0 {
			c.borrows++
			if c.met != nil {
				c.met.Borrows.Inc()
			}
		}
		if borrowed < debt {
			// Pressure return: sibling assured charges drained the pool,
			// so part of the demand falls back to assured pacing.
			c.reclaims++
			if c.met != nil {
				c.met.Reclaims.Inc()
			}
		}
	}

	// Every byte not covered by a borrow is (now or after the returned
	// delay) covered by the group's own assured refill, so it charges the
	// root pool; borrowed bytes already came out of the pool above.
	bb := borrowed
	if bb > nf {
		bb = nf
	}
	root.charge(nf-bb, now)
	c.assuredBytes += nf - bb
	c.borrowedBytes += bb
	if c.met != nil {
		bi := uint64(bb)
		c.met.AssuredBytes.Add(uint64(n) - bi)
		c.met.BorrowedBytes.Add(bi)
	}

	if l.ceil != nil {
		if cd := l.ceil.reserve(nf, now); cd > d {
			d = cd
		}
	}
	if d > 0 {
		c.waitSec += d.Seconds()
		if c.met != nil {
			c.met.ThrottleWait.Observe(d.Seconds())
		}
	}
	return d
}

// Wait blocks until n bytes of the given op are admitted, or until the
// context is canceled (the reservation is still consumed, as a real
// blkio-throttled syscall would already be queued).
func (c *Controller) Wait(ctx context.Context, g *Group, op Op, n int) error {
	d := c.Reserve(g, op, n)
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		// A nil or non-cancellable context (e.g. context.Background())
		// cannot interrupt the wait, so use the controller's sleeper —
		// which tests may have replaced with virtual time.
		c.sleep(d)
		return nil
	}
	// Measure the deadline against the controller's clock, not the wall:
	// under a fake clock the two time bases diverge and the wall-clock
	// comparison spuriously reports DeadlineExceeded.
	if deadline, ok := ctx.Deadline(); ok && deadline.Sub(c.clock()) < d {
		return fmt.Errorf("blkio: group %q %s of %d bytes needs %v: %w", g.name, op, n, d, context.DeadlineExceeded)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }
