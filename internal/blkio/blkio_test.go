package blkio

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dfsqos/internal/units"
)

// fakeClock gives tests full control over time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func fakeController() (*Controller, *fakeClock) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	return NewController(WithClock(fc.Now), WithSleep(func(time.Duration) {})), fc
}

func TestSetGroupValidation(t *testing.T) {
	c, _ := fakeController()
	if _, err := c.SetGroup("", units.Mbps(1), 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.SetGroup("vm1", -1, 0); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, err := c.SetGroup("vm1", units.Mbps(18), units.Mbps(18)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Group("vm1"); !ok {
		t.Fatal("group not registered")
	}
	if _, ok := c.Group("vm2"); ok {
		t.Fatal("phantom group")
	}
	if len(c.Groups()) != 1 {
		t.Fatalf("Groups() = %v", c.Groups())
	}
}

func TestBurstThenThrottle(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 0) // 1000 B/s read
	// The initial burst (one second of tokens) passes instantly.
	if d := c.Reserve(g, Read, 1000); d != 0 {
		t.Fatalf("burst reserve delayed %v", d)
	}
	// The next kilobyte must wait a full second.
	if d := c.Reserve(g, Read, 1000); d != time.Second {
		t.Fatalf("post-burst reserve delayed %v, want 1s", d)
	}
}

func TestRefillOverTime(t *testing.T) {
	c, fc := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 0)
	c.Reserve(g, Read, 1000) // drain the burst
	fc.Advance(500 * time.Millisecond)
	// 500 tokens refilled: 500 bytes pass, the rest waits.
	if d := c.Reserve(g, Read, 500); d != 0 {
		t.Fatalf("refilled reserve delayed %v", d)
	}
	if d := c.Reserve(g, Read, 500); d != 500*time.Millisecond {
		t.Fatalf("reserve delayed %v, want 500ms", d)
	}
}

func TestSustainedRateConvergesToLimit(t *testing.T) {
	c, fc := fakeController()
	g, _ := c.SetGroup("vm1", units.MBps(2), 0) // 2 MB/s
	const chunk = 64 * 1024
	var total int
	var elapsed time.Duration
	for total < 100*1024*1024 {
		d := c.Reserve(g, Read, chunk)
		elapsed += d
		fc.Advance(d)
		total += chunk
	}
	rate := float64(total) / elapsed.Seconds()
	// Long-run rate within 5% of the limit (the 1-second burst amortizes
	// away over a 100 MB transfer).
	if rate < 1.9e6 || rate > 2.1e6 {
		t.Fatalf("sustained rate %.0f B/s, want ~2e6", rate)
	}
}

func TestReadWriteIndependent(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 500)
	c.Reserve(g, Read, 1000) // drain read burst
	// Write bucket is untouched.
	if d := c.Reserve(g, Write, 500); d != 0 {
		t.Fatalf("write reserve delayed %v after read drain", d)
	}
	if d := c.Reserve(g, Write, 500); d != time.Second {
		t.Fatalf("write reserve delayed %v, want 1s", d)
	}
}

func TestUnlimitedGroup(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 0, 0)
	for i := 0; i < 100; i++ {
		if d := c.Reserve(g, Read, 1<<20); d != 0 {
			t.Fatalf("unlimited group delayed %v", d)
		}
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 10, 10)
	if d := c.Reserve(g, Read, 0); d != 0 {
		t.Fatal("zero bytes delayed")
	}
	if d := c.Reserve(g, Read, -5); d != 0 {
		t.Fatal("negative bytes delayed")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	c := NewController(WithClock(fc.Now)) // real sleeping
	g, _ := c.SetGroup("vm1", 10, 0)      // 10 B/s: next reserve waits ~100 s
	c.Reserve(g, Read, 10)                // drain the burst... burst=10
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Wait(ctx, g, Read, 1000)
	if err == nil {
		t.Fatal("Wait did not fail under a tight deadline")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait blocked past the context deadline")
	}
}

func TestWaitNoDelayPath(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", units.MBps(10), 0)
	if err := c.Wait(context.Background(), g, Read, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(nil, g, Read, 100); err != nil {
		t.Fatal(err)
	}
}

func TestSetGroupReconfigures(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 100, 0)
	c.Reserve(g, Read, 100)
	// Reconfiguration resets the buckets at the new rate.
	g2, _ := c.SetGroup("vm1", 1000, 0)
	if g2 != g {
		t.Fatal("reconfiguration replaced the group object")
	}
	if d := c.Reserve(g, Read, 1000); d != 0 {
		t.Fatalf("reconfigured burst delayed %v", d)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}

// Property: cumulative admitted bytes never exceed burst + rate×elapsed.
func TestNeverExceedsRateProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		c, fc := fakeController()
		const rate = 5000.0
		g, _ := c.SetGroup("vm", units.BytesPerSec(rate), 0)
		var admitted float64
		var elapsed time.Duration
		for _, ch := range chunks {
			n := int(ch%2000) + 1
			d := c.Reserve(g, Read, n)
			fc.Advance(d)
			elapsed += d
			admitted += float64(n)
			// Allowed = initial burst + refill over elapsed time, plus the
			// final in-flight reservation which is already paid for by d.
			allowed := rate + rate*elapsed.Seconds() + 2000
			if admitted > allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
