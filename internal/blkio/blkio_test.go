package blkio

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dfsqos/internal/telemetry"
	"dfsqos/internal/units"
)

// fakeClock gives tests full control over time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func fakeController() (*Controller, *fakeClock) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	return NewController(WithClock(fc.Now), WithSleep(func(time.Duration) {})), fc
}

func TestSetGroupValidation(t *testing.T) {
	c, _ := fakeController()
	if _, err := c.SetGroup("", units.Mbps(1), 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.SetGroup("vm1", -1, 0); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, err := c.SetGroup("vm1", units.Mbps(18), units.Mbps(18)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Group("vm1"); !ok {
		t.Fatal("group not registered")
	}
	if _, ok := c.Group("vm2"); ok {
		t.Fatal("phantom group")
	}
	if len(c.Groups()) != 1 {
		t.Fatalf("Groups() = %v", c.Groups())
	}
}

func TestBurstThenThrottle(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 0) // 1000 B/s read
	// The initial burst (one second of tokens) passes instantly.
	if d := c.Reserve(g, Read, 1000); d != 0 {
		t.Fatalf("burst reserve delayed %v", d)
	}
	// The next kilobyte must wait a full second.
	if d := c.Reserve(g, Read, 1000); d != time.Second {
		t.Fatalf("post-burst reserve delayed %v, want 1s", d)
	}
}

func TestRefillOverTime(t *testing.T) {
	c, fc := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 0)
	c.Reserve(g, Read, 1000) // drain the burst
	fc.Advance(500 * time.Millisecond)
	// 500 tokens refilled: 500 bytes pass, the rest waits.
	if d := c.Reserve(g, Read, 500); d != 0 {
		t.Fatalf("refilled reserve delayed %v", d)
	}
	if d := c.Reserve(g, Read, 500); d != 500*time.Millisecond {
		t.Fatalf("reserve delayed %v, want 500ms", d)
	}
}

func TestSustainedRateConvergesToLimit(t *testing.T) {
	c, fc := fakeController()
	g, _ := c.SetGroup("vm1", units.MBps(2), 0) // 2 MB/s
	const chunk = 64 * 1024
	var total int
	var elapsed time.Duration
	for total < 100*1024*1024 {
		d := c.Reserve(g, Read, chunk)
		elapsed += d
		fc.Advance(d)
		total += chunk
	}
	rate := float64(total) / elapsed.Seconds()
	// Long-run rate within 5% of the limit (the 1-second burst amortizes
	// away over a 100 MB transfer).
	if rate < 1.9e6 || rate > 2.1e6 {
		t.Fatalf("sustained rate %.0f B/s, want ~2e6", rate)
	}
}

func TestReadWriteIndependent(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 500)
	c.Reserve(g, Read, 1000) // drain read burst
	// Write bucket is untouched.
	if d := c.Reserve(g, Write, 500); d != 0 {
		t.Fatalf("write reserve delayed %v after read drain", d)
	}
	if d := c.Reserve(g, Write, 500); d != time.Second {
		t.Fatalf("write reserve delayed %v, want 1s", d)
	}
}

func TestUnlimitedGroup(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 0, 0)
	for i := 0; i < 100; i++ {
		if d := c.Reserve(g, Read, 1<<20); d != 0 {
			t.Fatalf("unlimited group delayed %v", d)
		}
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 10, 10)
	if d := c.Reserve(g, Read, 0); d != 0 {
		t.Fatal("zero bytes delayed")
	}
	if d := c.Reserve(g, Read, -5); d != 0 {
		t.Fatal("negative bytes delayed")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	c := NewController(WithClock(fc.Now)) // real sleeping
	g, _ := c.SetGroup("vm1", 10, 0)      // 10 B/s: next reserve waits ~100 s
	c.Reserve(g, Read, 10)                // drain the burst... burst=10
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Wait(ctx, g, Read, 1000)
	if err == nil {
		t.Fatal("Wait did not fail under a tight deadline")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait blocked past the context deadline")
	}
}

func TestWaitNoDelayPath(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", units.MBps(10), 0)
	if err := c.Wait(context.Background(), g, Read, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(nil, g, Read, 100); err != nil {
		t.Fatal(err)
	}
}

func TestSetGroupReconfigures(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 100, 0)
	c.Reserve(g, Read, 100) // drain the burst entirely
	// Reconfiguration carries the (empty) fill level over: no free burst.
	g2, _ := c.SetGroup("vm1", 1000, 0)
	if g2 != g {
		t.Fatal("reconfiguration replaced the group object")
	}
	if d := c.Reserve(g, Read, 1000); d != time.Second {
		t.Fatalf("reconfigured empty bucket delayed %v, want 1s", d)
	}
}

func TestSetGroupCarriesFillFraction(t *testing.T) {
	c, _ := fakeController()
	g, _ := c.SetGroup("vm1", 1000, 0)
	c.Reserve(g, Read, 500) // half the burst left
	c.SetGroup("vm1", 2000, 0)
	// Half of the new 2000-token burst = 1000 tokens available.
	if d := c.Reserve(g, Read, 1000); d != 0 {
		t.Fatalf("carried tokens delayed %v", d)
	}
	if d := c.Reserve(g, Read, 2000); d != time.Second {
		t.Fatalf("post-carry reserve delayed %v, want 1s", d)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}

// TestWaitFakeClockDeadline is the regression for the deadline
// short-circuit measuring the context deadline with the wall clock while
// the reservation used the injectable clock: a deadline expressed in
// fake-clock time (epoch era) is hugely in the wall's past, so Wait
// spuriously returned DeadlineExceeded for a perfectly affordable delay.
func TestWaitFakeClockDeadline(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	c := NewController(WithClock(fc.Now)) // real sleeping for the timer path
	g, _ := c.SetGroup("vm1", 1000, 0)
	c.Reserve(g, Read, 1000) // drain the burst
	// The deadline is expressed in the fake clock's (epoch-era) time base,
	// as a fake-clock test harness would do. Wall-clock math would see it
	// ~56 years in the past and spuriously refuse an affordable 50ms wait.
	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := fakeDeadlineCtx{Context: base, deadline: fc.Now().Add(10 * time.Second)}
	if err := c.Wait(ctx, g, Read, 50); err != nil {
		t.Fatalf("Wait failed under an affordable fake-clock deadline: %v", err)
	}
	// And a genuinely unaffordable fake-clock deadline still short-circuits.
	c.Reserve(g, Read, 1000) // back into debt
	ctx2 := fakeDeadlineCtx{Context: base, deadline: fc.Now().Add(time.Millisecond)}
	start := time.Now()
	if err := c.Wait(ctx2, g, Read, 1000); err == nil {
		t.Fatal("Wait ignored an unaffordable deadline")
	} else if time.Since(start) > 500*time.Millisecond {
		t.Fatal("unaffordable deadline did not short-circuit")
	}
}

// fakeDeadlineCtx reports a deadline in the fake clock's time base while
// inheriting a live (never-firing) Done channel.
type fakeDeadlineCtx struct {
	context.Context
	deadline time.Time
}

func (f fakeDeadlineCtx) Deadline() (time.Time, bool) { return f.deadline, true }

func TestSetGroupQoSValidation(t *testing.T) {
	c, _ := fakeController()
	if _, err := c.SetGroupQoS("", GroupConfig{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.SetGroupQoS("g", GroupConfig{ReadAssured: -1}); err == nil {
		t.Fatal("negative assured accepted")
	}
	if _, err := c.SetGroupQoS("g", GroupConfig{ReadAssured: 100, ReadCeil: 50}); err == nil {
		t.Fatal("ceil below assured accepted")
	}
	if _, err := c.SetGroupQoS("g", GroupConfig{WriteAssured: 100, WriteCeil: 50}); err == nil {
		t.Fatal("write ceil below assured accepted")
	}
	if _, err := c.SetGroupQoS("g", GroupConfig{ReadCeil: 100}); err == nil {
		t.Fatal("ceil without assured accepted")
	}
	if _, err := c.SetGroupQoS("g", GroupConfig{WriteCeil: 100}); err == nil {
		t.Fatal("write ceil without assured accepted")
	}
	if err := c.SetRoot(-1, 0); err == nil {
		t.Fatal("negative root accepted")
	}
}

func TestRemoveGroup(t *testing.T) {
	c, _ := fakeController()
	c.SetGroup("vm1", 100, 100)
	if !c.RemoveGroup("vm1") {
		t.Fatal("RemoveGroup missed an existing group")
	}
	if _, ok := c.Group("vm1"); ok {
		t.Fatal("group survived removal")
	}
	if c.RemoveGroup("vm1") {
		t.Fatal("RemoveGroup reported a phantom group")
	}
}

// TestBorrowRunsAtCeil drives a single active group whose idle sibling's
// reservation leaves root spare: the active group must sustain its ceil
// (double its assured floor), the work-conserving win.
func TestBorrowRunsAtCeil(t *testing.T) {
	c, fc := fakeController()
	c.SetRoot(1000, 0)
	a, _ := c.SetGroupQoS("a", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	c.SetGroupQoS("b", GroupConfig{ReadAssured: 500, ReadCeil: 1000}) // idle sibling
	const chunk = 100
	var total int
	var elapsed time.Duration
	for total < 100_000 {
		d := c.Reserve(a, Read, chunk)
		fc.Advance(d)
		elapsed += d
		total += chunk
	}
	rate := float64(total) / elapsed.Seconds()
	if rate < 950 || rate > 1100 {
		t.Fatalf("borrower sustained %.0f B/s, want ~1000 (its ceil)", rate)
	}
	st := c.Stats()
	if st.Borrows == 0 || st.BorrowedBytes == 0 {
		t.Fatalf("no borrowing recorded: %+v", st)
	}
}

// TestFlatGroupStaysAtAssured proves a group without ceil headroom cannot
// borrow even when the root pool has spare: the (1,1,1) baseline shape.
func TestFlatGroupStaysAtAssured(t *testing.T) {
	c, fc := fakeController()
	c.SetRoot(1000, 0)
	a, _ := c.SetGroupQoS("a", GroupConfig{ReadAssured: 500, ReadCeil: 500})
	const chunk = 100
	var total int
	var elapsed time.Duration
	for total < 100_000 {
		d := c.Reserve(a, Read, chunk)
		fc.Advance(d)
		elapsed += d
		total += chunk
	}
	rate := float64(total) / elapsed.Seconds()
	if rate < 475 || rate > 550 {
		t.Fatalf("flat group sustained %.0f B/s, want ~500 (its assured rate)", rate)
	}
	if st := c.Stats(); st.Borrows != 0 || st.BorrowedBytes != 0 {
		t.Fatalf("flat group borrowed: %+v", st)
	}
}

// TestReclaimWhenSiblingWakes: a lone borrower runs at its ceil, then its
// sibling wakes and starts consuming — the borrower's loan shrinks to
// whatever the sibling leaves idle, while the sibling, running under its
// assured floor, never waits a single nanosecond.
func TestReclaimWhenSiblingWakes(t *testing.T) {
	c, fc := fakeController()
	c.SetRoot(1000, 0)
	a, _ := c.SetGroupQoS("a", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	b, _ := c.SetGroupQoS("b", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	const chunk = 100
	// Phase 1: A alone reaches its ceil (~1000 B/s).
	var d1 time.Duration
	var bytes1 int
	for bytes1 < 50_000 {
		d := c.Reserve(a, Read, chunk)
		fc.Advance(d)
		d1 += d
		bytes1 += chunk
	}
	if rate := float64(bytes1) / d1.Seconds(); rate < 950 || rate > 1150 {
		t.Fatalf("lone borrower sustained %.0f B/s, want ~1000", rate)
	}
	// Phase 2: B wakes and consumes 100 B per round against A's 200. B's
	// demand (1/3 of the issue stream) stays under its floor, so B must
	// never be delayed; A keeps only the spare B leaves idle. With charges
	// of 300 B per round draining the 1000 B/s root, rounds settle at
	// 0.3 s: A gets 200/0.3 ≈ 667 B/s — above its 500 floor (still
	// borrowing) but well off its 1000 ceil (the loan was reclaimed).
	var elapsed time.Duration
	var aBytes int
	for round := 0; round < 500; round++ {
		dA := c.Reserve(a, Read, 2*chunk)
		dB := c.Reserve(b, Read, chunk)
		if dB != 0 {
			t.Fatalf("round %d: sibling under its floor was delayed %v", round, dB)
		}
		fc.Advance(dA)
		elapsed += dA
		aBytes += 2 * chunk
	}
	aRate := float64(aBytes) / elapsed.Seconds()
	if aRate < 580 || aRate > 760 {
		t.Fatalf("borrower ran at %.0f B/s after sibling woke, want ~667", aRate)
	}
	st := c.Stats()
	if st.Borrows == 0 || st.BorrowedBytes == 0 {
		t.Fatalf("no borrowing recorded: %+v", st)
	}
	if st.AssuredBytes == 0 {
		t.Fatalf("no assured accounting: %+v", st)
	}
}

// TestUnlimitedGroupChargesRoot: an unlimited group's traffic still drains
// the lending pool so borrowers see the real disk load.
func TestUnlimitedGroupChargesRoot(t *testing.T) {
	c, _ := fakeController()
	c.SetRoot(1000, 0)
	u, _ := c.SetGroup("bulk", 0, 0)
	a, _ := c.SetGroupQoS("a", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	c.Reserve(u, Read, 1000) // drain the root burst entirely
	c.Reserve(a, Read, 500)  // drain A's assured burst
	// A's next chunk finds no spare: paced at assured rate, and the failed
	// borrow counts as a reclaim.
	if d := c.Reserve(a, Read, 100); d != 200*time.Millisecond {
		t.Fatalf("borrow found phantom spare: delayed %v, want 200ms", d)
	}
	if st := c.Stats(); st.Reclaims == 0 {
		t.Fatalf("dry-pool borrow not counted as reclaim: %+v", st)
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	c, fc := fakeController()
	c.SetMetrics(m)
	c.SetRoot(1000, 0)
	a, _ := c.SetGroupQoS("a", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	c.SetGroupQoS("b", GroupConfig{ReadAssured: 500, ReadCeil: 1000})
	for total := 0; total < 20_000; total += 100 {
		fc.Advance(c.Reserve(a, Read, 100))
	}
	if m.AssuredBytes.Value() == 0 || m.BorrowedBytes.Value() == 0 {
		t.Fatalf("byte split not exported: assured=%d borrowed=%d",
			m.AssuredBytes.Value(), m.BorrowedBytes.Value())
	}
	if m.Borrows.Value() == 0 {
		t.Fatal("borrows not exported")
	}
	if m.Groups.Value() != 2 {
		t.Fatalf("groups gauge = %v, want 2", m.Groups.Value())
	}
	c.RemoveGroup("b")
	if m.Groups.Value() != 1 {
		t.Fatalf("groups gauge after removal = %v, want 1", m.Groups.Value())
	}
	names := reg.Names()
	want := []string{"dfsqos_blkio_bytes_total", "dfsqos_blkio_borrows_total",
		"dfsqos_blkio_reclaims_total", "dfsqos_blkio_throttle_wait_seconds",
		"dfsqos_blkio_groups"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("series %s not registered (have %v)", w, names)
		}
	}
}

// Property: cumulative admitted bytes never exceed burst + rate×elapsed.
func TestNeverExceedsRateProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		c, fc := fakeController()
		const rate = 5000.0
		g, _ := c.SetGroup("vm", units.BytesPerSec(rate), 0)
		var admitted float64
		var elapsed time.Duration
		for _, ch := range chunks {
			n := int(ch%2000) + 1
			d := c.Reserve(g, Read, n)
			fc.Advance(d)
			elapsed += d
			admitted += float64(n)
			// Allowed = initial burst + refill over elapsed time, plus the
			// final in-flight reservation which is already paid for by d.
			allowed := rate + rate*elapsed.Seconds() + 2000
			if admitted > allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
