package blkio

import (
	"dfsqos/internal/telemetry"
)

// Metrics is the controller's telemetry surface: the work-conserving
// borrow/reclaim accounting as scrapable series. Build one with NewMetrics
// and attach it via Controller.SetMetrics. Nil means no-op.
type Metrics struct {
	// AssuredBytes and BorrowedBytes split the admitted bytes by funding
	// source (dfsqos_blkio_bytes_total{source}).
	AssuredBytes  *telemetry.Counter
	BorrowedBytes *telemetry.Counter
	// Borrows counts reservations that obtained borrowed root tokens
	// (dfsqos_blkio_borrows_total).
	Borrows *telemetry.Counter
	// Reclaims counts reservations whose borrow demand was cut short by
	// sibling assured pressure (dfsqos_blkio_reclaims_total).
	Reclaims *telemetry.Counter
	// ThrottleWait observes every nonzero delay handed to a caller
	// (dfsqos_blkio_throttle_wait_seconds).
	ThrottleWait *telemetry.Histogram
	// Groups gauges the configured throttle groups
	// (dfsqos_blkio_groups).
	Groups *telemetry.Gauge
}

// NewMetrics registers the blkio metric families on reg (nil reg yields a
// live no-op sink). One daemon hosts one disk controller, so the families
// are unlabeled.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	bytes := reg.NewCounterVec("dfsqos_blkio_bytes_total",
		"Bytes admitted through the bucket tree by funding source.", "source")
	return &Metrics{
		AssuredBytes:  bytes.With("assured"),
		BorrowedBytes: bytes.With("borrowed"),
		Borrows: reg.NewCounter("dfsqos_blkio_borrows_total",
			"Reservations that ran past their assured floor on borrowed root tokens."),
		Reclaims: reg.NewCounter("dfsqos_blkio_reclaims_total",
			"Reservations whose borrow was cut short by sibling assured pressure."),
		ThrottleWait: reg.NewHistogram("dfsqos_blkio_throttle_wait_seconds",
			"Delay handed to throttled I/O reservations.",
			telemetry.DefBuckets),
		Groups: reg.NewGauge("dfsqos_blkio_groups",
			"Configured throttle groups."),
	}
}
