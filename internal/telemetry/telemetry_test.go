package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 0 and an exact lower bound land in the first bucket (le
	// semantics: v <= bound).
	h.Observe(0)
	h.Observe(1)
	// Exactly the max bound lands in the last finite bucket.
	h.Observe(4)
	// Beyond the max bound lands in the +Inf overflow bucket.
	h.Observe(4.000001)
	h.Observe(math.MaxFloat64)
	// Positive infinity also overflows.
	h.Observe(math.Inf(1))
	// NaN is dropped entirely.
	h.Observe(math.NaN())

	wantBuckets := []uint64{2, 0, 1, 3} // raw per-bucket, last is +Inf
	for i, want := range wantBuckets {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", got)
	}
	if sum := h.Sum(); !math.IsInf(sum, 1) {
		t.Fatalf("sum = %v, want +Inf (one +Inf observation)", sum)
	}
}

func TestHistogramMeanFromSumAndCount(t *testing.T) {
	h := newHistogram([]float64{10})
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if mean := h.Sum() / float64(h.Count()); mean != 2 {
		t.Fatalf("mean = %v, want 2", mean)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestExpositionGolden locks the exact text exposition rendering: HELP
// and TYPE comments, label escaping, cumulative le-buckets, _sum and
// _count, deterministic ordering.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dfsqos_test_requests_total", "Requests handled.").Add(3)
	reg.NewGauge("dfsqos_test_temperature_celsius", "Current temperature.").Set(36.5)
	h := reg.NewHistogram("dfsqos_test_latency_seconds", "Request latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	vec := reg.NewCounterVec("dfsqos_test_errors_total", "Errors by class.", "class")
	vec.With("conn").Add(2)
	vec.With("timeout").Inc()
	vec.With(`we"ird\nl`).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dfsqos_test_requests_total Requests handled.
# TYPE dfsqos_test_requests_total counter
dfsqos_test_requests_total 3
# HELP dfsqos_test_temperature_celsius Current temperature.
# TYPE dfsqos_test_temperature_celsius gauge
dfsqos_test_temperature_celsius 36.5
# HELP dfsqos_test_latency_seconds Request latency.
# TYPE dfsqos_test_latency_seconds histogram
dfsqos_test_latency_seconds_bucket{le="0.5"} 1
dfsqos_test_latency_seconds_bucket{le="1"} 2
dfsqos_test_latency_seconds_bucket{le="+Inf"} 3
dfsqos_test_latency_seconds_sum 3
dfsqos_test_latency_seconds_count 3
# HELP dfsqos_test_errors_total Errors by class.
# TYPE dfsqos_test_errors_total counter
dfsqos_test_errors_total{class="conn"} 2
dfsqos_test_errors_total{class="timeout"} 1
dfsqos_test_errors_total{class="we\"ird\\nl"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGetOrCreateSharesFamilies(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("dfsqos_shared_total", "shared")
	b := reg.NewCounter("dfsqos_shared_total", "shared")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dfsqos_collide_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	reg.NewGauge("dfsqos_collide_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9leading", "has-dash", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			reg.NewCounter(bad, "")
		}()
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("dfsqos_nop_total", "")
	g := reg.NewGauge("dfsqos_nop_gauge", "")
	h := reg.NewHistogram("dfsqos_nop_seconds", "", nil)
	cv := reg.NewCounterVec("dfsqos_nop_vec_total", "", "k")
	gv := reg.NewGaugeVec("dfsqos_nop_gvec", "", "k")
	c.Inc()
	g.Set(1)
	h.Observe(1)
	cv.With("v").Inc()
	gv.With("v").Set(2)
	if c.Value() != 1 || g.Value() != 1 || h.Count() != 1 {
		t.Fatal("nil-registry metrics must still record")
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	// The nil registry's handler serves an empty body without panicking.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 0 {
		t.Fatalf("nil registry served %q", body)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("dfsqos_arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	vec.With("only-one")
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dfsqos_ct_total", "").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "dfsqos_ct_total 1") {
		t.Fatalf("body %q", body)
	}
}

// TestConcurrentScrapeWhileIncrementing exercises the scrape path under
// the race detector while every metric type is being mutated.
func TestConcurrentScrapeWhileIncrementing(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("dfsqos_race_total", "")
	g := reg.NewGauge("dfsqos_race_gauge", "")
	h := reg.NewHistogram("dfsqos_race_seconds", "", []float64{0.5, 1, 2})
	vec := reg.NewCounterVec("dfsqos_race_vec_total", "", "worker")

	const writers = 8
	const iters = 500
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			child := vec.With(string(rune('a' + w)))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i%4) / 2)
				child.Inc()
				// Occasionally hit the shared child too, exercising
				// the double-checked creation path concurrently.
				if i%100 == 0 {
					vec.With("shared").Inc()
				}
			}
		}(w)
	}
	wg.Wait()

	// Concurrent writers + scrapers.
	var wg2 sync.WaitGroup
	wg2.Add(writers + 4)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg2.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		go func() {
			defer wg2.Done()
			for i := 0; i < 50; i++ {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg2.Wait()

	if got := c.Value(); got != writers*iters*2 {
		t.Fatalf("counter = %d, want %d", got, writers*iters*2)
	}
	if got := h.Count(); got != writers*iters*2 {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters*2)
	}
	if got := g.Value(); got != writers*iters*0.5 {
		t.Fatalf("gauge = %v, want %v", got, writers*iters*0.5)
	}
}
