// Package telemetry is the dependency-free instrumentation core of the
// live deployment: atomic counters and gauges, a lock-cheap fixed-bucket
// latency histogram, labeled metric vectors, and a Registry that renders
// the Prometheus text exposition format (text/plain; version=0.0.4).
//
// The paper's RM "maintains the dynamic runtime information, e.g. the
// current remained storage bandwidth, of its host during the data
// communication"; this package is the feedback plane that makes that
// runtime information continuously scrapable instead of only visible as a
// coarse JSON snapshot. Every evaluation quantity (utilization curves,
// R_OA, fail rate) is derived from gauges and counters of exactly this
// shape.
//
// Hot-path cost is a handful of atomic operations: Counter.Inc,
// Gauge.Set and Histogram.Observe are O(ns) and allocation-free (see
// BenchmarkCounterInc / BenchmarkHistogramObserve). A nil *Registry is a
// valid no-op registry: its constructors return live, unregistered
// metrics, so instrumented packages need no branches and the simulation
// packages stay untouched.
//
// Metric naming convention: dfsqos_<subsystem>_<name>_<unit>, e.g.
// dfsqos_transport_call_latency_seconds.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative in spirit; the type enforces it).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic
// bits. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with cumulative count and sum
// (Prometheus "histogram" type). Buckets are defined by ascending upper
// bounds; an implicit +Inf overflow bucket catches everything beyond the
// last bound. Observe is a linear scan over the bounds plus three atomic
// operations — no locks, no allocations.
type Histogram struct {
	bounds  []float64       // ascending upper bounds (le semantics)
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// DefBuckets are latency-oriented default bounds in seconds, spanning
// 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and match no bucket meaningfully).
func (h *Histogram) Observe(v float64) {
	if v != v { // NaN
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values (Sum/Count is the mean).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount returns the raw (non-cumulative) count of bucket i, where
// i == len(bounds) addresses the +Inf overflow bucket. Exposed for tests.
func (h *Histogram) BucketCount(i int) uint64 { return h.buckets[i].Load() }

// NumBuckets returns the bucket count including the +Inf bucket.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Quantile estimates the q-quantile (q in [0, 1]) of the observed values
// by linear interpolation inside the bucket containing the target rank —
// the same estimate Prometheus's histogram_quantile computes from this
// bucket layout. The estimate's resolution is the bucket width around
// the quantile, so callers gating on tail latency should construct the
// histogram with bounds fine enough for the tail they gate (see
// ExponentialBuckets). Observations landing in the +Inf overflow bucket
// cannot be interpolated; a quantile falling there reports the last
// finite bound (a conservative lower estimate). An empty histogram
// reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(count)
	cum, lower := 0.0, 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n > 0 && cum+n >= target {
			if i >= len(h.bounds) {
				return lower // +Inf bucket: last finite bound
			}
			frac := (target - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// CounterVec is a family of Counters partitioned by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*vecChild[*Counter]
}

// GaugeVec is a family of Gauges partitioned by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*vecChild[*Gauge]
}

// vecChild pairs a metric with its rendered label values.
type vecChild[M any] struct {
	values []string
	metric M
}

// With returns (creating on first use) the Counter for the given label
// values, which must match the vector's label names in number.
func (v *CounterVec) With(values ...string) *Counter {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.metric
	}
	vals := append([]string(nil), values...)
	child := &vecChild[*Counter]{values: vals, metric: &Counter{}}
	v.children[key] = child
	return child.metric
}

// With returns (creating on first use) the Gauge for the given label
// values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g.metric
	}
	vals := append([]string(nil), values...)
	child := &vecChild[*Gauge]{values: vals, metric: &Gauge{}}
	v.children[key] = child
	return child.metric
}

// vecKey joins label values with an unprintable separator.
func vecKey(labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels %v", len(values), len(labels), labels))
	}
	return strings.Join(values, "\xff")
}

// metricKind tags a registered family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric family.
type family struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is get-or-create: asking twice for the
// same name with a compatible shape returns the same metric (so two
// components of one process can share a family), while a name collision
// with a different kind or label set panics — that is a programming
// error, not a runtime condition.
//
// A nil *Registry is the no-op mode: constructors still return live
// metrics (cheap atomics), they are simply never exported.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order for stable exposition
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Names returns every registered family name in registration order.
// Nil registries return nil. Used by the docs-consistency check to
// enumerate the full metric surface.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the existing family (checking kind) or registers a new
// one built by mk. Caller-side nil receivers short-circuit before this.
func (r *Registry) lookup(name, help string, kind metricKind, mk func() *family) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, not %s", name, f.kind, kind))
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// NewCounter returns the registered Counter with the given name,
// creating it on first use. Safe on a nil registry (returns an
// unregistered counter).
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, help, kindCounter, func() *family {
		return &family{counter: &Counter{}}
	}).counter
}

// NewGauge returns the registered Gauge with the given name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, help, kindGauge, func() *family {
		return &family{gauge: &Gauge{}}
	}).gauge
}

// NewHistogram returns the registered Histogram with the given name and
// bucket upper bounds (nil bounds use DefBuckets). Asking again for an
// existing histogram ignores the bounds argument and returns the
// original.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	return r.lookup(name, help, kindHistogram, func() *family {
		return &family{hist: newHistogram(bounds)}
	}).hist
}

// NewCounterVec returns the registered CounterVec with the given name and
// label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	mk := func() *CounterVec {
		for _, l := range labels {
			if !validName(l) {
				panic(fmt.Sprintf("telemetry: invalid label name %q", l))
			}
		}
		return &CounterVec{
			labels:   append([]string(nil), labels...),
			children: make(map[string]*vecChild[*Counter]),
		}
	}
	if r == nil {
		return mk()
	}
	f := r.lookup(name, help, kindCounterVec, func() *family {
		return &family{cvec: mk()}
	})
	if len(f.cvec.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, had %v", name, labels, f.cvec.labels))
	}
	return f.cvec
}

// NewGaugeVec returns the registered GaugeVec with the given name and
// label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	mk := func() *GaugeVec {
		for _, l := range labels {
			if !validName(l) {
				panic(fmt.Sprintf("telemetry: invalid label name %q", l))
			}
		}
		return &GaugeVec{
			labels:   append([]string(nil), labels...),
			children: make(map[string]*vecChild[*Gauge]),
		}
	}
	if r == nil {
		return mk()
	}
	f := r.lookup(name, help, kindGaugeVec, func() *family {
		return &family{gvec: mk()}
	})
	if len(f.gvec.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, had %v", name, labels, f.gvec.labels))
	}
	return f.gvec
}

// ContentType is the exposition-format content type Prometheus expects.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the text exposition
// format. Families appear in registration order; vector children in
// sorted label order, so the output is deterministic. Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case kindHistogram:
			writeHistogram(&b, f.name, "", f.hist)
		case kindCounterVec:
			f.cvec.mu.RLock()
			children := sortedChildren(f.cvec.children)
			for _, c := range children {
				fmt.Fprintf(&b, "%s{%s} %d\n", f.name, renderLabels(f.cvec.labels, c.values), c.metric.Value())
			}
			f.cvec.mu.RUnlock()
		case kindGaugeVec:
			f.gvec.mu.RLock()
			children := sortedChildren(f.gvec.children)
			for _, c := range children {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, renderLabels(f.gvec.labels, c.values), formatFloat(c.metric.Value()))
			}
			f.gvec.mu.RUnlock()
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders cumulative le-buckets plus _sum and _count.
// extraLabels, when non-empty, is a pre-rendered "k=\"v\"" list to merge
// into the bucket lines.
func writeHistogram(b *strings.Builder, name, extraLabels string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, extraLabels, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// sortedChildren returns vec children sorted by label values for a
// stable exposition.
func sortedChildren[M any](m map[string]*vecChild[M]) []*vecChild[M] {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*vecChild[M], 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// renderLabels renders `k1="v1",k2="v2"` with exposition-format escaping.
func renderLabels(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving GET /metrics-style scrapes of
// the registry. Nil-safe: a nil registry serves an empty body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
