package telemetry

import (
	"io"
	"testing"
)

// BenchmarkCounterInc proves the hot-path cost: one atomic add, zero
// allocations.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkHistogramObserve proves Observe is O(ns) and allocation-free:
// a bounded linear scan plus three atomic operations.
func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
	if h.Count() != uint64(b.N) {
		b.Fatal("lost observations")
	}
}

// BenchmarkGaugeSet measures the gauge store path.
func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

// BenchmarkCounterIncParallel measures contention across goroutines.
func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkWritePrometheus measures a scrape of a modestly sized
// registry (not a hot path; sanity only).
func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	reg.NewCounter("dfsqos_bench_total", "c").Add(7)
	reg.NewGauge("dfsqos_bench_gauge", "g").Set(1.5)
	h := reg.NewHistogram("dfsqos_bench_seconds", "h", DefBuckets)
	h.Observe(0.1)
	vec := reg.NewCounterVec("dfsqos_bench_vec_total", "v", "k")
	for _, k := range []string{"a", "b", "c"} {
		vec.With(k).Inc()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
