package trace

import (
	"context"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
)

func TestSpanLifecycleAndRing(t *testing.T) {
	tr := New(Options{Actor: "test", RingSize: 8})
	root := tr.StartRoot(ids.RequestID(42), "dfsc.access")
	if !root.Context().Valid() {
		t.Fatalf("root context invalid: %+v", root.Context())
	}
	child := tr.StartChild(root.Context(), "dfsc.bid")
	child.SetRM(ids.RMID(3)).SetOutcome("ok")
	child.End()
	root.SetFile(ids.FileID(7)).SetOutcome("ok")
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(recs))
	}
	var gotRoot, gotChild *Record
	for i := range recs {
		switch recs[i].Name {
		case "dfsc.access":
			gotRoot = &recs[i]
		case "dfsc.bid":
			gotChild = &recs[i]
		}
	}
	if gotRoot == nil || gotChild == nil {
		t.Fatalf("missing records: %+v", recs)
	}
	if gotRoot.Trace != 42 || gotChild.Trace != 42 {
		t.Errorf("trace ids: root=%d child=%d, want 42", gotRoot.Trace, gotChild.Trace)
	}
	if gotChild.Parent != gotRoot.Span {
		t.Errorf("child parent = %d, want %d", gotChild.Parent, gotRoot.Span)
	}
	if gotRoot.Parent != 0 {
		t.Errorf("root parent = %d, want 0", gotRoot.Parent)
	}
	if gotChild.RM != 3 {
		t.Errorf("child RM = %d, want 3", gotChild.RM)
	}
	if gotRoot.File != 7 {
		t.Errorf("root file = %d, want 7", gotRoot.File)
	}
	if gotRoot.Actor != "test" {
		t.Errorf("actor = %q", gotRoot.Actor)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if s := tr.StartRoot(1, "x"); s != nil {
		t.Fatal("nil tracer should return nil span")
	}
	if recs := tr.Snapshot(); recs != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
	if ex := tr.Exemplars(); ex != nil {
		t.Fatal("nil tracer exemplars should be nil")
	}
	if tr.Actor() != "" {
		t.Fatal("nil tracer actor should be empty")
	}

	var s *Span
	// All of these must be no-ops, not panics.
	s.SetRM(1).SetFile(2).SetRequest(3).SetOffset(4).SetBytes(5).SetOutcome("ok")
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span context should be invalid")
	}
}

func TestStartGuards(t *testing.T) {
	tr := New(Options{Actor: "g"})
	if s := tr.StartRoot(0, "zero"); s != nil {
		t.Fatal("zero trace ID must not start a span")
	}
	if s := tr.StartChild(SpanContext{}, "orphan"); s != nil {
		t.Fatal("invalid parent must not start a span")
	}
	if s := tr.StartChild(SpanContext{Trace: 9}, "half"); s != nil {
		t.Fatal("parent without span ID must not start a span")
	}
}

func TestSamplerGatesRoots(t *testing.T) {
	tr := New(Options{
		Actor:   "s",
		Sampler: func(id ids.RequestID) bool { return id%2 == 0 },
	})
	if s := tr.StartRoot(3, "odd"); s != nil {
		t.Fatal("sampler should have declined odd id")
	}
	s := tr.StartRoot(4, "even")
	if s == nil {
		t.Fatal("sampler should have accepted even id")
	}
	// The declined root's zero context propagates the decision: no
	// server-side child either.
	var declined *Span
	if c := tr.StartChild(declined.Context(), "server"); c != nil {
		t.Fatal("unsampled parent must not produce a child")
	}
}

func TestRingWraparound(t *testing.T) {
	const size = 8
	tr := New(Options{Actor: "w", RingSize: size})
	for i := 1; i <= 20; i++ {
		s := tr.StartRoot(ids.RequestID(i), "op")
		s.End()
	}
	recs := tr.Snapshot()
	if len(recs) != size {
		t.Fatalf("snapshot len = %d, want ring size %d", len(recs), size)
	}
	// Only the newest `size` traces survive.
	for _, r := range recs {
		if r.Trace <= 20-size {
			t.Errorf("record for trace %d survived wraparound", r.Trace)
		}
	}
	if got := tr.ring.len(); got != 20 {
		t.Errorf("ring.len = %d, want 20", got)
	}
}

func TestRingSizeRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {8, 8}, {1000, 1024}} {
		r := newRing(tc.in)
		if r.cap() != tc.want {
			t.Errorf("newRing(%d).cap = %d, want %d", tc.in, r.cap(), tc.want)
		}
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	tr := New(Options{Actor: "c", RingSize: 64})
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.StartRoot(ids.RequestID(w*per+i+1), "op")
				s.SetBytes(int64(i)).End()
			}
		}(w)
	}
	wg.Wait()
	recs := tr.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("snapshot len = %d, want 64", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Span] {
			t.Fatalf("duplicate span id %d in snapshot", r.Span)
		}
		seen[r.Span] = true
	}
	if got := tr.ring.len(); got != writers*per {
		t.Errorf("ring.len = %d, want %d", got, writers*per)
	}
}

func TestExemplarEviction(t *testing.T) {
	e := newExemplars(3)
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8}
	for i, d := range durs {
		e.offer(&Record{Trace: ids.RequestID(i + 1), Outcome: "ok", Dur: d})
	}
	snap := e.snapshot()
	got := snap["ok"]
	if len(got) != 3 {
		t.Fatalf("exemplars len = %d, want 3", len(got))
	}
	// Slowest-first: 9, 8, 7.
	want := []time.Duration{9, 8, 7}
	for i, w := range want {
		if got[i].Dur != w {
			t.Errorf("exemplar[%d].Dur = %d, want %d", i, got[i].Dur, w)
		}
	}
}

func TestExemplarsGroupByOutcomeAndDefaultKey(t *testing.T) {
	tr := New(Options{Actor: "e", ExemplarK: 2})
	for _, oc := range []string{"ok", "error", ""} {
		s := tr.StartRoot(ids.RequestID(len(oc)+1), "op")
		s.SetOutcome(oc)
		s.End()
	}
	// Child spans never reach the exemplar store.
	root := tr.StartRoot(99, "root")
	c := tr.StartChild(root.Context(), "child")
	c.SetOutcome("ok")
	c.End()
	root.SetOutcome("ok")
	root.End()

	ex := tr.Exemplars()
	if len(ex["ok"]) != 2 {
		t.Errorf("ok exemplars = %d, want 2 (k-capped, roots only)", len(ex["ok"]))
	}
	if len(ex["error"]) != 1 {
		t.Errorf("error exemplars = %d, want 1", len(ex["error"]))
	}
	if len(ex[outcomeKey]) != 1 {
		t.Errorf("%s exemplars = %d, want 1", outcomeKey, len(ex[outcomeKey]))
	}
	for _, r := range ex["ok"] {
		if r.Name == "child" {
			t.Error("child span leaked into exemplars")
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if sc := FromContext(ctx); sc.Valid() {
		t.Fatal("empty context should carry zero SpanContext")
	}
	sc := SpanContext{Trace: 11, Span: 22}
	ctx2 := NewContext(ctx, sc)
	if got := FromContext(ctx2); got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
	// Zero context attaches nothing.
	if ctx3 := NewContext(ctx, SpanContext{}); ctx3 != ctx {
		t.Fatal("zero SpanContext should return ctx unchanged")
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Options{Actor: "m", Registry: reg})
	s := tr.StartRoot(1, "op")
	s.End()
	tr.StartRoot(2, "op") // started but never ended
	var started, ended bool
	for _, n := range reg.Names() {
		switch n {
		case "dfsqos_trace_spans_started_total":
			started = true
		case "dfsqos_trace_spans_total":
			ended = true
		}
	}
	if !started || !ended {
		t.Fatalf("trace counters not registered: started=%v ended=%v names=%v", started, ended, reg.Names())
	}
}

func TestSpanIDsUniqueAcrossTracers(t *testing.T) {
	a := New(Options{Actor: "a"})
	b := New(Options{Actor: "b"})
	sa := a.StartRoot(1, "x")
	sb := b.StartRoot(1, "y")
	if sa.Context().Span == sb.Context().Span {
		t.Fatal("span ids must be process-unique across tracers")
	}
}
