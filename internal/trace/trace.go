// Package trace provides request-scoped span tracing for the ECNP
// message sequence (DFSC -> MM -> RM). A request is identified by its
// ids.RequestID — the same identity the QoS planes already negotiate,
// admit, and fail over on — so a trace stitches together exactly the
// hops the paper's per-request QoS story is about: the readdir query,
// the CFP fan-out (one child span per RM bid), the open/admission
// decision, each stream segment (including failover resumes at exact
// byte offsets), and replication copies.
//
// # Model
//
// A SpanContext is the wire-portable identity of a span: the trace ID
// (an ids.RequestID) plus a process-unique span ID. It is small (16
// bytes), valid only when both halves are non-zero, and travels in
// both wire codecs: an optional field in the gob envelope and a fixed
// 16-byte slot in the binary traced prelude (codec tag 2) so the hot
// data plane stays zero-alloc.
//
// Spans are started with Tracer.StartRoot (client side, minting a new
// trace from a request ID, subject to sampling) or Tracer.StartChild
// (either a local child of another span, or a server-side span joined
// from a SpanContext that arrived on the wire). Both return *Span; a
// nil *Span is a valid no-op — every method on Span is nil-safe, so
// call sites never branch on "is tracing enabled". An unsampled root
// yields a nil span, whose Context() is the zero SpanContext, which
// writes untraced frames, which open no server spans: the sampling
// decision propagates implicitly across the cluster.
//
// Finished spans are recorded into a lock-free per-process ring buffer
// (fixed power-of-two capacity, overwriting oldest) and — for root
// spans — into a per-outcome top-K-by-duration exemplar store, so the
// slowest request of each outcome class survives ring wraparound. The
// monitor exposes both via GET /traces.
//
// # Cost contract
//
// Span End performs one small allocation (the immutable Record placed
// in the ring). Spans are per-RPC and per-segment, never per-chunk, so
// this is control-plane cost; the data plane's per-frame encode/decode
// paths carry only the 16-byte SpanContext and remain 0 allocs/op
// (enforced by the wire benchmark gate).
package trace

import (
	"context"
	"sync/atomic"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/telemetry"
)

// SpanContext identifies a span within a trace. The zero value is
// "not traced" and is what FromContext returns when no span has been
// attached; wire codecs transmit it as an absent/zero slot.
type SpanContext struct {
	// Trace is the trace identity: the request ID the ECNP planes
	// negotiate on. All spans of one logical request share it.
	Trace ids.RequestID
	// Span is the process-unique ID of the span itself (used as the
	// Parent of any children).
	Span uint64
}

// Valid reports whether both halves are non-zero, i.e. whether this
// context names a real span that children may attach to.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Record is the immutable result of a finished span. Records are what
// the ring buffer and exemplar store hold and what GET /traces serves.
type Record struct {
	Trace   ids.RequestID `json:"trace"`
	Span    uint64        `json:"span"`
	Parent  uint64        `json:"parent,omitempty"`
	Name    string        `json:"name"`
	Actor   string        `json:"actor"`
	Outcome string        `json:"outcome,omitempty"`

	// RM and File default to their None sentinels (-1), meaning
	// "not applicable to this hop".
	RM      ids.RMID      `json:"rm"`
	File    ids.FileID    `json:"file"`
	Request ids.RequestID `json:"request,omitempty"`
	Offset  int64         `json:"offset,omitempty"`
	Bytes   int64         `json:"bytes,omitempty"`
	// Tenant tags the requesting tenant (0 = untenanted), so /traces can
	// be filtered per tenant during an abusive-tenant incident.
	Tenant ids.TenantID `json:"tenant,omitempty"`

	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// spanSeq is the process-global span-ID allocator. Being global (not
// per-Tracer) keeps span IDs unique even when tests share one ring
// across several tracers standing in for different daemons.
var spanSeq atomic.Uint64

func nextSpanID() uint64 { return spanSeq.Add(1) }

// Span is an in-flight span. A nil *Span is a no-op: every method is
// safe to call and End does nothing, so callers thread spans without
// enabled-checks. Span is not safe for concurrent mutation; each span
// belongs to the goroutine driving its request hop.
type Span struct {
	tr  *Tracer
	rec Record
}

// Context returns the SpanContext to propagate to children or onto the
// wire. Nil or unsampled spans return the zero SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.Span}
}

// SetRM records which RM served this hop.
func (s *Span) SetRM(rm ids.RMID) *Span {
	if s != nil {
		s.rec.RM = rm
	}
	return s
}

// SetFile records the file the hop operated on.
func (s *Span) SetFile(f ids.FileID) *Span {
	if s != nil {
		s.rec.File = f
	}
	return s
}

// SetRequest records the per-segment request ID when it differs from
// the trace ID (failover segments re-negotiate under fresh requests).
func (s *Span) SetRequest(r ids.RequestID) *Span {
	if s != nil {
		s.rec.Request = r
	}
	return s
}

// SetOffset records the starting byte offset of a stream segment.
func (s *Span) SetOffset(off int64) *Span {
	if s != nil {
		s.rec.Offset = off
	}
	return s
}

// SetBytes records how many bytes the hop moved.
func (s *Span) SetBytes(n int64) *Span {
	if s != nil {
		s.rec.Bytes = n
	}
	return s
}

// SetTenant records the requesting tenant on the span.
func (s *Span) SetTenant(t ids.TenantID) *Span {
	if s != nil {
		s.rec.Tenant = t
	}
	return s
}

// SetOutcome labels the span's result ("ok", "error", "failover",
// "firm-fallback", ...). Root outcomes key the exemplar store.
func (s *Span) SetOutcome(o string) *Span {
	if s != nil {
		s.rec.Outcome = o
	}
	return s
}

// Outcome returns the outcome set so far ("" when unset or nil), letting
// wrappers apply a default without clobbering a handler's verdict.
func (s *Span) Outcome() string {
	if s == nil {
		return ""
	}
	return s.rec.Outcome
}

// End finishes the span: stamps the duration, publishes the Record to
// the ring, and offers root spans to the exemplar store. End on a nil
// span is a no-op. End must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.rec.Start)
	t := s.tr
	rec := s.rec
	t.ring.put(&rec)
	t.met.ended.Inc()
	if rec.Parent == 0 {
		t.ex.offer(&rec)
	}
}

// Options configures a Tracer. The zero value is usable: defaults are
// applied by New.
type Options struct {
	// Actor names the process in every record ("mm", "rm1", "dfsc1").
	Actor string
	// RingSize is the span ring capacity; rounded up to a power of
	// two. Default 4096.
	RingSize int
	// ExemplarK is how many slow-request exemplars to keep per
	// outcome. Default 16.
	ExemplarK int
	// Registry optionally receives trace telemetry
	// (dfsqos_trace_spans_total, dfsqos_trace_drops_total).
	Registry *telemetry.Registry
	// Sampler decides whether StartRoot traces a given request. Nil
	// means always sample.
	Sampler func(ids.RequestID) bool
}

type metrics struct {
	started *telemetry.Counter
	ended   *telemetry.Counter
}

// Tracer owns the span ring and exemplar store for one process. All
// methods are safe for concurrent use. A nil *Tracer is a no-op
// tracer: StartRoot and StartChild return nil spans.
type Tracer struct {
	actor   string
	sampler func(ids.RequestID) bool
	ring    *ring
	ex      *exemplars
	met     metrics
}

// New builds a Tracer. Pass a nil Registry to skip telemetry.
func New(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	if o.ExemplarK <= 0 {
		o.ExemplarK = 16
	}
	t := &Tracer{
		actor:   o.Actor,
		sampler: o.Sampler,
		ring:    newRing(o.RingSize),
		ex:      newExemplars(o.ExemplarK),
	}
	t.met.started = o.Registry.NewCounter("dfsqos_trace_spans_started_total", "Spans opened by this process.")
	t.met.ended = o.Registry.NewCounter("dfsqos_trace_spans_total", "Spans finished and recorded into the ring.")
	return t
}

// Actor returns the process name stamped on records.
func (t *Tracer) Actor() string {
	if t == nil {
		return ""
	}
	return t.actor
}

// StartRoot opens a root span for the given trace (request) ID. It
// returns nil — a no-op span — when the tracer is nil, the trace ID is
// zero, or the sampler declines, and that nil propagates: the span's
// zero Context writes untraced frames and downstream servers open no
// spans.
func (t *Tracer) StartRoot(traceID ids.RequestID, name string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	if t.sampler != nil && !t.sampler(traceID) {
		return nil
	}
	return t.start(traceID, 0, name)
}

// StartChild opens a child of parent — either a local parent span's
// Context() or a SpanContext that arrived on the wire. An invalid
// parent yields a nil span, so untraced requests cost nothing on the
// server side.
func (t *Tracer) StartChild(parent SpanContext, name string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.start(parent.Trace, parent.Span, name)
}

func (t *Tracer) start(traceID ids.RequestID, parent uint64, name string) *Span {
	t.met.started.Inc()
	return &Span{
		tr: t,
		rec: Record{
			Trace:  traceID,
			Span:   nextSpanID(),
			Parent: parent,
			Name:   name,
			Actor:  t.actor,
			File:   ids.NoneFile,
			RM:     ids.NoneRM,
			Start:  time.Now(),
		},
	}
}

// Snapshot returns a copy of every record currently in the ring, in
// unspecified order. Nil tracers return nil.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Exemplars returns the slow-request exemplar records grouped by
// outcome, each group sorted slowest-first.
func (t *Tracer) Exemplars() map[string][]Record {
	if t == nil {
		return nil
	}
	return t.ex.snapshot()
}

// ctxKey is the context key for SpanContext propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sc. A zero (invalid) sc returns ctx
// unchanged so untraced paths add no context layer.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the SpanContext carried by ctx, or the zero
// SpanContext when none is attached.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
