package trace

import (
	"container/heap"
	"sort"
	"sync"
)

// exemplars keeps the top-K slowest root spans per outcome label, so
// the most interesting requests ("the slowest error", "the slowest
// failover") survive long after ring wraparound evicted their spans.
// Offers happen once per finished root span — control-plane rate — so
// a mutex is the right tool here, not lock-free heroics.
type exemplars struct {
	k  int
	mu sync.Mutex
	by map[string]*recHeap
}

func newExemplars(k int) *exemplars {
	return &exemplars{k: k, by: make(map[string]*recHeap)}
}

// outcomeKey buckets records whose Outcome was never set.
const outcomeKey = "unknown"

// offer considers rec for the exemplar set of its outcome, evicting
// the current fastest member when the set is full and rec is slower.
func (e *exemplars) offer(rec *Record) {
	key := rec.Outcome
	if key == "" {
		key = outcomeKey
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.by[key]
	if h == nil {
		h = &recHeap{}
		e.by[key] = h
	}
	if h.Len() < e.k {
		heap.Push(h, rec)
		return
	}
	if rec.Dur > (*h)[0].Dur {
		(*h)[0] = rec
		heap.Fix(h, 0)
	}
}

// snapshot returns the exemplar records grouped by outcome, each group
// sorted slowest-first.
func (e *exemplars) snapshot() map[string][]Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string][]Record, len(e.by))
	for k, h := range e.by {
		recs := make([]Record, len(*h))
		for i, r := range *h {
			recs[i] = *r
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Dur > recs[j].Dur })
		out[k] = recs
	}
	return out
}

// recHeap is a min-heap by duration: the root is the fastest exemplar,
// i.e. the first to evict.
type recHeap []*Record

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return h[i].Dur < h[j].Dur }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(*Record)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
