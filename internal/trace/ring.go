package trace

import "sync/atomic"

// ring is a lock-free fixed-capacity span buffer. Writers claim a slot
// with a single atomic increment of head and store an immutable
// *Record into it; readers snapshot by loading every slot. The newest
// capacity records win — older ones are overwritten, which is exactly
// the retention contract GET /traces advertises. Records are never
// mutated after publication, so a torn read is impossible: a slot
// holds either nil, the old pointer, or the new pointer.
type ring struct {
	mask  uint64
	head  atomic.Uint64
	slots []atomic.Pointer[Record]
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Record], n)}
}

// put publishes rec into the next slot, overwriting the oldest record
// once the ring has wrapped.
func (r *ring) put(rec *Record) {
	i := r.head.Add(1) - 1
	r.slots[i&r.mask].Store(rec)
}

// snapshot copies every populated slot. Order is by slot index, which
// is only approximately insertion order once concurrent writers race
// for neighbouring slots; callers sort by Start when they care.
func (r *ring) snapshot() []Record {
	out := make([]Record, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// len reports how many records have ever been put (not clamped to
// capacity); used by tests to assert wraparound behaviour.
func (r *ring) len() uint64 { return r.head.Load() }

// cap reports the (power-of-two) slot count.
func (r *ring) cap() int { return len(r.slots) }
